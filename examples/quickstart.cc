// Quickstart: predict one sensor's next observations with SMiLer.
//
// The program generates a synthetic traffic sensor, builds a SMiLer
// engine over its history (index on the simulated GPU + semi-lazy GP
// ensemble), and then runs 20 steps of continuous prediction, printing
// the forecast (mean +/- stddev) against the actual value as it arrives.
//
//   ./examples/quickstart
//
// Observability: every layer reports into the global metrics registry.
//   SMILER_METRICS=stderr ./examples/quickstart   # JSON snapshot at exit
//                                                 # (search/predict latency
//                                                 # histograms, pruning
//                                                 # ratio, GP counters, ...)
//   SMILER_TRACE=trace.json ./examples/quickstart # Chrome trace; open in
//                                                 # about:tracing / Perfetto

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/smiler.h"

int main() {
  using namespace smiler;

  // 1. Data: one synthetic road-traffic sensor, z-normalized (use your
  //    own values via ts::TimeSeries + ts::ZNormalized in real code).
  auto dataset = ts::MakeDataset({ts::DatasetKind::kRoad,
                                  /*num_sensors=*/1,
                                  /*points_per_sensor=*/6000,
                                  /*samples_per_day=*/96,
                                  /*seed=*/42,
                                  /*znormalize=*/true});
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const std::vector<double>& all = (*dataset)[0].values();

  // 2. Hold back the last 20 points as the "future" to predict.
  const int steps = 20;
  const std::size_t warmup = all.size() - steps;
  ts::TimeSeries history("road-sensor",
                         std::vector<double>(all.begin(),
                                             all.begin() + warmup));

  // 3. A simulated 6 GB GPU device and the paper's default configuration
  //    (Table 2: rho = 8, omega = 16, ELV {32,64,96}, EKV {8,16,32}).
  simgpu::Device device;
  SmilerConfig config;  // horizon defaults to 1-step-ahead

  // 4. The engine: Suffix kNN Search on the SMiLer index feeding the
  //    self-adaptive ensemble of query-dependent Gaussian Processes.
  auto engine = core::SensorEngine::Create(&device, history, config,
                                           core::PredictorKind::kGp);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // 5. Continuous prediction: forecast, observe the truth, repeat. The
  //    ensemble weights self-adapt from every resolved forecast.
  std::printf("%6s %12s %12s %12s %8s\n", "step", "forecast", "stddev",
              "actual", "|err|");
  core::MetricAccumulator metrics;
  for (int step = 0; step < steps; ++step) {
    auto pred = engine->Predict();
    if (!pred.ok()) {
      std::fprintf(stderr, "predict: %s\n", pred.status().ToString().c_str());
      return 1;
    }
    const double actual = all[warmup + step];
    metrics.Add(actual, *pred);
    std::printf("%6d %12.4f %12.4f %12.4f %8.4f\n", step, pred->mean,
                std::sqrt(pred->variance), actual,
                std::fabs(pred->mean - actual));
    if (Status st = engine->Observe(actual); !st.ok()) {
      std::fprintf(stderr, "observe: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("\nMAE = %.4f   RMSE = %.4f   MNLPD = %.4f over %zu steps\n",
              metrics.Mae(), metrics.Rmse(), metrics.Mnlpd(),
              metrics.count());
  return 0;
}
