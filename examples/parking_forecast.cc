// Car-park availability forecasting: the paper's MALL scenario.
//
// Forecasts available parking lots one hour ahead (h = 6 at a 10-minute
// sample interval) for a shopping-mall car park, reporting forecasts in
// the original lot-count units (de-normalized via the stored z-norm
// moments). Compares the full SMiLer-GP system against the simple
// SMiLer-AR instantiation on the same retrieval results.
//
//   ./examples/parking_forecast [steps]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/smiler.h"

int main(int argc, char** argv) {
  using namespace smiler;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 36;  // six hours
  const int horizon = 6;                                 // one hour ahead

  // Raw (un-normalized) car-park series; z-normalize manually so the
  // moments are available for de-normalization.
  std::vector<double> raw =
      ts::GenerateSensor(ts::DatasetKind::kMall, /*sensor_index=*/3,
                         /*num_points=*/6000, /*samples_per_day=*/144,
                         /*seed=*/11);
  std::vector<double> norm = raw;
  const auto [mean, stddev] = ts::ZNormalize(&norm);

  const std::size_t warmup = norm.size() - steps - horizon;
  ts::TimeSeries history("mall-carpark",
                         std::vector<double>(norm.begin(),
                                             norm.begin() + warmup));

  simgpu::Device device;
  SmilerConfig config;
  config.horizon = horizon;

  auto gp_engine = core::SensorEngine::Create(&device, history, config,
                                              core::PredictorKind::kGp);
  auto ar_engine = core::SensorEngine::Create(&device, history, config,
                                              core::PredictorKind::kAr);
  if (!gp_engine.ok() || !ar_engine.ok()) {
    std::fprintf(stderr, "engine creation failed\n");
    return 1;
  }

  std::printf("one-hour-ahead available-lot forecasts (lots)\n");
  std::printf("%6s %16s %16s %10s\n", "step", "SMiLer-GP", "SMiLer-AR",
              "actual");
  core::MetricAccumulator gp_metrics;
  core::MetricAccumulator ar_metrics;
  for (int step = 0; step < steps; ++step) {
    auto gp = gp_engine->Predict();
    auto ar = ar_engine->Predict();
    if (!gp.ok() || !ar.ok()) {
      std::fprintf(stderr, "prediction failed\n");
      return 1;
    }
    const double truth_z = norm[warmup + step + horizon - 1];
    gp_metrics.Add(truth_z, *gp);
    ar_metrics.Add(truth_z, *ar);

    auto lots = [&](double z) { return z * stddev + mean; };
    std::printf("%6d %9.0f +/- %-4.0f %9.0f +/- %-4.0f %10.0f\n", step,
                lots(gp->mean), std::sqrt(gp->variance) * stddev,
                lots(ar->mean), std::sqrt(ar->variance) * stddev,
                lots(truth_z));

    const double observed = norm[warmup + step];
    (void)gp_engine->Observe(observed);
    (void)ar_engine->Observe(observed);
  }
  std::printf("\n(z-scale) SMiLer-GP: MAE=%.4f MNLPD=%.3f | "
              "SMiLer-AR: MAE=%.4f MNLPD=%.3f\n",
              gp_metrics.Mae(), gp_metrics.Mnlpd(), ar_metrics.Mae(),
              ar_metrics.Mnlpd());
  return 0;
}
