// Traffic fleet monitoring: the Example 1.1 scenario of the paper.
//
// A fleet of road sensors is monitored in real time. Every step, SMiLer
// forecasts each sensor's next occupancy; when the observed value then
// falls far outside the predicted distribution (|standardized residual|
// > 3), the step is flagged as an abnormal traffic event. The predictive
// *distribution* — not just the point forecast — is what makes the
// anomaly test principled, which is why the GP instantiation matters.
//
//   ./examples/traffic_fleet [num_sensors] [steps]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/timer.h"
#include "core/smiler.h"

int main(int argc, char** argv) {
  using namespace smiler;
  const int num_sensors = argc > 1 ? std::atoi(argv[1]) : 6;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 40;

  auto dataset = ts::MakeDataset({ts::DatasetKind::kRoad, num_sensors,
                                  /*points_per_sensor=*/6000,
                                  /*samples_per_day=*/96, /*seed=*/7,
                                  /*znormalize=*/true});
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // Hold back the tail of every sensor as the live stream.
  const std::size_t warmup = (*dataset)[0].size() - steps;
  std::vector<ts::TimeSeries> histories;
  for (const auto& s : *dataset) {
    histories.emplace_back(s.sensor_id(),
                           std::vector<double>(s.values().begin(),
                                               s.values().begin() + warmup));
  }

  simgpu::Device device;
  SmilerConfig config;
  auto manager = core::MultiSensorManager::Create(
      &device, histories, config, core::PredictorKind::kGp);
  if (!manager.ok()) {
    std::fprintf(stderr, "manager: %s\n", manager.status().ToString().c_str());
    return 1;
  }

  std::printf("monitoring %d sensors, %d steps\n\n", num_sensors, steps);
  int events = 0;
  core::MetricAccumulator metrics;
  for (int step = 0; step < steps; ++step) {
    std::vector<predictors::Prediction> preds;
    WallTimer timer;
    if (Status st = manager->PredictAll(&preds); !st.ok()) {
      std::fprintf(stderr, "predict: %s\n", st.ToString().c_str());
      return 1;
    }
    const double predict_ms = timer.ElapsedMillis();

    std::vector<double> actuals(num_sensors);
    for (int s = 0; s < num_sensors; ++s) {
      actuals[s] = (*dataset)[s].values()[warmup + step];
      metrics.Add(actuals[s], preds[s]);
      const double z = (actuals[s] - preds[s].mean) /
                       std::sqrt(preds[s].variance);
      if (std::fabs(z) > 3.0) {
        std::printf("step %3d  %s  ABNORMAL EVENT  z=%+.1f "
                    "(forecast %.2f +/- %.2f, observed %.2f)\n",
                    step, (*dataset)[s].sensor_id().c_str(), z,
                    preds[s].mean, std::sqrt(preds[s].variance), actuals[s]);
        ++events;
      }
    }
    if (step % 10 == 0) {
      std::printf("step %3d  fleet forecast in %.1f ms\n", step, predict_ms);
    }
    if (Status st = manager->ObserveAll(actuals); !st.ok()) {
      std::fprintf(stderr, "observe: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("\nfleet MAE = %.4f, MNLPD = %.4f, %d abnormal events flagged\n",
              metrics.Mae(), metrics.Mnlpd(), events);
  return 0;
}
