// Similarity search tooling: using the SMiLer index directly.
//
// Builds the two-level index over an internet-traffic series, runs a
// Continuous Suffix kNN Search (multiple suffix lengths at once, per the
// ELV), prints the retrieved neighbors, and cross-checks the result and
// the timing against the FastGPUScan baseline — the Fig 7 / Table 3
// machinery exposed as a utility.
//
//   ./examples/similarity_search [k]

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "core/smiler.h"

int main(int argc, char** argv) {
  using namespace smiler;
  const int k = argc > 1 ? std::atoi(argv[1]) : 5;

  auto dataset = ts::MakeDataset({ts::DatasetKind::kNet, /*num_sensors=*/1,
                                  /*points_per_sensor=*/16384,
                                  /*samples_per_day=*/96, /*seed=*/3,
                                  /*znormalize=*/true});
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const ts::TimeSeries& series = (*dataset)[0];

  simgpu::Device device;
  SmilerConfig config;  // ELV {32, 64, 96}: three suffix lengths per search

  WallTimer timer;
  auto index = index::SmilerIndex::Build(&device, series, config);
  if (!index.ok()) {
    std::fprintf(stderr, "build: %s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("index built over %zu points in %.1f ms "
              "(%d sliding windows x %ld disjoint windows, %.1f MiB)\n\n",
              series.size(), timer.ElapsedMillis(),
              index->num_sliding_windows(), index->num_disjoint_windows(),
              index->MemoryFootprintBytes() / (1024.0 * 1024.0));

  index::SuffixSearchOptions options;
  options.k = k;
  index::SearchStats stats;
  timer.Reset();
  auto result = index->Search(options, &stats);
  const double index_ms = timer.ElapsedMillis();
  if (!result.ok()) {
    std::fprintf(stderr, "search: %s\n", result.status().ToString().c_str());
    return 1;
  }

  for (const auto& item : result->items) {
    std::printf("item query d=%d (suffix of the master query):\n", item.d);
    for (const auto& nb : item.neighbors) {
      std::printf("  segment [%6ld, %6ld)  DTW = %.4f\n", nb.t,
                  nb.t + item.d, nb.dist);
    }
  }
  std::printf("\nindex search: %.2f ms — %llu of %llu candidates verified "
              "(%.1f%% filtered by LBen)\n",
              index_ms,
              static_cast<unsigned long long>(stats.candidates_verified),
              static_cast<unsigned long long>(stats.candidates_total),
              100.0 * (1.0 - static_cast<double>(stats.candidates_verified) /
                                 static_cast<double>(stats.candidates_total)));

  // Cross-check against the exhaustive banded-DTW scan.
  timer.Reset();
  auto scan = index::ScanSearch(&device, series, config, k,
                                /*reserve_horizon=*/1,
                                index::ScanMethod::kFastGpuScan);
  const double scan_ms = timer.ElapsedMillis();
  if (!scan.ok()) {
    std::fprintf(stderr, "scan: %s\n", scan.status().ToString().c_str());
    return 1;
  }
  bool agree = true;
  for (std::size_t i = 0; i < result->items.size(); ++i) {
    const auto& a = result->items[i].neighbors;
    const auto& b = scan->items[i].neighbors;
    if (a.size() != b.size()) agree = false;
    for (std::size_t j = 0; agree && j < a.size(); ++j) {
      if (std::abs(a[j].dist - b[j].dist) > 1e-7) agree = false;
    }
  }
  std::printf("FastGPUScan:  %.2f ms — results %s (%.1fx slower)\n", scan_ms,
              agree ? "identical" : "DIFFER (bug!)", scan_ms / index_ms);
  return agree ? 0 : 1;
}
