// Multi-tenant prediction service with warm restart.
//
// Phase 1: a PredictionServer shards a fleet of sensors across workers
// while closed-loop client threads drive mixed Predict/Observe traffic
// with per-request deadlines. Mid-run, the fleet is checkpointed to disk
// without stopping the clients.
//
// Phase 2: the server is torn down ("crash") and a new one is restored
// from the checkpoint — it resumes predicting immediately, no re-indexing
// and no history replay.
//
//   ./examples/smiler_serve [num_sensors] [steps_per_client] \
//                           [--trace-exemplars <path>]
//
// Observability: SMILER_STATS_PORT=<n> serves live /metrics, /healthz and
// /attribution for the process lifetime (PredictionServer::Create arms
// it); --trace-exemplars writes the span trees of the slowest requests as
// a Chrome/Perfetto trace on exit, and the per-stage attribution table is
// printed after the traffic phase.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <cstring>

#include "core/smiler.h"
#include "obs/obs.h"
#include "serve/checkpoint.h"
#include "serve/server.h"

int main(int argc, char** argv) {
  using namespace smiler;
  int num_sensors = 8;
  int steps = 60;
  std::string exemplars_path;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-exemplars") == 0 && i + 1 < argc) {
      exemplars_path = argv[++i];
      obs::Tracer::Global().Start();
    } else if (positional == 0) {
      num_sensors = std::atoi(argv[i]);
      ++positional;
    } else if (positional == 1) {
      steps = std::atoi(argv[i]);
      ++positional;
    }
  }
  const std::string ckpt_path = "/tmp/smiler_serve_example.ckpt";

  auto dataset = ts::MakeDataset({ts::DatasetKind::kRoad, num_sensors,
                                  /*points_per_sensor=*/4000,
                                  /*samples_per_day=*/96, /*seed=*/7,
                                  /*znormalize=*/true});
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const std::size_t warmup = (*dataset)[0].size() - steps;
  std::vector<ts::TimeSeries> histories;
  for (const auto& s : *dataset) {
    histories.emplace_back(s.sensor_id(),
                           std::vector<double>(s.values().begin(),
                                               s.values().begin() + warmup));
  }

  simgpu::Device device;
  SmilerConfig config;
  auto manager = core::MultiSensorManager::Create(
      &device, histories, config, core::PredictorKind::kAr);
  if (!manager.ok()) {
    std::fprintf(stderr, "manager: %s\n", manager.status().ToString().c_str());
    return 1;
  }

  serve::ServerOptions options;
  options.num_shards = 4;
  options.queue_capacity = 256;
  auto server = serve::PredictionServer::Create(std::move(*manager), options);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return 1;
  }
  std::printf("serving %d sensors on %d shards\n", num_sensors,
              (*server)->num_shards());

  // ---- phase 1: closed-loop clients, checkpoint taken mid-run ----
  const int num_clients = 4;
  std::atomic<long> ok{0}, rejected{0}, shed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      for (int step = 0; step < steps; ++step) {
        for (std::size_t s = c; s < static_cast<std::size_t>(num_sensors);
             s += num_clients) {
          const auto deadline = serve::Clock::now() +
                                std::chrono::milliseconds(250);
          auto pred = (*server)->Predict(s, deadline);
          if (pred.ok()) {
            ok.fetch_add(1);
          } else if (pred.status().code() == StatusCode::kResourceExhausted) {
            rejected.fetch_add(1);
          } else if (pred.status().code() == StatusCode::kDeadlineExceeded) {
            shed.fetch_add(1);
          }
          const double truth = (*dataset)[s].values()[warmup + step];
          if ((*server)->Observe(s, truth, deadline).ok()) ok.fetch_add(1);
        }
      }
    });
  }
  // Checkpoint while traffic is flowing: shards quiesce one at a time at
  // batch boundaries, serialization runs off the shard workers.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Status saved = (*server)->SaveCheckpoint(ckpt_path);
  std::printf("mid-run checkpoint: %s\n", saved.ToString().c_str());
  for (auto& t : clients) t.join();
  std::printf("traffic done: ok=%ld rejected=%ld deadline_shed=%ld\n",
              ok.load(), rejected.load(), shed.load());

  const auto lat =
      obs::Registry::Global().GetHistogram("serve.latency_seconds").Snap();
  std::printf("latency p50=%.1fus p99=%.1fus over %llu requests\n",
              lat.p50 * 1e6, lat.p99 * 1e6,
              static_cast<unsigned long long>(lat.count));
  std::printf("%s", obs::AttributionTableText().c_str());
  if (obs::StatsServer::Global().running()) {
    std::printf("live stats on 127.0.0.1:%d (/metrics /healthz /attribution)\n",
                obs::StatsServer::Global().port());
  }
  (*server)->Shutdown();  // "crash"

  // ---- phase 2: warm restart from the checkpoint ----
  if (!saved.ok()) return 1;
  auto snapshots = serve::Checkpoint::Load(ckpt_path);
  if (!snapshots.ok()) {
    std::fprintf(stderr, "load: %s\n",
                 snapshots.status().ToString().c_str());
    return 1;
  }
  simgpu::Device device2;
  std::vector<core::SensorEngine> engines;
  for (const auto& snap : *snapshots) {
    auto engine = core::SensorEngine::Restore(&device2, snap);
    if (!engine.ok()) {
      std::fprintf(stderr, "restore: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    engines.push_back(std::move(*engine));
  }
  auto restored = core::MultiSensorManager::Adopt(std::move(engines));
  if (!restored.ok()) return 1;
  auto server2 =
      serve::PredictionServer::Create(std::move(*restored), options);
  if (!server2.ok()) return 1;
  std::printf("restored %zu engines from %s — predictions resume:\n",
              snapshots->size(), ckpt_path.c_str());
  for (std::size_t s = 0; s < 3 && s < (*server2)->num_sensors(); ++s) {
    auto pred = (*server2)->Predict(s);
    if (pred.ok()) {
      std::printf("  sensor %zu: mean=%+.3f var=%.3f\n", s, pred->mean,
                  pred->variance);
    }
  }
  if (!exemplars_path.empty() &&
      obs::ExemplarReservoir::Global().WriteChromeTrace(exemplars_path)) {
    std::printf("wrote tail-exemplar trace (%zu slowest requests) to %s\n",
                obs::ExemplarReservoir::Global().size(),
                exemplars_path.c_str());
  }
  std::remove(ckpt_path.c_str());
  return 0;
}
