// CSV forecasting CLI: run SMiLer on your own sensor data.
//
// Reads a CSV of sensor series (one column per sensor, header row of
// sensor ids), holds out the last `steps` rows as the live stream, and
// reports per-sensor forecasts and accuracy. Demonstrates the intended
// production wiring: ReadCsv -> ZNormalized -> MultiSensorManager.
//
//   ./examples/csv_forecast <file.csv> [steps] [horizon]
//
// Run without arguments to see it on a generated demo file.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/smiler.h"
#include "ts/io.h"

namespace {

// Writes a small demo CSV so the example is runnable out of the box.
std::string WriteDemoCsv() {
  using namespace smiler;
  auto dataset = ts::MakeDataset({ts::DatasetKind::kNet, /*num_sensors=*/3,
                                  /*points_per_sensor=*/4000,
                                  /*samples_per_day=*/96, /*seed=*/5,
                                  /*znormalize=*/false});
  const std::string path = "/tmp/smiler_demo.csv";
  if (!dataset.ok() || !ts::WriteCsv(path, *dataset).ok()) {
    std::fprintf(stderr, "failed to write demo CSV\n");
    std::exit(1);
  }
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smiler;
  const std::string path = argc > 1 ? argv[1] : WriteDemoCsv();
  const int steps = argc > 2 ? std::atoi(argv[2]) : 24;
  const int horizon = argc > 3 ? std::atoi(argv[3]) : 1;

  auto sensors = ts::ReadCsv(path);
  if (!sensors.ok()) {
    std::fprintf(stderr, "read %s: %s\n", path.c_str(),
                 sensors.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu sensors x %zu points from %s\n", sensors->size(),
              (*sensors)[0].size(), path.c_str());

  // Z-normalize each sensor (keep moments to report in original units).
  std::vector<ts::TimeSeries> normalized;
  std::vector<std::pair<double, double>> moments;
  std::vector<ts::TimeSeries> histories;
  const std::size_t warmup = (*sensors)[0].size() - steps;
  for (const auto& s : *sensors) {
    std::vector<double> values = s.values();
    moments.push_back(ts::ZNormalize(&values));
    normalized.emplace_back(s.sensor_id(), values);
    histories.emplace_back(
        s.sensor_id(),
        std::vector<double>(values.begin(), values.begin() + warmup));
  }

  simgpu::Device device;
  SmilerConfig config;
  config.horizon = horizon;
  auto manager = core::MultiSensorManager::Create(
      &device, histories, config, core::PredictorKind::kGp);
  if (!manager.ok()) {
    std::fprintf(stderr, "manager: %s\n", manager.status().ToString().c_str());
    return 1;
  }

  std::vector<core::MetricAccumulator> per_sensor(sensors->size());
  for (int step = 0; step < steps - horizon + 1; ++step) {
    std::vector<predictors::Prediction> preds;
    if (Status st = manager->PredictAll(&preds); !st.ok()) {
      std::fprintf(stderr, "predict: %s\n", st.ToString().c_str());
      return 1;
    }
    std::vector<double> actuals(sensors->size());
    for (std::size_t s = 0; s < sensors->size(); ++s) {
      const auto& values = normalized[s].values();
      per_sensor[s].Add(values[warmup + step + horizon - 1], preds[s]);
      actuals[s] = values[warmup + step];
    }
    if (Status st = manager->ObserveAll(actuals); !st.ok()) {
      std::fprintf(stderr, "observe: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  std::printf("\n%-16s %10s %10s %12s\n", "sensor", "MAE", "MNLPD",
              "MAE(orig)");
  for (std::size_t s = 0; s < sensors->size(); ++s) {
    std::printf("%-16s %10.4f %10.4f %12.2f\n",
                (*sensors)[s].sensor_id().c_str(), per_sensor[s].Mae(),
                per_sensor[s].Mnlpd(),
                per_sensor[s].Mae() * moments[s].second);
  }
  return 0;
}
