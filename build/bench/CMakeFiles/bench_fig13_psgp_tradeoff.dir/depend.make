# Empty dependencies file for bench_fig13_psgp_tradeoff.
# This may be replaced when dependencies are built.
