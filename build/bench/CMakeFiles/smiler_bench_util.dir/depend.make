# Empty dependencies file for smiler_bench_util.
# This may be replaced when dependencies are built.
