file(REMOVE_RECURSE
  "../lib/libsmiler_bench_util.a"
)
