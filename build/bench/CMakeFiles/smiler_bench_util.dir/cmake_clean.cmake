file(REMOVE_RECURSE
  "../lib/libsmiler_bench_util.a"
  "../lib/libsmiler_bench_util.pdb"
  "CMakeFiles/smiler_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/smiler_bench_util.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiler_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
