# Empty dependencies file for bench_fig10_online_accuracy.
# This may be replaced when dependencies are built.
