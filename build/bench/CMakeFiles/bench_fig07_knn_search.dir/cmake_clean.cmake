file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_knn_search.dir/bench_fig07_knn_search.cc.o"
  "CMakeFiles/bench_fig07_knn_search.dir/bench_fig07_knn_search.cc.o.d"
  "bench_fig07_knn_search"
  "bench_fig07_knn_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_knn_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
