# Empty dependencies file for bench_fig07_knn_search.
# This may be replaced when dependencies are built.
