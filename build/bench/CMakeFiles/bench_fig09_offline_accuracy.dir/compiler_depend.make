# Empty compiler generated dependencies file for bench_fig09_offline_accuracy.
# This may be replaced when dependencies are built.
