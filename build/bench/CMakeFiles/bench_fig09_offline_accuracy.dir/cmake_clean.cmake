file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_offline_accuracy.dir/bench_fig09_offline_accuracy.cc.o"
  "CMakeFiles/bench_fig09_offline_accuracy.dir/bench_fig09_offline_accuracy.cc.o.d"
  "bench_fig09_offline_accuracy"
  "bench_fig09_offline_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_offline_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
