# Empty dependencies file for bench_fig11_autotuning.
# This may be replaced when dependencies are built.
