
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11_autotuning.cc" "bench/CMakeFiles/bench_fig11_autotuning.dir/bench_fig11_autotuning.cc.o" "gcc" "bench/CMakeFiles/bench_fig11_autotuning.dir/bench_fig11_autotuning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/smiler_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/smiler_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/smiler_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/predictors/CMakeFiles/smiler_predictors.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/smiler_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/smiler_index.dir/DependInfo.cmake"
  "/root/repo/build/src/dtw/CMakeFiles/smiler_dtw.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/smiler_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/simgpu/CMakeFiles/smiler_simgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/smiler_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/smiler_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
