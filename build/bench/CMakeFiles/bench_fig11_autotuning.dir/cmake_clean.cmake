file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_autotuning.dir/bench_fig11_autotuning.cc.o"
  "CMakeFiles/bench_fig11_autotuning.dir/bench_fig11_autotuning.cc.o.d"
  "bench_fig11_autotuning"
  "bench_fig11_autotuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_autotuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
