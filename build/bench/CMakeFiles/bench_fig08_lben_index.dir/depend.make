# Empty dependencies file for bench_fig08_lben_index.
# This may be replaced when dependencies are built.
