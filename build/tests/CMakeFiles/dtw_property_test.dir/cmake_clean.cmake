file(REMOVE_RECURSE
  "CMakeFiles/dtw_property_test.dir/dtw_property_test.cc.o"
  "CMakeFiles/dtw_property_test.dir/dtw_property_test.cc.o.d"
  "dtw_property_test"
  "dtw_property_test.pdb"
  "dtw_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtw_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
