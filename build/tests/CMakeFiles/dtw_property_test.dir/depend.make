# Empty dependencies file for dtw_property_test.
# This may be replaced when dependencies are built.
