# Empty compiler generated dependencies file for ts_resample_test.
# This may be replaced when dependencies are built.
