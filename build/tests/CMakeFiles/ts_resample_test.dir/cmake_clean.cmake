file(REMOVE_RECURSE
  "CMakeFiles/ts_resample_test.dir/ts_resample_test.cc.o"
  "CMakeFiles/ts_resample_test.dir/ts_resample_test.cc.o.d"
  "ts_resample_test"
  "ts_resample_test.pdb"
  "ts_resample_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_resample_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
