# Empty compiler generated dependencies file for ts_io_test.
# This may be replaced when dependencies are built.
