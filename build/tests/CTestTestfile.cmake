# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/la_test[1]_include.cmake")
include("/root/repo/build/tests/simgpu_test[1]_include.cmake")
include("/root/repo/build/tests/ts_test[1]_include.cmake")
include("/root/repo/build/tests/dtw_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/gp_test[1]_include.cmake")
include("/root/repo/build/tests/predictors_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/dtw_property_test[1]_include.cmake")
include("/root/repo/build/tests/index_stress_test[1]_include.cmake")
include("/root/repo/build/tests/engine_integration_test[1]_include.cmake")
include("/root/repo/build/tests/ts_io_test[1]_include.cmake")
include("/root/repo/build/tests/ts_resample_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_property_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
