# Empty compiler generated dependencies file for traffic_fleet.
# This may be replaced when dependencies are built.
