file(REMOVE_RECURSE
  "CMakeFiles/traffic_fleet.dir/traffic_fleet.cc.o"
  "CMakeFiles/traffic_fleet.dir/traffic_fleet.cc.o.d"
  "traffic_fleet"
  "traffic_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
