# Empty dependencies file for parking_forecast.
# This may be replaced when dependencies are built.
