file(REMOVE_RECURSE
  "CMakeFiles/parking_forecast.dir/parking_forecast.cc.o"
  "CMakeFiles/parking_forecast.dir/parking_forecast.cc.o.d"
  "parking_forecast"
  "parking_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parking_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
