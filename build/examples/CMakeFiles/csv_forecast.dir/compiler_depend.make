# Empty compiler generated dependencies file for csv_forecast.
# This may be replaced when dependencies are built.
