file(REMOVE_RECURSE
  "CMakeFiles/csv_forecast.dir/csv_forecast.cc.o"
  "CMakeFiles/csv_forecast.dir/csv_forecast.cc.o.d"
  "csv_forecast"
  "csv_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
