file(REMOVE_RECURSE
  "CMakeFiles/smiler_ts.dir/datasets.cc.o"
  "CMakeFiles/smiler_ts.dir/datasets.cc.o.d"
  "CMakeFiles/smiler_ts.dir/io.cc.o"
  "CMakeFiles/smiler_ts.dir/io.cc.o.d"
  "CMakeFiles/smiler_ts.dir/resample.cc.o"
  "CMakeFiles/smiler_ts.dir/resample.cc.o.d"
  "CMakeFiles/smiler_ts.dir/series.cc.o"
  "CMakeFiles/smiler_ts.dir/series.cc.o.d"
  "libsmiler_ts.a"
  "libsmiler_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiler_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
