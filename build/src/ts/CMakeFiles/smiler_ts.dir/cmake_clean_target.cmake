file(REMOVE_RECURSE
  "libsmiler_ts.a"
)
