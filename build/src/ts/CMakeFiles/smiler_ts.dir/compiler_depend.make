# Empty compiler generated dependencies file for smiler_ts.
# This may be replaced when dependencies are built.
