
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ts/datasets.cc" "src/ts/CMakeFiles/smiler_ts.dir/datasets.cc.o" "gcc" "src/ts/CMakeFiles/smiler_ts.dir/datasets.cc.o.d"
  "/root/repo/src/ts/io.cc" "src/ts/CMakeFiles/smiler_ts.dir/io.cc.o" "gcc" "src/ts/CMakeFiles/smiler_ts.dir/io.cc.o.d"
  "/root/repo/src/ts/resample.cc" "src/ts/CMakeFiles/smiler_ts.dir/resample.cc.o" "gcc" "src/ts/CMakeFiles/smiler_ts.dir/resample.cc.o.d"
  "/root/repo/src/ts/series.cc" "src/ts/CMakeFiles/smiler_ts.dir/series.cc.o" "gcc" "src/ts/CMakeFiles/smiler_ts.dir/series.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/smiler_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
