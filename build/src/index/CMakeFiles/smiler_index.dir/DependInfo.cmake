
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/kselect.cc" "src/index/CMakeFiles/smiler_index.dir/kselect.cc.o" "gcc" "src/index/CMakeFiles/smiler_index.dir/kselect.cc.o.d"
  "/root/repo/src/index/scan_baselines.cc" "src/index/CMakeFiles/smiler_index.dir/scan_baselines.cc.o" "gcc" "src/index/CMakeFiles/smiler_index.dir/scan_baselines.cc.o.d"
  "/root/repo/src/index/smiler_index.cc" "src/index/CMakeFiles/smiler_index.dir/smiler_index.cc.o" "gcc" "src/index/CMakeFiles/smiler_index.dir/smiler_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/smiler_common.dir/DependInfo.cmake"
  "/root/repo/build/src/simgpu/CMakeFiles/smiler_simgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/smiler_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/dtw/CMakeFiles/smiler_dtw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
