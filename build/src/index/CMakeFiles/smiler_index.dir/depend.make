# Empty dependencies file for smiler_index.
# This may be replaced when dependencies are built.
