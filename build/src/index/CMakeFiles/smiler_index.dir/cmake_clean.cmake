file(REMOVE_RECURSE
  "CMakeFiles/smiler_index.dir/kselect.cc.o"
  "CMakeFiles/smiler_index.dir/kselect.cc.o.d"
  "CMakeFiles/smiler_index.dir/scan_baselines.cc.o"
  "CMakeFiles/smiler_index.dir/scan_baselines.cc.o.d"
  "CMakeFiles/smiler_index.dir/smiler_index.cc.o"
  "CMakeFiles/smiler_index.dir/smiler_index.cc.o.d"
  "libsmiler_index.a"
  "libsmiler_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiler_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
