file(REMOVE_RECURSE
  "libsmiler_index.a"
)
