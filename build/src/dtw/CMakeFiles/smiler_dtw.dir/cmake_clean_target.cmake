file(REMOVE_RECURSE
  "libsmiler_dtw.a"
)
