file(REMOVE_RECURSE
  "CMakeFiles/smiler_dtw.dir/dtw.cc.o"
  "CMakeFiles/smiler_dtw.dir/dtw.cc.o.d"
  "CMakeFiles/smiler_dtw.dir/envelope.cc.o"
  "CMakeFiles/smiler_dtw.dir/envelope.cc.o.d"
  "CMakeFiles/smiler_dtw.dir/lower_bounds.cc.o"
  "CMakeFiles/smiler_dtw.dir/lower_bounds.cc.o.d"
  "libsmiler_dtw.a"
  "libsmiler_dtw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiler_dtw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
