# Empty compiler generated dependencies file for smiler_dtw.
# This may be replaced when dependencies are built.
