# Empty dependencies file for smiler_simgpu.
# This may be replaced when dependencies are built.
