file(REMOVE_RECURSE
  "libsmiler_simgpu.a"
)
