file(REMOVE_RECURSE
  "CMakeFiles/smiler_simgpu.dir/device.cc.o"
  "CMakeFiles/smiler_simgpu.dir/device.cc.o.d"
  "libsmiler_simgpu.a"
  "libsmiler_simgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiler_simgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
