# Empty dependencies file for smiler_common.
# This may be replaced when dependencies are built.
