file(REMOVE_RECURSE
  "libsmiler_common.a"
)
