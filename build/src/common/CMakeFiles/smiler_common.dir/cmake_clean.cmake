file(REMOVE_RECURSE
  "CMakeFiles/smiler_common.dir/status.cc.o"
  "CMakeFiles/smiler_common.dir/status.cc.o.d"
  "CMakeFiles/smiler_common.dir/thread_pool.cc.o"
  "CMakeFiles/smiler_common.dir/thread_pool.cc.o.d"
  "libsmiler_common.a"
  "libsmiler_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiler_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
