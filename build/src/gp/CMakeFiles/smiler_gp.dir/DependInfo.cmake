
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gp/cg_optimizer.cc" "src/gp/CMakeFiles/smiler_gp.dir/cg_optimizer.cc.o" "gcc" "src/gp/CMakeFiles/smiler_gp.dir/cg_optimizer.cc.o.d"
  "/root/repo/src/gp/gp_regressor.cc" "src/gp/CMakeFiles/smiler_gp.dir/gp_regressor.cc.o" "gcc" "src/gp/CMakeFiles/smiler_gp.dir/gp_regressor.cc.o.d"
  "/root/repo/src/gp/kernel.cc" "src/gp/CMakeFiles/smiler_gp.dir/kernel.cc.o" "gcc" "src/gp/CMakeFiles/smiler_gp.dir/kernel.cc.o.d"
  "/root/repo/src/gp/trainer.cc" "src/gp/CMakeFiles/smiler_gp.dir/trainer.cc.o" "gcc" "src/gp/CMakeFiles/smiler_gp.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/smiler_common.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/smiler_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
