# Empty compiler generated dependencies file for smiler_gp.
# This may be replaced when dependencies are built.
