file(REMOVE_RECURSE
  "CMakeFiles/smiler_gp.dir/cg_optimizer.cc.o"
  "CMakeFiles/smiler_gp.dir/cg_optimizer.cc.o.d"
  "CMakeFiles/smiler_gp.dir/gp_regressor.cc.o"
  "CMakeFiles/smiler_gp.dir/gp_regressor.cc.o.d"
  "CMakeFiles/smiler_gp.dir/kernel.cc.o"
  "CMakeFiles/smiler_gp.dir/kernel.cc.o.d"
  "CMakeFiles/smiler_gp.dir/trainer.cc.o"
  "CMakeFiles/smiler_gp.dir/trainer.cc.o.d"
  "libsmiler_gp.a"
  "libsmiler_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiler_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
