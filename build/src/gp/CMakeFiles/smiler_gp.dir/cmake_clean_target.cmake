file(REMOVE_RECURSE
  "libsmiler_gp.a"
)
