file(REMOVE_RECURSE
  "CMakeFiles/smiler_predictors.dir/ar_predictor.cc.o"
  "CMakeFiles/smiler_predictors.dir/ar_predictor.cc.o.d"
  "CMakeFiles/smiler_predictors.dir/ensemble.cc.o"
  "CMakeFiles/smiler_predictors.dir/ensemble.cc.o.d"
  "CMakeFiles/smiler_predictors.dir/gp_predictor.cc.o"
  "CMakeFiles/smiler_predictors.dir/gp_predictor.cc.o.d"
  "CMakeFiles/smiler_predictors.dir/predictor.cc.o"
  "CMakeFiles/smiler_predictors.dir/predictor.cc.o.d"
  "libsmiler_predictors.a"
  "libsmiler_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiler_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
