file(REMOVE_RECURSE
  "libsmiler_predictors.a"
)
