# Empty dependencies file for smiler_predictors.
# This may be replaced when dependencies are built.
