# Empty compiler generated dependencies file for smiler_la.
# This may be replaced when dependencies are built.
