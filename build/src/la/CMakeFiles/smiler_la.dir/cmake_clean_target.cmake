file(REMOVE_RECURSE
  "libsmiler_la.a"
)
