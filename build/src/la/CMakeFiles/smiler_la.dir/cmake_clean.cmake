file(REMOVE_RECURSE
  "CMakeFiles/smiler_la.dir/cholesky.cc.o"
  "CMakeFiles/smiler_la.dir/cholesky.cc.o.d"
  "CMakeFiles/smiler_la.dir/matrix.cc.o"
  "CMakeFiles/smiler_la.dir/matrix.cc.o.d"
  "libsmiler_la.a"
  "libsmiler_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiler_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
