file(REMOVE_RECURSE
  "libsmiler_baselines.a"
)
