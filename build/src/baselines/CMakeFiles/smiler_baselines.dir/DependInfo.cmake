
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baseline.cc" "src/baselines/CMakeFiles/smiler_baselines.dir/baseline.cc.o" "gcc" "src/baselines/CMakeFiles/smiler_baselines.dir/baseline.cc.o.d"
  "/root/repo/src/baselines/holt_winters.cc" "src/baselines/CMakeFiles/smiler_baselines.dir/holt_winters.cc.o" "gcc" "src/baselines/CMakeFiles/smiler_baselines.dir/holt_winters.cc.o.d"
  "/root/repo/src/baselines/lazy_knn.cc" "src/baselines/CMakeFiles/smiler_baselines.dir/lazy_knn.cc.o" "gcc" "src/baselines/CMakeFiles/smiler_baselines.dir/lazy_knn.cc.o.d"
  "/root/repo/src/baselines/linear_sgd.cc" "src/baselines/CMakeFiles/smiler_baselines.dir/linear_sgd.cc.o" "gcc" "src/baselines/CMakeFiles/smiler_baselines.dir/linear_sgd.cc.o.d"
  "/root/repo/src/baselines/nys_svr.cc" "src/baselines/CMakeFiles/smiler_baselines.dir/nys_svr.cc.o" "gcc" "src/baselines/CMakeFiles/smiler_baselines.dir/nys_svr.cc.o.d"
  "/root/repo/src/baselines/psgp.cc" "src/baselines/CMakeFiles/smiler_baselines.dir/psgp.cc.o" "gcc" "src/baselines/CMakeFiles/smiler_baselines.dir/psgp.cc.o.d"
  "/root/repo/src/baselines/registry.cc" "src/baselines/CMakeFiles/smiler_baselines.dir/registry.cc.o" "gcc" "src/baselines/CMakeFiles/smiler_baselines.dir/registry.cc.o.d"
  "/root/repo/src/baselines/vlgp.cc" "src/baselines/CMakeFiles/smiler_baselines.dir/vlgp.cc.o" "gcc" "src/baselines/CMakeFiles/smiler_baselines.dir/vlgp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/smiler_common.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/smiler_la.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/smiler_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/smiler_index.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/smiler_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/simgpu/CMakeFiles/smiler_simgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/dtw/CMakeFiles/smiler_dtw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
