file(REMOVE_RECURSE
  "CMakeFiles/smiler_baselines.dir/baseline.cc.o"
  "CMakeFiles/smiler_baselines.dir/baseline.cc.o.d"
  "CMakeFiles/smiler_baselines.dir/holt_winters.cc.o"
  "CMakeFiles/smiler_baselines.dir/holt_winters.cc.o.d"
  "CMakeFiles/smiler_baselines.dir/lazy_knn.cc.o"
  "CMakeFiles/smiler_baselines.dir/lazy_knn.cc.o.d"
  "CMakeFiles/smiler_baselines.dir/linear_sgd.cc.o"
  "CMakeFiles/smiler_baselines.dir/linear_sgd.cc.o.d"
  "CMakeFiles/smiler_baselines.dir/nys_svr.cc.o"
  "CMakeFiles/smiler_baselines.dir/nys_svr.cc.o.d"
  "CMakeFiles/smiler_baselines.dir/psgp.cc.o"
  "CMakeFiles/smiler_baselines.dir/psgp.cc.o.d"
  "CMakeFiles/smiler_baselines.dir/registry.cc.o"
  "CMakeFiles/smiler_baselines.dir/registry.cc.o.d"
  "CMakeFiles/smiler_baselines.dir/vlgp.cc.o"
  "CMakeFiles/smiler_baselines.dir/vlgp.cc.o.d"
  "libsmiler_baselines.a"
  "libsmiler_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiler_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
