# Empty compiler generated dependencies file for smiler_baselines.
# This may be replaced when dependencies are built.
