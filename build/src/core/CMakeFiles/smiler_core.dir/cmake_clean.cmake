file(REMOVE_RECURSE
  "CMakeFiles/smiler_core.dir/engine.cc.o"
  "CMakeFiles/smiler_core.dir/engine.cc.o.d"
  "CMakeFiles/smiler_core.dir/manager.cc.o"
  "CMakeFiles/smiler_core.dir/manager.cc.o.d"
  "libsmiler_core.a"
  "libsmiler_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smiler_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
