file(REMOVE_RECURSE
  "libsmiler_core.a"
)
