# Empty dependencies file for smiler_core.
# This may be replaced when dependencies are built.
