#ifndef SMILER_SIMGPU_LAUNCH_GRAPH_H_
#define SMILER_SIMGPU_LAUNCH_GRAPH_H_

#include <cstddef>
#include <functional>
#include <future>
#include <optional>
#include <string>

#include "common/status.h"
#include "common/task_graph.h"
#include "simgpu/device.h"

namespace smiler {
namespace simgpu {

/// \brief Dependency-edged batch launches: the graph-native counterpart
/// of `Device::Launch`'s blocking, stream-synchronous call.
///
/// A LaunchGraph collects kernel launches (and host closures interleaved
/// with them — Gram assembly, result scatter) as nodes of a
/// `common::TaskGraph`, with explicit happens-before edges instead of the
/// implicit "everything before me already finished" of a blocking launch
/// sequence. `Run` executes the whole DAG over the device's thread pool:
/// independent launches overlap, dependent ones are ordered, and each
/// individual launch keeps the blocking `Device::Launch` semantics (all
/// blocks of a node complete before its dependents start), so a linear
/// chain is bitwise-identical to the equivalent blocking sequence.
///
/// Error containment matches TaskGraph: a failed launch (device fault
/// injection, backend resolution error) poisons only its dependents;
/// independent launches still run, and per-node futures carry each
/// launch's own Status.
class LaunchGraph {
 public:
  using NodeId = TaskGraph::NodeId;

  explicit LaunchGraph(Device* device) : device_(device) {}

  LaunchGraph(const LaunchGraph&) = delete;
  LaunchGraph& operator=(const LaunchGraph&) = delete;

  /// Adds a kernel launch node (grid body only). \p name is the kernel's
  /// profiling name, exactly as in Device::Launch.
  NodeId AddLaunch(const char* name, int grid_dim, int block_dim,
                   Kernel kernel);

  /// Adds a dual-body launch node: the native backend executes \p native
  /// as one straight-line call, the simulated grid runs \p kernel
  /// block-by-block — the same bitwise-equivalence contract as
  /// Device::Launch's dual-body overload.
  NodeId AddLaunch(const char* name, int grid_dim, int block_dim,
                   Kernel kernel, NativeKernel native);

  /// Adds a host-side node (no device launch): result gather/scatter,
  /// fallback recomputation, CPU-side joins between launches.
  NodeId AddHostNode(std::string label, std::function<Status()> fn);

  /// Declares that \p from must complete before \p to starts.
  Status AddEdge(NodeId from, NodeId to) { return graph_.AddEdge(from, to); }

  /// Completion future of one node (valid after Run).
  std::shared_future<Status> Future(NodeId id) const {
    return graph_.Future(id);
  }

  /// Executes the DAG to completion on the device's pool. Returns
  /// kInvalidArgument on a cyclic edge set, otherwise the first non-OK
  /// node Status (per-node futures disambiguate), or OK. One-shot.
  Status Run();

  std::size_t num_nodes() const { return graph_.num_nodes(); }

 private:
  Device* device_;
  TaskGraph graph_;
};

}  // namespace simgpu
}  // namespace smiler

#endif  // SMILER_SIMGPU_LAUNCH_GRAPH_H_
