#ifndef SMILER_SIMGPU_BATCH_LAUNCH_H_
#define SMILER_SIMGPU_BATCH_LAUNCH_H_

#include <algorithm>
#include <cstddef>
#include <vector>

namespace smiler {
namespace simgpu {

/// \brief Flat-grid index map for batched launches: N independent jobs,
/// each needing `blocks_i` blocks, fused into ONE launch of
/// sum(blocks_i) blocks.
///
/// A batched kernel body receives a flat block id and uses Locate() to
/// recover (job index, block-local-to-job). The map is a prefix-sum
/// table built once on the host before the launch; Locate is a binary
/// search, so bodies stay O(log N) per block with no per-job state.
///
/// This is the launch-amortization primitive behind `gp.gram_batch`
/// (one device launch computing the Gram matrices of every sensor in a
/// serve micro-batch) and is reusable by any kernel whose jobs are
/// independent and block-decomposable.
class BatchGrid {
 public:
  /// Position of a flat block id inside the batch.
  struct Pos {
    std::size_t job = 0;  ///< which job the block belongs to
    int local = 0;        ///< the block's id within that job's own grid
  };

  /// Appends a job of \p blocks blocks; returns its job index. Jobs with
  /// zero blocks are legal (they simply receive no blocks).
  std::size_t AddJob(int blocks) {
    const int base = offsets_.empty() ? 0 : offsets_.back();
    offsets_.push_back(base + (blocks > 0 ? blocks : 0));
    return offsets_.size() - 1;
  }

  /// Grid dimension of the fused launch.
  int total_blocks() const { return offsets_.empty() ? 0 : offsets_.back(); }

  std::size_t num_jobs() const { return offsets_.size(); }

  /// Maps a flat block id in [0, total_blocks()) back to its job and the
  /// block's local id within that job.
  Pos Locate(int flat_block) const {
    // First job whose exclusive end offset exceeds flat_block.
    const auto it =
        std::upper_bound(offsets_.begin(), offsets_.end(), flat_block);
    const std::size_t job = static_cast<std::size_t>(it - offsets_.begin());
    const int base = job == 0 ? 0 : offsets_[job - 1];
    return Pos{job, flat_block - base};
  }

 private:
  std::vector<int> offsets_;  ///< exclusive prefix-sum ends, one per job
};

}  // namespace simgpu
}  // namespace smiler

#endif  // SMILER_SIMGPU_BATCH_LAUNCH_H_
