#include "simgpu/device.h"

#include <string>

#include "common/timer.h"
#include "obs/obs.h"

namespace smiler {
namespace simgpu {

Status Device::LaunchImpl(const char* name, int grid_dim, int block_dim,
                          const Kernel& kernel, const NativeKernel* native) {
  if (backend_ == nullptr) return backend_status_;
  if (grid_dim < 0 || block_dim <= 0) {
    return Status::InvalidArgument("grid_dim must be >= 0, block_dim > 0");
  }
  if (grid_dim == 0) return Status::OK();
  SMILER_INJECT_FAULT(
      "simgpu.launch",
      Status::Internal(std::string("injected launch failure: ") + name));

  stats_.kernels_launched += 1;
  stats_.blocks_executed += static_cast<std::uint64_t>(grid_dim);

  // Per-kernel profiling instruments (one registry lookup per launch; the
  // per-block work inside the backend touches only the resolved
  // references). Shared across backends so dashboards keyed on
  // `simgpu.kernel.<name>.*` keep working whichever backend runs.
  obs::Registry& reg = obs::Registry::Global();
  const std::string prefix = std::string("simgpu.kernel.") + name;
  reg.GetCounter(prefix + ".launches").Increment();
  obs::Histogram& block_seconds = reg.GetHistogram(prefix + ".block_seconds");
  obs::Gauge& kernel_high_water =
      reg.GetGauge(prefix + ".shared_high_water_bytes");
  static obs::Gauge& device_high_water =
      reg.GetGauge("simgpu.shared_memory.high_water_bytes");
  obs::ScopedSpan span(name);

  LaunchSpec spec;
  spec.name = name;
  spec.grid_dim = grid_dim;
  spec.block_dim = block_dim;
  spec.shared_bytes = shared_bytes_;
  spec.pool = pool_;
  spec.grid = &kernel;
  spec.native = native;
  spec.block_seconds = &block_seconds;
  spec.kernel_high_water = &kernel_high_water;
  spec.device_high_water = &device_high_water;
  backend_->Execute(spec);
  return Status::OK();
}

Status Device::AllocateBytes(std::size_t bytes) {
  SMILER_INJECT_FAULT(
      "simgpu.alloc",
      Status::ResourceExhausted("injected device allocation failure: request=" +
                                std::to_string(bytes)));
  std::size_t current = used_.load();
  for (;;) {
    if (current + bytes > budget_) {
      return Status::ResourceExhausted(
          "device memory budget exceeded: used=" + std::to_string(current) +
          " request=" + std::to_string(bytes) +
          " budget=" + std::to_string(budget_));
    }
    if (used_.compare_exchange_weak(current, current + bytes)) {
      return Status::OK();
    }
  }
}

void Device::FreeBytes(std::size_t bytes) {
  used_.fetch_sub(bytes);
}

}  // namespace simgpu
}  // namespace smiler
