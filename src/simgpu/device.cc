#include "simgpu/device.h"

#include <string>

#include "common/timer.h"
#include "obs/obs.h"

namespace smiler {
namespace simgpu {

Status Device::Launch(const char* name, int grid_dim, int block_dim,
                      const Kernel& kernel) {
  if (grid_dim < 0 || block_dim <= 0) {
    return Status::InvalidArgument("grid_dim must be >= 0, block_dim > 0");
  }
  if (grid_dim == 0) return Status::OK();
  SMILER_INJECT_FAULT(
      "simgpu.launch",
      Status::Internal(std::string("injected launch failure: ") + name));

  stats_.kernels_launched += 1;
  stats_.blocks_executed += static_cast<std::uint64_t>(grid_dim);

  // Per-kernel profiling instruments (one registry lookup per launch; the
  // per-block work below touches only the resolved references).
  obs::Registry& reg = obs::Registry::Global();
  const std::string prefix = std::string("simgpu.kernel.") + name;
  reg.GetCounter(prefix + ".launches").Increment();
  obs::Histogram& block_seconds = reg.GetHistogram(prefix + ".block_seconds");
  obs::Gauge& kernel_high_water =
      reg.GetGauge(prefix + ".shared_high_water_bytes");
  static obs::Gauge& device_high_water =
      reg.GetGauge("simgpu.shared_memory.high_water_bytes");
  obs::ScopedSpan span(name);

  const std::size_t shared_bytes = shared_bytes_;
  pool_->ParallelFor(static_cast<std::size_t>(grid_dim),
                     [&](std::size_t block) {
                       // Each block owns a fresh shared-memory arena, like a
                       // CUDA SM assigning shared memory per resident block.
                       SharedMemory shared(shared_bytes);
                       BlockContext ctx;
                       ctx.block_id = static_cast<int>(block);
                       ctx.grid_dim = grid_dim;
                       ctx.block_dim = block_dim;
                       ctx.shared = &shared;
                       WallTimer timer;
                       kernel(ctx);
                       block_seconds.Observe(timer.ElapsedSeconds());
                       const double peak =
                           static_cast<double>(shared.high_water());
                       kernel_high_water.SetMax(peak);
                       device_high_water.SetMax(peak);
                     });
  return Status::OK();
}

Status Device::AllocateBytes(std::size_t bytes) {
  SMILER_INJECT_FAULT(
      "simgpu.alloc",
      Status::ResourceExhausted("injected device allocation failure: request=" +
                                std::to_string(bytes)));
  std::size_t current = used_.load();
  for (;;) {
    if (current + bytes > budget_) {
      return Status::ResourceExhausted(
          "device memory budget exceeded: used=" + std::to_string(current) +
          " request=" + std::to_string(bytes) +
          " budget=" + std::to_string(budget_));
    }
    if (used_.compare_exchange_weak(current, current + bytes)) {
      return Status::OK();
    }
  }
}

void Device::FreeBytes(std::size_t bytes) {
  used_.fetch_sub(bytes);
}

}  // namespace simgpu
}  // namespace smiler
