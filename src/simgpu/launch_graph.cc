#include "simgpu/launch_graph.h"

#include <utility>

namespace smiler {
namespace simgpu {

LaunchGraph::NodeId LaunchGraph::AddLaunch(const char* name, int grid_dim,
                                           int block_dim, Kernel kernel) {
  Device* device = device_;
  return graph_.AddNode(
      name, [device, name, grid_dim, block_dim, kernel = std::move(kernel)] {
        return device->Launch(name, grid_dim, block_dim, kernel);
      });
}

LaunchGraph::NodeId LaunchGraph::AddLaunch(const char* name, int grid_dim,
                                           int block_dim, Kernel kernel,
                                           NativeKernel native) {
  Device* device = device_;
  return graph_.AddNode(
      name, [device, name, grid_dim, block_dim, kernel = std::move(kernel),
             native = std::move(native)] {
        return device->Launch(name, grid_dim, block_dim, kernel, native);
      });
}

LaunchGraph::NodeId LaunchGraph::AddHostNode(std::string label,
                                             std::function<Status()> fn) {
  return graph_.AddNode(std::move(label), std::move(fn));
}

Status LaunchGraph::Run() {
  // Blocks of each node still spread over the pool via Device::Launch;
  // the graph overlaps whole launches on top of that.
  return graph_.Run();
}

}  // namespace simgpu
}  // namespace smiler
