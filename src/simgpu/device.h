#ifndef SMILER_SIMGPU_DEVICE_H_
#define SMILER_SIMGPU_DEVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <vector>

#include "chaos/fault.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace smiler {
namespace simgpu {

/// \brief Per-block scratch arena standing in for CUDA shared memory.
///
/// The paper stores the compressed DTW warping matrix and the query in
/// shared memory (Appendix E); kernels written against this arena exercise
/// the same capacity constraint (default 64 KiB, matching the paper's note
/// "up to 64KB").
class SharedMemory {
 public:
  explicit SharedMemory(std::size_t capacity_bytes)
      : data_(capacity_bytes), used_(0), high_water_(0) {}

  /// Bump-allocates \p count elements of T. Returns nullptr when the
  /// request exceeds the remaining capacity (kernel authors must treat
  /// this like exceeding CUDA shared memory: restructure the kernel or
  /// fall back to global/heap memory).
  template <typename T>
  T* Alloc(std::size_t count) {
    if (SMILER_FAULT_TRIGGERED("shared_mem.alloc")) return nullptr;
    const std::size_t align = alignof(T);
    // Align the absolute address, not just the offset: the arena base is
    // only guaranteed new-aligned, so an over-aligned T must shift its
    // first allocation relative to the base.
    const auto base = reinterpret_cast<std::uintptr_t>(data_.data());
    const std::uintptr_t aligned = (base + used_ + align - 1) / align * align;
    const std::size_t offset = static_cast<std::size_t>(aligned - base);
    if (offset > data_.size()) return nullptr;
    // Divide instead of multiplying: `count * sizeof(T)` can wrap, which
    // would hand out a pointer into a too-small arena.
    if (count > (data_.size() - offset) / sizeof(T)) return nullptr;
    used_ = offset + count * sizeof(T);
    if (used_ > high_water_) high_water_ = used_;
    return reinterpret_cast<T*>(data_.data() + offset);
  }

  /// Releases all allocations (block exit). The high-water mark survives.
  void Reset() { used_ = 0; }

  std::size_t capacity() const { return data_.size(); }
  std::size_t used() const { return used_; }
  /// Largest `used()` ever reached — the arena's occupancy profile. Never
  /// exceeds capacity() (over-capacity Allocs fail instead of counting).
  std::size_t high_water() const { return high_water_; }

 private:
  std::vector<std::byte> data_;
  std::size_t used_;
  std::size_t high_water_;
};

/// \brief Execution context handed to a kernel, one per thread block.
///
/// Lanes model CUDA threads. `ForEachLane(fn)` runs `fn(lane)` for every
/// lane of the block; consecutive ForEachLane calls are separated by an
/// implicit block-wide barrier (the SIMD phases our kernels need map onto
/// this structure exactly — see DESIGN.md S3).
struct BlockContext {
  int block_id = 0;
  int grid_dim = 1;
  int block_dim = 1;
  SharedMemory* shared = nullptr;

  template <typename Fn>
  void ForEachLane(Fn&& fn) const {
    for (int lane = 0; lane < block_dim; ++lane) fn(lane);
  }

  /// Grid-stride style helper: runs `fn(i)` for every i in [0, n) with the
  /// block's lanes striding over the range (i = lane, lane+block_dim, ...).
  template <typename Fn>
  void StridedFor(std::size_t n, Fn&& fn) const {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
};

/// A kernel is invoked once per block.
using Kernel = std::function<void(BlockContext&)>;

/// \brief Counters describing the work a Device has executed. Atomic
/// because independent host threads may Launch concurrently (e.g. the
/// per-item-query fan-out in SmilerIndex::Search).
struct DeviceStats {
  std::atomic<std::uint64_t> kernels_launched{0};
  std::atomic<std::uint64_t> blocks_executed{0};
};

/// \brief Simulated GPU device: launches grids of blocks over a CPU thread
/// pool and accounts "device memory" against a configurable budget.
///
/// Substitution note (DESIGN.md section 1): this preserves the paper's work
/// decomposition — one block per sliding window / CSG / k-selection — while
/// executing on the host. Memory accounting powers the Fig 12(c) capacity
/// study.
class Device {
 public:
  /// \param memory_budget_bytes simulated device memory (default 6 GiB,
  ///        the paper's GTX TITAN).
  /// \param shared_memory_bytes per-block shared memory (default 64 KiB).
  /// \param pool thread pool to run blocks on (default process pool).
  explicit Device(std::size_t memory_budget_bytes = 6ULL << 30,
                  std::size_t shared_memory_bytes = 64ULL << 10,
                  ThreadPool* pool = nullptr)
      : budget_(memory_budget_bytes),
        shared_bytes_(shared_memory_bytes),
        pool_(pool != nullptr ? pool : &ThreadPool::Default()) {}

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Launches \p grid_dim blocks of \p block_dim lanes running \p kernel.
  /// Blocks execute concurrently over the pool; the call returns after all
  /// blocks completed (stream-synchronous semantics).
  ///
  /// \p name identifies the kernel for profiling (a string literal, e.g.
  /// "index.verify_dtw"): each launch opens a tracing span and feeds the
  /// per-kernel `simgpu.kernel.<name>.*` metrics — launch count, per-block
  /// wall-time histogram, and the SharedMemory high-water gauge.
  Status Launch(const char* name, int grid_dim, int block_dim,
                const Kernel& kernel);

  /// Unnamed launch; profiled under the kernel name "anonymous".
  Status Launch(int grid_dim, int block_dim, const Kernel& kernel) {
    return Launch("anonymous", grid_dim, block_dim, kernel);
  }

  /// Reserves \p bytes of device memory. Fails with ResourceExhausted when
  /// the budget would be exceeded.
  Status AllocateBytes(std::size_t bytes);
  /// Releases \p bytes previously reserved.
  void FreeBytes(std::size_t bytes);

  std::size_t memory_used() const { return used_.load(); }
  std::size_t memory_budget() const { return budget_; }
  std::size_t shared_memory_bytes() const { return shared_bytes_; }

  const DeviceStats& stats() const { return stats_; }
  void ResetStats() {
    stats_.kernels_launched.store(0);
    stats_.blocks_executed.store(0);
  }

 private:
  std::size_t budget_;
  std::size_t shared_bytes_;
  ThreadPool* pool_;
  std::atomic<std::size_t> used_{0};
  DeviceStats stats_;
};

/// \brief Typed array living in (simulated) device memory.
///
/// Allocation is charged against the owning Device's budget; destruction
/// releases it. Host access is direct (zero-copy simulation).
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  /// Allocates \p n elements on \p device.
  static Result<DeviceBuffer<T>> Create(Device* device, std::size_t n) {
    SMILER_RETURN_NOT_OK(device->AllocateBytes(n * sizeof(T)));
    DeviceBuffer<T> buf;
    buf.device_ = device;
    buf.data_.resize(n);
    return buf;
  }

  ~DeviceBuffer() { Release(); }

  DeviceBuffer(DeviceBuffer&& other) noexcept { *this = std::move(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      Release();
      device_ = other.device_;
      data_ = std::move(other.data_);
      other.device_ = nullptr;
      other.data_.clear();
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  /// Grows or shrinks the buffer, adjusting the device budget. Fails when
  /// growth exceeds the budget (existing contents preserved on failure).
  /// Budget accounting stays exact on every path: a charge is refunded if
  /// the host-side resize throws, and a shrink only releases budget after
  /// the (non-throwing) resize has happened.
  Status Resize(std::size_t n) {
    if (device_ == nullptr) return Status::FailedPrecondition("unallocated");
    if (n > data_.size()) {
      const std::size_t grow_bytes = (n - data_.size()) * sizeof(T);
      SMILER_RETURN_NOT_OK(device_->AllocateBytes(grow_bytes));
      try {
        data_.resize(n);
      } catch (const std::bad_alloc&) {
        device_->FreeBytes(grow_bytes);
        return Status::ResourceExhausted(
            "host allocation failed while growing device buffer");
      }
    } else {
      const std::size_t shrink_bytes = (data_.size() - n) * sizeof(T);
      data_.resize(n);  // shrinking never allocates, hence never throws
      device_->FreeBytes(shrink_bytes);
    }
    return Status::OK();
  }

 private:
  void Release() {
    if (device_ != nullptr) {
      device_->FreeBytes(data_.size() * sizeof(T));
      device_ = nullptr;
    }
    data_.clear();
  }

  Device* device_ = nullptr;
  std::vector<T> data_;
};

}  // namespace simgpu
}  // namespace smiler

#endif  // SMILER_SIMGPU_DEVICE_H_
