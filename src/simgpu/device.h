#ifndef SMILER_SIMGPU_DEVICE_H_
#define SMILER_SIMGPU_DEVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "chaos/fault.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "simgpu/backend.h"
#include "simgpu/kernel_context.h"

namespace smiler {
namespace simgpu {

/// \brief Counters describing the work a Device has executed. Atomic
/// because independent host threads may Launch concurrently (e.g. the
/// per-item-query fan-out in SmilerIndex::Search).
struct DeviceStats {
  std::atomic<std::uint64_t> kernels_launched{0};
  std::atomic<std::uint64_t> blocks_executed{0};
};

/// \brief Simulated GPU device: launches grids of blocks over a CPU thread
/// pool and accounts "device memory" against a configurable budget.
///
/// Substitution note (DESIGN.md section 1): this preserves the paper's work
/// decomposition — one block per sliding window / CSG / k-selection — while
/// executing on the host. Memory accounting powers the Fig 12(c) capacity
/// study.
class Device {
 public:
  /// \param memory_budget_bytes simulated device memory (default 6 GiB,
  ///        the paper's GTX TITAN).
  /// \param shared_memory_bytes per-block shared memory (default 64 KiB).
  /// \param pool thread pool to run blocks on (default process pool).
  ///
  /// The execution backend is resolved from SMILER_BACKEND at
  /// construction (unset/empty selects the simulated grid). An unknown
  /// value does not fall back silently: the resolution error is stored
  /// and every Launch fails with it (kInvalidArgument).
  explicit Device(std::size_t memory_budget_bytes = 6ULL << 30,
                  std::size_t shared_memory_bytes = 64ULL << 10,
                  ThreadPool* pool = nullptr)
      : budget_(memory_budget_bytes),
        shared_bytes_(shared_memory_bytes),
        pool_(pool != nullptr ? pool : &ThreadPool::Default()) {
    Result<BackendKind> kind = BackendKindFromEnv();
    if (kind.ok()) {
      backend_ = Backend::Get(*kind);
    } else {
      backend_status_ = kind.status();
    }
  }

  /// Constructs with an explicit backend, ignoring SMILER_BACKEND (used
  /// by the forced-backend test fixtures and the equivalence suites).
  Device(std::size_t memory_budget_bytes, std::size_t shared_memory_bytes,
         ThreadPool* pool, BackendKind backend)
      : budget_(memory_budget_bytes),
        shared_bytes_(shared_memory_bytes),
        pool_(pool != nullptr ? pool : &ThreadPool::Default()),
        backend_(Backend::Get(backend)) {}

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Launches \p grid_dim blocks of \p block_dim lanes running \p kernel.
  /// Blocks execute concurrently over the pool; the call returns after all
  /// blocks completed (stream-synchronous semantics).
  ///
  /// \p name identifies the kernel for profiling (a string literal, e.g.
  /// "index.verify_dtw"): each launch opens a tracing span and feeds the
  /// per-kernel `simgpu.kernel.<name>.*` metrics — launch count, per-block
  /// wall-time histogram, and the SharedMemory high-water gauge — under
  /// every backend.
  Status Launch(const char* name, int grid_dim, int block_dim,
                const Kernel& kernel) {
    return LaunchImpl(name, grid_dim, block_dim, kernel, nullptr);
  }

  /// Launch with a native body: the native backend executes \p native as
  /// one straight-line call (no block emulation); the simulated-grid
  /// backend ignores it and runs \p kernel block-by-block. Both bodies
  /// must produce bitwise-identical results — the contract every migrated
  /// kernel's equivalence test pins down.
  Status Launch(const char* name, int grid_dim, int block_dim,
                const Kernel& kernel, const NativeKernel& native) {
    return LaunchImpl(name, grid_dim, block_dim, kernel, &native);
  }

  /// Unnamed launch; profiled under the kernel name "anonymous".
  Status Launch(int grid_dim, int block_dim, const Kernel& kernel) {
    return Launch("anonymous", grid_dim, block_dim, kernel);
  }

  /// The backend this device resolved at construction, or the stored
  /// kInvalidArgument when SMILER_BACKEND held an unknown value.
  Result<BackendKind> backend() const {
    if (backend_ == nullptr) return backend_status_;
    return backend_->kind();
  }

  /// Re-binds the execution backend (test hook; not thread-safe against
  /// concurrent Launch).
  void set_backend(BackendKind kind) {
    backend_ = Backend::Get(kind);
    backend_status_ = Status::OK();
  }

  /// Reserves \p bytes of device memory. Fails with ResourceExhausted when
  /// the budget would be exceeded.
  Status AllocateBytes(std::size_t bytes);
  /// Releases \p bytes previously reserved.
  void FreeBytes(std::size_t bytes);

  std::size_t memory_used() const { return used_.load(); }
  std::size_t memory_budget() const { return budget_; }
  std::size_t shared_memory_bytes() const { return shared_bytes_; }

  const DeviceStats& stats() const { return stats_; }
  void ResetStats() {
    stats_.kernels_launched.store(0);
    stats_.blocks_executed.store(0);
  }

 private:
  Status LaunchImpl(const char* name, int grid_dim, int block_dim,
                    const Kernel& kernel, const NativeKernel* native);

  std::size_t budget_;
  std::size_t shared_bytes_;
  ThreadPool* pool_;
  const Backend* backend_ = nullptr;
  Status backend_status_;  // why backend_ is null, when it is
  std::atomic<std::size_t> used_{0};
  DeviceStats stats_;
};

/// \brief Typed array living in (simulated) device memory.
///
/// Allocation is charged against the owning Device's budget; destruction
/// releases it. Host access is direct (zero-copy simulation).
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  /// Allocates \p n elements on \p device.
  static Result<DeviceBuffer<T>> Create(Device* device, std::size_t n) {
    SMILER_RETURN_NOT_OK(device->AllocateBytes(n * sizeof(T)));
    DeviceBuffer<T> buf;
    buf.device_ = device;
    buf.data_.resize(n);
    return buf;
  }

  ~DeviceBuffer() { Release(); }

  DeviceBuffer(DeviceBuffer&& other) noexcept { *this = std::move(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      Release();
      device_ = other.device_;
      data_ = std::move(other.data_);
      other.device_ = nullptr;
      other.data_.clear();
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  /// Grows or shrinks the buffer, adjusting the device budget. Fails when
  /// growth exceeds the budget (existing contents preserved on failure).
  /// Budget accounting stays exact on every path: a charge is refunded if
  /// the host-side resize throws, and a shrink only releases budget after
  /// the (non-throwing) resize has happened.
  Status Resize(std::size_t n) {
    if (device_ == nullptr) return Status::FailedPrecondition("unallocated");
    if (n > data_.size()) {
      const std::size_t grow_bytes = (n - data_.size()) * sizeof(T);
      SMILER_RETURN_NOT_OK(device_->AllocateBytes(grow_bytes));
      try {
        data_.resize(n);
      } catch (const std::bad_alloc&) {
        device_->FreeBytes(grow_bytes);
        return Status::ResourceExhausted(
            "host allocation failed while growing device buffer");
      }
    } else {
      const std::size_t shrink_bytes = (data_.size() - n) * sizeof(T);
      data_.resize(n);  // shrinking never allocates, hence never throws
      device_->FreeBytes(shrink_bytes);
    }
    return Status::OK();
  }

 private:
  void Release() {
    if (device_ != nullptr) {
      device_->FreeBytes(data_.size() * sizeof(T));
      device_ = nullptr;
    }
    data_.clear();
  }

  Device* device_ = nullptr;
  std::vector<T> data_;
};

}  // namespace simgpu
}  // namespace smiler

#endif  // SMILER_SIMGPU_DEVICE_H_
