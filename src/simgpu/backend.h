#ifndef SMILER_SIMGPU_BACKEND_H_
#define SMILER_SIMGPU_BACKEND_H_

#include <cstddef>
#include <functional>
#include <string_view>

#include "common/status.h"
#include "common/thread_pool.h"
#include "simgpu/kernel_context.h"

namespace smiler {
namespace obs {
class Histogram;
class Gauge;
}  // namespace obs

namespace simgpu {

/// \brief Which execution strategy a Device runs its kernel launches on.
///
/// kSimGrid is the historical simulated-GPU grid: one BlockContext + fresh
/// SharedMemory arena per block, blocks fanned over the device pool —
/// byte-for-byte the pre-backend behavior. kNative executes a kernel's
/// straight-line native body (when the launch site supplies one) with no
/// block emulation at all: no arenas, no per-block timers, flat
/// vectorizable loops. Every migrated kernel is bitwise-identical across
/// backends (docs/performance.md "Execution backends").
enum class BackendKind {
  kSimGrid,
  kNative,
};

/// Canonical lowercase name ("simgpu" / "native") — the accepted values of
/// the SMILER_BACKEND environment variable and the `backend` field of the
/// BENCH_*.json reports.
const char* BackendKindName(BackendKind kind);

/// Parses a SMILER_BACKEND value. Unknown strings fail with
/// kInvalidArgument — never a silent fallback to a default.
Result<BackendKind> ParseBackendKind(std::string_view name);

/// Resolves the process-wide backend selection from SMILER_BACKEND.
/// Unset or empty resolves to kSimGrid (the default backend); any other
/// value must parse or the error propagates to every launch.
Result<BackendKind> BackendKindFromEnv();

/// \brief Execution context handed to a native kernel — the whole launch
/// at once, not one block.
///
/// A native kernel owns the full iteration space of its launch and is free
/// to batch, tile, and vectorize across what the grid backend treats as
/// block boundaries. ParallelFor distributes coarse strips over the same
/// device pool grid launches use (and degrades to inline execution when
/// nested inside a pool worker, exactly like a grid launch), so the
/// deadlock-freedom story is unchanged.
class NativeContext {
 public:
  NativeContext(ThreadPool* pool, int grid_dim, int block_dim)
      : pool_(pool), grid_dim_(grid_dim), block_dim_(block_dim) {}

  /// The launch geometry the call site requested. Native kernels may use
  /// it as a work-size hint; nothing forces a block decomposition.
  int grid_dim() const { return grid_dim_; }
  int block_dim() const { return block_dim_; }

  /// Upper bound on useful concurrent strips: the device pool's workers
  /// plus the calling thread (ParallelFor callers participate).
  std::size_t parallelism() const { return pool_->size() + 1; }

  /// Runs fn(i) for every i in [0, n) over the device pool.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
    pool_->ParallelFor(n, fn);
  }

 private:
  ThreadPool* pool_;
  int grid_dim_;
  int block_dim_;
};

/// Native body of a kernel launch. Optional per launch site: sites that
/// have not been migrated pass none and run the grid emulation under every
/// backend.
using NativeKernel = std::function<void(NativeContext&)>;

/// \brief Everything a backend needs to execute one launch. Validation,
/// chaos injection, stats, and per-kernel profiling bookkeeping stay in
/// Device::Launch (identical under every backend — satellite requirement:
/// dashboards keyed on `simgpu.kernel.<name>.*` keep working); the backend
/// owns only the execution strategy.
struct LaunchSpec {
  const char* name = nullptr;
  int grid_dim = 0;
  int block_dim = 0;
  std::size_t shared_bytes = 0;
  ThreadPool* pool = nullptr;
  const Kernel* grid = nullptr;          // never null
  const NativeKernel* native = nullptr;  // null when the site is unmigrated
  // Profiling sinks resolved once per launch by Device::Launch.
  obs::Histogram* block_seconds = nullptr;
  obs::Gauge* kernel_high_water = nullptr;
  obs::Gauge* device_high_water = nullptr;
};

/// \brief Execution-strategy interface behind Device::Launch.
///
/// Implementations are stateless singletons (obtain via Get); a Device
/// binds one at construction from SMILER_BACKEND and may be re-bound by
/// tests through Device::set_backend.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual BackendKind kind() const = 0;
  /// Runs the launch to completion (stream-synchronous, like the
  /// historical Device::Launch body).
  virtual void Execute(const LaunchSpec& spec) const = 0;

  /// The process-wide singleton implementing \p kind.
  static const Backend* Get(BackendKind kind);
};

}  // namespace simgpu
}  // namespace smiler

#endif  // SMILER_SIMGPU_BACKEND_H_
