#include "simgpu/backend.h"

#include <cstdlib>
#include <string>

#include "common/timer.h"
#include "obs/obs.h"

namespace smiler {
namespace simgpu {

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSimGrid:
      return "simgpu";
    case BackendKind::kNative:
      return "native";
  }
  return "unknown";
}

Result<BackendKind> ParseBackendKind(std::string_view name) {
  if (name == "simgpu") return BackendKind::kSimGrid;
  if (name == "native") return BackendKind::kNative;
  return Status::InvalidArgument(
      "unknown SMILER_BACKEND value '" + std::string(name) +
      "' (expected \"simgpu\" or \"native\")");
}

Result<BackendKind> BackendKindFromEnv() {
  const char* env = std::getenv("SMILER_BACKEND");
  if (env == nullptr || env[0] == '\0') return BackendKind::kSimGrid;
  return ParseBackendKind(env);
}

namespace {

/// The historical simulated-grid execution: one fresh SharedMemory arena
/// and BlockContext per block, blocks fanned over the device pool, a
/// wall-time observation and high-water update per block. Byte-for-byte
/// the pre-backend Device::Launch body.
class SimGridBackend final : public Backend {
 public:
  BackendKind kind() const override { return BackendKind::kSimGrid; }

  void Execute(const LaunchSpec& spec) const override {
    const std::size_t shared_bytes = spec.shared_bytes;
    const int grid_dim = spec.grid_dim;
    const int block_dim = spec.block_dim;
    const Kernel& kernel = *spec.grid;
    spec.pool->ParallelFor(
        static_cast<std::size_t>(grid_dim), [&](std::size_t block) {
          // Each block owns a fresh shared-memory arena, like a CUDA SM
          // assigning shared memory per resident block.
          SharedMemory shared(shared_bytes);
          BlockContext ctx;
          ctx.block_id = static_cast<int>(block);
          ctx.grid_dim = grid_dim;
          ctx.block_dim = block_dim;
          ctx.shared = &shared;
          WallTimer timer;
          kernel(ctx);
          spec.block_seconds->Observe(timer.ElapsedSeconds());
          const double peak = static_cast<double>(shared.high_water());
          spec.kernel_high_water->SetMax(peak);
          spec.device_high_water->SetMax(peak);
        });
  }
};

/// Straight-line native execution for migrated kernels; launches that
/// carry no native body fall back to the grid emulation so unmigrated
/// call sites behave identically under either backend selection.
///
/// Profiling degrades gracefully rather than vanishing: the launch still
/// counts under the same `simgpu.kernel.<name>.*` names, with one
/// whole-kernel wall-time observation into `.block_seconds` per launch
/// (there are no blocks to time individually). SharedMemory high-water
/// gauges simply do not advance — native kernels use no arenas.
class NativeBackend final : public Backend {
 public:
  BackendKind kind() const override { return BackendKind::kNative; }

  void Execute(const LaunchSpec& spec) const override {
    if (spec.native == nullptr) {
      Backend::Get(BackendKind::kSimGrid)->Execute(spec);
      return;
    }
    NativeContext ctx(spec.pool, spec.grid_dim, spec.block_dim);
    WallTimer timer;
    (*spec.native)(ctx);
    spec.block_seconds->Observe(timer.ElapsedSeconds());
  }
};

}  // namespace

const Backend* Backend::Get(BackendKind kind) {
  static const SimGridBackend sim_grid;
  static const NativeBackend native;
  switch (kind) {
    case BackendKind::kSimGrid:
      return &sim_grid;
    case BackendKind::kNative:
      return &native;
  }
  return &sim_grid;
}

}  // namespace simgpu
}  // namespace smiler
