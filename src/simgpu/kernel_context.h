#ifndef SMILER_SIMGPU_KERNEL_CONTEXT_H_
#define SMILER_SIMGPU_KERNEL_CONTEXT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <vector>

#include "chaos/fault.h"

namespace smiler {
namespace simgpu {

/// \brief Per-block scratch arena standing in for CUDA shared memory.
///
/// The paper stores the compressed DTW warping matrix and the query in
/// shared memory (Appendix E); kernels written against this arena exercise
/// the same capacity constraint (default 64 KiB, matching the paper's note
/// "up to 64KB").
class SharedMemory {
 public:
  explicit SharedMemory(std::size_t capacity_bytes)
      : data_(capacity_bytes), used_(0), high_water_(0) {}

  /// Bump-allocates \p count elements of T. Returns nullptr when the
  /// request exceeds the remaining capacity (kernel authors must treat
  /// this like exceeding CUDA shared memory: restructure the kernel or
  /// fall back to global/heap memory).
  template <typename T>
  T* Alloc(std::size_t count) {
    if (SMILER_FAULT_TRIGGERED("shared_mem.alloc")) return nullptr;
    const std::size_t align = alignof(T);
    // Align the absolute address, not just the offset: the arena base is
    // only guaranteed new-aligned, so an over-aligned T must shift its
    // first allocation relative to the base.
    const auto base = reinterpret_cast<std::uintptr_t>(data_.data());
    const std::uintptr_t aligned = (base + used_ + align - 1) / align * align;
    const std::size_t offset = static_cast<std::size_t>(aligned - base);
    if (offset > data_.size()) return nullptr;
    // Divide instead of multiplying: `count * sizeof(T)` can wrap, which
    // would hand out a pointer into a too-small arena.
    if (count > (data_.size() - offset) / sizeof(T)) return nullptr;
    used_ = offset + count * sizeof(T);
    if (used_ > high_water_) high_water_ = used_;
    return reinterpret_cast<T*>(data_.data() + offset);
  }

  /// Releases all allocations (block exit). The high-water mark survives.
  void Reset() { used_ = 0; }

  std::size_t capacity() const { return data_.size(); }
  std::size_t used() const { return used_; }
  /// Largest `used()` ever reached — the arena's occupancy profile. Never
  /// exceeds capacity() (over-capacity Allocs fail instead of counting).
  std::size_t high_water() const { return high_water_; }

 private:
  std::vector<std::byte> data_;
  std::size_t used_;
  std::size_t high_water_;
};

/// \brief Execution context handed to a kernel, one per thread block.
///
/// Lanes model CUDA threads. `ForEachLane(fn)` runs `fn(lane)` for every
/// lane of the block; consecutive ForEachLane calls are separated by an
/// implicit block-wide barrier (the SIMD phases our kernels need map onto
/// this structure exactly — see DESIGN.md S3).
struct BlockContext {
  int block_id = 0;
  int grid_dim = 1;
  int block_dim = 1;
  SharedMemory* shared = nullptr;

  template <typename Fn>
  void ForEachLane(Fn&& fn) const {
    for (int lane = 0; lane < block_dim; ++lane) fn(lane);
  }

  /// Grid-stride style helper: runs `fn(i)` for every i in [0, n) with the
  /// block's lanes striding over the range (i = lane, lane+block_dim, ...).
  template <typename Fn>
  void StridedFor(std::size_t n, Fn&& fn) const {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
};

/// A kernel is invoked once per block.
using Kernel = std::function<void(BlockContext&)>;

}  // namespace simgpu
}  // namespace smiler

#endif  // SMILER_SIMGPU_KERNEL_CONTEXT_H_
