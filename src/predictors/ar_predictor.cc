#include "predictors/ar_predictor.h"

#include <algorithm>

#include "common/math_utils.h"

namespace smiler {
namespace predictors {

Prediction AggregationPredict(const KnnTrainingSet& set) {
  Prediction p;
  p.mean = Mean(set.y);
  p.variance = std::max(Variance(set.y), 1e-6);
  return p;
}

}  // namespace predictors
}  // namespace smiler
