#ifndef SMILER_PREDICTORS_ENSEMBLE_H_
#define SMILER_PREDICTORS_ENSEMBLE_H_

#include <vector>

#include "predictors/predictor.h"

namespace smiler {
namespace predictors {

/// \brief The per-step predictions of an ensemble's cells. Cell (i, j)
/// corresponds to (EKV[i], ELV[j]); `has` marks cells that actually
/// predicted (awake cells), others are ignored by Combine/Observe.
struct PredictionGrid {
  int rows = 0;
  int cols = 0;
  std::vector<Prediction> preds;
  std::vector<char> has;

  PredictionGrid() = default;
  PredictionGrid(int r, int c)
      : rows(r), cols(c), preds(r * c), has(r * c, 0) {}

  void Set(int i, int j, const Prediction& p) {
    preds[i * cols + j] = p;
    has[i * cols + j] = 1;
  }
  bool Has(int i, int j) const { return has[i * cols + j] != 0; }
  const Prediction& At(int i, int j) const { return preds[i * cols + j]; }
};

/// \brief The ensemble matrix lambda with the adaptive auto-tuning
/// mechanism (Sections 3.2.2 and 5.1): a grid of abstract predictors
/// f_{i,j} over (EKV[i], ELV[j]) whose mixture weights are self-adaptively
/// re-estimated from each predictor's likelihood of the observed truth,
/// with the sleep & recovery strategy shutting down persistently weak
/// predictors.
class Ensemble {
 public:
  struct Options {
    int rows = 3;  ///< |EKV|
    int cols = 3;  ///< |ELV|
    /// Update weights from likelihoods (Eqn 6-9). Disabled = the paper's
    /// "SMiLerNS" ablation (ensemble with fixed uniform weights).
    bool self_adaptive = true;
    /// Sleep & recovery strategy (Section 5.1.2).
    bool sleep_and_recovery = true;
  };

  /// \brief The complete adaptive state (checkpointing): mixture weights,
  /// sleep & recovery bookkeeping, and the variance-calibration EWMA. A
  /// restored ensemble combines and adapts bitwise-identically to the
  /// snapshotted one.
  struct State {
    struct Cell {
      double weight = 0.0;
      bool awake = true;
      int counter = 1;
      int remaining = 0;
      bool just_recovered = false;
    };
    std::vector<Cell> cells;  ///< row-major rows x cols
    double z_ewma = 1.0;
    double vif = 1.0;
  };

  explicit Ensemble(const Options& options);

  int rows() const { return options_.rows; }
  int cols() const { return options_.cols; }

  /// Exports the adaptive state for checkpointing.
  State ExportState() const;
  /// Adopts a previously exported state. Fails with InvalidArgument when
  /// the cell count does not match this ensemble's rows x cols.
  Status RestoreState(const State& state);

  /// Whether predictor (i, j) should compute a prediction this step.
  bool IsAwake(int i, int j) const { return Cell(i, j).awake; }
  /// Current (normalized over awake cells) mixture weight of (i, j).
  double Weight(int i, int j) const { return Cell(i, j).weight; }
  /// Current sleep counter varsigma_{i,j} (exposed for tests).
  int SleepCounter(int i, int j) const { return Cell(i, j).counter; }
  /// Number of awake predictors.
  int NumAwake() const;

  /// The sleep threshold eta = 1 / (2 * rows * cols).
  double sleep_threshold() const { return eta_; }

  /// Eqn (3): the mixture prediction, moment-matched to one Gaussian
  ///   u = sum w u_ij,  var = sum w (sigma^2_ij + u_ij^2) - u^2
  /// over cells present in \p grid, with weights renormalized over them,
  /// then scaled by the online variance calibration factor (see
  /// variance_scale()). Returns a zero-mean unit-variance fallback when
  /// the grid is empty.
  Prediction Combine(const PredictionGrid& grid) const;

  /// Combine without the calibration scale (the raw moment-matched
  /// mixture); engines keep this for the calibration update.
  Prediction CombineRaw(const PredictionGrid& grid) const;

  /// Online variance calibration (an extension of the self-adaptive
  /// mechanism): an EWMA of the squared standardized residual
  /// (truth - u)^2 / sigma^2_raw of issued predictions. Neighbor-based
  /// variances understate the error around regime onsets; this factor
  /// re-inflates them from observed surprise. Disabled (fixed at 1) when
  /// self-adaptation is off.
  double variance_scale() const { return vif_; }

  /// Feeds one resolved forecast into the variance calibration. \p raw
  /// must be the CombineRaw output the forecast was issued from.
  void ObserveCalibration(double truth, const Prediction& raw);

  /// Log density of \p value under the full mixture (an alternative
  /// uncertainty readout; the moment-matched Gaussian is what the paper's
  /// MNLPD uses).
  double MixtureLogDensity(double value, const PredictionGrid& grid) const;

  /// Self-adaptive update after the truth arrives (Section 5.1.1): raises
  /// the weight of cells that assigned the truth high likelihood
  /// (Eqn 6-9), then runs the sleep & recovery bookkeeping (Section
  /// 5.1.2). \p grid must be the grid the evaluated prediction was made
  /// from. No-op when self_adaptive is disabled.
  void Observe(double truth, const PredictionGrid& grid);

 private:
  struct CellState {
    double weight = 0.0;
    bool awake = true;
    int counter = 1;           ///< varsigma: steps to sleep next time
    int remaining = 0;         ///< remaining sleep steps (when asleep)
    bool just_recovered = false;
  };

  CellState& Cell(int i, int j) { return cells_[i * options_.cols + j]; }
  const CellState& Cell(int i, int j) const {
    return cells_[i * options_.cols + j];
  }
  /// Renormalizes awake weights to sum to one.
  void NormalizeAwake();

  Options options_;
  double eta_;
  std::vector<CellState> cells_;
  double z_ewma_ = 1.0;  // running mean of squared standardized residuals
  double vif_ = 1.0;     // clamped variance inflation factor
};

}  // namespace predictors
}  // namespace smiler

#endif  // SMILER_PREDICTORS_ENSEMBLE_H_
