#ifndef SMILER_PREDICTORS_GP_PREDICTOR_H_
#define SMILER_PREDICTORS_GP_PREDICTOR_H_

#include <optional>

#include "gp/kernel.h"
#include "predictors/predictor.h"

namespace smiler {
namespace predictors {

/// \brief The Gaussian Process instantiation of the abstract predictor
/// (Section 5.2.2), one instance per ensemble cell.
///
/// Stateful across continuous prediction: the first call optimizes the
/// kernel hyperparameters from the heuristic seed with \p initial_cg_steps
/// CG steps; subsequent calls warm-start from the previous step's kernel
/// and take only \p online_cg_steps steps ("the energy paid for the
/// training process in previous steps is partially preserved").
///
/// Numerical failures (degenerate kNN data) fall back to the aggregation
/// predictor so continuous prediction never stalls.
class GpCellPredictor {
 public:
  /// Predicts the h-step-ahead distribution for query segment \p x0
  /// (length = set.x.cols()) from the cell's kNN data.
  ///
  /// \p gram, when non-null, views the pairwise squared distances of
  /// set.x. SensorEngine computes one Gram per ELV column and hands each
  /// EKV row of that column its leading k x k block (all those cells
  /// train on prefixes of the same neighbor list, so the block is exactly
  /// their own Gram); training and the final fit then skip all distance
  /// computation. The viewed storage must outlive the call.
  Prediction Predict(const KnnTrainingSet& set, const double* x0,
                     int initial_cg_steps, int online_cg_steps,
                     const la::ConstMatrixView* gram = nullptr);

  /// Drops the warm-start state (used by tests and by engines that reset
  /// after long gaps).
  void Reset() { kernel_.reset(); }

  /// Re-installs a warm-start kernel (checkpoint restore): the next
  /// Predict continues online training from \p kernel exactly as if the
  /// cell had never restarted.
  void RestoreKernel(const gp::SeKernel& kernel) { kernel_ = kernel; }

  /// The current warm-start kernel, if any.
  const std::optional<gp::SeKernel>& kernel() const { return kernel_; }

 private:
  std::optional<gp::SeKernel> kernel_;
};

}  // namespace predictors
}  // namespace smiler

#endif  // SMILER_PREDICTORS_GP_PREDICTOR_H_
