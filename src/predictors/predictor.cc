#include "predictors/predictor.h"

#include <algorithm>

namespace smiler {
namespace predictors {

Result<KnnTrainingSet> MakeTrainingSet(const std::vector<double>& series,
                                       const index::ItemQueryResult& item,
                                       int k, int h) {
  if (item.neighbors.empty()) {
    return Status::InvalidArgument("item query has no neighbors");
  }
  if (k <= 0 || h < 1) {
    return Status::InvalidArgument("k must be > 0 and h >= 1");
  }
  const int use_k =
      std::min<int>(k, static_cast<int>(item.neighbors.size()));
  const int d = item.d;

  KnnTrainingSet set;
  set.x = la::Matrix(use_k, d);
  set.y.resize(use_k);
  for (int j = 0; j < use_k; ++j) {
    const long t = item.neighbors[j].t;
    const long y_index = t + d - 1 + h;
    if (t < 0 || y_index >= static_cast<long>(series.size())) {
      return Status::OutOfRange(
          "neighbor's h-step-ahead value not observed yet");
    }
    double* row = set.x.Row(j);
    for (int p = 0; p < d; ++p) row[p] = series[t + p];
    set.y[j] = series[y_index];
  }
  return set;
}

}  // namespace predictors
}  // namespace smiler
