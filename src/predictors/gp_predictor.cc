#include "predictors/gp_predictor.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"
#include "gp/trainer.h"
#include "obs/metrics.h"
#include "predictors/ar_predictor.h"

namespace smiler {
namespace predictors {

namespace {

// Counts GP fits abandoned for the aggregation predictor (singular kernel
// matrices the Cholesky jitter could not repair).
void CountCholeskyFallback() {
  static obs::Counter& fallbacks =
      obs::Registry::Global().GetCounter("gp.cholesky_fallbacks");
  fallbacks.Increment();
}

// LOO training on a handful of points can collapse the noise scale theta2
// to ~0, producing wildly overconfident predictive variances. Clamp the
// noise standard deviation to a small fraction of the targets' spread.
gp::SeKernel WithNoiseFloor(const gp::SeKernel& kernel,
                            const std::vector<double>& y) {
  // Relative floor against LOO noise collapse, plus an absolute floor
  // (1e-4 on the z-normalized scale) so exact-duplicate neighbor sets —
  // ubiquitous on quantized feeds like car-park counts — keep a sane
  // observation noise. This is the structural edge over the aggregation
  // predictor's pseudo-variance, which the paper calls out: "the true
  // value may not follow the normal distribution defined by u0 and
  // sigma0" (Section 5.2.1).
  const double var_y = Variance(y);
  const double floor_log_theta2 =
      0.5 * std::log(std::max(0.04 * var_y, 1e-4));
  auto params = kernel.log_params();
  if (params[2] < floor_log_theta2) params[2] = floor_log_theta2;
  return gp::SeKernel(params[0], params[1], params[2]);
}

}  // namespace

Prediction GpCellPredictor::Predict(const KnnTrainingSet& set,
                                    const double* x0, int initial_cg_steps,
                                    int online_cg_steps,
                                    const la::ConstMatrixView* gram) {
  // Center the targets: the zero-mean GP prior (Appendix B.3) otherwise
  // shrinks predictions toward 0, which is badly biased whenever the
  // local kNN targets sit far from the series' global mean (rush hours,
  // congestion events). The GP then models the residual around the
  // neighbors' mean — strictly generalizing the aggregation predictor.
  const double y_mean = Mean(set.y);
  std::vector<double> y_centered = set.y;
  for (double& v : y_centered) v -= y_mean;

  const bool warm = kernel_.has_value();
  const int steps = warm ? online_cg_steps : initial_cg_steps;
  // Moderate prior precision plus a one-log-unit trust region around the
  // data-driven heuristic: the LOO likelihood may refine the kernel but
  // cannot drift into the degenerate overconfident configurations that
  // near-duplicate neighbor sets reward (see TrainLoo).
  constexpr double kPriorPrecision = 8.0;
  constexpr double kTrustRadius = 0.35;
  auto trained = gp::TrainLoo(set.x, y_centered, warm ? &*kernel_ : nullptr,
                              steps, kPriorPrecision, kTrustRadius, gram);
  if (!trained.ok()) {
    // Degenerate kNN data (e.g. all-identical targets): aggregate instead,
    // and clear the warm start so the next step retries from scratch.
    CountCholeskyFallback();
    kernel_.reset();
    return AggregationPredict(set);
  }
  trained->kernel = WithNoiseFloor(trained->kernel, set.y);
  // The predictive fit needs exactly two solves against one factorization
  // (alpha for the mean, v for the variance), so the fused multi-RHS path
  // replaces Fit + Predict: same factorization, half the triangular
  // traversals, bitwise-identical posterior.
  auto fused = gp::GpRegressor::FitAndPredict(set.x, y_centered,
                                              trained->kernel, x0, gram);
  if (!fused.ok()) {
    CountCholeskyFallback();
    kernel_.reset();
    return AggregationPredict(set);
  }
  kernel_ = trained->kernel;
  Prediction p = *fused;
  p.mean += y_mean;
  return p;
}

}  // namespace predictors
}  // namespace smiler
