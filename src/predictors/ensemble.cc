#include "predictors/ensemble.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"

namespace smiler {
namespace predictors {

Ensemble::Ensemble(const Options& options) : options_(options) {
  const int n = options_.rows * options_.cols;
  eta_ = 1.0 / (2.0 * n);
  cells_.assign(n, CellState{});
  for (CellState& c : cells_) c.weight = 1.0 / n;
}

Ensemble::State Ensemble::ExportState() const {
  State state;
  state.cells.reserve(cells_.size());
  for (const CellState& c : cells_) {
    state.cells.push_back(State::Cell{c.weight, c.awake, c.counter,
                                      c.remaining, c.just_recovered});
  }
  state.z_ewma = z_ewma_;
  state.vif = vif_;
  return state;
}

Status Ensemble::RestoreState(const State& state) {
  if (state.cells.size() != cells_.size()) {
    return Status::InvalidArgument("ensemble state cell count mismatch");
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const State::Cell& c = state.cells[i];
    cells_[i] = CellState{c.weight, c.awake, c.counter, c.remaining,
                          c.just_recovered};
  }
  z_ewma_ = state.z_ewma;
  vif_ = state.vif;
  return Status::OK();
}

int Ensemble::NumAwake() const {
  int n = 0;
  for (const CellState& c : cells_) n += c.awake ? 1 : 0;
  return n;
}

void Ensemble::NormalizeAwake() {
  double sum = 0.0;
  for (const CellState& c : cells_) {
    if (c.awake) sum += c.weight;
  }
  if (sum <= 0.0) {
    // Degenerate: reset awake cells to uniform.
    const int awake = NumAwake();
    for (CellState& c : cells_) {
      if (c.awake) c.weight = awake > 0 ? 1.0 / awake : 0.0;
    }
    return;
  }
  for (CellState& c : cells_) {
    if (c.awake) c.weight /= sum;
  }
}

Prediction Ensemble::Combine(const PredictionGrid& grid) const {
  Prediction p = CombineRaw(grid);
  p.variance *= vif_;
  return p;
}

void Ensemble::ObserveCalibration(double truth, const Prediction& raw) {
  if (!options_.self_adaptive) return;
  const double var = std::max(raw.variance, 1e-12);
  const double z = (truth - raw.mean) * (truth - raw.mean) / var;
  constexpr double kAlpha = 0.05;
  z_ewma_ = (1.0 - kAlpha) * z_ewma_ + kAlpha * std::min(z, 400.0);
  vif_ = std::clamp(z_ewma_, 1.0, 50.0);
}

Prediction Ensemble::CombineRaw(const PredictionGrid& grid) const {
  double wsum = 0.0;
  double mean = 0.0;
  double second = 0.0;
  for (int i = 0; i < options_.rows; ++i) {
    for (int j = 0; j < options_.cols; ++j) {
      if (!grid.Has(i, j)) continue;
      const double w = Cell(i, j).weight;
      if (w <= 0.0) continue;
      const Prediction& p = grid.At(i, j);
      wsum += w;
      mean += w * p.mean;
      second += w * (p.variance + p.mean * p.mean);
    }
  }
  Prediction out;
  if (wsum <= 0.0) {
    out.mean = 0.0;
    out.variance = 1.0;
    return out;
  }
  mean /= wsum;
  second /= wsum;
  out.mean = mean;
  out.variance = std::max(second - mean * mean, 1e-12);
  return out;
}

double Ensemble::MixtureLogDensity(double value,
                                   const PredictionGrid& grid) const {
  // log sum_ij w_ij N(value; u_ij, var_ij) via log-sum-exp.
  double max_term = -kInf;
  std::vector<double> terms;
  double wsum = 0.0;
  for (int i = 0; i < options_.rows; ++i) {
    for (int j = 0; j < options_.cols; ++j) {
      if (!grid.Has(i, j)) continue;
      const double w = Cell(i, j).weight;
      if (w <= 0.0) continue;
      const Prediction& p = grid.At(i, j);
      const double term =
          std::log(w) + GaussianLogDensity(value, p.mean, p.variance);
      terms.push_back(term);
      wsum += w;
      max_term = std::max(max_term, term);
    }
  }
  if (terms.empty() || !(wsum > 0.0)) {
    return GaussianLogDensity(value, 0.0, 1.0);
  }
  double sum = 0.0;
  for (double t : terms) sum += std::exp(t - max_term);
  return max_term + std::log(sum) - std::log(wsum);
}

void Ensemble::Observe(double truth, const PredictionGrid& grid) {
  if (!options_.self_adaptive) return;

  // --- Eqn (6-9): likelihood-proportional weight reinforcement ---
  // Log-domain for robustness: li normalized to sum 1 over evaluated
  // cells, lambda_bar = lambda + li, then renormalized.
  std::vector<double> loglik(cells_.size(), -kInf);
  double max_ll = -kInf;
  for (int i = 0; i < options_.rows; ++i) {
    for (int j = 0; j < options_.cols; ++j) {
      CellState& c = Cell(i, j);
      if (!c.awake || !grid.Has(i, j)) continue;
      const Prediction& p = grid.At(i, j);
      const double ll = GaussianLogDensity(truth, p.mean, p.variance);
      loglik[i * options_.cols + j] = ll;
      max_ll = std::max(max_ll, ll);
    }
  }
  if (std::isfinite(max_ll)) {
    double lsum = 0.0;
    for (double ll : loglik) {
      if (std::isfinite(ll)) lsum += std::exp(ll - max_ll);
    }
    for (std::size_t c = 0; c < cells_.size(); ++c) {
      if (std::isfinite(loglik[c]) && lsum > 0.0) {
        cells_[c].weight += std::exp(loglik[c] - max_ll) / lsum;
      }
    }
    NormalizeAwake();
  }

  if (!options_.sleep_and_recovery) return;

  // --- Recovery (Section 5.1.2) ---
  // Cells recovering now are exempt from this step's sleep evaluation:
  // they have not predicted yet. Their just_recovered flag survives into
  // the next Observe so an immediate re-sleep doubles the counter.
  std::vector<char> recovered_now(cells_.size(), 0);
  int recovered = 0;
  for (std::size_t idx = 0; idx < cells_.size(); ++idx) {
    CellState& c = cells_[idx];
    if (!c.awake) {
      c.remaining -= 1;
      if (c.remaining <= 0) {
        c.awake = true;
        c.just_recovered = true;
        recovered_now[idx] = 1;
        ++recovered;
      }
    }
  }
  if (recovered > 0) {
    // Inject eta / (1 - kappa*eta) each, so after renormalization every
    // recovered predictor holds exactly eta.
    const double inject = eta_ / std::max(1e-9, 1.0 - recovered * eta_);
    for (std::size_t idx = 0; idx < cells_.size(); ++idx) {
      if (recovered_now[idx]) cells_[idx].weight = inject;
    }
    NormalizeAwake();
  }

  // --- Sleep transitions ---
  bool slept_any = false;
  for (std::size_t idx = 0; idx < cells_.size(); ++idx) {
    CellState& c = cells_[idx];
    if (!c.awake || recovered_now[idx]) continue;
    if (c.weight < eta_) {
      // "Weaker" predictors sleep; immediately re-sleeping after recovery
      // doubles the counter.
      if (c.just_recovered) {
        c.counter = std::min(c.counter * 2, 1 << 20);
      }
      c.awake = false;
      c.remaining = c.counter;
      c.weight = 0.0;
      slept_any = true;
    } else {
      // Survived a step: halve the counter down to 1.
      c.counter = std::max(1, c.counter / 2);
    }
    c.just_recovered = false;
  }
  // Never let the whole ensemble sleep.
  if (NumAwake() == 0) {
    CellState* best = &cells_[0];
    for (CellState& c : cells_) {
      if (c.remaining < best->remaining) best = &c;
    }
    best->awake = true;
    best->weight = 1.0;
  }
  if (slept_any) NormalizeAwake();
}

}  // namespace predictors
}  // namespace smiler
