#ifndef SMILER_PREDICTORS_AR_PREDICTOR_H_
#define SMILER_PREDICTORS_AR_PREDICTOR_H_

#include "predictors/predictor.h"

namespace smiler {
namespace predictors {

/// \brief The simple Aggregation Regression predictor (Section 5.2.1,
/// Eqn 10-13): pseudo-mean = mean of the neighbors' h-step-ahead values,
/// pseudo-variance = their population variance (clamped away from zero so
/// downstream Gaussian densities stay defined).
Prediction AggregationPredict(const KnnTrainingSet& set);

}  // namespace predictors
}  // namespace smiler

#endif  // SMILER_PREDICTORS_AR_PREDICTOR_H_
