#ifndef SMILER_PREDICTORS_PREDICTOR_H_
#define SMILER_PREDICTORS_PREDICTOR_H_

#include <vector>

#include "common/status.h"
#include "gp/gp_regressor.h"
#include "index/knn_result.h"
#include "la/matrix.h"

namespace smiler {
namespace predictors {

/// Gaussian predictive distribution (re-exported for predictor call sites).
using Prediction = gp::Prediction;

/// \brief The kNN data (X_{k,d}, Y_h) of Definition 3.1: neighbor segments
/// as matrix rows plus their h-step-ahead values.
struct KnnTrainingSet {
  la::Matrix x;            ///< k rows, each a d-length neighbor segment
  std::vector<double> y;   ///< y_{j,h} = value h steps after each segment
};

/// \brief Assembles the training set for one ensemble cell from a suffix
/// kNN result: the first \p k neighbors of \p item (ascending DTW order)
/// become rows of X; y_j = series[t_j + d - 1 + h].
///
/// Fails with InvalidArgument when the item holds no neighbors, and with
/// OutOfRange when a neighbor's h-step-ahead value is not yet observed
/// (callers prevent this via the search's reserve_horizon).
Result<KnnTrainingSet> MakeTrainingSet(const std::vector<double>& series,
                                       const index::ItemQueryResult& item,
                                       int k, int h);

}  // namespace predictors
}  // namespace smiler

#endif  // SMILER_PREDICTORS_PREDICTOR_H_
