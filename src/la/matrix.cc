#include "la/matrix.h"

#include <algorithm>
#include <cmath>

namespace smiler {
namespace la {

namespace {

// Cache tile for the transpose (kTile^2 * 8 bytes = 8 KiB, well inside L1).
constexpr std::size_t kTransposeTile = 32;

// Output rows accumulated together per pass over B in MatMul. Four rows
// keep 4 accumulator streams live (enough ILP to hide FMA latency) while
// each row of B is loaded once per 4 rows of A instead of once per row.
constexpr std::size_t kMatMulRowBlock = 4;

}  // namespace

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r0 = 0; r0 < rows_; r0 += kTransposeTile) {
    const std::size_t r1 = std::min(rows_, r0 + kTransposeTile);
    for (std::size_t c0 = 0; c0 < cols_; c0 += kTransposeTile) {
      const std::size_t c1 = std::min(cols_, c0 + kTransposeTile);
      for (std::size_t r = r0; r < r1; ++r) {
        const double* SMILER_RESTRICT row = Row(r);
        for (std::size_t c = c0; c < c1; ++c) out(c, r) = row[c];
      }
    }
  }
  return out;
}

std::vector<double> Matrix::MatVec(const std::vector<double>& x) const {
  assert(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* SMILER_RESTRICT row = Row(r);
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += row[c] * x[c];
    y[r] = s;
  }
  return y;
}

std::vector<double> Matrix::TransMatVec(const std::vector<double>& x) const {
  assert(x.size() == rows_);
  std::vector<double> y(cols_, 0.0);
  double* SMILER_RESTRICT yp = y.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* SMILER_RESTRICT row = Row(r);
    const double xr = x[r];
#pragma omp simd
    for (std::size_t c = 0; c < cols_; ++c) yp[c] += row[c] * xr;
  }
  return y;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  const std::size_t m = rows_;
  const std::size_t p = cols_;
  const std::size_t n = other.cols_;
  Matrix out(m, n);
  std::size_t r = 0;
  for (; r + kMatMulRowBlock <= m; r += kMatMulRowBlock) {
    const double* SMILER_RESTRICT a0 = Row(r);
    const double* SMILER_RESTRICT a1 = Row(r + 1);
    const double* SMILER_RESTRICT a2 = Row(r + 2);
    const double* SMILER_RESTRICT a3 = Row(r + 3);
    double* SMILER_RESTRICT o0 = out.Row(r);
    double* SMILER_RESTRICT o1 = out.Row(r + 1);
    double* SMILER_RESTRICT o2 = out.Row(r + 2);
    double* SMILER_RESTRICT o3 = out.Row(r + 3);
    for (std::size_t k = 0; k < p; ++k) {
      const double* SMILER_RESTRICT brow = other.Row(k);
      const double c0 = a0[k];
      const double c1 = a1[k];
      const double c2 = a2[k];
      const double c3 = a3[k];
#pragma omp simd
      for (std::size_t c = 0; c < n; ++c) {
        const double b = brow[c];
        o0[c] += c0 * b;
        o1[c] += c1 * b;
        o2[c] += c2 * b;
        o3[c] += c3 * b;
      }
    }
  }
  for (; r < m; ++r) {
    const double* SMILER_RESTRICT arow = Row(r);
    double* SMILER_RESTRICT orow = out.Row(r);
    for (std::size_t k = 0; k < p; ++k) {
      const double a = arow[k];
      const double* SMILER_RESTRICT brow = other.Row(k);
#pragma omp simd
      for (std::size_t c = 0; c < n; ++c) orow[c] += a * brow[c];
    }
  }
  return out;
}

void Matrix::AddToDiagonal(double value) {
  assert(rows_ == cols_);
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) += value;
}

bool Matrix::ApproxEquals(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y) {
  assert(x.size() == y->size());
  for (std::size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

double Norm2(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

void Scale(double alpha, std::vector<double>* v) {
  for (double& x : *v) x *= alpha;
}

}  // namespace la
}  // namespace smiler
