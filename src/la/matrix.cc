#include "la/matrix.h"

#include <cmath>

namespace smiler {
namespace la {

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

std::vector<double> Matrix::MatVec(const std::vector<double>& x) const {
  assert(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = Row(r);
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += row[c] * x[c];
    y[r] = s;
  }
  return y;
}

std::vector<double> Matrix::TransMatVec(const std::vector<double>& x) const {
  assert(x.size() == rows_);
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = Row(r);
    const double xr = x[r];
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* arow = Row(r);
    double* orow = out.Row(r);
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = arow[k];
      if (a == 0.0) continue;
      const double* brow = other.Row(k);
      for (std::size_t c = 0; c < other.cols_; ++c) orow[c] += a * brow[c];
    }
  }
  return out;
}

void Matrix::AddToDiagonal(double value) {
  assert(rows_ == cols_);
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) += value;
}

bool Matrix::ApproxEquals(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y) {
  assert(x.size() == y->size());
  for (std::size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

double Norm2(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

void Scale(double alpha, std::vector<double>* v) {
  for (double& x : *v) x *= alpha;
}

}  // namespace la
}  // namespace smiler
