#ifndef SMILER_LA_CHOLESKY_H_
#define SMILER_LA_CHOLESKY_H_

#include <vector>

#include "common/status.h"
#include "la/matrix.h"

namespace smiler {
namespace la {

/// \brief Lower-triangular Cholesky factorization A = L L^T of a symmetric
/// positive definite matrix, with solves, inverse and log-determinant.
///
/// This is the numerical core of every GP in the project: posterior means,
/// variances, LOO quantities and likelihood gradients all reduce to solves
/// against the kernel matrix. The factorization is right-looking and
/// cache-blocked: matrices up to the block size (which covers every
/// per-cell ensemble kernel matrix) run through a strict-order scalar
/// kernel that is bitwise-identical to the historical unblocked
/// implementation (see reference.h), while larger systems get panelled
/// SIMD trailing updates. Multi-RHS solves run all right-hand sides
/// through one traversal of L so horizon columns and full inverses share
/// a single factorization pass.
class Cholesky {
 public:
  /// Dimension at or below which factorization stays on the strict-order
  /// unblocked kernel (and above which panelled SIMD updates kick in).
  static constexpr std::size_t kBlockSize = 128;

  /// Constructs an empty (dim() == 0) factorization; assign from Factor()
  /// before use.
  Cholesky() = default;

  /// Factorizes \p a (symmetric positive definite). If the factorization
  /// breaks down, retries after adding a small diagonal jitter, escalating
  /// up to \p max_jitter; fails with NumericalError beyond that.
  static Result<Cholesky> Factor(const Matrix& a, double max_jitter = 1e-4);

  /// Solves A x = b. Requires b.size() == dim().
  std::vector<double> Solve(const std::vector<double>& b) const;

  /// Solves L y = b (forward substitution).
  std::vector<double> SolveLower(const std::vector<double>& b) const;

  /// Solves L^T x = y (backward substitution).
  std::vector<double> SolveUpper(const std::vector<double>& y) const;

  /// Solves A X = B, overwriting \p b with X. All right-hand sides advance
  /// together through one forward and one backward pass over L (the inner
  /// loops run contiguously across RHS columns), which is both cache-
  /// friendlier and vectorizable — per element the arithmetic order is
  /// identical to solving column-by-column.
  void SolveMatrixInPlace(Matrix* b) const;

  /// Solves A X = B (multi-RHS; returns X).
  Matrix SolveMatrix(const Matrix& b) const;

  /// Full inverse A^{-1} (needed by LOO *gradients*, which contract
  /// against whole rows of A^{-1}).
  Matrix Inverse() const;

  /// diag(A^{-1}) without forming the full inverse: column j of L^{-1}
  /// costs one partial forward solve and diag(A^{-1})_j = ||L^{-1} e_j||^2,
  /// so the whole diagonal is ~n^3/6 flops versus n^3 for Inverse().
  /// The LOO predictive mean/variance formulas only ever need this.
  std::vector<double> InverseDiagonal() const;

  /// log |A| = 2 * sum_i log L_ii.
  double LogDet() const;

  /// Dimension of the factored matrix.
  std::size_t dim() const { return l_.rows(); }

  /// The lower-triangular factor L.
  const Matrix& L() const { return l_; }

  /// Jitter that had to be added to the diagonal to factorize (0 if none).
  double jitter() const { return jitter_; }

 private:
  Matrix l_;
  double jitter_ = 0.0;
};

}  // namespace la
}  // namespace smiler

#endif  // SMILER_LA_CHOLESKY_H_
