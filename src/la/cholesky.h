#ifndef SMILER_LA_CHOLESKY_H_
#define SMILER_LA_CHOLESKY_H_

#include <vector>

#include "common/status.h"
#include "la/matrix.h"

namespace smiler {
namespace la {

/// \brief Lower-triangular Cholesky factorization A = L L^T of a symmetric
/// positive definite matrix, with solves, inverse and log-determinant.
///
/// This is the numerical core of every GP in the project: posterior means,
/// variances, LOO quantities and likelihood gradients all reduce to solves
/// against the kernel matrix.
class Cholesky {
 public:
  /// Constructs an empty (dim() == 0) factorization; assign from Factor()
  /// before use.
  Cholesky() = default;

  /// Factorizes \p a (symmetric positive definite). If the factorization
  /// breaks down, retries after adding a small diagonal jitter, escalating
  /// up to \p max_jitter; fails with NumericalError beyond that.
  static Result<Cholesky> Factor(const Matrix& a, double max_jitter = 1e-4);

  /// Solves A x = b. Requires b.size() == dim().
  std::vector<double> Solve(const std::vector<double>& b) const;

  /// Solves L y = b (forward substitution).
  std::vector<double> SolveLower(const std::vector<double>& b) const;

  /// Solves L^T x = y (backward substitution).
  std::vector<double> SolveUpper(const std::vector<double>& y) const;

  /// Solves A X = B column-by-column.
  Matrix SolveMatrix(const Matrix& b) const;

  /// Full inverse A^{-1} (used for LOO formulas which need diag(A^{-1})).
  Matrix Inverse() const;

  /// log |A| = 2 * sum_i log L_ii.
  double LogDet() const;

  /// Dimension of the factored matrix.
  std::size_t dim() const { return l_.rows(); }

  /// The lower-triangular factor L.
  const Matrix& L() const { return l_; }

  /// Jitter that had to be added to the diagonal to factorize (0 if none).
  double jitter() const { return jitter_; }

 private:
  Matrix l_;
  double jitter_ = 0.0;
};

}  // namespace la
}  // namespace smiler

#endif  // SMILER_LA_CHOLESKY_H_
