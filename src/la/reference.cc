#include "la/reference.h"

#include <cmath>

namespace smiler {
namespace la {
namespace reference {

bool CholeskyFactorUnblocked(Matrix* m) {
  const std::size_t n = m->rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = (*m)(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= (*m)(j, k) * (*m)(j, k);
    if (!(d > 0.0) || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    (*m)(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = (*m)(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= (*m)(i, k) * (*m)(j, k);
      (*m)(i, j) = s * inv;
    }
    for (std::size_t i = 0; i < j; ++i) (*m)(i, j) = 0.0;
  }
  return true;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* arow = a.Row(r);
    double* orow = out.Row(r);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double v = arow[k];
      if (v == 0.0) continue;
      const double* brow = b.Row(k);
      for (std::size_t c = 0; c < b.cols(); ++c) orow[c] += v * brow[c];
    }
  }
  return out;
}

Matrix SolveMatrixColumnwise(const Cholesky& chol, const Matrix& b) {
  Matrix out(b.rows(), b.cols());
  std::vector<double> col(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) col[r] = b(r, c);
    std::vector<double> x = chol.Solve(col);
    for (std::size_t r = 0; r < b.rows(); ++r) out(r, c) = x[r];
  }
  return out;
}

std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x) {
  assert(x.size() == a.cols());
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.Row(r);
    double s = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) s += row[c] * x[c];
    y[r] = s;
  }
  return y;
}

}  // namespace reference
}  // namespace la
}  // namespace smiler
