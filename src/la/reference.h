#ifndef SMILER_LA_REFERENCE_H_
#define SMILER_LA_REFERENCE_H_

#include <vector>

#include "la/cholesky.h"
#include "la/matrix.h"

namespace smiler {
namespace la {
namespace reference {

/// \brief The pre-blocking scalar implementations of the la hot kernels,
/// kept verbatim as ground truth.
///
/// The blocked/batched production kernels in matrix.cc / cholesky.cc must
/// agree with these to 1e-12 (tests/la_property_test.cc) and are measured
/// against them by bench_micro_kernels ("speedup-vs-reference" in
/// BENCH_la.json). Never optimize these: their value is being boring.

/// In-place unblocked lower Cholesky of \p m (strict column-at-a-time
/// order); returns false on breakdown. No jitter escalation.
bool CholeskyFactorUnblocked(Matrix* m);

/// Naive triple-loop matrix product a * b (including the historical
/// zero-skip branch the tiled rewrite removed).
Matrix MatMul(const Matrix& a, const Matrix& b);

/// Solves A X = B one column at a time through chol.Solve().
Matrix SolveMatrixColumnwise(const Cholesky& chol, const Matrix& b);

/// Row-by-row scalar matrix-vector product.
std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x);

}  // namespace reference
}  // namespace la
}  // namespace smiler

#endif  // SMILER_LA_REFERENCE_H_
