#ifndef SMILER_LA_MATRIX_H_
#define SMILER_LA_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <vector>

namespace smiler {
namespace la {

/// \brief Dense row-major matrix of doubles.
///
/// Sized for the semi-lazy workload: kernel matrices are k x k with
/// k <= ~128, so a simple cache-friendly dense layout outperforms anything
/// fancier. No expression templates; operations are explicit functions.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix initialised with \p fill.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Identity matrix of size n.
  static Matrix Identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Raw pointer to row \p r (contiguous `cols()` doubles).
  double* Row(std::size_t r) { return data_.data() + r * cols_; }
  const double* Row(std::size_t r) const { return data_.data() + r * cols_; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Matrix-vector product. Requires x.size() == cols().
  std::vector<double> MatVec(const std::vector<double>& x) const;

  /// Transposed matrix-vector product (A^T x). Requires x.size() == rows().
  std::vector<double> TransMatVec(const std::vector<double>& x) const;

  /// Matrix product this * other. Requires cols() == other.rows().
  Matrix MatMul(const Matrix& other) const;

  /// Adds \p value to every diagonal entry (requires square).
  void AddToDiagonal(double value);

  /// Frobenius-norm-based approximate equality (entrywise tolerance).
  bool ApproxEquals(const Matrix& other, double tol = 1e-9) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Dot product of equally sized vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// y += alpha * x (equally sized vectors).
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y);

/// Euclidean norm.
double Norm2(const std::vector<double>& v);

/// Elementwise v *= alpha.
void Scale(double alpha, std::vector<double>* v);

}  // namespace la
}  // namespace smiler

#endif  // SMILER_LA_MATRIX_H_
