#ifndef SMILER_LA_MATRIX_H_
#define SMILER_LA_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <vector>

#if defined(__GNUC__) || defined(__clang__)
#define SMILER_RESTRICT __restrict__
#else
#define SMILER_RESTRICT
#endif

namespace smiler {
namespace la {

/// \brief Dense row-major matrix of doubles.
///
/// Sized for the semi-lazy workload: per-cell kernel matrices are k x k
/// with k <= ~128, while the shared per-column Gram caches and baseline
/// inducing-point systems reach a few hundred. Operations are explicit
/// functions (no expression templates); the hot ones are cache-blocked
/// and written so the compiler can vectorize their inner loops.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix initialised with \p fill.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Identity matrix of size n.
  static Matrix Identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Raw pointer to row \p r (contiguous `cols()` doubles).
  double* Row(std::size_t r) { return data_.data() + r * cols_; }
  const double* Row(std::size_t r) const { return data_.data() + r * cols_; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Matrix-vector product. Requires x.size() == cols().
  std::vector<double> MatVec(const std::vector<double>& x) const;

  /// Transposed matrix-vector product (A^T x). Requires x.size() == rows().
  std::vector<double> TransMatVec(const std::vector<double>& x) const;

  /// Matrix product this * other. Requires cols() == other.rows().
  /// Register-blocked over rows of this (each row of other streams through
  /// several output rows at once) — dense kernel matrices vectorize with
  /// no per-element branching.
  Matrix MatMul(const Matrix& other) const;

  /// Adds \p value to every diagonal entry (requires square).
  void AddToDiagonal(double value);

  /// Frobenius-norm-based approximate equality (entrywise tolerance).
  bool ApproxEquals(const Matrix& other, double tol = 1e-9) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// \brief Non-owning read-only view of a row-major matrix (or of a
/// top-left block of one, via the stride).
///
/// The workhorse of cross-cell Gram reuse: SensorEngine computes one
/// pairwise squared-distance matrix per ELV column and every EKV row of
/// that column reads its leading k x k block through a view, so no cell
/// recomputes or copies shared distances. The viewed storage must outlive
/// the view; views are trivially copyable.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  /// Views the whole of \p m (implicit: any Matrix argument position that
  /// expects a view accepts the matrix itself).
  ConstMatrixView(const Matrix& m)  // NOLINT(google-explicit-constructor)
      : data_(m.empty() ? nullptr : m.Row(0)),
        rows_(m.rows()),
        cols_(m.cols()),
        stride_(m.cols()) {}
  ConstMatrixView(const double* data, std::size_t rows, std::size_t cols,
                  std::size_t stride)
      : data_(data), rows_(rows), cols_(cols), stride_(stride) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * stride_ + c];
  }
  const double* Row(std::size_t r) const { return data_ + r * stride_; }

  /// The top-left n x n block as a view over the same storage.
  ConstMatrixView Leading(std::size_t n) const {
    assert(n <= rows_ && n <= cols_);
    return ConstMatrixView(data_, n, n, stride_);
  }

 private:
  const double* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
};

/// Dot product of equally sized vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// y += alpha * x (equally sized vectors).
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y);

/// Euclidean norm.
double Norm2(const std::vector<double>& v);

/// Elementwise v *= alpha.
void Scale(double alpha, std::vector<double>* v);

}  // namespace la
}  // namespace smiler

#endif  // SMILER_LA_MATRIX_H_
