#include "la/cholesky.h"

#include <algorithm>
#include <cmath>

namespace smiler {
namespace la {

namespace {

// Factors the diagonal block rows/cols [j0, j1) in place, assuming every
// column < j0 has already been applied to it (right-looking invariant).
// With j0 == 0 and j1 == n this is exactly the historical unblocked
// algorithm, bitwise included: contributions subtract one column at a
// time in ascending k, and the panel below the block is reduced the same
// way. Returns false on breakdown.
bool FactorDiagonalBlock(Matrix* m, std::size_t j0, std::size_t j1) {
  for (std::size_t j = j0; j < j1; ++j) {
    const double* SMILER_RESTRICT jrow = m->Row(j);
    double d = jrow[j];
    for (std::size_t k = j0; k < j; ++k) d -= jrow[k] * jrow[k];
    if (!(d > 0.0) || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    (*m)(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < j1; ++i) {
      double* SMILER_RESTRICT irow = m->Row(i);
      double s = irow[j];
      for (std::size_t k = j0; k < j; ++k) s -= irow[k] * jrow[k];
      irow[j] = s * inv;
    }
  }
  return true;
}

// Applies the freshly factored diagonal block [j0, j1) to the panel rows
// [j1, n): a triangular solve of each row against the block's transpose.
// Only reached when the matrix spans more than one block, so the
// strict-order (bitwise) guarantee does not constrain it and the dot may
// vectorize freely.
void SolvePanel(Matrix* m, std::size_t j0, std::size_t j1) {
  const std::size_t n = m->rows();
  std::size_t i = j1;
  // Four panel rows per pass: the j-loop is sequential (triangular
  // dependency) but rows are independent, so each dot against the shared
  // block row runs four accumulator chains.
  for (; i + 4 <= n; i += 4) {
    double* SMILER_RESTRICT r0 = m->Row(i);
    double* SMILER_RESTRICT r1 = m->Row(i + 1);
    double* SMILER_RESTRICT r2 = m->Row(i + 2);
    double* SMILER_RESTRICT r3 = m->Row(i + 3);
    for (std::size_t j = j0; j < j1; ++j) {
      const double* SMILER_RESTRICT jrow = m->Row(j);
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
#pragma omp simd reduction(+ : s0, s1, s2, s3)
      for (std::size_t k = j0; k < j; ++k) {
        const double b = jrow[k];
        s0 += r0[k] * b;
        s1 += r1[k] * b;
        s2 += r2[k] * b;
        s3 += r3[k] * b;
      }
      const double d = jrow[j];
      r0[j] = (r0[j] - s0) / d;
      r1[j] = (r1[j] - s1) / d;
      r2[j] = (r2[j] - s2) / d;
      r3[j] = (r3[j] - s3) / d;
    }
  }
  for (; i < n; ++i) {
    double* SMILER_RESTRICT irow = m->Row(i);
    for (std::size_t j = j0; j < j1; ++j) {
      const double* SMILER_RESTRICT jrow = m->Row(j);
      double s = 0.0;
#pragma omp simd reduction(+ : s)
      for (std::size_t k = j0; k < j; ++k) s += irow[k] * jrow[k];
      irow[j] = (irow[j] - s) / jrow[j];
    }
  }
}

// Rank-(j1-j0) update of the trailing lower triangle [j1, n) x [j1, i]:
// A(i, c) -= L(i, j0:j1) . L(c, j0:j1). Both operand slices are
// contiguous row segments, so the reduction vectorizes; four columns per
// pass keep four independent accumulator chains in flight and reuse each
// load of the i-row slice (the dots are otherwise latency-bound).
void UpdateTrailing(Matrix* m, std::size_t j0, std::size_t j1) {
  const std::size_t n = m->rows();
  const std::size_t jb = j1 - j0;
  std::size_t i = j1;
  // 2x4 tiles: two target rows share each load of the four panel-row
  // slices, and the eight accumulators keep independent chains in flight.
  for (; i + 2 <= n; i += 2) {
    const double* SMILER_RESTRICT a0 = m->Row(i) + j0;
    const double* SMILER_RESTRICT a1 = m->Row(i + 1) + j0;
    double* SMILER_RESTRICT out0 = m->Row(i);
    double* SMILER_RESTRICT out1 = m->Row(i + 1);
    std::size_t c = j1;
    for (; c + 4 <= i + 1; c += 4) {
      const double* SMILER_RESTRICT c0 = m->Row(c) + j0;
      const double* SMILER_RESTRICT c1 = m->Row(c + 1) + j0;
      const double* SMILER_RESTRICT c2 = m->Row(c + 2) + j0;
      const double* SMILER_RESTRICT c3 = m->Row(c + 3) + j0;
      double s00 = 0.0, s01 = 0.0, s02 = 0.0, s03 = 0.0;
      double s10 = 0.0, s11 = 0.0, s12 = 0.0, s13 = 0.0;
#pragma omp simd reduction(+ : s00, s01, s02, s03, s10, s11, s12, s13)
      for (std::size_t k = 0; k < jb; ++k) {
        const double x0 = a0[k];
        const double x1 = a1[k];
        s00 += x0 * c0[k];
        s01 += x0 * c1[k];
        s02 += x0 * c2[k];
        s03 += x0 * c3[k];
        s10 += x1 * c0[k];
        s11 += x1 * c1[k];
        s12 += x1 * c2[k];
        s13 += x1 * c3[k];
      }
      out0[c] -= s00;
      out0[c + 1] -= s01;
      out0[c + 2] -= s02;
      out0[c + 3] -= s03;
      out1[c] -= s10;
      out1[c + 1] -= s11;
      out1[c + 2] -= s12;
      out1[c + 3] -= s13;
    }
    // Triangular tail of the row pair (row i stops at column i, row i+1
    // one later; the unused s0 at c == i+1 is simply discarded).
    for (; c <= i + 1; ++c) {
      const double* SMILER_RESTRICT lc = m->Row(c) + j0;
      double s0 = 0.0, s1 = 0.0;
#pragma omp simd reduction(+ : s0, s1)
      for (std::size_t k = 0; k < jb; ++k) {
        s0 += a0[k] * lc[k];
        s1 += a1[k] * lc[k];
      }
      if (c <= i) out0[c] -= s0;
      out1[c] -= s1;
    }
  }
  for (; i < n; ++i) {
    const double* SMILER_RESTRICT li = m->Row(i) + j0;
    double* SMILER_RESTRICT out = m->Row(i);
    for (std::size_t c = j1; c <= i; ++c) {
      const double* SMILER_RESTRICT lc = m->Row(c) + j0;
      double s = 0.0;
#pragma omp simd reduction(+ : s)
      for (std::size_t k = 0; k < jb; ++k) s += li[k] * lc[k];
      out[c] -= s;
    }
  }
}

// Vectorized twin of FactorDiagonalBlock for matrices spanning more than
// one block, where the strict-order (bitwise) guarantee does not apply:
// the per-column contributions fold through simd reductions instead of
// ascending-k subtraction.
bool FactorDiagonalBlockFast(Matrix* m, std::size_t j0, std::size_t j1) {
  for (std::size_t j = j0; j < j1; ++j) {
    const double* SMILER_RESTRICT jrow = m->Row(j);
    double acc = 0.0;
#pragma omp simd reduction(+ : acc)
    for (std::size_t k = j0; k < j; ++k) acc += jrow[k] * jrow[k];
    const double d = jrow[j] - acc;
    if (!(d > 0.0) || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    (*m)(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < j1; ++i) {
      double* SMILER_RESTRICT irow = m->Row(i);
      double s = 0.0;
#pragma omp simd reduction(+ : s)
      for (std::size_t k = j0; k < j; ++k) s += irow[k] * jrow[k];
      irow[j] = (irow[j] - s) * inv;
    }
  }
  return true;
}

// In-place blocked right-looking lower Cholesky; returns false on
// breakdown.
bool TryFactor(Matrix* m) {
  const std::size_t n = m->rows();
  const bool single_block = n <= Cholesky::kBlockSize;
  for (std::size_t j0 = 0; j0 < n; j0 += Cholesky::kBlockSize) {
    const std::size_t j1 = std::min(n, j0 + Cholesky::kBlockSize);
    if (single_block ? !FactorDiagonalBlock(m, j0, j1)
                     : !FactorDiagonalBlockFast(m, j0, j1)) {
      return false;
    }
    if (j1 < n) {
      SolvePanel(m, j0, j1);
      UpdateTrailing(m, j0, j1);
    }
  }
  // Zero the strict upper triangle for cleanliness (callers read L()).
  for (std::size_t i = 0; i < n; ++i) {
    double* row = m->Row(i);
    for (std::size_t j = i + 1; j < n; ++j) row[j] = 0.0;
  }
  return true;
}

}  // namespace

Result<Cholesky> Cholesky::Factor(const Matrix& a, double max_jitter) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  if (a.rows() == 0) {
    return Status::InvalidArgument("Cholesky requires a non-empty matrix");
  }
  double jitter = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    Matrix work = a;
    if (jitter > 0.0) work.AddToDiagonal(jitter);
    if (TryFactor(&work)) {
      Cholesky chol;
      chol.l_ = std::move(work);
      chol.jitter_ = jitter;
      return chol;
    }
    jitter = (jitter == 0.0) ? 1e-10 : jitter * 10.0;
    if (jitter > max_jitter) break;
  }
  return Status::NumericalError(
      "matrix is not positive definite even after jitter");
}

std::vector<double> Cholesky::SolveLower(const std::vector<double>& b) const {
  const std::size_t n = dim();
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    const double* row = l_.Row(i);
    for (std::size_t k = 0; k < i; ++k) s -= row[k] * y[k];
    y[i] = s / row[i];
  }
  return y;
}

std::vector<double> Cholesky::SolveUpper(const std::vector<double>& y) const {
  const std::size_t n = dim();
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

std::vector<double> Cholesky::Solve(const std::vector<double>& b) const {
  return SolveUpper(SolveLower(b));
}

void Cholesky::SolveMatrixInPlace(Matrix* b) const {
  const std::size_t n = dim();
  assert(b->rows() == n);
  const std::size_t nrhs = b->cols();
  // Forward pass: L Y = B. Row i of B accumulates -L(i,k) * row k for all
  // k < i in ascending order, then divides by L(i,i) — per column this is
  // exactly SolveLower's arithmetic, but the inner loops run contiguously
  // across all right-hand sides.
  for (std::size_t i = 0; i < n; ++i) {
    double* SMILER_RESTRICT bi = b->Row(i);
    const double* SMILER_RESTRICT li = l_.Row(i);
    for (std::size_t k = 0; k < i; ++k) {
      const double lik = li[k];
      const double* SMILER_RESTRICT bk = b->Row(k);
#pragma omp simd
      for (std::size_t c = 0; c < nrhs; ++c) bi[c] -= lik * bk[c];
    }
    const double lii = li[i];
#pragma omp simd
    for (std::size_t c = 0; c < nrhs; ++c) bi[c] /= lii;
  }
  // Backward pass: L^T X = Y, mirroring SolveUpper.
  for (std::size_t ii = n; ii-- > 0;) {
    double* SMILER_RESTRICT bi = b->Row(ii);
    for (std::size_t k = ii + 1; k < n; ++k) {
      const double lki = l_(k, ii);
      const double* SMILER_RESTRICT bk = b->Row(k);
#pragma omp simd
      for (std::size_t c = 0; c < nrhs; ++c) bi[c] -= lki * bk[c];
    }
    const double lii = l_(ii, ii);
#pragma omp simd
    for (std::size_t c = 0; c < nrhs; ++c) bi[c] /= lii;
  }
}

Matrix Cholesky::SolveMatrix(const Matrix& b) const {
  Matrix out = b;
  SolveMatrixInPlace(&out);
  return out;
}

Matrix Cholesky::Inverse() const {
  Matrix out = Matrix::Identity(dim());
  SolveMatrixInPlace(&out);
  return out;
}

std::vector<double> Cholesky::InverseDiagonal() const {
  const std::size_t n = dim();
  std::vector<double> diag(n);
  std::vector<double> v(n);
  for (std::size_t j = 0; j < n; ++j) {
    // Forward solve L v = e_j; components before j are structurally zero.
    v[j] = 1.0 / l_(j, j);
    for (std::size_t i = j + 1; i < n; ++i) {
      const double* SMILER_RESTRICT li = l_.Row(i);
      const double* SMILER_RESTRICT vp = v.data();
      double s = 0.0;
#pragma omp simd reduction(+ : s)
      for (std::size_t k = j; k < i; ++k) s += li[k] * vp[k];
      v[i] = -s / li[i];
    }
    double acc = 0.0;
#pragma omp simd reduction(+ : acc)
    for (std::size_t i = j; i < n; ++i) acc += v[i] * v[i];
    diag[j] = acc;
  }
  return diag;
}

double Cholesky::LogDet() const {
  double s = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

}  // namespace la
}  // namespace smiler
