#include "la/cholesky.h"

#include <cmath>

namespace smiler {
namespace la {

namespace {

// In-place lower Cholesky of `m`; returns false on breakdown.
bool TryFactor(Matrix* m) {
  const std::size_t n = m->rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = (*m)(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= (*m)(j, k) * (*m)(j, k);
    if (!(d > 0.0) || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    (*m)(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = (*m)(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= (*m)(i, k) * (*m)(j, k);
      (*m)(i, j) = s * inv;
    }
    // Zero the strict upper triangle of this column for cleanliness.
    for (std::size_t i = 0; i < j; ++i) (*m)(i, j) = 0.0;
  }
  return true;
}

}  // namespace

Result<Cholesky> Cholesky::Factor(const Matrix& a, double max_jitter) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  if (a.rows() == 0) {
    return Status::InvalidArgument("Cholesky requires a non-empty matrix");
  }
  double jitter = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    Matrix work = a;
    if (jitter > 0.0) work.AddToDiagonal(jitter);
    if (TryFactor(&work)) {
      Cholesky chol;
      chol.l_ = std::move(work);
      chol.jitter_ = jitter;
      return chol;
    }
    jitter = (jitter == 0.0) ? 1e-10 : jitter * 10.0;
    if (jitter > max_jitter) break;
  }
  return Status::NumericalError(
      "matrix is not positive definite even after jitter");
}

std::vector<double> Cholesky::SolveLower(const std::vector<double>& b) const {
  const std::size_t n = dim();
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    const double* row = l_.Row(i);
    for (std::size_t k = 0; k < i; ++k) s -= row[k] * y[k];
    y[i] = s / row[i];
  }
  return y;
}

std::vector<double> Cholesky::SolveUpper(const std::vector<double>& y) const {
  const std::size_t n = dim();
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

std::vector<double> Cholesky::Solve(const std::vector<double>& b) const {
  return SolveUpper(SolveLower(b));
}

Matrix Cholesky::SolveMatrix(const Matrix& b) const {
  Matrix out(b.rows(), b.cols());
  std::vector<double> col(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) col[r] = b(r, c);
    std::vector<double> x = Solve(col);
    for (std::size_t r = 0; r < b.rows(); ++r) out(r, c) = x[r];
  }
  return out;
}

Matrix Cholesky::Inverse() const { return SolveMatrix(Matrix::Identity(dim())); }

double Cholesky::LogDet() const {
  double s = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

}  // namespace la
}  // namespace smiler
