#ifndef SMILER_TS_DATASETS_H_
#define SMILER_TS_DATASETS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ts/series.h"

namespace smiler {
namespace ts {

/// \brief Which of the paper's three real-life datasets a generator mimics.
///
/// The originals (PEMS road occupancy, Singapore mall car parks, backbone
/// internet traffic) are not shipped; `MakeDataset` synthesizes series with
/// the statistical character the paper reports for each (see DESIGN.md
/// section 1 for the substitution rationale).
enum class DatasetKind {
  /// ROAD: weakly seasonal, regime switching, bursty congestion events —
  /// "more dynamic traffic information" (GP clearly beats AR here).
  kRoad,
  /// MALL: strongly seasonal car-park fill curves ("some seasonal
  /// patterns"; AR is competitive with GP on MAE).
  kMall,
  /// NET: diurnal+weekly multiplicative internet traffic with trend.
  kNet,
};

/// Returns "ROAD" / "MALL" / "NET".
const char* DatasetKindName(DatasetKind kind);

/// \brief Parameters of a synthetic dataset.
struct DatasetSpec {
  DatasetKind kind = DatasetKind::kRoad;
  /// Number of sensors (paper: 963 / 1040 / 1024; scale down for CI).
  int num_sensors = 8;
  /// Points per sensor (paper: tens of thousands; scale down for CI).
  int points_per_sensor = 4096;
  /// Samples per synthetic "day" (the paper's sensors sample every 5-10
  /// minutes, i.e. 144-288 samples/day; default keeps benches fast).
  int samples_per_day = 128;
  /// Base RNG seed; sensor i derives seed from (seed, i) so any subset of
  /// sensors is reproducible.
  uint64_t seed = 2015;
  /// Z-normalize each sensor's series (paper does, §6.1.2).
  bool znormalize = true;
};

/// \brief Generates the synthetic dataset described by \p spec.
/// Fails with InvalidArgument on nonsensical sizes.
Result<std::vector<TimeSeries>> MakeDataset(const DatasetSpec& spec);

/// \brief Generates a single sensor's raw (un-normalized) series.
/// Exposed for tests that check the generators' statistical character.
std::vector<double> GenerateSensor(DatasetKind kind, int sensor_index,
                                   int num_points, int samples_per_day,
                                   uint64_t seed);

}  // namespace ts
}  // namespace smiler

#endif  // SMILER_TS_DATASETS_H_
