#ifndef SMILER_TS_SERIES_H_
#define SMILER_TS_SERIES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace smiler {
namespace ts {

/// \brief A non-owning view over a contiguous segment C_{t,d} of a series:
/// the d points starting at timestamp t (C_{t,d} = {c_t, ..., c_{t+d-1}}).
struct SegmentView {
  const double* data = nullptr;
  int length = 0;
  /// Timestamp of the first point within the owning series.
  long start = 0;

  double operator[](int i) const { return data[i]; }
  /// Timestamp of the last point (the segment "ends at" this time, matching
  /// the paper's x_{j,d} ending at time t_j).
  long end_time() const { return start + length - 1; }
};

/// \brief A sensor's time series: a fixed-rate sequence of observations.
///
/// Values are stored in arrival order; timestamp j is simply index j
/// (Section 3.1 — fixed sample rate makes a series a sequence of points).
class TimeSeries {
 public:
  TimeSeries() = default;
  /// Creates a series owned by sensor \p sensor_id with initial \p values.
  TimeSeries(std::string sensor_id, std::vector<double> values)
      : sensor_id_(std::move(sensor_id)), values_(std::move(values)) {}

  const std::string& sensor_id() const { return sensor_id_; }
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double operator[](std::size_t i) const { return values_[i]; }
  const std::vector<double>& values() const { return values_; }
  const double* data() const { return values_.data(); }

  /// Appends a newly observed point (continuous prediction ingest path).
  void Append(double value) { values_.push_back(value); }

  /// Returns the segment C_{t,d} = {c_t, ..., c_{t+d-1}}.
  /// Fails with OutOfRange when [t, t+d) is not inside the series.
  Result<SegmentView> Segment(long t, int d) const {
    if (t < 0 || d <= 0 ||
        static_cast<std::size_t>(t + d) > values_.size()) {
      return Status::OutOfRange("segment [" + std::to_string(t) + ", " +
                                std::to_string(t + d) + ") outside series of " +
                                std::to_string(values_.size()) + " points");
    }
    return SegmentView{values_.data() + t, d, t};
  }

  /// Returns the d-length segment ending at timestamp \p end (inclusive),
  /// i.e. C_{end-d+1, d} — the paper's x_{0,d} when end is "now".
  Result<SegmentView> SuffixSegment(long end, int d) const {
    return Segment(end - d + 1, d);
  }

 private:
  std::string sensor_id_;
  std::vector<double> values_;
};

/// \brief Validates a raw observation before it may mutate engine state:
/// NaN and infinities are rejected with InvalidArgument. A non-finite
/// value that slipped into a series would poison every envelope, lower
/// bound, and DTW distance derived from it, so ingestion paths
/// (SensorEngine::Observe) gate on this BEFORE touching any state.
Status ValidateObservation(double value);

/// \brief Z-normalizes \p values in place: subtracts the mean, divides by
/// the standard deviation. A constant series becomes all zeros.
/// Returns the (mean, stddev) used, enabling later de-normalization.
std::pair<double, double> ZNormalize(std::vector<double>* values);

/// \brief Z-normalizes a whole series, returning a new TimeSeries with the
/// same sensor id (the paper z-normalizes each sensor's series, §6.1.2).
TimeSeries ZNormalized(const TimeSeries& series);

}  // namespace ts
}  // namespace smiler

#endif  // SMILER_TS_SERIES_H_
