#include "ts/resample.h"

#include <cmath>

namespace smiler {
namespace ts {

Result<std::vector<double>> Resample(const std::vector<double>& values,
                                     double source_interval,
                                     double target_interval) {
  if (source_interval <= 0.0 || target_interval <= 0.0) {
    return Status::InvalidArgument("intervals must be positive");
  }
  if (values.empty()) {
    return Status::InvalidArgument("cannot resample an empty series");
  }
  const double span = source_interval * (values.size() - 1);
  const std::size_t n_out =
      static_cast<std::size_t>(std::floor(span / target_interval)) + 1;
  std::vector<double> out(n_out);
  for (std::size_t i = 0; i < n_out; ++i) {
    const double t = i * target_interval;
    const double pos = t / source_interval;
    const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
    if (lo + 1 >= values.size()) {
      out[i] = values.back();
      continue;
    }
    const double frac = pos - static_cast<double>(lo);
    out[i] = values[lo] * (1.0 - frac) + values[lo + 1] * frac;
  }
  return out;
}

Status FillGaps(std::vector<double>* values) {
  const std::size_t n = values->size();
  std::size_t first_finite = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isfinite((*values)[i])) {
      first_finite = i;
      break;
    }
  }
  if (first_finite == n) {
    return Status::InvalidArgument("series holds no finite value");
  }
  // Leading gap: backfill with the first finite value.
  for (std::size_t i = 0; i < first_finite; ++i) {
    (*values)[i] = (*values)[first_finite];
  }
  // Interior and trailing gaps.
  std::size_t last_finite = first_finite;
  for (std::size_t i = first_finite + 1; i < n; ++i) {
    if (std::isfinite((*values)[i])) {
      // Interpolate over [last_finite, i].
      const std::size_t gap = i - last_finite;
      if (gap > 1) {
        const double a = (*values)[last_finite];
        const double b = (*values)[i];
        for (std::size_t j = 1; j < gap; ++j) {
          (*values)[last_finite + j] =
              a + (b - a) * static_cast<double>(j) / static_cast<double>(gap);
        }
      }
      last_finite = i;
    }
  }
  // Trailing gap: forward-fill.
  for (std::size_t i = last_finite + 1; i < n; ++i) {
    (*values)[i] = (*values)[last_finite];
  }
  return Status::OK();
}

}  // namespace ts
}  // namespace smiler
