#include "ts/io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace smiler {
namespace ts {

namespace {

std::vector<std::string> SplitLine(const std::string& line, char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, delimiter)) fields.push_back(field);
  // A trailing delimiter produces one final empty field.
  if (!line.empty() && line.back() == delimiter) fields.push_back("");
  return fields;
}

Result<double> ParseNumber(const std::string& field, std::size_t line_no,
                           std::size_t column) {
  const char* begin = field.c_str();
  char* num_end = nullptr;
  const double value = std::strtod(begin, &num_end);
  // strtod consumed nothing = no number at all (a whitespace-only field
  // must stay an error even though the trim below would walk past it).
  const bool consumed = num_end != nullptr && num_end != begin;
  // Require the whole (trimmed) field to be consumed; strtod already
  // skips leading whitespace, so fields padded on either side parse.
  const char* end = num_end;
  while (end != nullptr && (*end == ' ' || *end == '\t' || *end == '\r')) {
    ++end;
  }
  if (!consumed || *end != '\0') {
    const bool empty = field.find_first_not_of(" \t\r") == std::string::npos;
    return Status::InvalidArgument(
        std::string(empty ? "empty cell" : "non-numeric value '") +
        (empty ? "" : field + "'") + " at line " + std::to_string(line_no) +
        ", column " + std::to_string(column + 1));
  }
  return value;
}

/// True when \p line holds nothing but whitespace (server-side feeds pad
/// and terminate files inconsistently; such lines carry no row).
bool IsBlank(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

}  // namespace

Result<std::vector<TimeSeries>> ParseCsv(const std::string& text,
                                         const CsvOptions& options) {
  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;

  std::vector<std::string> names;
  std::vector<std::vector<double>> rows;
  bool saw_header = false;
  while (std::getline(stream, line)) {
    ++line_no;
    // CRLF (and stray CR) tolerance: exports from Windows-side loggers
    // terminate lines with \r\n.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Strip a UTF-8 byte-order mark from the first line.
    if (line_no == 1 && line.rfind("\xEF\xBB\xBF", 0) == 0) line.erase(0, 3);
    // Blank and whitespace-only lines (trailing newlines, padding between
    // blocks) carry no row.
    if (IsBlank(line)) continue;
    std::vector<std::string> fields = SplitLine(line, options.delimiter);
    if (options.has_header && !saw_header) {
      saw_header = true;
      names = fields;
      continue;
    }
    std::vector<double> row;
    row.reserve(fields.size());
    for (std::size_t col = 0; col < fields.size(); ++col) {
      SMILER_ASSIGN_OR_RETURN(double v,
                              ParseNumber(fields[col], line_no, col));
      row.push_back(v);
    }
    if (!rows.empty() && row.size() != rows.front().size()) {
      return Status::InvalidArgument(
          "ragged CSV: line " + std::to_string(line_no) + " has " +
          std::to_string(row.size()) + " fields, expected " +
          std::to_string(rows.front().size()));
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    return Status::InvalidArgument("CSV holds no data rows");
  }

  const std::size_t num_sensors =
      options.sensors_in_columns ? rows.front().size() : rows.size();
  const std::size_t num_points =
      options.sensors_in_columns ? rows.size() : rows.front().size();
  std::vector<TimeSeries> out;
  out.reserve(num_sensors);
  for (std::size_t s = 0; s < num_sensors; ++s) {
    std::vector<double> values(num_points);
    for (std::size_t t = 0; t < num_points; ++t) {
      values[t] = options.sensors_in_columns ? rows[t][s] : rows[s][t];
    }
    std::string id;
    if (options.sensors_in_columns && options.has_header &&
        s < names.size() && !names[s].empty()) {
      id = names[s];
    } else {
      id = "sensor-" + std::to_string(s);
    }
    out.emplace_back(std::move(id), std::move(values));
  }
  return out;
}

Result<std::vector<TimeSeries>> ReadCsv(const std::string& path,
                                        const CsvOptions& options) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsv(buffer.str(), options);
}

Status WriteCsv(const std::string& path,
                const std::vector<TimeSeries>& series) {
  if (series.empty()) {
    return Status::InvalidArgument("no series to write");
  }
  const std::size_t n = series.front().size();
  for (const TimeSeries& s : series) {
    if (s.size() != n) {
      return Status::InvalidArgument("series lengths differ");
    }
  }
  std::ofstream file(path);
  if (!file) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  for (std::size_t s = 0; s < series.size(); ++s) {
    file << (s ? "," : "") << series[s].sensor_id();
  }
  file << "\n";
  file.precision(17);
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t s = 0; s < series.size(); ++s) {
      file << (s ? "," : "") << series[s][t];
    }
    file << "\n";
  }
  if (!file.good()) {
    return Status::Internal("write to '" + path + "' failed");
  }
  return Status::OK();
}

}  // namespace ts
}  // namespace smiler
