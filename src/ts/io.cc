#include "ts/io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace smiler {
namespace ts {

namespace {

std::vector<std::string> SplitLine(const std::string& line, char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, delimiter)) fields.push_back(field);
  // A trailing delimiter produces one final empty field.
  if (!line.empty() && line.back() == delimiter) fields.push_back("");
  return fields;
}

Result<double> ParseNumber(const std::string& field, std::size_t line_no) {
  const char* begin = field.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  // Require the whole (trimmed) field to be consumed.
  while (end != nullptr && (*end == ' ' || *end == '\t' || *end == '\r')) {
    ++end;
  }
  if (end == begin || end == nullptr || *end != '\0') {
    return Status::InvalidArgument("non-numeric value '" + field +
                                   "' on line " + std::to_string(line_no));
  }
  return value;
}

}  // namespace

Result<std::vector<TimeSeries>> ParseCsv(const std::string& text,
                                         const CsvOptions& options) {
  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;

  std::vector<std::string> names;
  std::vector<std::vector<double>> rows;
  while (std::getline(stream, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitLine(line, options.delimiter);
    if (line_no == 1 && options.has_header) {
      names = fields;
      continue;
    }
    std::vector<double> row;
    row.reserve(fields.size());
    for (const std::string& f : fields) {
      SMILER_ASSIGN_OR_RETURN(double v, ParseNumber(f, line_no));
      row.push_back(v);
    }
    if (!rows.empty() && row.size() != rows.front().size()) {
      return Status::InvalidArgument(
          "ragged CSV: line " + std::to_string(line_no) + " has " +
          std::to_string(row.size()) + " fields, expected " +
          std::to_string(rows.front().size()));
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    return Status::InvalidArgument("CSV holds no data rows");
  }

  const std::size_t num_sensors =
      options.sensors_in_columns ? rows.front().size() : rows.size();
  const std::size_t num_points =
      options.sensors_in_columns ? rows.size() : rows.front().size();
  std::vector<TimeSeries> out;
  out.reserve(num_sensors);
  for (std::size_t s = 0; s < num_sensors; ++s) {
    std::vector<double> values(num_points);
    for (std::size_t t = 0; t < num_points; ++t) {
      values[t] = options.sensors_in_columns ? rows[t][s] : rows[s][t];
    }
    std::string id;
    if (options.sensors_in_columns && options.has_header &&
        s < names.size() && !names[s].empty()) {
      id = names[s];
    } else {
      id = "sensor-" + std::to_string(s);
    }
    out.emplace_back(std::move(id), std::move(values));
  }
  return out;
}

Result<std::vector<TimeSeries>> ReadCsv(const std::string& path,
                                        const CsvOptions& options) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsv(buffer.str(), options);
}

Status WriteCsv(const std::string& path,
                const std::vector<TimeSeries>& series) {
  if (series.empty()) {
    return Status::InvalidArgument("no series to write");
  }
  const std::size_t n = series.front().size();
  for (const TimeSeries& s : series) {
    if (s.size() != n) {
      return Status::InvalidArgument("series lengths differ");
    }
  }
  std::ofstream file(path);
  if (!file) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  for (std::size_t s = 0; s < series.size(); ++s) {
    file << (s ? "," : "") << series[s].sensor_id();
  }
  file << "\n";
  file.precision(17);
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t s = 0; s < series.size(); ++s) {
      file << (s ? "," : "") << series[s][t];
    }
    file << "\n";
  }
  if (!file.good()) {
    return Status::Internal("write to '" + path + "' failed");
  }
  return Status::OK();
}

}  // namespace ts
}  // namespace smiler
