#include "ts/series.h"

#include <cmath>

#include "common/math_utils.h"

namespace smiler {
namespace ts {

Status ValidateObservation(double value) {
  if (!std::isfinite(value)) {
    return Status::InvalidArgument("observation must be finite, got " +
                                   std::to_string(value));
  }
  return Status::OK();
}

std::pair<double, double> ZNormalize(std::vector<double>* values) {
  if (values->empty()) return {0.0, 1.0};
  const double mean = Mean(*values);
  double var = 0.0;
  for (double v : *values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values->size());
  const double stddev = std::sqrt(var);
  if (stddev < 1e-12) {
    for (double& v : *values) v = 0.0;
    return {mean, 1.0};
  }
  const double inv = 1.0 / stddev;
  for (double& v : *values) v = (v - mean) * inv;
  return {mean, stddev};
}

TimeSeries ZNormalized(const TimeSeries& series) {
  std::vector<double> values = series.values();
  ZNormalize(&values);
  return TimeSeries(series.sensor_id(), std::move(values));
}

}  // namespace ts
}  // namespace smiler
