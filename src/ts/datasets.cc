#include "ts/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace smiler {
namespace ts {

namespace {

constexpr double kTwoPi = 2.0 * M_PI;

// ROAD: freeway occupancy rate. Weak daily shape (rush hours) whose
// amplitude/phase drifts between regimes, AR(1) colored noise, and random
// congestion events (occupancy spikes with fast attack / slow decay).
std::vector<double> GenerateRoad(Rng* rng, int n, int day) {
  std::vector<double> out(n);
  const double base = 0.08 + 0.04 * rng->Uniform();
  const double phase_am = (0.30 + 0.05 * rng->Uniform()) * day;  // ~7:30am
  const double phase_pm = (0.72 + 0.05 * rng->Uniform()) * day;  // ~5:30pm
  const double width = day * (0.035 + 0.015 * rng->Uniform());

  // Regime state: multiplies the rush-hour amplitude; switches rarely.
  double regime = 1.0;
  // AR(1) noise state.
  double ar = 0.0;
  const double ar_coef = 0.92;
  const double ar_sigma = 0.012 + 0.006 * rng->Uniform();

  // Congestion event state.
  double event = 0.0;
  int event_left = 0;
  double event_decay = 0.0;

  for (int t = 0; t < n; ++t) {
    const double tod = static_cast<double>(t % day);
    const int weekday = (t / day) % 7;
    const double weekend = (weekday >= 5) ? 0.45 : 1.0;

    auto bump = [&](double center) {
      const double d = tod - center;
      return std::exp(-0.5 * d * d / (width * width));
    };
    const double rush =
        regime * weekend * (0.35 * bump(phase_am) + 0.42 * bump(phase_pm));

    // Regime switches (roughly every ~8 days): traffic demand shifts.
    if (rng->Uniform() < 1.0 / (8.0 * day)) {
      regime = 0.6 + 0.8 * rng->Uniform();
    }
    // Congestion events: ~one per day. The onset/decay shape is
    // consistent (what a pattern-matching predictor can exploit) while
    // the timing is irregular (what defeats global seasonal models).
    if (event_left == 0 && rng->Uniform() < 1.0 / day) {
      event = 0.3 + 0.15 * rng->Uniform();
      event_left = static_cast<int>(day * (0.08 + 0.08 * rng->Uniform()));
      event_decay = std::pow(0.05, 1.0 / std::max(1, event_left));
    }
    double event_term = 0.0;
    if (event_left > 0) {
      event_term = event;
      event *= event_decay;
      --event_left;
    }

    ar = ar_coef * ar + rng->Normal(0.0, ar_sigma);
    out[t] = std::clamp(base + rush + event_term + ar, 0.0, 1.0);
  }
  return out;
}

// MALL: available car park lots. Strong inverted daily fill curve (lots
// drain towards midday/evening), weekly modulation, small noise. Highly
// repetitive, so simple neighbor averaging already predicts well.
std::vector<double> GenerateMall(Rng* rng, int n, int day) {
  std::vector<double> out(n);
  const double capacity = 400.0 + 600.0 * rng->Uniform();
  const double noon = (0.5 + 0.03 * rng->Uniform()) * day;
  const double evening = (0.8 + 0.03 * rng->Uniform()) * day;
  const double w1 = day * (0.09 + 0.02 * rng->Uniform());
  const double w2 = day * (0.06 + 0.02 * rng->Uniform());
  const double noise_sigma = 0.006 * capacity;
  double ar = 0.0;

  for (int t = 0; t < n; ++t) {
    const double tod = static_cast<double>(t % day);
    const int weekday = (t / day) % 7;
    const double busy = (weekday >= 5) ? 1.25 : 1.0;  // busier weekends

    const double d1 = tod - noon;
    const double d2 = tod - evening;
    const double occupancy =
        busy * (0.55 * std::exp(-0.5 * d1 * d1 / (w1 * w1)) +
                0.30 * std::exp(-0.5 * d2 * d2 / (w2 * w2)));
    ar = 0.85 * ar + rng->Normal(0.0, noise_sigma);
    // Available lots are integer counts saturating at the capacity: the
    // overnight stretches are pinned at (nearly) constant values, like
    // the real car-park feeds. These near-duplicate segments are what
    // drive variance-free kNN sets (and the paper's extreme AR MNLPD).
    const double lots = capacity * (1.0 - std::min(0.97, occupancy)) + ar;
    out[t] = std::round(std::clamp(lots, 0.0, capacity));
  }
  return out;
}

// NET: backbone internet traffic. Multiplicative diurnal cycle, weekly
// weekday/weekend split, slow upward trend, lognormal-flavoured noise.
std::vector<double> GenerateNet(Rng* rng, int n, int day) {
  std::vector<double> out(n);
  const double base = 3.0 + 2.0 * rng->Uniform();
  const double trend = 0.15 / static_cast<double>(n);  // slow growth
  const double phase = rng->Uniform() * kTwoPi;
  double ar = 0.0;

  for (int t = 0; t < n; ++t) {
    const double tod = kTwoPi * static_cast<double>(t % day) / day;
    const int weekday = (t / day) % 7;
    const double weekend = (weekday >= 5) ? 0.75 : 1.0;
    const double diurnal =
        1.0 + 0.55 * std::sin(tod - kTwoPi * 0.25 + phase) +
        0.18 * std::sin(2.0 * tod + phase);
    ar = 0.9 * ar + rng->Normal(0.0, 0.05);
    const double level =
        base * (1.0 + trend * t) * weekend * std::max(0.15, diurnal);
    out[t] = level * std::exp(ar * 0.35);
  }
  return out;
}

}  // namespace

const char* DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kRoad:
      return "ROAD";
    case DatasetKind::kMall:
      return "MALL";
    case DatasetKind::kNet:
      return "NET";
  }
  return "UNKNOWN";
}

std::vector<double> GenerateSensor(DatasetKind kind, int sensor_index,
                                   int num_points, int samples_per_day,
                                   uint64_t seed) {
  // Derive a per-sensor seed; mix to decorrelate adjacent sensors.
  Rng rng(seed * 0x100000001B3ULL + static_cast<uint64_t>(sensor_index) +
          static_cast<uint64_t>(kind) * 0x9E3779B9ULL);
  switch (kind) {
    case DatasetKind::kRoad:
      return GenerateRoad(&rng, num_points, samples_per_day);
    case DatasetKind::kMall:
      return GenerateMall(&rng, num_points, samples_per_day);
    case DatasetKind::kNet:
      return GenerateNet(&rng, num_points, samples_per_day);
  }
  return {};
}

Result<std::vector<TimeSeries>> MakeDataset(const DatasetSpec& spec) {
  if (spec.num_sensors <= 0) {
    return Status::InvalidArgument("num_sensors must be positive");
  }
  if (spec.points_per_sensor < 2) {
    return Status::InvalidArgument("points_per_sensor must be >= 2");
  }
  if (spec.samples_per_day < 4) {
    return Status::InvalidArgument("samples_per_day must be >= 4");
  }
  std::vector<TimeSeries> out;
  out.reserve(spec.num_sensors);
  for (int i = 0; i < spec.num_sensors; ++i) {
    std::vector<double> values =
        GenerateSensor(spec.kind, i, spec.points_per_sensor,
                       spec.samples_per_day, spec.seed);
    if (spec.znormalize) ZNormalize(&values);
    out.emplace_back(std::string(DatasetKindName(spec.kind)) + "-" +
                         std::to_string(i),
                     std::move(values));
  }
  return out;
}

}  // namespace ts
}  // namespace smiler
