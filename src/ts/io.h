#ifndef SMILER_TS_IO_H_
#define SMILER_TS_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ts/series.h"

namespace smiler {
namespace ts {

/// \brief Options for reading sensor series from CSV.
struct CsvOptions {
  /// Column separator.
  char delimiter = ',';
  /// Skip the first line (header).
  bool has_header = true;
  /// When true, each *column* is one sensor (wide layout, like the PEMS
  /// export); when false each *row* is one sensor.
  bool sensors_in_columns = true;
};

/// \brief Reads sensor time series from a CSV file. Sensor ids come from
/// the header when present, else "sensor-<i>". Tolerant of the formatting
/// noise real server-side feeds carry — CRLF line endings, a UTF-8 BOM,
/// whitespace padding around cells, and blank / whitespace-only lines —
/// but *strict* about content: empty cells, non-numeric values, and
/// ragged rows fail with InvalidArgument naming the line and column (no
/// silent NaNs: gaps should be re-interpolated upstream, cf. the paper's
/// fixed-rate assumption, Section 3.1).
Result<std::vector<TimeSeries>> ReadCsv(const std::string& path,
                                        const CsvOptions& options = {});

/// \brief Parses CSV text (exposed for tests; ReadCsv is a thin wrapper).
Result<std::vector<TimeSeries>> ParseCsv(const std::string& text,
                                         const CsvOptions& options = {});

/// \brief Writes series to CSV (column layout, header of sensor ids).
/// Requires all series to have equal length.
Status WriteCsv(const std::string& path,
                const std::vector<TimeSeries>& series);

}  // namespace ts
}  // namespace smiler

#endif  // SMILER_TS_IO_H_
