#ifndef SMILER_TS_RESAMPLE_H_
#define SMILER_TS_RESAMPLE_H_

#include <vector>

#include "common/status.h"
#include "ts/series.h"

namespace smiler {
namespace ts {

/// \brief Linearly re-interpolates a series sampled every
/// \p source_interval time units onto a grid sampled every
/// \p target_interval units, covering the same time span.
///
/// SMiLer assumes a fixed sample rate (Section 3.1: "the user can easily
/// re-interpolate data if the sample rate is changed"); this is that
/// utility. Both intervals must be positive; the result always keeps the
/// first point and never extrapolates beyond the last.
Result<std::vector<double>> Resample(const std::vector<double>& values,
                                     double source_interval,
                                     double target_interval);

/// \brief Fills NaN gaps in place by linear interpolation between the
/// nearest finite neighbors (leading/trailing gaps take the nearest
/// finite value). Fails when no finite value exists at all.
Status FillGaps(std::vector<double>* values);

}  // namespace ts
}  // namespace smiler

#endif  // SMILER_TS_RESAMPLE_H_
