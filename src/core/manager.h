#ifndef SMILER_CORE_MANAGER_H_
#define SMILER_CORE_MANAGER_H_

#include <optional>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "simgpu/device.h"
#include "ts/series.h"

namespace smiler {
namespace core {

/// \brief Drives one SMiLer engine per sensor, fanning each prediction
/// step over the thread pool ("SMiLer can easily scale up with multiple
/// sensors, where we only need to create multiple SMiLer Indexes and
/// invoke more blocks", Section 4.4).
class MultiSensorManager {
 public:
  /// Builds one engine per z-normalized history in \p sensors.
  static Result<MultiSensorManager> Create(
      simgpu::Device* device, const std::vector<ts::TimeSeries>& sensors,
      const SmilerConfig& config, PredictorKind kind);

  /// Multi-device deployment ("we can simply use multiple-GPU system",
  /// Section 6.4.1): sensors are assigned to \p devices round-robin, and
  /// a sensor whose index does not fit its device's remaining memory
  /// budget fails the whole Create with ResourceExhausted.
  static Result<MultiSensorManager> Create(
      const std::vector<simgpu::Device*>& devices,
      const std::vector<ts::TimeSeries>& sensors, const SmilerConfig& config,
      PredictorKind kind);

  /// Adopts pre-built engines (the checkpoint warm-restart path:
  /// serve::Checkpoint loads EngineSnapshots, SensorEngine::Restore
  /// rebuilds each, and the manager then drives the restored fleet).
  static Result<MultiSensorManager> Adopt(std::vector<SensorEngine> engines);

  /// Runs Predict on every sensor. \p out receives one prediction per
  /// sensor (same order as construction). Per-sensor failures are
  /// isolated: every sensor is always attempted, successful sensors keep
  /// their predictions, and \p statuses (when non-null) receives one
  /// Status per sensor so callers can tell exactly which failed — one bad
  /// sensor never takes down the rest of the fleet. The returned
  /// fleet-level summary is OK when every sensor succeeded, else the
  /// first error in sensor order. \p stats, when non-null, aggregates
  /// timings of the successful sensors.
  Status PredictAll(std::vector<predictors::Prediction>* out,
                    EngineStats* stats = nullptr,
                    std::vector<Status>* statuses = nullptr);

  /// Feeds each sensor its next observed value (size must equal sensors).
  /// Same isolation contract as PredictAll: all sensors are attempted,
  /// \p statuses (when non-null) receives the per-sensor outcomes, and
  /// the return value summarizes (OK or first error in sensor order).
  Status ObserveAll(const std::vector<double>& values,
                    std::vector<Status>* statuses = nullptr);

  std::size_t num_sensors() const { return engines_.size(); }

  /// Whether sensor \p i currently holds a live engine. Every sensor is
  /// resident after Create/Adopt; a tiered store (store::TieredStateStore)
  /// may Release an inactive sensor's engine to its cold tier and Install
  /// a rehydrated one later. Predict/Observe on a non-resident sensor
  /// fails that sensor with FailedPrecondition (isolation contract: the
  /// rest of the fleet is unaffected).
  bool resident(std::size_t i) const {
    return i < engines_.size() && engines_[i].has_value();
  }

  /// Callers must check resident(i); dereferencing an evicted slot is UB.
  SensorEngine& engine(std::size_t i) { return *engines_[i]; }
  const SensorEngine& engine(std::size_t i) const { return *engines_[i]; }

  /// Moves sensor \p i's engine out of its slot, leaving it non-resident.
  Result<SensorEngine> Release(std::size_t i);

  /// Installs an engine into the empty slot \p i (the rehydration path).
  Status Install(std::size_t i, SensorEngine engine);

 private:
  explicit MultiSensorManager(std::vector<SensorEngine> engines);

  std::vector<std::optional<SensorEngine>> engines_;
};

}  // namespace core
}  // namespace smiler

#endif  // SMILER_CORE_MANAGER_H_
