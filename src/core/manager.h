#ifndef SMILER_CORE_MANAGER_H_
#define SMILER_CORE_MANAGER_H_

#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "simgpu/device.h"
#include "ts/series.h"

namespace smiler {
namespace core {

/// \brief Drives one SMiLer engine per sensor, fanning each prediction
/// step over the thread pool ("SMiLer can easily scale up with multiple
/// sensors, where we only need to create multiple SMiLer Indexes and
/// invoke more blocks", Section 4.4).
class MultiSensorManager {
 public:
  /// Builds one engine per z-normalized history in \p sensors.
  static Result<MultiSensorManager> Create(
      simgpu::Device* device, const std::vector<ts::TimeSeries>& sensors,
      const SmilerConfig& config, PredictorKind kind);

  /// Multi-device deployment ("we can simply use multiple-GPU system",
  /// Section 6.4.1): sensors are assigned to \p devices round-robin, and
  /// a sensor whose index does not fit its device's remaining memory
  /// budget fails the whole Create with ResourceExhausted.
  static Result<MultiSensorManager> Create(
      const std::vector<simgpu::Device*>& devices,
      const std::vector<ts::TimeSeries>& sensors, const SmilerConfig& config,
      PredictorKind kind);

  /// Runs Predict on every sensor. \p out receives one prediction per
  /// sensor (same order as construction). Per-sensor failures abort with
  /// the first error. \p stats, when non-null, aggregates timings.
  Status PredictAll(std::vector<predictors::Prediction>* out,
                    EngineStats* stats = nullptr);

  /// Feeds each sensor its next observed value (size must equal sensors).
  Status ObserveAll(const std::vector<double>& values);

  std::size_t num_sensors() const { return engines_.size(); }
  SensorEngine& engine(std::size_t i) { return engines_[i]; }
  const SensorEngine& engine(std::size_t i) const { return engines_[i]; }

 private:
  explicit MultiSensorManager(std::vector<SensorEngine> engines)
      : engines_(std::move(engines)) {}

  std::vector<SensorEngine> engines_;
};

}  // namespace core
}  // namespace smiler

#endif  // SMILER_CORE_MANAGER_H_
