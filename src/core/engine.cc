#include "core/engine.h"

#include <utility>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "gp/kernel.h"
#include "obs/obs.h"
#include "predictors/ar_predictor.h"
#include "predictors/predictor.h"

namespace smiler {
namespace core {

const char* PredictorKindName(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kGp:
      return "SMiLer-GP";
    case PredictorKind::kAr:
      return "SMiLer-AR";
  }
  return "UNKNOWN";
}

SensorEngine::SensorEngine(SmilerConfig cfg, PredictorKind kind,
                           index::SmilerIndex index)
    : cfg_(std::move(cfg)),
      kind_(kind),
      index_(std::move(index)),
      ensemble_(predictors::Ensemble::Options{
          static_cast<int>(cfg_.ekv.size()),
          static_cast<int>(cfg_.elv.size()),
          cfg_.use_ensemble && cfg_.self_adaptive_weights,
          cfg_.use_ensemble && cfg_.self_adaptive_weights &&
              cfg_.sleep_and_recovery}),
      gp_cells_(cfg_.ekv.size() * cfg_.elv.size()) {}

Result<SensorEngine> SensorEngine::Create(simgpu::Device* device,
                                          const ts::TimeSeries& history,
                                          const SmilerConfig& config,
                                          PredictorKind kind) {
  SmilerConfig cfg = config;
  if (!cfg.use_ensemble && (cfg.ekv.size() > 1 || cfg.elv.size() > 1)) {
    return Status::InvalidArgument(
        "use_ensemble == false requires singleton EKV and ELV");
  }
  SMILER_ASSIGN_OR_RETURN(index::SmilerIndex index,
                          index::SmilerIndex::Build(device, history, cfg));
  return SensorEngine(std::move(cfg), kind, std::move(index));
}

EngineSnapshot SensorEngine::Snapshot() const {
  EngineSnapshot snap;
  snap.config = cfg_;
  snap.kind = kind_;
  snap.index = index_.Snapshot();
  snap.ensemble = ensemble_.ExportState();
  snap.gp_kernels.reserve(gp_cells_.size());
  for (const predictors::GpCellPredictor& cell : gp_cells_) {
    if (cell.kernel().has_value()) {
      snap.gp_kernels.push_back(cell.kernel()->log_params());
    } else {
      snap.gp_kernels.push_back(std::nullopt);
    }
  }
  snap.pending.reserve(pending_.size());
  for (const PendingForecast& p : pending_) {
    snap.pending.push_back(
        EngineSnapshot::PendingForecast{p.target_time, p.grid, p.raw});
  }
  return snap;
}

Result<SensorEngine> SensorEngine::Restore(simgpu::Device* device,
                                           const EngineSnapshot& snapshot) {
  const SmilerConfig& cfg = snapshot.config;
  if (!cfg.use_ensemble && (cfg.ekv.size() > 1 || cfg.elv.size() > 1)) {
    return Status::InvalidArgument(
        "use_ensemble == false requires singleton EKV and ELV");
  }
  SMILER_ASSIGN_OR_RETURN(
      index::SmilerIndex index,
      index::SmilerIndex::Restore(device, cfg, snapshot.index));
  SensorEngine engine(cfg, snapshot.kind, std::move(index));
  SMILER_RETURN_NOT_OK(engine.ensemble_.RestoreState(snapshot.ensemble));
  if (snapshot.gp_kernels.size() != engine.gp_cells_.size()) {
    return Status::InvalidArgument("snapshot GP cell count mismatch");
  }
  for (std::size_t i = 0; i < snapshot.gp_kernels.size(); ++i) {
    if (snapshot.gp_kernels[i].has_value()) {
      engine.gp_cells_[i].RestoreKernel(gp::SeKernel(
          (*snapshot.gp_kernels[i])[0], (*snapshot.gp_kernels[i])[1],
          (*snapshot.gp_kernels[i])[2]));
    }
  }
  const int rows = static_cast<int>(cfg.ekv.size());
  const int cols = static_cast<int>(cfg.elv.size());
  for (const EngineSnapshot::PendingForecast& p : snapshot.pending) {
    if (p.grid.rows != rows || p.grid.cols != cols) {
      return Status::InvalidArgument("snapshot pending-grid shape mismatch");
    }
    engine.pending_.push_back(PendingForecast{p.target_time, p.grid, p.raw});
  }
  return engine;
}

Result<predictors::Prediction> SensorEngine::Predict(EngineStats* stats) {
  SMILER_TRACE_SPAN("engine.predict");
  SMILER_ASSIGN_OR_RETURN(PendingPredict pending, BeginPredict());
  ComputeGrams(&pending);
  return FinishPredict(std::move(pending), stats);
}

Result<PendingPredict> SensorEngine::BeginPredict() {
  SMILER_ASSIGN_OR_RETURN(PendingPredict pending, BeginPredictLb());
  SMILER_RETURN_NOT_OK(FinishPredictVerify(&pending));
  return pending;
}

Result<PendingPredict> SensorEngine::BeginPredictLb() {
  PendingPredict pending;
  WallTimer timer;
  index::SuffixSearchOptions opts;
  opts.k = cfg_.MaxK();
  opts.reserve_horizon = cfg_.horizon;
  Result<index::PendingSearch> search_or = [&] {
    SMILER_TRACE_SPAN("engine.search");
    return index_.BeginSearch(opts);
  }();
  if (!search_or.ok()) return search_or.status();
  pending.search = std::move(*search_or);
  pending.search_seconds += timer.ElapsedSeconds();
  return pending;
}

Status SensorEngine::FinishPredictVerify(PendingPredict* pending_out) {
  static obs::Histogram& search_hist =
      obs::Registry::Global().GetHistogram("engine.search_seconds");

  PendingPredict& pending = *pending_out;
  WallTimer timer;
  Result<index::SuffixKnnResult> knn_or = [&] {
    SMILER_TRACE_SPAN("engine.search");
    return index_.FinishSearch(std::move(pending.search),
                               &pending.search_stats);
  }();
  if (!knn_or.ok()) return knn_or.status();
  pending.knn = std::move(*knn_or);
  pending.search_seconds += timer.ElapsedSeconds();
  search_hist.Observe(pending.search_seconds);

  // Collect the awake cells; fitting happens in FinishPredict.
  const int rows = static_cast<int>(cfg_.ekv.size());
  const int cols = static_cast<int>(cfg_.elv.size());
  pending.cells.reserve(rows * cols);
  for (int j = 0; j < cols; ++j) {
    if (pending.knn.items[j].neighbors.empty()) continue;
    for (int i = 0; i < rows; ++i) {
      if (ensemble_.IsAwake(i, j)) pending.cells.emplace_back(i, j);
    }
  }
  // Cross-cell Gram reuse (GP only): every EKV row of an ELV column
  // trains on a prefix of the same neighbor list, so one pairwise
  // squared-distance matrix per column — computed once at the column's
  // largest awake k — serves all of its cells through leading-submatrix
  // views, and every CG evaluation inside each cell reuses it again.
  // Here we only assemble the training inputs; the Grams themselves are
  // computed by ComputeGrams (solo) or a cross-engine batched launch.
  pending.columns.resize(cols);
  if (kind_ == PredictorKind::kGp) {
    WallTimer gram_timer;
    std::vector<int> column_max_k(cols, 0);
    for (const auto& [i, j] : pending.cells) {
      column_max_k[j] = std::max(column_max_k[j], cfg_.ekv[i]);
    }
    const std::vector<double>& series = index_.series();
    for (int j = 0; j < cols; ++j) {
      if (column_max_k[j] == 0) continue;
      auto full = predictors::MakeTrainingSet(series, pending.knn.items[j],
                                              column_max_k[j], cfg_.horizon);
      // On failure the cells recompute their own distances (and surface
      // the same failure themselves if it affects them).
      if (!full.ok()) continue;
      pending.columns[j].x = std::move(full->x);
    }
    pending.gram_seconds += gram_timer.ElapsedSeconds();
  }
  return Status::OK();
}

void SensorEngine::ComputeGrams(PendingPredict* pending) {
  if (pending->grams_ready) return;
  pending->grams_ready = true;
  if (kind_ != PredictorKind::kGp) return;
  SMILER_TRACE_SPAN("engine.gram_cache");
  obs::StageScope gram_stage(obs::Stage::kGram);
  static obs::Counter& gram_columns =
      obs::Registry::Global().GetCounter("engine.gram_columns");
  WallTimer gram_timer;
  for (PendingPredict::GramColumn& column : pending->columns) {
    if (column.x.rows() == 0) continue;
    // Route the Gram through the device so SE-kernel evaluation runs on
    // the selected backend and is profiled as "gp.gram"; both backends
    // are bitwise-identical to the host function. A launch failure
    // (e.g. chaos injection) falls back to the host path — same
    // degradation contract as the cells recomputing their own distances.
    auto gram_or = gp::PairwiseSquaredDistancesOnDevice(index_.device(),
                                                        column.x);
    column.gram = gram_or.ok() ? std::move(*gram_or)
                               : gp::PairwiseSquaredDistances(column.x);
    gram_columns.Increment();
  }
  pending->gram_seconds += gram_timer.ElapsedSeconds();
}

Status SensorEngine::FitCells(PendingPredict* pending_out) {
  PendingPredict& pending = *pending_out;
  if (pending.cells_fit) return Status::OK();
  pending.cells_fit = true;
  if (!pending.grams_ready) ComputeGrams(&pending);
  WallTimer timer;
  SMILER_TRACE_SPAN("engine.fit_cells");
  const int cols = static_cast<int>(cfg_.elv.size());
  pending.grid =
      predictors::PredictionGrid(static_cast<int>(cfg_.ekv.size()), cols);
  predictors::PredictionGrid& grid = pending.grid;
  const std::vector<double>& series = index_.series();
  const index::SuffixKnnResult& knn = pending.knn;

  // Fit the awake cells — concurrently when enabled (cells are
  // independent: disjoint predictor state, disjoint grid slots, shared
  // read-only kNN data).
  auto fit_cell = [&](std::size_t idx) {
    const auto [i, j] = pending.cells[idx];
    const index::ItemQueryResult& item = knn.items[j];
    const double* x0 = series.data() + series.size() - item.d;
    auto set = predictors::MakeTrainingSet(series, item, cfg_.ekv[i],
                                           cfg_.horizon);
    if (!set.ok()) return;
    predictors::Prediction p;
    if (kind_ == PredictorKind::kGp) {
      predictors::GpCellPredictor& cell = gp_cells_[i * cols + j];
      if (!cfg_.gp_warm_start) cell.Reset();
      const la::Matrix& column_gram = pending.columns[j].gram;
      la::ConstMatrixView gram_view;
      const la::ConstMatrixView* gram = nullptr;
      if (!column_gram.empty() && set->x.rows() <= column_gram.rows()) {
        gram_view = la::ConstMatrixView(column_gram).Leading(set->x.rows());
        gram = &gram_view;
      }
      p = cell.Predict(*set, x0, cfg_.initial_cg_steps,
                       cfg_.online_cg_steps, gram);
    } else {
      p = predictors::AggregationPredict(*set);
    }
    grid.Set(i, j, p);
  };
  if (cfg_.parallel_prediction) {
    ThreadPool::Default().ParallelFor(pending.cells.size(), fit_cell);
  } else {
    for (std::size_t idx = 0; idx < pending.cells.size(); ++idx) {
      fit_cell(idx);
    }
  }
  pending.fit_seconds += timer.ElapsedSeconds();
  return Status::OK();
}

Result<predictors::Prediction> SensorEngine::FinishPredict(
    PendingPredict pending, EngineStats* stats) {
  static obs::Counter& predictions =
      obs::Registry::Global().GetCounter("engine.predictions");
  static obs::Histogram& predict_hist =
      obs::Registry::Global().GetHistogram("engine.predict_seconds");

  SMILER_RETURN_NOT_OK(FitCells(&pending));
  WallTimer timer;
  SMILER_TRACE_SPAN("engine.predict_step");
  const predictors::Prediction raw = ensemble_.CombineRaw(pending.grid);
  predictors::Prediction combined = raw;
  combined.variance *= ensemble_.variance_scale();
  pending_.push_back(PendingForecast{now() + cfg_.horizon,
                                     std::move(pending.grid), raw});

  // The Prediction Step's cost spans all of its phases: the
  // Gram/training-set assembly and cell fits (wherever they ran) plus the
  // combine here.
  const double predict_seconds =
      pending.gram_seconds + pending.fit_seconds + timer.ElapsedSeconds();
  predict_hist.Observe(predict_seconds);
  predictions.Increment();
  if (stats != nullptr) {
    stats->search_seconds += pending.search_seconds;
    stats->predict_seconds += predict_seconds;
    stats->search.Add(pending.search_stats);
  }
  return combined;
}

Status SensorEngine::Observe(double value) {
  SMILER_TRACE_SPAN("engine.observe");
  // Reject non-finite samples before ANY state is touched: the pending
  // queue, the ensemble weights, and the index must stay exactly as they
  // were so a client can drop the bad sample and continue.
  SMILER_RETURN_NOT_OK(ts::ValidateObservation(value));
  static obs::Counter& observations =
      obs::Registry::Global().GetCounter("engine.observations");
  observations.Increment();
  const long t_new = now() + 1;
  while (!pending_.empty() && pending_.front().target_time <= t_new) {
    if (pending_.front().target_time == t_new) {
      SMILER_TRACE_SPAN("engine.ensemble_update");
      ensemble_.ObserveCalibration(value, pending_.front().raw);
      ensemble_.Observe(value, pending_.front().grid);
    }
    pending_.pop_front();
  }
  return index_.Append(value);
}

}  // namespace core
}  // namespace smiler
