#include "core/snapshot_codec.h"

#include <cmath>
#include <cstring>

namespace smiler {
namespace core {

namespace {

constexpr char kMagic[8] = {'S', 'M', 'L', 'R', 'C', 'K', 'P', 'T'};

// --- serialization primitives (fixed-width little-endian; the project
// targets little-endian hosts, matching the raw-double CSV/bench IO) ---

template <typename T>
void Put(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

void PutF64Vec(std::string* out, const std::vector<double>& v) {
  Put<std::uint64_t>(out, v.size());
  out->append(reinterpret_cast<const char*>(v.data()),
              v.size() * sizeof(double));
}

void PutI32Vec(std::string* out, const std::vector<int>& v) {
  Put<std::uint64_t>(out, v.size());
  for (int x : v) Put<std::int32_t>(out, x);
}

void PutVarint(std::string* out, std::uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

std::uint64_t ZigZag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t UnZigZag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Bounds-checked reader over a serialized payload. Every Get sets
/// `ok = false` on truncation instead of reading past the end; callers
/// check once after a batch of reads.
struct Cursor {
  const char* p;
  const char* end;
  bool ok = true;

  template <typename T>
  T Get() {
    T v{};
    if (!ok || end - p < static_cast<std::ptrdiff_t>(sizeof(T))) {
      ok = false;
      return v;
    }
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    return v;
  }

  /// Reads a u64 count bounded by the bytes remaining / \p elem_bytes —
  /// a corrupt count can never trigger a huge allocation.
  std::size_t GetCount(std::size_t elem_bytes) {
    const std::uint64_t n = Get<std::uint64_t>();
    if (!ok || n > static_cast<std::uint64_t>(end - p) / elem_bytes) {
      ok = false;
      return 0;
    }
    return static_cast<std::size_t>(n);
  }

  std::vector<double> GetF64Vec() {
    const std::size_t n = GetCount(sizeof(double));
    std::vector<double> v(n);
    if (ok && n > 0) {
      std::memcpy(v.data(), p, n * sizeof(double));
      p += n * sizeof(double);
    }
    return v;
  }

  std::vector<int> GetI32Vec() {
    const std::size_t n = GetCount(sizeof(std::int32_t));
    std::vector<int> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = Get<std::int32_t>();
    return v;
  }

  std::uint64_t GetVarint() {
    std::uint64_t v = 0;
    for (int shift = 0; ok && shift < 64; shift += 7) {
      if (p >= end) {
        ok = false;
        return 0;
      }
      const unsigned char b = static_cast<unsigned char>(*p++);
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
    }
    ok = false;
    return 0;
  }
};

void PutPrediction(std::string* out, const predictors::Prediction& p) {
  Put<double>(out, p.mean);
  Put<double>(out, p.variance);
}

predictors::Prediction GetPrediction(Cursor* c) {
  predictors::Prediction p;
  p.mean = c->Get<double>();
  p.variance = c->Get<double>();
  return p;
}

// --- quantized arena half-rows ---
//
// Each arena row holds an LBEQ half then an LBEC half of `arena_stride`
// doubles, the first `cols` of which are live lower bounds (the rest is
// chunk-rounding padding, always zero). One quantized half is:
//
//   f64 lo | f64 step | `cols` levels, delta + zigzag + LEB128 varint
//
// with level q decoding to lo + q*step. The encoder picks the largest q
// whose decoded value does not exceed the exact entry (a fix-up loop
// absorbs floating-point drift in the floor division), so decoded values
// never round a lower bound UP — the invariant the filter-and-verify
// exactness proof needs.

void PutQuantizedHalf(std::string* out, const double* vals,
                      std::int64_t cols) {
  double lo = 0.0;
  double hi = 0.0;
  if (cols > 0) {
    lo = hi = vals[0];
    for (std::int64_t i = 1; i < cols; ++i) {
      lo = vals[i] < lo ? vals[i] : lo;
      hi = vals[i] > hi ? vals[i] : hi;
    }
  }
  double step = (hi - lo) / 65535.0;
  if (!(step > 0.0) || !std::isfinite(step)) step = 0.0;
  Put<double>(out, lo);
  Put<double>(out, step);
  std::uint32_t prev = 0;
  for (std::int64_t i = 0; i < cols; ++i) {
    std::uint32_t q = 0;
    if (step > 0.0) {
      const double f = std::floor((vals[i] - lo) / step);
      if (f >= 65535.0) {
        q = 65535;
      } else if (f > 0.0) {
        q = static_cast<std::uint32_t>(f);
      }
      while (q > 0 && lo + static_cast<double>(q) * step > vals[i]) --q;
    }
    PutVarint(out, ZigZag(static_cast<std::int64_t>(q) -
                          static_cast<std::int64_t>(prev)));
    prev = q;
  }
}

void GetQuantizedHalf(Cursor* c, double* dst, std::int64_t cols) {
  const double lo = c->Get<double>();
  const double step = c->Get<double>();
  std::uint32_t prev = 0;
  for (std::int64_t i = 0; c->ok && i < cols; ++i) {
    const std::int64_t q =
        static_cast<std::int64_t>(prev) + UnZigZag(c->GetVarint());
    if (q < 0 || q > 65535) {
      c->ok = false;
      return;
    }
    prev = static_cast<std::uint32_t>(q);
    dst[i] = lo + static_cast<double>(prev) * step;
  }
}

/// Quantization needs sane geometry and finite entries; anything else
/// (mid-anomaly NaNs in the series propagate into the LBs) falls back to
/// the raw representation for the whole arena.
bool ArenaIsQuantizable(const index::IndexSnapshot& idx) {
  if (idx.cols < 0 || idx.arena_stride < idx.cols) return false;
  if (idx.arena.empty()) return true;
  if (idx.arena_stride <= 0) return false;
  if (idx.arena.size() %
          (2 * static_cast<std::size_t>(idx.arena_stride)) != 0) {
    return false;
  }
  for (double v : idx.arena) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

void PutQuantizedArena(std::string* out, const index::IndexSnapshot& idx) {
  const std::int64_t stride = idx.arena_stride;
  const std::size_t rows =
      stride > 0 ? idx.arena.size() / (2 * static_cast<std::size_t>(stride))
                 : 0;
  Put<std::uint32_t>(out, static_cast<std::uint32_t>(rows));
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = idx.arena.data() + r * 2 * stride;
    PutQuantizedHalf(out, row, idx.cols);
    PutQuantizedHalf(out, row + stride, idx.cols);
  }
}

std::vector<double> GetQuantizedArena(Cursor* c, std::int64_t cols,
                                      std::int64_t stride) {
  const std::uint32_t rows = c->Get<std::uint32_t>();
  if (!c->ok) return {};
  if (cols < 0 || stride < cols || (rows > 0 && stride <= 0)) {
    c->ok = false;
    return {};
  }
  // Each row costs at least two 16-byte headers plus one varint byte per
  // live entry, and the decoded arena is bounded outright — a corrupt
  // header can never trigger a runaway allocation.
  const std::uint64_t min_row_bytes =
      32 + 2 * static_cast<std::uint64_t>(cols);
  if (rows > static_cast<std::uint64_t>(c->end - c->p) / min_row_bytes ||
      static_cast<std::uint64_t>(rows) * 2 *
              static_cast<std::uint64_t>(stride) >
          (1ULL << 28)) {
    c->ok = false;
    return {};
  }
  std::vector<double> arena(
      static_cast<std::size_t>(rows) * 2 * static_cast<std::size_t>(stride),
      0.0);
  for (std::uint32_t r = 0; c->ok && r < rows; ++r) {
    double* row = arena.data() + static_cast<std::size_t>(r) * 2 * stride;
    GetQuantizedHalf(c, row, cols);
    GetQuantizedHalf(c, row + stride, cols);
  }
  return arena;
}

}  // namespace

std::uint64_t SnapshotChecksum(const char* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string SerializeEngineSnapshot(const EngineSnapshot& snap,
                                    ArenaEncoding arena) {
  std::string out;
  // Configuration.
  const SmilerConfig& cfg = snap.config;
  Put<std::int32_t>(&out, cfg.rho);
  Put<std::int32_t>(&out, cfg.omega);
  Put<std::int32_t>(&out, cfg.horizon);
  Put<std::int32_t>(&out, cfg.online_cg_steps);
  Put<std::int32_t>(&out, cfg.initial_cg_steps);
  Put<std::uint8_t>(&out, cfg.gp_warm_start);
  Put<std::uint8_t>(&out, cfg.parallel_prediction);
  Put<std::uint8_t>(&out, cfg.use_ensemble);
  Put<std::uint8_t>(&out, cfg.self_adaptive_weights);
  Put<std::uint8_t>(&out, cfg.sleep_and_recovery);
  PutI32Vec(&out, cfg.elv);
  PutI32Vec(&out, cfg.ekv);
  Put<std::uint8_t>(&out, static_cast<std::uint8_t>(snap.kind));
  // Index state.
  const index::IndexSnapshot& idx = snap.index;
  PutF64Vec(&out, idx.series);
  PutF64Vec(&out, idx.env_c_upper);
  PutF64Vec(&out, idx.env_c_lower);
  PutF64Vec(&out, idx.env_mq_upper);
  PutF64Vec(&out, idx.env_mq_lower);
  Put<std::int32_t>(&out, idx.head);
  Put<std::int64_t>(&out, idx.cols);
  Put<std::int64_t>(&out, idx.arena_stride);
  ArenaEncoding effective = arena;
  if (effective == ArenaEncoding::kQuantized16 && !ArenaIsQuantizable(idx)) {
    effective = ArenaEncoding::kRaw;
  }
  Put<std::uint8_t>(&out, static_cast<std::uint8_t>(effective));
  if (effective == ArenaEncoding::kQuantized16) {
    PutQuantizedArena(&out, idx);
  } else {
    PutF64Vec(&out, idx.arena);
  }
  Put<std::uint64_t>(&out, idx.prev_knn.size());
  for (const auto& knn : idx.prev_knn) {
    Put<std::uint64_t>(&out, knn.size());
    for (const index::Neighbor& nb : knn) {
      Put<std::int64_t>(&out, nb.t);
      Put<double>(&out, nb.dist);
    }
  }
  // Ensemble state.
  Put<std::uint64_t>(&out, snap.ensemble.cells.size());
  for (const auto& cell : snap.ensemble.cells) {
    Put<double>(&out, cell.weight);
    Put<std::uint8_t>(&out, cell.awake);
    Put<std::int32_t>(&out, cell.counter);
    Put<std::int32_t>(&out, cell.remaining);
    Put<std::uint8_t>(&out, cell.just_recovered);
  }
  Put<double>(&out, snap.ensemble.z_ewma);
  Put<double>(&out, snap.ensemble.vif);
  // GP warm-start kernels.
  Put<std::uint64_t>(&out, snap.gp_kernels.size());
  for (const auto& kernel : snap.gp_kernels) {
    Put<std::uint8_t>(&out, kernel.has_value());
    if (kernel.has_value()) {
      for (double lp : *kernel) Put<double>(&out, lp);
    }
  }
  // Pending forecasts.
  Put<std::uint64_t>(&out, snap.pending.size());
  for (const auto& pf : snap.pending) {
    Put<std::int64_t>(&out, pf.target_time);
    Put<std::int32_t>(&out, pf.grid.rows);
    Put<std::int32_t>(&out, pf.grid.cols);
    for (std::size_t i = 0; i < pf.grid.preds.size(); ++i) {
      PutPrediction(&out, pf.grid.preds[i]);
      Put<std::uint8_t>(&out, pf.grid.has[i]);
    }
    PutPrediction(&out, pf.raw);
  }
  return out;
}

Result<EngineSnapshot> ParseEngineSnapshot(const char* data,
                                           std::size_t size) {
  Cursor c{data, data + size};
  EngineSnapshot snap;
  SmilerConfig& cfg = snap.config;
  cfg.rho = c.Get<std::int32_t>();
  cfg.omega = c.Get<std::int32_t>();
  cfg.horizon = c.Get<std::int32_t>();
  cfg.online_cg_steps = c.Get<std::int32_t>();
  cfg.initial_cg_steps = c.Get<std::int32_t>();
  cfg.gp_warm_start = c.Get<std::uint8_t>() != 0;
  cfg.parallel_prediction = c.Get<std::uint8_t>() != 0;
  cfg.use_ensemble = c.Get<std::uint8_t>() != 0;
  cfg.self_adaptive_weights = c.Get<std::uint8_t>() != 0;
  cfg.sleep_and_recovery = c.Get<std::uint8_t>() != 0;
  cfg.elv = c.GetI32Vec();
  cfg.ekv = c.GetI32Vec();
  const std::uint8_t kind = c.Get<std::uint8_t>();
  if (kind > static_cast<std::uint8_t>(PredictorKind::kAr)) {
    return Status::InvalidArgument("checkpoint holds unknown predictor kind");
  }
  snap.kind = static_cast<PredictorKind>(kind);
  index::IndexSnapshot& idx = snap.index;
  idx.series = c.GetF64Vec();
  idx.env_c_upper = c.GetF64Vec();
  idx.env_c_lower = c.GetF64Vec();
  idx.env_mq_upper = c.GetF64Vec();
  idx.env_mq_lower = c.GetF64Vec();
  idx.head = c.Get<std::int32_t>();
  idx.cols = c.Get<std::int64_t>();
  idx.arena_stride = c.Get<std::int64_t>();
  const std::uint8_t arena_tag = c.Get<std::uint8_t>();
  if (c.ok &&
      arena_tag > static_cast<std::uint8_t>(ArenaEncoding::kQuantized16)) {
    return Status::InvalidArgument(
        "checkpoint holds unknown arena encoding");
  }
  if (arena_tag == static_cast<std::uint8_t>(ArenaEncoding::kQuantized16)) {
    idx.arena = GetQuantizedArena(&c, idx.cols, idx.arena_stride);
  } else {
    idx.arena = c.GetF64Vec();
  }
  idx.prev_knn.resize(c.GetCount(sizeof(std::uint64_t)));
  for (auto& knn : idx.prev_knn) {
    knn.resize(c.GetCount(sizeof(std::int64_t) + sizeof(double)));
    for (index::Neighbor& nb : knn) {
      nb.t = c.Get<std::int64_t>();
      nb.dist = c.Get<double>();
    }
  }
  snap.ensemble.cells.resize(c.GetCount(2 * sizeof(double)));
  for (auto& cell : snap.ensemble.cells) {
    cell.weight = c.Get<double>();
    cell.awake = c.Get<std::uint8_t>() != 0;
    cell.counter = c.Get<std::int32_t>();
    cell.remaining = c.Get<std::int32_t>();
    cell.just_recovered = c.Get<std::uint8_t>() != 0;
  }
  snap.ensemble.z_ewma = c.Get<double>();
  snap.ensemble.vif = c.Get<double>();
  snap.gp_kernels.resize(c.GetCount(sizeof(std::uint8_t)));
  for (auto& kernel : snap.gp_kernels) {
    if (c.Get<std::uint8_t>() != 0) {
      std::array<double, 3> lp;
      for (double& x : lp) x = c.Get<double>();
      kernel = lp;
    }
  }
  snap.pending.resize(c.GetCount(sizeof(std::int64_t)));
  for (auto& pf : snap.pending) {
    pf.target_time = c.Get<std::int64_t>();
    const int rows = c.Get<std::int32_t>();
    const int cols = c.Get<std::int32_t>();
    if (!c.ok || rows < 0 || cols < 0 ||
        static_cast<std::uint64_t>(rows) * cols >
            static_cast<std::uint64_t>(c.end - c.p) / (2 * sizeof(double))) {
      return Status::InvalidArgument("truncated checkpoint payload");
    }
    pf.grid = predictors::PredictionGrid(rows, cols);
    for (std::size_t i = 0; i < pf.grid.preds.size(); ++i) {
      pf.grid.preds[i] = GetPrediction(&c);
      pf.grid.has[i] = static_cast<char>(c.Get<std::uint8_t>());
    }
    pf.raw = GetPrediction(&c);
  }
  if (!c.ok) {
    return Status::InvalidArgument("truncated checkpoint payload");
  }
  if (c.p != c.end) {
    return Status::InvalidArgument("checkpoint payload holds trailing bytes");
  }
  return snap;
}

std::string SerializeSnapshotBlob(const std::vector<EngineSnapshot>& engines,
                                  ArenaEncoding arena) {
  std::string blob;
  blob.append(kMagic, sizeof(kMagic));
  Put<std::uint32_t>(&blob, kSnapshotFormatVersion);
  Put<std::uint32_t>(&blob, static_cast<std::uint32_t>(engines.size()));
  for (const EngineSnapshot& snap : engines) {
    const std::string payload = SerializeEngineSnapshot(snap, arena);
    Put<std::uint64_t>(&blob, payload.size());
    Put<std::uint64_t>(&blob, SnapshotChecksum(payload.data(),
                                               payload.size()));
    blob += payload;
  }
  return blob;
}

Result<std::vector<EngineSnapshot>> ParseSnapshotBlob(
    const char* data, std::size_t size, const std::string& origin) {
  Cursor c{data, data + size};
  char magic[sizeof(kMagic)];
  for (char& ch : magic) ch = c.Get<char>();
  if (!c.ok || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + origin + "' is not a SMiLer "
                                   "checkpoint (bad magic)");
  }
  const std::uint32_t version = c.Get<std::uint32_t>();
  if (c.ok && version != kSnapshotFormatVersion) {
    return Status::FailedPrecondition(
        "checkpoint format version " + std::to_string(version) +
        " unsupported (this build reads version " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  const std::uint32_t count = c.Get<std::uint32_t>();
  std::vector<EngineSnapshot> engines;
  for (std::uint32_t i = 0; c.ok && i < count; ++i) {
    const std::uint64_t payload_size = c.Get<std::uint64_t>();
    const std::uint64_t checksum = c.Get<std::uint64_t>();
    if (!c.ok ||
        payload_size > static_cast<std::uint64_t>(c.end - c.p)) {
      return Status::InvalidArgument("truncated checkpoint '" + origin + "'");
    }
    if (SnapshotChecksum(c.p, payload_size) != checksum) {
      return Status::InvalidArgument("checksum mismatch in checkpoint '" +
                                     origin + "' (engine " +
                                     std::to_string(i) + ")");
    }
    SMILER_ASSIGN_OR_RETURN(EngineSnapshot snap,
                            ParseEngineSnapshot(c.p, payload_size));
    engines.push_back(std::move(snap));
    c.p += payload_size;
  }
  if (!c.ok) {
    return Status::InvalidArgument("truncated checkpoint '" + origin + "'");
  }
  if (c.p != c.end) {
    return Status::InvalidArgument("checkpoint '" + origin +
                                   "' holds trailing bytes");
  }
  return engines;
}

}  // namespace core
}  // namespace smiler
