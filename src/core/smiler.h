#ifndef SMILER_CORE_SMILER_H_
#define SMILER_CORE_SMILER_H_

/// \file smiler.h
/// \brief Umbrella header: the complete public API of the SMiLer library.
///
/// Typical usage (see examples/quickstart.cc):
///
///   smiler::simgpu::Device device;                 // simulated GPU
///   smiler::SmilerConfig config;                   // Table 2 defaults
///   auto series = smiler::ts::ZNormalized(raw);    // per-sensor z-norm
///   auto engine = smiler::core::SensorEngine::Create(
///       &device, series, config, smiler::core::PredictorKind::kGp);
///   auto pred = engine->Predict();                 // mean & variance
///   engine->Observe(next_value);                   // self-adapt & ingest

#include "common/config.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/manager.h"
#include "core/metrics.h"
#include "index/scan_baselines.h"
#include "index/smiler_index.h"
#include "predictors/ensemble.h"
#include "simgpu/device.h"
#include "ts/datasets.h"
#include "ts/series.h"

#endif  // SMILER_CORE_SMILER_H_
