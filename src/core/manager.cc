#include "core/manager.h"

#include <mutex>

namespace smiler {
namespace core {

Result<MultiSensorManager> MultiSensorManager::Create(
    simgpu::Device* device, const std::vector<ts::TimeSeries>& sensors,
    const SmilerConfig& config, PredictorKind kind) {
  return Create(std::vector<simgpu::Device*>{device}, sensors, config, kind);
}

Result<MultiSensorManager> MultiSensorManager::Create(
    const std::vector<simgpu::Device*>& devices,
    const std::vector<ts::TimeSeries>& sensors, const SmilerConfig& config,
    PredictorKind kind) {
  if (sensors.empty()) {
    return Status::InvalidArgument("at least one sensor required");
  }
  if (devices.empty() || devices[0] == nullptr) {
    return Status::InvalidArgument("at least one device required");
  }
  std::vector<SensorEngine> engines;
  engines.reserve(sensors.size());
  for (std::size_t i = 0; i < sensors.size(); ++i) {
    simgpu::Device* device = devices[i % devices.size()];
    if (device == nullptr) {
      return Status::InvalidArgument("null device in device list");
    }
    SMILER_ASSIGN_OR_RETURN(
        SensorEngine engine,
        SensorEngine::Create(device, sensors[i], config, kind));
    engines.push_back(std::move(engine));
  }
  return MultiSensorManager(std::move(engines));
}

Status MultiSensorManager::PredictAll(std::vector<predictors::Prediction>* out,
                                      EngineStats* stats) {
  out->assign(engines_.size(), predictors::Prediction{});
  std::mutex mu;
  Status first_error;
  EngineStats total;
  ThreadPool::Default().ParallelFor(engines_.size(), [&](std::size_t i) {
    EngineStats local;
    auto pred = engines_[i].Predict(&local);
    std::lock_guard<std::mutex> lock(mu);
    if (pred.ok()) {
      (*out)[i] = *pred;
      total.Add(local);
    } else if (first_error.ok()) {
      first_error = pred.status();
    }
  });
  if (stats != nullptr) stats->Add(total);
  return first_error;
}

Status MultiSensorManager::ObserveAll(const std::vector<double>& values) {
  if (values.size() != engines_.size()) {
    return Status::InvalidArgument("values size must match sensor count");
  }
  std::mutex mu;
  Status first_error;
  ThreadPool::Default().ParallelFor(engines_.size(), [&](std::size_t i) {
    Status st = engines_[i].Observe(values[i]);
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      if (first_error.ok()) first_error = st;
    }
  });
  return first_error;
}

}  // namespace core
}  // namespace smiler
