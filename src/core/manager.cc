#include "core/manager.h"

#include <mutex>

namespace smiler {
namespace core {

Result<MultiSensorManager> MultiSensorManager::Create(
    simgpu::Device* device, const std::vector<ts::TimeSeries>& sensors,
    const SmilerConfig& config, PredictorKind kind) {
  return Create(std::vector<simgpu::Device*>{device}, sensors, config, kind);
}

Result<MultiSensorManager> MultiSensorManager::Create(
    const std::vector<simgpu::Device*>& devices,
    const std::vector<ts::TimeSeries>& sensors, const SmilerConfig& config,
    PredictorKind kind) {
  if (sensors.empty()) {
    return Status::InvalidArgument("at least one sensor required");
  }
  if (devices.empty() || devices[0] == nullptr) {
    return Status::InvalidArgument("at least one device required");
  }
  std::vector<SensorEngine> engines;
  engines.reserve(sensors.size());
  for (std::size_t i = 0; i < sensors.size(); ++i) {
    simgpu::Device* device = devices[i % devices.size()];
    if (device == nullptr) {
      return Status::InvalidArgument("null device in device list");
    }
    SMILER_ASSIGN_OR_RETURN(
        SensorEngine engine,
        SensorEngine::Create(device, sensors[i], config, kind));
    engines.push_back(std::move(engine));
  }
  return MultiSensorManager(std::move(engines));
}

Result<MultiSensorManager> MultiSensorManager::Adopt(
    std::vector<SensorEngine> engines) {
  if (engines.empty()) {
    return Status::InvalidArgument("at least one engine required");
  }
  return MultiSensorManager(std::move(engines));
}

MultiSensorManager::MultiSensorManager(std::vector<SensorEngine> engines) {
  engines_.reserve(engines.size());
  for (SensorEngine& engine : engines) {
    engines_.emplace_back(std::move(engine));
  }
}

Result<SensorEngine> MultiSensorManager::Release(std::size_t i) {
  if (i >= engines_.size()) {
    return Status::OutOfRange("sensor index out of range");
  }
  if (!engines_[i].has_value()) {
    return Status::FailedPrecondition("sensor engine is not resident");
  }
  SensorEngine engine = std::move(*engines_[i]);
  engines_[i].reset();
  return engine;
}

Status MultiSensorManager::Install(std::size_t i, SensorEngine engine) {
  if (i >= engines_.size()) {
    return Status::OutOfRange("sensor index out of range");
  }
  if (engines_[i].has_value()) {
    return Status::FailedPrecondition("sensor engine is already resident");
  }
  engines_[i].emplace(std::move(engine));
  return Status::OK();
}

namespace {

/// The fleet-level summary of per-sensor outcomes: OK when all sensors
/// succeeded, else the first error in sensor order (deterministic
/// regardless of the parallel execution order above it).
Status Summarize(const std::vector<Status>& per_sensor) {
  for (const Status& st : per_sensor) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace

Status MultiSensorManager::PredictAll(std::vector<predictors::Prediction>* out,
                                      EngineStats* stats,
                                      std::vector<Status>* statuses) {
  out->assign(engines_.size(), predictors::Prediction{});
  std::vector<Status> per_sensor(engines_.size());
  std::mutex mu;
  EngineStats total;
  ThreadPool::Default().ParallelFor(engines_.size(), [&](std::size_t i) {
    if (!engines_[i].has_value()) {
      per_sensor[i] =
          Status::FailedPrecondition("sensor engine is not resident");
      return;
    }
    EngineStats local;
    auto pred = engines_[i]->Predict(&local);
    if (pred.ok()) {
      (*out)[i] = *pred;
      std::lock_guard<std::mutex> lock(mu);
      total.Add(local);
    } else {
      per_sensor[i] = pred.status();
    }
  });
  if (stats != nullptr) stats->Add(total);
  Status summary = Summarize(per_sensor);
  if (statuses != nullptr) *statuses = std::move(per_sensor);
  return summary;
}

Status MultiSensorManager::ObserveAll(const std::vector<double>& values,
                                      std::vector<Status>* statuses) {
  if (values.size() != engines_.size()) {
    if (statuses != nullptr) statuses->clear();
    return Status::InvalidArgument("values size must match sensor count");
  }
  std::vector<Status> per_sensor(engines_.size());
  ThreadPool::Default().ParallelFor(engines_.size(), [&](std::size_t i) {
    if (!engines_[i].has_value()) {
      per_sensor[i] =
          Status::FailedPrecondition("sensor engine is not resident");
      return;
    }
    per_sensor[i] = engines_[i]->Observe(values[i]);
  });
  Status summary = Summarize(per_sensor);
  if (statuses != nullptr) *statuses = std::move(per_sensor);
  return summary;
}

}  // namespace core
}  // namespace smiler
