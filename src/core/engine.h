#ifndef SMILER_CORE_ENGINE_H_
#define SMILER_CORE_ENGINE_H_

#include <array>
#include <deque>
#include <optional>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "index/smiler_index.h"
#include "la/matrix.h"
#include "predictors/ensemble.h"
#include "predictors/gp_predictor.h"
#include "simgpu/device.h"
#include "ts/series.h"

namespace smiler {
namespace core {

/// Which abstract-predictor instantiation the engine runs (Section 5.2).
enum class PredictorKind {
  kGp,  ///< SMiLer-GP: query-dependent Gaussian Processes
  kAr,  ///< SMiLer-AR: the simple aggregation predictor
};

/// Returns "SMiLer-GP" / "SMiLer-AR".
const char* PredictorKindName(PredictorKind kind);

/// \brief Per-prediction timing / instrumentation.
///
/// A thin per-call view over the `engine.*` metrics: Predict() fills one
/// of these for callers that aggregate by hand, and always mirrors the
/// same numbers into the global obs::Registry (`engine.search_seconds` /
/// `engine.predict_seconds` histograms, `engine.predictions` counter),
/// where dashboards and the SMILER_METRICS dump read them.
struct EngineStats {
  double search_seconds = 0.0;   ///< Search Step (Suffix kNN on the index)
  double predict_seconds = 0.0;  ///< Prediction Step (model fit + combine)
  index::SearchStats search;

  void Add(const EngineStats& other) {
    search_seconds += other.search_seconds;
    predict_seconds += other.predict_seconds;
    search.Add(other.search);
  }
};

/// \brief Complete serializable state of one SensorEngine — everything a
/// restarted process needs to resume continuous prediction without
/// replaying history or re-indexing.
///
/// Captures the configuration, the full index state (ring buffer,
/// envelopes, posting-list arena, threshold seeds), the ensemble's
/// adaptive weights, every GP cell's warm-start kernel, and the pending
/// (unresolved) forecasts. `serve::Checkpoint` serializes this struct to
/// the versioned on-disk format; a SensorEngine restored from it predicts
/// bitwise-identically to one that never restarted.
struct EngineSnapshot {
  SmilerConfig config;
  PredictorKind kind = PredictorKind::kGp;
  index::IndexSnapshot index;
  predictors::Ensemble::State ensemble;
  /// Warm-start kernel log-hyperparameters per ensemble cell (row-major
  /// |EKV| x |ELV|); nullopt = the cell has not trained yet.
  std::vector<std::optional<std::array<double, 3>>> gp_kernels;
  struct PendingForecast {
    long target_time = 0;
    predictors::PredictionGrid grid;
    predictors::Prediction raw;
  };
  std::vector<PendingForecast> pending;
};

/// \brief Phase-1 state of a split Predict(): the Search Step's kNN
/// results, the awake-cell list, and — for GP engines — the per-ELV-column
/// training inputs whose pairwise-squared-distance Grams are still
/// pending.
///
/// The split exists so a caller owning SEVERAL engines (the serve-layer
/// batch former) can gather every engine's `columns` into one fused
/// `gp.gram_batch` device launch before asking each engine to finish:
/// BeginPredict() → fill each column's `gram` (or leave `grams_ready`
/// false to have FinishPredict compute them solo) → FinishPredict().
/// Produced by one engine and consumed exactly once by the same engine;
/// fields other than `columns` / `grams_ready` are engine-internal.
struct PendingPredict {
  /// One per ELV column. `x` holds the column's training inputs at its
  /// largest awake k (empty when the column needs no Gram); `gram`
  /// receives the pairwise squared distances of `x`'s rows.
  struct GramColumn {
    la::Matrix x;
    la::Matrix gram;
  };
  std::vector<GramColumn> columns;
  /// Set by whoever computed the Grams; when still false at
  /// FinishPredict, the engine computes them itself (solo launches).
  bool grams_ready = false;

  /// Filled by FitCells (the cholesky phase); consumed by FinishPredict.
  predictors::PredictionGrid grid;
  bool cells_fit = false;

  // Engine-internal plumbing between the phases.
  index::PendingSearch search;  ///< between BeginPredictLb and ...Verify
  index::SuffixKnnResult knn;
  index::SearchStats search_stats;
  double search_seconds = 0.0;
  double gram_seconds = 0.0;
  double fit_seconds = 0.0;
  std::vector<std::pair<int, int>> cells;
};

/// \brief The end-to-end SMiLer pipeline for one sensor (Section 3.4):
/// Search Step (Continuous Suffix kNN Search on the SMiLer Index) followed
/// by Prediction Step (ensemble of semi-lazy predictors with the adaptive
/// auto-tuning mechanism).
///
/// Continuous-prediction protocol: alternate `Predict()` (forecast the
/// value config.horizon steps after the latest observation) and
/// `Observe(v)` (ingest the next observation; when it resolves a pending
/// forecast, the ensemble weights self-adapt).
class SensorEngine {
 public:
  /// Creates an engine for one sensor. \p history must already be
  /// z-normalized (see ts::ZNormalized) and long enough for the index.
  static Result<SensorEngine> Create(simgpu::Device* device,
                                     const ts::TimeSeries& history,
                                     const SmilerConfig& config,
                                     PredictorKind kind);

  /// Predicts the posterior distribution of the observation at time
  /// now() + config.horizon. \p stats, when non-null, accumulates timings.
  /// Exactly BeginPredict + ComputeGrams + FinishPredict.
  Result<predictors::Prediction> Predict(EngineStats* stats = nullptr);

  /// Phase 1 of a split Predict: runs the Search Step and publishes the
  /// per-column Gram jobs (see PendingPredict). No engine state changes
  /// until FinishPredict. Exactly BeginPredictLb + FinishPredictVerify.
  Result<PendingPredict> BeginPredict();

  /// Phase 1a: the Search Step's group-level lower-bound pass alone
  /// (the lb_filter graph node). The task-graph serve pipeline splits
  /// here so sensor A's DTW verify overlaps sensor B's lower bounds.
  Result<PendingPredict> BeginPredictLb();

  /// Phase 1b: DTW verify fan-out, awake-cell collection, and per-column
  /// training-input assembly (the dtw_verify graph node). Mutates the
  /// index's threshold seeds — one in-flight phase per engine at a time.
  Status FinishPredictVerify(PendingPredict* pending);

  /// Computes every pending column Gram with this engine's own device
  /// launches ("gp.gram", one per column) — the solo path. Batch callers
  /// fill the columns across engines via
  /// gp::PairwiseSquaredDistancesOnDeviceBatch instead and skip this.
  void ComputeGrams(PendingPredict* pending);

  /// Phase 2a: fits the awake cells against the (now computed) Grams into
  /// `pending->grid` — the cholesky graph node. Computes the Grams solo
  /// first if no one has. Idempotent; FinishPredict runs it itself when
  /// the caller has not.
  Status FitCells(PendingPredict* pending);

  /// Phase 2b: combines the ensemble over the fitted grid and records the
  /// pending forecast (runs FitCells first if the caller has not). The
  /// prediction is bitwise-identical to a monolithic Predict() whenever
  /// the supplied Grams are (both backends and the batched launch
  /// guarantee that).
  Result<predictors::Prediction> FinishPredict(PendingPredict pending,
                                               EngineStats* stats = nullptr);

  /// Ingests the next observation (time now() + 1). Resolves any pending
  /// forecast targeting that time against the ensemble's self-adaptive
  /// weight update, then appends the value to the index (Remark 1 path).
  Status Observe(double value);

  /// Exports the engine's complete state for checkpointing (warm-restart
  /// snapshots). The engine must be quiescent (no concurrent Predict /
  /// Observe); serve-layer shards call this at batch boundaries.
  EngineSnapshot Snapshot() const;

  /// Rebuilds an engine from a snapshot without re-indexing. The restored
  /// engine's subsequent Predict/Observe sequence is bitwise-identical to
  /// the snapshotted engine's. Device memory is charged to \p device.
  static Result<SensorEngine> Restore(simgpu::Device* device,
                                      const EngineSnapshot& snapshot);

  /// Timestamp of the latest observation.
  long now() const { return index_.now(); }
  /// The device this engine launches kernels on (shared by the fleet);
  /// batch callers route fused launches through it.
  simgpu::Device* device() const { return index_.device(); }
  /// Which abstract predictor this engine runs; batch callers use it to
  /// decide whether the engine participates in fused Gram launches.
  PredictorKind kind() const { return kind_; }
  const SmilerConfig& config() const { return cfg_; }
  const predictors::Ensemble& ensemble() const { return ensemble_; }
  const index::SmilerIndex& index() const { return index_; }

 private:
  SensorEngine(SmilerConfig cfg, PredictorKind kind,
               index::SmilerIndex index);

  struct PendingForecast {
    long target_time = 0;
    predictors::PredictionGrid grid;
    /// Raw (pre-calibration) combined prediction, for the variance
    /// calibration update.
    predictors::Prediction raw;
  };

  SmilerConfig cfg_;
  PredictorKind kind_;
  index::SmilerIndex index_;
  predictors::Ensemble ensemble_;
  std::vector<predictors::GpCellPredictor> gp_cells_;
  std::deque<PendingForecast> pending_;
};

}  // namespace core
}  // namespace smiler

#endif  // SMILER_CORE_ENGINE_H_
