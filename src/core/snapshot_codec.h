#ifndef SMILER_CORE_SNAPSHOT_CODEC_H_
#define SMILER_CORE_SNAPSHOT_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"

namespace smiler {
namespace core {

/// Current SMLRCKPT payload layout version. Bumped whenever the payload
/// layout changes; readers reject any other version with
/// FailedPrecondition (v2 added the arena-encoding tag byte).
inline constexpr std::uint32_t kSnapshotFormatVersion = 2;

/// How the LbArena rows of an IndexSnapshot are encoded inside a
/// serialized engine payload.
///
/// - kRaw: every arena entry verbatim as IEEE-754 f64. Byte-exact
///   round-trips; warm-restart checkpoints use this.
/// - kQuantized16: 16-bit fixed-point per half-row (LBEQ then LBEC),
///   each half carrying an f64 [lo, step] header followed by
///   delta+zigzag+varint coded quantization levels; stride padding is
///   dropped and reconstructed as zeros. Quantization rounds DOWN:
///   every decoded entry satisfies decoded <= exact. A lower bound that
///   only ever shrinks stays a valid lower bound, and the
///   filter-and-verify contract (verify computes exact banded DTW, tau
///   seeds come from prev_knn which is preserved exactly) keeps the kNN
///   set — and therefore every subsequent prediction — bitwise
///   identical despite the lossy arena. The cold-tier spill leans on
///   this; snapshots whose arena holds non-finite entries fall back to
///   kRaw automatically.
enum class ArenaEncoding : std::uint8_t { kRaw = 0, kQuantized16 = 1 };

/// Serializes a fleet of engine snapshots into a self-contained SMLRCKPT
/// blob:
///
///   magic "SMLRCKPT" | u32 format version | u32 engine count
///   per engine: u64 payload bytes | u64 FNV-1a of payload | payload
///
/// The same bytes back warm-restart checkpoint files (serve::Checkpoint)
/// and cold-tier spill segments (store::TieredStateStore) — one wire
/// format, two IO paths.
std::string SerializeSnapshotBlob(const std::vector<EngineSnapshot>& engines,
                                  ArenaEncoding arena);

/// Parses a blob produced by SerializeSnapshotBlob. \p origin names the
/// byte source (a file path) for error messages only. Corruption (bad
/// magic, truncation, checksum mismatch, trailing bytes) fails with
/// InvalidArgument; a version mismatch fails with FailedPrecondition.
Result<std::vector<EngineSnapshot>> ParseSnapshotBlob(
    const char* data, std::size_t size, const std::string& origin);

/// Serializes / parses one engine payload without the container framing.
/// Exposed for the quantization property tests; production callers go
/// through the blob functions above.
std::string SerializeEngineSnapshot(const EngineSnapshot& snap,
                                    ArenaEncoding arena);
Result<EngineSnapshot> ParseEngineSnapshot(const char* data,
                                           std::size_t size);

/// FNV-1a over \p n bytes — the per-engine payload checksum.
std::uint64_t SnapshotChecksum(const char* data, std::size_t n);

}  // namespace core
}  // namespace smiler

#endif  // SMILER_CORE_SNAPSHOT_CODEC_H_
