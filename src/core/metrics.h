#ifndef SMILER_CORE_METRICS_H_
#define SMILER_CORE_METRICS_H_

#include <cmath>
#include <cstddef>

#include "common/math_utils.h"
#include "gp/gp_regressor.h"

namespace smiler {
namespace core {

/// \brief Streaming accumulator of the paper's two evaluation measures
/// (Section 6.3.1): MAE (accuracy of the point prediction) and MNLPD
/// (quality of the predictive uncertainty: mean negative log density of
/// the truth under the predicted normal distribution). Lower is better
/// for both. RMSE is tracked as a bonus diagnostic.
class MetricAccumulator {
 public:
  /// Records one (truth, prediction) pair. Degenerate variances are
  /// clamped to gp::kMinPredictiveVariance to keep the density defined
  /// (each clamp shows up in the `gp.variance_clamped` counter).
  void Add(double truth, const gp::Prediction& p) {
    const double err = truth - p.mean;
    abs_err_ += std::fabs(err);
    sq_err_ += err * err;
    const double var = gp::ClampPredictiveVariance(p.variance);
    nlpd_ += -GaussianLogDensity(truth, p.mean, var);
    count_ += 1;
  }

  /// Merges another accumulator (multi-sensor aggregation).
  void Merge(const MetricAccumulator& other) {
    abs_err_ += other.abs_err_;
    sq_err_ += other.sq_err_;
    nlpd_ += other.nlpd_;
    count_ += other.count_;
  }

  double Mae() const { return count_ ? abs_err_ / count_ : 0.0; }
  double Rmse() const { return count_ ? std::sqrt(sq_err_ / count_) : 0.0; }
  double Mnlpd() const { return count_ ? nlpd_ / count_ : 0.0; }
  std::size_t count() const { return count_; }

 private:
  double abs_err_ = 0.0;
  double sq_err_ = 0.0;
  double nlpd_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace core
}  // namespace smiler

#endif  // SMILER_CORE_METRICS_H_
