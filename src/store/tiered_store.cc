#include "store/tiered_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>

#include "chaos/fault.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace smiler {
namespace store {

namespace {

obs::Gauge& ResidentBytesGauge() {
  static obs::Gauge& g =
      obs::Registry::Global().GetGauge("store.resident_bytes");
  return g;
}

obs::Gauge& ResidentBytesHighWaterGauge() {
  static obs::Gauge& g =
      obs::Registry::Global().GetGauge("store.resident_bytes_high_water");
  return g;
}

obs::Gauge& BudgetBytesGauge() {
  static obs::Gauge& g = obs::Registry::Global().GetGauge("store.budget_bytes");
  return g;
}

obs::Counter& EvictionsCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("store.evictions");
  return c;
}

obs::Counter& EvictFailuresCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("store.evict_failures");
  return c;
}

obs::Counter& RehydrationsCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("store.rehydrations");
  return c;
}

obs::Histogram& RehydrateSecondsHistogram() {
  static obs::Histogram& h =
      obs::Registry::Global().GetHistogram("store.rehydrate_seconds");
  return h;
}

/// What a resident engine costs against the budget: its index footprint
/// (series, envelopes, posting-list arena) — the same accounting that
/// powers the Fig 12(c) capacity study.
std::size_t EngineFootprintBytes(const core::SensorEngine& engine) {
  return engine.index().MemoryFootprintBytes();
}

}  // namespace

Result<std::size_t> ParseStoreBudget(std::string_view text) {
  const std::string s(text);
  if (!s.empty() && s.find_first_not_of("0123456789") == std::string::npos) {
    errno = 0;
    char* rest = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &rest, 10);
    if (errno == 0 && rest != nullptr && *rest == '\0' &&
        v <= std::numeric_limits<std::size_t>::max()) {
      return static_cast<std::size_t>(v);
    }
  }
  return Status::InvalidArgument(
      "unknown SMILER_STORE_BUDGET_BYTES value '" + s +
      "' (expected a decimal byte count, e.g. 6442450944)");
}

Result<std::size_t> StoreBudgetFromEnv() {
  const char* value = std::getenv("SMILER_STORE_BUDGET_BYTES");
  if (value == nullptr || value[0] == '\0') {
    return std::numeric_limits<std::size_t>::max();  // unlimited
  }
  return ParseStoreBudget(value);
}

TieredStateStore::TieredStateStore(StoreOptions options, std::size_t budget,
                                   Status env_status)
    : opt_(std::move(options)), budget_(budget),
      env_status_(std::move(env_status)) {}

Result<std::unique_ptr<TieredStateStore>> TieredStateStore::Create(
    const StoreOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("store spill directory must be set");
  }
  if (::mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("cannot create store directory '" + options.dir +
                            "'");
  }
  struct stat st;
  if (::stat(options.dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("store path '" + options.dir +
                                   "' is not a directory");
  }
  std::size_t budget = options.budget_bytes;
  Status env_status = Status::OK();
  if (budget == 0) {
    // Fail-fast env contract (mirrors SMILER_BACKEND): an invalid value
    // does not fall back to a default — the store constructs, but every
    // operation returns the parse error until the env is fixed.
    auto from_env = StoreBudgetFromEnv();
    if (from_env.ok()) {
      budget = *from_env;
    } else {
      env_status = from_env.status();
    }
  }
  std::unique_ptr<TieredStateStore> store(
      new TieredStateStore(options, budget, std::move(env_status)));
  BudgetBytesGauge().Set(
      budget == std::numeric_limits<std::size_t>::max()
          ? 0.0  // unlimited renders as 0 (no budget) in the exposition
          : static_cast<double>(budget));
  return store;
}

Status TieredStateStore::Bind(core::MultiSensorManager* manager,
                              simgpu::Device* device) {
  SMILER_RETURN_NOT_OK(env_status_);
  if (manager == nullptr || device == nullptr) {
    return Status::InvalidArgument("store needs a manager and a device");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (manager_ != nullptr) {
    return Status::FailedPrecondition("store is already bound to a fleet");
  }
  for (std::size_t i = 0; i < manager->num_sensors(); ++i) {
    if (!manager->resident(i)) {
      return Status::FailedPrecondition(
          "store binds to fully-resident fleets only");
    }
  }
  manager_ = manager;
  device_ = device;
  slots_.assign(manager->num_sensors(), Slot{});
  resident_bytes_ = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].bytes = EngineFootprintBytes(manager->engine(i));
    resident_bytes_ += slots_[i].bytes;
  }
  PublishGaugesLocked();
  return Status::OK();
}

std::string TieredStateStore::SegmentPath(std::size_t sensor) const {
  return opt_.dir + "/sensor-" + std::to_string(sensor) + ".seg";
}

Status TieredStateStore::CheckUsableLocked(std::size_t sensor) const {
  SMILER_RETURN_NOT_OK(env_status_);
  if (manager_ == nullptr) {
    return Status::FailedPrecondition("store is not bound to a fleet");
  }
  if (sensor >= slots_.size()) {
    return Status::OutOfRange("sensor index out of range");
  }
  return Status::OK();
}

void TieredStateStore::PublishGaugesLocked() {
  ResidentBytesGauge().Set(static_cast<double>(resident_bytes_));
  ResidentBytesHighWaterGauge().SetMax(static_cast<double>(resident_bytes_));
}

Status TieredStateStore::Pin(std::size_t sensor) {
  std::lock_guard<std::mutex> lock(mu_);
  SMILER_RETURN_NOT_OK(CheckUsableLocked(sensor));
  Slot& slot = slots_[sensor];
  if (!slot.resident) {
    SMILER_RETURN_NOT_OK(RehydrateLocked(sensor));
  }
  ++slot.pins;
  slot.ref = true;
  return Status::OK();
}

void TieredStateStore::Unpin(std::size_t sensor) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sensor < slots_.size() && slots_[sensor].pins > 0) {
    --slots_[sensor].pins;
  }
}

Status TieredStateStore::Evict(std::size_t sensor) {
  std::lock_guard<std::mutex> lock(mu_);
  SMILER_RETURN_NOT_OK(CheckUsableLocked(sensor));
  if (!slots_[sensor].resident) return Status::OK();
  return EvictLocked(sensor);
}

Status TieredStateStore::EvictLocked(std::size_t sensor) {
  Slot& slot = slots_[sensor];
  if (slot.pins > 0) {
    return Status::FailedPrecondition("sensor is pinned");
  }
  const std::string blob = core::SerializeSnapshotBlob(
      {manager_->engine(sensor).Snapshot()},
      core::ArenaEncoding::kQuantized16);

  // Atomic segment write: tmp + rename, so a crash (or the injected torn
  // write) never clobbers a previous good segment.
  const std::string path = SegmentPath(sensor);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) {
      EvictFailuresCounter().Increment();
      return Status::Internal("cannot open '" + tmp + "' for writing");
    }
    if (SMILER_FAULT_TRIGGERED("store.spill_write")) {
      // Torn write: half the segment reaches the tmp file and the spill
      // fails — the engine stays resident (budget temporarily exceeded
      // is safe; losing state is not) and any previous segment survives.
      file.write(blob.data(), static_cast<std::streamsize>(blob.size() / 2));
      file.flush();
      EvictFailuresCounter().Increment();
      return Status::Internal("write to '" + tmp + "' failed");
    }
    file.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    file.flush();
    if (!file.good()) {
      EvictFailuresCounter().Increment();
      return Status::Internal("write to '" + tmp + "' failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    EvictFailuresCounter().Increment();
    return Status::Internal("rename '" + tmp + "' -> '" + path + "' failed");
  }

  SMILER_ASSIGN_OR_RETURN(core::SensorEngine engine,
                          manager_->Release(sensor));
  (void)engine;  // dropped here: the cold tier now owns the state
  slot.resident = false;
  slot.has_segment = true;
  slot.ref = false;
  resident_bytes_ -= slot.bytes;
  EvictionsCounter().Increment();
  PublishGaugesLocked();
  return Status::OK();
}

Status TieredStateStore::RehydrateLocked(std::size_t sensor) {
  Slot& slot = slots_[sensor];
  WallTimer timer;
  SMILER_ASSIGN_OR_RETURN(std::vector<core::EngineSnapshot> snaps,
                          ReadSegmentLocked(sensor, /*inject_fault=*/true));
  if (snaps.size() != 1) {
    return Status::InvalidArgument("spill segment for sensor " +
                                   std::to_string(sensor) +
                                   " does not hold exactly one engine");
  }
  SMILER_ASSIGN_OR_RETURN(core::SensorEngine engine,
                          core::SensorEngine::Restore(device_, snaps[0]));
  slot.bytes = EngineFootprintBytes(engine);
  SMILER_RETURN_NOT_OK(manager_->Install(sensor, std::move(engine)));
  slot.resident = true;
  slot.has_segment = false;
  // The segment is stale the moment the engine observes again; drop it
  // so a later eviction can never resurrect old state.
  std::remove(SegmentPath(sensor).c_str());
  resident_bytes_ += slot.bytes;
  RehydrationsCounter().Increment();
  RehydrateSecondsHistogram().Observe(timer.ElapsedSeconds());
  PublishGaugesLocked();
  return Status::OK();
}

Result<std::vector<core::EngineSnapshot>> TieredStateStore::ReadSegmentLocked(
    std::size_t sensor, bool inject_fault) const {
  const std::string path = SegmentPath(sensor);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open spill segment '" + path + "'");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal("cannot stat spill segment '" + path + "'");
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::InvalidArgument("spill segment '" + path + "' is empty");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    return Status::Internal("cannot mmap spill segment '" + path + "'");
  }
  std::size_t parse_size = size;
  if (inject_fault && SMILER_FAULT_TRIGGERED("store.rehydrate_read_short")) {
    // Short read: the parser must turn the truncation into a Status (the
    // Pin fails, the cold state stays intact, the next batch retries) —
    // never an OK result carrying a partial engine.
    parse_size = size / 2;
  }
  auto parsed = core::ParseSnapshotBlob(static_cast<const char*>(map),
                                        parse_size, path);
  ::munmap(map, size);
  return parsed;
}

Status TieredStateStore::EnforceBudget() {
  std::lock_guard<std::mutex> lock(mu_);
  SMILER_RETURN_NOT_OK(env_status_);
  if (manager_ == nullptr) {
    return Status::FailedPrecondition("store is not bound to a fleet");
  }
  Status first_error = Status::OK();
  // Clock sweep with second chance: a recently-pinned slot gets its ref
  // bit cleared on the first pass and is only evicted when seen again.
  // Two full revolutions bound the scan; a failed spill marks the slot
  // referenced so the sweep moves on instead of retrying it forever.
  std::size_t scanned = 0;
  const std::size_t scan_limit = 2 * slots_.size();
  while (resident_bytes_ > budget_ && scanned < scan_limit) {
    Slot& slot = slots_[clock_hand_];
    const std::size_t victim = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % slots_.size();
    ++scanned;
    if (!slot.resident || slot.pins > 0) continue;
    if (slot.ref) {
      slot.ref = false;
      continue;
    }
    const Status st = EvictLocked(victim);
    if (!st.ok()) {
      if (first_error.ok()) first_error = st;
      slot.ref = true;
    }
  }
  return first_error;
}

Result<core::EngineSnapshot> TieredStateStore::StableSnapshot(
    std::size_t sensor) {
  std::lock_guard<std::mutex> lock(mu_);
  SMILER_RETURN_NOT_OK(CheckUsableLocked(sensor));
  if (slots_[sensor].resident) {
    return manager_->engine(sensor).Snapshot();
  }
  // Snapshot barriers read the cold tier without the rehydrate fault
  // point: segments are only ever published complete (a torn spill never
  // renames), so a checkpoint of a partly-cold fleet stays dependable
  // even mid fault-storm.
  SMILER_ASSIGN_OR_RETURN(std::vector<core::EngineSnapshot> snaps,
                          ReadSegmentLocked(sensor, /*inject_fault=*/false));
  if (snaps.size() != 1) {
    return Status::InvalidArgument("spill segment for sensor " +
                                   std::to_string(sensor) +
                                   " does not hold exactly one engine");
  }
  return std::move(snaps[0]);
}

bool TieredStateStore::resident(std::size_t sensor) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sensor < slots_.size() && slots_[sensor].resident;
}

std::size_t TieredStateStore::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

std::size_t TieredStateStore::num_sensors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

std::vector<TieredStateStore::SlotInfo> TieredStateStore::Inspect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SlotInfo> out(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    out[i].resident = slots_[i].resident;
    out[i].engine_present = manager_ != nullptr && manager_->resident(i);
    out[i].pins = slots_[i].pins;
    out[i].bytes = slots_[i].bytes;
    out[i].has_segment = slots_[i].has_segment;
  }
  return out;
}

}  // namespace store
}  // namespace smiler
