#ifndef SMILER_STORE_TIERED_STORE_H_
#define SMILER_STORE_TIERED_STORE_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "core/manager.h"
#include "core/snapshot_codec.h"
#include "simgpu/device.h"

namespace smiler {
namespace store {

/// Parses a SMILER_STORE_BUDGET_BYTES-style value: a plain decimal byte
/// count (e.g. "6442450944" for the paper's 6 GiB device). Anything else
/// fails with InvalidArgument — the same fail-fast contract as
/// SMILER_BACKEND, no silent default.
Result<std::size_t> ParseStoreBudget(std::string_view text);

/// Resolves the byte budget from SMILER_STORE_BUDGET_BYTES. Unset or
/// empty means "unlimited"; an invalid value is an error the store
/// caches at construction and returns from every subsequent operation.
Result<std::size_t> StoreBudgetFromEnv();

struct StoreOptions {
  /// Spill-segment directory; created on Create when absent.
  std::string dir;
  /// Resident-byte budget. 0 = consult SMILER_STORE_BUDGET_BYTES
  /// (unset env = unlimited).
  std::size_t budget_bytes = 0;
};

/// \brief Owns engine-state residency for a MultiSensorManager fleet
/// under a configurable byte budget — the tiered-storage answer to the
/// Fig 12(c) "millions of sensors" capacity argument.
///
/// Residency state machine (docs/architecture.md §Tiered storage):
///
///   RESIDENT --Evict/EnforceBudget--> COLD --Pin--> RESIDENT
///
/// A RESIDENT sensor holds a live SensorEngine in the manager slot and
/// is charged its index footprint against the budget. A COLD sensor's
/// engine has been serialized to an mmap'd spill segment (SMLRCKPT wire
/// format with the 16-bit quantized arena encoding — see
/// core::ArenaEncoding::kQuantized16 for why rehydrated predictions stay
/// bitwise-identical) and its manager slot is empty. Segments are
/// written atomically (tmp + rename, per-engine FNV-1a checksums); a
/// torn write (`store.spill_write` fault) aborts the eviction with the
/// engine still resident and the previous segment intact, and a short
/// read (`store.rehydrate_read_short` fault) fails the Pin with the cold
/// state intact — both are transient, retried on the next batch.
///
/// Thread model: one internal mutex serializes every residency mutation;
/// shard workers Pin every distinct sensor of a batch before touching
/// its engine and Unpin afterwards, and pinned sensors are never
/// evictable. EnforceBudget demotes unpinned sensors with a clock
/// (second-chance) sweep — Pin sets the reference bit, a first sweep
/// pass clears it, a second evicts — until resident bytes fit the
/// budget.
class TieredStateStore {
 public:
  static Result<std::unique_ptr<TieredStateStore>> Create(
      const StoreOptions& options);

  /// Binds the store to a fleet. Every sensor starts RESIDENT; call
  /// EnforceBudget to demote down to the budget. \p device receives the
  /// rehydrated engines' memory charges (the fleet's shared device).
  Status Bind(core::MultiSensorManager* manager, simgpu::Device* device);

  /// Marks \p sensor in-use, rehydrating it first when COLD. Pins nest;
  /// every Pin needs a matching Unpin.
  Status Pin(std::size_t sensor);
  void Unpin(std::size_t sensor);

  /// Explicitly demotes one unpinned RESIDENT sensor to the cold tier.
  /// OK (no-op) when already COLD; FailedPrecondition when pinned.
  Status Evict(std::size_t sensor);

  /// Clock-sweeps unpinned residents to the cold tier until resident
  /// bytes fit the budget (or nothing evictable remains). Returns the
  /// first eviction failure, if any — residency stays consistent either
  /// way, the budget is just temporarily exceeded.
  Status EnforceBudget();

  /// A point-in-time snapshot of \p sensor regardless of residency:
  /// RESIDENT engines snapshot directly, COLD sensors decode their spill
  /// segment. Callers must hold the same quiescence the engine's own
  /// Snapshot() requires (serve-layer snapshot barriers do).
  Result<core::EngineSnapshot> StableSnapshot(std::size_t sensor);

  bool resident(std::size_t sensor) const;
  std::size_t resident_bytes() const;
  std::size_t budget_bytes() const { return budget_; }
  std::size_t num_sensors() const;

  /// Residency bookkeeping exposed for the chaos InvariantChecker
  /// (store/engine residency agreement) and tests.
  struct SlotInfo {
    bool resident = false;
    bool engine_present = false;  // manager-slot view, must agree
    int pins = 0;
    std::size_t bytes = 0;  // charged against the budget when resident
    bool has_segment = false;
  };
  std::vector<SlotInfo> Inspect() const;

 private:
  explicit TieredStateStore(StoreOptions options, std::size_t budget,
                            Status env_status);

  struct Slot {
    bool resident = true;
    int pins = 0;
    bool ref = false;  // clock (second-chance) reference bit
    std::size_t bytes = 0;
    bool has_segment = false;
  };

  std::string SegmentPath(std::size_t sensor) const;
  Status CheckUsableLocked(std::size_t sensor) const;
  Status EvictLocked(std::size_t sensor);
  Status RehydrateLocked(std::size_t sensor);
  Result<std::vector<core::EngineSnapshot>> ReadSegmentLocked(
      std::size_t sensor, bool inject_fault) const;
  void PublishGaugesLocked();

  const StoreOptions opt_;
  const std::size_t budget_;
  const Status env_status_;  // poisons every op when the env var is bad

  mutable std::mutex mu_;
  core::MultiSensorManager* manager_ = nullptr;
  simgpu::Device* device_ = nullptr;
  std::vector<Slot> slots_;
  std::size_t resident_bytes_ = 0;
  std::size_t clock_hand_ = 0;
};

}  // namespace store
}  // namespace smiler

#endif  // SMILER_STORE_TIERED_STORE_H_
