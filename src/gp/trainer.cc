#include "gp/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "gp/cg_optimizer.h"
#include "obs/obs.h"

namespace smiler {
namespace gp {

Result<TrainResult> TrainLoo(const la::Matrix& x, const std::vector<double>& y,
                             const SeKernel* warm_start, int cg_steps,
                             double prior_precision, double trust_radius,
                             const la::ConstMatrixView* gram) {
  if (x.rows() == 0 || x.rows() != y.size()) {
    return Status::InvalidArgument("TrainLoo requires matching x rows and y");
  }
  SMILER_TRACE_SPAN("gp.train");
  const SeKernel anchor = SeKernel::Heuristic(x, y, gram);
  SeKernel seed = (warm_start != nullptr) ? *warm_start : anchor;

  // Verify the seed is feasible before optimizing.
  {
    auto fit = GpRegressor::Fit(x, y, seed, gram);
    if (!fit.ok()) return fit.status();
  }

  Objective objective = [&x, &y, &anchor, prior_precision, gram](
                            const std::vector<double>& params,
                            std::vector<double>* grad) -> double {
    SeKernel kernel(params[0], params[1], params[2]);
    auto fit = GpRegressor::Fit(x, y, kernel, gram);
    if (!fit.ok()) {
      // Infeasible configuration: reject via -inf (line search backtracks).
      std::fill(grad->begin(), grad->end(), 0.0);
      return -std::numeric_limits<double>::infinity();
    }
    const auto g = fit->LooGradient();
    double value = fit->LooLogLikelihood();
    for (int m = 0; m < SeKernel::kNumParams; ++m) {
      const double diff = params[m] - anchor.log_params()[m];
      value -= 0.5 * prior_precision * diff * diff;
      (*grad)[m] = g[m] - prior_precision * diff;
    }
    return value;
  };

  std::vector<double> params(seed.log_params().begin(),
                             seed.log_params().end());
  CgOptions options;
  options.max_iters = cg_steps;
  const CgResult cg = MaximizeCg(objective, &params, options);
  {
    obs::Registry& reg = obs::Registry::Global();
    static obs::Counter& train_calls = reg.GetCounter("gp.train_calls");
    static obs::Counter& cg_iterations = reg.GetCounter("gp.cg_iterations");
    train_calls.Increment();
    cg_iterations.Increment(static_cast<std::uint64_t>(cg.iterations));
  }

  if (std::isfinite(trust_radius)) {
    for (int m = 0; m < SeKernel::kNumParams; ++m) {
      const double a = anchor.log_params()[m];
      params[m] = std::clamp(params[m], a - trust_radius, a + trust_radius);
    }
  }

  TrainResult out;
  out.kernel = SeKernel(params[0], params[1], params[2]);
  out.loo_log_lik = cg.value;
  return out;
}

}  // namespace gp
}  // namespace smiler
