#ifndef SMILER_GP_GP_REGRESSOR_H_
#define SMILER_GP_GP_REGRESSOR_H_

#include <array>
#include <vector>

#include "common/status.h"
#include "gp/kernel.h"
#include "la/cholesky.h"
#include "la/matrix.h"

namespace smiler {
namespace gp {

/// \brief Mean and variance of a Gaussian predictive distribution.
struct Prediction {
  double mean = 0.0;
  double variance = 0.0;
};

/// \brief Floor applied to every predictive variance so Gaussian log
/// densities stay defined when a fit degenerates. Shared by the GP
/// posterior, the LOO folds, and core::MetricAccumulator; each clamp
/// increments the `gp.variance_clamped` counter so silent clamping is
/// observable (a rising rate means overconfident, near-singular fits).
inline constexpr double kMinPredictiveVariance = 1e-12;

/// Returns max(variance, kMinPredictiveVariance), counting the clamp in
/// the `gp.variance_clamped` metric when it actually fires.
double ClampPredictiveVariance(double variance);

/// \brief Exact Gaussian Process regressor over a (small) training set —
/// the heart of the semi-lazy predictor, fit fresh on every query's kNN
/// data (Section 5.2.2 / Appendix B.3).
///
/// Fit cost is O(k^3) for k training points, which the semi-lazy design
/// keeps tiny (k <= max EKV), so exact inference is affordable per query.
///
/// Inverse-of-K quantities are computed lazily and only as needed:
/// Predict() touches none of them, LOO predictions/likelihood need only
/// diag(K^{-1}) (Cholesky::InverseDiagonal), and only LooGradient()
/// materializes the full inverse. A purely predictive fit therefore never
/// pays the O(k^3) inversion the seed implementation always did.
/// Laziness is cached in mutable members: a single GpRegressor is not
/// thread-safe for concurrent const access (ensemble cells each own one).
class GpRegressor {
 public:
  /// Fits the GP to inputs \p x (k rows of dimension d) and targets \p y
  /// (length k) under \p kernel. Fails when k == 0, the sizes disagree, or
  /// the kernel matrix is numerically singular beyond jitter repair.
  ///
  /// \p gram, when non-null, must view the pairwise squared distances of
  /// the rows of \p x (PairwiseSquaredDistances) with
  /// gram->rows() == gram->cols() == x.rows(); the covariance build then
  /// skips all distance computation. The viewed storage must outlive the
  /// regressor (the engine's per-column Gram caches and TrainLoo's
  /// objective both satisfy this). When null, distances are computed and
  /// owned internally.
  static Result<GpRegressor> Fit(la::Matrix x, std::vector<double> y,
                                 const SeKernel& kernel,
                                 const la::ConstMatrixView* gram = nullptr);

  /// Posterior predictive distribution at test input \p xstar (Eqn 16/17):
  ///   mean     = c0^T C^{-1} y
  ///   variance = c(x*, x*) - c0^T C^{-1} c0
  ///              (clamped to >= kMinPredictiveVariance)
  Prediction Predict(const double* xstar) const;

  /// Fit + Predict fused into one multi-RHS triangular pass: alpha =
  /// C^{-1} y and v = C^{-1} c0 advance together through a single
  /// SolveMatrixInPlace of [y | c0], halving the solve traversals of the
  /// purely predictive hot path (one fresh fit per ensemble cell per
  /// query). SolveMatrixInPlace performs each column's arithmetic in
  /// Solve's exact per-element order, so the returned mean/variance are
  /// bitwise-identical to Fit(...) followed by Predict(xstar). Same
  /// failure modes and \p gram contract as Fit (the gram only needs to
  /// outlive this call).
  static Result<Prediction> FitAndPredict(
      const la::Matrix& x, const std::vector<double>& y,
      const SeKernel& kernel, const double* xstar,
      const la::ConstMatrixView* gram = nullptr);

  /// Leave-one-out predictive log likelihood of the training data
  /// (Eqn 19/20, Rasmussen & Williams 5.10-5.12):
  ///   mu_i      = y_i - alpha_i / Kinv_ii
  ///   sigma^2_i = 1 / Kinv_ii
  double LooLogLikelihood() const;

  /// Gradient of the LOO log likelihood w.r.t. the kernel's log
  /// hyperparameters (Rasmussen & Williams Eqn 5.13, using the partitioned
  /// inverse trick of Sundararajan & Keerthi so every held-out fold reuses
  /// the single factorization).
  std::array<double, SeKernel::kNumParams> LooGradient() const;

  /// The leave-one-out predictive distribution for training point \p i.
  Prediction LooPrediction(std::size_t i) const;

  const SeKernel& kernel() const { return kernel_; }
  std::size_t num_points() const { return y_.size(); }

 private:
  GpRegressor() = default;

  /// The pairwise squared distances backing this fit: the external view
  /// when one was supplied, otherwise the internally computed matrix.
  la::ConstMatrixView Gram() const {
    return sq_dist_.empty() ? gram_ext_ : la::ConstMatrixView(sq_dist_);
  }

  /// diag(K^{-1}), computed on first use (from the cached full inverse
  /// when that already exists, else via the ~6x cheaper diagonal-only
  /// path).
  const std::vector<double>& InverseDiag() const;
  /// Full K^{-1}, computed on first use (gradients only).
  const la::Matrix& FullInverse() const;

  la::Matrix x_;
  std::vector<double> y_;
  SeKernel kernel_;
  la::Cholesky chol_;
  std::vector<double> alpha_;          // C^{-1} y
  la::Matrix sq_dist_;                 // owned Gram (empty when external)
  la::ConstMatrixView gram_ext_;       // external Gram (empty when owned)
  mutable la::Matrix kinv_;            // lazy: full C^{-1}
  mutable std::vector<double> kinv_diag_;  // lazy: diag(C^{-1})
};

}  // namespace gp
}  // namespace smiler

#endif  // SMILER_GP_GP_REGRESSOR_H_
