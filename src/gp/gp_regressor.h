#ifndef SMILER_GP_GP_REGRESSOR_H_
#define SMILER_GP_GP_REGRESSOR_H_

#include <array>
#include <vector>

#include "common/status.h"
#include "gp/kernel.h"
#include "la/cholesky.h"
#include "la/matrix.h"

namespace smiler {
namespace gp {

/// \brief Mean and variance of a Gaussian predictive distribution.
struct Prediction {
  double mean = 0.0;
  double variance = 0.0;
};

/// \brief Floor applied to every predictive variance so Gaussian log
/// densities stay defined when a fit degenerates. Shared by the GP
/// posterior, the LOO folds, and core::MetricAccumulator; each clamp
/// increments the `gp.variance_clamped` counter so silent clamping is
/// observable (a rising rate means overconfident, near-singular fits).
inline constexpr double kMinPredictiveVariance = 1e-12;

/// Returns max(variance, kMinPredictiveVariance), counting the clamp in
/// the `gp.variance_clamped` metric when it actually fires.
double ClampPredictiveVariance(double variance);

/// \brief Exact Gaussian Process regressor over a (small) training set —
/// the heart of the semi-lazy predictor, fit fresh on every query's kNN
/// data (Section 5.2.2 / Appendix B.3).
///
/// Fit cost is O(k^3) for k training points, which the semi-lazy design
/// keeps tiny (k <= max EKV), so exact inference is affordable per query.
class GpRegressor {
 public:
  /// Fits the GP to inputs \p x (k rows of dimension d) and targets \p y
  /// (length k) under \p kernel. Fails when k == 0, the sizes disagree, or
  /// the kernel matrix is numerically singular beyond jitter repair.
  static Result<GpRegressor> Fit(la::Matrix x, std::vector<double> y,
                                 const SeKernel& kernel);

  /// Posterior predictive distribution at test input \p xstar (Eqn 16/17):
  ///   mean     = c0^T C^{-1} y
  ///   variance = c(x*, x*) - c0^T C^{-1} c0
  ///              (clamped to >= kMinPredictiveVariance)
  Prediction Predict(const double* xstar) const;

  /// Leave-one-out predictive log likelihood of the training data
  /// (Eqn 19/20, Rasmussen & Williams 5.10-5.12):
  ///   mu_i      = y_i - alpha_i / Kinv_ii
  ///   sigma^2_i = 1 / Kinv_ii
  double LooLogLikelihood() const;

  /// Gradient of the LOO log likelihood w.r.t. the kernel's log
  /// hyperparameters (Rasmussen & Williams Eqn 5.13, using the partitioned
  /// inverse trick of Sundararajan & Keerthi so every held-out fold reuses
  /// the single factorization).
  std::array<double, SeKernel::kNumParams> LooGradient() const;

  /// The leave-one-out predictive distribution for training point \p i.
  Prediction LooPrediction(std::size_t i) const;

  const SeKernel& kernel() const { return kernel_; }
  std::size_t num_points() const { return y_.size(); }

 private:
  GpRegressor() = default;

  la::Matrix x_;
  std::vector<double> y_;
  SeKernel kernel_;
  la::Cholesky chol_;
  std::vector<double> alpha_;  // C^{-1} y
  la::Matrix kinv_;            // C^{-1}
  la::Matrix sq_dist_;         // cached pairwise squared input distances
};

}  // namespace gp
}  // namespace smiler

#endif  // SMILER_GP_GP_REGRESSOR_H_
