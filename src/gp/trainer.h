#ifndef SMILER_GP_TRAINER_H_
#define SMILER_GP_TRAINER_H_

#include <limits>
#include <vector>

#include "common/status.h"
#include "gp/gp_regressor.h"
#include "gp/kernel.h"
#include "la/matrix.h"

namespace smiler {
namespace gp {

/// \brief Result of one training invocation.
struct TrainResult {
  SeKernel kernel;          ///< optimized kernel
  double loo_log_lik = 0.0;  ///< final LOO log likelihood
};

/// \brief Online training for model optimization (Section 5.2.2): maximize
/// the leave-one-out predictive log likelihood (Eqn 20) over the kernel's
/// log hyperparameters with \p cg_steps conjugate-gradient steps.
///
/// When \p warm_start is non-null its hyperparameters seed the optimizer
/// (continuous prediction: "use theta_r(t) as the initial seed value");
/// otherwise the heuristic initialisation is used (initial query).
///
/// Parameter configurations whose kernel matrix cannot be factorized
/// evaluate to -inf, which the line search rejects, so training never
/// leaves the feasible region it started in. Fails only when even the
/// seed configuration is infeasible.
///
/// \p prior_precision > 0 adds a Gaussian prior (in log space) centered
/// on the heuristic initialisation to the objective. This matters on
/// near-duplicate kNN sets, where the pure LOO likelihood is unbounded
/// (a duplicate predicts its twin exactly, so shrinking theta2 raises
/// the likelihood without limit); the prior keeps the noise scale
/// anchored to the data's spread.
/// \p trust_radius, when finite, clamps every optimized log parameter to
/// within that distance of the heuristic anchor after optimization — a
/// trust region guarding against slow multi-step drift into degenerate
/// configurations during warm-started continuous prediction.
///
/// \p gram, when non-null, views the pairwise squared distances of \p x
/// (see GpRegressor::Fit); every objective evaluation then reuses it, so
/// the O(k^2 d) distance work is paid zero times inside the optimization
/// loop instead of once per CG evaluation. The viewed storage must
/// outlive the call.
Result<TrainResult> TrainLoo(const la::Matrix& x, const std::vector<double>& y,
                             const SeKernel* warm_start, int cg_steps,
                             double prior_precision = 0.0,
                             double trust_radius =
                                 std::numeric_limits<double>::infinity(),
                             const la::ConstMatrixView* gram = nullptr);

}  // namespace gp
}  // namespace smiler

#endif  // SMILER_GP_TRAINER_H_
