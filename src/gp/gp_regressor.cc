#include "gp/gp_regressor.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"

namespace smiler {
namespace gp {

double ClampPredictiveVariance(double variance) {
  if (variance >= kMinPredictiveVariance) return variance;
  static obs::Counter& clamped =
      obs::Registry::Global().GetCounter("gp.variance_clamped");
  clamped.Increment();
  return kMinPredictiveVariance;
}

Result<GpRegressor> GpRegressor::Fit(la::Matrix x, std::vector<double> y,
                                     const SeKernel& kernel,
                                     const la::ConstMatrixView* gram) {
  if (x.rows() == 0 || x.rows() != y.size()) {
    return Status::InvalidArgument(
        "GpRegressor::Fit requires matching non-empty x rows and y");
  }
  GpRegressor gp;
  gp.kernel_ = kernel;
  la::Matrix cov;
  {
    obs::StageScope gram_stage(obs::Stage::kGram);
    if (gram != nullptr) {
      if (gram->rows() != x.rows() || gram->cols() != x.rows()) {
        return Status::InvalidArgument(
            "GpRegressor::Fit gram dimensions must match x rows");
      }
      gp.gram_ext_ = *gram;
      cov = kernel.CovarianceFromSqDist(*gram);
    } else {
      cov = kernel.Covariance(x, &gp.sq_dist_);
    }
  }
  obs::StageScope chol_stage(obs::Stage::kCholesky);
  SMILER_ASSIGN_OR_RETURN(gp.chol_, la::Cholesky::Factor(cov));
  gp.alpha_ = gp.chol_.Solve(y);
  gp.x_ = std::move(x);
  gp.y_ = std::move(y);
  return gp;
}

Result<Prediction> GpRegressor::FitAndPredict(const la::Matrix& x,
                                              const std::vector<double>& y,
                                              const SeKernel& kernel,
                                              const double* xstar,
                                              const la::ConstMatrixView* gram) {
  if (x.rows() == 0 || x.rows() != y.size()) {
    return Status::InvalidArgument(
        "GpRegressor::FitAndPredict requires matching non-empty x rows and y");
  }
  la::Matrix cov;
  {
    obs::StageScope gram_stage(obs::Stage::kGram);
    if (gram != nullptr) {
      if (gram->rows() != x.rows() || gram->cols() != x.rows()) {
        return Status::InvalidArgument(
            "GpRegressor::FitAndPredict gram dimensions must match x rows");
      }
      cov = kernel.CovarianceFromSqDist(*gram);
    } else {
      cov = kernel.Covariance(x);
    }
  }
  const std::vector<double> c0 = kernel.CrossCovariance(x, xstar);
  obs::StageScope chol_stage(obs::Stage::kCholesky);
  SMILER_ASSIGN_OR_RETURN(const la::Cholesky chol, la::Cholesky::Factor(cov));
  const std::size_t k = y.size();
  la::Matrix rhs(k, 2);
  for (std::size_t i = 0; i < k; ++i) {
    rhs(i, 0) = y[i];
    rhs(i, 1) = c0[i];
  }
  chol.SolveMatrixInPlace(&rhs);
  // Extract the columns so the dot products run over the same contiguous
  // layout (and therefore the same accumulation order) as the split path.
  std::vector<double> alpha(k), v(k);
  for (std::size_t i = 0; i < k; ++i) {
    alpha[i] = rhs(i, 0);
    v[i] = rhs(i, 1);
  }
  Prediction p;
  p.mean = la::Dot(c0, alpha);
  p.variance =
      ClampPredictiveVariance(kernel.SelfCovariance() - la::Dot(c0, v));
  return p;
}

const la::Matrix& GpRegressor::FullInverse() const {
  if (kinv_.empty()) kinv_ = chol_.Inverse();
  return kinv_;
}

const std::vector<double>& GpRegressor::InverseDiag() const {
  if (kinv_diag_.empty()) {
    if (!kinv_.empty()) {
      kinv_diag_.resize(kinv_.rows());
      for (std::size_t i = 0; i < kinv_.rows(); ++i) {
        kinv_diag_[i] = kinv_(i, i);
      }
    } else {
      kinv_diag_ = chol_.InverseDiagonal();
    }
  }
  return kinv_diag_;
}

Prediction GpRegressor::Predict(const double* xstar) const {
  const std::vector<double> c0 = kernel_.CrossCovariance(x_, xstar);
  Prediction p;
  p.mean = la::Dot(c0, alpha_);
  const std::vector<double> v = chol_.Solve(c0);
  p.variance =
      ClampPredictiveVariance(kernel_.SelfCovariance() - la::Dot(c0, v));
  return p;
}

Prediction GpRegressor::LooPrediction(std::size_t i) const {
  const double kii = InverseDiag()[i];
  Prediction p;
  p.variance = ClampPredictiveVariance(1.0 / kii);
  p.mean = y_[i] - alpha_[i] / kii;
  return p;
}

double GpRegressor::LooLogLikelihood() const {
  double ll = 0.0;
  for (std::size_t i = 0; i < y_.size(); ++i) {
    const Prediction p = LooPrediction(i);
    ll += GaussianLogDensity(y_[i], p.mean, p.variance);
  }
  return ll;
}

std::array<double, SeKernel::kNumParams> GpRegressor::LooGradient() const {
  // R&W Eqn 5.13 for each hyperparameter theta_m (here log theta_m):
  //   Z = Kinv * dC/dtheta
  //   dL/dtheta = sum_i [ alpha_i (Z alpha)_i
  //                       - 0.5 (1 + alpha_i^2 / Kinv_ii) (Z Kinv)_ii ]
  //               / Kinv_ii
  std::array<double, SeKernel::kNumParams> grad{};
  const std::size_t k = y_.size();
  const la::Matrix& kinv = FullInverse();
  const la::ConstMatrixView gram = Gram();
  for (int m = 0; m < SeKernel::kNumParams; ++m) {
    const la::Matrix dc = kernel_.CovarianceGrad(gram, m);
    const la::Matrix z = chol_.SolveMatrix(dc);
    const std::vector<double> z_alpha = z.MatVec(alpha_);
    double g = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      // (Z Kinv)_ii = row_i(Z) . col_i(Kinv) = row_i(Z) . row_i(Kinv)
      // (Kinv symmetric).
      double zk_ii = 0.0;
      const double* zrow = z.Row(i);
      const double* krow = kinv.Row(i);
      for (std::size_t j = 0; j < k; ++j) zk_ii += zrow[j] * krow[j];
      const double kii = kinv(i, i);
      g += (alpha_[i] * z_alpha[i] -
            0.5 * (1.0 + alpha_[i] * alpha_[i] / kii) * zk_ii) /
           kii;
    }
    grad[m] = g;
  }
  return grad;
}

}  // namespace gp
}  // namespace smiler
