#ifndef SMILER_GP_CG_OPTIMIZER_H_
#define SMILER_GP_CG_OPTIMIZER_H_

#include <functional>
#include <vector>

namespace smiler {
namespace gp {

/// \brief Objective for maximization: fills \p grad (same size as params)
/// and returns the objective value. Must be deterministic.
using Objective =
    std::function<double(const std::vector<double>& params,
                         std::vector<double>* grad)>;

/// \brief Options of the nonlinear conjugate-gradient ascent.
struct CgOptions {
  /// Maximum CG iterations (the paper uses a handful of fixed steps for
  /// online training, Section 5.2.2).
  int max_iters = 30;
  /// Converged when the gradient norm falls below this.
  double grad_tolerance = 1e-6;
  /// Initial line-search step.
  double initial_step = 0.5;
  /// Armijo sufficient-increase coefficient.
  double armijo_c1 = 1e-4;
  /// Maximum backtracking halvings per line search.
  int max_backtracks = 20;
};

/// \brief Result of a CG run.
struct CgResult {
  double value = 0.0;  ///< objective at the final parameters
  int iterations = 0;  ///< iterations actually performed
};

/// \brief Maximizes \p objective with Polak-Ribiere+ nonlinear conjugate
/// gradients and Armijo backtracking; \p params is updated in place.
///
/// This is the optimizer behind GP hyperparameter training: the LOO log
/// likelihood (Eqn 20) is maximized over log hyperparameters. Warm starts
/// (passing the previous step's params) realize the paper's online
/// training, where "the energy paid for the training process in previous
/// steps is partially preserved".
CgResult MaximizeCg(const Objective& objective, std::vector<double>* params,
                    const CgOptions& options);

}  // namespace gp
}  // namespace smiler

#endif  // SMILER_GP_CG_OPTIMIZER_H_
