#include "gp/kernel.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"
#include "simgpu/batch_launch.h"

namespace smiler {
namespace gp {

double SquaredDistance(const double* a, const double* b, std::size_t dim) {
  double s = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

la::Matrix PairwiseSquaredDistances(const la::Matrix& x) {
  const std::size_t k = x.rows();
  la::Matrix dists(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      const double d = SquaredDistance(x.Row(i), x.Row(j), x.cols());
      dists(i, j) = d;
      dists(j, i) = d;
    }
  }
  return dists;
}

Result<la::Matrix> PairwiseSquaredDistancesOnDevice(simgpu::Device* device,
                                                    const la::Matrix& x) {
  const std::size_t k = x.rows();
  const std::size_t dim = x.cols();
  la::Matrix dists(k, k);
  if (device == nullptr || k < 2) return dists;

  // Grid body: block i fills row i's strict upper triangle entrywise (the
  // host function's arithmetic exactly) and mirrors each entry. Blocks
  // touch disjoint entries: (i, j) belongs to block min(i, j).
  const simgpu::Kernel grid_kernel = [&](simgpu::BlockContext& ctx) {
    const std::size_t i = static_cast<std::size_t>(ctx.block_id);
    for (std::size_t j = i + 1; j < k; ++j) {
      const double d = SquaredDistance(x.Row(i), x.Row(j), dim);
      dists(i, j) = d;
      dists(j, i) = d;
    }
  };
  // Native body: transpose once (value copies only), then accumulate each
  // row's entries dimension-by-dimension with a vectorizable inner loop
  // over columns. Entry (i, j) receives (x(i,dd) - x(j,dd))^2 for dd =
  // 0, 1, ... in ascending order onto a zero start — the exact add
  // sequence of SquaredDistance, so every entry is bitwise-identical.
  const simgpu::NativeKernel native_kernel = [&](simgpu::NativeContext& nctx) {
    const la::Matrix xt = x.Transposed();
    nctx.ParallelFor(k, [&](std::size_t i) {
      double* row = dists.Row(i);
      const double* xi = x.Row(i);
      for (std::size_t dd = 0; dd < dim; ++dd) {
        const double v = xi[dd];
        const double* xtr = xt.Row(dd);
#pragma omp simd
        for (std::size_t j = i + 1; j < k; ++j) {
          const double dq = v - xtr[j];
          row[j] += dq * dq;
        }
      }
      for (std::size_t j = i + 1; j < k; ++j) dists(j, i) = row[j];
    });
  };
  SMILER_RETURN_NOT_OK(device->Launch("gp.gram", static_cast<int>(k), 1,
                                      grid_kernel, native_kernel));
  return dists;
}

Status PairwiseSquaredDistancesOnDeviceBatch(
    simgpu::Device* device, const std::vector<GramBatchJob>& jobs) {
  // Size every output up front (k < 2 jobs are already done: their Gram
  // is the zero matrix, same as the solo function without a launch).
  simgpu::BatchGrid grid;
  for (const GramBatchJob& job : jobs) {
    const std::size_t k = job.x->rows();
    *job.out = la::Matrix(k, k);
    grid.AddJob(k >= 2 ? static_cast<int>(k) : 0);
  }
  if (device == nullptr || grid.total_blocks() == 0) return Status::OK();

  // Grid body: flat block -> (job, row i); block fills row i's strict
  // upper triangle of its job's Gram and mirrors it — byte-for-byte the
  // solo "gp.gram" block program, just addressed through the batch map.
  const simgpu::Kernel grid_kernel = [&](simgpu::BlockContext& ctx) {
    const simgpu::BatchGrid::Pos pos = grid.Locate(ctx.block_id);
    const la::Matrix& x = *jobs[pos.job].x;
    la::Matrix& dists = *jobs[pos.job].out;
    const std::size_t k = x.rows();
    const std::size_t dim = x.cols();
    const std::size_t i = static_cast<std::size_t>(pos.local);
    for (std::size_t j = i + 1; j < k; ++j) {
      const double d = SquaredDistance(x.Row(i), x.Row(j), dim);
      dists(i, j) = d;
      dists(j, i) = d;
    }
  };
  // Native body: one transposed copy per job, then a flat ParallelFor
  // over every row of every job. Entry (i, j) accumulates
  // (x(i,dd) - x(j,dd))^2 in ascending dd order onto a zero start — the
  // exact add sequence of SquaredDistance, hence bitwise-identical to
  // both the host function and the solo native body.
  const simgpu::NativeKernel native_kernel = [&](simgpu::NativeContext& nctx) {
    std::vector<la::Matrix> transposed(jobs.size());
    for (std::size_t b = 0; b < jobs.size(); ++b) {
      if (jobs[b].x->rows() >= 2) transposed[b] = jobs[b].x->Transposed();
    }
    nctx.ParallelFor(
        static_cast<std::size_t>(grid.total_blocks()), [&](std::size_t flat) {
          const simgpu::BatchGrid::Pos pos =
              grid.Locate(static_cast<int>(flat));
          const la::Matrix& x = *jobs[pos.job].x;
          const la::Matrix& xt = transposed[pos.job];
          la::Matrix& dists = *jobs[pos.job].out;
          const std::size_t k = x.rows();
          const std::size_t dim = x.cols();
          const std::size_t i = static_cast<std::size_t>(pos.local);
          double* row = dists.Row(i);
          const double* xi = x.Row(i);
          for (std::size_t dd = 0; dd < dim; ++dd) {
            const double v = xi[dd];
            const double* xtr = xt.Row(dd);
#pragma omp simd
            for (std::size_t j = i + 1; j < k; ++j) {
              const double dq = v - xtr[j];
              row[j] += dq * dq;
            }
          }
          for (std::size_t j = i + 1; j < k; ++j) dists(j, i) = row[j];
        });
  };
  return device->Launch("gp.gram_batch", grid.total_blocks(), 1, grid_kernel,
                        native_kernel);
}

SeKernel SeKernel::Heuristic(const la::Matrix& x, const std::vector<double>& y,
                             const la::ConstMatrixView* gram) {
  const double var_y = std::max(Variance(y), 1e-6);
  // Median pairwise distance as the length-scale seed.
  std::vector<double> dists;
  const std::size_t k = x.rows();
  dists.reserve(k * (k - 1) / 2);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      const double sq = (gram != nullptr)
                            ? (*gram)(i, j)
                            : SquaredDistance(x.Row(i), x.Row(j), x.cols());
      dists.push_back(std::sqrt(sq));
    }
  }
  double length = 1.0;
  if (!dists.empty()) {
    std::nth_element(dists.begin(), dists.begin() + dists.size() / 2,
                     dists.end());
    length = std::max(dists[dists.size() / 2], 1e-3);
  }
  return SeKernel(0.5 * std::log(var_y), std::log(length),
                  0.5 * std::log(0.1 * var_y));
}

double SeKernel::theta0() const { return std::exp(log_params_[0]); }
double SeKernel::theta1() const { return std::exp(log_params_[1]); }
double SeKernel::theta2() const { return std::exp(log_params_[2]); }

double SeKernel::CovFromSqDist(double sq_dist) const {
  const double t0 = theta0();
  const double t1 = theta1();
  return t0 * t0 * std::exp(-0.5 * sq_dist / (t1 * t1));
}

double SeKernel::SelfCovariance() const {
  const double t0 = theta0();
  const double t2 = theta2();
  return t0 * t0 + t2 * t2;
}

la::Matrix SeKernel::Covariance(const la::Matrix& x,
                                la::Matrix* sq_dist) const {
  la::Matrix dists = PairwiseSquaredDistances(x);
  la::Matrix cov = CovarianceFromSqDist(dists);
  if (sq_dist != nullptr) *sq_dist = std::move(dists);
  return cov;
}

la::Matrix SeKernel::CovarianceFromSqDist(la::ConstMatrixView sq_dist) const {
  const std::size_t k = sq_dist.rows();
  la::Matrix cov(k, k);
  const double noise = theta2() * theta2();
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i; j < k; ++j) {
      const double c = CovFromSqDist(sq_dist(i, j));
      cov(i, j) = c;
      cov(j, i) = c;
    }
    cov(i, i) += noise;
  }
  return cov;
}

std::vector<double> SeKernel::CrossCovariance(const la::Matrix& x,
                                              const double* xstar) const {
  std::vector<double> c0(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    c0[i] = CovFromSqDist(SquaredDistance(x.Row(i), xstar, x.cols()));
  }
  return c0;
}

la::Matrix SeKernel::CovarianceGrad(la::ConstMatrixView sq_dist,
                                    int param) const {
  const std::size_t k = sq_dist.rows();
  la::Matrix grad(k, k);
  const double t1_sq = theta1() * theta1();
  switch (param) {
    case 0:
      // d/dlog(t0) of t0^2 exp(.) = 2 * t0^2 exp(.)
      for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < k; ++j) {
          grad(i, j) = 2.0 * CovFromSqDist(sq_dist(i, j));
        }
      }
      break;
    case 1:
      // d/dlog(t1): t0^2 exp(-r/(2 t1^2)) * (r / t1^2)
      for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < k; ++j) {
          grad(i, j) =
              CovFromSqDist(sq_dist(i, j)) * (sq_dist(i, j) / t1_sq);
        }
      }
      break;
    case 2: {
      // d/dlog(t2) of delta_ij t2^2 = 2 t2^2 on the diagonal.
      const double g = 2.0 * theta2() * theta2();
      for (std::size_t i = 0; i < k; ++i) grad(i, i) = g;
      break;
    }
    default:
      break;
  }
  return grad;
}

}  // namespace gp
}  // namespace smiler
