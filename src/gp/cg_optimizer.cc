#include "gp/cg_optimizer.h"

#include <algorithm>
#include <cmath>

#include "la/matrix.h"

namespace smiler {
namespace gp {

CgResult MaximizeCg(const Objective& objective, std::vector<double>* params,
                    const CgOptions& options) {
  const std::size_t n = params->size();
  std::vector<double> grad(n, 0.0);
  std::vector<double> prev_grad(n, 0.0);
  std::vector<double> direction(n, 0.0);
  std::vector<double> trial(n, 0.0);
  std::vector<double> trial_grad(n, 0.0);

  CgResult result;
  double value = objective(*params, &grad);
  if (!std::isfinite(value)) {
    result.value = value;
    return result;
  }
  direction = grad;  // steepest ascent to start

  double step = options.initial_step;
  for (int iter = 0; iter < options.max_iters; ++iter) {
    const double gnorm = la::Norm2(grad);
    if (gnorm < options.grad_tolerance) break;

    double slope = la::Dot(grad, direction);
    if (slope <= 0.0) {
      // Direction lost ascent property; restart with the gradient.
      direction = grad;
      slope = la::Dot(grad, grad);
      if (slope <= 0.0) break;
    }

    // Backtracking Armijo line search.
    double alpha = step;
    double new_value = -INFINITY;
    bool accepted = false;
    for (int bt = 0; bt < options.max_backtracks; ++bt) {
      for (std::size_t j = 0; j < n; ++j) {
        trial[j] = (*params)[j] + alpha * direction[j];
      }
      new_value = objective(trial, &trial_grad);
      if (std::isfinite(new_value) &&
          new_value >= value + options.armijo_c1 * alpha * slope) {
        accepted = true;
        break;
      }
      alpha *= 0.5;
    }
    if (!accepted) break;

    prev_grad = grad;
    grad = trial_grad;
    *params = trial;
    value = new_value;
    result.iterations = iter + 1;
    // Grow the next initial step a little on success (self-scaling).
    step = std::min(alpha * 2.0, 4.0);

    // Polak-Ribiere+ update.
    double num = 0.0;
    double den = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      num += grad[j] * (grad[j] - prev_grad[j]);
      den += prev_grad[j] * prev_grad[j];
    }
    const double beta = den > 0.0 ? std::max(0.0, num / den) : 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      direction[j] = grad[j] + beta * direction[j];
    }
  }
  result.value = value;
  return result;
}

}  // namespace gp
}  // namespace smiler
