#ifndef SMILER_GP_KERNEL_H_
#define SMILER_GP_KERNEL_H_

#include <array>
#include <cstddef>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"
#include "simgpu/device.h"

namespace smiler {
namespace gp {

/// \brief Squared-exponential covariance with additive noise (Eqn 18):
///
///   c(xa, xb) = theta0^2 * exp(-||xa - xb||^2 / (2 theta1^2))
///               + delta_ab * theta2^2
///
/// Hyperparameters are stored and optimized in log space so positivity is
/// structural. theta1 is the characteristic length-scale; theta2^2 the
/// observation noise.
///
/// The kernel separates *geometry* from *hyperparameters*: the pairwise
/// squared distances of a training set (PairwiseSquaredDistances) depend
/// only on the inputs, so one Gram matrix serves every covariance build
/// across hyperparameter updates — and, in the engine, across every
/// ensemble cell that shares the same kNN inputs.
class SeKernel {
 public:
  /// Number of hyperparameters.
  static constexpr int kNumParams = 3;

  SeKernel() : SeKernel(0.0, 0.0, -1.0) {}
  /// Constructs from log(theta0), log(theta1), log(theta2).
  SeKernel(double log_theta0, double log_theta1, double log_theta2)
      : log_params_{log_theta0, log_theta1, log_theta2} {}

  /// Data-driven initialisation: theta0^2 ~ var(y), theta1 ~ median
  /// pairwise input distance, theta2^2 ~ 10% of var(y). Gives the online
  /// trainer a seed in the right order of magnitude for any sensor scale.
  /// \p gram, when non-null, supplies the pairwise squared distances of
  /// \p x (a cached Gram) so the median needs no recomputation.
  static SeKernel Heuristic(const la::Matrix& x, const std::vector<double>& y,
                            const la::ConstMatrixView* gram = nullptr);

  const std::array<double, kNumParams>& log_params() const {
    return log_params_;
  }
  void set_log_params(const std::array<double, kNumParams>& p) {
    log_params_ = p;
  }

  double theta0() const;
  double theta1() const;
  double theta2() const;

  /// Covariance of two distinct inputs given their squared distance.
  double CovFromSqDist(double sq_dist) const;

  /// Prior variance of a single input: c(x, x) = theta0^2 + theta2^2.
  double SelfCovariance() const;

  /// k x k covariance matrix over the rows of \p x (noise on diagonal).
  /// \p sq_dist, when non-null, receives the pairwise squared distances
  /// for reuse by gradient computations.
  la::Matrix Covariance(const la::Matrix& x, la::Matrix* sq_dist = nullptr)
      const;

  /// k x k covariance matrix from an already computed pairwise
  /// squared-distance matrix (noise on diagonal). The distance-free hot
  /// path: every hyperparameter evaluation against a cached Gram costs
  /// only the exponentials.
  la::Matrix CovarianceFromSqDist(la::ConstMatrixView sq_dist) const;

  /// Cross-covariance vector c0 between every row of \p x and test input
  /// \p xstar (length = x.cols()).
  std::vector<double> CrossCovariance(const la::Matrix& x,
                                      const double* xstar) const;

  /// dC/dlog(theta_param) over the rows of \p x, given the cached pairwise
  /// squared distances from Covariance(). \p param in [0, kNumParams).
  la::Matrix CovarianceGrad(la::ConstMatrixView sq_dist, int param) const;

 private:
  std::array<double, kNumParams> log_params_;
};

/// Squared Euclidean distance between two length-\p dim vectors.
double SquaredDistance(const double* a, const double* b, std::size_t dim);

/// \brief Symmetric k x k matrix of pairwise squared distances between the
/// rows of \p x — the hyperparameter-independent Gram that Covariance /
/// CovarianceGrad / Heuristic consume. Computed entrywise with
/// SquaredDistance, so a cached Gram is bitwise-identical to what each
/// consumer would have computed itself (and a leading submatrix view of it
/// is exactly the Gram of the corresponding row prefix).
la::Matrix PairwiseSquaredDistances(const la::Matrix& x);

/// \brief PairwiseSquaredDistances routed through \p device as the
/// "gp.gram" kernel, so SE-kernel Gram evaluation shows up in per-kernel
/// profiling and runs on the selected execution backend. Under the grid
/// backend one block computes one row's upper-triangle entries; the native
/// body walks a transposed copy of \p x dimension-by-dimension with a
/// vectorized accumulator over columns. Both paths perform each entry's
/// additions in the same ascending-dimension order as SquaredDistance, so
/// the result is bitwise-identical to the host function (the Gram-cache
/// contract: a cached Gram matches what each consumer would compute).
/// Fails only when the launch itself fails (e.g. an invalid
/// SMILER_BACKEND); callers fall back to the host function.
Result<la::Matrix> PairwiseSquaredDistancesOnDevice(simgpu::Device* device,
                                                    const la::Matrix& x);

/// \brief One job of a batched Gram computation: the pairwise squared
/// distances of `x`'s rows are written to `*out` (which is resized to
/// x.rows() x x.rows()).
struct GramBatchJob {
  const la::Matrix* x = nullptr;
  la::Matrix* out = nullptr;
};

/// \brief Computes every job's Gram in ONE "gp.gram_batch" device launch
/// (simgpu::BatchGrid maps the fused flat grid back to per-job rows), so
/// a serve-layer micro-batch of N sensors pays one launch instead of N.
/// Per entry the arithmetic is exactly PairwiseSquaredDistancesOnDevice's
/// — grid body per-row upper triangle, native body ascending-dimension
/// accumulation — so each job's result is bitwise-identical to a solo
/// launch (and to the host function). Jobs with fewer than 2 rows get
/// their zero matrix without contributing blocks. On launch failure no
/// job's output is usable; callers fall back to the host function per
/// job, mirroring the solo path's degradation contract.
Status PairwiseSquaredDistancesOnDeviceBatch(
    simgpu::Device* device, const std::vector<GramBatchJob>& jobs);

}  // namespace gp
}  // namespace smiler

#endif  // SMILER_GP_KERNEL_H_
