#include "index/smiler_index.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <numeric>
#include <optional>
#include <queue>
#include <vector>

#include "common/math_utils.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "dtw/dtw.h"
#include "dtw/lower_bounds.h"
#include "index/csg.h"
#include "index/kselect.h"
#include "obs/obs.h"

namespace smiler {
namespace index {

namespace {

/// Lock-free monotone tightening of a shared double threshold.
inline void AtomicMinDouble(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (value < cur &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

const char* LowerBoundModeName(LowerBoundMode mode) {
  switch (mode) {
    case LowerBoundMode::kLbeq:
      return "LBEQ";
    case LowerBoundMode::kLbec:
      return "LBEC";
    case LowerBoundMode::kLben:
      return "LBen";
  }
  return "UNKNOWN";
}

Result<SmilerIndex> SmilerIndex::Build(simgpu::Device* device,
                                       const ts::TimeSeries& history,
                                       const SmilerConfig& config) {
  if (device == nullptr) {
    return Status::InvalidArgument("device must not be null");
  }
  SMILER_RETURN_NOT_OK(config.Validate());
  const int d_max = config.MasterQueryLength();
  const long n = static_cast<long>(history.size());
  if (n < d_max + config.omega) {
    return Status::InvalidArgument(
        "history too short: need at least MasterQueryLength + omega points");
  }

  SmilerIndex idx;
  idx.cfg_ = config;
  idx.device_ = device;
  idx.series_ = history.values();
  idx.d_max_ = d_max;
  idx.S_ = NumSlidingWindows(d_max, config.omega);
  idx.R_ = n / config.omega;
  idx.head_ = 0;
  idx.env_c_ = dtw::ComputeEnvelope(idx.series_.data(), idx.series_.size(),
                                    config.rho);
  idx.RefreshMqEnvelope();
  idx.lb_.Init(idx.S_, idx.R_, config.omega);
  idx.prev_knn_.assign(config.elv.size(), {});

  // Window-level build: one block per sliding window computes that
  // window's whole posting list (Section 4.3.1). Both backends run the
  // same ComputeRow body over the same decomposition; the native path
  // just skips the per-block arena/timer machinery.
  SmilerIndex* self = &idx;
  const int n_rows = idx.S_;
  SMILER_RETURN_NOT_OK(device->Launch(
      "index.window_build", n_rows, config.omega,
      [self](simgpu::BlockContext& ctx) {
        self->ComputeRow(ctx.block_id, /*eq_only=*/false);
      },
      [self, n_rows](simgpu::NativeContext& nctx) {
        nctx.ParallelFor(static_cast<std::size_t>(n_rows), [self](std::size_t b) {
          self->ComputeRow(static_cast<int>(b), /*eq_only=*/false);
        });
      }));
  SMILER_RETURN_NOT_OK(idx.UpdateMemoryAccounting());
  return idx;
}

IndexSnapshot SmilerIndex::Snapshot() const {
  IndexSnapshot snap;
  snap.series = series_;
  snap.env_c_upper = env_c_.upper;
  snap.env_c_lower = env_c_.lower;
  snap.env_mq_upper = env_mq_.upper;
  snap.env_mq_lower = env_mq_.lower;
  snap.head = head_;
  snap.cols = R_;
  snap.arena_stride = lb_.stride();
  snap.arena = lb_.raw();
  snap.prev_knn = prev_knn_;
  return snap;
}

Result<SmilerIndex> SmilerIndex::Restore(simgpu::Device* device,
                                         const SmilerConfig& config,
                                         IndexSnapshot snapshot) {
  if (device == nullptr) {
    return Status::InvalidArgument("device must not be null");
  }
  SMILER_RETURN_NOT_OK(config.Validate());
  const int d_max = config.MasterQueryLength();
  const long n = static_cast<long>(snapshot.series.size());
  if (n < d_max + config.omega) {
    return Status::InvalidArgument(
        "snapshot series too short for the configuration");
  }
  const int S = NumSlidingWindows(d_max, config.omega);
  const std::size_t un = static_cast<std::size_t>(n);
  if (snapshot.env_c_upper.size() != un || snapshot.env_c_lower.size() != un) {
    return Status::InvalidArgument("snapshot history envelope size mismatch");
  }
  if (snapshot.env_mq_upper.size() != static_cast<std::size_t>(d_max) ||
      snapshot.env_mq_lower.size() != static_cast<std::size_t>(d_max)) {
    return Status::InvalidArgument(
        "snapshot master-query envelope size mismatch");
  }
  if (snapshot.head < 0 || snapshot.head >= S) {
    return Status::InvalidArgument("snapshot ring head out of range");
  }
  if (snapshot.cols != n / config.omega) {
    return Status::InvalidArgument(
        "snapshot disjoint-window count inconsistent with series length");
  }
  if (snapshot.prev_knn.size() != config.elv.size()) {
    return Status::InvalidArgument("snapshot prev-kNN arity mismatch");
  }
  for (std::size_t i = 0; i < snapshot.prev_knn.size(); ++i) {
    for (const Neighbor& nb : snapshot.prev_knn[i]) {
      if (nb.t < 0 || nb.t + config.elv[i] > n) {
        return Status::InvalidArgument("snapshot prev-kNN neighbor t out of "
                                       "range");
      }
    }
  }

  SmilerIndex idx;
  idx.cfg_ = config;
  idx.device_ = device;
  idx.series_ = std::move(snapshot.series);
  idx.d_max_ = d_max;
  idx.S_ = S;
  idx.R_ = snapshot.cols;
  idx.head_ = snapshot.head;
  idx.env_c_.upper = std::move(snapshot.env_c_upper);
  idx.env_c_.lower = std::move(snapshot.env_c_lower);
  idx.env_mq_.upper = std::move(snapshot.env_mq_upper);
  idx.env_mq_.lower = std::move(snapshot.env_mq_lower);
  if (!idx.lb_.Restore(S, snapshot.cols, snapshot.arena_stride, config.omega,
                       std::move(snapshot.arena))) {
    return Status::InvalidArgument("snapshot posting-list arena dimensions "
                                   "inconsistent");
  }
  idx.prev_knn_ = std::move(snapshot.prev_knn);
  SMILER_RETURN_NOT_OK(idx.UpdateMemoryAccounting());
  return idx;
}

SmilerIndex::~SmilerIndex() {
  if (device_ != nullptr && accounted_bytes_ > 0) {
    device_->FreeBytes(accounted_bytes_);
  }
}

SmilerIndex::SmilerIndex(SmilerIndex&& other) noexcept {
  *this = std::move(other);
}

SmilerIndex& SmilerIndex::operator=(SmilerIndex&& other) noexcept {
  if (this != &other) {
    if (device_ != nullptr && accounted_bytes_ > 0) {
      device_->FreeBytes(accounted_bytes_);
    }
    cfg_ = other.cfg_;
    device_ = other.device_;
    series_ = std::move(other.series_);
    env_c_ = std::move(other.env_c_);
    env_mq_ = std::move(other.env_mq_);
    d_max_ = other.d_max_;
    S_ = other.S_;
    R_ = other.R_;
    head_ = other.head_;
    lb_ = std::move(other.lb_);
    prev_knn_ = std::move(other.prev_knn_);
    accounted_bytes_ = other.accounted_bytes_;
    other.device_ = nullptr;
    other.accounted_bytes_ = 0;
  }
  return *this;
}

void SmilerIndex::RefreshMqEnvelope() {
  env_mq_ = dtw::ComputeEnvelope(MqData(), d_max_, cfg_.rho);
}

void SmilerIndex::ShiftMqEnvelope() {
  // The master query window slid one step: new MQ position p covers the
  // same absolute series values as old position p + 1 whenever neither
  // band end clamps differently, i.e. for p in [rho, d_max - 2 - rho].
  // Those entries shift verbatim; only the clamped head and the tail the
  // new observation perturbs need recomputation.
  const std::size_t d = static_cast<std::size_t>(d_max_);
  const std::size_t rho = static_cast<std::size_t>(cfg_.rho);
  double* up = env_mq_.upper.data();
  double* lo = env_mq_.lower.data();
  std::memmove(up, up + 1, (d - 1) * sizeof(double));
  std::memmove(lo, lo + 1, (d - 1) * sizeof(double));
  const std::size_t head_end = std::min(d, rho + 1);
  dtw::UpdateEnvelopeRange(MqData(), d, cfg_.rho, 0, head_end, &env_mq_);
  const std::size_t tail_begin = d > rho + 1 ? d - rho - 1 : 0;
  dtw::UpdateEnvelopeRange(MqData(), d, cfg_.rho, tail_begin, d, &env_mq_);
}

void SmilerIndex::ComputeRow(int logical_b, bool eq_only) {
  const int omega = cfg_.omega;
  const int phys = PhysicalRow(logical_b);
  const std::size_t mq_begin =
      static_cast<std::size_t>(SlidingWindowBegin(d_max_, omega, logical_b));
  double* eq_row = lb_.EqRow(phys);
  double* ec_row = lb_.EcRow(phys);
  for (long r = 0; r < R_; ++r) {
    const std::size_t c_begin = static_cast<std::size_t>(r) * omega;
    eq_row[r] = dtw::LbKeoghAligned(env_mq_, mq_begin, series_.data(),
                                    c_begin, omega);
    if (!eq_only) {
      ec_row[r] =
          dtw::LbKeoghAligned(env_c_, c_begin, MqData(), mq_begin, omega);
    }
  }
}

void SmilerIndex::ComputeColumnEntry(int logical_b, long r, bool both) {
  const int omega = cfg_.omega;
  const std::size_t c_begin = static_cast<std::size_t>(r) * omega;
  const std::size_t mq_begin =
      static_cast<std::size_t>(SlidingWindowBegin(d_max_, omega, logical_b));
  const int phys = PhysicalRow(logical_b);
  if (both) {
    lb_.EqRow(phys)[r] = dtw::LbKeoghAligned(env_mq_, mq_begin,
                                             series_.data(), c_begin, omega);
  }
  lb_.EcRow(phys)[r] =
      dtw::LbKeoghAligned(env_c_, c_begin, MqData(), mq_begin, omega);
}

Status SmilerIndex::Append(double value) {
  SMILER_TRACE_SPAN("index.append");
  static obs::Histogram& append_seconds =
      obs::Registry::Global().GetHistogram("index.append_seconds");
  WallTimer append_timer;
  const int omega = cfg_.omega;
  const int rho = cfg_.rho;
  series_.push_back(value);
  const long n = static_cast<long>(series_.size());

  // Maintain the global envelope of C: the new point perturbs at most the
  // trailing rho entries plus its own.
  env_c_.upper.push_back(value);
  env_c_.lower.push_back(value);
  const std::size_t env_begin =
      static_cast<std::size_t>(std::max<long>(0, n - 1 - rho));
  dtw::UpdateEnvelopeRange(series_.data(), series_.size(), rho, env_begin,
                           series_.size(), &env_c_);

  ShiftMqEnvelope();

  // Remark 1: the new sliding window takes over the physical row of the
  // retired oldest window; every logical label shifts by one.
  head_ = (head_ - 1 + S_) % S_;

  // A freshly completed disjoint window contributes one new column.
  const long new_r = (n % omega == 0) ? (n / omega - 1) : -1;
  if (new_r >= 0) {
    R_ = n / omega;
    lb_.EnsureCols(R_);
  }

  // Column maintenance: candidate-envelope entries of trailing disjoint
  // windows changed with env_c_ (validity, not just tightness: stale
  // entries could overestimate once segments extend past the old tail),
  // and the new column needs both halves. Every column is an independent
  // block; logical row 0 is skipped here because the row launch below
  // recomputes it in full with the same envelopes.
  const long first_changed_dw = static_cast<long>(env_begin) / omega;
  if (S_ > 1 && first_changed_dw < R_) {
    SmilerIndex* self = this;
    const int n_cols = static_cast<int>(R_ - first_changed_dw);
    const auto column_body = [self, first_changed_dw, new_r](long block) {
      const long r = first_changed_dw + block;
      for (int b = 1; b < self->S_; ++b) {
        self->ComputeColumnEntry(b, r, /*both=*/r == new_r);
      }
    };
    SMILER_RETURN_NOT_OK(device_->Launch(
        "index.append_columns", n_cols, omega,
        [column_body](simgpu::BlockContext& ctx) { column_body(ctx.block_id); },
        [column_body, n_cols](simgpu::NativeContext& nctx) {
          nctx.ParallelFor(static_cast<std::size_t>(n_cols),
                           [&](std::size_t b) {
                             column_body(static_cast<long>(b));
                           });
        }));
  }

  // Row maintenance: the new row 0 (both halves) plus the rho rows whose
  // master-query envelope entries widened (LBEQ half only) — the Remark-1
  // refresh. Rows are disjoint writes, one block each.
  const int refresh = std::min(rho, S_ - 1);
  SmilerIndex* self = this;
  SMILER_RETURN_NOT_OK(device_->Launch(
      "index.append_rows", refresh + 1, omega,
      [self](simgpu::BlockContext& ctx) {
        self->ComputeRow(ctx.block_id, /*eq_only=*/ctx.block_id != 0);
      },
      [self, refresh](simgpu::NativeContext& nctx) {
        nctx.ParallelFor(static_cast<std::size_t>(refresh) + 1,
                         [self](std::size_t b) {
                           self->ComputeRow(static_cast<int>(b),
                                            /*eq_only=*/b != 0);
                         });
      }));

  Status st = UpdateMemoryAccounting();
  append_seconds.Observe(append_timer.ElapsedSeconds());
  return st;
}

long SmilerIndex::NumCandidates(std::size_t elv_index,
                                int reserve_horizon) const {
  const long n = static_cast<long>(series_.size());
  const long d = cfg_.elv[elv_index];
  return std::max<long>(0, n - d - reserve_horizon + 1);
}

Result<LowerBoundTable> SmilerIndex::GroupLowerBounds(
    int reserve_horizon) const {
  const int omega = cfg_.omega;
  const std::size_t n_items = cfg_.elv.size();
  LowerBoundTable table;
  table.lb_eq.resize(n_items);
  table.lb_ec.resize(n_items);
  std::vector<long> t_limit(n_items);
  for (std::size_t i = 0; i < n_items; ++i) {
    const long ti = NumCandidates(i, reserve_horizon);
    t_limit[i] = ti - 1;
    table.lb_eq[i].assign(static_cast<std::size_t>(std::max<long>(0, ti)),
                          0.0);
    table.lb_ec[i].assign(static_cast<std::size_t>(std::max<long>(0, ti)),
                          0.0);
  }

  // Per CSG identifier b: the item queries' group sizes and offsets,
  // ascending by size so a single walk over j emits each in turn.
  struct Emit {
    int m;       // |CSG_{i,b}|
    int item;    // ELV index
    int offset;  // (d_i - b) % omega term of Eqn (4)
  };
  std::vector<std::vector<Emit>> emits(omega);
  for (int b = 0; b < omega; ++b) {
    for (std::size_t i = 0; i < n_items; ++i) {
      const int m = CsgSize(cfg_.elv[i], b, omega);
      if (m >= 1) {
        emits[b].push_back(Emit{m, static_cast<int>(i),
                                (cfg_.elv[i] - b) % omega});
      }
    }
    std::sort(emits[b].begin(), emits[b].end(),
              [](const Emit& a, const Emit& bb) { return a.m < bb.m; });
  }

  // Group-level kernel (Algorithm 1): one block per CSG. The shift-sum is
  // restructured as per-row accumulation — acc[r] carries
  // sum_{jj<=j} row_jj[r-jj]; folding posting-list row j is one linear
  // walk over the arena row and the accumulator, which vectorizes. After
  // row j is folded, the bounds of every item query whose CSG holds j+1
  // windows are emitted (Remark 2). Blocks write disjoint t ranges
  // ((t + d_i) % omega == b), so the table needs no synchronization.
  const SmilerIndex* self = this;
  LowerBoundTable* out = &table;
  const std::vector<long>* limits = &t_limit;
  const std::vector<std::vector<Emit>>* emit_ptr = &emits;
  // One shared per-CSG fold body: the grid backend runs it once per block,
  // the native backend as a flat loop over CSG identifiers — bitwise the
  // same sums either way, with no arena/timer per CSG on the native path.
  const auto fold_csg = [self, out, limits, emit_ptr, omega](int b) {
    const std::vector<Emit>& todo = (*emit_ptr)[b];
    if (todo.empty()) return;
    const int max_m = todo.back().m;
    const long R = self->R_;
    std::vector<double> acc_eq(static_cast<std::size_t>(R), 0.0);
    std::vector<double> acc_ec(static_cast<std::size_t>(R), 0.0);
    std::size_t ptr = 0;
    for (int j = 0; j < max_m; ++j) {
      const int row = self->PhysicalRow(b + j * omega);
      const double* eq = self->lb_.EqRow(row);
      const double* ec = self->lb_.EcRow(row);
      double* aeq = acc_eq.data();
      double* aec = acc_ec.data();
#pragma omp simd
      for (long r = j; r < R; ++r) {
        aeq[r] += eq[r - j];
        aec[r] += ec[r - j];
      }
      while (ptr < todo.size() && todo[ptr].m == j + 1) {
        const Emit& e = todo[ptr];
        const long limit = (*limits)[e.item];
        double* out_eq = out->lb_eq[e.item].data();
        double* out_ec = out->lb_ec[e.item].data();
        for (long r = j; r < R; ++r) {
          const long t = (r - j) * static_cast<long>(omega) - e.offset;
          if (t >= 0 && t <= limit) {
            out_eq[t] = aeq[r];
            out_ec[t] = aec[r];
          }
        }
        ++ptr;
      }
    }
  };
  // The kernels are bound to named variables first: a `#pragma` cannot
  // appear inside a macro argument (the pragma lives in fold_csg).
  const simgpu::Kernel group_kernel =
      [fold_csg](simgpu::BlockContext& ctx) { fold_csg(ctx.block_id); };
  const simgpu::NativeKernel group_native =
      [fold_csg, omega](simgpu::NativeContext& nctx) {
        nctx.ParallelFor(static_cast<std::size_t>(omega), [&](std::size_t b) {
          fold_csg(static_cast<int>(b));
        });
      };
  SMILER_RETURN_NOT_OK(device_->Launch("index.group_lower_bound", omega,
                                       omega, group_kernel, group_native));
  return table;
}

Result<LowerBoundTable> SmilerIndex::DirectLowerBounds(
    int reserve_horizon) const {
  const std::size_t n_items = cfg_.elv.size();
  LowerBoundTable table;
  table.lb_eq.resize(n_items);
  table.lb_ec.resize(n_items);
  const SmilerIndex* self = this;
  LowerBoundTable* out = &table;
  const int h = reserve_horizon;
  const auto direct_body = [self, out, h](std::size_t i) {
    const int d = self->cfg_.elv[i];
    const long t_count = self->NumCandidates(i, h);
    auto& eq = out->lb_eq[i];
    auto& ec = out->lb_ec[i];
    eq.assign(std::max<long>(0, t_count), 0.0);
    ec.assign(std::max<long>(0, t_count), 0.0);
    const double* q = self->series_.data() + self->series_.size() - d;
    const dtw::Envelope env_q = dtw::ComputeEnvelope(q, d, self->cfg_.rho);
    for (long t = 0; t < t_count; ++t) {
      eq[t] = dtw::LbKeogh(env_q, self->series_.data() + t, d);
      ec[t] = dtw::LbKeoghAligned(self->env_c_, t, q, 0, d);
    }
  };
  SMILER_RETURN_NOT_OK(device_->Launch(
      "index.direct_lower_bound", static_cast<int>(n_items), cfg_.omega,
      [direct_body](simgpu::BlockContext& ctx) {
        direct_body(static_cast<std::size_t>(ctx.block_id));
      },
      [direct_body, n_items](simgpu::NativeContext& nctx) {
        nctx.ParallelFor(n_items, direct_body);
      }));
  return table;
}

Status SmilerIndex::SearchItem(std::size_t item, const LowerBoundTable& table,
                               const SuffixSearchOptions& options,
                               ItemQueryResult* out,
                               SearchStats* item_stats) {
  const int d = cfg_.elv[item];
  const int k = options.k;
  const long t_count = NumCandidates(item, options.reserve_horizon);
  out->d = d;
  if (t_count <= 0) return Status::OK();
  item_stats->candidates_total += static_cast<std::uint64_t>(t_count);

  const double* q = series_.data() + series_.size() - d;

  // Covers threshold seeding, filtering and exact-DTW verification —
  // the region charged to verify_seconds below.
  std::optional<obs::ScopedSpan> verify_span;
  verify_span.emplace("search.verify");
  WallTimer timer;

  // Seeding and filtering are lower-bound work; the scope is paused by
  // the nested dtw_verify scope around the exact seed verification and
  // released before the device verification below.
  std::optional<obs::StageScope> filter_stage;
  filter_stage.emplace(obs::Stage::kLbFilter);

  // --- Threshold seeding (Section 4.3.3, Filtering) ---
  // Continuous query: re-verify the previous step's kNN. When fewer than
  // k previous neighbors survive the t < t_count cut (and on the initial
  // query, where there are none), top the seeds up with the candidates of
  // smallest lower bound. Either way tau is the k-th smallest verified
  // distance, a true upper bound on the k-th NN distance, so filtering
  // stays exact — without the top-up a shrunken seed set would leave tau
  // silently looser than the k-th distance.
  std::vector<Neighbor> seeds;
  std::vector<char> is_seed(t_count, 0);
  if (options.reuse_previous_threshold && !prev_knn_[item].empty()) {
    seeds.reserve(prev_knn_[item].size());
    for (const Neighbor& nb : prev_knn_[item]) {
      if (nb.t < t_count && !is_seed[nb.t]) {
        is_seed[nb.t] = 1;
        seeds.push_back(Neighbor{nb.t, 0.0});
      }
    }
  }
  if (static_cast<long>(seeds.size()) < std::min<long>(k, t_count)) {
    std::vector<Neighbor> by_bound;
    by_bound.reserve(t_count);
    for (long t = 0; t < t_count; ++t) {
      if (is_seed[t]) continue;
      by_bound.push_back(Neighbor{
          t, table.Bound(options.bound, item, static_cast<std::size_t>(t))});
    }
    for (const Neighbor& nb :
         KSelectSmallest(std::move(by_bound),
                         k - static_cast<int>(seeds.size()))) {
      is_seed[nb.t] = 1;
      seeds.push_back(Neighbor{nb.t, 0.0});
    }
  }
  // Verify seed distances exactly.
  {
    obs::StageScope seed_verify(obs::Stage::kDtwVerify);
    std::vector<double> scratch(dtw::CompressedDtwScratchSize(cfg_.rho));
    for (Neighbor& s : seeds) {
      s.dist = dtw::CompressedDtw(q, series_.data() + s.t, d, cfg_.rho,
                                  scratch.data());
    }
  }
  double tau = kInf;
  std::vector<double> seed_dists;
  seed_dists.reserve(seeds.size());
  for (const Neighbor& s : seeds) seed_dists.push_back(s.dist);
  if (static_cast<int>(seeds.size()) >= k) {
    std::vector<double> dists = seed_dists;
    std::nth_element(dists.begin(), dists.begin() + k - 1, dists.end());
    tau = dists[k - 1];
  }

  // --- Filtering ---
  struct Cand {
    long t;
    double lb;
  };
  std::vector<Cand> cand;
  for (long t = 0; t < t_count; ++t) {
    if (is_seed[t]) continue;
    const double lb =
        table.Bound(options.bound, item, static_cast<std::size_t>(t));
    if (lb <= tau) cand.push_back(Cand{t, lb});
  }
  // Ascending by lower bound: the most promising candidates are verified
  // first, so tau tightens as early as possible and the tail of the list
  // is abandoned or skipped outright.
  std::sort(cand.begin(), cand.end(), [](const Cand& a, const Cand& b) {
    if (a.lb != b.lb) return a.lb < b.lb;
    return a.t < b.t;
  });
  filter_stage.reset();
  // Device verification and selection are dtw_verify time (on helper
  // threads this is what lands in the request's parallel counters; on
  // the owner it folds into the enclosing dtw_verify scope).
  obs::StageScope verify_stage(obs::Stage::kDtwVerify);

  // --- Verification: compressed-warping-matrix banded DTW on device,
  // cascade-pruned against a monotonically tightening tau ---
  std::vector<double> cand_dist(cand.size(), kInf);
  std::atomic<double> shared_tau{tau};
  std::atomic<std::uint64_t> abandoned{0};
  std::atomic<std::uint64_t> pruned_late{0};
  const int n_blocks =
      static_cast<int>(std::min<std::size_t>(cand.size(), 64));
  const SmilerIndex* self = this;
  const std::vector<Cand>* cand_ptr = &cand;
  std::vector<double>* dist_ptr = &cand_dist;
  const std::vector<double>* seed_dists_ptr = &seed_dists;
  std::atomic<double>* tau_ptr = &shared_tau;
  std::atomic<std::uint64_t>* abandoned_ptr = &abandoned;
  std::atomic<std::uint64_t>* pruned_ptr = &pruned_late;
  if (!cand.empty()) {
    const simgpu::Kernel verify_kernel =
        [self, cand_ptr, dist_ptr, seed_dists_ptr, tau_ptr, abandoned_ptr,
         pruned_ptr, q, d, k](simgpu::BlockContext& ctx) {
          // The query and the compressed warping matrix live in shared
          // memory (Appendix E / Algorithm 2). Either allocation can fail
          // (arena exhausted, or chaos-injected); the fallbacks — reading
          // the query from global memory, heap scratch — consume the very
          // same values, so results stay bitwise-identical either way.
          double* shq = ctx.shared->Alloc<double>(d);
          if (shq != nullptr) std::memcpy(shq, q, sizeof(double) * d);
          const double* qv = shq != nullptr ? shq : q;
          double* scratch = ctx.shared->Alloc<double>(
              dtw::CompressedDtwScratchSize(self->cfg_.rho));
          std::vector<double> heap_scratch;
          if (scratch == nullptr) {
            heap_scratch.resize(dtw::CompressedDtwScratchSize(self->cfg_.rho));
            scratch = heap_scratch.data();
          }
          // Block-local top-k of true distances (seeds plus what this
          // block verified). Its k-th smallest is the k-th best of a
          // subset of real candidates, hence a valid upper bound on the
          // k-th NN distance — each block can therefore tighten the
          // shared tau with a plain atomic min, no coordination needed.
          std::priority_queue<double> topk(seed_dists_ptr->begin(),
                                           seed_dists_ptr->end());
          for (std::size_t idx = ctx.block_id; idx < cand_ptr->size();
               idx += ctx.grid_dim) {
            const Cand& c = (*cand_ptr)[idx];
            const double tau_now =
                tau_ptr->load(std::memory_order_relaxed);
            if (c.lb > tau_now) {
              // tau tightened below this candidate's bound after the
              // static filter ran: its distance can no longer make the
              // top k, skip the DTW entirely.
              pruned_ptr->fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            const double dist = dtw::CompressedDtwEarlyAbandon(
                qv, self->series_.data() + c.t, d, self->cfg_.rho, tau_now,
                scratch);
            if (dist == kInf) {
              abandoned_ptr->fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            (*dist_ptr)[idx] = dist;
            if (static_cast<int>(topk.size()) < k) {
              topk.push(dist);
            } else if (dist < topk.top()) {
              topk.pop();
              topk.push(dist);
            }
            if (static_cast<int>(topk.size()) >= k) {
              AtomicMinDouble(tau_ptr, topk.top());
            }
          }
        };
    // Native body: the same filter-and-verify cascade as straight-line
    // batched loops. Candidates are walked in a handful of coarse strips
    // (each with its own seed-initialized top-k heap, publishing into the
    // shared tau exactly like a grid block) and verified four at a time
    // through the lane-batched DTW kernel — per lane the arithmetic is
    // bitwise the scalar kernel's, and the tau-monotonicity invariant
    // makes the final kNN identical under any strip/batch decomposition.
    // The prune decision is taken against a fresh tau per candidate;
    // only the early-abandon cutoff is per batch (a valid — merely
    // slightly staler — upper bound, so exactness is untouched; the
    // abandoned/pruned split was timing-dependent already).
    const simgpu::NativeKernel verify_native =
        [self, cand_ptr, dist_ptr, seed_dists_ptr, tau_ptr, abandoned_ptr,
         pruned_ptr, q, d, k](simgpu::NativeContext& nctx) {
          const std::size_t n_cand = cand_ptr->size();
          std::size_t n_strips =
              std::min<std::size_t>(nctx.parallelism(), (n_cand + 15) / 16);
          if (n_strips == 0) n_strips = 1;
          nctx.ParallelFor(n_strips, [&](std::size_t strip) {
            constexpr int kB = dtw::kDtwBatchLanes;
            const int rho = self->cfg_.rho;
            std::vector<double> scratch(dtw::CompressedDtwBatchScratchSize(rho));
            std::priority_queue<double> topk(seed_dists_ptr->begin(),
                                             seed_dists_ptr->end());
            auto finish = [&](std::size_t idx, double dist) {
              if (dist == kInf) {
                abandoned_ptr->fetch_add(1, std::memory_order_relaxed);
                return;
              }
              (*dist_ptr)[idx] = dist;
              if (static_cast<int>(topk.size()) < k) {
                topk.push(dist);
              } else if (dist < topk.top()) {
                topk.pop();
                topk.push(dist);
              }
              if (static_cast<int>(topk.size()) >= k) {
                AtomicMinDouble(tau_ptr, topk.top());
              }
            };
            const double* lane_c[kB];
            std::size_t lane_idx[kB];
            std::size_t idx = strip;
            while (idx < n_cand) {
              int nl = 0;
              double tau_now = kInf;
              while (nl < kB && idx < n_cand) {
                tau_now = tau_ptr->load(std::memory_order_relaxed);
                const auto& c = (*cand_ptr)[idx];
                if (c.lb > tau_now) {
                  pruned_ptr->fetch_add(1, std::memory_order_relaxed);
                } else {
                  lane_c[nl] = self->series_.data() + c.t;
                  lane_idx[nl] = idx;
                  ++nl;
                }
                idx += n_strips;
              }
              if (nl == kB) {
                double dist[kB];
                dtw::CompressedDtwEarlyAbandonBatch(q, lane_c, d, rho,
                                                    tau_now, dist,
                                                    scratch.data());
                for (int l = 0; l < kB; ++l) finish(lane_idx[l], dist[l]);
              } else {
                for (int l = 0; l < nl; ++l) {
                  const double dist = dtw::CompressedDtwEarlyAbandon(
                      q, lane_c[l], d, rho,
                      tau_ptr->load(std::memory_order_relaxed),
                      scratch.data());
                  finish(lane_idx[l], dist);
                }
              }
            }
          });
        };
    SMILER_RETURN_NOT_OK(device_->Launch("index.verify_dtw", n_blocks,
                                         cfg_.omega, verify_kernel,
                                         verify_native));
  }
  const std::uint64_t n_pruned_late =
      pruned_late.load(std::memory_order_relaxed);
  item_stats->candidates_verified +=
      static_cast<std::uint64_t>(cand.size() + seeds.size()) - n_pruned_late;
  item_stats->candidates_abandoned +=
      abandoned.load(std::memory_order_relaxed);
  item_stats->candidates_pruned_late += n_pruned_late;
  item_stats->verify_seconds += timer.ElapsedSeconds();
  verify_span.reset();

  // --- Selection: distributive-partitioning k-selection ---
  // Abandoned or late-pruned candidates carry dist = +inf: both provably
  // exceed the final k-th distance, so they can never displace a true
  // neighbor (KSelectSmallest handles infinities).
  timer.Reset();
  SMILER_TRACE_SPAN("search.select");
  std::vector<Neighbor> all = std::move(seeds);
  all.reserve(all.size() + cand.size());
  for (std::size_t idx = 0; idx < cand.size(); ++idx) {
    all.push_back(Neighbor{cand[idx].t, cand_dist[idx]});
  }
  out->neighbors = KSelectSmallest(std::move(all), k);
  prev_knn_[item] = out->neighbors;
  item_stats->select_seconds += timer.ElapsedSeconds();
  return Status::OK();
}

Result<SuffixKnnResult> SmilerIndex::Search(const SuffixSearchOptions& options,
                                            SearchStats* stats) {
  SMILER_TRACE_SPAN("index.search");
  SMILER_ASSIGN_OR_RETURN(PendingSearch pending, BeginSearch(options));
  return FinishSearch(std::move(pending), stats);
}

Result<PendingSearch> SmilerIndex::BeginSearch(
    const SuffixSearchOptions& options) {
  if (options.k <= 0) {
    return Status::InvalidArgument("k must be positive");
  }
  if (options.reserve_horizon < 0) {
    return Status::InvalidArgument("reserve_horizon must be >= 0");
  }
  PendingSearch pending;
  pending.options = options;
  WallTimer timer;
  {
    SMILER_TRACE_SPAN("search.lower_bound");
    obs::StageScope lb_stage(obs::Stage::kLbFilter);
    SMILER_ASSIGN_OR_RETURN(pending.table,
                            GroupLowerBounds(options.reserve_horizon));
  }
  pending.stats.lower_bound_seconds = timer.ElapsedSeconds();
  return pending;
}

Result<SuffixKnnResult> SmilerIndex::FinishSearch(PendingSearch pending,
                                                  SearchStats* stats) {
  const std::size_t n_items = cfg_.elv.size();
  SuffixKnnResult result;
  result.items.resize(n_items);

  // Item queries are independent (disjoint result slots, disjoint
  // prev_knn_ entries, read-only index state): fan them out over the
  // pool and merge their stats afterwards. Device launches issued from
  // inside a pool worker degrade to sequential block execution, so the
  // nested verify kernels stay deadlock-free.
  std::vector<SearchStats> item_stats(n_items);
  std::vector<Status> item_status(n_items);
  {
    // The owner's stage clock charges the whole fan-out (its own item
    // chunks plus the time blocked on the pool helpers) to dtw_verify;
    // SearchItem's nested lb_filter scope carves out the filtering
    // portion. Helper threads accrue to the request's parallel counters
    // through the same scopes.
    obs::StageScope verify_stage(obs::Stage::kDtwVerify);
    ThreadPool::Default().ParallelFor(n_items, [&](std::size_t i) {
      item_status[i] = SearchItem(i, pending.table, pending.options,
                                  &result.items[i], &item_stats[i]);
    });
  }
  for (std::size_t i = 0; i < n_items; ++i) {
    SMILER_RETURN_NOT_OK(item_status[i]);
    pending.stats.Add(item_stats[i]);
  }

  pending.stats.Publish();
  if (stats != nullptr) stats->Add(pending.stats);
  return result;
}

Status SmilerIndex::UpdateMemoryAccounting() {
  std::size_t bytes = series_.size() * sizeof(double);
  bytes += (env_c_.upper.size() + env_c_.lower.size()) * sizeof(double);
  bytes += (env_mq_.upper.size() + env_mq_.lower.size()) * sizeof(double);
  bytes += lb_.AllocatedBytes();
  if (bytes > accounted_bytes_) {
    SMILER_RETURN_NOT_OK(device_->AllocateBytes(bytes - accounted_bytes_));
  } else {
    device_->FreeBytes(accounted_bytes_ - bytes);
  }
  accounted_bytes_ = bytes;
  return Status::OK();
}

}  // namespace index
}  // namespace smiler
