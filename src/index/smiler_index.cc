#include "index/smiler_index.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <optional>

#include "common/math_utils.h"
#include "common/timer.h"
#include "dtw/dtw.h"
#include "dtw/lower_bounds.h"
#include "index/csg.h"
#include "index/kselect.h"
#include "obs/obs.h"

namespace smiler {
namespace index {

const char* LowerBoundModeName(LowerBoundMode mode) {
  switch (mode) {
    case LowerBoundMode::kLbeq:
      return "LBEQ";
    case LowerBoundMode::kLbec:
      return "LBEC";
    case LowerBoundMode::kLben:
      return "LBen";
  }
  return "UNKNOWN";
}

Result<SmilerIndex> SmilerIndex::Build(simgpu::Device* device,
                                       const ts::TimeSeries& history,
                                       const SmilerConfig& config) {
  if (device == nullptr) {
    return Status::InvalidArgument("device must not be null");
  }
  SMILER_RETURN_NOT_OK(config.Validate());
  const int d_max = config.MasterQueryLength();
  const long n = static_cast<long>(history.size());
  if (n < d_max + config.omega) {
    return Status::InvalidArgument(
        "history too short: need at least MasterQueryLength + omega points");
  }

  SmilerIndex idx;
  idx.cfg_ = config;
  idx.device_ = device;
  idx.series_ = history.values();
  idx.d_max_ = d_max;
  idx.S_ = NumSlidingWindows(d_max, config.omega);
  idx.R_ = n / config.omega;
  idx.head_ = 0;
  idx.env_c_ = dtw::ComputeEnvelope(idx.series_.data(), idx.series_.size(),
                                    config.rho);
  idx.RefreshMqEnvelope();
  idx.lbeq_.assign(idx.S_, std::vector<double>(idx.R_, 0.0));
  idx.lbec_.assign(idx.S_, std::vector<double>(idx.R_, 0.0));
  idx.prev_knn_.assign(config.elv.size(), {});

  // Window-level build: one block per sliding window computes that
  // window's whole posting list (Section 4.3.1).
  SmilerIndex* self = &idx;
  SMILER_RETURN_NOT_OK(device->Launch(
      "index.window_build", idx.S_, config.omega,
      [self](simgpu::BlockContext& ctx) {
        self->ComputeRow(ctx.block_id, /*eq_only=*/false);
      }));
  SMILER_RETURN_NOT_OK(idx.UpdateMemoryAccounting());
  return idx;
}

SmilerIndex::~SmilerIndex() {
  if (device_ != nullptr && accounted_bytes_ > 0) {
    device_->FreeBytes(accounted_bytes_);
  }
}

SmilerIndex::SmilerIndex(SmilerIndex&& other) noexcept {
  *this = std::move(other);
}

SmilerIndex& SmilerIndex::operator=(SmilerIndex&& other) noexcept {
  if (this != &other) {
    if (device_ != nullptr && accounted_bytes_ > 0) {
      device_->FreeBytes(accounted_bytes_);
    }
    cfg_ = other.cfg_;
    device_ = other.device_;
    series_ = std::move(other.series_);
    env_c_ = std::move(other.env_c_);
    env_mq_ = std::move(other.env_mq_);
    d_max_ = other.d_max_;
    S_ = other.S_;
    R_ = other.R_;
    head_ = other.head_;
    lbeq_ = std::move(other.lbeq_);
    lbec_ = std::move(other.lbec_);
    prev_knn_ = std::move(other.prev_knn_);
    accounted_bytes_ = other.accounted_bytes_;
    other.device_ = nullptr;
    other.accounted_bytes_ = 0;
  }
  return *this;
}

void SmilerIndex::RefreshMqEnvelope() {
  env_mq_ = dtw::ComputeEnvelope(MqData(), d_max_, cfg_.rho);
}

void SmilerIndex::ComputeRow(int logical_b, bool eq_only) {
  const int omega = cfg_.omega;
  const int phys = PhysicalRow(logical_b);
  const std::size_t mq_begin =
      static_cast<std::size_t>(SlidingWindowBegin(d_max_, omega, logical_b));
  std::vector<double>& eq_row = lbeq_[phys];
  std::vector<double>& ec_row = lbec_[phys];
  eq_row.resize(R_);
  if (!eq_only) ec_row.resize(R_);
  for (long r = 0; r < R_; ++r) {
    const std::size_t c_begin = static_cast<std::size_t>(r) * omega;
    eq_row[r] = dtw::LbKeoghAligned(env_mq_, mq_begin, series_.data(),
                                    c_begin, omega);
    if (!eq_only) {
      ec_row[r] =
          dtw::LbKeoghAligned(env_c_, c_begin, MqData(), mq_begin, omega);
    }
  }
}

void SmilerIndex::RecomputeLbecColumn(long r) {
  const int omega = cfg_.omega;
  const std::size_t c_begin = static_cast<std::size_t>(r) * omega;
  for (int b = 0; b < S_; ++b) {
    const std::size_t mq_begin =
        static_cast<std::size_t>(SlidingWindowBegin(d_max_, omega, b));
    lbec_[PhysicalRow(b)][r] =
        dtw::LbKeoghAligned(env_c_, c_begin, MqData(), mq_begin, omega);
  }
}

void SmilerIndex::ComputeNewColumn(long r) {
  const int omega = cfg_.omega;
  const std::size_t c_begin = static_cast<std::size_t>(r) * omega;
  for (int b = 0; b < S_; ++b) {
    const std::size_t mq_begin =
        static_cast<std::size_t>(SlidingWindowBegin(d_max_, omega, b));
    const int phys = PhysicalRow(b);
    lbeq_[phys].resize(R_);
    lbec_[phys].resize(R_);
    lbeq_[phys][r] = dtw::LbKeoghAligned(env_mq_, mq_begin, series_.data(),
                                         c_begin, omega);
    lbec_[phys][r] =
        dtw::LbKeoghAligned(env_c_, c_begin, MqData(), mq_begin, omega);
  }
}

Status SmilerIndex::Append(double value) {
  SMILER_TRACE_SPAN("index.append");
  static obs::Histogram& append_seconds =
      obs::Registry::Global().GetHistogram("index.append_seconds");
  WallTimer append_timer;
  const int omega = cfg_.omega;
  const int rho = cfg_.rho;
  series_.push_back(value);
  const long n = static_cast<long>(series_.size());

  // Maintain the global envelope of C: the new point perturbs at most the
  // trailing rho entries plus its own.
  env_c_.upper.push_back(value);
  env_c_.lower.push_back(value);
  const std::size_t env_begin =
      static_cast<std::size_t>(std::max<long>(0, n - 1 - rho));
  dtw::UpdateEnvelopeRange(series_.data(), series_.size(), rho, env_begin,
                           series_.size(), &env_c_);

  RefreshMqEnvelope();

  // Remark 1: the new sliding window takes over the physical row of the
  // retired oldest window; every logical label shifts by one.
  head_ = (head_ - 1 + S_) % S_;

  // A freshly completed disjoint window contributes one new column.
  const long new_r = (n % omega == 0) ? (n / omega - 1) : -1;
  if (new_r >= 0) {
    R_ = n / omega;
    ComputeNewColumn(new_r);
  }

  // Candidate-envelope entries of trailing disjoint windows changed with
  // env_c_; refresh those columns (validity, not just tightness: stale
  // entries could overestimate once segments extend past the old tail).
  const long first_changed_dw = env_begin / omega;
  for (long r = first_changed_dw; r < R_; ++r) {
    if (r == new_r) continue;  // already computed above
    RecomputeLbecColumn(r);
  }

  // New row 0 (both halves) plus the rho rows whose master-query envelope
  // entries widened (LBEQ half only) — the Remark-1 refresh.
  ComputeRow(0, /*eq_only=*/false);
  const int refresh = std::min(rho, S_ - 1);
  for (int b = 1; b <= refresh; ++b) ComputeRow(b, /*eq_only=*/true);

  Status st = UpdateMemoryAccounting();
  append_seconds.Observe(append_timer.ElapsedSeconds());
  return st;
}

long SmilerIndex::NumCandidates(std::size_t elv_index,
                                int reserve_horizon) const {
  const long n = static_cast<long>(series_.size());
  const long d = cfg_.elv[elv_index];
  return std::max<long>(0, n - d - reserve_horizon + 1);
}

LowerBoundTable SmilerIndex::GroupLowerBounds(int reserve_horizon) const {
  const int omega = cfg_.omega;
  const std::size_t n_items = cfg_.elv.size();
  LowerBoundTable table;
  table.lb_eq.resize(n_items);
  table.lb_ec.resize(n_items);
  std::vector<long> t_limit(n_items);
  for (std::size_t i = 0; i < n_items; ++i) {
    const long ti = NumCandidates(i, reserve_horizon);
    t_limit[i] = ti - 1;
    table.lb_eq[i].assign(static_cast<std::size_t>(std::max<long>(0, ti)),
                          0.0);
    table.lb_ec[i].assign(static_cast<std::size_t>(std::max<long>(0, ti)),
                          0.0);
  }

  // Per CSG identifier b: the item queries' group sizes and offsets,
  // ascending by size so a single walk over j emits each in turn.
  struct Emit {
    int m;       // |CSG_{i,b}|
    int item;    // ELV index
    int offset;  // (d_i - b) % omega term of Eqn (4)
  };
  std::vector<std::vector<Emit>> emits(omega);
  for (int b = 0; b < omega; ++b) {
    for (std::size_t i = 0; i < n_items; ++i) {
      const int m = CsgSize(cfg_.elv[i], b, omega);
      if (m >= 1) {
        emits[b].push_back(Emit{m, static_cast<int>(i),
                                (cfg_.elv[i] - b) % omega});
      }
    }
    std::sort(emits[b].begin(), emits[b].end(),
              [](const Emit& a, const Emit& bb) { return a.m < bb.m; });
  }

  // Group-level kernel (Algorithm 1): one block per CSG; the shift-sum
  // over each CSG's posting lists yields every item query's bound in one
  // pass (Remark 2). Blocks write disjoint t ranges ((t + d_i) % omega ==
  // b), so the table needs no synchronization.
  const SmilerIndex* self = this;
  LowerBoundTable* out = &table;
  const std::vector<long>* limits = &t_limit;
  const std::vector<std::vector<Emit>>* emit_ptr = &emits;
  device_->Launch("index.group_lower_bound", omega, omega,
                  [self, out, limits, emit_ptr,
                   omega](simgpu::BlockContext& ctx) {
    const int b = ctx.block_id;
    const std::vector<Emit>& todo = (*emit_ptr)[b];
    if (todo.empty()) return;
    const int max_m = todo.back().m;
    for (long r = 0; r < self->R_; ++r) {
      double sum_eq = 0.0;
      double sum_ec = 0.0;
      std::size_t ptr = 0;
      for (int j = 0; j < max_m && r - j >= 0; ++j) {
        const int row = self->PhysicalRow(b + j * omega);
        sum_eq += self->lbeq_[row][r - j];
        sum_ec += self->lbec_[row][r - j];
        while (ptr < todo.size() && todo[ptr].m == j + 1) {
          const Emit& e = todo[ptr];
          const long t = (r - j) * static_cast<long>(omega) - e.offset;
          if (t >= 0 && t <= (*limits)[e.item]) {
            out->lb_eq[e.item][t] = sum_eq;
            out->lb_ec[e.item][t] = sum_ec;
          }
          ++ptr;
        }
      }
    }
  });
  return table;
}

LowerBoundTable SmilerIndex::DirectLowerBounds(int reserve_horizon) const {
  const std::size_t n_items = cfg_.elv.size();
  LowerBoundTable table;
  table.lb_eq.resize(n_items);
  table.lb_ec.resize(n_items);
  const SmilerIndex* self = this;
  LowerBoundTable* out = &table;
  const int h = reserve_horizon;
  device_->Launch("index.direct_lower_bound", static_cast<int>(n_items),
                  cfg_.omega, [self, out, h](simgpu::BlockContext& ctx) {
                    const std::size_t i = ctx.block_id;
                    const int d = self->cfg_.elv[i];
                    const long t_count = self->NumCandidates(i, h);
                    auto& eq = out->lb_eq[i];
                    auto& ec = out->lb_ec[i];
                    eq.assign(std::max<long>(0, t_count), 0.0);
                    ec.assign(std::max<long>(0, t_count), 0.0);
                    const double* q =
                        self->series_.data() + self->series_.size() - d;
                    const dtw::Envelope env_q =
                        dtw::ComputeEnvelope(q, d, self->cfg_.rho);
                    for (long t = 0; t < t_count; ++t) {
                      eq[t] = dtw::LbKeogh(env_q, self->series_.data() + t, d);
                      ec[t] = dtw::LbKeoghAligned(self->env_c_, t, q, 0, d);
                    }
                  });
  return table;
}

Result<SuffixKnnResult> SmilerIndex::Search(const SuffixSearchOptions& options,
                                            SearchStats* stats) {
  if (options.k <= 0) {
    return Status::InvalidArgument("k must be positive");
  }
  if (options.reserve_horizon < 0) {
    return Status::InvalidArgument("reserve_horizon must be >= 0");
  }
  SMILER_TRACE_SPAN("index.search");
  SearchStats local_stats;
  WallTimer timer;

  LowerBoundTable table;
  {
    SMILER_TRACE_SPAN("search.lower_bound");
    table = GroupLowerBounds(options.reserve_horizon);
  }
  local_stats.lower_bound_seconds = timer.ElapsedSeconds();

  const std::size_t n_items = cfg_.elv.size();
  SuffixKnnResult result;
  result.items.resize(n_items);

  for (std::size_t i = 0; i < n_items; ++i) {
    const int d = cfg_.elv[i];
    const long t_count = NumCandidates(i, options.reserve_horizon);
    result.items[i].d = d;
    if (t_count <= 0) continue;
    local_stats.candidates_total += static_cast<std::uint64_t>(t_count);

    const double* q = series_.data() + series_.size() - d;

    // Covers threshold seeding, filtering and exact-DTW verification —
    // the region charged to verify_seconds below.
    std::optional<obs::ScopedSpan> verify_span;
    verify_span.emplace("search.verify");

    // --- Threshold seeding (Section 4.3.3, Filtering) ---
    // Initial query: verify the k candidates with the smallest lower
    // bounds. Continuous query: re-verify the previous step's kNN. Either
    // way tau is the k-th smallest verified distance, a true upper bound
    // on the k-th NN distance, so filtering stays exact.
    std::vector<Neighbor> seeds;
    timer.Reset();
    if (options.reuse_previous_threshold && !prev_knn_[i].empty()) {
      seeds.reserve(prev_knn_[i].size());
      for (const Neighbor& nb : prev_knn_[i]) {
        if (nb.t < t_count) seeds.push_back(Neighbor{nb.t, 0.0});
      }
    } else {
      std::vector<Neighbor> by_bound;
      by_bound.reserve(t_count);
      for (long t = 0; t < t_count; ++t) {
        by_bound.push_back(Neighbor{
            t, table.Bound(options.bound, i, static_cast<std::size_t>(t))});
      }
      seeds = KSelectSmallest(std::move(by_bound), options.k);
    }
    // Verify seed distances exactly.
    {
      std::vector<double> scratch(dtw::CompressedDtwScratchSize(cfg_.rho));
      for (Neighbor& s : seeds) {
        s.dist = dtw::CompressedDtw(q, series_.data() + s.t, d, cfg_.rho,
                                    scratch.data());
      }
    }
    double tau = kInf;
    if (static_cast<int>(seeds.size()) >= options.k) {
      std::vector<double> dists;
      dists.reserve(seeds.size());
      for (const Neighbor& s : seeds) dists.push_back(s.dist);
      std::nth_element(dists.begin(), dists.begin() + options.k - 1,
                       dists.end());
      tau = dists[options.k - 1];
    }

    // --- Filtering ---
    std::vector<char> is_seed(t_count, 0);
    for (const Neighbor& s : seeds) is_seed[s.t] = 1;
    std::vector<long> cand;
    for (long t = 0; t < t_count; ++t) {
      if (is_seed[t]) continue;
      if (table.Bound(options.bound, i, static_cast<std::size_t>(t)) <= tau) {
        cand.push_back(t);
      }
    }
    local_stats.candidates_verified +=
        static_cast<std::uint64_t>(cand.size() + seeds.size());

    // --- Verification: compressed-warping-matrix banded DTW on device ---
    std::vector<double> cand_dist(cand.size(), 0.0);
    const int n_blocks =
        static_cast<int>(std::min<std::size_t>(cand.size(), 64));
    const SmilerIndex* self = this;
    const std::vector<long>* cand_ptr = &cand;
    std::vector<double>* dist_ptr = &cand_dist;
    if (!cand.empty()) {
      device_->Launch(
          "index.verify_dtw", n_blocks, cfg_.omega,
          [self, cand_ptr, dist_ptr, q, d](simgpu::BlockContext& ctx) {
            // The query and the compressed warping matrix live in shared
            // memory (Appendix E / Algorithm 2).
            double* shq = ctx.shared->Alloc<double>(d);
            std::memcpy(shq, q, sizeof(double) * d);
            double* scratch = ctx.shared->Alloc<double>(
                dtw::CompressedDtwScratchSize(self->cfg_.rho));
            for (std::size_t idx = ctx.block_id; idx < cand_ptr->size();
                 idx += ctx.grid_dim) {
              (*dist_ptr)[idx] = dtw::CompressedDtw(
                  shq, self->series_.data() + (*cand_ptr)[idx], d,
                  self->cfg_.rho, scratch);
            }
          });
    }
    local_stats.verify_seconds += timer.ElapsedSeconds();
    verify_span.reset();

    // --- Selection: distributive-partitioning k-selection ---
    timer.Reset();
    SMILER_TRACE_SPAN("search.select");
    std::vector<Neighbor> all = std::move(seeds);
    all.reserve(all.size() + cand.size());
    for (std::size_t idx = 0; idx < cand.size(); ++idx) {
      all.push_back(Neighbor{cand[idx], cand_dist[idx]});
    }
    result.items[i].neighbors = KSelectSmallest(std::move(all), options.k);
    prev_knn_[i] = result.items[i].neighbors;
    local_stats.select_seconds += timer.ElapsedSeconds();
  }

  local_stats.Publish();
  if (stats != nullptr) stats->Add(local_stats);
  return result;
}

Status SmilerIndex::UpdateMemoryAccounting() {
  std::size_t bytes = series_.size() * sizeof(double);
  bytes += (env_c_.upper.size() + env_c_.lower.size()) * sizeof(double);
  bytes += (env_mq_.upper.size() + env_mq_.lower.size()) * sizeof(double);
  bytes += static_cast<std::size_t>(S_) * static_cast<std::size_t>(R_) * 2 *
           sizeof(double);
  if (bytes > accounted_bytes_) {
    SMILER_RETURN_NOT_OK(device_->AllocateBytes(bytes - accounted_bytes_));
  } else {
    device_->FreeBytes(accounted_bytes_ - bytes);
  }
  accounted_bytes_ = bytes;
  return Status::OK();
}

}  // namespace index
}  // namespace smiler
