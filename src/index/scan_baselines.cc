#include "index/scan_baselines.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/math_utils.h"
#include "common/timer.h"
#include "dtw/dtw.h"
#include "dtw/envelope.h"
#include "dtw/lower_bounds.h"
#include "index/kselect.h"

namespace smiler {
namespace index {

const char* ScanMethodName(ScanMethod method) {
  switch (method) {
    case ScanMethod::kFastGpuScan:
      return "FastGPUScan";
    case ScanMethod::kGpuScan:
      return "GPUScan";
    case ScanMethod::kFastCpuScan:
      return "FastCPUScan";
  }
  return "UNKNOWN";
}

namespace {

// GPU scan (banded or unconstrained): every candidate's DTW is computed in
// a grid-strided kernel, then the k smallest are selected per item query.
ItemQueryResult GpuScanOneItem(simgpu::Device* device,
                               const std::vector<double>& series,
                               const SmilerConfig& cfg, int d, long t_count,
                               int k, bool banded, SearchStats* stats) {
  ItemQueryResult out;
  out.d = d;
  if (t_count <= 0) return out;
  const double* q = series.data() + series.size() - d;
  std::vector<double> dist(t_count, 0.0);

  WallTimer timer;
  const int n_blocks = static_cast<int>(std::min<long>(t_count, 64));
  device->Launch("index.scan_dtw", n_blocks, cfg.omega,
                 [&](simgpu::BlockContext& ctx) {
    double* shq = ctx.shared->Alloc<double>(d);
    if (shq != nullptr) std::memcpy(shq, q, sizeof(double) * d);
    const double* qv = shq != nullptr ? shq : q;  // same values either way
    const int rho = banded ? cfg.rho : d;
    double* scratch =
        ctx.shared->Alloc<double>(dtw::CompressedDtwScratchSize(rho));
    // The unconstrained scratch (2*(2d+2) doubles, d <= a few hundred)
    // still fits the 64 KiB arena; fall back to heap if it ever does not.
    std::vector<double> heap_scratch;
    if (scratch == nullptr) {
      heap_scratch.resize(dtw::CompressedDtwScratchSize(rho));
      scratch = heap_scratch.data();
    }
    for (long t = ctx.block_id; t < t_count; t += ctx.grid_dim) {
      dist[t] = dtw::CompressedDtw(qv, series.data() + t, d, rho, scratch);
    }
  });
  if (stats != nullptr) {
    stats->candidates_total += static_cast<std::uint64_t>(t_count);
    stats->candidates_verified += static_cast<std::uint64_t>(t_count);
    stats->verify_seconds += timer.ElapsedSeconds();
  }

  timer.Reset();
  std::vector<Neighbor> cands;
  cands.reserve(t_count);
  for (long t = 0; t < t_count; ++t) cands.push_back(Neighbor{t, dist[t]});
  out.neighbors = KSelectSmallest(std::move(cands), k);
  if (stats != nullptr) stats->select_seconds += timer.ElapsedSeconds();
  return out;
}

// UCR-suite style sequential scan: LB_Keogh cascade against the running
// k-th best, then early-abandoning banded DTW.
ItemQueryResult CpuScanOneItem(const std::vector<double>& series,
                               const SmilerConfig& cfg, int d, long t_count,
                               int k, SearchStats* stats) {
  ItemQueryResult out;
  out.d = d;
  if (t_count <= 0) return out;
  const double* q = series.data() + series.size() - d;
  const dtw::Envelope env_q = dtw::ComputeEnvelope(q, d, cfg.rho);
  const dtw::Envelope env_c =
      dtw::ComputeEnvelope(series.data(), series.size(), cfg.rho);

  WallTimer timer;
  // Max-heap of the current k best (front = worst of the best).
  std::vector<Neighbor> heap;
  heap.reserve(k + 1);
  auto worse = [](const Neighbor& a, const Neighbor& b) {
    return a.dist < b.dist;
  };
  double tau = kInf;
  std::uint64_t verified = 0;

  for (long t = 0; t < t_count; ++t) {
    const double* c = series.data() + t;
    if (static_cast<int>(heap.size()) >= k) {
      // Cascade: cheap bound first, tighter one only if needed.
      if (dtw::Lbeq(env_q, c, d) > tau) continue;
      if (dtw::LbKeoghAligned(env_c, t, q, 0, d) > tau) continue;
    }
    const double dist = dtw::EarlyAbandonDtw(q, c, d, cfg.rho, tau);
    ++verified;
    if (dist > tau) continue;
    heap.push_back(Neighbor{t, dist});
    std::push_heap(heap.begin(), heap.end(), worse);
    if (static_cast<int>(heap.size()) > k) {
      std::pop_heap(heap.begin(), heap.end(), worse);
      heap.pop_back();
    }
    if (static_cast<int>(heap.size()) >= k) tau = heap.front().dist;
  }
  std::sort(heap.begin(), heap.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.t < b.t;
  });
  out.neighbors = std::move(heap);
  if (stats != nullptr) {
    stats->candidates_total += static_cast<std::uint64_t>(t_count);
    stats->candidates_verified += verified;
    stats->verify_seconds += timer.ElapsedSeconds();
  }
  return out;
}

}  // namespace

Result<SuffixKnnResult> ScanSearch(simgpu::Device* device,
                                   const ts::TimeSeries& history,
                                   const SmilerConfig& config, int k,
                                   int reserve_horizon, ScanMethod method,
                                   SearchStats* stats) {
  SMILER_RETURN_NOT_OK(config.Validate());
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (reserve_horizon < 0) {
    return Status::InvalidArgument("reserve_horizon must be >= 0");
  }
  if (method != ScanMethod::kFastCpuScan && device == nullptr) {
    return Status::InvalidArgument("GPU scan methods require a device");
  }
  const long n = static_cast<long>(history.size());
  if (n < config.MasterQueryLength()) {
    return Status::InvalidArgument("history shorter than the master query");
  }

  SuffixKnnResult result;
  result.items.reserve(config.elv.size());
  for (int d : config.elv) {
    const long t_count = std::max<long>(0, n - d - reserve_horizon + 1);
    switch (method) {
      case ScanMethod::kFastGpuScan:
        result.items.push_back(GpuScanOneItem(device, history.values(),
                                              config, d, t_count, k,
                                              /*banded=*/true, stats));
        break;
      case ScanMethod::kGpuScan:
        result.items.push_back(GpuScanOneItem(device, history.values(),
                                              config, d, t_count, k,
                                              /*banded=*/false, stats));
        break;
      case ScanMethod::kFastCpuScan:
        result.items.push_back(
            CpuScanOneItem(history.values(), config, d, t_count, k, stats));
        break;
    }
  }
  return result;
}

}  // namespace index
}  // namespace smiler
