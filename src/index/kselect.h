#ifndef SMILER_INDEX_KSELECT_H_
#define SMILER_INDEX_KSELECT_H_

#include <vector>

#include "index/knn_result.h"

namespace smiler {
namespace index {

/// \brief Selects the k smallest-distance neighbors from \p candidates,
/// returned in ascending distance order (ties broken by segment start).
///
/// Implements distributive-partitioning k-selection (Alabi et al. [3], the
/// paper's GPU k-selection) with the paper's two tweaks: it serves one
/// query per invocation (one block handles one k-selection) and returns
/// all k smallest elements rather than only the k-th. Runs in O(n)
/// expected time by histogramming distances into buckets and recursing
/// into the bucket containing the k-th element.
///
/// When candidates.size() <= k, returns all candidates sorted.
std::vector<Neighbor> KSelectSmallest(std::vector<Neighbor> candidates,
                                      int k);

}  // namespace index
}  // namespace smiler

#endif  // SMILER_INDEX_KSELECT_H_
