#ifndef SMILER_INDEX_CSG_H_
#define SMILER_INDEX_CSG_H_

namespace smiler {
namespace index {

/// \brief Window geometry of the SMiLer index (DualMatch framework, §4.3).
///
/// The historical series C is cut into disjoint windows DW_r covering
/// positions [r*omega, (r+1)*omega). The master query MQ of length d_max is
/// cut into sliding windows in time-reversed order: SW_b covers MQ
/// positions [d_max - b - omega, d_max - b), so SW_0 is the most recent
/// window and appending a point shifts every logical label by one while
/// the windows' values stay put — the key to the continuous-query reuse
/// (Remark 1).
///
/// A Catenated Sliding Window Group CSG_{i,b} = {SW_b, SW_{b+omega}, ...}
/// is the maximal non-overlapping chain of item query IQ_i starting at
/// SW_b (Definition 4.2); aligning it with contiguous disjoint windows
/// pins IQ_i against exactly one candidate segment (Theorem 4.2).

/// Number of sliding windows of a master query of length \p d_max.
constexpr int NumSlidingWindows(int d_max, int omega) {
  return d_max - omega + 1;
}

/// First (most recent) MQ position covered by SW_b.
constexpr int SlidingWindowBegin(int d_max, int omega, int b) {
  return d_max - b - omega;
}

/// |CSG_{i,b}|: number of non-overlapping sliding windows of an item query
/// of length \p d chained from SW_b (Definition 4.2). May be 0 when
/// b > d - omega (no full window fits); such (d, b) pairs yield no bound.
constexpr int CsgSize(int d, int b, int omega) { return (d - b) / omega; }

/// Lemma 4.1 / Eqn (4): start position t of the candidate segment C_{t,d}
/// pinned by aligning CSG_{i,b} (of size \p m) with disjoint windows whose
/// rightmost member is DW_r.
constexpr long SegmentStart(int omega, int d, int b, long r, int m) {
  return (r - m + 1) * static_cast<long>(omega) - ((d - b) % omega);
}

/// \brief The unique CSG alignment for a given segment (Theorem 4.2).
struct CsgAlignment {
  int b = 0;   ///< CSG identifier (index of its rightmost sliding window).
  long r = 0;  ///< Rightmost aligned disjoint window.
  int m = 0;   ///< Number of aligned windows, |CSG_{i,b}|.
};

/// Inverts Lemma 4.1: the one alignment pinning segment C_{t,d}.
constexpr CsgAlignment AlignmentFor(long t, int d, int omega) {
  const int b = static_cast<int>((t + d) % omega);
  const long r = (t + d) / omega - 1;
  return CsgAlignment{b, r, CsgSize(d, b, omega)};
}

}  // namespace index
}  // namespace smiler

#endif  // SMILER_INDEX_CSG_H_
