#ifndef SMILER_INDEX_KNN_RESULT_H_
#define SMILER_INDEX_KNN_RESULT_H_

#include <cstdint>
#include <vector>

namespace smiler {
namespace index {

/// \brief One retrieved nearest neighbor: the segment C_{t,d} (start
/// position \p t in the historical series) with its exact banded DTW
/// distance to the item query.
struct Neighbor {
  long t = 0;
  double dist = 0.0;

  bool operator==(const Neighbor&) const = default;
};

/// \brief kNN result of a single item query (one entry of the ELV).
struct ItemQueryResult {
  /// Item query length d (the ELV entry this answers).
  int d = 0;
  /// Neighbors in ascending DTW order; size() == requested k when at least
  /// k candidate segments exist, fewer otherwise.
  std::vector<Neighbor> neighbors;
};

/// \brief Result of one Suffix kNN Search: one ItemQueryResult per ELV
/// entry, in ELV (ascending d) order.
struct SuffixKnnResult {
  std::vector<ItemQueryResult> items;
};

/// \brief Instrumentation of one search, powering Table 3 / Fig 7 / Fig 8.
struct SearchStats {
  /// Candidate segments considered across all item queries.
  std::uint64_t candidates_total = 0;
  /// Candidates whose lower bound did not exceed the threshold and were
  /// verified with a full DTW computation.
  std::uint64_t candidates_verified = 0;
  /// Wall seconds spent computing lower bounds (index path: group level).
  double lower_bound_seconds = 0.0;
  /// Wall seconds spent verifying unfiltered candidates with exact DTW.
  double verify_seconds = 0.0;
  /// Wall seconds spent in k-selection.
  double select_seconds = 0.0;

  void Add(const SearchStats& other) {
    candidates_total += other.candidates_total;
    candidates_verified += other.candidates_verified;
    lower_bound_seconds += other.lower_bound_seconds;
    verify_seconds += other.verify_seconds;
    select_seconds += other.select_seconds;
  }
};

}  // namespace index
}  // namespace smiler

#endif  // SMILER_INDEX_KNN_RESULT_H_
