#ifndef SMILER_INDEX_KNN_RESULT_H_
#define SMILER_INDEX_KNN_RESULT_H_

#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace smiler {
namespace index {

/// \brief One retrieved nearest neighbor: the segment C_{t,d} (start
/// position \p t in the historical series) with its exact banded DTW
/// distance to the item query.
struct Neighbor {
  long t = 0;
  double dist = 0.0;

  bool operator==(const Neighbor&) const = default;
};

/// \brief kNN result of a single item query (one entry of the ELV).
struct ItemQueryResult {
  /// \brief Item query length d (the ELV entry this answers).
  int d = 0;
  /// \brief Neighbors in ascending DTW order; size() == requested k when
  /// at least k candidate segments exist, fewer otherwise.
  std::vector<Neighbor> neighbors;
};

/// \brief Result of one Suffix kNN Search: one ItemQueryResult per ELV
/// entry, in ELV (ascending d) order.
struct SuffixKnnResult {
  std::vector<ItemQueryResult> items;
};

/// \brief Instrumentation of one search, powering Table 3 / Fig 7 / Fig 8.
///
/// A thin per-call view over the `index.*` entries of the global metrics
/// registry: `SmilerIndex::Search` fills one of these and then mirrors it
/// into the registry via Publish(), so callers that aggregated SearchStats
/// by hand keep working while dashboards read the registry.
struct SearchStats {
  /// \brief Candidate segments considered across all item queries.
  std::uint64_t candidates_total = 0;
  /// \brief Candidates whose lower bound did not exceed the threshold at
  /// filtering time and therefore paid a (possibly early-abandoned) DTW
  /// computation.
  std::uint64_t candidates_verified = 0;
  /// \brief Subset of candidates_verified whose DTW was cut short by the
  /// early-abandon cascade (their distance provably exceeded the running
  /// threshold tau before the warping matrix completed).
  std::uint64_t candidates_abandoned = 0;
  /// \brief Candidates that survived the static filter but were skipped
  /// without any DTW work because tau had tightened below their lower
  /// bound by the time the verify kernel reached them.
  std::uint64_t candidates_pruned_late = 0;
  /// \brief Wall seconds spent computing lower bounds (index path: group
  /// level).
  double lower_bound_seconds = 0.0;
  /// \brief Wall seconds spent verifying unfiltered candidates with exact
  /// DTW.
  double verify_seconds = 0.0;
  /// \brief Wall seconds spent in k-selection.
  double select_seconds = 0.0;

  /// \brief Fraction of candidates eliminated by the filtering phase
  /// (0 when nothing was considered).
  double PruningRatio() const {
    return candidates_total == 0
               ? 0.0
               : 1.0 - static_cast<double>(candidates_verified) /
                           static_cast<double>(candidates_total);
  }

  void Add(const SearchStats& other) {
    candidates_total += other.candidates_total;
    candidates_verified += other.candidates_verified;
    candidates_abandoned += other.candidates_abandoned;
    candidates_pruned_late += other.candidates_pruned_late;
    lower_bound_seconds += other.lower_bound_seconds;
    verify_seconds += other.verify_seconds;
    select_seconds += other.select_seconds;
  }

  /// \brief Mirrors this search's numbers into the global metrics
  /// registry: the `index.candidates_*` counters, the per-phase
  /// `index.search.{lower_bound,verify,select}_seconds` histograms, and
  /// the `index.pruning_ratio` gauge.
  void Publish() const {
    obs::Registry& reg = obs::Registry::Global();
    static obs::Counter& total = reg.GetCounter("index.candidates_total");
    static obs::Counter& verified =
        reg.GetCounter("index.candidates_verified");
    static obs::Counter& abandoned =
        reg.GetCounter("index.verify.early_abandoned");
    static obs::Counter& pruned_late =
        reg.GetCounter("index.verify.pruned_late");
    static obs::Histogram& lb =
        reg.GetHistogram("index.search.lower_bound_seconds");
    static obs::Histogram& verify =
        reg.GetHistogram("index.search.verify_seconds");
    static obs::Histogram& select =
        reg.GetHistogram("index.search.select_seconds");
    static obs::Gauge& pruning = reg.GetGauge("index.pruning_ratio");
    static obs::Gauge& search_pruning = reg.GetGauge("search.pruning_ratio");
    total.Increment(candidates_total);
    verified.Increment(candidates_verified);
    abandoned.Increment(candidates_abandoned);
    pruned_late.Increment(candidates_pruned_late);
    lb.Observe(lower_bound_seconds);
    verify.Observe(verify_seconds);
    select.Observe(select_seconds);
    if (candidates_total > 0) {
      pruning.Set(PruningRatio());
      search_pruning.Set(PruningRatio());
    }
  }
};

}  // namespace index
}  // namespace smiler

#endif  // SMILER_INDEX_KNN_RESULT_H_
