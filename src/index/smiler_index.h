#ifndef SMILER_INDEX_SMILER_INDEX_H_
#define SMILER_INDEX_SMILER_INDEX_H_

#include <cstddef>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "dtw/envelope.h"
#include "index/knn_result.h"
#include "index/lb_arena.h"
#include "simgpu/device.h"
#include "ts/series.h"

namespace smiler {
namespace index {

/// Which lower bound the filtering phase uses (Table 3 ablation).
enum class LowerBoundMode {
  kLbeq,  ///< query-envelope bound only
  kLbec,  ///< candidate-envelope bound only
  kLben,  ///< max of both (the paper's enhanced bound, the default)
};

/// Returns "LBEQ" / "LBEC" / "LBen".
const char* LowerBoundModeName(LowerBoundMode mode);

/// \brief Options of one Suffix kNN Search invocation.
struct SuffixSearchOptions {
  /// Neighbors to return per item query (callers pass max(EKV) and slice
  /// prefixes for smaller ensemble entries, Section 4.1).
  int k = 32;
  /// Candidate segments must have their h-step-ahead value already
  /// observed: only t <= now - d + 1 - reserve_horizon qualifies. This also
  /// excludes the query segment itself from its own result.
  int reserve_horizon = 1;
  /// Lower bound used for filtering.
  LowerBoundMode bound = LowerBoundMode::kLben;
  /// Reuse the previous step's kNN to derive the filter threshold
  /// (Section 4.3.3, continuous prediction). The first search after Build
  /// always falls back to the k-th-smallest-lower-bound seeding.
  bool reuse_previous_threshold = true;
};

/// \brief Per-item-query lower-bound arrays produced by the group level of
/// the index (or the direct method): entry [t] bounds DTW(IQ_i, C_{t,d_i}).
struct LowerBoundTable {
  /// lb_eq[i][t] = sum of per-window LBEQ terms (Eqn 5 top row).
  std::vector<std::vector<double>> lb_eq;
  /// lb_ec[i][t] = sum of per-window LBEC terms (Eqn 5 bottom row).
  std::vector<std::vector<double>> lb_ec;

  /// The bound value under \p mode for item query \p i, candidate \p t.
  double Bound(LowerBoundMode mode, std::size_t i, std::size_t t) const {
    switch (mode) {
      case LowerBoundMode::kLbeq:
        return lb_eq[i][t];
      case LowerBoundMode::kLbec:
        return lb_ec[i][t];
      case LowerBoundMode::kLben:
        return lb_eq[i][t] > lb_ec[i][t] ? lb_eq[i][t] : lb_ec[i][t];
    }
    return 0.0;
  }
};

/// \brief Phase-1 state of a split Search(): the validated options plus
/// the group-level lower-bound table, awaiting the per-item verify
/// fan-out. Produced by BeginSearch and consumed exactly once by
/// FinishSearch on the same index, with no index mutation in between
/// (Append invalidates it).
struct PendingSearch {
  SuffixSearchOptions options;
  LowerBoundTable table;
  /// lower_bound_seconds is filled by BeginSearch; FinishSearch adds the
  /// filter/verify/select phases and publishes the merged stats.
  SearchStats stats;
};

/// \brief Complete serializable state of a SmilerIndex.
///
/// Everything the incremental-maintenance paths (Remark 1) have built up:
/// the history, both envelopes, the ring-buffer head, the posting-list
/// arena (raw layout, so a restore is a straight buffer adoption), and the
/// previous step's kNN threshold seeds. Restoring from a snapshot skips
/// the window-level build entirely and — because incremental state is
/// adopted verbatim rather than recomputed — subsequent searches are
/// bitwise-identical to an index that never restarted.
struct IndexSnapshot {
  std::vector<double> series;
  std::vector<double> env_c_upper, env_c_lower;    ///< history envelope
  std::vector<double> env_mq_upper, env_mq_lower;  ///< master-query envelope
  int head = 0;           ///< physical ring row of logical SW_0
  long cols = 0;          ///< complete disjoint windows R
  long arena_stride = 0;  ///< physical-row stride of the posting arena
  std::vector<double> arena;  ///< S * 2 * arena_stride doubles
  std::vector<std::vector<Neighbor>> prev_knn;  ///< per-ELV threshold seeds
};

/// \brief The SMiLer Index (Section 4.3): a per-sensor two-level
/// inverted-like index over (simulated) GPU memory answering Continuous
/// Suffix kNN Searches under banded DTW.
///
/// Window level: for every sliding window SW_b of the master query and
/// every disjoint window DW_r of the history, the posting lists store the
/// partial bounds LBEQ(SW_b, DW_r) and LBEC(SW_b, DW_r). Rows live in a
/// ring buffer so that appending an observation only (a) inserts one new
/// row and (b) refreshes the rho rows whose query-envelope entries changed
/// (Remark 1) — everything else is reused.
///
/// Group level: a one-pass shift-sum over each CSG's posting lists yields
/// the window enhanced lower bound LBw(IQ_i, C_{t,d_i}) for every item
/// query and candidate simultaneously (Algorithm 1 / Remark 2).
///
/// Search then follows filter (threshold tau_i) -> verify (compressed-
/// matrix banded DTW) -> select (distributive-partitioning k-selection).
class SmilerIndex {
 public:
  /// Builds the index for one sensor over \p history (values are used
  /// as-is; z-normalize upstream). Requires |history| >= MasterQueryLength
  /// + omega and a valid \p config. Device memory for the series and the
  /// posting lists is charged to \p device.
  static Result<SmilerIndex> Build(simgpu::Device* device,
                                   const ts::TimeSeries& history,
                                   const SmilerConfig& config);

  ~SmilerIndex();
  SmilerIndex(SmilerIndex&& other) noexcept;
  SmilerIndex& operator=(SmilerIndex&& other) noexcept;
  SmilerIndex(const SmilerIndex&) = delete;
  SmilerIndex& operator=(const SmilerIndex&) = delete;

  /// Exports the complete mutable state for checkpointing (see
  /// IndexSnapshot). O(state size) copies; no device work.
  IndexSnapshot Snapshot() const;

  /// Reconstructs an index from \p snapshot without re-indexing: the
  /// posting-list arena and envelopes are adopted verbatim instead of
  /// being recomputed, so the restored index is bitwise-identical to the
  /// snapshotted one. \p config must be the configuration the snapshot
  /// was taken under (dimension mismatches fail with InvalidArgument).
  /// Device memory for the restored state is charged to \p device.
  static Result<SmilerIndex> Restore(simgpu::Device* device,
                                     const SmilerConfig& config,
                                     IndexSnapshot snapshot);

  /// Ingests a newly observed value: appends to the history, shifts the
  /// master query one step, and incrementally maintains the window level
  /// (Remark 1). Cost O(rho * R + S * rho) vs O(S * R) for a rebuild.
  Status Append(double value);

  /// Runs the Continuous Suffix kNN Search for the current master query
  /// (the last MasterQueryLength() observations). Returns one
  /// ItemQueryResult per ELV entry. \p stats, when non-null, receives
  /// phase timings and candidate counts.
  Result<SuffixKnnResult> Search(const SuffixSearchOptions& options,
                                 SearchStats* stats = nullptr);

  /// Phase 1 of a split Search: validates \p options and runs the
  /// group-level lower-bound pass (the lb_filter stage). The returned
  /// state feeds FinishSearch; Search() is exactly BeginSearch +
  /// FinishSearch, so a split invocation is bitwise-identical to the
  /// monolithic one. The task-graph predict pipeline runs the two
  /// phases as separate nodes so one sensor's verify overlaps another's
  /// lower bounds.
  Result<PendingSearch> BeginSearch(const SuffixSearchOptions& options);

  /// Phase 2: the per-item filter → verify → select fan-out (the
  /// dtw_verify stage) over \p pending's lower bounds, merging and
  /// publishing the search stats. Mutates the per-item threshold seeds
  /// (prev_knn_), so calls for the same index must not race.
  Result<SuffixKnnResult> FinishSearch(PendingSearch pending,
                                       SearchStats* stats = nullptr);

  /// \brief Group-level pass alone: lower bounds for every item query and
  /// candidate via the two-level index (the "SMiLer-Idx" side of Fig 8).
  /// Fails when the device rejects the kernel launch (a failure here must
  /// surface instead of silently yielding all-zero bounds).
  Result<LowerBoundTable> GroupLowerBounds(int reserve_horizon) const;

  /// \brief The strawman of Fig 8 ("SMiLer-Dir"): computes
  /// LBen(IQ_i, C_{t,d_i}) directly from full-length envelopes for every
  /// item query and candidate, without the window-level index.
  Result<LowerBoundTable> DirectLowerBounds(int reserve_horizon) const;

  /// Number of valid candidate segments for ELV entry \p i under
  /// \p reserve_horizon (0 when the history is too short).
  long NumCandidates(std::size_t elv_index, int reserve_horizon) const;

  /// The device this index charges memory to and launches kernels on
  /// (shared with the engine's GP Gram evaluation — one backend selection
  /// governs the whole predict path).
  simgpu::Device* device() const { return device_; }

  /// The sensor's full history (z-normalized values as supplied).
  const std::vector<double>& series() const { return series_; }
  /// Timestamp of the latest observation.
  long now() const { return static_cast<long>(series_.size()) - 1; }
  const SmilerConfig& config() const { return cfg_; }

  /// Bytes currently charged against the device for this index (series,
  /// envelopes, posting lists). Powers the Fig 12(c) capacity study.
  std::size_t MemoryFootprintBytes() const { return accounted_bytes_; }

  /// Number of sliding windows S (exposed for tests).
  int num_sliding_windows() const { return S_; }
  /// Number of complete disjoint windows R (exposed for tests).
  long num_disjoint_windows() const { return R_; }

 private:
  SmilerIndex() = default;

  /// Pointer to the first value of the master query (last d_max values).
  const double* MqData() const {
    return series_.data() + series_.size() - d_max_;
  }
  /// Physical ring row of logical sliding window b.
  int PhysicalRow(int logical_b) const { return (head_ + logical_b) % S_; }

  /// Recomputes the full posting-list row of logical window \p b.
  /// \p eq_only skips the LBEC half (used by the Remark-1 refresh where
  /// only the query envelope changed).
  void ComputeRow(int logical_b, bool eq_only);
  /// Recomputes column \p r of row \p logical_b's LBEC half
  /// (candidate-envelope entries change when appends perturb the tail of
  /// env_c_). \p both also refreshes the LBEQ half (new DW columns).
  void ComputeColumnEntry(int logical_b, long r, bool both);
  /// Recomputes env_mq_ from the current master query from scratch.
  void RefreshMqEnvelope();
  /// Shifts env_mq_ one step after an append and repairs only the
  /// boundary-clamped head and the new-point tail (interior entries of the
  /// shifted window cover identical series values, so they move verbatim).
  void ShiftMqEnvelope();
  /// Filter -> sorted verify -> select for one ELV entry (the body of the
  /// per-item parallel loop in Search).
  Status SearchItem(std::size_t item, const LowerBoundTable& table,
                    const SuffixSearchOptions& options,
                    ItemQueryResult* out, SearchStats* item_stats);
  /// Re-charges the device with the current footprint delta.
  Status UpdateMemoryAccounting();

  SmilerConfig cfg_;
  simgpu::Device* device_ = nullptr;
  std::vector<double> series_;
  dtw::Envelope env_c_;   // global envelope of the history
  dtw::Envelope env_mq_;  // envelope of the current master query
  int d_max_ = 0;
  int S_ = 0;   // sliding windows per master query
  long R_ = 0;  // complete disjoint windows
  int head_ = 0;  // physical row of logical SW_0
  // Posting lists: one flat row-major arena holding both the LBEQ and
  // LBEC halves, indexed by physical row.
  LbArena lb_;
  // Previous step's kNN per item query (threshold reuse).
  std::vector<std::vector<Neighbor>> prev_knn_;
  std::size_t accounted_bytes_ = 0;
};

}  // namespace index
}  // namespace smiler

#endif  // SMILER_INDEX_SMILER_INDEX_H_
