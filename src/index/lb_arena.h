#ifndef SMILER_INDEX_LB_ARENA_H_
#define SMILER_INDEX_LB_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <vector>

namespace smiler {
namespace index {

/// \brief Flat storage for the window-level posting lists.
///
/// The LBEQ and LBEC tables are logically [S][R] matrices (one row per
/// physical sliding window, one column per disjoint window). Storing them
/// as vector<vector<double>> puts every row behind its own allocation, so
/// the group-level shift-sum — which walks rows column-by-column — chases
/// a pointer per element. The arena packs both tables into one contiguous
/// buffer laid out row-major with a shared physical-row stride:
///
///   row b:  [ LBEQ(b, 0) .. LBEQ(b, stride-1) | LBEC(b, 0) .. ]
///
/// i.e. each physical row owns 2*stride doubles, LBEQ half first. Both
/// halves of a row are adjacent, matching the access pattern of the
/// shift-sum (which consumes LBEQ and LBEC of the same row in lock-step).
///
/// The stride is the column capacity, kept a multiple of the chunk size
/// (the index passes omega) so that streaming appends — which add one
/// column every omega observations — trigger a re-layout only once per
/// chunk of columns, not per column.
class LbArena {
 public:
  /// (Re)initializes for \p rows physical rows and \p cols columns.
  /// \p chunk is the column-capacity granularity (>= 1).
  void Init(int rows, long cols, long chunk) {
    rows_ = rows;
    cols_ = 0;
    chunk_ = std::max<long>(1, chunk);
    stride_ = 0;
    data_.clear();
    EnsureCols(cols);
  }

  /// Grows the column capacity to hold \p cols columns, preserving the
  /// existing entries. New entries are zero-initialized.
  void EnsureCols(long cols) {
    if (cols <= cols_) return;
    if (cols > stride_) {
      const long new_stride = (cols + chunk_ - 1) / chunk_ * chunk_;
      std::vector<double> grown(static_cast<std::size_t>(rows_) * 2 *
                                    new_stride,
                                0.0);
      for (int b = 0; b < rows_; ++b) {
        const double* src = data_.data() +
                            static_cast<std::size_t>(b) * 2 * stride_;
        double* dst =
            grown.data() + static_cast<std::size_t>(b) * 2 * new_stride;
        std::copy(src, src + cols_, dst);
        std::copy(src + stride_, src + stride_ + cols_, dst + new_stride);
      }
      data_.swap(grown);
      stride_ = new_stride;
    }
    cols_ = cols;
  }

  double* EqRow(int phys) {
    return data_.data() + static_cast<std::size_t>(phys) * 2 * stride_;
  }
  const double* EqRow(int phys) const {
    return data_.data() + static_cast<std::size_t>(phys) * 2 * stride_;
  }
  double* EcRow(int phys) { return EqRow(phys) + stride_; }
  const double* EcRow(int phys) const { return EqRow(phys) + stride_; }

  int rows() const { return rows_; }
  long cols() const { return cols_; }
  long stride() const { return stride_; }

  /// Bytes backing the arena (device-memory accounting).
  std::size_t AllocatedBytes() const { return data_.size() * sizeof(double); }

  /// The flat backing buffer (rows * 2 * stride doubles), exposed for
  /// checkpointing: a restored arena must be bitwise-identical to the
  /// snapshotted one, so the raw layout round-trips as-is.
  const std::vector<double>& raw() const { return data_; }

  /// Re-adopts a previously exported layout verbatim. Returns false when
  /// the dimensions are inconsistent (stride not a positive multiple of
  /// \p chunk covering \p cols, or \p data not rows * 2 * stride doubles).
  bool Restore(int rows, long cols, long stride, long chunk,
               std::vector<double> data) {
    if (rows < 0 || cols < 0 || chunk < 1 || stride < cols ||
        stride % chunk != 0) {
      return false;
    }
    if (data.size() != static_cast<std::size_t>(rows) * 2 * stride) {
      return false;
    }
    rows_ = rows;
    cols_ = cols;
    chunk_ = chunk;
    stride_ = stride;
    data_ = std::move(data);
    return true;
  }

 private:
  int rows_ = 0;
  long cols_ = 0;
  long stride_ = 0;
  long chunk_ = 1;
  std::vector<double> data_;
};

}  // namespace index
}  // namespace smiler

#endif  // SMILER_INDEX_LB_ARENA_H_
