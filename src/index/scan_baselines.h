#ifndef SMILER_INDEX_SCAN_BASELINES_H_
#define SMILER_INDEX_SCAN_BASELINES_H_

#include "common/config.h"
#include "common/status.h"
#include "index/knn_result.h"
#include "simgpu/device.h"
#include "ts/series.h"

namespace smiler {
namespace index {

/// Competitor search methods of Section 6.2.1.
enum class ScanMethod {
  /// Banded (Sakoe-Chiba) DTW against every candidate on the device, then
  /// GPU k-selection.
  kFastGpuScan,
  /// Unconstrained DTW against every candidate on the device (Sart et al.
  /// [60]); the extra O(d/rho) work makes it strictly slower.
  kGpuScan,
  /// Sequential CPU scan with the LB_Keogh pruning cascade and
  /// early-abandoning banded DTW (UCR-suite style, [41, 54]).
  kFastCpuScan,
};

/// Returns "FastGPUScan" / "GPUScan" / "FastCPUScan".
const char* ScanMethodName(ScanMethod method);

/// \brief Runs the Suffix kNN Search over \p history by scanning, without
/// the SMiLer index. Answers the same queries as SmilerIndex::Search: one
/// ItemQueryResult (k nearest segments by DTW) per ELV entry, candidates
/// restricted to t <= |history| - d - reserve_horizon.
///
/// \p device is used by the GPU methods and ignored by kFastCpuScan.
Result<SuffixKnnResult> ScanSearch(simgpu::Device* device,
                                   const ts::TimeSeries& history,
                                   const SmilerConfig& config, int k,
                                   int reserve_horizon, ScanMethod method,
                                   SearchStats* stats = nullptr);

}  // namespace index
}  // namespace smiler

#endif  // SMILER_INDEX_SCAN_BASELINES_H_
