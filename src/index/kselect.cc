#include "index/kselect.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

namespace smiler {
namespace index {

namespace {

constexpr int kNumBuckets = 256;

bool NeighborLess(const Neighbor& a, const Neighbor& b) {
  if (a.dist != b.dist) return a.dist < b.dist;
  return a.t < b.t;
}

// Distributive partitioning: histogram `work` into equal-width distance
// buckets, locate the bucket holding the k-th smallest, keep every element
// strictly below it, and recurse into that bucket. Falls back to sorting
// once the active range is tiny or degenerate (all-equal distances).
void SelectRecursive(std::vector<Neighbor>& work, int k,
                     std::vector<Neighbor>* out) {
  while (true) {
    if (k <= 0 || work.empty()) return;
    if (static_cast<int>(work.size()) <= k ||
        work.size() <= 2 * kNumBuckets) {
      std::sort(work.begin(), work.end(), NeighborLess);
      const int take = std::min<int>(k, static_cast<int>(work.size()));
      out->insert(out->end(), work.begin(), work.begin() + take);
      return;
    }

    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const Neighbor& n : work) {
      lo = std::min(lo, n.dist);
      hi = std::max(hi, n.dist);
    }
    if (!(hi > lo) || !std::isfinite(hi - lo)) {
      // Degenerate range (all equal, or infinities): sort directly.
      std::sort(work.begin(), work.end(), NeighborLess);
      const int take = std::min<int>(k, static_cast<int>(work.size()));
      out->insert(out->end(), work.begin(), work.begin() + take);
      return;
    }

    const double inv_width = kNumBuckets / (hi - lo);
    std::array<int, kNumBuckets> counts{};
    auto bucket_of = [&](double d) {
      int b = static_cast<int>((d - lo) * inv_width);
      return std::min(b, kNumBuckets - 1);
    };
    for (const Neighbor& n : work) counts[bucket_of(n.dist)] += 1;

    // Find the bucket containing the k-th smallest element.
    int pivot_bucket = 0;
    int below = 0;  // elements in buckets strictly before pivot_bucket
    for (; pivot_bucket < kNumBuckets; ++pivot_bucket) {
      if (below + counts[pivot_bucket] >= k) break;
      below += counts[pivot_bucket];
    }

    // Elements below the pivot bucket are all selected; sort just them.
    std::vector<Neighbor> selected;
    std::vector<Neighbor> pivot;
    selected.reserve(below);
    pivot.reserve(counts[pivot_bucket]);
    for (const Neighbor& n : work) {
      const int b = bucket_of(n.dist);
      if (b < pivot_bucket) {
        selected.push_back(n);
      } else if (b == pivot_bucket) {
        pivot.push_back(n);
      }
    }
    std::sort(selected.begin(), selected.end(), NeighborLess);
    out->insert(out->end(), selected.begin(), selected.end());

    // Recurse (iteratively) into the pivot bucket for the remainder.
    k -= below;
    work = std::move(pivot);
  }
}

}  // namespace

std::vector<Neighbor> KSelectSmallest(std::vector<Neighbor> candidates,
                                      int k) {
  std::vector<Neighbor> out;
  if (k <= 0) return out;
  out.reserve(std::min<std::size_t>(candidates.size(), k));
  SelectRecursive(candidates, k, &out);
  return out;
}

}  // namespace index
}  // namespace smiler
