#include "serve/checkpoint.h"

#include <cstdio>
#include <fstream>

#include "chaos/fault.h"
#include "core/snapshot_codec.h"

namespace smiler {
namespace serve {

Status Checkpoint::Save(const std::string& path,
                        const std::vector<core::EngineSnapshot>& engines) {
  // Warm restarts keep the raw arena representation: a checkpoint must
  // round-trip byte-exactly (Save -> Load -> Save reproduces identical
  // files); the lossy-but-monotone quantized encoding is reserved for
  // the cold-tier spill segments (store::TieredStateStore).
  const std::string blob =
      core::SerializeSnapshotBlob(engines, core::ArenaEncoding::kRaw);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) {
      return Status::Internal("cannot open '" + tmp + "' for writing");
    }
    if (SMILER_FAULT_TRIGGERED("ckpt.write")) {
      // Torn write: half the blob reaches the .tmp file, the write fails,
      // and — crucially — the previous checkpoint at `path` is untouched,
      // exactly like a crash mid-write under the atomic-rename protocol.
      file.write(blob.data(), static_cast<std::streamsize>(blob.size() / 2));
      file.flush();
      return Status::Internal("write to '" + tmp + "' failed");
    }
    file.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    file.flush();
    if (!file.good()) {
      return Status::Internal("write to '" + tmp + "' failed");
    }
  }
  SMILER_INJECT_FAULT("ckpt.rename", Status::Internal("rename '" + tmp +
                                                      "' -> '" + path +
                                                      "' failed"));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("rename '" + tmp + "' -> '" + path + "' failed");
  }
  return Status::OK();
}

Result<std::vector<core::EngineSnapshot>> Checkpoint::Load(
    const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open checkpoint '" + path + "'");
  }
  std::string blob((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  if (SMILER_FAULT_TRIGGERED("ckpt.read_short") && !blob.empty()) {
    // Short read: the parser below must turn the truncation into a
    // Status error — never an OK result carrying a partial fleet.
    blob.resize(blob.size() / 2);
  }
  return core::ParseSnapshotBlob(blob.data(), blob.size(), path);
}

}  // namespace serve
}  // namespace smiler
