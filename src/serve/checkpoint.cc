#include "serve/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "chaos/fault.h"

namespace smiler {
namespace serve {

namespace {

constexpr char kMagic[8] = {'S', 'M', 'L', 'R', 'C', 'K', 'P', 'T'};

std::uint64_t Fnv1a(const char* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

// --- serialization primitives (fixed-width little-endian; the project
// targets little-endian hosts, matching the raw-double CSV/bench IO) ---

template <typename T>
void Put(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

void PutF64Vec(std::string* out, const std::vector<double>& v) {
  Put<std::uint64_t>(out, v.size());
  out->append(reinterpret_cast<const char*>(v.data()),
              v.size() * sizeof(double));
}

void PutI32Vec(std::string* out, const std::vector<int>& v) {
  Put<std::uint64_t>(out, v.size());
  for (int x : v) Put<std::int32_t>(out, x);
}

/// Bounds-checked reader over a serialized payload. Every Get sets
/// `ok = false` on truncation instead of reading past the end; callers
/// check once after a batch of reads.
struct Cursor {
  const char* p;
  const char* end;
  bool ok = true;

  template <typename T>
  T Get() {
    T v{};
    if (!ok || end - p < static_cast<std::ptrdiff_t>(sizeof(T))) {
      ok = false;
      return v;
    }
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    return v;
  }

  /// Reads a u64 count bounded by the bytes remaining / \p elem_bytes —
  /// a corrupt count can never trigger a huge allocation.
  std::size_t GetCount(std::size_t elem_bytes) {
    const std::uint64_t n = Get<std::uint64_t>();
    if (!ok || n > static_cast<std::uint64_t>(end - p) / elem_bytes) {
      ok = false;
      return 0;
    }
    return static_cast<std::size_t>(n);
  }

  std::vector<double> GetF64Vec() {
    const std::size_t n = GetCount(sizeof(double));
    std::vector<double> v(n);
    if (ok && n > 0) {
      std::memcpy(v.data(), p, n * sizeof(double));
      p += n * sizeof(double);
    }
    return v;
  }

  std::vector<int> GetI32Vec() {
    const std::size_t n = GetCount(sizeof(std::int32_t));
    std::vector<int> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = Get<std::int32_t>();
    return v;
  }
};

void PutPrediction(std::string* out, const predictors::Prediction& p) {
  Put<double>(out, p.mean);
  Put<double>(out, p.variance);
}

predictors::Prediction GetPrediction(Cursor* c) {
  predictors::Prediction p;
  p.mean = c->Get<double>();
  p.variance = c->Get<double>();
  return p;
}

std::string SerializeEngine(const core::EngineSnapshot& snap) {
  std::string out;
  // Configuration.
  const SmilerConfig& cfg = snap.config;
  Put<std::int32_t>(&out, cfg.rho);
  Put<std::int32_t>(&out, cfg.omega);
  Put<std::int32_t>(&out, cfg.horizon);
  Put<std::int32_t>(&out, cfg.online_cg_steps);
  Put<std::int32_t>(&out, cfg.initial_cg_steps);
  Put<std::uint8_t>(&out, cfg.gp_warm_start);
  Put<std::uint8_t>(&out, cfg.parallel_prediction);
  Put<std::uint8_t>(&out, cfg.use_ensemble);
  Put<std::uint8_t>(&out, cfg.self_adaptive_weights);
  Put<std::uint8_t>(&out, cfg.sleep_and_recovery);
  PutI32Vec(&out, cfg.elv);
  PutI32Vec(&out, cfg.ekv);
  Put<std::uint8_t>(&out, static_cast<std::uint8_t>(snap.kind));
  // Index state.
  const index::IndexSnapshot& idx = snap.index;
  PutF64Vec(&out, idx.series);
  PutF64Vec(&out, idx.env_c_upper);
  PutF64Vec(&out, idx.env_c_lower);
  PutF64Vec(&out, idx.env_mq_upper);
  PutF64Vec(&out, idx.env_mq_lower);
  Put<std::int32_t>(&out, idx.head);
  Put<std::int64_t>(&out, idx.cols);
  Put<std::int64_t>(&out, idx.arena_stride);
  PutF64Vec(&out, idx.arena);
  Put<std::uint64_t>(&out, idx.prev_knn.size());
  for (const auto& knn : idx.prev_knn) {
    Put<std::uint64_t>(&out, knn.size());
    for (const index::Neighbor& nb : knn) {
      Put<std::int64_t>(&out, nb.t);
      Put<double>(&out, nb.dist);
    }
  }
  // Ensemble state.
  Put<std::uint64_t>(&out, snap.ensemble.cells.size());
  for (const auto& cell : snap.ensemble.cells) {
    Put<double>(&out, cell.weight);
    Put<std::uint8_t>(&out, cell.awake);
    Put<std::int32_t>(&out, cell.counter);
    Put<std::int32_t>(&out, cell.remaining);
    Put<std::uint8_t>(&out, cell.just_recovered);
  }
  Put<double>(&out, snap.ensemble.z_ewma);
  Put<double>(&out, snap.ensemble.vif);
  // GP warm-start kernels.
  Put<std::uint64_t>(&out, snap.gp_kernels.size());
  for (const auto& kernel : snap.gp_kernels) {
    Put<std::uint8_t>(&out, kernel.has_value());
    if (kernel.has_value()) {
      for (double lp : *kernel) Put<double>(&out, lp);
    }
  }
  // Pending forecasts.
  Put<std::uint64_t>(&out, snap.pending.size());
  for (const auto& pf : snap.pending) {
    Put<std::int64_t>(&out, pf.target_time);
    Put<std::int32_t>(&out, pf.grid.rows);
    Put<std::int32_t>(&out, pf.grid.cols);
    for (std::size_t i = 0; i < pf.grid.preds.size(); ++i) {
      PutPrediction(&out, pf.grid.preds[i]);
      Put<std::uint8_t>(&out, pf.grid.has[i]);
    }
    PutPrediction(&out, pf.raw);
  }
  return out;
}

Result<core::EngineSnapshot> ParseEngine(const char* data, std::size_t size) {
  Cursor c{data, data + size};
  core::EngineSnapshot snap;
  SmilerConfig& cfg = snap.config;
  cfg.rho = c.Get<std::int32_t>();
  cfg.omega = c.Get<std::int32_t>();
  cfg.horizon = c.Get<std::int32_t>();
  cfg.online_cg_steps = c.Get<std::int32_t>();
  cfg.initial_cg_steps = c.Get<std::int32_t>();
  cfg.gp_warm_start = c.Get<std::uint8_t>() != 0;
  cfg.parallel_prediction = c.Get<std::uint8_t>() != 0;
  cfg.use_ensemble = c.Get<std::uint8_t>() != 0;
  cfg.self_adaptive_weights = c.Get<std::uint8_t>() != 0;
  cfg.sleep_and_recovery = c.Get<std::uint8_t>() != 0;
  cfg.elv = c.GetI32Vec();
  cfg.ekv = c.GetI32Vec();
  const std::uint8_t kind = c.Get<std::uint8_t>();
  if (kind > static_cast<std::uint8_t>(core::PredictorKind::kAr)) {
    return Status::InvalidArgument("checkpoint holds unknown predictor kind");
  }
  snap.kind = static_cast<core::PredictorKind>(kind);
  index::IndexSnapshot& idx = snap.index;
  idx.series = c.GetF64Vec();
  idx.env_c_upper = c.GetF64Vec();
  idx.env_c_lower = c.GetF64Vec();
  idx.env_mq_upper = c.GetF64Vec();
  idx.env_mq_lower = c.GetF64Vec();
  idx.head = c.Get<std::int32_t>();
  idx.cols = c.Get<std::int64_t>();
  idx.arena_stride = c.Get<std::int64_t>();
  idx.arena = c.GetF64Vec();
  idx.prev_knn.resize(c.GetCount(sizeof(std::uint64_t)));
  for (auto& knn : idx.prev_knn) {
    knn.resize(c.GetCount(sizeof(std::int64_t) + sizeof(double)));
    for (index::Neighbor& nb : knn) {
      nb.t = c.Get<std::int64_t>();
      nb.dist = c.Get<double>();
    }
  }
  snap.ensemble.cells.resize(c.GetCount(2 * sizeof(double)));
  for (auto& cell : snap.ensemble.cells) {
    cell.weight = c.Get<double>();
    cell.awake = c.Get<std::uint8_t>() != 0;
    cell.counter = c.Get<std::int32_t>();
    cell.remaining = c.Get<std::int32_t>();
    cell.just_recovered = c.Get<std::uint8_t>() != 0;
  }
  snap.ensemble.z_ewma = c.Get<double>();
  snap.ensemble.vif = c.Get<double>();
  snap.gp_kernels.resize(c.GetCount(sizeof(std::uint8_t)));
  for (auto& kernel : snap.gp_kernels) {
    if (c.Get<std::uint8_t>() != 0) {
      std::array<double, 3> lp;
      for (double& x : lp) x = c.Get<double>();
      kernel = lp;
    }
  }
  snap.pending.resize(c.GetCount(sizeof(std::int64_t)));
  for (auto& pf : snap.pending) {
    pf.target_time = c.Get<std::int64_t>();
    const int rows = c.Get<std::int32_t>();
    const int cols = c.Get<std::int32_t>();
    if (!c.ok || rows < 0 || cols < 0 ||
        static_cast<std::uint64_t>(rows) * cols >
            static_cast<std::uint64_t>(c.end - c.p) / (2 * sizeof(double))) {
      return Status::InvalidArgument("truncated checkpoint payload");
    }
    pf.grid = predictors::PredictionGrid(rows, cols);
    for (std::size_t i = 0; i < pf.grid.preds.size(); ++i) {
      pf.grid.preds[i] = GetPrediction(&c);
      pf.grid.has[i] = static_cast<char>(c.Get<std::uint8_t>());
    }
    pf.raw = GetPrediction(&c);
  }
  if (!c.ok) {
    return Status::InvalidArgument("truncated checkpoint payload");
  }
  if (c.p != c.end) {
    return Status::InvalidArgument("checkpoint payload holds trailing bytes");
  }
  return snap;
}

}  // namespace

Status Checkpoint::Save(const std::string& path,
                        const std::vector<core::EngineSnapshot>& engines) {
  std::string blob;
  blob.append(kMagic, sizeof(kMagic));
  Put<std::uint32_t>(&blob, kFormatVersion);
  Put<std::uint32_t>(&blob, static_cast<std::uint32_t>(engines.size()));
  for (const core::EngineSnapshot& snap : engines) {
    const std::string payload = SerializeEngine(snap);
    Put<std::uint64_t>(&blob, payload.size());
    Put<std::uint64_t>(&blob, Fnv1a(payload.data(), payload.size()));
    blob += payload;
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) {
      return Status::Internal("cannot open '" + tmp + "' for writing");
    }
    if (SMILER_FAULT_TRIGGERED("ckpt.write")) {
      // Torn write: half the blob reaches the .tmp file, the write fails,
      // and — crucially — the previous checkpoint at `path` is untouched,
      // exactly like a crash mid-write under the atomic-rename protocol.
      file.write(blob.data(), static_cast<std::streamsize>(blob.size() / 2));
      file.flush();
      return Status::Internal("write to '" + tmp + "' failed");
    }
    file.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    file.flush();
    if (!file.good()) {
      return Status::Internal("write to '" + tmp + "' failed");
    }
  }
  SMILER_INJECT_FAULT("ckpt.rename", Status::Internal("rename '" + tmp +
                                                      "' -> '" + path +
                                                      "' failed"));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("rename '" + tmp + "' -> '" + path + "' failed");
  }
  return Status::OK();
}

Result<std::vector<core::EngineSnapshot>> Checkpoint::Load(
    const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open checkpoint '" + path + "'");
  }
  std::string blob((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  if (SMILER_FAULT_TRIGGERED("ckpt.read_short") && !blob.empty()) {
    // Short read: the parser below must turn the truncation into a
    // Status error — never an OK result carrying a partial fleet.
    blob.resize(blob.size() / 2);
  }
  Cursor c{blob.data(), blob.data() + blob.size()};
  char magic[sizeof(kMagic)];
  for (char& ch : magic) ch = c.Get<char>();
  if (!c.ok || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a SMiLer "
                                   "checkpoint (bad magic)");
  }
  const std::uint32_t version = c.Get<std::uint32_t>();
  if (c.ok && version != kFormatVersion) {
    return Status::FailedPrecondition(
        "checkpoint format version " + std::to_string(version) +
        " unsupported (this build reads version " +
        std::to_string(kFormatVersion) + ")");
  }
  const std::uint32_t count = c.Get<std::uint32_t>();
  std::vector<core::EngineSnapshot> engines;
  for (std::uint32_t i = 0; c.ok && i < count; ++i) {
    const std::uint64_t payload_size = c.Get<std::uint64_t>();
    const std::uint64_t checksum = c.Get<std::uint64_t>();
    if (!c.ok ||
        payload_size > static_cast<std::uint64_t>(c.end - c.p)) {
      return Status::InvalidArgument("truncated checkpoint '" + path + "'");
    }
    if (Fnv1a(c.p, payload_size) != checksum) {
      return Status::InvalidArgument("checksum mismatch in checkpoint '" +
                                     path + "' (engine " + std::to_string(i) +
                                     ")");
    }
    SMILER_ASSIGN_OR_RETURN(core::EngineSnapshot snap,
                            ParseEngine(c.p, payload_size));
    engines.push_back(std::move(snap));
    c.p += payload_size;
  }
  if (!c.ok) {
    return Status::InvalidArgument("truncated checkpoint '" + path + "'");
  }
  if (c.p != c.end) {
    return Status::InvalidArgument("checkpoint '" + path +
                                   "' holds trailing bytes");
  }
  return engines;
}

}  // namespace serve
}  // namespace smiler
