#ifndef SMILER_SERVE_SPSC_RING_H_
#define SMILER_SERVE_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace smiler {
namespace serve {

/// \brief Bounded lock-free single-producer / single-consumer ring.
///
/// The serve layer allocates one ring per (producer thread, shard) pair,
/// which is what makes the single-producer restriction free to honor:
/// each client thread owns its lane outright, the shard worker is the
/// only consumer, and the hot enqueue path is two atomic loads, a
/// placement-new, and one release store — no mutex, no CAS loop.
///
/// Memory layout: head (consumer cursor) and tail (producer cursor) live
/// on their own cache lines so the producer's tail stores never bounce
/// the consumer's head line and vice versa. Cursors are free-running
/// (monotonically increasing, masked on access), so full/empty are
/// distinguishable without a wasted slot: size == tail - head.
///
/// Contract:
///  - TryPush may be called by exactly one thread at a time (the lane
///    owner); TryPop by exactly one thread (the shard worker). Distinct
///    roles may run concurrently — that is the point.
///  - A popped value is exactly the pushed value (move semantics all the
///    way through); slots are destroyed on pop and on ring destruction.
///  - ApproxSize is safe from any thread, but only approximate while the
///    other side is active.
template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (>= 2) so index masking
  /// replaces modulo on the hot path.
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::allocator<T>().allocate(cap);
  }

  ~SpscRing() {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    for (std::size_t i = h; i != t; ++i) slots_[i & mask_].~T();
    std::allocator<T>().deallocate(slots_, mask_ + 1);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false (item untouched) when the ring is full.
  bool TryPush(T&& item) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    // Acquire pairs with the consumer's release store of head: slot
    // (t & mask_) is only reused after the consumer has destroyed the
    // value that previously lived there.
    const std::size_t h = head_.load(std::memory_order_acquire);
    if (t - h > mask_) return false;  // size == capacity
    ::new (static_cast<void*>(slots_ + (t & mask_))) T(std::move(item));
    // Release publishes the constructed slot to the consumer's acquire
    // load of tail.
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    if (h == t) return false;
    T& slot = slots_[h & mask_];
    *out = std::move(slot);
    slot.~T();
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Racy size estimate (exact when both sides are quiescent).
  std::size_t ApproxSize() const {
    const std::size_t t = tail_.load(std::memory_order_acquire);
    const std::size_t h = head_.load(std::memory_order_acquire);
    return t >= h ? t - h : 0;
  }

  bool ApproxEmpty() const { return ApproxSize() == 0; }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  // 64 covers x86-64 and the common AArch64 cores; a fixed constant keeps
  // the layout ABI-stable (std::hardware_destructive_interference_size
  // varies with -mtune and warns when used in headers).
  static constexpr std::size_t kCacheLine = 64;

  T* slots_ = nullptr;
  std::size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  ///< consumer cursor
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  ///< producer cursor
};

}  // namespace serve
}  // namespace smiler

#endif  // SMILER_SERVE_SPSC_RING_H_
