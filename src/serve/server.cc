#include "serve/server.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "chaos/fault.h"
#include "common/thread_pool.h"
#include "obs/stats_server.h"
#include "obs/trace.h"
#include "serve/checkpoint.h"

namespace smiler {
namespace serve {

namespace {

double Seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

obs::Counter& RequestsCounter() {
  static obs::Counter& c = obs::Registry::Global().GetCounter("serve.requests");
  return c;
}
obs::Counter& CompletedCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("serve.completed");
  return c;
}
obs::Counter& RejectedCounter() {
  static obs::Counter& c = obs::Registry::Global().GetCounter("serve.rejected");
  return c;
}
obs::Counter& DeadlineExpiredCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("serve.deadline_expired");
  return c;
}
obs::Counter& BatchesCounter() {
  static obs::Counter& c = obs::Registry::Global().GetCounter("serve.batches");
  return c;
}
obs::Counter& CoalescedCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("serve.batch.coalesced_predicts");
  return c;
}
obs::Histogram& BatchSizeHistogram() {
  static obs::Histogram& h =
      obs::Registry::Global().GetHistogram("serve.batch_size");
  return h;
}
obs::Histogram& LatencyHistogram() {
  static obs::Histogram& h =
      obs::Registry::Global().GetHistogram("serve.latency_seconds");
  return h;
}

}  // namespace

Result<std::unique_ptr<PredictionServer>> PredictionServer::Create(
    core::MultiSensorManager manager, const ServerOptions& options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.queue_capacity < 1) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  ServerOptions opts = options;
  opts.num_shards = static_cast<int>(
      std::min<std::size_t>(opts.num_shards, manager.num_sensors()));
  // Live snapshot endpoint (SMILER_STATS_PORT): a serving process is the
  // main thing worth polling mid-run, so the server entry point arms it.
  obs::StatsServer::StartFromEnvOnce();
  return std::unique_ptr<PredictionServer>(
      new PredictionServer(std::move(manager), opts));
}

PredictionServer::PredictionServer(core::MultiSensorManager manager,
                                   const ServerOptions& options)
    : manager_(std::move(manager)), options_(options) {
  shards_.reserve(options_.num_shards);
  for (int s = 0; s < options_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->index = s;
    const std::string prefix = "serve.shard" + std::to_string(s);
    shard->queue_depth =
        &obs::Registry::Global().GetGauge(prefix + ".queue_depth");
    shard->latency =
        &obs::Registry::Global().GetHistogram(prefix + ".latency_seconds");
    for (int st = 0; st < obs::kNumStages; ++st) {
      shard->stage_seconds[st] = &obs::Registry::Global().GetGauge(
          prefix + ".stage." + obs::StageName(static_cast<obs::Stage>(st)) +
          "_seconds_total");
    }
    shards_.push_back(std::move(shard));
  }
  for (std::size_t i = 0; i < manager_.num_sensors(); ++i) {
    shards_[i % shards_.size()]->sensors.push_back(i);
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, s = shard.get()] { ShardLoop(s); });
  }
}

PredictionServer::~PredictionServer() { Shutdown(); }

std::future<Response> PredictionServer::Enqueue(Request req) {
  req.enqueued_at = Clock::now();
  std::future<Response> future = req.promise.get_future();
  if (req.sensor >= manager_.num_sensors()) {
    req.promise.set_value(
        {Status::InvalidArgument("unknown sensor"), predictors::Prediction{}});
    return future;
  }
  Shard& shard = *shards_[req.sensor % shards_.size()];
  // Mint the request's trace context at admission (snapshot barriers are
  // control plane, not attributed) and bind it to the caller for the
  // enqueue span, so the caller thread appears in the request's span tree.
  if (req.kind != Request::Kind::kSnapshot) {
    req.ctx = obs::RequestContext::Mint(shard.index);
  }
  obs::RequestScope trace_scope(req.ctx, /*owner=*/false);
  SMILER_TRACE_SPAN("serve.enqueue");
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.stop || !running_.load(std::memory_order_acquire)) {
      req.promise.set_value({Status::FailedPrecondition("server is shut down"),
                             predictors::Prediction{}});
      return future;
    }
    // Admission control: a full queue rejects immediately rather than
    // blocking the client or buffering without bound. Snapshot requests
    // bypass the capacity check — they are rare control-plane barriers
    // and must not be starved by data-plane load. The chaos point shares
    // this branch so an injected rejection is indistinguishable from a
    // real full-queue one (same status, same counter).
    if (req.kind != Request::Kind::kSnapshot &&
        (shard.queue.size() >= options_.queue_capacity ||
         SMILER_FAULT_TRIGGERED("serve.enqueue"))) {
      RejectedCounter().Increment();
      req.promise.set_value(
          {Status::ResourceExhausted("request queue is full"),
           predictors::Prediction{}});
      return future;
    }
    shard.queue.push_back(std::move(req));
    shard.queue_depth->Add(1.0);
    RequestsCounter().Increment();
  }
  shard.cv.notify_one();
  return future;
}

std::future<Response> PredictionServer::AsyncPredict(std::size_t sensor,
                                                     Deadline deadline) {
  Request req;
  req.kind = Request::Kind::kPredict;
  req.sensor = sensor;
  req.deadline = deadline;
  return Enqueue(std::move(req));
}

std::future<Response> PredictionServer::AsyncObserve(std::size_t sensor,
                                                     double value,
                                                     Deadline deadline) {
  Request req;
  req.kind = Request::Kind::kObserve;
  req.sensor = sensor;
  req.value = value;
  req.deadline = deadline;
  return Enqueue(std::move(req));
}

Result<predictors::Prediction> PredictionServer::Predict(std::size_t sensor,
                                                         Deadline deadline) {
  Response r = AsyncPredict(sensor, deadline).get();
  SMILER_RETURN_NOT_OK(r.status);
  return r.prediction;
}

Status PredictionServer::Observe(std::size_t sensor, double value,
                                 Deadline deadline) {
  return AsyncObserve(sensor, value, deadline).get().status;
}

void PredictionServer::ShardLoop(Shard* shard) {
  // Self-register with the trace collector: shard workers are spawned
  // after tracing may already be running (SMILER_TRACE at startup), and
  // must still show up — named — in the exported trace.
  obs::Tracer::Global().RegisterCurrentThread(
      "serve-shard-" + std::to_string(shard->index));
  std::vector<Request> batch;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(shard->mu);
      shard->cv.wait(lock,
                     [shard] { return shard->stop || !shard->queue.empty(); });
      if (shard->queue.empty()) return;  // stop && drained
      // Micro-batch: claim the whole queue in one critical section so
      // co-resident requests can coalesce and clients keep enqueueing
      // while the batch runs.
      batch.clear();
      batch.reserve(shard->queue.size());
      while (!shard->queue.empty()) {
        batch.push_back(std::move(shard->queue.front()));
        shard->queue.pop_front();
      }
    }
    const std::int64_t claim_us = obs::Tracer::NowMicros();
    BatchesCounter().Increment();
    BatchSizeHistogram().Observe(static_cast<double>(batch.size()));
    ProcessBatch(shard, &batch, claim_us);
  }
}

void PredictionServer::ProcessBatch(Shard* shard, std::vector<Request>* batch,
                                    std::int64_t claim_us) {
  // Coalescing cache: sensor -> response of the batch's previous Predict
  // of that sensor. Valid only while the engine state is unchanged, so an
  // Observe for the sensor invalidates its entry. Besides saving simgpu
  // work, this keeps back-to-back Predicts from pushing duplicate pending
  // forecasts into the engine (which would double the ensemble's weight
  // update when the target observation arrives).
  std::unordered_map<std::size_t, Response> predict_cache;
  for (Request& req : *batch) {
    if (req.kind == Request::Kind::kSnapshot) {
      std::vector<std::pair<std::size_t, core::EngineSnapshot>> snaps;
      snaps.reserve(shard->sensors.size());
      for (std::size_t sensor : shard->sensors) {
        snaps.emplace_back(sensor, manager_.engine(sensor).Snapshot());
      }
      if (req.snapshot_promise) req.snapshot_promise->set_value(std::move(snaps));
      Respond(shard, &req, {Status::OK(), predictors::Prediction{}});
      continue;
    }
    // Stage attribution for the cross-thread interval the worker cannot
    // scope: queue_wait is mint → batch claim (the queue mutex orders the
    // hand-off, so both timestamps compare on one steady clock), and
    // batch_form is claim → this request's turn in the batch — which
    // honestly includes the processing time of the requests ahead of it
    // in the same micro-batch.
    if (req.ctx != nullptr) {
      const std::int64_t start_us = obs::Tracer::NowMicros();
      req.ctx->Credit(obs::Stage::kQueueWait, claim_us - req.ctx->mint_us());
      req.ctx->Credit(obs::Stage::kBatchForm, start_us - claim_us);
    }
    // The shard worker is the request's owner: it drives the exclusive
    // stage clock that tiles the rest of the request.
    obs::RequestScope trace_scope(req.ctx, /*owner=*/true);
    // Shed expired requests before paying for any search work.
    if (req.deadline != kNoDeadline && Clock::now() > req.deadline) {
      DeadlineExpiredCounter().Increment();
      Respond(shard, &req,
              {Status::DeadlineExceeded("deadline expired before execution"),
               predictors::Prediction{}});
      continue;
    }
    if (req.kind == Request::Kind::kPredict) {
      if (options_.coalesce_predicts) {
        auto it = predict_cache.find(req.sensor);
        if (it != predict_cache.end()) {
          CoalescedCounter().Increment();
          Respond(shard, &req, it->second);
          continue;
        }
      }
      Response response;
      {
        // Catch-all engine stage; the instrumented inner phases
        // (lb_filter, dtw_verify, gram, cholesky) nest inside and pause
        // it, so "forecast" is the engine time not claimed by a more
        // specific stage.
        obs::StageScope forecast(obs::Stage::kForecast);
        SMILER_TRACE_SPAN("serve.predict");
        auto pred = manager_.engine(req.sensor).Predict();
        if (pred.ok()) {
          response = {Status::OK(), *pred};
        } else {
          response = {pred.status(), predictors::Prediction{}};
        }
      }
      if (options_.coalesce_predicts) predict_cache[req.sensor] = response;
      Respond(shard, &req, response);
    } else {
      predict_cache.erase(req.sensor);
      Status st;
      {
        obs::StageScope forecast(obs::Stage::kForecast);
        SMILER_TRACE_SPAN("serve.observe");
        st = manager_.engine(req.sensor).Observe(req.value);
      }
      Respond(shard, &req, {std::move(st), predictors::Prediction{}});
    }
  }
}

void PredictionServer::Respond(Shard* shard, Request* req, Response response) {
  double latency = 0.0;
  {
    obs::StageScope publish(obs::Stage::kPublish);
    latency = Seconds(Clock::now() - req->enqueued_at);
    shard->latency->Observe(latency);
    LatencyHistogram().Observe(latency);
    shard->queue_depth->Add(-1.0);
    // Every admitted request passes through here exactly once (success,
    // engine error, or deadline shed alike), so after a drain the counters
    // conserve: serve.requests == serve.completed.
    CompletedCounter().Increment();
  }
  // Publish the attribution once the publish stage has closed, then
  // fulfil the promise (the exemplar is complete before the client can
  // observe the response).
  if (req->ctx != nullptr) {
    obs::FinishRequest(*req->ctx, latency, shard->stage_seconds);
  }
  req->promise.set_value(std::move(response));
}

Result<std::vector<core::EngineSnapshot>> PredictionServer::Snapshot() {
  using ShardSnaps = std::vector<std::pair<std::size_t, core::EngineSnapshot>>;
  std::vector<std::future<ShardSnaps>> futures;
  std::vector<std::future<Response>> acks;
  futures.reserve(shards_.size());
  acks.reserve(shards_.size());
  for (auto& shard : shards_) {
    Request req;
    req.kind = Request::Kind::kSnapshot;
    // Address the snapshot to the shard's first sensor so Enqueue routes
    // it there; the worker snapshots every engine the shard owns.
    req.sensor = shard->sensors.front();
    req.snapshot_promise = std::make_shared<std::promise<ShardSnaps>>();
    futures.push_back(req.snapshot_promise->get_future());
    acks.push_back(Enqueue(std::move(req)));
  }
  std::vector<core::EngineSnapshot> merged(manager_.num_sensors());
  for (std::size_t s = 0; s < futures.size(); ++s) {
    Response ack = acks[s].get();
    if (!ack.status.ok()) return ack.status;  // e.g. server shut down
    for (auto& [sensor, snap] : futures[s].get()) {
      merged[sensor] = std::move(snap);
    }
  }
  return merged;
}

std::future<Status> PredictionServer::AsyncSaveCheckpoint(std::string path) {
  auto promise = std::make_shared<std::promise<Status>>();
  std::future<Status> future = promise->get_future();
  auto snaps = Snapshot();
  if (!snaps.ok()) {
    promise->set_value(snaps.status());
    return future;
  }
  // The quiescing part is done; serialization and file IO happen off the
  // shard workers so serving resumes while bytes hit disk.
  ThreadPool::Default().Submit(
      [promise, path = std::move(path), snaps = std::move(*snaps)] {
        promise->set_value(Checkpoint::Save(path, snaps));
      });
  return future;
}

Status PredictionServer::SaveCheckpoint(const std::string& path) {
  return AsyncSaveCheckpoint(path).get();
}

void PredictionServer::Shutdown() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->stop = true;
    }
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

}  // namespace serve
}  // namespace smiler
