#include "serve/server.h"

#include <algorithm>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>

#include "chaos/fault.h"
#include "common/task_graph.h"
#include "common/thread_pool.h"
#include "gp/kernel.h"
#include "obs/stats_server.h"
#include "obs/trace.h"
#include "serve/checkpoint.h"
#include "store/tiered_store.h"

namespace smiler {
namespace serve {

namespace {

double Seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

obs::Counter& RequestsCounter() {
  static obs::Counter& c = obs::Registry::Global().GetCounter("serve.requests");
  return c;
}
obs::Counter& CompletedCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("serve.completed");
  return c;
}
obs::Counter& RejectedCounter() {
  static obs::Counter& c = obs::Registry::Global().GetCounter("serve.rejected");
  return c;
}
obs::Counter& DeadlineExpiredCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("serve.deadline_expired");
  return c;
}
obs::Counter& BatchesCounter() {
  static obs::Counter& c = obs::Registry::Global().GetCounter("serve.batches");
  return c;
}
obs::Counter& CoalescedCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("serve.batch.coalesced_predicts");
  return c;
}
obs::Counter& GramLaunchesCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("serve.batch.gram_launches");
  return c;
}
obs::Histogram& BatchSizeHistogram() {
  static obs::Histogram& h =
      obs::Registry::Global().GetHistogram("serve.batch_size");
  return h;
}
obs::Histogram& LatencyHistogram() {
  static obs::Histogram& h =
      obs::Registry::Global().GetHistogram("serve.latency_seconds");
  return h;
}

/// Initial / idle-floor micro-batch target: big enough to amortize the
/// fused gram launch, small enough to keep tail latency sane at low load.
constexpr std::size_t kInitialBatchTarget = 32;

/// Distinguishes server instances in the thread-local producer-slot table
/// (a destroyed server's address can be reused; its epoch cannot).
std::atomic<std::uint64_t> g_next_server_epoch{1};

}  // namespace

Result<std::unique_ptr<PredictionServer>> PredictionServer::Create(
    core::MultiSensorManager manager, const ServerOptions& options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.queue_capacity < 1) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  ServerOptions opts = options;
  opts.num_shards = static_cast<int>(
      std::min<std::size_t>(opts.num_shards, manager.num_sensors()));
  // Live snapshot endpoint (SMILER_STATS_PORT): a serving process is the
  // main thing worth polling mid-run, so the server entry point arms it.
  obs::StatsServer::StartFromEnvOnce();
  return std::unique_ptr<PredictionServer>(
      new PredictionServer(std::move(manager), opts));
}

PredictionServer::PredictionServer(core::MultiSensorManager manager,
                                   const ServerOptions& options)
    : manager_(std::move(manager)),
      options_(options),
      ring_capacity_(options.queue_capacity),
      epoch_(g_next_server_epoch.fetch_add(1, std::memory_order_relaxed)) {
  shards_.reserve(options_.num_shards);
  for (int s = 0; s < options_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->index = s;
    const std::string prefix = "serve.shard" + std::to_string(s);
    shard->queue_depth =
        &obs::Registry::Global().GetGauge(prefix + ".queue_depth");
    shard->batch_target_gauge =
        &obs::Registry::Global().GetGauge(prefix + ".batch_target");
    shard->latency =
        &obs::Registry::Global().GetHistogram(prefix + ".latency_seconds");
    for (int st = 0; st < obs::kNumStages; ++st) {
      shard->stage_seconds[st] = &obs::Registry::Global().GetGauge(
          prefix + ".stage." + obs::StageName(static_cast<obs::Stage>(st)) +
          "_seconds_total");
    }
    shard->batch_target =
        std::min<std::size_t>(options_.queue_capacity, kInitialBatchTarget);
    shard->batch_target_gauge->Set(static_cast<double>(shard->batch_target));
    shards_.push_back(std::move(shard));
  }
  for (std::size_t i = 0; i < manager_.num_sensors(); ++i) {
    shards_[i % shards_.size()]->sensors.push_back(i);
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, s = shard.get()] { ShardLoop(s); });
  }
}

PredictionServer::~PredictionServer() { Shutdown(); }

PredictionServer::Lane* PredictionServer::ProducerLane(Shard& shard) {
  // One lane slot per (producer thread, server instance), assigned on the
  // thread's first enqueue and reused for every shard of that server: the
  // thread is the only producer of lanes[slot] in EVERY shard, which is
  // what makes the rings single-producer.
  thread_local std::unordered_map<std::uint64_t, int> t_slots;
  auto [it, inserted] = t_slots.try_emplace(epoch_, 0);
  if (inserted) {
    const int slot = next_lane_slot_.fetch_add(1, std::memory_order_relaxed);
    it->second = slot < kMaxLanes ? slot : -1;
  }
  const int slot = it->second;
  if (slot < 0) return nullptr;  // all dedicated slots taken: overflow path
  Lane* lane = shard.lanes[slot].load(std::memory_order_acquire);
  if (lane == nullptr) {
    // Only this thread ever creates lanes[slot]; the release store
    // publishes the constructed ring to the worker's acquire scan.
    lane = new Lane(ring_capacity_);
    shard.lanes[slot].store(lane, std::memory_order_release);
  }
  return lane;
}

void PredictionServer::WakeWorker(Shard& shard) {
  // Dekker pairing with Park(): our push is ordered before this fence;
  // the worker stores `sleeping` then fences before re-checking for work.
  // In every interleaving either the worker's re-check sees the push, or
  // this load sees `sleeping` and we notify under the lock.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (shard.sleeping.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(shard.wake_mu);
    shard.wake_cv.notify_one();
  }
}

void PredictionServer::Park(Shard* shard) {
  std::unique_lock<std::mutex> lock(shard->wake_mu);
  shard->sleeping.store(true, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  auto has_work = [shard] {
    return shard->stop.load(std::memory_order_acquire) ||
           shard->depth.load(std::memory_order_acquire) > 0 ||
           shard->control_size.load(std::memory_order_acquire) > 0;
  };
  if (!has_work()) {
    // Liveness comes from the fence pairing with WakeWorker; the timeout
    // is belt-and-suspenders, not load-bearing.
    shard->wake_cv.wait_for(lock, std::chrono::milliseconds(1), has_work);
  }
  shard->sleeping.store(false, std::memory_order_relaxed);
}

std::future<Response> PredictionServer::Enqueue(Request req) {
  req.enqueued_at = Clock::now();
  std::future<Response> future = req.promise.get_future();
  if (req.sensor >= manager_.num_sensors()) {
    req.promise.set_value(
        {Status::InvalidArgument("unknown sensor"), predictors::Prediction{}});
    return future;
  }
  Shard& shard = *shards_[req.sensor % shards_.size()];
  // Mint the request's trace context at admission (snapshot barriers are
  // control plane, not attributed) and bind it to the caller for the
  // enqueue span, so the caller thread appears in the request's span tree.
  if (req.kind != Request::Kind::kSnapshot) {
    req.ctx = obs::RequestContext::Mint(shard.index);
  }
  obs::RequestScope trace_scope(req.ctx, /*owner=*/false);
  SMILER_TRACE_SPAN("serve.enqueue");
  // Announce this producer BEFORE the shutdown check (seq_cst on both
  // sides): the worker's drain sees either stop-aware producers that
  // rejected themselves, or a nonzero `enqueuing` it must wait out — so a
  // request that passed this check is always swept before the worker
  // exits, and every accepted request is answered exactly once.
  shard.enqueuing.fetch_add(1, std::memory_order_seq_cst);
  if (!running_.load(std::memory_order_seq_cst) ||
      shard.stop.load(std::memory_order_seq_cst)) {
    shard.enqueuing.fetch_sub(1, std::memory_order_release);
    req.promise.set_value({Status::FailedPrecondition("server is shut down"),
                           predictors::Prediction{}});
    return future;
  }
  if (req.kind == Request::Kind::kSnapshot) {
    // Control plane: rare barriers bypass the data-plane capacity check —
    // they must not be starved by load — on their own mutex-guarded queue
    // (`control_size` mirrors the deque size under the same lock).
    {
      std::lock_guard<std::mutex> lock(shard.control_mu);
      shard.control.push_back(std::move(req));
      shard.control_size.fetch_add(1, std::memory_order_release);
    }
    RequestsCounter().Increment();
    shard.enqueuing.fetch_sub(1, std::memory_order_release);
    WakeWorker(shard);
    return future;
  }
  // Admission control: reserve a slot against the shard-wide capacity
  // with one fetch_add — a full shard rejects immediately rather than
  // blocking the client or buffering without bound. The chaos point
  // shares this branch so an injected rejection is indistinguishable
  // from a real full-queue one (same status, same counter).
  const std::size_t prior =
      shard.depth.fetch_add(1, std::memory_order_acq_rel);
  if (prior >= options_.queue_capacity ||
      SMILER_FAULT_TRIGGERED("serve.enqueue")) {
    shard.depth.fetch_sub(1, std::memory_order_release);
    shard.enqueuing.fetch_sub(1, std::memory_order_release);
    RejectedCounter().Increment();
    req.promise.set_value({Status::ResourceExhausted("request queue is full"),
                           predictors::Prediction{}});
    return future;
  }
  // A successful reservation guarantees ring room (each lane is sized >=
  // queue_capacity and admitted-but-unclaimed requests never exceed the
  // capacity), so TryPush failing is a broken-invariant guard — reachable
  // in practice only through the injected ring-full fault below.
  bool pushed = false;
  if (!SMILER_FAULT_TRIGGERED("serve.enqueue_ring")) {
    if (Lane* lane = ProducerLane(shard)) {
      pushed = lane->ring.TryPush(std::move(req));
    } else {
      std::lock_guard<std::mutex> lock(shard.overflow_mu);
      shard.overflow.push_back(std::move(req));
      shard.overflow_size.fetch_add(1, std::memory_order_release);
      pushed = true;
    }
  }
  if (!pushed) {
    shard.depth.fetch_sub(1, std::memory_order_release);
    shard.enqueuing.fetch_sub(1, std::memory_order_release);
    RejectedCounter().Increment();
    req.promise.set_value({Status::ResourceExhausted("request queue is full"),
                           predictors::Prediction{}});
    return future;
  }
  // Gauge protocol: +1 at admission here, -claimed at ClaimBatch — the
  // gauge tracks admitted-but-unclaimed depth and conserves to exactly 0
  // after a drain (the chaos harness asserts that), instead of counting
  // in-processing requests until their response like the old mutex queue.
  shard.queue_depth->Add(1.0);
  RequestsCounter().Increment();
  shard.enqueuing.fetch_sub(1, std::memory_order_release);
  WakeWorker(shard);
  return future;
}

std::future<Response> PredictionServer::AsyncPredict(std::size_t sensor,
                                                     Deadline deadline) {
  Request req;
  req.kind = Request::Kind::kPredict;
  req.sensor = sensor;
  req.deadline = deadline;
  return Enqueue(std::move(req));
}

std::future<Response> PredictionServer::AsyncObserve(std::size_t sensor,
                                                     double value,
                                                     Deadline deadline) {
  Request req;
  req.kind = Request::Kind::kObserve;
  req.sensor = sensor;
  req.value = value;
  req.deadline = deadline;
  return Enqueue(std::move(req));
}

Result<predictors::Prediction> PredictionServer::Predict(std::size_t sensor,
                                                         Deadline deadline) {
  Response r = AsyncPredict(sensor, deadline).get();
  SMILER_RETURN_NOT_OK(r.status);
  return r.prediction;
}

Status PredictionServer::Observe(std::size_t sensor, double value,
                                 Deadline deadline) {
  return AsyncObserve(sensor, value, deadline).get().status;
}

Status PredictionServer::AttachStore(store::TieredStateStore* store) {
  if (store == nullptr) {
    return Status::InvalidArgument("store must be non-null");
  }
  if (store_.load(std::memory_order_acquire) != nullptr) {
    return Status::FailedPrecondition("a store is already attached");
  }
  // The fleet is fully resident before any store exists, so sensor 0's
  // engine names the shared device rehydrations charge against.
  SMILER_RETURN_NOT_OK(store->Bind(&manager_, manager_.engine(0).device()));
  store_.store(store, std::memory_order_release);
  return Status::OK();
}

std::size_t PredictionServer::ClaimBatch(Shard* shard,
                                         std::vector<Request>* batch,
                                         std::size_t limit) {
  const std::size_t base = batch->size();
  std::size_t claimed = 0;
  bool progress = true;
  while (claimed < limit && progress) {
    progress = false;
    for (auto& slot : shard->lanes) {
      if (claimed >= limit) break;
      Lane* lane = slot.load(std::memory_order_acquire);
      if (lane == nullptr) continue;
      Request req;
      if (lane->ring.TryPop(&req)) {
        batch->push_back(std::move(req));
        ++claimed;
        progress = true;
      }
    }
    if (claimed < limit &&
        shard->overflow_size.load(std::memory_order_acquire) > 0) {
      std::lock_guard<std::mutex> lock(shard->overflow_mu);
      while (claimed < limit && !shard->overflow.empty()) {
        batch->push_back(std::move(shard->overflow.front()));
        shard->overflow.pop_front();
        shard->overflow_size.fetch_sub(1, std::memory_order_release);
        ++claimed;
        progress = true;
      }
    }
  }
  if (claimed > 0) {
    // Release the capacity reservations only now, at claim: the gauge and
    // `depth` both track admitted-but-unclaimed requests.
    shard->depth.fetch_sub(claimed, std::memory_order_acq_rel);
    shard->queue_depth->Add(-static_cast<double>(claimed));
    // Near-FIFO across lanes: merge by enqueue time. stable_sort keeps
    // same-instant requests in lane-scan order, so the merged order is
    // deterministic given the per-lane contents.
    std::stable_sort(batch->begin() + static_cast<std::ptrdiff_t>(base),
                     batch->end(), [](const Request& a, const Request& b) {
                       return a.enqueued_at < b.enqueued_at;
                     });
  }
  return claimed;
}

void PredictionServer::DrainControl(Shard* shard) {
  if (shard->control_size.load(std::memory_order_acquire) == 0) return;
  std::deque<Request> barriers;
  {
    std::lock_guard<std::mutex> lock(shard->control_mu);
    barriers.swap(shard->control);
    shard->control_size.store(0, std::memory_order_release);
  }
  for (Request& req : barriers) {
    ServeSnapshotBarrier(shard, &req);
  }
}

void PredictionServer::ServeSnapshotBarrier(Shard* shard, Request* req) {
  store::TieredStateStore* store = store_.load(std::memory_order_acquire);
  std::vector<std::pair<std::size_t, core::EngineSnapshot>> snaps;
  snaps.reserve(shard->sensors.size());
  Status st = Status::OK();
  for (std::size_t sensor : shard->sensors) {
    if (store != nullptr) {
      // Store-aware barrier: a cold sensor's state comes from its spill
      // segment — the checkpoint covers the whole fleet without forcing
      // every evicted engine back into memory.
      auto snap = store->StableSnapshot(sensor);
      if (!snap.ok()) {
        st = snap.status();
        break;
      }
      snaps.emplace_back(sensor, std::move(*snap));
    } else {
      snaps.emplace_back(sensor, manager_.engine(sensor).Snapshot());
    }
  }
  if (req->snapshot_promise) {
    req->snapshot_promise->set_value(std::move(snaps));
  }
  Respond(shard, req, {std::move(st), predictors::Prediction{}});
}

void PredictionServer::ShardLoop(Shard* shard) {
  // Self-register with the trace collector: shard workers are spawned
  // after tracing may already be running (SMILER_TRACE at startup), and
  // must still show up — named — in the exported trace.
  obs::Tracer::Global().RegisterCurrentThread(
      "serve-shard-" + std::to_string(shard->index));
  std::vector<Request> batch;
  for (;;) {
    // Control barriers run at batch boundaries: every engine is quiescent
    // here, so per-engine snapshots are consistent by construction.
    DrainControl(shard);
    batch.clear();
    std::size_t claimed = ClaimBatch(shard, &batch, shard->batch_target);
    if (claimed == 0) {
      if (shard->stop.load(std::memory_order_acquire)) {
        // Drain protocol: wait out producers that passed their shutdown
        // check (`enqueuing` > 0), then one final unlimited sweep. After
        // `enqueuing` reads 0 every accepted push is visible (release
        // decrement / acquire load), so nothing is left behind.
        if (shard->enqueuing.load(std::memory_order_seq_cst) != 0) {
          std::this_thread::yield();
          continue;
        }
        DrainControl(shard);
        claimed = ClaimBatch(shard, &batch,
                             std::numeric_limits<std::size_t>::max());
        if (claimed == 0) return;
      } else {
        Park(shard);
        continue;
      }
    }
    const std::int64_t claim_us = obs::Tracer::NowMicros();
    BatchesCounter().Increment();
    BatchSizeHistogram().Observe(static_cast<double>(batch.size()));
    const std::size_t sheds = ProcessBatch(shard, &batch, claim_us);
    UpdateBatchTarget(shard, shard->depth.load(std::memory_order_acquire),
                      sheds);
  }
}

std::size_t PredictionServer::ProcessBatch(Shard* shard,
                                           std::vector<Request>* batch,
                                           std::int64_t claim_us) {
  // Coalescing cache: sensor -> response of the batch's previous Predict
  // of that sensor. Valid only while the engine state is unchanged, so an
  // Observe for the sensor invalidates its entry. Besides saving simgpu
  // work, this keeps back-to-back Predicts from pushing duplicate pending
  // forecasts into the engine (which would double the ensemble's weight
  // update when the target observation arrives).
  PredictCache predict_cache;
  std::size_t sheds = 0;
  // Residency: each distinct data-plane sensor is pinned at its FIRST
  // engine touch of the batch — as a leaf IO node of a predict segment's
  // task graph (overlapping other sensors' compute) or inline right
  // before an Observe — so no request below ever touches a non-resident
  // engine, and rehydration cost lands in the dedicated `rehydrate`
  // stage of the latency taxonomy instead of hiding inside batch_form.
  // A failed pin (e.g. the store.rehydrate_read_short fault) answers
  // that sensor's requests with the Status; the cold state is intact and
  // the next batch retries.
  store::TieredStateStore* store = store_.load(std::memory_order_acquire);
  std::vector<std::size_t> pinned;
  std::unordered_map<std::size_t, Status> pin_failed;
  for (std::size_t i = 0; i < batch->size();) {
    Request& req = (*batch)[i];
    if (req.kind == Request::Kind::kPredict) {
      i = ExecutePredictSegment(shard, batch, i, claim_us, &predict_cache,
                                &sheds, store, &pinned, &pin_failed);
      continue;
    }
    if (req.kind == Request::Kind::kSnapshot) {
      // Defensive: barriers travel on the control queue, but one landing
      // here anyway gets identical semantics.
      ServeSnapshotBarrier(shard, &req);
      ++i;
      continue;
    }
    // kObserve. Stage attribution for the cross-thread interval the
    // worker cannot scope: queue_wait is mint → batch claim, batch_form
    // is claim → this request's turn in the batch — which honestly
    // includes the processing time of the requests ahead of it.
    if (req.ctx != nullptr) {
      const std::int64_t start_us = obs::Tracer::NowMicros();
      req.ctx->Credit(obs::Stage::kQueueWait, claim_us - req.ctx->mint_us());
      req.ctx->Credit(obs::Stage::kBatchForm, start_us - claim_us);
    }
    // The shard worker is the request's owner: it drives the exclusive
    // stage clock that tiles the rest of the request.
    obs::RequestScope trace_scope(req.ctx, /*owner=*/true);
    // Shed expired requests before paying for any engine work.
    if (req.deadline != kNoDeadline && Clock::now() > req.deadline) {
      ++sheds;
      DeadlineExpiredCounter().Increment();
      Respond(shard, &req,
              {Status::DeadlineExceeded("deadline expired before execution"),
               predictors::Prediction{}});
      ++i;
      continue;
    }
    if (store != nullptr && pin_failed.count(req.sensor) == 0 &&
        std::find(pinned.begin(), pinned.end(), req.sensor) == pinned.end()) {
      // Lazy residency pin, attributed to this request's rehydrate stage
      // (the shed check above already ran: expired requests never pay
      // for rehydration they will not use).
      Status st;
      {
        obs::StageScope rehydrate(obs::Stage::kRehydrate);
        SMILER_TRACE_SPAN("serve.rehydrate");
        st = store->Pin(req.sensor);
      }
      if (st.ok()) {
        pinned.push_back(req.sensor);
      } else {
        pin_failed.emplace(req.sensor, std::move(st));
      }
    }
    auto failed_pin = pin_failed.find(req.sensor);
    if (failed_pin != pin_failed.end()) {
      Respond(shard, &req, {failed_pin->second, predictors::Prediction{}});
      ++i;
      continue;
    }
    predict_cache.erase(req.sensor);
    Status st;
    {
      obs::StageScope forecast(obs::Stage::kForecast);
      SMILER_TRACE_SPAN("serve.observe");
      st = manager_.engine(req.sensor).Observe(req.value);
    }
    Respond(shard, &req, {std::move(st), predictors::Prediction{}});
    ++i;
  }
  for (std::size_t sensor : pinned) store->Unpin(sensor);
  if (store != nullptr) {
    // Budget sweep at the batch boundary: every pin is released and the
    // shard's engines are quiescent. A failed spill leaves the fleet
    // over budget but consistent (store.evict_failures counts it), so
    // the status is advisory here — serving continues either way.
    (void)store->EnforceBudget();
  }
  return sheds;
}

std::size_t PredictionServer::ExecutePredictSegment(
    Shard* shard, std::vector<Request>* batch, std::size_t begin,
    std::int64_t claim_us, PredictCache* cache, std::size_t* sheds,
    store::TieredStateStore* store, std::vector<std::size_t>* pinned,
    std::unordered_map<std::size_t, Status>* pin_failed) {
  // Maximal run of Predict requests. With coalescing off a repeated
  // sensor ends the segment first — each repeat must be its own engine
  // pass, in order, exactly like the sequential path.
  std::vector<std::size_t> seen;
  std::size_t end = begin;
  while (end < batch->size() &&
         (*batch)[end].kind == Request::Kind::kPredict) {
    const std::size_t sensor = (*batch)[end].sensor;
    const bool dup =
        std::find(seen.begin(), seen.end(), sensor) != seen.end();
    if (dup && !options_.coalesce_predicts) break;
    if (!dup) seen.push_back(sensor);
    ++end;
  }
  // Pre-scan: the distinct sensors that actually need an engine pass — at
  // least one not-yet-expired request and no coalesced response cached.
  // Already-shed requests must not trigger engine work (a Predict has the
  // side effect of recording a pending forecast).
  const Clock::time_point scan_now = Clock::now();
  std::vector<std::size_t> fresh;
  for (std::size_t j = begin; j < end; ++j) {
    const Request& r = (*batch)[j];
    if (r.deadline != kNoDeadline && scan_now > r.deadline) continue;
    if (pin_failed->count(r.sensor) != 0) continue;
    if (cache->count(r.sensor) != 0) continue;
    if (std::find(fresh.begin(), fresh.end(), r.sensor) == fresh.end()) {
      fresh.push_back(r.sensor);
    }
  }
  bool computed = fresh.empty();
  std::unordered_map<std::size_t, Response> results;
  for (std::size_t j = begin; j < end; ++j) {
    Request& req = (*batch)[j];
    if (req.ctx != nullptr) {
      const std::int64_t start_us = obs::Tracer::NowMicros();
      req.ctx->Credit(obs::Stage::kQueueWait, claim_us - req.ctx->mint_us());
      req.ctx->Credit(obs::Stage::kBatchForm, start_us - claim_us);
    }
    obs::RequestScope trace_scope(req.ctx, /*owner=*/true);
    if (req.deadline != kNoDeadline && Clock::now() > req.deadline) {
      ++*sheds;
      DeadlineExpiredCounter().Increment();
      Respond(shard, &req,
              {Status::DeadlineExceeded("deadline expired before execution"),
               predictors::Prediction{}});
      continue;
    }
    {
      auto failed = pin_failed->find(req.sensor);
      if (failed != pin_failed->end()) {
        // Residency pin failed (transient rehydrate fault): answer with
        // the pin Status without touching the non-resident engine.
        Respond(shard, &req, {failed->second, predictors::Prediction{}});
        continue;
      }
    }
    if (!computed) {
      // The whole segment's engine passes run here, under the FIRST live
      // request's owner scope: later requests' share of the fused work
      // lands in their batch_form stage — the same "honestly includes
      // the processing time of requests ahead" attribution as the
      // sequential path, so stage sums still tile end-to-end latency.
      computed = true;
      obs::StageScope forecast(obs::Stage::kForecast);
      SMILER_TRACE_SPAN("serve.predict");
      ExecutePredictFleet(fresh, &results, store, pinned, pin_failed);
    }
    Response response;
    auto cached = cache->find(req.sensor);
    if (cached != cache->end()) {
      CoalescedCounter().Increment();
      response = cached->second;
    } else {
      auto it = results.find(req.sensor);
      if (it != results.end()) {
        response = it->second;
        results.erase(it);
      } else {
        // The pre-scan skipped this sensor (its earlier requests were all
        // expired at scan time, or its pin failed inside the fleet just
        // now) but this request is live: re-check residency, then a solo
        // engine pass.
        Status resident = Status::OK();
        auto late = pin_failed->find(req.sensor);
        if (late != pin_failed->end()) {
          resident = late->second;
        } else if (store != nullptr &&
                   std::find(pinned->begin(), pinned->end(), req.sensor) ==
                       pinned->end()) {
          {
            obs::StageScope rehydrate(obs::Stage::kRehydrate);
            SMILER_TRACE_SPAN("serve.rehydrate");
            resident = store->Pin(req.sensor);
          }
          if (resident.ok()) {
            pinned->push_back(req.sensor);
          } else {
            pin_failed->emplace(req.sensor, resident);
          }
        }
        if (!resident.ok()) {
          response = {std::move(resident), predictors::Prediction{}};
        } else {
          obs::StageScope forecast(obs::Stage::kForecast);
          SMILER_TRACE_SPAN("serve.predict");
          auto pred = manager_.engine(req.sensor).Predict();
          if (pred.ok()) {
            response = {Status::OK(), *pred};
          } else {
            response = {pred.status(), predictors::Prediction{}};
          }
        }
      }
      if (options_.coalesce_predicts) (*cache)[req.sensor] = response;
      Respond(shard, &req, response);
      continue;
    }
    Respond(shard, &req, response);
  }
  return end;
}

namespace {

/// Pins \p sensor if not yet resident, attributing the IO to the
/// rehydrate stage; records the outcome in \p pinned / \p pin_failed.
/// Returns OK when the engine is resident (or no store is attached).
Status EnsureResident(store::TieredStateStore* store, std::size_t sensor,
                      std::vector<std::size_t>* pinned,
                      std::unordered_map<std::size_t, Status>* pin_failed) {
  if (store == nullptr) return Status::OK();
  auto failed = pin_failed->find(sensor);
  if (failed != pin_failed->end()) return failed->second;
  if (std::find(pinned->begin(), pinned->end(), sensor) != pinned->end()) {
    return Status::OK();
  }
  Status st;
  {
    obs::StageScope rehydrate(obs::Stage::kRehydrate);
    SMILER_TRACE_SPAN("serve.rehydrate");
    st = store->Pin(sensor);
  }
  if (st.ok()) {
    pinned->push_back(sensor);
  } else {
    pin_failed->emplace(sensor, st);
  }
  return st;
}

}  // namespace

void PredictionServer::ExecutePredictFleet(
    const std::vector<std::size_t>& sensors,
    std::unordered_map<std::size_t, Response>* results,
    store::TieredStateStore* store, std::vector<std::size_t>* pinned,
    std::unordered_map<std::size_t, Status>* pin_failed) {
  if (sensors.empty()) return;
  if (options_.use_task_graph) {
    // Every fleet size takes the graph: a solo sensor is one linear
    // chain (deterministic node count — what the chaos node_defer
    // replay relies on), several sensors share the gram join node.
    ExecutePredictFleetGraph(sensors, results, store, pinned, pin_failed);
    return;
  }
  if (sensors.size() == 1) {
    // Solo sensor: the monolithic path (identical by construction to
    // BeginPredict + ComputeGrams + FinishPredict).
    const std::size_t s = sensors.front();
    const Status resident = EnsureResident(store, s, pinned, pin_failed);
    if (!resident.ok()) {
      (*results)[s] = {resident, predictors::Prediction{}};
      return;
    }
    auto pred = manager_.engine(s).Predict();
    if (pred.ok()) {
      (*results)[s] = {Status::OK(), *pred};
    } else {
      (*results)[s] = {pred.status(), predictors::Prediction{}};
    }
    return;
  }
  // Phase-barrier path (use_task_graph = false): every sensor finishes a
  // phase before any sensor starts the next. Kept as the bench baseline
  // the task graph is measured against.
  static obs::Counter& gram_columns =
      obs::Registry::Global().GetCounter("engine.gram_columns");
  struct Begun {
    std::size_t sensor;
    core::PendingPredict pending;
  };
  std::vector<Begun> begun;
  begun.reserve(sensors.size());
  for (std::size_t s : sensors) {
    const Status resident = EnsureResident(store, s, pinned, pin_failed);
    if (!resident.ok()) {
      (*results)[s] = {resident, predictors::Prediction{}};
      continue;
    }
    auto pending = manager_.engine(s).BeginPredict();
    if (!pending.ok()) {
      (*results)[s] = {pending.status(), predictors::Prediction{}};
      continue;
    }
    begun.push_back(Begun{s, std::move(*pending)});
  }
  if (begun.empty()) return;
  // Fuse every engine's pending Gram columns into ONE device launch: this
  // is the cross-sensor batching win — a micro-batch of N sensors pays
  // one "gp.gram_batch" launch instead of N x columns "gp.gram" ones.
  std::vector<gp::GramBatchJob> jobs;
  for (Begun& b : begun) {
    for (core::PendingPredict::GramColumn& column : b.pending.columns) {
      if (column.x.rows() == 0) continue;
      jobs.push_back(gp::GramBatchJob{&column.x, &column.gram});
    }
  }
  if (!jobs.empty()) {
    obs::StageScope gram_stage(obs::Stage::kGram);
    SMILER_TRACE_SPAN("serve.gram_batch");
    const auto gram_start = Clock::now();
    simgpu::Device* device = manager_.engine(begun.front().sensor).device();
    const Status st = gp::PairwiseSquaredDistancesOnDeviceBatch(device, jobs);
    if (st.ok()) {
      GramLaunchesCounter().Increment();
    } else {
      // Same degradation contract as the solo path: a failed launch
      // (e.g. chaos injection) falls back to the host function per job,
      // which is bitwise-identical to the device result.
      for (gp::GramBatchJob& job : jobs) {
        *job.out = gp::PairwiseSquaredDistances(*job.x);
      }
    }
    gram_columns.Increment(jobs.size());
    // Attribute the fused launch to the engines' gram clocks evenly so
    // engine.predict_seconds stays comparable with the solo path.
    const double gram_share =
        Seconds(Clock::now() - gram_start) / static_cast<double>(begun.size());
    for (Begun& b : begun) b.pending.gram_seconds += gram_share;
  }
  for (Begun& b : begun) {
    b.pending.grams_ready = true;
    auto pred = manager_.engine(b.sensor).FinishPredict(std::move(b.pending));
    if (pred.ok()) {
      (*results)[b.sensor] = {Status::OK(), *pred};
    } else {
      (*results)[b.sensor] = {pred.status(), predictors::Prediction{}};
    }
  }
}

void PredictionServer::ExecutePredictFleetGraph(
    const std::vector<std::size_t>& sensors,
    std::unordered_map<std::size_t, Response>* results,
    store::TieredStateStore* store, std::vector<std::size_t>* pinned,
    std::unordered_map<std::size_t, Status>* pin_failed) {
  static obs::Counter& gram_columns =
      obs::Registry::Global().GetCounter("engine.gram_columns");
  // Per-sensor chain state. Each node records its outcome here and
  // returns OK to the executor: graph-level poisoning would drag every
  // chain down through the shared gram join node, while the serve
  // contract is per-sensor Status isolation — so nodes guard on their
  // slot's accumulated Status instead.
  struct Slot {
    std::size_t sensor = 0;
    bool needs_pin = false;
    Status pin_status;
    Status status;
    core::PendingPredict pending;
    predictors::Prediction value;
    bool finished = false;
  };
  std::vector<Slot> slots(sensors.size());
  // The gram join exists unless the fleet is provably all-AR: a cold
  // (non-resident) sensor's kind is unknown until it rehydrates, and a
  // join an AR chain flows through is merely an ordering point, never a
  // wrong answer.
  bool maybe_gp = false;
  for (std::size_t s : sensors) {
    if (!manager_.resident(s) ||
        manager_.engine(s).kind() == core::PredictorKind::kGp) {
      maybe_gp = true;
      break;
    }
  }
  TaskGraph graph(TaskGraph::Options{"serve.graph"});
  std::vector<TaskGraph::NodeId> verify_ids(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    Slot* slot = &slots[i];
    slot->sensor = sensors[i];
    slot->needs_pin =
        store != nullptr &&
        std::find(pinned->begin(), pinned->end(), slot->sensor) ==
            pinned->end();
    const std::string tag = std::to_string(slot->sensor);
    TaskGraph::NodeId prev = 0;
    bool has_prev = false;
    if (slot->needs_pin) {
      // Leaf IO node: rehydration overlaps other sensors' compute
      // instead of blocking batch formation.
      prev = graph.AddNode("rehydrate:" + tag, [this, slot, store] {
        obs::StageScope stage(obs::Stage::kRehydrate);
        SMILER_TRACE_SPAN("serve.rehydrate");
        slot->pin_status = store->Pin(slot->sensor);
        if (!slot->pin_status.ok()) slot->status = slot->pin_status;
        return Status::OK();
      });
      has_prev = true;
    }
    const TaskGraph::NodeId lb = graph.AddNode("lb_filter:" + tag, [this,
                                                                    slot] {
      if (!slot->status.ok()) return Status::OK();
      auto pending = manager_.engine(slot->sensor).BeginPredictLb();
      if (pending.ok()) {
        slot->pending = std::move(*pending);
      } else {
        slot->status = pending.status();
      }
      return Status::OK();
    });
    if (has_prev) (void)graph.AddEdge(prev, lb);
    verify_ids[i] = graph.AddNode("dtw_verify:" + tag, [this, slot] {
      if (!slot->status.ok()) return Status::OK();
      slot->status =
          manager_.engine(slot->sensor).FinishPredictVerify(&slot->pending);
      return Status::OK();
    });
    (void)graph.AddEdge(lb, verify_ids[i]);
  }
  TaskGraph::NodeId join = 0;
  if (maybe_gp) {
    // The PR 8 fused cross-sensor Gram launch as a join node: one
    // "gp.gram_batch" launch serves every surviving chain's columns.
    join = graph.AddNode("gram_batch", [this, &slots] {
      std::vector<gp::GramBatchJob> jobs;
      std::vector<Slot*> live;
      for (Slot& slot : slots) {
        if (!slot.status.ok()) continue;
        live.push_back(&slot);
        for (core::PendingPredict::GramColumn& column : slot.pending.columns) {
          if (column.x.rows() == 0) continue;
          jobs.push_back(gp::GramBatchJob{&column.x, &column.gram});
        }
      }
      for (Slot* slot : live) slot->pending.grams_ready = true;
      if (jobs.empty()) return Status::OK();
      obs::StageScope gram_stage(obs::Stage::kGram);
      SMILER_TRACE_SPAN("serve.gram_batch");
      const auto gram_start = Clock::now();
      simgpu::Device* device = manager_.engine(live.front()->sensor).device();
      const Status st = gp::PairwiseSquaredDistancesOnDeviceBatch(device, jobs);
      if (st.ok()) {
        GramLaunchesCounter().Increment();
      } else {
        // Same degradation contract as the solo path: a failed launch
        // falls back to the host function per job (bitwise-identical).
        for (gp::GramBatchJob& job : jobs) {
          *job.out = gp::PairwiseSquaredDistances(*job.x);
        }
      }
      gram_columns.Increment(jobs.size());
      const double gram_share = Seconds(Clock::now() - gram_start) /
                                static_cast<double>(live.size());
      for (Slot* slot : live) slot->pending.gram_seconds += gram_share;
      return Status::OK();
    });
    for (TaskGraph::NodeId v : verify_ids) (void)graph.AddEdge(v, join);
  }
  for (std::size_t i = 0; i < slots.size(); ++i) {
    Slot* slot = &slots[i];
    const std::string tag = std::to_string(slot->sensor);
    const TaskGraph::NodeId fit = graph.AddNode("cholesky:" + tag, [this,
                                                                    slot] {
      if (!slot->status.ok()) return Status::OK();
      slot->status = manager_.engine(slot->sensor).FitCells(&slot->pending);
      return Status::OK();
    });
    (void)graph.AddEdge(maybe_gp ? join : verify_ids[i], fit);
    const TaskGraph::NodeId finish = graph.AddNode("forecast:" + tag, [this,
                                                                       slot] {
      if (!slot->status.ok()) return Status::OK();
      auto pred =
          manager_.engine(slot->sensor).FinishPredict(std::move(slot->pending));
      if (pred.ok()) {
        slot->value = *pred;
        slot->finished = true;
      } else {
        slot->status = pred.status();
      }
      return Status::OK();
    });
    (void)graph.AddEdge(fit, finish);
  }
  const Status run_status = graph.Run();
  for (Slot& slot : slots) {
    if (slot.needs_pin) {
      if (slot.pin_status.ok()) {
        pinned->push_back(slot.sensor);
      } else {
        pin_failed->emplace(slot.sensor, slot.pin_status);
      }
    }
    Status st = slot.status;
    if (st.ok() && !slot.finished) {
      // Unreachable when nodes self-report, but never answer a request
      // with a default-OK status and a default prediction.
      st = run_status.ok()
               ? Status::Internal("prediction graph produced no result")
               : run_status;
    }
    if (st.ok()) {
      (*results)[slot.sensor] = {Status::OK(), slot.value};
    } else {
      (*results)[slot.sensor] = {std::move(st), predictors::Prediction{}};
    }
  }
}

void PredictionServer::UpdateBatchTarget(Shard* shard, std::size_t backlog,
                                         std::size_t sheds) {
  static obs::Gauge& pool_depth =
      obs::Registry::Global().GetGauge("threadpool.queue_depth");
  const std::size_t initial =
      std::min<std::size_t>(options_.queue_capacity, kInitialBatchTarget);
  std::size_t target = shard->batch_target;
  if (sheds > 0) {
    // Deadline sheds mean batches are forming for longer than clients can
    // wait: shrink aggressively (below the idle floor if needed).
    target = std::max<std::size_t>(1, target / 2);
  } else if (backlog >= target) {
    // Backlog built up while we processed: bigger batches amortize more
    // launches — unless the device's thread pool is already congested
    // (PR 6 stage clock shows gram/cholesky dominating then), in which
    // case a bigger fan-in would only grow the convoy.
    const bool pool_congested =
        pool_depth.value() >
        2.0 * static_cast<double>(ThreadPool::Default().size());
    if (!pool_congested) {
      target = std::min(options_.queue_capacity, target * 2);
    }
  } else if (backlog < target / 4 && target > initial) {
    // Load receded: drift back toward the idle floor for tail latency.
    target = std::max(initial, target / 2);
  }
  if (target != shard->batch_target) {
    shard->batch_target = target;
    shard->batch_target_gauge->Set(static_cast<double>(target));
  }
}

void PredictionServer::Respond(Shard* shard, Request* req, Response response) {
  double latency = 0.0;
  {
    obs::StageScope publish(obs::Stage::kPublish);
    latency = Seconds(Clock::now() - req->enqueued_at);
    shard->latency->Observe(latency);
    LatencyHistogram().Observe(latency);
    // Every admitted request passes through here exactly once (success,
    // engine error, or deadline shed alike), so after a drain the counters
    // conserve: serve.requests == serve.completed. The queue-depth gauge
    // is NOT touched here — it is settled at claim time (see ClaimBatch),
    // so it conserves to 0 independently of response bookkeeping.
    CompletedCounter().Increment();
  }
  // Publish the attribution once the publish stage has closed, then
  // fulfil the promise (the exemplar is complete before the client can
  // observe the response).
  if (req->ctx != nullptr) {
    obs::FinishRequest(*req->ctx, latency, shard->stage_seconds);
  }
  req->promise.set_value(std::move(response));
}

Result<std::vector<core::EngineSnapshot>> PredictionServer::Snapshot() {
  using ShardSnaps = std::vector<std::pair<std::size_t, core::EngineSnapshot>>;
  std::vector<std::future<ShardSnaps>> futures;
  std::vector<std::future<Response>> acks;
  futures.reserve(shards_.size());
  acks.reserve(shards_.size());
  for (auto& shard : shards_) {
    Request req;
    req.kind = Request::Kind::kSnapshot;
    // Address the snapshot to the shard's first sensor so Enqueue routes
    // it there; the worker snapshots every engine the shard owns.
    req.sensor = shard->sensors.front();
    req.snapshot_promise = std::make_shared<std::promise<ShardSnaps>>();
    futures.push_back(req.snapshot_promise->get_future());
    acks.push_back(Enqueue(std::move(req)));
  }
  std::vector<core::EngineSnapshot> merged(manager_.num_sensors());
  for (std::size_t s = 0; s < futures.size(); ++s) {
    Response ack = acks[s].get();
    if (!ack.status.ok()) return ack.status;  // e.g. server shut down
    for (auto& [sensor, snap] : futures[s].get()) {
      merged[sensor] = std::move(snap);
    }
  }
  return merged;
}

std::future<Status> PredictionServer::AsyncSaveCheckpoint(std::string path) {
  auto promise = std::make_shared<std::promise<Status>>();
  std::future<Status> future = promise->get_future();
  auto snaps = Snapshot();
  if (!snaps.ok()) {
    promise->set_value(snaps.status());
    return future;
  }
  // The quiescing part is done; serialization and file IO happen off the
  // shard workers so serving resumes while bytes hit disk.
  ThreadPool::Default().Submit(
      [promise, path = std::move(path), snaps = std::move(*snaps)] {
        promise->set_value(Checkpoint::Save(path, snaps));
      });
  return future;
}

Status PredictionServer::SaveCheckpoint(const std::string& path) {
  return AsyncSaveCheckpoint(path).get();
}

void PredictionServer::Shutdown() {
  if (!running_.exchange(false, std::memory_order_seq_cst)) return;
  for (auto& shard : shards_) {
    shard->stop.store(true, std::memory_order_seq_cst);
    // Taking and dropping wake_mu pins any concurrent Park() either
    // before its predicate check (it will see stop) or inside the wait
    // (the notify reaches it): no lost shutdown wakeup.
    { std::lock_guard<std::mutex> lock(shard->wake_mu); }
    shard->wake_cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

}  // namespace serve
}  // namespace smiler
