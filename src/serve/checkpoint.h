#ifndef SMILER_SERVE_CHECKPOINT_H_
#define SMILER_SERVE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "core/snapshot_codec.h"

namespace smiler {
namespace serve {

/// \brief Warm-restart snapshots: serializes a fleet of EngineSnapshots to
/// a versioned binary file and back.
///
/// A restarted server loads the file, rebuilds each engine with
/// `core::SensorEngine::Restore`, and resumes continuous prediction
/// without replaying history or re-indexing — subsequent predictions are
/// bitwise-identical to a server that never restarted (the snapshot
/// carries the incremental index state verbatim, see
/// `index::IndexSnapshot`).
///
/// File layout (all integers little-endian, doubles raw IEEE-754):
///
///   magic "SMLRCKPT" | u32 format version | u32 engine count
///   per engine: u64 payload bytes | u64 FNV-1a of payload | payload
///
/// Version policy (docs/architecture.md): the version is bumped whenever
/// the payload layout changes; Load rejects files whose version does not
/// match kFormatVersion (warm restarts never guess at stale layouts —
/// a rejected checkpoint means the server falls back to a cold build).
/// Corruption (bad magic, truncation, checksum mismatch) fails with
/// InvalidArgument; a version mismatch fails with FailedPrecondition.
///
/// The payload codec itself lives in core::SerializeSnapshotBlob /
/// core::ParseSnapshotBlob so the cold-tier spill segments
/// (store::TieredStateStore) share the exact wire format; this class
/// owns only the checkpoint-file IO (atomic tmp+rename, fault points).
class Checkpoint {
 public:
  /// Current payload layout version.
  static constexpr std::uint32_t kFormatVersion = core::kSnapshotFormatVersion;

  /// Serializes \p engines to \p path. The write is atomic: the payload
  /// lands in "<path>.tmp" and is renamed over \p path only once fully
  /// flushed, so a crash mid-save never clobbers the previous checkpoint.
  static Status Save(const std::string& path,
                     const std::vector<core::EngineSnapshot>& engines);

  /// Loads and validates a checkpoint written by Save.
  static Result<std::vector<core::EngineSnapshot>> Load(
      const std::string& path);
};

}  // namespace serve
}  // namespace smiler

#endif  // SMILER_SERVE_CHECKPOINT_H_
