#ifndef SMILER_SERVE_SERVER_H_
#define SMILER_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "core/manager.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "predictors/predictor.h"

namespace smiler {
namespace serve {

/// Wall clock of the serving layer (deadlines, latency accounting).
using Clock = std::chrono::steady_clock;
/// Absolute per-request deadline; kNoDeadline = never expires.
using Deadline = Clock::time_point;
inline constexpr Deadline kNoDeadline = Deadline::max();

/// \brief Sizing of a PredictionServer.
struct ServerOptions {
  /// Worker shards. Each shard is single-threaded over the engines it
  /// owns (sensors assigned round-robin), so engine code stays lock-free.
  int num_shards = 2;
  /// Bounded per-shard request queue. Enqueueing into a full queue is
  /// rejected immediately with kResourceExhausted (admission control) —
  /// the server sheds load instead of buffering unboundedly or blocking.
  std::size_t queue_capacity = 256;
  /// Micro-batching: when a shard drains its queue, Predict requests for
  /// a sensor whose engine state has not changed since the batch's
  /// previous Predict of that sensor share one engine pass (one set of
  /// simgpu launches serves every co-resident client).
  bool coalesce_predicts = true;
};

/// \brief Outcome of one request. `prediction` is meaningful only for
/// Predict requests whose `status` is OK.
struct Response {
  Status status;
  predictors::Prediction prediction;
};

/// \brief Multi-tenant prediction front-end over a fleet of SensorEngines
/// (the ROADMAP's "serve heavy traffic" layer; per-sensor engines are
/// naturally shardable — Section 4.4 "invoke more blocks").
///
/// Architecture: sensors are sharded round-robin across worker shards.
/// Each shard owns a bounded MPSC queue and a single worker thread that
/// drains the queue in batches, so per-engine execution is serial (no
/// locks in engine code) while shards run concurrently. Admission control
/// rejects when a queue is full; expired deadlines are shed at dequeue
/// time, before any search work is paid for. `Snapshot` quiesces each
/// shard at a batch boundary and exports every engine's state for
/// `serve::Checkpoint` warm restarts.
///
/// Thread safety: all public methods are safe to call from any number of
/// client threads. Every accepted request is eventually answered exactly
/// once (shutdown drains the queues first), so closed-loop clients never
/// hang on a lost response.
class PredictionServer {
 public:
  /// Takes ownership of \p manager's engine fleet and starts the shard
  /// workers. num_shards is clamped to the sensor count.
  static Result<std::unique_ptr<PredictionServer>> Create(
      core::MultiSensorManager manager, const ServerOptions& options = {});

  /// Shuts down (drains queues, joins workers) if still running.
  ~PredictionServer();

  PredictionServer(const PredictionServer&) = delete;
  PredictionServer& operator=(const PredictionServer&) = delete;

  /// Enqueues a forecast request for \p sensor. The future is satisfied
  /// with the prediction, or with kResourceExhausted (queue full — set
  /// before this returns), kDeadlineExceeded (shed after \p deadline
  /// passed), kInvalidArgument (unknown sensor), or kFailedPrecondition
  /// (server shut down).
  std::future<Response> AsyncPredict(std::size_t sensor,
                                     Deadline deadline = kNoDeadline);

  /// Enqueues ingestion of \p sensor's next observed value. Same failure
  /// modes as AsyncPredict; `prediction` in the response is unused.
  std::future<Response> AsyncObserve(std::size_t sensor, double value,
                                     Deadline deadline = kNoDeadline);

  /// Blocking conveniences over the async calls.
  Result<predictors::Prediction> Predict(std::size_t sensor,
                                         Deadline deadline = kNoDeadline);
  Status Observe(std::size_t sensor, double value,
                 Deadline deadline = kNoDeadline);

  /// Exports every engine's state, one snapshot per sensor in sensor
  /// order. Each shard snapshots its engines at a batch boundary, so
  /// every per-engine snapshot is consistent (no mid-request state);
  /// across shards the cut is not a single global instant. Concurrent
  /// traffic keeps flowing on other shards while one shard snapshots.
  Result<std::vector<core::EngineSnapshot>> Snapshot();

  /// Snapshot() + Checkpoint::Save. The quiescing snapshot runs inline;
  /// serialization and file IO are offloaded to the process thread pool
  /// (ThreadPool::Submit), so shards resume serving while bytes hit disk.
  std::future<Status> AsyncSaveCheckpoint(std::string path);
  /// Blocking AsyncSaveCheckpoint.
  Status SaveCheckpoint(const std::string& path);

  /// Stops accepting new requests, answers everything already queued,
  /// and joins the shard workers. Idempotent.
  void Shutdown();

  std::size_t num_sensors() const { return manager_.num_sensors(); }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Direct engine access for tests and post-shutdown inspection. Only
  /// safe while no shard worker is running requests for this engine
  /// (i.e. after Shutdown, or for engines receiving no traffic).
  const core::SensorEngine& engine(std::size_t i) const {
    return manager_.engine(i);
  }

 private:
  struct Request {
    enum class Kind { kPredict, kObserve, kSnapshot };
    Kind kind = Kind::kPredict;
    std::size_t sensor = 0;
    double value = 0.0;
    Deadline deadline = kNoDeadline;
    Clock::time_point enqueued_at;
    /// Request-scoped trace context (null for snapshot barriers): minted
    /// at admission, rides the queue to the shard worker, and links every
    /// span the request produces — on the caller, the worker, and the
    /// thread-pool fan-out — under one trace id while accumulating the
    /// per-stage latency attribution.
    std::shared_ptr<obs::RequestContext> ctx;
    std::promise<Response> promise;
    /// Set only for kSnapshot: receives (sensor, snapshot) pairs of the
    /// shard's engines.
    std::shared_ptr<
        std::promise<std::vector<std::pair<std::size_t, core::EngineSnapshot>>>>
        snapshot_promise;
  };

  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Request> queue;
    bool stop = false;
    int index = 0;
    std::vector<std::size_t> sensors;  ///< engine indices owned
    std::thread worker;
    obs::Gauge* queue_depth = nullptr;
    obs::Histogram* latency = nullptr;
    /// Per-shard cumulative owner-clock seconds by stage
    /// (`serve.shard<i>.stage.<name>_seconds_total`), fed by FinishRequest.
    obs::Gauge* stage_seconds[obs::kNumStages] = {};
  };

  PredictionServer(core::MultiSensorManager manager,
                   const ServerOptions& options);

  std::future<Response> Enqueue(Request req);
  void ShardLoop(Shard* shard);
  /// \p claim_us: Tracer::NowMicros() at the instant the batch was claimed
  /// from the queue — the boundary between queue_wait and batch_form.
  void ProcessBatch(Shard* shard, std::vector<Request>* batch,
                    std::int64_t claim_us);
  void Respond(Shard* shard, Request* req, Response response);

  core::MultiSensorManager manager_;
  ServerOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> running_{true};
};

}  // namespace serve
}  // namespace smiler

#endif  // SMILER_SERVE_SERVER_H_
