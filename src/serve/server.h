#ifndef SMILER_SERVE_SERVER_H_
#define SMILER_SERVE_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "core/manager.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "predictors/predictor.h"
#include "serve/spsc_ring.h"

namespace smiler {
namespace store {
class TieredStateStore;
}  // namespace store
namespace serve {

/// Wall clock of the serving layer (deadlines, latency accounting).
using Clock = std::chrono::steady_clock;
/// Absolute per-request deadline; kNoDeadline = never expires.
using Deadline = Clock::time_point;
inline constexpr Deadline kNoDeadline = Deadline::max();

/// \brief Sizing of a PredictionServer.
struct ServerOptions {
  /// Worker shards. Each shard is single-threaded over the engines it
  /// owns (sensors assigned round-robin), so engine code stays lock-free.
  int num_shards = 2;
  /// Bounded per-shard admission budget, enforced across every producer
  /// lane of the shard. Enqueueing into a full shard is rejected
  /// immediately with kResourceExhausted (admission control) — the
  /// server sheds load instead of buffering unboundedly or blocking.
  std::size_t queue_capacity = 256;
  /// Micro-batching: when a shard drains a batch, Predict requests for
  /// a sensor whose engine state has not changed since the batch's
  /// previous Predict of that sensor share one engine pass (one set of
  /// simgpu launches serves every co-resident client).
  bool coalesce_predicts = true;
  /// Execute multi-sensor Predict segments as a dataflow task graph
  /// (TaskGraph over the process pool): per-sensor stage chains
  /// rehydrate -> lb_filter -> dtw_verify -> cholesky -> forecast, with
  /// the cross-sensor fused Gram launch as a join node between verify and
  /// cholesky, so one sensor's DTW verify overlaps another's lower
  /// bounds and tiered-store rehydration IO overlaps warm sensors'
  /// compute. Predictions are bitwise-identical to the phase-barrier
  /// path (task_graph_equivalence_test pins that); disable to fall back
  /// to barriered phases (the bench's comparison baseline).
  bool use_task_graph = true;
};

/// \brief Outcome of one request. `prediction` is meaningful only for
/// Predict requests whose `status` is OK.
struct Response {
  Status status;
  predictors::Prediction prediction;
};

/// \brief Multi-tenant prediction front-end over a fleet of SensorEngines
/// (the ROADMAP's "serve heavy traffic" layer; per-sensor engines are
/// naturally shardable — Section 4.4 "invoke more blocks").
///
/// Architecture (docs/architecture.md section 5.5): sensors are sharded
/// round-robin across worker shards. The data plane between clients and a
/// shard is a set of lock-free SPSC rings — one lane per (producer
/// thread, shard) pair — so the steady-state enqueue path takes no lock;
/// a shard-wide reservation counter enforces `queue_capacity` across the
/// lanes. Each shard's single worker thread drains the lanes into
/// near-FIFO micro-batches (merged by enqueue time) whose size adapts to
/// the observed backlog, and executes each multi-sensor Predict segment
/// as one fleet-wide dataflow task graph (per-sensor stage chains with
/// the fused cross-sensor `gp.gram_batch` device launch as a join node;
/// see ServerOptions::use_task_graph). Admission
/// control rejects when the shard is full; expired deadlines are shed at
/// dequeue time, before any search work is paid for. `Snapshot` barriers
/// travel on a separate control-plane queue (exempt from data-plane
/// capacity) and quiesce each shard at a batch boundary, exporting every
/// engine's state for `serve::Checkpoint` warm restarts.
///
/// Thread safety: all public methods are safe to call from any number of
/// client threads. Every accepted request is eventually answered exactly
/// once (shutdown drains the lanes first), so closed-loop clients never
/// hang on a lost response.
class PredictionServer {
 public:
  /// Takes ownership of \p manager's engine fleet and starts the shard
  /// workers. num_shards is clamped to the sensor count.
  static Result<std::unique_ptr<PredictionServer>> Create(
      core::MultiSensorManager manager, const ServerOptions& options = {});

  /// Shuts down (drains queues, joins workers) if still running.
  ~PredictionServer();

  PredictionServer(const PredictionServer&) = delete;
  PredictionServer& operator=(const PredictionServer&) = delete;

  /// Enqueues a forecast request for \p sensor. The future is satisfied
  /// with the prediction, or with kResourceExhausted (queue full — set
  /// before this returns), kDeadlineExceeded (shed after \p deadline
  /// passed), kInvalidArgument (unknown sensor), or kFailedPrecondition
  /// (server shut down).
  std::future<Response> AsyncPredict(std::size_t sensor,
                                     Deadline deadline = kNoDeadline);

  /// Enqueues ingestion of \p sensor's next observed value. Same failure
  /// modes as AsyncPredict; `prediction` in the response is unused.
  std::future<Response> AsyncObserve(std::size_t sensor, double value,
                                     Deadline deadline = kNoDeadline);

  /// Blocking conveniences over the async calls.
  Result<predictors::Prediction> Predict(std::size_t sensor,
                                         Deadline deadline = kNoDeadline);
  Status Observe(std::size_t sensor, double value,
                 Deadline deadline = kNoDeadline);

  /// Attaches a tiered state store (store::TieredStateStore) that takes
  /// over engine residency for this fleet. Call once, before issuing
  /// traffic. Shard workers then Pin each distinct sensor of a batch at
  /// its first engine touch — as a leaf IO node of the predict task
  /// graph (overlapping other sensors' compute) or inline before an
  /// Observe — so rehydration cost lands in the dedicated `rehydrate`
  /// stage of the latency taxonomy, not hidden inside batch_form. The
  /// byte budget is swept at each batch boundary. A request whose sensor
  /// fails to rehydrate (e.g. the store.rehydrate_read_short fault) is
  /// answered with that Status; the cold state stays intact and the next
  /// batch retries. The store must outlive the server.
  Status AttachStore(store::TieredStateStore* store);

  /// Exports every engine's state, one snapshot per sensor in sensor
  /// order. Each shard snapshots its engines at a batch boundary, so
  /// every per-engine snapshot is consistent (no mid-request state);
  /// across shards the cut is not a single global instant. Concurrent
  /// traffic keeps flowing on other shards while one shard snapshots.
  Result<std::vector<core::EngineSnapshot>> Snapshot();

  /// Snapshot() + Checkpoint::Save. The quiescing snapshot runs inline;
  /// serialization and file IO are offloaded to the process thread pool
  /// (ThreadPool::Submit), so shards resume serving while bytes hit disk.
  std::future<Status> AsyncSaveCheckpoint(std::string path);
  /// Blocking AsyncSaveCheckpoint.
  Status SaveCheckpoint(const std::string& path);

  /// Stops accepting new requests, answers everything already queued,
  /// and joins the shard workers. Idempotent.
  void Shutdown();

  std::size_t num_sensors() const { return manager_.num_sensors(); }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Direct engine access for tests and post-shutdown inspection. Only
  /// safe while no shard worker is running requests for this engine
  /// (i.e. after Shutdown, or for engines receiving no traffic).
  const core::SensorEngine& engine(std::size_t i) const {
    return manager_.engine(i);
  }

 private:
  struct Request {
    enum class Kind { kPredict, kObserve, kSnapshot };
    Kind kind = Kind::kPredict;
    std::size_t sensor = 0;
    double value = 0.0;
    Deadline deadline = kNoDeadline;
    Clock::time_point enqueued_at;
    /// Request-scoped trace context (null for snapshot barriers): minted
    /// at admission, rides the queue to the shard worker, and links every
    /// span the request produces — on the caller, the worker, and the
    /// thread-pool fan-out — under one trace id while accumulating the
    /// per-stage latency attribution.
    std::shared_ptr<obs::RequestContext> ctx;
    std::promise<Response> promise;
    /// Set only for kSnapshot: receives (sensor, snapshot) pairs of the
    /// shard's engines.
    std::shared_ptr<
        std::promise<std::vector<std::pair<std::size_t, core::EngineSnapshot>>>>
        snapshot_promise;
  };

  /// One producer thread's private SPSC lane into one shard.
  struct Lane {
    explicit Lane(std::size_t capacity) : ring(capacity) {}
    SpscRing<Request> ring;
  };

  /// Dedicated-lane slots per shard. Producer threads beyond this fall
  /// back to the mutex-guarded overflow deque (correctness path only).
  static constexpr int kMaxLanes = 32;

  struct Shard {
    int index = 0;
    std::vector<std::size_t> sensors;  ///< engine indices owned

    // Data plane: one lock-free SPSC lane per producer thread, created
    // lazily by its owner and published with a release store so the
    // worker's scan needs no lock. Each ring is sized >= queue_capacity,
    // so a successful `depth` reservation can never meet a full ring.
    std::array<std::atomic<Lane*>, kMaxLanes> lanes{};
    std::mutex overflow_mu;
    std::deque<Request> overflow;
    std::atomic<std::size_t> overflow_size{0};

    /// Admitted-but-unclaimed requests across all lanes; the admission
    /// reservation against queue_capacity.
    std::atomic<std::size_t> depth{0};
    /// Producers inside Enqueue between their running_ check and the
    /// completed push; the shutdown drain waits for 0 before the final
    /// sweep so every accepted request is answered exactly once.
    std::atomic<int> enqueuing{0};
    std::atomic<bool> stop{false};

    // Control plane: snapshot barriers are rare and must not be starved
    // by data-plane load, so they bypass the capacity check on their own
    // tiny mutex-guarded queue.
    std::mutex control_mu;
    std::deque<Request> control;
    std::atomic<int> control_size{0};

    // Worker parking: steady state is lock-free; the worker only takes
    // wake_mu when the shard went idle, and producers only touch it when
    // they observe `sleeping`.
    std::mutex wake_mu;
    std::condition_variable wake_cv;
    std::atomic<bool> sleeping{false};

    std::thread worker;

    /// Adaptive micro-batch size (worker-owned; see UpdateBatchTarget).
    std::size_t batch_target = 1;

    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* batch_target_gauge = nullptr;
    obs::Histogram* latency = nullptr;
    /// Per-shard cumulative owner-clock seconds by stage
    /// (`serve.shard<i>.stage.<name>_seconds_total`), fed by FinishRequest.
    obs::Gauge* stage_seconds[obs::kNumStages] = {};

    ~Shard() {
      for (auto& lane : lanes) delete lane.load(std::memory_order_relaxed);
    }
  };

  using PredictCache = std::unordered_map<std::size_t, Response>;

  PredictionServer(core::MultiSensorManager manager,
                   const ServerOptions& options);

  std::future<Response> Enqueue(Request req);
  /// The calling thread's dedicated lane into \p shard (created on first
  /// use); nullptr when all kMaxLanes slots are taken (overflow path).
  Lane* ProducerLane(Shard& shard);
  void WakeWorker(Shard& shard);
  void Park(Shard* shard);
  void ShardLoop(Shard* shard);
  /// Pops up to \p limit requests from the lanes (and overflow) into
  /// \p batch, merged by enqueue time (near-FIFO), decrementing the
  /// depth reservation at claim time.
  std::size_t ClaimBatch(Shard* shard, std::vector<Request>* batch,
                         std::size_t limit);
  void DrainControl(Shard* shard);
  /// \p claim_us: Tracer::NowMicros() at the instant the batch was claimed
  /// from the lanes — the boundary between queue_wait and batch_form.
  /// Returns the number of deadline-shed requests (adaptive-batch signal).
  std::size_t ProcessBatch(Shard* shard, std::vector<Request>* batch,
                           std::int64_t claim_us);
  /// Handles the maximal Predict segment starting at \p begin; returns
  /// the index one past the segment. \p pinned / \p pin_failed carry the
  /// batch's residency state (sensors pinned so far, and sensors whose
  /// pin failed mapped to the failure Status — their requests are
  /// answered with it instead of touching the engine); the segment's
  /// lazy pins are merged back into both.
  std::size_t ExecutePredictSegment(
      Shard* shard, std::vector<Request>* batch, std::size_t begin,
      std::int64_t claim_us, PredictCache* cache, std::size_t* sheds,
      store::TieredStateStore* store, std::vector<std::size_t>* pinned,
      std::unordered_map<std::size_t, Status>* pin_failed);
  /// Runs the engine passes for \p sensors into \p results, pinning any
  /// sensor not yet resident (outcomes merged into \p pinned /
  /// \p pin_failed). Several sensors execute as one fleet — a task graph
  /// (options_.use_task_graph) or barriered phases — sharing one fused
  /// gram launch; a single sensor takes the monolithic path.
  void ExecutePredictFleet(const std::vector<std::size_t>& sensors,
                           std::unordered_map<std::size_t, Response>* results,
                           store::TieredStateStore* store,
                           std::vector<std::size_t>* pinned,
                           std::unordered_map<std::size_t, Status>* pin_failed);
  /// The task-graph fleet executor behind ExecutePredictFleet.
  void ExecutePredictFleetGraph(
      const std::vector<std::size_t>& sensors,
      std::unordered_map<std::size_t, Response>* results,
      store::TieredStateStore* store, std::vector<std::size_t>* pinned,
      std::unordered_map<std::size_t, Status>* pin_failed);
  void Respond(Shard* shard, Request* req, Response response);
  void UpdateBatchTarget(Shard* shard, std::size_t backlog, std::size_t sheds);
  /// Answers one snapshot barrier: store-aware (cold sensors decode from
  /// their spill segment) when a store is attached, direct otherwise.
  void ServeSnapshotBarrier(Shard* shard, Request* req);

  core::MultiSensorManager manager_;
  ServerOptions options_;
  std::size_t ring_capacity_ = 0;
  /// Process-unique id of this server instance; keys the thread-local
  /// producer-slot table (an address-reuse-proof lane identity).
  std::uint64_t epoch_ = 0;
  std::atomic<int> next_lane_slot_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> running_{true};
  /// Residency owner when attached (not owned; outlives the server).
  std::atomic<store::TieredStateStore*> store_{nullptr};
};

}  // namespace serve
}  // namespace smiler

#endif  // SMILER_SERVE_SERVER_H_
