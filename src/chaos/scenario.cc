#include "chaos/scenario.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>

#include "chaos/invariants.h"
#include "core/manager.h"
#include "obs/metrics.h"
#include "obs/stats_server.h"
#include "serve/checkpoint.h"
#include "serve/server.h"
#include "simgpu/device.h"
#include "store/tiered_store.h"
#include "ts/datasets.h"

namespace smiler {
namespace chaos {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Order-sensitive FNV-1a accumulator for the scenario fingerprint.
class Digest {
 public:
  void MixBytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= kFnvPrime;
    }
  }
  void MixStr(const std::string& s) { MixBytes(s.data(), s.size()); }
  void MixU64(std::uint64_t v) { MixBytes(&v, sizeof(v)); }
  void MixDouble(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    MixU64(bits);
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = kFnvOffset;
};

struct CounterBaseline {
  std::uint64_t requests = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;

  static CounterBaseline Read() {
    obs::Registry& reg = obs::Registry::Global();
    return CounterBaseline{reg.GetCounter("serve.requests").value(),
                           reg.GetCounter("serve.completed").value(),
                           reg.GetCounter("serve.rejected").value()};
  }
};

/// Requests rejected at enqueue never reach an engine; the engine state
/// they would have touched is exactly as before, so the sensor stays in
/// rotation. Likewise validation failures (InvalidArgument precedes all
/// mutation) and deadline sheds (dropped before any engine work). Every
/// other failure may have interrupted a multi-stage mutation (an append
/// half-applied, a prev_knn threshold seed half-updated), so the harness
/// quarantines the sensor — its state is deliberately suspect and further
/// traffic or invariant sweeps against it would only measure the fault,
/// not the system.
bool ShouldQuarantine(const Status& status) {
  if (status.ok()) return false;
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kDeadlineExceeded:
      return false;
    case StatusCode::kResourceExhausted:
      return status.message().find("request queue is full") ==
             std::string::npos;
    default:
      return true;
  }
}

}  // namespace

SmilerConfig MakeScenarioConfig() {
  SmilerConfig cfg;
  cfg.rho = 4;
  cfg.omega = 8;
  cfg.elv = {16, 24};
  cfg.ekv = {4, 8};
  cfg.horizon = 1;
  return cfg;
}

FaultSchedule DefaultSchedule() {
  FaultSchedule schedule;
  for (const FaultPointInfo& info : KnownFaultPoints()) {
    FaultSpec spec;
    spec.probability = 0.02;
    schedule.points[info.name] = spec;
  }
  // Device faults sit on the hottest paths (every search kernel); keep
  // them rarer so most steps still exercise the healthy pipeline.
  schedule.points["simgpu.launch"].probability = 0.005;
  schedule.points["simgpu.alloc"].probability = 0.005;
  schedule.points["shared_mem.alloc"].probability = 0.01;
  return schedule;
}

ScenarioRunner::ScenarioRunner(ScenarioOptions options)
    : opt_(std::move(options)) {}

ScenarioResult ScenarioRunner::Run() {
  ScenarioResult result;
  Digest digest;
  FaultRegistry& registry = FaultRegistry::Global();
  registry.Disarm();  // never inherit another run's schedule

  // --- Build the fleet (faults disarmed: construction is scaffolding,
  // not the system under test).
  ts::DatasetSpec spec;
  spec.kind = ts::DatasetKind::kRoad;
  spec.num_sensors = opt_.num_sensors;
  spec.points_per_sensor = opt_.history_points + opt_.steps + 4;
  spec.samples_per_day = 64;
  spec.seed = opt_.seed * 0x9E3779B97F4A7C15ULL + 2015;
  auto data_or = ts::MakeDataset(spec);
  if (!data_or.ok()) {
    result.status = data_or.status();
    return result;
  }
  std::vector<ts::TimeSeries> histories;
  std::vector<std::vector<double>> streams(opt_.num_sensors);
  for (int s = 0; s < opt_.num_sensors; ++s) {
    const std::vector<double>& full = (*data_or)[s].values();
    histories.emplace_back(
        (*data_or)[s].sensor_id(),
        std::vector<double>(full.begin(), full.begin() + opt_.history_points));
    streams[s].assign(full.begin() + opt_.history_points, full.end());
  }
  simgpu::Device device;
  auto manager_or =
      core::MultiSensorManager::Create(&device, histories, opt_.config,
                                       opt_.kind);
  if (!manager_or.ok()) {
    result.status = manager_or.status();
    return result;
  }
  serve::ServerOptions server_options;
  server_options.num_shards = opt_.num_shards;
  server_options.queue_capacity = opt_.queue_capacity;
  // Declared before the server so it outlives the fleet holding a raw
  // pointer to it (AttachStore), whatever the exit path.
  std::unique_ptr<store::TieredStateStore> tiered_store;
  auto server_or =
      serve::PredictionServer::Create(std::move(*manager_or), server_options);
  if (!server_or.ok()) {
    result.status = server_or.status();
    return result;
  }
  serve::PredictionServer& server = **server_or;
  if (opt_.store_spill_every > 0) {
    if (opt_.scratch_dir.empty()) {
      result.status = Status::InvalidArgument(
          "store_spill_every requires a scratch_dir for spill segments");
      return result;
    }
    store::StoreOptions store_options;
    store_options.dir = opt_.scratch_dir + "/store_segments";
    // Unlimited budget on purpose: evictions happen on the driver's fixed
    // cadence below, never on a timing-dependent byte threshold, so the
    // store fault-hit sequence replays bit-identically from the options.
    store_options.budget_bytes = std::numeric_limits<std::size_t>::max();
    auto store_or = store::TieredStateStore::Create(store_options);
    if (!store_or.ok()) {
      result.status = store_or.status();
      return result;
    }
    tiered_store = std::move(*store_or);
    Status attached = server.AttachStore(tiered_store.get());
    if (!attached.ok()) {
      result.status = attached;
      return result;
    }
  }
  const CounterBaseline base = CounterBaseline::Read();

  // Stats endpoint (scaffolding, started before arming): reuse the
  // process server if it is already up, otherwise start it for the run.
  int stats_port = -1;
  bool stats_started_here = false;
  if (opt_.stats_port >= 0) {
    obs::StatsServer& stats = obs::StatsServer::Global();
    if (stats.running()) {
      stats_port = stats.port();
    } else {
      stats_port = stats.Start(opt_.stats_port);
      stats_started_here = stats_port >= 0;
    }
  }

  // --- Arm. From here on every exit path must disarm, so the body below
  // has no early returns.
  FaultSchedule schedule = opt_.schedule;
  schedule.seed = opt_.seed;
  registry.Configure(schedule);

  std::vector<char> quarantined(opt_.num_sensors, 0);
  std::vector<std::size_t> stream_pos(opt_.num_sensors, 0);
  std::vector<double> last_value(opt_.num_sensors, 0.0);
  std::uint64_t predicts_issued = 0;
  std::uint64_t rejections = 0;
  std::uint64_t snapshot_barriers = 0;
  std::uint64_t anomaly_cycle = 0;
  bool have_good_checkpoint = false;
  const std::string ckpt_path =
      opt_.scratch_dir.empty() ? std::string()
                               : opt_.scratch_dir + "/chaos_scenario.ckpt";

  auto record = [&](const char* op, int sensor, const Status& status) {
    digest.MixStr(op);
    digest.MixU64(static_cast<std::uint64_t>(sensor));
    const std::string code = StatusCodeName(status.code());
    digest.MixStr(code);
    ++result.status_counts[code];
    ++result.ops;
    if (!status.ok() &&
        status.code() == StatusCode::kResourceExhausted &&
        status.message().find("request queue is full") != std::string::npos) {
      ++rejections;
    }
  };
  auto maybe_quarantine = [&](int sensor, const Status& status) {
    if (sensor >= 0 && !quarantined[sensor] && ShouldQuarantine(status)) {
      quarantined[sensor] = 1;
      ++result.quarantined;
      digest.MixStr("quarantine");
      digest.MixU64(static_cast<std::uint64_t>(sensor));
      // Surface the drained sensor on /healthz (what an operator's probe
      // would page on). Cleared in the teardown below; never fingerprinted.
      obs::HealthRegistry::Global().Set(
          "serve.sensor" + std::to_string(sensor), false,
          std::string("quarantined: ") + StatusCodeName(status.code()));
    }
  };

  for (int step = 0; step < opt_.steps; ++step) {
    // Predict round.
    for (int s = 0; s < opt_.num_sensors; ++s) {
      if (quarantined[s]) continue;
      serve::Deadline deadline = serve::kNoDeadline;
      ++predicts_issued;
      if (opt_.expired_deadline_every > 0 &&
          predicts_issued % opt_.expired_deadline_every == 0) {
        deadline = serve::Clock::now() - std::chrono::hours(1);
      }
      serve::Response response = server.AsyncPredict(s, deadline).get();
      record("predict", s, response.status);
      if (response.status.ok()) {
        digest.MixDouble(response.prediction.mean);
        digest.MixDouble(response.prediction.variance);
      }
      maybe_quarantine(s, response.status);
    }
    // Observe round: each healthy sensor ingests its next streamed point,
    // possibly corrupted by the ts.anomaly fault (driver-side: the
    // registry decides, the harness synthesizes the anomaly — NaN, +inf,
    // spike, stuck-at — and the engine must reject or absorb it without
    // breaking any invariant).
    for (int s = 0; s < opt_.num_sensors; ++s) {
      if (quarantined[s]) continue;
      const std::vector<double>& stream = streams[s];
      double value = stream[stream_pos[s] % stream.size()];
      ++stream_pos[s];
      if (registry.ShouldFire("ts.anomaly")) {
        switch (anomaly_cycle++ % 4) {
          case 0:
            value = std::numeric_limits<double>::quiet_NaN();
            break;
          case 1:
            value = std::numeric_limits<double>::infinity();
            break;
          case 2:
            value = 25.0 + 2.0 * value;  // far outside the z-score range
            break;
          default:
            value = last_value[s];  // stuck sensor
            break;
        }
      }
      serve::Response response =
          server.AsyncObserve(s, value, serve::kNoDeadline).get();
      record("observe", s, response.status);
      if (response.status.ok()) last_value[s] = value;
      maybe_quarantine(s, response.status);
    }

    // Tiered-storage round: demote one healthy sensor (round-robin) to
    // the cold tier with faults LIVE — a torn spill write
    // (store.spill_write) must abort the eviction with the engine still
    // resident, and the next batch's rehydrating Pin must survive (or
    // cleanly retry after) store.rehydrate_read_short. Never quarantine
    // on an eviction failure: the contract is precisely that the engine
    // was not touched.
    if (tiered_store != nullptr &&
        (step + 1) % opt_.store_spill_every == 0) {
      const int victim =
          (step / opt_.store_spill_every) % opt_.num_sensors;
      if (!quarantined[victim]) {
        // Quiesce before evicting: a shard batch releases its pins AFTER
        // answering its requests, so the driver's last response does not
        // imply the pin is gone. A fleet snapshot barrier completes only
        // after every in-flight batch (unpins included) has, which makes
        // the Evict outcome a pure function of the schedule again.
        // Paused, so the harness-internal barrier consumes no scheduled
        // fault hits.
        {
          ScopedPause pause;
          (void)server.Snapshot();
        }
        snapshot_barriers += static_cast<std::uint64_t>(server.num_shards());
        record("store.evict", victim,
               tiered_store->Evict(static_cast<std::size_t>(victim)));
      }
    }

    const bool checkpoint_now =
        (opt_.check_every > 0 && (step + 1) % opt_.check_every == 0) ||
        step == opt_.steps - 1;
    if (!checkpoint_now) continue;

    // Checkpoint traffic runs with faults LIVE: torn writes, failed
    // renames, and short reads are part of the surface under test. The
    // durability contract: after any number of failed saves, the last
    // successfully saved checkpoint must still load (atomic tmp+rename).
    if (!ckpt_path.empty()) {
      Status saved = server.SaveCheckpoint(ckpt_path);
      snapshot_barriers += static_cast<std::uint64_t>(server.num_shards());
      record("ckpt.save", -1, saved);
      if (saved.ok()) have_good_checkpoint = true;
      if (have_good_checkpoint) {
        auto loaded = serve::Checkpoint::Load(ckpt_path);
        record("ckpt.load", -1, loaded.status());
        if (loaded.ok() &&
            loaded->size() != static_cast<std::size_t>(opt_.num_sensors)) {
          result.violations.push_back(
              "recovery: checkpoint lost engines (got " +
              std::to_string(loaded->size()) + ")");
        }
        if (!loaded.ok() && loaded.status().code() == StatusCode::kNotFound) {
          result.violations.push_back(
              "recovery: previously saved checkpoint vanished (rename "
              "atomicity broken)");
        }
      }
    }

    // Invariant sweep over every healthy engine, with injection paused so
    // the harness's own snapshots and round-trip IO consume no scheduled
    // fault hits (replay determinism).
    {
      ScopedPause pause;
      auto snapshots_or = server.Snapshot();
      snapshot_barriers += static_cast<std::uint64_t>(server.num_shards());
      if (!snapshots_or.ok()) {
        result.violations.push_back("sweep: fleet snapshot failed: " +
                                    snapshots_or.status().ToString());
      } else {
        // With the store attached, any sensor may have round-tripped
        // through the quantized cold tier (cold snapshots decode the
        // spill segment; rehydrated engines carry decoded arenas), so
        // arena entries are judged as lower bounds, not bitwise.
        const ArenaCheckMode arena_mode =
            tiered_store != nullptr ? ArenaCheckMode::kQuantizedLowerBound
                                    : ArenaCheckMode::kExact;
        std::vector<core::EngineSnapshot> healthy;
        for (int s = 0; s < opt_.num_sensors; ++s) {
          if (quarantined[s]) continue;
          InvariantChecker::CheckEngineSnapshot(
              "step " + std::to_string(step) + " sensor " + std::to_string(s),
              (*snapshots_or)[s], &result.violations, arena_mode);
          healthy.push_back(std::move((*snapshots_or)[s]));
        }
        if (!opt_.scratch_dir.empty() && !healthy.empty()) {
          InvariantChecker::CheckCheckpointRoundTrip(healthy, opt_.scratch_dir,
                                                     &result.violations);
        }
        if (tiered_store != nullptr) {
          InvariantChecker::CheckStoreResidency("step " + std::to_string(step),
                                                *tiered_store,
                                                &result.violations);
        }
      }
    }

    // Poll the live endpoints mid-storm (faults stay armed: the obs layer
    // has no fault points, so the probes consume no scheduled hits and
    // replay determinism holds; probe outcomes are never fingerprinted).
    if (stats_port >= 0) {
      const std::string metrics =
          obs::StatsServer::Get(stats_port, "/metrics");
      const std::string health =
          obs::StatsServer::Get(stats_port, "/healthz");
      const std::string attribution =
          obs::StatsServer::Get(stats_port, "/attribution");
      if (metrics.find("smiler_serve_completed") != std::string::npos &&
          attribution.find("stage") != std::string::npos && !health.empty()) {
        result.stats_probe_ok = true;
      }
      if (health.find("503") != std::string::npos) {
        result.healthz_degraded_observed = true;
      }
    }
  }

  server.Shutdown();

  // Conservation: every admitted request (client ops that were not shed
  // at admission, plus num_shards snapshot barriers per fleet snapshot)
  // is answered exactly once.
  const CounterBaseline now = CounterBaseline::Read();
  const std::uint64_t admitted = now.requests - base.requests;
  const std::uint64_t completed = now.completed - base.completed;
  const std::uint64_t rejected = now.rejected - base.rejected;
  // Per-sensor queue traffic: every issued Predict plus every consumed
  // stream position is exactly one AsyncPredict/AsyncObserve call
  // (ckpt.save / ckpt.load records are file IO, not shard requests).
  std::uint64_t queue_ops = predicts_issued;
  for (std::size_t consumed : stream_pos) queue_ops += consumed;
  if (admitted != completed) {
    result.violations.push_back(
        "conservation: admitted " + std::to_string(admitted) +
        " != completed " + std::to_string(completed));
  }
  if (admitted != queue_ops - rejections + snapshot_barriers) {
    result.violations.push_back(
        "conservation: admitted " + std::to_string(admitted) +
        " != issued " + std::to_string(queue_ops) + " - rejected " +
        std::to_string(rejections) + " + barriers " +
        std::to_string(snapshot_barriers));
  }
  if (rejected != rejections) {
    result.violations.push_back(
        "conservation: serve.rejected delta " + std::to_string(rejected) +
        " != client-visible rejections " + std::to_string(rejections));
  }
  // Gauge conservation: the per-shard queue-depth gauges are level gauges
  // (+1 at admission, -claimed at batch claim), so after the shutdown
  // drain answered everything they must read exactly 0 — any residue
  // means an admit/claim accounting leak in the lock-free data plane.
  for (int s = 0; s < server.num_shards(); ++s) {
    const double depth = obs::Registry::Global()
                             .GetGauge("serve.shard" + std::to_string(s) +
                                       ".queue_depth")
                             .value();
    if (depth != 0.0) {
      result.violations.push_back(
          "conservation: serve.shard" + std::to_string(s) +
          ".queue_depth gauge reads " + std::to_string(depth) +
          " after drain (expected 0)");
    }
  }
  // Task-graph executor conservation: ready/running/done are level gauges
  // (+1 when a node becomes ready / starts / completes, settled back down
  // by the executor), so after every predict graph has drained all three
  // must read exactly 0 — residue means a node was claimed and never
  // finished, or finished without settling its bookkeeping.
  for (const char* gauge :
       {"serve.graph.ready_nodes", "serve.graph.running_nodes",
        "serve.graph.done_nodes"}) {
    const double level = obs::Registry::Global().GetGauge(gauge).value();
    if (level != 0.0) {
      result.violations.push_back("conservation: " + std::string(gauge) +
                                  " gauge reads " + std::to_string(level) +
                                  " after drain (expected 0)");
    }
  }

  // Fingerprint: op log (already mixed in issue order) + the sorted
  // trigger log + violations + outcome histogram.
  result.trigger_log = registry.TriggerLog();
  std::sort(result.trigger_log.begin(), result.trigger_log.end(),
            [](const TriggerRecord& a, const TriggerRecord& b) {
              if (a.point != b.point) return a.point < b.point;
              return a.hit < b.hit;
            });
  result.faults_fired = result.trigger_log.size();
  // Everything mixed so far is client-observable (ops, outcomes,
  // prediction bits): snapshot it before the trigger log folds in.
  result.value_fingerprint = digest.value();
  digest.MixU64(registry.Fingerprint());
  for (const std::string& v : result.violations) digest.MixStr(v);
  for (const auto& [code, count] : result.status_counts) {
    digest.MixStr(code);
    digest.MixU64(count);
  }
  result.fingerprint = digest.value();

  // Stats teardown: drop the health components this run registered and
  // stop the endpoint if this run started it (a server that was already
  // up belongs to the surrounding process and is left alone).
  for (int s = 0; s < opt_.num_sensors; ++s) {
    obs::HealthRegistry::Global().Clear("serve.sensor" + std::to_string(s));
  }
  if (stats_started_here) obs::StatsServer::Global().Stop();

  registry.Disarm();
  return result;
}

}  // namespace chaos
}  // namespace smiler
