#include "chaos/fault.h"

#include <algorithm>

namespace smiler {
namespace chaos {

namespace {

/// SplitMix64 finalizer (same constants as common/rng.h's seeding): a
/// high-quality 64-bit mix, used here so the fire/no-fire decision is a
/// pure function of (seed, point, hit).
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t Fnv1aStr(const char* s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

bool FaultRegistry::Decide(std::uint64_t seed, const char* point,
                           std::uint64_t hit, double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  const std::uint64_t mixed = Mix64(Mix64(seed ^ Fnv1aStr(point)) ^ hit);
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(mixed >> 11) * 0x1.0p-53;
  return u < probability;
}

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

void FaultRegistry::Configure(FaultSchedule schedule) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = schedule.seed;
  points_.clear();
  for (auto& [name, spec] : schedule.points) {
    FaultSpec clamped = spec;
    clamped.probability = std::clamp(clamped.probability, 0.0, 1.0);
    points_.emplace(name, PointState{clamped, 0, 0});
  }
  log_.clear();
  armed_.store(true, std::memory_order_release);
}

void FaultRegistry::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
  points_.clear();
  log_.clear();
}

bool FaultRegistry::ShouldFire(const char* point) {
  if (!armed_.load(std::memory_order_acquire)) return false;
  if (paused_.load(std::memory_order_acquire) > 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return false;
  PointState& st = it->second;
  const std::uint64_t hit = st.hits++;
  if (hit < st.spec.skip_first) return false;
  if (st.fired >= st.spec.max_triggers) return false;
  if (!Decide(seed_, point, hit, st.spec.probability)) return false;
  ++st.fired;
  log_.push_back(TriggerRecord{it->first, hit});
  return true;
}

std::uint64_t FaultRegistry::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

std::uint64_t FaultRegistry::TriggerCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fired;
}

std::uint64_t FaultRegistry::TotalTriggers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_.size();
}

std::vector<TriggerRecord> FaultRegistry::TriggerLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

std::uint64_t FaultRegistry::Fingerprint() const {
  std::vector<TriggerRecord> sorted = TriggerLog();
  std::sort(sorted.begin(), sorted.end(),
            [](const TriggerRecord& a, const TriggerRecord& b) {
              if (a.point != b.point) return a.point < b.point;
              return a.hit < b.hit;
            });
  std::uint64_t h = 1469598103934665603ULL;
  auto mix_byte = [&h](unsigned char byte) {
    h ^= byte;
    h *= 1099511628211ULL;
  };
  for (const TriggerRecord& rec : sorted) {
    for (char ch : rec.point) mix_byte(static_cast<unsigned char>(ch));
    mix_byte('#');
    for (int i = 0; i < 8; ++i) {
      mix_byte(static_cast<unsigned char>(rec.hit >> (8 * i)));
    }
    mix_byte(';');
  }
  return h;
}

const std::vector<FaultPointInfo>& KnownFaultPoints() {
  static const std::vector<FaultPointInfo>* points =
      new std::vector<FaultPointInfo>{
          {"simgpu.launch", "src/simgpu",
           "Device::Launch fails with kInternal before running any block"},
          {"simgpu.alloc", "src/simgpu",
           "Device::AllocateBytes fails with kResourceExhausted regardless "
           "of the budget"},
          {"shared_mem.alloc", "src/simgpu",
           "SharedMemory::Alloc returns nullptr (kernels must fall back, "
           "as on a real GPU whose shared memory is exhausted)"},
          {"ckpt.write", "src/serve",
           "Checkpoint::Save tears the .tmp write (half the blob reaches "
           "disk) and fails with kInternal; the previous checkpoint must "
           "survive"},
          {"ckpt.rename", "src/serve",
           "Checkpoint::Save fails with kInternal instead of publishing "
           "the atomic rename; the previous checkpoint must survive"},
          {"ckpt.read_short", "src/serve",
           "Checkpoint::Load sees a truncated read (half the file); must "
           "surface a Status error, never a partially-parsed fleet"},
          {"serve.enqueue", "src/serve",
           "PredictionServer::Enqueue rejects the request with "
           "kResourceExhausted as if the shard queue were full"},
          {"serve.enqueue_ring", "src/serve",
           "the lock-free SPSC push stage reports a full ring after the "
           "capacity reservation succeeded; Enqueue must undo the "
           "reservation and reject with kResourceExhausted"},
          {"ts.anomaly", "src/chaos (driver-side)",
           "ScenarioRunner corrupts the next observed value (NaN, +inf, "
           "spike, stuck sample) before feeding it to the server"},
          {"store.spill_write", "src/store",
           "TieredStateStore::Evict tears the .tmp segment write (half the "
           "blob reaches disk) and fails with kInternal; the engine stays "
           "resident and the previous segment must survive"},
          {"store.rehydrate_read_short", "src/store",
           "TieredStateStore::Pin sees a truncated segment read (half the "
           "mapped bytes); must fail the Pin with a Status error, leaving "
           "the cold state intact for a retry on the next batch"},
          {"graph.node_defer", "src/common",
           "the TaskGraph executor defers the claimed ready node to the "
           "back of the queue and runs another ready node instead — an "
           "adversarial but edge-respecting schedule; results and the "
           "scenario fingerprint must stay bit-identical"},
      };
  return *points;
}

}  // namespace chaos
}  // namespace smiler
