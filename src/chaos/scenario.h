#ifndef SMILER_CHAOS_SCENARIO_H_
#define SMILER_CHAOS_SCENARIO_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chaos/fault.h"
#include "common/config.h"
#include "common/status.h"
#include "core/engine.h"

namespace smiler {
namespace chaos {

/// Small TSan-friendly deployment geometry (rho = 4, omega = 8,
/// ELV = {16, 24}, EKV = {4, 8}) used by the default scenarios.
SmilerConfig MakeScenarioConfig();

/// Every cataloged fault point armed at a modest probability — enough to
/// fire a handful of times over a default-sized scenario without starving
/// the healthy path.
FaultSchedule DefaultSchedule();

/// \brief One scripted chaos run: a PredictionServer fleet driven through
/// a fixed request schedule while faults fire per the configured
/// FaultSchedule.
struct ScenarioOptions {
  /// Master seed: drives the dataset, the fault schedule (its own seed
  /// field is overwritten with this), and nothing else — two runs with
  /// equal options are bit-identical.
  std::uint64_t seed = 1;
  int num_sensors = 4;
  /// Points of history each engine is built with (before streaming).
  int history_points = 192;
  /// Closed-loop steps; each step sends one Predict and one Observe per
  /// healthy sensor.
  int steps = 24;
  int num_shards = 2;
  std::size_t queue_capacity = 64;
  /// Invariant sweep cadence (also always runs after the last step).
  int check_every = 6;
  /// Every Nth Predict carries an already-expired deadline and must be
  /// shed deterministically (0 disables).
  int expired_deadline_every = 7;
  /// Predictor for the fleet. AR keeps scenarios fast and bitwise
  /// deterministic under TSan.
  core::PredictorKind kind = core::PredictorKind::kAr;
  SmilerConfig config = MakeScenarioConfig();
  /// Fault schedule to arm for the run (seed is taken from `seed` above).
  FaultSchedule schedule;
  /// Directory for checkpoint traffic and round-trip scratch files.
  /// Empty disables all checkpoint exercising.
  std::string scratch_dir;
  /// Tiered-storage exercise: every Nth step the driver explicitly
  /// demotes one healthy sensor to the cold tier (round-robin), so the
  /// following Predict/Observe batch must rehydrate it — exercising the
  /// store.spill_write / store.rehydrate_read_short fault points on a
  /// DETERMINISTIC cadence (a byte-budget-driven eviction would make the
  /// fault-hit sequence timing-dependent and break fingerprint replay;
  /// the attached store therefore runs with an unlimited budget). 0
  /// disables; > 0 requires a non-empty scratch_dir for the segments.
  int store_spill_every = 0;
  /// Live stats endpoint under fault load: -1 disables (default); >= 0
  /// starts (or reuses) the process StatsServer on that port (0 =
  /// ephemeral) and polls /metrics, /healthz and /attribution at every
  /// invariant-sweep boundary, mid-fault-storm. Probe outcomes land in
  /// ScenarioResult but stay OUT of the fingerprint — polling must not
  /// perturb replay determinism.
  int stats_port = -1;
};

/// \brief Everything observable about a finished scenario. Two runs with
/// identical ScenarioOptions produce field-for-field identical results
/// (modulo `status` message text only on harness-setup failures).
struct ScenarioResult {
  /// Harness-level failure (dataset/fleet construction); fault-induced
  /// request failures do NOT set this — they land in status_counts.
  Status status;
  /// Invariant violations, in detection order. Empty on a correct run —
  /// whatever faults fired.
  std::vector<std::string> violations;
  /// Faults that actually fired, sorted by (point, hit) for
  /// order-stability across scheduling races.
  std::vector<TriggerRecord> trigger_log;
  /// Order-independent digest of ops, outcomes, prediction bits, trigger
  /// log, and violations. Equal seeds => equal fingerprints.
  std::uint64_t fingerprint = 0;
  /// Client-observable digest only: ops, outcomes, and prediction bits —
  /// `fingerprint` minus the trigger log / violations tail. A benign
  /// fault (graph.node_defer's adversarial-but-edge-respecting reorder)
  /// changes the trigger log and so `fingerprint`, but must leave this
  /// one bit-identical to an unperturbed run.
  std::uint64_t value_fingerprint = 0;
  /// Client operations issued (predicts + observes + checkpoint ops).
  std::uint64_t ops = 0;
  std::uint64_t faults_fired = 0;
  /// Outcome histogram keyed by StatusCodeName.
  std::map<std::string, std::uint64_t> status_counts;
  /// Sensors quarantined after an engine-level failure (a fault may leave
  /// an engine mid-mutation; the harness stops driving it and excludes it
  /// from invariant sweeps, mirroring how an operator would drain a
  /// wedged shard).
  int quarantined = 0;
  /// Stats-endpoint probes (stats_port >= 0 only; excluded from the
  /// fingerprint): true when every polled endpoint answered at least once.
  bool stats_probe_ok = false;
  /// True when a /healthz poll returned 503 — i.e. the endpoint surfaced
  /// a quarantined sensor while the storm was still running.
  bool healthz_degraded_observed = false;

  bool ok() const { return status.ok() && violations.empty(); }
};

/// \brief Drives a MultiSensorManager/PredictionServer fleet through a
/// scripted closed-loop schedule under the armed fault plan, checking
/// invariants as it goes.
///
/// Determinism contract: the driver is serial (one outstanding request at
/// a time), so the sequence of fault-point hits consumed by engine work
/// is a pure function of (seed, schedule) — any failing run replays
/// bit-identically from its ScenarioOptions. Inside one request the
/// simgpu launches still run concurrently, but every fault *decision* is
/// a pure function of (seed, point, hit_index), so the set of fired
/// faults and every Status outcome replay exactly.
class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioOptions options);

  /// Runs the scenario to completion (always shuts the fleet down and
  /// disarms the registry before returning).
  ScenarioResult Run();

 private:
  ScenarioOptions opt_;
};

}  // namespace chaos
}  // namespace smiler

#endif  // SMILER_CHAOS_SCENARIO_H_
