#include "chaos/invariants.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/fault.h"
#include "dtw/envelope.h"
#include "dtw/lower_bounds.h"
#include "index/csg.h"
#include "serve/checkpoint.h"

namespace smiler {
namespace chaos {
namespace {

/// Accumulates "<label>: <message>" strings into the caller's list.
class Reporter {
 public:
  Reporter(const std::string& label, std::vector<std::string>* out)
      : label_(label), out_(out) {}

  void Violate(const std::string& message) {
    ++count_;
    if (out_ != nullptr) out_->push_back(label_ + ": " + message);
  }

  int count() const { return count_; }

 private:
  const std::string& label_;
  std::vector<std::string>* out_;
  int count_ = 0;
};

bool AllFinite(const std::vector<double>& values) {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

std::string Str(long v) { return std::to_string(v); }

/// First index where the recomputed envelope disagrees with the stored
/// one, or -1 when they match exactly.
long FirstEnvelopeMismatch(const std::vector<double>& upper,
                           const std::vector<double>& lower,
                           const dtw::Envelope& expect) {
  if (upper.size() != expect.upper.size() ||
      lower.size() != expect.lower.size()) {
    return 0;
  }
  for (std::size_t i = 0; i < upper.size(); ++i) {
    if (upper[i] != expect.upper[i] || lower[i] != expect.lower[i]) {
      return static_cast<long>(i);
    }
  }
  return -1;
}

bool ReadFileBytes(const std::string& path, std::string* out) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return false;
  std::ostringstream buf;
  buf << file.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int InvariantChecker::CheckEngineSnapshot(const std::string& label,
                                          const core::EngineSnapshot& snap,
                                          std::vector<std::string>* out,
                                          ArenaCheckMode mode) {
  Reporter report(label, out);
  const SmilerConfig& cfg = snap.config;

  Status cfg_status = cfg.Validate();
  if (!cfg_status.ok()) {
    report.Violate("config invalid: " + cfg_status.message());
    return report.count();  // everything below depends on the geometry
  }
  const int omega = cfg.omega;
  const int rho = cfg.rho;
  const int d_max = cfg.MasterQueryLength();
  const int S = index::NumSlidingWindows(d_max, omega);
  const index::IndexSnapshot& idx = snap.index;
  const long n = static_cast<long>(idx.series.size());

  if (n < d_max + omega) {
    report.Violate("series too short: " + Str(n) + " < " + Str(d_max + omega));
    return report.count();
  }
  if (!AllFinite(idx.series)) {
    report.Violate("series contains a non-finite value");
    return report.count();  // envelopes/bounds would cascade
  }

  // --- Envelopes: the incremental maintenance (UpdateEnvelopeRange /
  // ShiftMqEnvelope) must equal a from-scratch recompute bitwise. min/max
  // are order-insensitive, so this holds exactly, not just approximately.
  bool envelopes_ok = true;
  if (idx.env_c_upper.size() != static_cast<std::size_t>(n) ||
      idx.env_c_lower.size() != static_cast<std::size_t>(n)) {
    report.Violate("history envelope size mismatch");
    envelopes_ok = false;
  }
  if (idx.env_mq_upper.size() != static_cast<std::size_t>(d_max) ||
      idx.env_mq_lower.size() != static_cast<std::size_t>(d_max)) {
    report.Violate("master-query envelope size mismatch");
    envelopes_ok = false;
  }
  const double* mq = idx.series.data() + n - d_max;
  if (envelopes_ok) {
    const dtw::Envelope env_c_expect =
        dtw::ComputeEnvelope(idx.series.data(), idx.series.size(), rho);
    long bad = FirstEnvelopeMismatch(idx.env_c_upper, idx.env_c_lower,
                                     env_c_expect);
    if (bad >= 0) {
      report.Violate("history envelope diverges from recompute at position " +
                     Str(bad));
      envelopes_ok = false;
    }
    const dtw::Envelope env_mq_expect = dtw::ComputeEnvelope(mq, d_max, rho);
    bad = FirstEnvelopeMismatch(idx.env_mq_upper, idx.env_mq_lower,
                                env_mq_expect);
    if (bad >= 0) {
      report.Violate(
          "master-query envelope diverges from recompute at position " +
          Str(bad));
      envelopes_ok = false;
    }
  }

  // --- Ring / arena geometry.
  bool geometry_ok = true;
  if (idx.head < 0 || idx.head >= S) {
    report.Violate("ring head " + Str(idx.head) + " outside [0, " + Str(S) +
                   ")");
    geometry_ok = false;
  }
  if (idx.cols != n / omega) {
    report.Violate("disjoint-window count " + Str(idx.cols) + " != " +
                   Str(n / omega));
    geometry_ok = false;
  }
  if (idx.arena_stride < idx.cols || idx.arena_stride % omega != 0) {
    report.Violate("arena stride " + Str(idx.arena_stride) +
                   " inconsistent with cols " + Str(idx.cols) + " / omega " +
                   Str(omega));
    geometry_ok = false;
  }
  if (idx.arena.size() !=
      static_cast<std::size_t>(S) * 2 * idx.arena_stride) {
    report.Violate("arena size " + Str(static_cast<long>(idx.arena.size())) +
                   " != S * 2 * stride");
    geometry_ok = false;
  }

  // --- Posting lists (the deep check). LBEC entries and non-head LBEQ
  // entries must equal a recompute bitwise: the incremental maintenance
  // recomputes exactly the perturbed entries with the same pure function,
  // and the reused ones cover the same absolute values. LBEQ entries of
  // head-region rows (master-query window inside the envelope's clamped
  // head, SlidingWindowBegin < rho + 1) may have been computed against an
  // older, wider envelope clamp; the stored value must then only be a
  // valid (not larger) lower bound: stored <= recomputed.
  // In kQuantizedLowerBound mode (engine round-tripped through the cold
  // tier's 16-bit spill encoding) every entry — LBEC included — must only
  // satisfy stored <= recomputed: the encoder rounds each level down, so
  // decoded entries are valid but not bitwise-identical bounds.
  const bool quantized = mode == ArenaCheckMode::kQuantizedLowerBound;
  if (envelopes_ok && geometry_ok) {
    dtw::Envelope env_c;
    env_c.upper = idx.env_c_upper;
    env_c.lower = idx.env_c_lower;
    dtw::Envelope env_mq;
    env_mq.upper = idx.env_mq_upper;
    env_mq.lower = idx.env_mq_lower;
    const long stride = idx.arena_stride;
    for (int b = 0; b < S && report.count() < 16; ++b) {
      const int phys = (idx.head + b) % S;
      const std::size_t mq_begin = static_cast<std::size_t>(
          index::SlidingWindowBegin(d_max, omega, b));
      const bool head_region = mq_begin < static_cast<std::size_t>(rho) + 1;
      const double* eq_row = idx.arena.data() +
                             static_cast<std::size_t>(phys) * 2 * stride;
      const double* ec_row = eq_row + stride;
      for (long r = 0; r < idx.cols; ++r) {
        const std::size_t c_begin = static_cast<std::size_t>(r) * omega;
        const double eq = eq_row[r];
        const double ec = ec_row[r];
        if (!std::isfinite(eq) || eq < 0.0 || !std::isfinite(ec) ||
            ec < 0.0) {
          report.Violate("posting (b=" + Str(b) + ", r=" + Str(r) +
                         ") not a finite non-negative bound");
          continue;
        }
        const double eq_expect = dtw::LbKeoghAligned(
            env_mq, mq_begin, idx.series.data(), c_begin, omega);
        const double ec_expect =
            dtw::LbKeoghAligned(env_c, c_begin, mq, mq_begin, omega);
        if (quantized ? (ec > ec_expect) : (ec != ec_expect)) {
          report.Violate("LBEC(b=" + Str(b) + ", r=" + Str(r) + ") " +
                         (quantized ? "exceeds" : "diverges from") +
                         " recompute: stored " + std::to_string(ec) +
                         " expected " + std::to_string(ec_expect));
        }
        const bool eq_lower_bound_only = head_region || quantized;
        if (eq_lower_bound_only ? (eq > eq_expect) : (eq != eq_expect)) {
          report.Violate("LBEQ(b=" + Str(b) + ", r=" + Str(r) + ") " +
                         (eq_lower_bound_only ? "exceeds" : "diverges from") +
                         " recompute: stored " + std::to_string(eq) +
                         " expected " + std::to_string(eq_expect));
        }
      }
    }
  }

  // --- Previous-result threshold seeds.
  if (idx.prev_knn.size() != cfg.elv.size()) {
    report.Violate("prev_knn arity " +
                   Str(static_cast<long>(idx.prev_knn.size())) + " != |ELV| " +
                   Str(static_cast<long>(cfg.elv.size())));
  } else {
    for (std::size_t i = 0; i < idx.prev_knn.size(); ++i) {
      const std::vector<index::Neighbor>& nbrs = idx.prev_knn[i];
      const int d = cfg.elv[i];
      if (static_cast<int>(nbrs.size()) > cfg.MaxK()) {
        report.Violate("prev_knn[" + Str(static_cast<long>(i)) +
                       "] holds more than MaxK neighbors");
      }
      long prev_t = -1;
      double prev_dist = -1.0;
      bool seen_dup = false, seen_order = false;
      for (const index::Neighbor& nb : nbrs) {
        if (nb.t < 0 || nb.t + d > n) {
          report.Violate("prev_knn[" + Str(static_cast<long>(i)) +
                         "] neighbor t=" + Str(nb.t) + " outside the series");
        }
        if (!std::isfinite(nb.dist) || nb.dist < 0.0) {
          report.Violate("prev_knn[" + Str(static_cast<long>(i)) +
                         "] neighbor t=" + Str(nb.t) +
                         " has an invalid distance");
        }
        if (nb.dist < prev_dist && !seen_order) {
          seen_order = true;
          report.Violate("prev_knn[" + Str(static_cast<long>(i)) +
                         "] not sorted by distance");
        }
        for (const index::Neighbor& other : nbrs) {
          if (&other != &nb && other.t == nb.t && !seen_dup) {
            seen_dup = true;
            report.Violate("prev_knn[" + Str(static_cast<long>(i)) +
                           "] holds duplicate neighbor t=" + Str(nb.t));
          }
        }
        prev_dist = nb.dist;
        prev_t = nb.t;
      }
      (void)prev_t;
    }
  }

  // --- Ensemble adaptive state.
  const std::size_t cells =
      cfg.ekv.size() * cfg.elv.size();
  if (snap.ensemble.cells.size() != cells) {
    report.Violate("ensemble cell count mismatch");
  } else {
    for (std::size_t c = 0; c < cells; ++c) {
      const auto& cell = snap.ensemble.cells[c];
      if (!std::isfinite(cell.weight) || cell.weight < 0.0) {
        report.Violate("ensemble cell " + Str(static_cast<long>(c)) +
                       " weight invalid");
      }
      if (cell.counter < 0 || cell.remaining < 0) {
        report.Violate("ensemble cell " + Str(static_cast<long>(c)) +
                       " sleep bookkeeping negative");
      }
    }
  }
  if (!std::isfinite(snap.ensemble.z_ewma) || snap.ensemble.z_ewma < 0.0 ||
      !std::isfinite(snap.ensemble.vif) || snap.ensemble.vif < 0.0) {
    report.Violate("ensemble calibration EWMA invalid");
  }

  // --- GP warm-start kernel cache.
  if (snap.gp_kernels.size() != cells) {
    report.Violate("gp_kernels size mismatch");
  } else {
    for (std::size_t c = 0; c < cells; ++c) {
      if (!snap.gp_kernels[c].has_value()) continue;
      for (double p : *snap.gp_kernels[c]) {
        if (!std::isfinite(p)) {
          report.Violate("gp_kernels[" + Str(static_cast<long>(c)) +
                         "] has a non-finite log-hyperparameter");
          break;
        }
      }
    }
  }

  // --- Pending forecasts.
  const long now = n - 1;
  long prev_target = 0;
  for (std::size_t p = 0; p < snap.pending.size(); ++p) {
    const auto& pf = snap.pending[p];
    if (pf.target_time <= now || pf.target_time > now + cfg.horizon) {
      report.Violate("pending[" + Str(static_cast<long>(p)) + "] target " +
                     Str(pf.target_time) + " outside (now, now + horizon]");
    }
    if (p > 0 && pf.target_time < prev_target) {
      report.Violate("pending targets not non-decreasing");
    }
    prev_target = pf.target_time;
    if (pf.grid.rows != static_cast<int>(cfg.ekv.size()) ||
        pf.grid.cols != static_cast<int>(cfg.elv.size())) {
      report.Violate("pending[" + Str(static_cast<long>(p)) +
                     "] grid shape mismatch");
      continue;
    }
    for (int i = 0; i < pf.grid.rows; ++i) {
      for (int j = 0; j < pf.grid.cols; ++j) {
        if (!pf.grid.Has(i, j)) continue;
        const auto& pred = pf.grid.At(i, j);
        if (!std::isfinite(pred.mean) || !std::isfinite(pred.variance) ||
            pred.variance < 0.0) {
          report.Violate("pending[" + Str(static_cast<long>(p)) + "] cell (" +
                         Str(i) + ", " + Str(j) + ") prediction invalid");
        }
      }
    }
    if (!std::isfinite(pf.raw.mean) || !std::isfinite(pf.raw.variance) ||
        pf.raw.variance < 0.0) {
      report.Violate("pending[" + Str(static_cast<long>(p)) +
                     "] raw combination invalid");
    }
  }

  return report.count();
}

int InvariantChecker::CheckCheckpointRoundTrip(
    const std::vector<core::EngineSnapshot>& snapshots,
    const std::string& scratch_dir, std::vector<std::string>* out) {
  Reporter report("roundtrip", out);
  // Harness-internal IO must not consume scheduled fault hits.
  ScopedPause pause;
  const std::string path_a = scratch_dir + "/chaos_roundtrip_a.ckpt";
  const std::string path_b = scratch_dir + "/chaos_roundtrip_b.ckpt";

  Status save = serve::Checkpoint::Save(path_a, snapshots);
  if (!save.ok()) {
    report.Violate("first save failed: " + save.ToString());
    return report.count();
  }
  auto loaded = serve::Checkpoint::Load(path_a);
  if (!loaded.ok()) {
    report.Violate("load of freshly saved checkpoint failed: " +
                   loaded.status().ToString());
    return report.count();
  }
  if (loaded->size() != snapshots.size()) {
    report.Violate("engine count changed across the round trip");
    return report.count();
  }
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    if ((*loaded)[i].index.series != snapshots[i].index.series) {
      report.Violate("engine " + Str(static_cast<long>(i)) +
                     " series changed across the round trip");
    }
    if ((*loaded)[i].index.arena != snapshots[i].index.arena) {
      report.Violate("engine " + Str(static_cast<long>(i)) +
                     " posting arena changed across the round trip");
    }
  }
  save = serve::Checkpoint::Save(path_b, *loaded);
  if (!save.ok()) {
    report.Violate("re-save failed: " + save.ToString());
    return report.count();
  }
  std::string bytes_a, bytes_b;
  if (!ReadFileBytes(path_a, &bytes_a) || !ReadFileBytes(path_b, &bytes_b)) {
    report.Violate("could not read checkpoint files back");
    return report.count();
  }
  if (bytes_a != bytes_b) {
    report.Violate("save -> load -> save is not byte-identical (" +
                   Str(static_cast<long>(bytes_a.size())) + " vs " +
                   Str(static_cast<long>(bytes_b.size())) + " bytes)");
  }
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
  return report.count();
}

int InvariantChecker::CheckStoreResidency(const std::string& label,
                                          const store::TieredStateStore& store,
                                          std::vector<std::string>* out) {
  Reporter report(label, out);
  const std::vector<store::TieredStateStore::SlotInfo> slots = store.Inspect();
  std::size_t charged = 0;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    const store::TieredStateStore::SlotInfo& info = slots[s];
    if (info.resident != info.engine_present) {
      report.Violate("store sensor " + Str(static_cast<long>(s)) +
                     (info.resident
                          ? " marked RESIDENT but the manager slot is empty"
                          : " marked COLD but a live engine occupies the "
                            "manager slot"));
    }
    if (!info.resident && !info.has_segment) {
      report.Violate("store sensor " + Str(static_cast<long>(s)) +
                     " is COLD without a published spill segment");
    }
    if (info.pins < 0) {
      report.Violate("store sensor " + Str(static_cast<long>(s)) +
                     " has a negative pin count");
    }
    if (info.pins > 0 && !info.resident) {
      report.Violate("store sensor " + Str(static_cast<long>(s)) +
                     " is pinned but not RESIDENT");
    }
    if (info.resident) charged += info.bytes;
  }
  if (charged != store.resident_bytes()) {
    report.Violate("store resident-byte ledger " +
                   Str(static_cast<long>(store.resident_bytes())) +
                   " != per-slot sum " + Str(static_cast<long>(charged)));
  }
  return report.count();
}

}  // namespace chaos
}  // namespace smiler
