#ifndef SMILER_CHAOS_INVARIANTS_H_
#define SMILER_CHAOS_INVARIANTS_H_

#include <string>
#include <vector>

#include "core/engine.h"
#include "store/tiered_store.h"

namespace smiler {
namespace chaos {

/// How CheckEngineSnapshot judges posting-arena entries against a
/// from-scratch recompute.
enum class ArenaCheckMode {
  /// Bitwise equality (head-region LBEQ rows excepted — see below). The
  /// mode for engines whose arena was maintained purely incrementally.
  kExact,
  /// stored <= recomputed for EVERY entry. The mode for engines that
  /// round-tripped through the cold tier: the 16-bit quantized spill
  /// encoding rounds each lower bound DOWN, so decoded entries are valid
  /// but not bitwise-identical bounds. Correctness (identical kNN sets,
  /// bitwise-identical predictions) rests on exactly this property.
  kQuantizedLowerBound,
};

/// \brief Structural validator for engine state, run by the chaos harness
/// after every scripted step: whatever faults were injected, a surviving
/// (non-quarantined) engine must still satisfy every invariant below.
///
/// The checks go far beyond "does Restore accept it" — they recompute the
/// derived state (envelopes, posting-list lower bounds) from the primary
/// state (the series) and compare. A fault that corrupts the incremental
/// index maintenance (Remark 1) without failing any Status path shows up
/// here as a violation.
class InvariantChecker {
 public:
  /// Validates one engine snapshot. Every violation found is appended to
  /// \p out as "<label>: <description>"; returns the number appended.
  ///
  /// Invariants checked:
  ///  - config validates; series long enough and all-finite
  ///  - history and master-query envelopes bitwise equal a from-scratch
  ///    recompute (incremental UpdateEnvelopeRange == full ComputeEnvelope)
  ///  - ring-buffer head in range, disjoint-window count and arena shape
  ///    consistent with the series length
  ///  - posting lists: every LBEC entry bitwise equals a recompute; every
  ///    LBEQ entry of a row whose master-query window lies outside the
  ///    envelope head region bitwise equals a recompute; head-region rows
  ///    (SlidingWindowBegin < rho + 1) may hold values computed against an
  ///    older, wider envelope clamp and must only satisfy
  ///    stored <= recomputed (still a valid lower bound)
  ///  - prev_knn thresholds: one list per ELV entry, neighbors in range,
  ///    finite non-negative distances, sorted by (dist, t), unique t
  ///  - ensemble state: grid shape, finite non-negative weights, finite
  ///    calibration EWMAs
  ///  - GP kernel cache: one optional per cell, finite log-hyperparameters
  ///  - pending forecasts: strictly future targets, non-decreasing target
  ///    times, grid shapes match the config, finite means and
  ///    non-negative finite variances
  static int CheckEngineSnapshot(const std::string& label,
                                 const core::EngineSnapshot& snapshot,
                                 std::vector<std::string>* out,
                                 ArenaCheckMode mode = ArenaCheckMode::kExact);

  /// Store/engine residency agreement: for every slot of \p store,
  /// resident <=> a live engine occupies the manager slot, COLD implies a
  /// published spill segment, pin counts are non-negative, and the
  /// resident-byte sum matches the per-slot charges. A fault that desyncs
  /// the store's bookkeeping from the manager's actual slots (an eviction
  /// that released the engine but kept charging it, a rehydration that
  /// installed without accounting) shows up here. Violations appended to
  /// \p out as "<label>: <description>"; returns the number appended.
  static int CheckStoreResidency(const std::string& label,
                                 const store::TieredStateStore& store,
                                 std::vector<std::string>* out);

  /// Checkpoint round-trip identity: Save(snapshots) -> Load -> re-Save
  /// must produce a byte-identical file (the serialization is canonical,
  /// so state surviving one hop survives any number). Scratch files are
  /// written under \p scratch_dir. Violations appended to \p out; returns
  /// the number appended. Fault injection is paused for the duration so
  /// harness-internal IO does not consume scheduled fault hits.
  static int CheckCheckpointRoundTrip(
      const std::vector<core::EngineSnapshot>& snapshots,
      const std::string& scratch_dir, std::vector<std::string>* out);
};

}  // namespace chaos
}  // namespace smiler

#endif  // SMILER_CHAOS_INVARIANTS_H_
