#ifndef SMILER_CHAOS_FAULT_H_
#define SMILER_CHAOS_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace smiler {
namespace chaos {

/// \brief How often one named fault point fires.
struct FaultSpec {
  /// Chance that an individual hit fires, in [0, 1].
  double probability = 0.0;
  /// Hits consumed before firing is even considered (lets a schedule skip
  /// the warm-up traffic and target steady state).
  std::uint64_t skip_first = 0;
  /// Cap on the number of hits that fire over the schedule's lifetime.
  std::uint64_t max_triggers = UINT64_MAX;
};

/// \brief A complete, replayable fault configuration: one PRNG seed plus a
/// per-point spec. Any run driven by the same (seed, schedule) sees the
/// same set of (point, hit-index) firings — the decision for hit i of a
/// point is a pure function of the seed, the point name, and i.
struct FaultSchedule {
  std::uint64_t seed = 0;
  std::map<std::string, FaultSpec> points;
};

/// \brief One firing: hit index \p hit of fault point \p point fired.
struct TriggerRecord {
  std::string point;
  std::uint64_t hit = 0;
};

/// \brief Process-wide registry of named fault points.
///
/// Instrumented code asks `ShouldFire("simgpu.launch")` at each seam (via
/// the SMILER_FAULT_TRIGGERED / SMILER_INJECT_FAULT macros below, which
/// compile to nothing unless SMILER_ENABLE_CHAOS is defined). While a
/// schedule is armed, each call consumes one per-point hit index and fires
/// iff SplitMix64(seed ^ fnv1a(point), hit) maps below the point's
/// probability. Because the decision depends only on (seed, point, hit)
/// — never on wall clock or thread identity — the SET of firing hit
/// indices is bit-reproducible even when hits are consumed from racing
/// threads, and a single-threaded closed-loop driver replays the exact
/// firing sequence.
///
/// Thread safety: all methods are safe from any thread. Disarmed cost is
/// one relaxed atomic load per instrumented call site.
class FaultRegistry {
 public:
  static FaultRegistry& Global();

  /// Arms \p schedule, clearing all previous hit counters and the trigger
  /// log. Probabilities are clamped to [0, 1].
  void Configure(FaultSchedule schedule);

  /// Disarms and clears all state (points, counters, log).
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// Consumes one hit of \p point and returns whether it fires. Always
  /// false when disarmed, paused, or the point is not in the schedule
  /// (none of which consume a hit index).
  bool ShouldFire(const char* point);

  /// Pause/Resume (nestable): while paused, ShouldFire returns false
  /// WITHOUT consuming hit indices. Harness code (invariant checks,
  /// checkpoint round-trips) wraps itself in a ScopedPause so its own
  /// engine traffic does not shift the scenario's fault stream.
  void Pause() { paused_.fetch_add(1, std::memory_order_acq_rel); }
  void Resume() { paused_.fetch_sub(1, std::memory_order_acq_rel); }
  bool paused() const { return paused_.load(std::memory_order_acquire) > 0; }

  /// Hits consumed / fired so far for \p point under the current schedule.
  std::uint64_t HitCount(const std::string& point) const;
  std::uint64_t TriggerCount(const std::string& point) const;
  /// Total firings across all points.
  std::uint64_t TotalTriggers() const;

  /// The firings so far, in append order. The append ORDER may vary when
  /// hits race across threads; the multiset of records does not — compare
  /// runs via Fingerprint(), which sorts first.
  std::vector<TriggerRecord> TriggerLog() const;

  /// Order-independent FNV-1a hash of the trigger log (sorted by
  /// (point, hit)). Two runs of the same (seed, schedule, workload) must
  /// produce equal fingerprints.
  std::uint64_t Fingerprint() const;

  /// The pure decision function, exposed for determinism tests: does hit
  /// \p hit of \p point fire under \p seed with \p probability?
  static bool Decide(std::uint64_t seed, const char* point,
                     std::uint64_t hit, double probability);

 private:
  FaultRegistry() = default;

  struct PointState {
    FaultSpec spec;
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
  };

  std::atomic<bool> armed_{false};
  std::atomic<int> paused_{0};
  mutable std::mutex mu_;
  std::uint64_t seed_ = 0;
  std::map<std::string, PointState> points_;
  std::vector<TriggerRecord> log_;
};

/// RAII Pause/Resume of the global registry.
class ScopedPause {
 public:
  ScopedPause() { FaultRegistry::Global().Pause(); }
  ~ScopedPause() { FaultRegistry::Global().Resume(); }
  ScopedPause(const ScopedPause&) = delete;
  ScopedPause& operator=(const ScopedPause&) = delete;
};

/// \brief One entry of the fault-point catalog (docs/testing.md mirrors
/// this table; tests assert the names stay unique).
struct FaultPointInfo {
  const char* name;
  const char* layer;
  const char* effect;
};

/// Every fault point instrumented across the tree, plus the driver-side
/// `ts.anomaly` point the ScenarioRunner consumes directly.
const std::vector<FaultPointInfo>& KnownFaultPoints();

}  // namespace chaos
}  // namespace smiler

// --- Instrumentation macros -------------------------------------------
//
// SMILER_FAULT_TRIGGERED(point): expression, true iff the armed schedule
// fires this hit. Compiles to the constant `false` (the registry call and
// the point name disappear entirely) unless SMILER_ENABLE_CHAOS is
// defined, so release builds pay nothing.
//
// SMILER_INJECT_FAULT(point, status_expr): statement; returns status_expr
// from the enclosing function when the point fires.
#if defined(SMILER_ENABLE_CHAOS)
#define SMILER_FAULT_TRIGGERED(point) \
  (::smiler::chaos::FaultRegistry::Global().ShouldFire(point))
#else
#define SMILER_FAULT_TRIGGERED(point) (false)
#endif

#define SMILER_INJECT_FAULT(point, status_expr) \
  do {                                          \
    if (SMILER_FAULT_TRIGGERED(point)) {        \
      return (status_expr);                     \
    }                                           \
  } while (false)

#endif  // SMILER_CHAOS_FAULT_H_
