#ifndef SMILER_BASELINES_VLGP_H_
#define SMILER_BASELINES_VLGP_H_

#include <memory>
#include <vector>

#include "baselines/baseline.h"
#include "gp/kernel.h"
#include "la/cholesky.h"

namespace smiler {
namespace baselines {

/// \brief VLGP: Variational Learning Gaussian Process (Section 6.3.1) —
/// Titsias's sparse GP with inducing variables [65].
///
/// Inducing inputs are a uniform subsample of the training windows;
/// hyperparameters are selected by maximizing the variational lower bound
/// (ELBO) over a grid around the heuristic seed:
///   ELBO = log N(y; 0, Q_nn + sigma^2 I) - tr(K_nn - Q_nn) / (2 sigma^2)
/// with Q_nn = K_nm K_mm^{-1} K_mn, all terms evaluated in O(n m^2) via
/// the Woodbury identity. Prediction uses the standard variational
/// posterior:
///   Sigma  = K_mm + sigma^{-2} K_mn K_nm
///   mu(x)  = sigma^{-2} k_m(x)^T Sigma^{-1} K_mn y
///   var(x) = k** - k_m^T K_mm^{-1} k_m + k_m^T Sigma^{-1} k_m + sigma^2
class VlgpModel : public BaselineModel {
 public:
  struct Options {
    /// Number of inducing inputs (paper: 32, "similar to the active points
    /// of PSGP").
    int inducing_points = 32;
    std::size_t max_pairs = 4000;
    uint64_t seed = 1;
  };

  VlgpModel() : VlgpModel(Options{}) {}
  explicit VlgpModel(const Options& options);

  const char* name() const override { return "VLGP"; }
  Status Train(const std::vector<double>& history, int d, int h) override;
  Result<Prediction> Predict() override;
  Status Observe(double value) override;

  /// Predicts at an arbitrary input (exposed for tests).
  Prediction PredictAt(const double* x) const;
  /// The ELBO achieved by the selected hyperparameters (for tests).
  double elbo() const { return elbo_; }

 private:
  /// Computes the ELBO for \p kernel; returns -inf on numerical failure.
  double ComputeElbo(const WindowDataset& data, const gp::SeKernel& kernel,
                     const la::Matrix& z) const;
  /// Finalizes the posterior factors for \p kernel.
  Status FitPosterior(const WindowDataset& data, const gp::SeKernel& kernel,
                      const la::Matrix& z);

  Options options_;
  int d_ = 0;
  int h_ = 0;
  std::vector<double> series_;

  gp::SeKernel kernel_;
  la::Matrix z_;                    // inducing inputs
  la::Cholesky kmm_chol_;           // chol(K_mm)
  la::Cholesky sigma_chol_;         // chol(Sigma)
  std::vector<double> proj_y_;      // sigma^{-2} Sigma^{-1} K_mn y
  double elbo_ = 0.0;
  bool trained_ = false;
};

std::unique_ptr<BaselineModel> MakeVlgp(int inducing_points = 32);

}  // namespace baselines
}  // namespace smiler

#endif  // SMILER_BASELINES_VLGP_H_
