#ifndef SMILER_BASELINES_LAZY_KNN_H_
#define SMILER_BASELINES_LAZY_KNN_H_

#include <memory>
#include <optional>

#include "baselines/baseline.h"
#include "common/config.h"
#include "index/smiler_index.h"
#include "simgpu/device.h"

namespace smiler {
namespace baselines {

/// \brief LazyKNN (Section 6.3.1): classic lazy-learning prediction [4].
/// The forecast is the average of the kNN segments' h-step-ahead values
/// weighted by inverse DTW distance; the predicted variance is the
/// (weighted) variance of those values.
///
/// Retrieval runs on a single-(k, d) SMiLer index so the comparison with
/// SMiLer isolates the predictor, not the search.
class LazyKnnModel : public BaselineModel {
 public:
  /// \param device simulated GPU for the retrieval index.
  /// \param k neighbors, \param d segment length (paper ablations use
  /// k = 32, d = 64), \param rho / \param omega DTW band and window size.
  explicit LazyKnnModel(simgpu::Device* device, int k = 32, int d = 64,
                        int rho = 8, int omega = 16);

  const char* name() const override { return "LazyKNN"; }
  Status Train(const std::vector<double>& history, int d, int h) override;
  Result<Prediction> Predict() override;
  Status Observe(double value) override;

 private:
  simgpu::Device* device_;
  int k_;
  SmilerConfig cfg_;
  int h_ = 1;
  std::optional<index::SmilerIndex> index_;
};

std::unique_ptr<BaselineModel> MakeLazyKnn(simgpu::Device* device);

}  // namespace baselines
}  // namespace smiler

#endif  // SMILER_BASELINES_LAZY_KNN_H_
