#include "baselines/lazy_knn.h"

#include <algorithm>
#include <cmath>

#include "ts/series.h"

namespace smiler {
namespace baselines {

LazyKnnModel::LazyKnnModel(simgpu::Device* device, int k, int d, int rho,
                           int omega)
    : device_(device), k_(k) {
  cfg_.rho = rho;
  cfg_.omega = omega;
  cfg_.elv = {d};
  cfg_.ekv = {k};
  cfg_.use_ensemble = false;
}

Status LazyKnnModel::Train(const std::vector<double>& history, int d, int h) {
  if (h < 1) return Status::InvalidArgument("h must be >= 1");
  if (d > 0) cfg_.elv = {std::max(d, cfg_.omega)};
  h_ = h;
  cfg_.horizon = h;
  SMILER_RETURN_NOT_OK(cfg_.Validate());
  SMILER_ASSIGN_OR_RETURN(
      auto idx, index::SmilerIndex::Build(
                    device_, ts::TimeSeries("lazyknn", history), cfg_));
  index_.emplace(std::move(idx));
  return Status::OK();
}

Result<Prediction> LazyKnnModel::Predict() {
  if (!index_.has_value()) {
    return Status::FailedPrecondition("model not trained");
  }
  index::SuffixSearchOptions opts;
  opts.k = k_;
  opts.reserve_horizon = h_;
  SMILER_ASSIGN_OR_RETURN(index::SuffixKnnResult knn, index_->Search(opts));
  const index::ItemQueryResult& item = knn.items[0];
  if (item.neighbors.empty()) {
    return Status::FailedPrecondition("no neighbors available");
  }
  const std::vector<double>& series = index_->series();
  const int d = item.d;

  // Inverse-DTW weights (a zero-distance exact match dominates smoothly
  // via the epsilon floor).
  double wsum = 0.0;
  double mean = 0.0;
  std::vector<double> weights;
  std::vector<double> values;
  for (const index::Neighbor& nb : item.neighbors) {
    const double w = 1.0 / (nb.dist + 1e-6);
    const double y = series[nb.t + d - 1 + h_];
    weights.push_back(w);
    values.push_back(y);
    wsum += w;
    mean += w * y;
  }
  mean /= wsum;
  double var = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    var += weights[i] * (values[i] - mean) * (values[i] - mean);
  }
  var /= wsum;

  Prediction p;
  p.mean = mean;
  p.variance = std::max(var, 1e-6);
  return p;
}

Status LazyKnnModel::Observe(double value) {
  if (!index_.has_value()) {
    return Status::FailedPrecondition("model not trained");
  }
  return index_->Append(value);
}

std::unique_ptr<BaselineModel> MakeLazyKnn(simgpu::Device* device) {
  return std::make_unique<LazyKnnModel>(device);
}

}  // namespace baselines
}  // namespace smiler
