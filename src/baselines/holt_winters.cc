#include "baselines/holt_winters.h"

#include <algorithm>
#include <cmath>

namespace smiler {
namespace baselines {

double HoltWintersFit::Forecast(int h) const {
  const int m = static_cast<int>(seasonal.size());
  // seasonal holds the last m smoothed indices, seasonal[j] applying to
  // times congruent to (fitted_points + j) mod m going forward.
  const int idx = (h - 1) % m;
  return level + h * trend + seasonal[idx];
}

double HoltWintersFit::ForecastVariance(int h) const {
  const int m = static_cast<int>(seasonal.size());
  const double sigma2 =
      fitted_points > 0 ? std::max(sse / fitted_points, 1e-6) : 1.0;
  double factor = 1.0;
  for (int j = 1; j < h; ++j) {
    const double cj = alpha * (1.0 + j * beta) + (j % m == 0 ? gamma : 0.0);
    factor += cj * cj;
  }
  return sigma2 * factor;
}

namespace {

// Runs the smoothing recursion over `data` for fixed coefficients and
// returns the final state + SSE.
HoltWintersFit RunRecursion(const std::vector<double>& data, int period,
                            double alpha, double beta, double gamma) {
  HoltWintersFit fit;
  fit.alpha = alpha;
  fit.beta = beta;
  fit.gamma = gamma;
  const int m = period;
  const long n = static_cast<long>(data.size());

  // Classic initialisation from the first two seasons.
  double mean1 = 0.0;
  double mean2 = 0.0;
  for (int i = 0; i < m; ++i) {
    mean1 += data[i];
    mean2 += data[m + i];
  }
  mean1 /= m;
  mean2 /= m;
  double level = mean1;
  double trend = (mean2 - mean1) / m;
  std::vector<double> seasonal(m);
  for (int i = 0; i < m; ++i) seasonal[i] = data[i] - mean1;

  double sse = 0.0;
  long count = 0;
  for (long t = m; t < n; ++t) {
    const double s_prev = seasonal[t % m];
    const double forecast = level + trend + s_prev;
    const double err = data[t] - forecast;
    sse += err * err;
    ++count;
    const double new_level =
        alpha * (data[t] - s_prev) + (1.0 - alpha) * (level + trend);
    trend = beta * (new_level - level) + (1.0 - beta) * trend;
    seasonal[t % m] = gamma * (data[t] - new_level) + (1.0 - gamma) * s_prev;
    level = new_level;
  }
  fit.level = level;
  fit.trend = trend;
  // Rotate so seasonal[j] is the index for forecast step j+1: the next
  // time is n, whose seasonal slot is n % m.
  fit.seasonal.resize(m);
  for (int j = 0; j < m; ++j) fit.seasonal[j] = seasonal[(n + j) % m];
  fit.sse = sse;
  fit.fitted_points = count;
  return fit;
}

}  // namespace

Result<HoltWintersFit> FitHoltWinters(const std::vector<double>& data,
                                      int period) {
  if (period < 2) return Status::InvalidArgument("period must be >= 2");
  if (static_cast<long>(data.size()) < 2L * period) {
    return Status::InvalidArgument(
        "need at least two full seasons to fit Holt-Winters");
  }
  // The grid approximates R forecast::HoltWinters' optimizer effort
  // ("parameters were determined by minimizing the squared error"); its
  // density is what makes the per-prediction refit of FullHW the slowest
  // predictor of Table 4.
  static constexpr double kAlphas[] = {0.05, 0.15, 0.25, 0.35, 0.45,
                                       0.55, 0.65, 0.75, 0.85, 0.95};
  static constexpr double kBetas[] = {0.01, 0.05, 0.1, 0.2, 0.3};
  static constexpr double kGammas[] = {0.05, 0.1, 0.2, 0.35, 0.5, 0.65};

  HoltWintersFit best;
  bool have_best = false;
  for (double a : kAlphas) {
    for (double b : kBetas) {
      for (double g : kGammas) {
        HoltWintersFit fit = RunRecursion(data, period, a, b, g);
        if (!have_best || fit.sse < best.sse) {
          best = fit;
          have_best = true;
        }
      }
    }
  }
  return best;
}

HoltWintersModel::HoltWintersModel(int period, bool full, int seg_days)
    : period_(period), full_(full), seg_days_(seg_days) {}

Status HoltWintersModel::Train(const std::vector<double>& history, int /*d*/,
                               int h) {
  if (h < 1) return Status::InvalidArgument("h must be >= 1");
  if (static_cast<long>(history.size()) < 2L * period_) {
    return Status::InvalidArgument("history shorter than two seasons");
  }
  h_ = h;
  series_ = history;
  return Status::OK();
}

Result<Prediction> HoltWintersModel::Predict() {
  if (series_.empty()) return Status::FailedPrecondition("model not trained");
  // Re-fit on every prediction (the defining cost of FullHW / SegHW).
  const long n = static_cast<long>(series_.size());
  long begin = 0;
  if (!full_) {
    begin = std::max<long>(0, n - static_cast<long>(seg_days_) * period_);
  }
  std::vector<double> window(series_.begin() + begin, series_.end());
  SMILER_ASSIGN_OR_RETURN(HoltWintersFit fit,
                          FitHoltWinters(window, period_));
  Prediction p;
  p.mean = fit.Forecast(h_);
  p.variance = std::max(fit.ForecastVariance(h_), 1e-6);
  return p;
}

Status HoltWintersModel::Observe(double value) {
  if (series_.empty()) return Status::FailedPrecondition("model not trained");
  series_.push_back(value);
  return Status::OK();
}

std::unique_ptr<BaselineModel> MakeFullHw(int period) {
  return std::make_unique<HoltWintersModel>(period, /*full=*/true);
}

std::unique_ptr<BaselineModel> MakeSegHw(int period) {
  return std::make_unique<HoltWintersModel>(period, /*full=*/false);
}

}  // namespace baselines
}  // namespace smiler
