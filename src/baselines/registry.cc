#include "baselines/registry.h"

#include "baselines/holt_winters.h"
#include "baselines/lazy_knn.h"
#include "baselines/linear_sgd.h"
#include "baselines/nys_svr.h"
#include "baselines/psgp.h"
#include "baselines/vlgp.h"

namespace smiler {
namespace baselines {

std::unique_ptr<BaselineModel> MakeBaseline(const std::string& name,
                                            simgpu::Device* device,
                                            int period) {
  if (name == "PSGP") return MakePsgp();
  if (name == "VLGP") return MakeVlgp();
  if (name == "NysSVR") return MakeNysSvr();
  if (name == "SgdSVR") return MakeSgdSvr();
  if (name == "SgdRR") return MakeSgdRr();
  if (name == "LazyKNN") return MakeLazyKnn(device);
  if (name == "FullHW") return MakeFullHw(period);
  if (name == "SegHW") return MakeSegHw(period);
  if (name == "OnlineSVR") return MakeOnlineSvr();
  if (name == "OnlineRR") return MakeOnlineRr();
  return nullptr;
}

std::vector<std::string> BaselineNames(BaselineGroup group) {
  switch (group) {
    case BaselineGroup::kOffline:
      return {"PSGP", "VLGP", "NysSVR", "SgdSVR", "SgdRR"};
    case BaselineGroup::kOnline:
      return {"LazyKNN", "FullHW", "SegHW", "OnlineSVR", "OnlineRR"};
  }
  return {};
}

}  // namespace baselines
}  // namespace smiler
