#include "baselines/linear_sgd.h"

#include <algorithm>
#include <cmath>

namespace smiler {
namespace baselines {

void LinearSgdModel::Step(const double* x, double y, double lr) {
  const double pred = model_.Eval(x);
  const double err = y - pred;  // positive when under-predicting

  // dLoss/dpred for the two supported losses.
  double g = 0.0;
  switch (options_.loss) {
    case LinearLoss::kEpsilonInsensitive:
      if (err > options_.epsilon) {
        g = -1.0;
      } else if (err < -options_.epsilon) {
        g = 1.0;
      }
      break;
    case LinearLoss::kHuber:
      if (std::fabs(err) <= options_.epsilon) {
        g = -err;
      } else {
        g = err > 0 ? -options_.epsilon : options_.epsilon;
      }
      break;
  }

  const double decay = 1.0 - lr * options_.l2;
  for (std::size_t i = 0; i < model_.w.size(); ++i) {
    model_.w[i] = model_.w[i] * decay - lr * g * x[i];
  }
  model_.b -= lr * g;

  // Exponentially smoothed residual variance for the predictive band.
  const double r2 = err * err;
  residual_var_ = 0.999 * residual_var_ + 0.001 * r2;
  ++updates_;
}

Status LinearSgdModel::Train(const std::vector<double>& history, int d,
                             int h) {
  if (d <= 0 || h < 1) {
    return Status::InvalidArgument("d must be > 0 and h >= 1");
  }
  if (static_cast<long>(history.size()) < d + h) {
    return Status::InvalidArgument("history shorter than d + h");
  }
  d_ = d;
  h_ = h;
  series_ = history;
  model_.w.assign(d, 0.0);
  model_.b = 0.0;
  updates_ = 0;
  residual_var_ = 1.0;

  WindowDataset data =
      MakeWindowDataset(history, d, h, options_.max_pairs);
  if (data.y.empty()) {
    return Status::InvalidArgument("no training pairs available");
  }
  const int epochs = online_ ? 1 : options_.epochs;
  Rng rng(options_.seed);
  std::vector<std::size_t> order(data.y.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int e = 0; e < epochs; ++e) {
    // Fisher-Yates shuffle for SGD.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.UniformInt(i)]);
    }
    for (std::size_t idx : order) {
      const double lr =
          options_.learning_rate / std::sqrt(1.0 + 0.01 * updates_);
      Step(data.x.Row(idx), data.y[idx], lr);
    }
  }
  residual_var_ = ResidualVariance(model_, data);
  return Status::OK();
}

Result<Prediction> LinearSgdModel::Predict() {
  if (d_ == 0 || static_cast<long>(series_.size()) < d_) {
    return Status::FailedPrecondition("model not trained");
  }
  Prediction p;
  p.mean = model_.Eval(series_.data() + series_.size() - d_);
  p.variance = std::max(residual_var_, 1e-6);
  return p;
}

Status LinearSgdModel::Observe(double value) {
  if (d_ == 0) return Status::FailedPrecondition("model not trained");
  series_.push_back(value);
  if (online_) {
    // The newest resolvable pair: window ending h before the new point.
    const long t = static_cast<long>(series_.size()) - d_ - h_;
    if (t >= 0) {
      const double lr =
          options_.learning_rate / std::sqrt(1.0 + 0.01 * updates_);
      Step(series_.data() + t, value, lr);
    }
  }
  return Status::OK();
}

std::unique_ptr<BaselineModel> MakeSgdSvr() {
  LinearSgdOptions options;
  options.loss = LinearLoss::kEpsilonInsensitive;
  return std::make_unique<LinearSgdModel>("SgdSVR", options, /*online=*/false);
}

std::unique_ptr<BaselineModel> MakeSgdRr() {
  LinearSgdOptions options;
  options.loss = LinearLoss::kHuber;
  options.epsilon = 1.0;  // Huber transition
  return std::make_unique<LinearSgdModel>("SgdRR", options, /*online=*/false);
}

std::unique_ptr<BaselineModel> MakeOnlineSvr() {
  LinearSgdOptions options;
  options.loss = LinearLoss::kEpsilonInsensitive;
  return std::make_unique<LinearSgdModel>("OnlineSVR", options,
                                          /*online=*/true);
}

std::unique_ptr<BaselineModel> MakeOnlineRr() {
  LinearSgdOptions options;
  options.loss = LinearLoss::kHuber;
  options.epsilon = 1.0;
  return std::make_unique<LinearSgdModel>("OnlineRR", options,
                                          /*online=*/true);
}

}  // namespace baselines
}  // namespace smiler
