#include "baselines/psgp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "gp/trainer.h"

namespace smiler {
namespace baselines {

namespace {

// Removes row/col `idx` from a square matrix.
la::Matrix DropRowCol(const la::Matrix& m, std::size_t idx) {
  const std::size_t n = m.rows();
  la::Matrix out(n - 1, n - 1);
  std::size_t r2 = 0;
  for (std::size_t r = 0; r < n; ++r) {
    if (r == idx) continue;
    std::size_t c2 = 0;
    for (std::size_t c = 0; c < n; ++c) {
      if (c == idx) continue;
      out(r2, c2) = m(r, c);
      ++c2;
    }
    ++r2;
  }
  return out;
}

}  // namespace

PsgpModel::PsgpModel(const Options& options) : options_(options) {}

void PsgpModel::ProcessPoint(const double* x, double y) {
  const std::size_t m = basis_.rows();
  const double noise2 = kernel_.theta2() * kernel_.theta2();
  const double kstar = kernel_.CovFromSqDist(0.0);  // theta0^2

  if (m == 0) {
    // First point: trivial full update.
    basis_ = la::Matrix(1, d_);
    for (int p = 0; p < d_; ++p) basis_(0, p) = x[p];
    const double sigma2 = kstar + noise2;
    alpha_ = {y / sigma2};  // q_coef * s with s = [1]
    c_ = la::Matrix(1, 1);
    c_(0, 0) = -1.0 / sigma2;
    q_ = la::Matrix(1, 1);
    q_(0, 0) = 1.0 / kstar;
    return;
  }

  // Kernel vector to the basis (noise-free).
  std::vector<double> k(m);
  for (std::size_t i = 0; i < m; ++i) {
    k[i] = kernel_.CovFromSqDist(
        gp::SquaredDistance(basis_.Row(i), x, d_));
  }
  const std::vector<double> ck = c_.MatVec(k);
  const std::vector<double> e_hat = q_.MatVec(k);

  const double mean = la::Dot(k, alpha_);
  const double var_f = kstar + la::Dot(k, ck);  // latent variance
  // Numerical guards: heavily quantized series (exact-duplicate windows)
  // can drift the recursive (alpha, C, Q) state; a pathological predictive
  // variance or non-finite statistic means this point cannot be absorbed
  // safely — skipping it keeps the posterior sane (standard practice for
  // streaming sparse GPs).
  if (!std::isfinite(mean) || !std::isfinite(var_f) ||
      var_f < -0.5 * kstar) {
    return;
  }
  const double sigma2 = std::max(var_f + noise2, 1e-8);
  const double q_coef = (y - mean) / sigma2;
  const double r_coef = -1.0 / sigma2;
  if (!std::isfinite(q_coef)) return;

  double gamma = kstar - la::Dot(k, e_hat);  // novelty
  gamma = std::max(gamma, 0.0);

  // Scale-aware novelty threshold.
  const bool full_update = gamma > options_.novelty_tol * kstar;
  if (!full_update) {
    // Projected update: s = C k + e_hat, dimension m.
    std::vector<double> s = ck;
    la::Axpy(1.0, e_hat, &s);
    for (std::size_t i = 0; i < m; ++i) alpha_[i] += q_coef * s[i];
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        c_(i, j) += r_coef * s[i] * s[j];
      }
    }
    return;
  }

  // Full update: extend the basis with x; s = [C k; 1].
  std::vector<double> s(m + 1);
  for (std::size_t i = 0; i < m; ++i) s[i] = ck[i];
  s[m] = 1.0;

  la::Matrix new_basis(m + 1, d_);
  for (std::size_t i = 0; i < m; ++i) {
    for (int p = 0; p < d_; ++p) new_basis(i, p) = basis_(i, p);
  }
  for (int p = 0; p < d_; ++p) new_basis(m, p) = x[p];
  basis_ = std::move(new_basis);

  alpha_.push_back(0.0);
  for (std::size_t i = 0; i <= m; ++i) alpha_[i] += q_coef * s[i];

  la::Matrix new_c(m + 1, m + 1);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) new_c(i, j) = c_(i, j);
  }
  for (std::size_t i = 0; i <= m; ++i) {
    for (std::size_t j = 0; j <= m; ++j) {
      new_c(i, j) += r_coef * s[i] * s[j];
    }
  }
  c_ = std::move(new_c);

  // Q update: Q' = [[Q,0],[0,0]] + (1/gamma) [e_hat; -1][e_hat; -1]^T.
  la::Matrix new_q(m + 1, m + 1);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) new_q(i, j) = q_(i, j);
  }
  std::vector<double> eh(m + 1);
  for (std::size_t i = 0; i < m; ++i) eh[i] = e_hat[i];
  eh[m] = -1.0;
  const double inv_gamma = 1.0 / std::max(gamma, 1e-12);
  for (std::size_t i = 0; i <= m; ++i) {
    for (std::size_t j = 0; j <= m; ++j) {
      new_q(i, j) += inv_gamma * eh[i] * eh[j];
    }
  }
  q_ = std::move(new_q);

  if (static_cast<int>(basis_.rows()) > options_.active_points) {
    DeleteLowestScore();
  }
}

void PsgpModel::DeleteLowestScore() {
  const std::size_t m = basis_.rows();
  // Score epsilon_i = alpha_i^2 / (Q_ii + C_ii): the KL penalty of
  // removing basis vector i.
  std::size_t victim = 0;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < m; ++i) {
    const double denom = q_(i, i) + c_(i, i);
    const double score =
        alpha_[i] * alpha_[i] / (std::fabs(denom) > 1e-12 ? denom : 1e-12);
    if (score < best) {
      best = score;
      victim = i;
    }
  }

  const double a_star = alpha_[victim];
  const double c_star = c_(victim, victim);
  const double q_star = q_(victim, victim);
  std::vector<double> c_col;
  std::vector<double> q_col;
  for (std::size_t i = 0; i < m; ++i) {
    if (i == victim) continue;
    c_col.push_back(c_(i, victim));
    q_col.push_back(q_(i, victim));
  }

  // KL-optimal deletion (Csató & Opper, appendix):
  //   alpha' = alpha_r - a*/(q* + c*) (Q*col + C*col)
  //   C'     = C_r + (Q*col Q*col^T)/q* - ((Q+C)col (Q+C)col^T)/(q*+c*)
  //   Q'     = Q_r - (Q*col Q*col^T)/q*
  std::vector<double> new_alpha;
  for (std::size_t i = 0; i < m; ++i) {
    if (i != victim) new_alpha.push_back(alpha_[i]);
  }
  const double qc = q_star + c_star;
  const double inv_qc = std::fabs(qc) > 1e-8 ? 1.0 / qc : 0.0;
  const double inv_q = std::fabs(q_star) > 1e-8 ? 1.0 / q_star : 0.0;
  for (std::size_t i = 0; i < m - 1; ++i) {
    new_alpha[i] -= a_star * inv_qc * (q_col[i] + c_col[i]);
  }

  la::Matrix new_c = DropRowCol(c_, victim);
  la::Matrix new_q = DropRowCol(q_, victim);
  for (std::size_t i = 0; i < m - 1; ++i) {
    for (std::size_t j = 0; j < m - 1; ++j) {
      new_c(i, j) += q_col[i] * q_col[j] * inv_q -
                     (q_col[i] + c_col[i]) * (q_col[j] + c_col[j]) * inv_qc;
      new_q(i, j) -= q_col[i] * q_col[j] * inv_q;
    }
  }

  la::Matrix new_basis(m - 1, d_);
  std::size_t r2 = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (i == victim) continue;
    for (int p = 0; p < d_; ++p) new_basis(r2, p) = basis_(i, p);
    ++r2;
  }

  basis_ = std::move(new_basis);
  alpha_ = std::move(new_alpha);
  c_ = std::move(new_c);
  q_ = std::move(new_q);
}

Status PsgpModel::Train(const std::vector<double>& history, int d, int h) {
  if (d <= 0 || h < 1) {
    return Status::InvalidArgument("d must be > 0 and h >= 1");
  }
  if (static_cast<long>(history.size()) < d + h) {
    return Status::InvalidArgument("history shorter than d + h");
  }
  d_ = d;
  h_ = h;
  series_ = history;
  basis_ = la::Matrix();
  alpha_.clear();
  c_ = la::Matrix();
  q_ = la::Matrix();

  WindowDataset data = MakeWindowDataset(history, d, h, options_.max_pairs);
  if (data.y.empty()) {
    return Status::InvalidArgument("no training pairs available");
  }

  // Hyperparameters: exact LOO training on a random subsample ("an offline
  // processing to learn the hyperparameters" — the eager part of PSGP).
  {
    Rng rng(options_.seed);
    const std::size_t sub =
        std::min<std::size_t>(options_.hyper_subsample, data.y.size());
    la::Matrix xs(sub, d);
    std::vector<double> ys(sub);
    for (std::size_t j = 0; j < sub; ++j) {
      const std::size_t idx = rng.UniformInt(data.y.size());
      for (int p = 0; p < d; ++p) xs(j, p) = data.x(idx, p);
      ys[j] = data.y[idx];
    }
    // Regularized LOO training (prior + trust region, cf. TrainLoo): the
    // unbounded noise-collapse direction on duplicate-heavy data would
    // otherwise destabilize the recursive online updates.
    auto trained = gp::TrainLoo(xs, ys, nullptr, options_.hyper_cg_steps,
                                /*prior_precision=*/8.0,
                                /*trust_radius=*/1.0);
    kernel_ = trained.ok() ? trained->kernel : gp::SeKernel::Heuristic(xs, ys);
    // Absolute noise floor on the z-normalized scale.
    auto params = kernel_.log_params();
    params[2] = std::max(params[2], 0.5 * std::log(1e-4));
    kernel_ = gp::SeKernel(params[0], params[1], params[2]);
  }

  // Online sweep.
  for (std::size_t j = 0; j < data.y.size(); ++j) {
    ProcessPoint(data.x.Row(j), data.y[j]);
  }
  trained_ = true;
  return Status::OK();
}

Prediction PsgpModel::PredictAt(const double* x) const {
  const std::size_t m = basis_.rows();
  const double noise2 = kernel_.theta2() * kernel_.theta2();
  Prediction p;
  if (m == 0) {
    p.mean = 0.0;
    p.variance = kernel_.SelfCovariance();
    return p;
  }
  std::vector<double> k(m);
  for (std::size_t i = 0; i < m; ++i) {
    k[i] = kernel_.CovFromSqDist(gp::SquaredDistance(basis_.Row(i), x, d_));
  }
  p.mean = la::Dot(k, alpha_);
  const double var_f =
      kernel_.CovFromSqDist(0.0) + la::Dot(k, c_.MatVec(k));
  p.variance = std::max(var_f + noise2, 1e-9);
  return p;
}

Result<Prediction> PsgpModel::Predict() {
  if (!trained_) return Status::FailedPrecondition("model not trained");
  return PredictAt(series_.data() + series_.size() - d_);
}

Status PsgpModel::Observe(double value) {
  if (!trained_) return Status::FailedPrecondition("model not trained");
  series_.push_back(value);
  return Status::OK();
}

std::unique_ptr<BaselineModel> MakePsgp(int active_points) {
  PsgpModel::Options options;
  options.active_points = active_points;
  return std::make_unique<PsgpModel>(options);
}

}  // namespace baselines
}  // namespace smiler
