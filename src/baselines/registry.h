#ifndef SMILER_BASELINES_REGISTRY_H_
#define SMILER_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "simgpu/device.h"

namespace smiler {
namespace baselines {

/// Grouping used by the paper's accuracy figures.
enum class BaselineGroup {
  kOffline,  ///< Fig 9: PSGP, VLGP, NysSVR, SgdSVR, SgdRR
  kOnline,   ///< Fig 10: LazyKNN, FullHW, SegHW, OnlineSVR, OnlineRR
};

/// \brief Instantiates one competitor by its paper name. Names: "PSGP",
/// "VLGP", "NysSVR", "SgdSVR", "SgdRR", "LazyKNN", "FullHW", "SegHW",
/// "OnlineSVR", "OnlineRR". \p device is required by LazyKNN (retrieval
/// index); \p period is the Holt-Winters season length in samples.
/// Returns nullptr for an unknown name.
std::unique_ptr<BaselineModel> MakeBaseline(const std::string& name,
                                            simgpu::Device* device,
                                            int period);

/// The five members of \p group in the order the paper plots them.
std::vector<std::string> BaselineNames(BaselineGroup group);

}  // namespace baselines
}  // namespace smiler

#endif  // SMILER_BASELINES_REGISTRY_H_
