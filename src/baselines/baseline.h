#ifndef SMILER_BASELINES_BASELINE_H_
#define SMILER_BASELINES_BASELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "gp/gp_regressor.h"
#include "la/matrix.h"

namespace smiler {
namespace baselines {

using Prediction = gp::Prediction;

/// \brief Common interface of the paper's ten prediction competitors
/// (Section 6.3.1). The protocol mirrors core::SensorEngine: `Train` on a
/// (z-normalized) history for a fixed input window length d and horizon h,
/// then alternate `Predict` (forecast for now + h from the stored series'
/// tail) and `Observe` (ingest the next observation; online models also
/// update their parameters here).
class BaselineModel {
 public:
  virtual ~BaselineModel() = default;

  /// Model display name ("PSGP", "SgdSVR", ...).
  virtual const char* name() const = 0;

  /// Trains on \p history. Offline models do their full training here
  /// (Table 4's "trn" column times this call); online models only
  /// initialize state.
  virtual Status Train(const std::vector<double>& history, int d, int h) = 0;

  /// Predicts the distribution of the value h steps after the latest
  /// observation.
  virtual Result<Prediction> Predict() = 0;

  /// Ingests the next observation.
  virtual Status Observe(double value) = 0;
};

/// \brief A supervised sliding-window dataset extracted from a series:
/// row j of `x` is the d-length window ending at time e_j and `y[j]` is
/// the value h steps later. At most \p max_pairs pairs are kept, sampled
/// with a uniform stride so training covers the whole history.
struct WindowDataset {
  la::Matrix x;
  std::vector<double> y;
};

/// Builds a WindowDataset from \p series. Returns an empty dataset when
/// the series is shorter than d + h.
WindowDataset MakeWindowDataset(const std::vector<double>& series, int d,
                                int h, std::size_t max_pairs);

/// \brief Linear-model helper shared by SGD baselines: prediction wᵀx + b.
struct LinearModel {
  std::vector<double> w;
  double b = 0.0;

  double Eval(const double* x) const {
    double s = b;
    for (std::size_t i = 0; i < w.size(); ++i) s += w[i] * x[i];
    return s;
  }
};

/// Mean squared residual of \p model over a dataset (predictive variance
/// proxy for the linear baselines; clamped away from zero).
double ResidualVariance(const LinearModel& model, const WindowDataset& data);

}  // namespace baselines
}  // namespace smiler

#endif  // SMILER_BASELINES_BASELINE_H_
