#include "baselines/nys_svr.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace smiler {
namespace baselines {

NysSvrModel::NysSvrModel(const Options& options) : options_(options) {}

std::vector<double> NysSvrModel::Features(const double* x) const {
  const std::size_t m = landmarks_.rows();
  std::vector<double> km(m);
  for (std::size_t a = 0; a < m; ++a) {
    km[a] = kernel_.CovFromSqDist(
        gp::SquaredDistance(landmarks_.Row(a), x, d_));
  }
  // phi = L^{-1} k_m  (forward substitution against chol(K_mm)).
  return kmm_chol_.SolveLower(km);
}

Status NysSvrModel::Train(const std::vector<double>& history, int d, int h) {
  if (d <= 0 || h < 1) {
    return Status::InvalidArgument("d must be > 0 and h >= 1");
  }
  if (static_cast<long>(history.size()) < d + h) {
    return Status::InvalidArgument("history shorter than d + h");
  }
  d_ = d;
  h_ = h;
  series_ = history;

  WindowDataset data = MakeWindowDataset(history, d, h, options_.max_pairs);
  if (data.y.empty()) {
    return Status::InvalidArgument("no training pairs available");
  }
  kernel_ = gp::SeKernel::Heuristic(data.x, data.y);

  // Landmarks: uniform subsample.
  const std::size_t m =
      std::min<std::size_t>(std::max(options_.rank, 1), data.y.size());
  landmarks_ = la::Matrix(m, d);
  const double stride =
      static_cast<double>(data.y.size()) / static_cast<double>(m);
  for (std::size_t a = 0; a < m; ++a) {
    const std::size_t idx = static_cast<std::size_t>(a * stride);
    for (int p = 0; p < d; ++p) landmarks_(a, p) = data.x(idx, p);
  }
  la::Matrix kmm(m, m);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = a; b < m; ++b) {
      const double v = kernel_.CovFromSqDist(
          gp::SquaredDistance(landmarks_.Row(a), landmarks_.Row(b), d));
      kmm(a, b) = v;
      kmm(b, a) = v;
    }
  }
  kmm.AddToDiagonal(1e-6 * kernel_.CovFromSqDist(0.0));
  SMILER_ASSIGN_OR_RETURN(kmm_chol_, la::Cholesky::Factor(kmm));

  // Precompute features for all pairs, then SGD-train the linear SVR.
  la::Matrix features(data.y.size(), m);
  for (std::size_t j = 0; j < data.y.size(); ++j) {
    const std::vector<double> phi = Features(data.x.Row(j));
    for (std::size_t a = 0; a < m; ++a) features(j, a) = phi[a];
  }
  model_.w.assign(m, 0.0);
  model_.b = 0.0;
  Rng rng(options_.seed);
  std::vector<std::size_t> order(data.y.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  long updates = 0;
  for (int e = 0; e < options_.epochs; ++e) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.UniformInt(i)]);
    }
    for (std::size_t idx : order) {
      const double* phi = features.Row(idx);
      const double err = data.y[idx] - model_.Eval(phi);
      double g = 0.0;
      if (err > options_.epsilon) {
        g = -1.0;
      } else if (err < -options_.epsilon) {
        g = 1.0;
      }
      const double lr =
          options_.learning_rate / std::sqrt(1.0 + 0.01 * updates);
      const double decay = 1.0 - lr * options_.l2;
      for (std::size_t a = 0; a < m; ++a) {
        model_.w[a] = model_.w[a] * decay - lr * g * phi[a];
      }
      model_.b -= lr * g;
      ++updates;
    }
  }

  // Residual variance on the training features.
  double sse = 0.0;
  for (std::size_t j = 0; j < data.y.size(); ++j) {
    const double r = data.y[j] - model_.Eval(features.Row(j));
    sse += r * r;
  }
  residual_var_ =
      std::max(sse / static_cast<double>(data.y.size()), 1e-6);
  trained_ = true;
  return Status::OK();
}

Prediction NysSvrModel::PredictAt(const double* x) const {
  const std::vector<double> phi = Features(x);
  Prediction p;
  p.mean = model_.Eval(phi.data());
  p.variance = residual_var_;
  return p;
}

Result<Prediction> NysSvrModel::Predict() {
  if (!trained_) return Status::FailedPrecondition("model not trained");
  return PredictAt(series_.data() + series_.size() - d_);
}

Status NysSvrModel::Observe(double value) {
  if (!trained_) return Status::FailedPrecondition("model not trained");
  series_.push_back(value);
  return Status::OK();
}

std::unique_ptr<BaselineModel> MakeNysSvr(int rank) {
  NysSvrModel::Options options;
  options.rank = rank;
  return std::make_unique<NysSvrModel>(options);
}

}  // namespace baselines
}  // namespace smiler
