#ifndef SMILER_BASELINES_LINEAR_SGD_H_
#define SMILER_BASELINES_LINEAR_SGD_H_

#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "common/rng.h"

namespace smiler {
namespace baselines {

/// Loss functions of the linear baselines.
enum class LinearLoss {
  /// epsilon-insensitive (Support Vector Regression, [75]).
  kEpsilonInsensitive,
  /// Huber loss (robust regression, [59]).
  kHuber,
};

/// \brief Options of the SGD linear baselines.
struct LinearSgdOptions {
  LinearLoss loss = LinearLoss::kEpsilonInsensitive;
  /// Offline epochs over the training pairs (online models use 1 warmup
  /// pass followed by per-observation updates).
  int epochs = 5;
  double learning_rate = 0.05;
  /// L2 regularization strength.
  double l2 = 1e-4;
  /// Epsilon of the insensitive tube / Huber transition point.
  double epsilon = 0.05;
  /// Max training pairs sampled from the history.
  std::size_t max_pairs = 20000;
  uint64_t seed = 1;
};

/// \brief Linear model y = w.x + b trained with stochastic gradient
/// descent, covering four of the paper's competitors:
///
/// - SgdSVR / SgdRR (offline): multi-epoch SGD over the history's sliding
///   window dataset at Train time.
/// - OnlineSVR / OnlineRR (\p online = true): a single warmup pass at
///   Train time, then one SGD update per incoming observation ("trained
///   in a one-pass online fashion", Bottou [14]).
///
/// Predictive variance is the residual variance on the training pairs
/// (kept updated from streaming residuals for the online variants).
class LinearSgdModel : public BaselineModel {
 public:
  LinearSgdModel(std::string name, const LinearSgdOptions& options,
                 bool online)
      : name_(std::move(name)), options_(options), online_(online) {}

  const char* name() const override { return name_.c_str(); }
  Status Train(const std::vector<double>& history, int d, int h) override;
  Result<Prediction> Predict() override;
  Status Observe(double value) override;

  const LinearModel& model() const { return model_; }

 private:
  /// One SGD step on pair (x, y) with step size \p lr.
  void Step(const double* x, double y, double lr);

  std::string name_;
  LinearSgdOptions options_;
  bool online_;
  int d_ = 0;
  int h_ = 0;
  LinearModel model_;
  std::vector<double> series_;
  double residual_var_ = 1.0;
  long updates_ = 0;  // SGD steps taken (for the 1/sqrt(t) schedule)
};

/// Factory helpers matching the paper's competitor names.
std::unique_ptr<BaselineModel> MakeSgdSvr();
std::unique_ptr<BaselineModel> MakeSgdRr();
std::unique_ptr<BaselineModel> MakeOnlineSvr();
std::unique_ptr<BaselineModel> MakeOnlineRr();

}  // namespace baselines
}  // namespace smiler

#endif  // SMILER_BASELINES_LINEAR_SGD_H_
