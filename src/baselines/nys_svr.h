#ifndef SMILER_BASELINES_NYS_SVR_H_
#define SMILER_BASELINES_NYS_SVR_H_

#include <memory>
#include <vector>

#include "baselines/baseline.h"
#include "gp/kernel.h"
#include "la/cholesky.h"

namespace smiler {
namespace baselines {

/// \brief NysSVR (Section 6.3.1): low-rank approximation of RBF-kernel
/// Support Vector Regression via the Nystrom method [69].
///
/// Landmarks Z are a uniform subsample of the training windows; the
/// feature map phi(x) = L^{-1} k_m(x) with K_mm = L L^T reproduces the
/// Nystrom kernel (phi(a).phi(b) = k_a^T K_mm^{-1} k_b). A linear
/// epsilon-insensitive SVR is then trained on the features with SGD.
class NysSvrModel : public BaselineModel {
 public:
  struct Options {
    /// Reduced rank / number of landmarks (the paper uses 128).
    int rank = 128;
    std::size_t max_pairs = 4000;
    int epochs = 5;
    double learning_rate = 0.05;
    double l2 = 1e-4;
    double epsilon = 0.05;
    uint64_t seed = 1;
  };

  NysSvrModel() : NysSvrModel(Options{}) {}
  explicit NysSvrModel(const Options& options);

  const char* name() const override { return "NysSVR"; }
  Status Train(const std::vector<double>& history, int d, int h) override;
  Result<Prediction> Predict() override;
  Status Observe(double value) override;

  /// Predicts at an arbitrary input (exposed for tests).
  Prediction PredictAt(const double* x) const;

 private:
  /// Nystrom feature map of one input window.
  std::vector<double> Features(const double* x) const;

  Options options_;
  int d_ = 0;
  int h_ = 0;
  std::vector<double> series_;

  gp::SeKernel kernel_;
  la::Matrix landmarks_;
  la::Cholesky kmm_chol_;
  LinearModel model_;  // on the rank-dimensional features
  double residual_var_ = 1.0;
  bool trained_ = false;
};

std::unique_ptr<BaselineModel> MakeNysSvr(int rank = 128);

}  // namespace baselines
}  // namespace smiler

#endif  // SMILER_BASELINES_NYS_SVR_H_
