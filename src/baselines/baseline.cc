#include "baselines/baseline.h"

#include <algorithm>

namespace smiler {
namespace baselines {

WindowDataset MakeWindowDataset(const std::vector<double>& series, int d,
                                int h, std::size_t max_pairs) {
  WindowDataset out;
  const long n = static_cast<long>(series.size());
  const long total = n - d - h + 1;  // valid window starts
  if (total <= 0 || max_pairs == 0) return out;
  const std::size_t keep = std::min<std::size_t>(total, max_pairs);
  const double stride = static_cast<double>(total) / static_cast<double>(keep);

  out.x = la::Matrix(keep, d);
  out.y.resize(keep);
  for (std::size_t j = 0; j < keep; ++j) {
    const long t = static_cast<long>(j * stride);
    double* row = out.x.Row(j);
    for (int p = 0; p < d; ++p) row[p] = series[t + p];
    out.y[j] = series[t + d - 1 + h];
  }
  return out;
}

double ResidualVariance(const LinearModel& model, const WindowDataset& data) {
  if (data.y.empty()) return 1.0;
  double s = 0.0;
  for (std::size_t j = 0; j < data.y.size(); ++j) {
    const double r = data.y[j] - model.Eval(data.x.Row(j));
    s += r * r;
  }
  return std::max(s / static_cast<double>(data.y.size()), 1e-6);
}

}  // namespace baselines
}  // namespace smiler
