#ifndef SMILER_BASELINES_HOLT_WINTERS_H_
#define SMILER_BASELINES_HOLT_WINTERS_H_

#include <memory>
#include <vector>

#include "baselines/baseline.h"

namespace smiler {
namespace baselines {

/// \brief State and one-step recursion of additive triple exponential
/// smoothing (Holt [38] / Winters [71]) with period m:
///   l_t = alpha (y_t - s_{t-m}) + (1 - alpha)(l_{t-1} + b_{t-1})
///   b_t = beta (l_t - l_{t-1}) + (1 - beta) b_{t-1}
///   s_t = gamma (y_t - l_t) + (1 - gamma) s_{t-m}
/// Exposed for unit tests; BaselineModel users go through
/// HoltWintersModel.
struct HoltWintersFit {
  double alpha = 0.3;
  double beta = 0.1;
  double gamma = 0.3;
  double level = 0.0;
  double trend = 0.0;
  std::vector<double> seasonal;  // length = period
  double sse = 0.0;              // one-step in-sample squared error
  long fitted_points = 0;

  /// h-step-ahead forecast from the final state.
  double Forecast(int h) const;
  /// Forecast variance: sigma^2 (1 + sum_{j<h} c_j^2) with the standard
  /// additive-HW error-weight c_j = alpha (1 + j beta) + gamma [j % m == 0].
  double ForecastVariance(int h) const;
};

/// \brief Fits additive Holt-Winters on \p data by coarse grid search over
/// (alpha, beta, gamma) minimizing one-step squared error (the paper:
/// "parameters were determined by minimizing the squared error").
/// Requires data.size() >= 2 * period.
Result<HoltWintersFit> FitHoltWinters(const std::vector<double>& data,
                                      int period);

/// \brief The FullHW / SegHW competitors: re-fits the model at every
/// Predict call — on the whole history (full = true, the paper's FullHW)
/// or on the last \p seg_days days (SegHW). The per-prediction re-fit is
/// what makes these the slowest predictors of Table 4.
class HoltWintersModel : public BaselineModel {
 public:
  /// \param period samples per season (the paper uses one day).
  HoltWintersModel(int period, bool full, int seg_days = 10);

  const char* name() const override { return full_ ? "FullHW" : "SegHW"; }
  Status Train(const std::vector<double>& history, int d, int h) override;
  Result<Prediction> Predict() override;
  Status Observe(double value) override;

 private:
  int period_;
  bool full_;
  int seg_days_;
  int h_ = 1;
  std::vector<double> series_;
};

std::unique_ptr<BaselineModel> MakeFullHw(int period);
std::unique_ptr<BaselineModel> MakeSegHw(int period);

}  // namespace baselines
}  // namespace smiler

#endif  // SMILER_BASELINES_HOLT_WINTERS_H_
