#ifndef SMILER_BASELINES_PSGP_H_
#define SMILER_BASELINES_PSGP_H_

#include <memory>
#include <vector>

#include "baselines/baseline.h"
#include "gp/kernel.h"

namespace smiler {
namespace baselines {

/// \brief PSGP: Projected Sparse Gaussian Process (Section 6.3.1), the
/// sparse on-line GP of Csató & Opper [25] that the paper's PSGP baseline
/// [9] implements — "projecting all information onto a set of active
/// points".
///
/// The posterior is parameterized by basis vectors BV plus (alpha, C); for
/// each training point either a *full update* (grows BV, exact Bayesian
/// update) or a *projected update* (KL-projection onto the current basis)
/// is applied depending on the novelty gamma = k** - k^T Q k. When BV
/// exceeds the active-point budget, the lowest-score basis vector is
/// removed with the KL-optimal deletion equations.
///
/// Training cost grows ~ O(n * m^2) in the number of active points m —
/// the Fig 13 trade-off.
class PsgpModel : public BaselineModel {
 public:
  struct Options {
    /// Active-point budget (the paper sweeps 4..128; default 32).
    int active_points = 32;
    /// Training pairs subsampled from the history.
    std::size_t max_pairs = 4000;
    /// Novelty threshold below which a projected update is used.
    double novelty_tol = 1e-6;
    /// Hyperparameters are fit by exact LOO training on a random
    /// subsample of this size before the online sweep.
    std::size_t hyper_subsample = 48;
    int hyper_cg_steps = 10;
    uint64_t seed = 1;
  };

  PsgpModel() : PsgpModel(Options{}) {}
  explicit PsgpModel(const Options& options);

  const char* name() const override { return "PSGP"; }
  Status Train(const std::vector<double>& history, int d, int h) override;
  Result<Prediction> Predict() override;
  Status Observe(double value) override;

  /// Number of active points after training (exposed for tests).
  int num_basis() const { return static_cast<int>(basis_.rows()); }
  /// Predicts at an arbitrary input (exposed for tests).
  Prediction PredictAt(const double* x) const;

 private:
  /// Processes one training pair through the online update.
  void ProcessPoint(const double* x, double y);
  /// Removes the basis vector with the lowest score.
  void DeleteLowestScore();

  Options options_;
  gp::SeKernel kernel_;
  int d_ = 0;
  int h_ = 0;
  std::vector<double> series_;

  // On-line GP posterior state.
  la::Matrix basis_;     // m x d active inputs
  std::vector<double> alpha_;
  la::Matrix c_;         // posterior covariance correction
  la::Matrix q_;         // inverse gram matrix of the basis
  bool trained_ = false;
};

std::unique_ptr<BaselineModel> MakePsgp(int active_points = 32);

}  // namespace baselines
}  // namespace smiler

#endif  // SMILER_BASELINES_PSGP_H_
