#include "baselines/vlgp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math_utils.h"

namespace smiler {
namespace baselines {

namespace {

// K_nm: cross covariance between dataset rows and inducing rows
// (noise-free kernel part).
la::Matrix CrossGram(const gp::SeKernel& kernel, const la::Matrix& x,
                     const la::Matrix& z) {
  la::Matrix knm(x.rows(), z.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < z.rows(); ++j) {
      knm(i, j) = kernel.CovFromSqDist(
          gp::SquaredDistance(x.Row(i), z.Row(j), x.cols()));
    }
  }
  return knm;
}

// K_mm with a tiny stabilizing jitter (no observation noise).
la::Matrix InducingGram(const gp::SeKernel& kernel, const la::Matrix& z) {
  la::Matrix kmm(z.rows(), z.rows());
  for (std::size_t i = 0; i < z.rows(); ++i) {
    for (std::size_t j = i; j < z.rows(); ++j) {
      const double v = kernel.CovFromSqDist(
          gp::SquaredDistance(z.Row(i), z.Row(j), z.cols()));
      kmm(i, j) = v;
      kmm(j, i) = v;
    }
  }
  kmm.AddToDiagonal(1e-8 * kernel.CovFromSqDist(0.0));
  return kmm;
}

}  // namespace

VlgpModel::VlgpModel(const Options& options) : options_(options) {}

double VlgpModel::ComputeElbo(const WindowDataset& data,
                              const gp::SeKernel& kernel,
                              const la::Matrix& z) const {
  const std::size_t n = data.y.size();
  const std::size_t m = z.rows();
  const double noise2 =
      std::max(kernel.theta2() * kernel.theta2(), 1e-8);

  auto kmm_chol = la::Cholesky::Factor(InducingGram(kernel, z));
  if (!kmm_chol.ok()) return -std::numeric_limits<double>::infinity();
  const la::Matrix knm = CrossGram(kernel, data.x, z);

  // Sigma = K_mm + sigma^{-2} K_mn K_nm.
  la::Matrix sigma = InducingGram(kernel, z);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = 0; b < m; ++b) {
      double s = 0.0;
      for (std::size_t i = 0; i < n; ++i) s += knm(i, a) * knm(i, b);
      sigma(a, b) += s / noise2;
    }
  }
  auto sigma_chol = la::Cholesky::Factor(sigma);
  if (!sigma_chol.ok()) return -std::numeric_limits<double>::infinity();

  // K_mn y.
  std::vector<double> kmny(m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t a = 0; a < m; ++a) kmny[a] += knm(i, a) * data.y[i];
  }

  // log det(Q + sigma^2 I) = n log sigma^2 + log det(Sigma) - log det(Kmm).
  const double logdet =
      n * std::log(noise2) + sigma_chol->LogDet() - kmm_chol->LogDet();

  // y^T (Q + sigma^2 I)^{-1} y
  //   = y^T y / sigma^2 - (K_mn y)^T Sigma^{-1} (K_mn y) / sigma^4.
  const double yty = la::Dot(data.y, data.y);
  const std::vector<double> sv = sigma_chol->Solve(kmny);
  const double quad = yty / noise2 - la::Dot(kmny, sv) / (noise2 * noise2);

  // tr(K_nn - Q_nn) = n k** - sum_i k_i^T Kmm^{-1} k_i.
  double trace = n * kernel.CovFromSqDist(0.0);
  std::vector<double> ki(m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t a = 0; a < m; ++a) ki[a] = knm(i, a);
    trace -= la::Dot(ki, kmm_chol->Solve(ki));
  }
  trace = std::max(trace, 0.0);

  return -0.5 * (n * kLog2Pi + logdet + quad) - trace / (2.0 * noise2);
}

Status VlgpModel::FitPosterior(const WindowDataset& data,
                               const gp::SeKernel& kernel,
                               const la::Matrix& z) {
  const std::size_t n = data.y.size();
  const std::size_t m = z.rows();
  const double noise2 =
      std::max(kernel.theta2() * kernel.theta2(), 1e-8);

  SMILER_ASSIGN_OR_RETURN(kmm_chol_,
                          la::Cholesky::Factor(InducingGram(kernel, z)));
  const la::Matrix knm = CrossGram(kernel, data.x, z);
  la::Matrix sigma = InducingGram(kernel, z);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = 0; b < m; ++b) {
      double s = 0.0;
      for (std::size_t i = 0; i < n; ++i) s += knm(i, a) * knm(i, b);
      sigma(a, b) += s / noise2;
    }
  }
  SMILER_ASSIGN_OR_RETURN(sigma_chol_, la::Cholesky::Factor(sigma));

  std::vector<double> kmny(m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t a = 0; a < m; ++a) kmny[a] += knm(i, a) * data.y[i];
  }
  proj_y_ = sigma_chol_.Solve(kmny);
  for (double& v : proj_y_) v /= noise2;
  kernel_ = kernel;
  z_ = z;
  return Status::OK();
}

Status VlgpModel::Train(const std::vector<double>& history, int d, int h) {
  if (d <= 0 || h < 1) {
    return Status::InvalidArgument("d must be > 0 and h >= 1");
  }
  if (static_cast<long>(history.size()) < d + h) {
    return Status::InvalidArgument("history shorter than d + h");
  }
  d_ = d;
  h_ = h;
  series_ = history;

  WindowDataset data = MakeWindowDataset(history, d, h, options_.max_pairs);
  if (data.y.empty()) {
    return Status::InvalidArgument("no training pairs available");
  }

  // Inducing inputs: uniform subsample of the training windows.
  const std::size_t m = std::min<std::size_t>(
      std::max(options_.inducing_points, 1), data.y.size());
  la::Matrix z(m, d);
  const double stride =
      static_cast<double>(data.y.size()) / static_cast<double>(m);
  for (std::size_t a = 0; a < m; ++a) {
    const std::size_t idx = static_cast<std::size_t>(a * stride);
    for (int p = 0; p < d; ++p) z(a, p) = data.x(idx, p);
  }

  // Variational learning: select hyperparameters by ELBO over a grid
  // around the heuristic seed.
  const gp::SeKernel seed = gp::SeKernel::Heuristic(data.x, data.y);
  double best_elbo = -std::numeric_limits<double>::infinity();
  gp::SeKernel best = seed;
  for (double len_factor : {0.5, 1.0, 2.0}) {
    for (double noise_factor : {0.5, 1.0, 2.0}) {
      gp::SeKernel cand(seed.log_params()[0],
                        seed.log_params()[1] + std::log(len_factor),
                        seed.log_params()[2] + std::log(noise_factor));
      const double elbo = ComputeElbo(data, cand, z);
      if (elbo > best_elbo) {
        best_elbo = elbo;
        best = cand;
      }
    }
  }
  if (!std::isfinite(best_elbo)) {
    return Status::NumericalError("no feasible VLGP hyperparameters");
  }
  elbo_ = best_elbo;
  SMILER_RETURN_NOT_OK(FitPosterior(data, best, z));
  trained_ = true;
  return Status::OK();
}

Prediction VlgpModel::PredictAt(const double* x) const {
  const std::size_t m = z_.rows();
  std::vector<double> km(m);
  for (std::size_t a = 0; a < m; ++a) {
    km[a] =
        kernel_.CovFromSqDist(gp::SquaredDistance(z_.Row(a), x, d_));
  }
  const double noise2 =
      std::max(kernel_.theta2() * kernel_.theta2(), 1e-8);
  Prediction p;
  p.mean = la::Dot(km, proj_y_);
  const double prior = kernel_.CovFromSqDist(0.0);
  const double explained = la::Dot(km, kmm_chol_.Solve(km));
  const double reintro = la::Dot(km, sigma_chol_.Solve(km));
  p.variance = std::max(prior - explained + reintro + noise2, 1e-9);
  return p;
}

Result<Prediction> VlgpModel::Predict() {
  if (!trained_) return Status::FailedPrecondition("model not trained");
  return PredictAt(series_.data() + series_.size() - d_);
}

Status VlgpModel::Observe(double value) {
  if (!trained_) return Status::FailedPrecondition("model not trained");
  series_.push_back(value);
  return Status::OK();
}

std::unique_ptr<BaselineModel> MakeVlgp(int inducing_points) {
  VlgpModel::Options options;
  options.inducing_points = inducing_points;
  return std::make_unique<VlgpModel>(options);
}

}  // namespace baselines
}  // namespace smiler
