#ifndef SMILER_DTW_ENVELOPE_H_
#define SMILER_DTW_ENVELOPE_H_

#include <cstddef>
#include <vector>

namespace smiler {
namespace dtw {

/// \brief Upper/lower envelope of a time series under a Sakoe-Chiba band
/// (Definition B.1): U_i = max_{-rho<=r<=rho} c_{i+r},
///                   L_i = min_{-rho<=r<=rho} c_{i+r},
/// with indices clamped to the series bounds.
struct Envelope {
  std::vector<double> upper;
  std::vector<double> lower;

  std::size_t size() const { return upper.size(); }
};

/// \brief Computes the envelope of \p values (length \p n) with warping
/// width \p rho in O(n) using the Lemire streaming min/max algorithm.
Envelope ComputeEnvelope(const double* values, std::size_t n, int rho);

/// Convenience overload.
Envelope ComputeEnvelope(const std::vector<double>& values, int rho);

/// \brief Recomputes envelope entries for positions [begin, end) of
/// \p values into an existing envelope (same length); used by the index's
/// continuous-update path where appending a point only perturbs the last
/// rho envelope entries. O((end-begin+rho)) per call.
void UpdateEnvelopeRange(const double* values, std::size_t n, int rho,
                         std::size_t begin, std::size_t end, Envelope* env);

}  // namespace dtw
}  // namespace smiler

#endif  // SMILER_DTW_ENVELOPE_H_
