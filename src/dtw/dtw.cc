#include "dtw/dtw.h"

#include <algorithm>
#include <vector>

#include "common/math_utils.h"

namespace smiler {
namespace dtw {

namespace {

// Rolling two-row banded DTW. Rows are indexed 0..d (cell 0 is the gamma
// boundary); cost rows are laid out full-length for simplicity — the band
// keeps the inner loop short regardless.
double BandedDtwImpl(const double* q, const double* c, std::size_t d, int rho,
                     double cutoff) {
  const long n = static_cast<long>(d);
  const long w = std::max<long>(rho, 0);
  std::vector<double> prev(d + 1, kInf);
  std::vector<double> curr(d + 1, kInf);
  prev[0] = 0.0;

  for (long i = 1; i <= n; ++i) {
    const long lo = std::max<long>(1, i - w);
    const long hi = std::min<long>(n, i + w);
    std::fill(curr.begin(), curr.end(), kInf);
    double row_min = kInf;
    for (long j = lo; j <= hi; ++j) {
      const double cost = SquaredDist(q[i - 1], c[j - 1]);
      const double best =
          std::min({curr[j - 1], prev[j], prev[j - 1]});
      curr[j] = cost + best;
      row_min = std::min(row_min, curr[j]);
    }
    if (row_min > cutoff) return kInf;  // early abandon
    prev.swap(curr);
  }
  return prev[n];
}

// True Euclidean-style modulus (C++ % is implementation-friendly but
// negative-hostile; Algorithm 2's (j - rho - 1) % m can go negative).
inline long Mod(long a, long m) {
  const long r = a % m;
  return r < 0 ? r + m : r;
}

}  // namespace

double BandedDtw(const double* q, const double* c, std::size_t d, int rho) {
  return BandedDtwImpl(q, c, d, rho, kInf);
}

double UnconstrainedDtw(const double* q, const double* c, std::size_t d) {
  return BandedDtwImpl(q, c, d, static_cast<int>(d), kInf);
}

double EarlyAbandonDtw(const double* q, const double* c, std::size_t d,
                       int rho, double cutoff) {
  return BandedDtwImpl(q, c, d, rho, cutoff);
}

namespace {

// Algorithm 2 (Appendix E): gamma is a ring buffer of m rows x 2 columns,
// m = 2*rho + 2; row index is (i % m), column index is (j % 2). The
// modulus reuses the space of cells that have left the band. This
// implementation splits the scratch by column parity and replaces the
// per-access modulus with wrapped ring cursors — same 2*(2*rho+2)
// footprint, branch-light inner loop.
//
// kAbandon additionally tracks each column's band minimum: any warping
// path to gamma(n, n) crosses every column, and gamma is non-decreasing
// along a path, so once a whole column exceeds the cutoff the result is
// guaranteed to as well. The per-cell arithmetic is untouched, so a run
// that reaches the final cell returns a value bitwise-identical to the
// non-abandoning kernel.
template <bool kAbandon>
double CompressedDtwImpl(const double* q, const double* c, std::size_t d,
                         int rho, double cutoff, double* scratch) {
  const long n = static_cast<long>(d);
  const long w = std::max<long>(rho, 0);
  const long m = 2 * w + 2;
  double* col[2] = {scratch, scratch + m};

  // Boundary conditions: gamma(0,0) = 0; gamma(i,0) = inf for i = 1..m-1;
  // gamma(0,1) = inf (Algorithm 2 lines 3-5).
  col[0][0] = 0.0;
  for (long i = 1; i < m; ++i) col[0][i] = kInf;
  col[1][0] = kInf;

  for (long j = 1; j <= n; ++j) {
    double* cur = col[j & 1];
    const double* prev = col[(j - 1) & 1];
    const long lo = std::max<long>(1, j - w);
    const long hi = std::min<long>(n, j + w);
    // Boundary / reuse invalidations. cur[(lo-1) % m] covers both the
    // paper's line 7 (gamma(j-w-1, j) when lo = j-w) and the gamma(0, j)
    // boundary the pseudocode omits (when lo = 1, stale gamma(0, 0) = 0
    // would otherwise alias gamma(0, even j) and underestimate the
    // distance). Line 8 invalidates prev[(j+w) % m].
    col[j & 1][Mod(lo - 1, m)] = kInf;
    col[(j - 1) & 1][Mod(j + w, m)] = kInf;

    const double qj = c[j - 1];
    long im = Mod(lo, m);          // ring index of i
    long pm = im == 0 ? m - 1 : im - 1;  // ring index of i - 1
    double left = cur[pm];         // gamma(i-1, j), updated as we go
    double col_min = kInf;
    for (long i = lo; i <= hi; ++i) {
      const double up = prev[im];    // gamma(i, j-1)
      const double diag = prev[pm];  // gamma(i-1, j-1)
      double best = left < up ? left : up;
      if (diag < best) best = diag;
      const double dq = q[i - 1] - qj;
      left = dq * dq + best;  // becomes gamma(i, j) = next cell's left
      cur[im] = left;
      if (kAbandon && left < col_min) col_min = left;
      pm = im;
      im = im + 1 == m ? 0 : im + 1;
    }
    if (kAbandon && col_min > cutoff) return kInf;
  }
  return col[n & 1][Mod(n, m)];
}

}  // namespace

double CompressedDtw(const double* q, const double* c, std::size_t d, int rho,
                     double* scratch) {
  return CompressedDtwImpl<false>(q, c, d, rho, kInf, scratch);
}

double CompressedDtw(const double* q, const double* c, std::size_t d,
                     int rho) {
  std::vector<double> scratch(CompressedDtwScratchSize(rho));
  return CompressedDtw(q, c, d, rho, scratch.data());
}

double CompressedDtwEarlyAbandon(const double* q, const double* c,
                                 std::size_t d, int rho, double cutoff,
                                 double* scratch) {
  return CompressedDtwImpl<true>(q, c, d, rho, cutoff, scratch);
}

// Lane-batched mirror of CompressedDtwImpl<true>: the ring-cursor walk,
// boundary invalidations and per-cell min/accumulate are identical per
// lane — the lane index is merely an inner SIMD dimension over
// independent candidates, so no floating-point operation is reordered
// within any one lane's computation. Scratch is laid out lane-major
// (ring row r of lane l lives at r * kLanes + l) so the inner loop loads
// and stores contiguous 4-lane groups.
void CompressedDtwEarlyAbandonBatch(const double* q, const double* const* cs,
                                    std::size_t d, int rho, double cutoff,
                                    double* out, double* scratch) {
  constexpr int kLanes = kDtwBatchLanes;
  const long n = static_cast<long>(d);
  const long w = std::max<long>(rho, 0);
  const long m = 2 * w + 2;
  double* col[2] = {scratch, scratch + m * kLanes};

  for (int l = 0; l < kLanes; ++l) col[0][l] = 0.0;
  for (long i = 1; i < m; ++i) {
    for (int l = 0; l < kLanes; ++l) col[0][i * kLanes + l] = kInf;
  }
  for (int l = 0; l < kLanes; ++l) col[1][l] = kInf;

  bool abandoned[kLanes] = {};
  int n_live = kLanes;
  double qj[kLanes];
  double left[kLanes];
  double col_min[kLanes];

  for (long j = 1; j <= n; ++j) {
    double* cur = col[j & 1];
    double* prev = col[(j - 1) & 1];
    const long lo = std::max<long>(1, j - w);
    const long hi = std::min<long>(n, j + w);
    {
      const long inv_cur = Mod(lo - 1, m) * kLanes;
      const long inv_prev = Mod(j + w, m) * kLanes;
      for (int l = 0; l < kLanes; ++l) cur[inv_cur + l] = kInf;
      for (int l = 0; l < kLanes; ++l) prev[inv_prev + l] = kInf;
    }
    for (int l = 0; l < kLanes; ++l) qj[l] = cs[l][j - 1];
    long im = Mod(lo, m);
    long pm = im == 0 ? m - 1 : im - 1;
    for (int l = 0; l < kLanes; ++l) left[l] = cur[pm * kLanes + l];
    for (int l = 0; l < kLanes; ++l) col_min[l] = kInf;
    for (long i = lo; i <= hi; ++i) {
      const double* pu = prev + im * kLanes;
      const double* pd = prev + pm * kLanes;
      double* cc = cur + im * kLanes;
      const double qi = q[i - 1];
#pragma omp simd
      for (int l = 0; l < kLanes; ++l) {
        const double up = pu[l];
        const double diag = pd[l];
        double best = left[l] < up ? left[l] : up;
        best = diag < best ? diag : best;
        const double dq = qi - qj[l];
        const double v = dq * dq + best;
        left[l] = v;
        cc[l] = v;
        col_min[l] = v < col_min[l] ? v : col_min[l];
      }
      pm = im;
      im = im + 1 == m ? 0 : im + 1;
    }
    for (int l = 0; l < kLanes; ++l) {
      if (!abandoned[l] && col_min[l] > cutoff) {
        abandoned[l] = true;
        out[l] = kInf;
        --n_live;
      }
    }
    if (n_live == 0) return;
  }
  const double* last = col[n & 1] + Mod(n, m) * kLanes;
  for (int l = 0; l < kLanes; ++l) {
    if (!abandoned[l]) out[l] = last[l];
  }
}

}  // namespace dtw
}  // namespace smiler
