#ifndef SMILER_DTW_DTW_H_
#define SMILER_DTW_DTW_H_

#include <cstddef>

namespace smiler {
namespace dtw {

/// \brief Banded DTW distance (Sakoe-Chiba width \p rho) between two
/// equal-length sequences of \p d points; per-point cost is the squared
/// difference and the returned distance is the accumulated (unsquare-rooted)
/// warping cost gamma(d, d), matching Appendix B.1.
///
/// Reference implementation (full rolling rows); used for verification in
/// tests and by the CPU scan baseline.
double BandedDtw(const double* q, const double* c, std::size_t d, int rho);

/// \brief Unconstrained DTW (no band), the distance GPUScan computes.
/// Equivalent to BandedDtw with rho >= d - 1.
double UnconstrainedDtw(const double* q, const double* c, std::size_t d);

/// \brief Banded DTW with early abandoning: returns +infinity as soon as
/// every cell of a warping-matrix row exceeds \p cutoff (the exact distance
/// can then no longer beat the current kNN threshold). Used by FastCPUScan.
double EarlyAbandonDtw(const double* q, const double* c, std::size_t d,
                       int rho, double cutoff);

/// \brief Number of scratch doubles CompressedDtw needs for width \p rho:
/// the paper's 2 x (2*rho + 2) compressed warping matrix (Appendix E).
constexpr std::size_t CompressedDtwScratchSize(int rho) {
  return 2 * (2 * static_cast<std::size_t>(rho) + 2);
}

/// \brief Banded DTW using the paper's compressed warping matrix
/// (Algorithm 2): a 2 x (2*rho+2) ring buffer indexed by modulus so the
/// whole state fits in GPU shared memory. \p scratch must point to at
/// least CompressedDtwScratchSize(rho) doubles (e.g. carved from a
/// simgpu::SharedMemory arena). Produces exactly BandedDtw's result.
double CompressedDtw(const double* q, const double* c, std::size_t d, int rho,
                     double* scratch);

/// \brief Convenience overload that owns its scratch buffer.
double CompressedDtw(const double* q, const double* c, std::size_t d, int rho);

/// \brief CompressedDtw with early abandoning against \p cutoff: tracks the
/// running minimum of each warping-matrix column inside the band and
/// returns +infinity as soon as that minimum exceeds \p cutoff (every path
/// to gamma(d, d) passes through each column, so the final distance can no
/// longer beat the threshold).
///
/// Exactness contract (relied on by the index's verification phase):
/// whenever the true distance is <= \p cutoff this performs exactly the
/// same arithmetic as CompressedDtw and returns a bitwise-identical result;
/// otherwise the return value is >= \p cutoff (the exact distance or
/// +infinity). \p scratch as in CompressedDtw.
double CompressedDtwEarlyAbandon(const double* q, const double* c,
                                 std::size_t d, int rho, double cutoff,
                                 double* scratch);

/// Lane count of the batched verify kernel below. Four 64-bit lanes fill
/// two SSE2 registers (the baseline-ISA vector width) and, just as
/// important on narrow machines, interleave four independent
/// recurrence chains so the min/multiply-add latency of one cell overlaps
/// the others' — the scalar kernel is latency-bound on that chain.
inline constexpr int kDtwBatchLanes = 4;

/// \brief Scratch doubles CompressedDtwEarlyAbandonBatch needs: the
/// compressed warping matrix of CompressedDtwScratchSize, lane-major.
constexpr std::size_t CompressedDtwBatchScratchSize(int rho) {
  return CompressedDtwScratchSize(rho) *
         static_cast<std::size_t>(kDtwBatchLanes);
}

/// \brief Verifies kDtwBatchLanes candidates against one query in
/// lockstep: per warping-matrix cell, each lane performs *exactly* the
/// scalar CompressedDtwEarlyAbandon arithmetic on its own candidate, so
/// every lane's result is bitwise-identical to a scalar call with the
/// same cutoff. The lane loop carries no cross-lane dependency and
/// vectorizes (`#pragma omp simd`).
///
/// Early abandoning is per lane: when a lane's column band minimum
/// exceeds \p cutoff its output becomes +infinity at that column — the
/// same column the scalar kernel would abandon at — and the batch stops
/// once every lane has abandoned. \p c holds kDtwBatchLanes candidate
/// pointers, \p out receives kDtwBatchLanes distances, \p scratch at
/// least CompressedDtwBatchScratchSize(rho) doubles.
void CompressedDtwEarlyAbandonBatch(const double* q, const double* const* c,
                                    std::size_t d, int rho, double cutoff,
                                    double* out, double* scratch);

}  // namespace dtw
}  // namespace smiler

#endif  // SMILER_DTW_DTW_H_
