#ifndef SMILER_DTW_LOWER_BOUNDS_H_
#define SMILER_DTW_LOWER_BOUNDS_H_

#include <cstddef>

#include "dtw/envelope.h"

namespace smiler {
namespace dtw {

/// \brief LB_Keogh between an envelope and a raw sequence (Eqn 26):
/// sum over positions i of the squared exceedance of raw[i] beyond
/// [L_i, U_i]. A lower bound of the banded DTW between the two series
/// the envelope / raw values came from.
double LbKeogh(const Envelope& env, const double* raw, std::size_t n);

/// \brief Partial (windowed) LB_Keogh over an aligned range: compares
/// raw[raw_begin + u] against envelope entries env_begin + u for
/// u in [0, len). This is the posting-list entry of the window-level
/// index: LBEQ(SW, DW) and LBEC(SW, DW) are both instances.
double LbKeoghAligned(const Envelope& env, std::size_t env_begin,
                      const double* raw, std::size_t raw_begin,
                      std::size_t len);

/// \brief LBEQ(Q, C) = LB_Keogh(E(Q), C): query-envelope bound.
/// \p env_q must be the envelope of the query; \p c has the same length.
inline double Lbeq(const Envelope& env_q, const double* c, std::size_t n) {
  return LbKeogh(env_q, c, n);
}

/// \brief LBEC(Q, C) = LB_Keogh(E(C), Q): candidate-envelope bound.
/// \p env_c must be the envelope of the candidate; \p q has the same length.
inline double Lbec(const Envelope& env_c, const double* q, std::size_t n) {
  return LbKeogh(env_c, q, n);
}

/// \brief The paper's enhanced lower bound (Section 4.2):
/// LBen(Q, C) = max(LBEQ(Q, C), LBEC(Q, C)).
double Lben(const Envelope& env_q, const Envelope& env_c, const double* q,
            const double* c, std::size_t n);

}  // namespace dtw
}  // namespace smiler

#endif  // SMILER_DTW_LOWER_BOUNDS_H_
