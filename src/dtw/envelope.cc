#include "dtw/envelope.h"

#include <algorithm>
#include <deque>

namespace smiler {
namespace dtw {

Envelope ComputeEnvelope(const double* values, std::size_t n, int rho) {
  Envelope env;
  env.upper.resize(n);
  env.lower.resize(n);
  if (n == 0) return env;

  // Lemire's monotonic deques over the window [i-rho, i+rho].
  std::deque<std::size_t> maxq;
  std::deque<std::size_t> minq;
  const std::size_t w = static_cast<std::size_t>(rho);

  auto push = [&](std::size_t j) {
    while (!maxq.empty() && values[maxq.back()] <= values[j]) maxq.pop_back();
    maxq.push_back(j);
    while (!minq.empty() && values[minq.back()] >= values[j]) minq.pop_back();
    minq.push_back(j);
  };

  // Pre-fill the first rho+1 positions.
  for (std::size_t j = 0; j < std::min(n, w + 1); ++j) push(j);

  for (std::size_t i = 0; i < n; ++i) {
    // Window front: drop indices < i - rho.
    if (i > w) {
      while (!maxq.empty() && maxq.front() + w < i) maxq.pop_front();
      while (!minq.empty() && minq.front() + w < i) minq.pop_front();
    }
    env.upper[i] = values[maxq.front()];
    env.lower[i] = values[minq.front()];
    // Window back: admit index i + rho + 1 for the next iteration.
    const std::size_t next = i + w + 1;
    if (next < n) push(next);
  }
  return env;
}

Envelope ComputeEnvelope(const std::vector<double>& values, int rho) {
  return ComputeEnvelope(values.data(), values.size(), rho);
}

void UpdateEnvelopeRange(const double* values, std::size_t n, int rho,
                         std::size_t begin, std::size_t end, Envelope* env) {
  end = std::min(end, n);
  const long w = rho;
  for (std::size_t i = begin; i < end; ++i) {
    const long lo = std::max<long>(0, static_cast<long>(i) - w);
    const long hi =
        std::min<long>(static_cast<long>(n) - 1, static_cast<long>(i) + w);
    double mx = values[lo];
    double mn = values[lo];
    for (long j = lo + 1; j <= hi; ++j) {
      mx = std::max(mx, values[j]);
      mn = std::min(mn, values[j]);
    }
    env->upper[i] = mx;
    env->lower[i] = mn;
  }
}

}  // namespace dtw
}  // namespace smiler
