#include "dtw/lower_bounds.h"

#include <algorithm>

#include "common/math_utils.h"

namespace smiler {
namespace dtw {

double LbKeoghAligned(const Envelope& env, std::size_t env_begin,
                      const double* raw, std::size_t raw_begin,
                      std::size_t len) {
  double sum = 0.0;
  const double* upper = env.upper.data() + env_begin;
  const double* lower = env.lower.data() + env_begin;
  const double* x = raw + raw_begin;
  for (std::size_t u = 0; u < len; ++u) {
    const double v = x[u];
    if (v > upper[u]) {
      sum += SquaredDist(v, upper[u]);
    } else if (v < lower[u]) {
      sum += SquaredDist(v, lower[u]);
    }
  }
  return sum;
}

double LbKeogh(const Envelope& env, const double* raw, std::size_t n) {
  return LbKeoghAligned(env, 0, raw, 0, n);
}

double Lben(const Envelope& env_q, const Envelope& env_c, const double* q,
            const double* c, std::size_t n) {
  return std::max(Lbeq(env_q, c, n), Lbec(env_c, q, n));
}

}  // namespace dtw
}  // namespace smiler
