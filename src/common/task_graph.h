#ifndef SMILER_COMMON_TASK_GRAPH_H_
#define SMILER_COMMON_TASK_GRAPH_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace smiler {

/// \brief A dataflow DAG of Status-returning closures executed over the
/// process ThreadPool (ROADMAP item 2: the async predict pipeline).
///
/// Nodes are stage closures (lb_filter, dtw_verify, gram, cholesky,
/// forecast, rehydrate IO, ...), edges are happens-before dependencies.
/// `Run` executes every node exactly once in some topological order:
/// the calling thread and a work-stealing-style set of pool helpers
/// drain a shared ready queue, so independent chains (different sensors
/// of a serve micro-batch) overlap while each chain stays sequential.
///
/// Error containment mirrors the serve layer's per-sensor Status
/// isolation: a node returning a non-OK Status *poisons* its transitive
/// dependents — they are never executed and complete with the first
/// (lowest-node-id) failed parent's Status verbatim — while every
/// unrelated node runs to completion. `Future(id)` exposes a completion
/// future per node; Run fulfils every future on every path (success,
/// poison, cycle, cancel), so callers never leak a waiter.
///
/// Determinism: the graph imposes no order beyond the edges, and the
/// executor adds no hidden rendezvous, so closures whose results are
/// independent of sibling completion order (the predict pipeline's
/// per-sensor chains) produce bitwise-identical results under any
/// schedule — task_graph_equivalence_test pins that against the
/// sequential path, and the `graph.node_defer` chaos point adversarially
/// reorders ready nodes to prove no ordering dependence crept in.
///
/// Thread safety: build the graph (AddNode/AddEdge) from one thread;
/// Run once. Cancel may be called from any thread (including a node)
/// while Run is in flight.
class TaskGraph {
 public:
  using NodeId = std::size_t;

  struct Options {
    /// Prefix for the executor's conservation gauges
    /// (`<prefix>.ready_nodes`, `.running_nodes`, `.done_nodes`) — level
    /// gauges that conserve to exactly 0 after every drain, the same law
    /// the chaos runner asserts for the serve queue-depth gauges. Empty
    /// disables gauge accounting (micro-graphs in tight loops).
    std::string gauge_prefix;
  };

  TaskGraph() : TaskGraph(Options{}) {}
  explicit TaskGraph(Options options);

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Adds a node executing \p fn. \p label names the node in traces and
  /// error messages. Returns the node's id (dense, starting at 0).
  NodeId AddNode(std::string label, std::function<Status()> fn);

  /// Declares that \p from must complete (OK) before \p to starts.
  /// Duplicate edges are idempotent. Fails with kInvalidArgument on
  /// unknown ids or a self-edge; cycles are detected at Run.
  Status AddEdge(NodeId from, NodeId to);

  /// Completion future for node \p id (sharable; valid for the graph's
  /// lifetime). Satisfied by Run on every path — including cycle
  /// rejection and Cancel — with the node's Status.
  std::shared_future<Status> Future(NodeId id) const;

  /// Executes the graph to completion over \p pool (default: the process
  /// pool). Returns kInvalidArgument without executing anything when the
  /// edges contain a cycle (every future carries that error), and
  /// otherwise the first (lowest-node-id) non-OK node Status, or OK.
  /// Run may be called at most once per graph.
  Status Run(ThreadPool* pool = nullptr);

  /// Requests early shutdown: nodes not yet claimed are marked cancelled
  /// (kFailedPrecondition) instead of executing; nodes already running
  /// finish normally. Run still drains every node's bookkeeping, so all
  /// futures are satisfied and the conservation gauges settle to 0.
  void Cancel();

  std::size_t num_nodes() const { return nodes_.size(); }
  const std::string& label(NodeId id) const { return nodes_[id]->label; }

 private:
  struct Node {
    std::string label;
    std::function<Status()> fn;
    std::vector<NodeId> dependents;
    std::vector<NodeId> parents;
    std::size_t num_deps = 0;          // static in-degree
    std::size_t pending_deps = 0;      // runtime countdown (guarded by mu_)
    Status result;                     // written once, before the promise
    bool poisoned = false;             // a parent failed: skip fn
    std::promise<Status> promise;
    std::shared_future<Status> future;
  };

  /// Pops and executes ready nodes until the queue is momentarily empty.
  /// Shared by the caller thread and the pool helpers.
  void DrainReady();
  /// Executes one claimed node and unlocks its dependents. \p lock is the
  /// held mu_ lock (released around fn, re-acquired after).
  void ExecuteNode(NodeId id, std::unique_lock<std::mutex>& lock);
  /// Marks \p id ready under mu_ (gauge + queue + helper refill signal).
  void PushReady(NodeId id);
  /// True when the static edge set contains a cycle (Kahn's algorithm).
  bool HasCycle() const;

  std::vector<std::unique_ptr<Node>> nodes_;
  bool ran_ = false;

  // Executor state (valid during Run).
  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  std::deque<NodeId> ready_;
  std::size_t completed_ = 0;
  bool cancelled_ = false;
  ThreadPool* pool_ = nullptr;
  int helpers_in_flight_ = 0;
  int max_helpers_ = 0;

  // Conservation gauges (null when gauge_prefix is empty).
  obs::Gauge* ready_gauge_ = nullptr;
  obs::Gauge* running_gauge_ = nullptr;
  obs::Gauge* done_gauge_ = nullptr;
};

}  // namespace smiler

#endif  // SMILER_COMMON_TASK_GRAPH_H_
