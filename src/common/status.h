#ifndef SMILER_COMMON_STATUS_H_
#define SMILER_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace smiler {

/// \brief Error category for a failed operation.
///
/// Follows the Arrow / RocksDB convention of returning rich status objects
/// instead of throwing exceptions across library boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kNumericalError,
  kResourceExhausted,
  kNotImplemented,
  kInternal,
  kDeadlineExceeded,
};

/// \brief Returns a human readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of a fallible operation that returns no value.
///
/// A `Status` is cheap to copy in the OK case (no allocation) and carries a
/// code plus message otherwise. All fallible public APIs in this project
/// return `Status` or `Result<T>`.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with \p code and a descriptive \p message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "Code: message" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Outcome of a fallible operation returning a value of type `T`.
///
/// Holds either a value or an error `Status`. Access to the value when the
/// result holds an error is a programming bug and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. `status.ok()` is a bug.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value. Requires `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or \p fallback when this result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK status to the caller.
#define SMILER_RETURN_NOT_OK(expr)        \
  do {                                    \
    ::smiler::Status _st = (expr);        \
    if (!_st.ok()) return _st;            \
  } while (false)

/// Assigns `lhs` from a Result expression, propagating errors.
#define SMILER_ASSIGN_OR_RETURN(lhs, expr)       \
  auto SMILER_CONCAT_(_res_, __LINE__) = (expr); \
  if (!SMILER_CONCAT_(_res_, __LINE__).ok())     \
    return SMILER_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(SMILER_CONCAT_(_res_, __LINE__)).value()

#define SMILER_CONCAT_IMPL_(a, b) a##b
#define SMILER_CONCAT_(a, b) SMILER_CONCAT_IMPL_(a, b)

}  // namespace smiler

#endif  // SMILER_COMMON_STATUS_H_
