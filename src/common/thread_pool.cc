#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/trace.h"

namespace smiler {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

namespace {
thread_local bool t_in_worker = false;

// Level gauge of queued-but-unclaimed tasks, maintained with atomic
// deltas from every enqueue/dequeue site (Submit, ParallelFor helpers,
// WorkerLoop pops) so it stays truthful between ParallelFor calls — the
// old Set(tasks_.size()) in ParallelFor alone left Submit traffic
// invisible and the value stale once the helpers drained. The serve
// layer's adaptive batcher reads this as its congestion signal.
obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& g =
      obs::Registry::Global().GetGauge("threadpool.queue_depth");
  return g;
}

// High-water mark of the queue depth since process start (or Reset):
// catches transient convoys that a sampled level gauge misses.
obs::Gauge& QueueHighWaterGauge() {
  static obs::Gauge& g =
      obs::Registry::Global().GetGauge("threadpool.queue_depth_high_water");
  return g;
}

}  // namespace

bool ThreadPool::InWorker() { return t_in_worker; }

void ThreadPool::WorkerLoop(std::size_t worker_index) {
  t_in_worker = true;
  // Self-register with the trace collector so pool workers appear (with a
  // name) in exported traces even when spawned after tracing startup.
  obs::Tracer::Global().RegisterCurrentThread(
      "pool-worker-" + std::to_string(worker_index));
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    QueueDepthGauge().Add(-1.0);
    task();
  }
}

namespace {

// Shared between ParallelFor and its queued helper tasks; kept alive by
// shared_ptr so a helper that starts after the caller returned (all
// iterations were already claimed) still touches valid memory.
struct ForState {
  std::function<void(std::size_t)> fn;
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> remaining{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;

  void Run() {
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk);
      if (begin >= n) return;
      const std::size_t end = std::min(n, begin + chunk);
      for (std::size_t i = begin; i < end; ++i) fn(i);
      if (remaining.fetch_sub(end - begin) == end - begin) {
        std::lock_guard<std::mutex> lock(done_mu);
        done = true;
        done_cv.notify_one();
      }
    }
  }
};

}  // namespace

void ThreadPool::Submit(std::function<void()> task) {
  static obs::Counter& submitted =
      obs::Registry::Global().GetCounter("threadpool.submitted");
  // Propagate the submitter's request context (if any) across the thread
  // hop so the task's spans and stage time stay attributed to the request.
  if (auto ctx = obs::CurrentRequestContextShared()) {
    task = [ctx = std::move(ctx), inner = std::move(task)] {
      obs::RequestScope scope(ctx, /*owner=*/false);
      inner();
    };
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  QueueDepthGauge().Add(1.0);
  QueueHighWaterGauge().SetMax(QueueDepthGauge().value());
  submitted.Increment();
  cv_.notify_one();
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t num_workers = workers_.size();
  if (n == 1 || num_workers <= 1 || InWorker()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  obs::Registry& reg = obs::Registry::Global();
  static obs::Histogram& for_seconds =
      reg.GetHistogram("threadpool.parallel_for_seconds");
  static obs::Histogram& task_wait =
      reg.GetHistogram("threadpool.task_wait_seconds");
  WallTimer for_timer;

  auto state = std::make_shared<ForState>();
  state->fn = fn;
  state->n = n;
  // Dynamic chunking: workers repeatedly claim the next chunk so uneven
  // per-iteration costs (e.g. candidate verification) balance out.
  state->chunk = std::max<std::size_t>(1, n / (num_workers * 8));
  state->remaining.store(n);

  const std::size_t helpers = std::min(num_workers, n) - 1;
  const auto enqueued_at = std::chrono::steady_clock::now();
  // Helpers execute the caller's request on other threads: bind them to
  // the caller's context (non-owner) so their spans carry the trace id and
  // their work lands in the context's parallel-time counters. The calling
  // thread participates below under its own (possibly owner) binding.
  std::shared_ptr<obs::RequestContext> ctx =
      obs::CurrentRequestContextShared();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < helpers; ++i) {
      tasks_.push([state, enqueued_at, ctx] {
        obs::RequestScope scope(ctx, /*owner=*/false);
        // The span (not just the binding) is what makes the fan-out
        // visible in exported traces: without it a helper that only runs
        // span-free kernel blocks leaves no trace of having carried the
        // request.
        SMILER_TRACE_SPAN("threadpool.helper");
        task_wait.Observe(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - enqueued_at)
                              .count());
        state->Run();
      });
    }
  }
  QueueDepthGauge().Add(static_cast<double>(helpers));
  QueueHighWaterGauge().SetMax(QueueDepthGauge().value());
  cv_.notify_all();
  // The calling thread participates instead of idling.
  state->Run();
  std::unique_lock<std::mutex> lock(state->done_mu);
  state->done_cv.wait(lock, [&] { return state->done; });
  for_seconds.Observe(for_timer.ElapsedSeconds());
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool pool;
  return pool;
}

}  // namespace smiler
