#ifndef SMILER_COMMON_MATH_UTILS_H_
#define SMILER_COMMON_MATH_UTILS_H_

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace smiler {

/// Positive infinity shorthand used throughout DTW code.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// log(2*pi), used by Gaussian log densities.
inline constexpr double kLog2Pi = 1.8378770664093453;

/// \brief Log density of a normal distribution N(mean, var) at \p x.
/// \p var must be positive; callers clamp degenerate variances beforehand.
inline double GaussianLogDensity(double x, double mean, double var) {
  const double diff = x - mean;
  return -0.5 * (std::log(var) + diff * diff / var + kLog2Pi);
}

/// \brief Density of a normal distribution N(mean, var) at \p x.
inline double GaussianDensity(double x, double mean, double var) {
  return std::exp(GaussianLogDensity(x, mean, var));
}

/// \brief Squared distance between two scalars, the per-point cost used by
/// DTW and its lower bounds (consistently unsquare-rooted, UCR-style).
inline double SquaredDist(double a, double b) {
  const double d = a - b;
  return d * d;
}

/// \brief Mean of a vector. Returns 0 for an empty input.
inline double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

/// \brief Population variance of a vector. Returns 0 for inputs of size < 2.
inline double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

/// \brief True when |a - b| <= atol + rtol * |b|.
inline bool IsClose(double a, double b, double rtol = 1e-9,
                    double atol = 1e-12) {
  return std::fabs(a - b) <= atol + rtol * std::fabs(b);
}

}  // namespace smiler

#endif  // SMILER_COMMON_MATH_UTILS_H_
