#include "common/task_graph.h"

#include <algorithm>
#include <utility>

#include "chaos/fault.h"
#include "obs/trace.h"

namespace smiler {

TaskGraph::TaskGraph(Options options) {
  if (!options.gauge_prefix.empty()) {
    obs::Registry& reg = obs::Registry::Global();
    ready_gauge_ = &reg.GetGauge(options.gauge_prefix + ".ready_nodes");
    running_gauge_ = &reg.GetGauge(options.gauge_prefix + ".running_nodes");
    done_gauge_ = &reg.GetGauge(options.gauge_prefix + ".done_nodes");
  }
}

TaskGraph::NodeId TaskGraph::AddNode(std::string label,
                                     std::function<Status()> fn) {
  auto node = std::make_unique<Node>();
  node->label = std::move(label);
  node->fn = std::move(fn);
  node->future = node->promise.get_future().share();
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

Status TaskGraph::AddEdge(NodeId from, NodeId to) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    return Status::InvalidArgument("task graph edge references unknown node");
  }
  if (from == to) {
    return Status::InvalidArgument("task graph self-edge on node '" +
                                   nodes_[from]->label + "'");
  }
  std::vector<NodeId>& deps = nodes_[from]->dependents;
  if (std::find(deps.begin(), deps.end(), to) != deps.end()) {
    return Status::OK();  // duplicate edges are idempotent
  }
  deps.push_back(to);
  nodes_[to]->parents.push_back(from);
  ++nodes_[to]->num_deps;
  return Status::OK();
}

std::shared_future<Status> TaskGraph::Future(NodeId id) const {
  return nodes_[id]->future;
}

bool TaskGraph::HasCycle() const {
  // Kahn's algorithm over the static in-degrees: a DAG drains completely.
  std::vector<std::size_t> degree(nodes_.size());
  std::deque<NodeId> frontier;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    degree[id] = nodes_[id]->num_deps;
    if (degree[id] == 0) frontier.push_back(id);
  }
  std::size_t visited = 0;
  while (!frontier.empty()) {
    const NodeId id = frontier.front();
    frontier.pop_front();
    ++visited;
    for (NodeId dep : nodes_[id]->dependents) {
      if (--degree[dep] == 0) frontier.push_back(dep);
    }
  }
  return visited != nodes_.size();
}

void TaskGraph::PushReady(NodeId id) {
  ready_.push_back(id);
  if (ready_gauge_ != nullptr) ready_gauge_->Add(1.0);
  // Work-stealing-style refill: when more than one node is ready the
  // current drainers have surplus work, so enlist another pool helper (up
  // to the pool size). Helpers exit when the queue goes momentarily
  // empty; completions that fan out re-enlist them here.
  if (pool_ != nullptr && ready_.size() > 1 &&
      helpers_in_flight_ < max_helpers_) {
    ++helpers_in_flight_;
    pool_->Submit([this] {
      DrainReady();
      std::lock_guard<std::mutex> lock(mu_);
      --helpers_in_flight_;
      if (completed_ == nodes_.size() && helpers_in_flight_ == 0) {
        done_cv_.notify_all();
      }
    });
  }
}

void TaskGraph::ExecuteNode(NodeId id, std::unique_lock<std::mutex>& lock) {
  Node& node = *nodes_[id];
  if (running_gauge_ != nullptr) running_gauge_->Add(1.0);
  if (!node.poisoned && cancelled_) {
    node.poisoned = true;  // skip-slot: drains without executing fn
    node.result = Status::FailedPrecondition(
        "task graph cancelled before node '" + node.label + "' ran");
  }
  if (!node.poisoned) {
    lock.unlock();
    Status result = [&node] {
      SMILER_TRACE_SPAN("graph.node");
      return node.fn();
    }();
    lock.lock();
    node.result = std::move(result);
  }
  // Unlock the dependents. A failing (or poisoned/cancelled) parent
  // poisons them: each dependent adopts its first failed parent's Status
  // — scanned in node-id order for a deterministic verdict when several
  // parents failed — and drains through the queue as a skip-slot, so the
  // counting (and the conservation gauges) never special-case errors.
  for (NodeId dep_id : node.dependents) {
    Node& dep = *nodes_[dep_id];
    if (--dep.pending_deps == 0) {
      for (NodeId parent : dep.parents) {
        if (!nodes_[parent]->result.ok()) {
          dep.poisoned = true;
          dep.result = nodes_[parent]->result;
          break;
        }
      }
      PushReady(dep_id);
    }
  }
  node.promise.set_value(node.result);
  ++completed_;
  if (running_gauge_ != nullptr) running_gauge_->Add(-1.0);
  if (done_gauge_ != nullptr) done_gauge_->Add(1.0);
  if (completed_ == nodes_.size()) done_cv_.notify_all();
}

void TaskGraph::DrainReady() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!ready_.empty()) {
    NodeId id = ready_.front();
    ready_.pop_front();
    // Adversarial-schedule chaos point: a fired hit sends the claimed
    // node to the back of the queue and claims the next one instead — a
    // benign reordering (never a Status change), so scenario fingerprints
    // must stay bit-identical with this armed. The hit is consumed
    // BEFORE the queue-state check: one hit per claim, so the serial
    // chaos driver's hit sequence is a pure function of the node count.
    if (SMILER_FAULT_TRIGGERED("graph.node_defer") && !ready_.empty()) {
      ready_.push_back(id);
      id = ready_.front();
      ready_.pop_front();
    }
    if (ready_gauge_ != nullptr) ready_gauge_->Add(-1.0);
    ExecuteNode(id, lock);
  }
}

Status TaskGraph::Run(ThreadPool* pool) {
  if (ran_) {
    return Status::FailedPrecondition("task graph already ran");
  }
  ran_ = true;
  if (HasCycle()) {
    const Status cycle =
        Status::InvalidArgument("task graph contains a dependency cycle");
    for (auto& node : nodes_) node->promise.set_value(cycle);
    return cycle;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    pool_ = pool != nullptr ? pool : &ThreadPool::Default();
    // The caller thread is drainer #0; helpers top out at the pool size.
    max_helpers_ = static_cast<int>(pool_->size());
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      nodes_[id]->pending_deps = nodes_[id]->num_deps;
    }
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      if (nodes_[id]->num_deps == 0) PushReady(id);
    }
  }
  // The caller drains alongside the helpers (its executions run on the
  // request's owner thread, so stage scopes inside the closures
  // self-attribute), then waits out stragglers. Helpers must be fully
  // retired before returning: they capture `this`.
  DrainReady();
  std::unique_lock<std::mutex> lock(mu_);
  while (completed_ < nodes_.size() || helpers_in_flight_ > 0) {
    if (!ready_.empty()) {
      lock.unlock();
      DrainReady();
      lock.lock();
    }
    done_cv_.wait(lock, [this] {
      return !ready_.empty() ||
             (completed_ == nodes_.size() && helpers_in_flight_ == 0);
    });
  }
  // Settle the cumulative done gauge so all three executor gauges
  // conserve to 0 after every drain (the chaos runner's law).
  if (done_gauge_ != nullptr) {
    done_gauge_->Add(-static_cast<double>(completed_));
  }
  for (auto& node : nodes_) {
    if (!node->result.ok()) return node->result;
  }
  return Status::OK();
}

void TaskGraph::Cancel() {
  std::lock_guard<std::mutex> lock(mu_);
  cancelled_ = true;
}

}  // namespace smiler
