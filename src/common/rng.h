#ifndef SMILER_COMMON_RNG_H_
#define SMILER_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace smiler {

/// \brief Deterministic, fast pseudo random number generator
/// (xoshiro256++ seeded through SplitMix64).
///
/// All stochastic components of this project (synthetic data generators,
/// SGD shuffling, restart seeds) draw from this generator so that every
/// experiment is reproducible from a single integer seed.
class Rng {
 public:
  /// Constructs a generator from a 64-bit \p seed. Identical seeds yield
  /// identical streams on every platform.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 4-word state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      state_[i] = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) { return NextU64() % n; }

  /// Standard normal variate (Box–Muller; one value per call, cached pair).
  double Normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = Uniform();
    double u2 = Uniform();
    // Avoid log(0).
    if (u1 <= 1e-300) u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal variate with \p mean and \p stddev.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace smiler

#endif  // SMILER_COMMON_RNG_H_
