#ifndef SMILER_COMMON_THREAD_POOL_H_
#define SMILER_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace smiler {

/// \brief Fixed-size worker pool with a blocking ParallelFor.
///
/// Used by the simulated GPU device (`simgpu::Device`) to distribute thread
/// blocks over CPU cores, and by the benchmark harness for multi-sensor
/// fan-out. Tasks must not throw; exceptions escaping a task terminate.
class ThreadPool {
 public:
  /// Creates a pool with \p num_threads workers (0 = hardware concurrency).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Runs `fn(i)` for every i in [0, n), distributing chunks over workers,
  /// and blocks until all iterations completed. Safe to call with n == 0.
  /// Must not be called re-entrantly from inside a pool task.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Fire-and-forget task submission (serve-layer background work:
  /// checkpoint serialization, deferred IO). The task runs on some worker
  /// at an unspecified time; Submit never blocks on task execution and is
  /// safe to call concurrently with ParallelFor (both feed the same
  /// queue). Shutdown drains: every task submitted before the destructor
  /// runs is executed before the workers join. Submitting from inside a
  /// pool task is allowed (the task is simply enqueued).
  void Submit(std::function<void()> task);

  /// Returns the process-wide default pool (hardware concurrency workers).
  static ThreadPool& Default();

  /// True when the calling thread is a pool worker. Callers use this to
  /// avoid re-entrant ParallelFor (which would deadlock) by degrading to
  /// sequential execution.
  static bool InWorker();

 private:
  void WorkerLoop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace smiler

#endif  // SMILER_COMMON_THREAD_POOL_H_
