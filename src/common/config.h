#ifndef SMILER_COMMON_CONFIG_H_
#define SMILER_COMMON_CONFIG_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace smiler {

/// \brief System-wide configuration of a SMiLer deployment.
///
/// Defaults follow Table 2 of the paper: warping width rho = 8, window
/// length omega = 16, ELV = {32, 64, 96}, EKV = {8, 16, 32}.
struct SmilerConfig {
  /// Sakoe-Chiba warping width for every DTW computation.
  int rho = 8;
  /// Disjoint / sliding window length omega of the SMiLer index.
  int omega = 16;
  /// Ensemble Length Vector: candidate query segment lengths d (ascending).
  std::vector<int> elv = {32, 64, 96};
  /// Ensemble kNN Vector: candidate neighbor counts k (ascending).
  std::vector<int> ekv = {8, 16, 32};
  /// Prediction horizon h (steps ahead).
  int horizon = 1;

  /// Number of conjugate-gradient steps per online hyperparameter update
  /// during continuous prediction (Section 5.2.2 uses five).
  int online_cg_steps = 5;
  /// Number of conjugate-gradient steps for the initial (first query)
  /// hyperparameter optimization.
  int initial_cg_steps = 30;
  /// Warm-start GP hyperparameters from the previous step during
  /// continuous prediction (Section 5.2.2 "online training"). Disabling
  /// re-optimizes from the heuristic seed every step (ablation).
  bool gp_warm_start = true;

  /// Fits the ensemble's cells concurrently over the thread pool during
  /// the Prediction Step (Section 6.4.1: "the running time of SMiLer-GP
  /// can be further reduced by multithreading on multi-core
  /// architecture"). Deterministic: cells are independent.
  bool parallel_prediction = true;

  /// Enables the ensemble-of-predictors matrix (Section 3.2.2). When false
  /// a single (k, d) predictor is used (the paper's "SMiLerNE" ablation).
  bool use_ensemble = true;
  /// Enables self-adaptive weight updates (Section 5.1.1). When false the
  /// ensemble mixes with uniform fixed weights ("SMiLerNS" ablation).
  bool self_adaptive_weights = true;
  /// Enables the sleep & recovery strategy (Section 5.1.2).
  bool sleep_and_recovery = true;

  /// Largest ensemble segment length (= max(elv)); master query length.
  int MasterQueryLength() const {
    int m = 0;
    for (int d : elv) m = d > m ? d : m;
    return m;
  }
  /// Largest ensemble k (= max(ekv)).
  int MaxK() const {
    int m = 0;
    for (int k : ekv) m = k > m ? k : m;
    return m;
  }

  /// Validates internal consistency (omega > 0, rho >= 0, ascending ELV,
  /// every d >= omega, positive EKV entries, horizon >= 1).
  Status Validate() const {
    if (omega <= 0) return Status::InvalidArgument("omega must be positive");
    if (rho < 0) return Status::InvalidArgument("rho must be non-negative");
    if (horizon < 1) return Status::InvalidArgument("horizon must be >= 1");
    if (elv.empty()) return Status::InvalidArgument("ELV must be non-empty");
    if (ekv.empty()) return Status::InvalidArgument("EKV must be non-empty");
    for (std::size_t i = 0; i < elv.size(); ++i) {
      if (elv[i] < omega) {
        return Status::InvalidArgument(
            "every segment length in ELV must be >= omega");
      }
      if (i > 0 && elv[i] <= elv[i - 1]) {
        return Status::InvalidArgument("ELV must be strictly ascending");
      }
    }
    for (std::size_t i = 0; i < ekv.size(); ++i) {
      if (ekv[i] <= 0) return Status::InvalidArgument("EKV entries must be > 0");
      if (i > 0 && ekv[i] <= ekv[i - 1]) {
        return Status::InvalidArgument("EKV must be strictly ascending");
      }
    }
    return Status::OK();
  }
};

}  // namespace smiler

#endif  // SMILER_COMMON_CONFIG_H_
