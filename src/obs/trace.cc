#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/metrics.h"

namespace smiler {
namespace obs {

namespace {

// Per-thread span nesting level. Maintained even while tracing is
// disabled so depths stay correct across Start()/Stop() transitions...
// except that an inactive span records nothing, so only active spans
// increment it (an active child under an inactive parent would otherwise
// report a depth with no recorded parent).
thread_local std::int32_t t_depth = 0;

// Request trace id bound to this thread by obs::RequestScope (0 = none).
// Lives here rather than in request_trace.cc so ScopedSpan can stamp it
// without a cross-TU thread_local access on the hot path.
thread_local std::uint64_t t_trace_id = 0;

void ExportTraceAtExit() {
  const char* path = std::getenv("SMILER_TRACE");
  if (path != nullptr && path[0] != '\0') {
    Tracer::Global().WriteChromeTrace(path);
  }
}

std::size_t ClampCapacity(std::size_t spans) {
  return spans < 16 ? std::size_t{16} : spans;
}

}  // namespace

Tracer::Tracer() {
  if (const char* cap = std::getenv("SMILER_TRACE_BUFFER_SPANS")) {
    const long parsed = std::strtol(cap, nullptr, 10);
    if (parsed > 0) {
      buffer_capacity_.store(ClampCapacity(static_cast<std::size_t>(parsed)),
                             std::memory_order_relaxed);
    }
  }
  if (std::getenv("SMILER_TRACE") != nullptr) {
    enabled_.store(true, std::memory_order_relaxed);
    std::atexit(ExportTraceAtExit);
  }
}

Tracer& Tracer::Global() {
  // Leaked: spans may close during static destruction (pool teardown).
  static Tracer* global = new Tracer();
  return *global;
}

std::int64_t Tracer::NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t Tracer::CurrentTraceId() { return t_trace_id; }

std::uint64_t Tracer::ExchangeCurrentTraceId(std::uint64_t trace_id) {
  const std::uint64_t previous = t_trace_id;
  t_trace_id = trace_id;
  return previous;
}

Tracer::ThreadBuffer& Tracer::LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> local = [this] {
    auto buf = std::make_shared<ThreadBuffer>();
    buf->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    buf->capacity = ClampCapacity(buffer_capacity());
    std::lock_guard<std::mutex> lock(register_mu_);
    buffers_.push_back(buf);
    return buf;
  }();
  return *local;
}

void Tracer::RegisterCurrentThread(const std::string& name) {
  ThreadBuffer& buf = LocalBuffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.name = name;
}

void Tracer::Record(const SpanEvent& event) {
  ThreadBuffer& buf = LocalBuffer();
  SpanEvent e = event;
  e.tid = buf.tid;
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(buf.mu);
    if (buf.ring.size() < buf.capacity) {
      buf.ring.push_back(e);
    } else {
      // Ring full: overwrite the oldest span (tail exemplars want the
      // newest) and count the eviction.
      buf.ring[buf.head] = e;
      buf.head = (buf.head + 1) % buf.capacity;
      dropped = true;
    }
  }
  if (dropped) {
    static Counter& dropped_spans =
        Registry::Global().GetCounter("obs.trace.dropped_spans");
    dropped_spans.Increment();
  }
}

std::vector<SpanEvent> Tracer::Collect() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(register_mu_);
    buffers = buffers_;
  }
  std::vector<SpanEvent> all;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    // Unwind the ring: oldest entry sits at `head` once the ring wrapped.
    for (std::size_t i = 0; i < buf->ring.size(); ++i) {
      all.push_back(buf->ring[(buf->head + i) % buf->ring.size()]);
    }
  }
  std::sort(all.begin(), all.end(), [](const SpanEvent& a, const SpanEvent& b) {
    return a.tid != b.tid ? a.tid < b.tid : a.start_us < b.start_us;
  });
  return all;
}

void Tracer::Clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(register_mu_);
    buffers = buffers_;
  }
  const std::size_t capacity = ClampCapacity(buffer_capacity());
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    buf->ring.clear();
    buf->head = 0;
    buf->capacity = capacity;
  }
}

void Tracer::SetBufferCapacity(std::size_t spans) {
  buffer_capacity_.store(ClampCapacity(spans), std::memory_order_relaxed);
}

std::string Tracer::RenderChromeTrace(
    const std::unordered_set<std::uint64_t>* only_traces) const {
  const std::vector<SpanEvent> events = Collect();
  std::vector<std::pair<std::uint32_t, std::string>> names;
  {
    std::lock_guard<std::mutex> lock(register_mu_);
    for (const auto& buf : buffers_) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      if (!buf->name.empty()) names.emplace_back(buf->tid, buf->name);
    }
  }
  std::sort(names.begin(), names.end());
  std::ostringstream out;
  out << "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& [tid, name] : names) {
    out << (first ? "" : ",\n") << "{\"name\":\"thread_name\",\"ph\":\"M\","
        << "\"pid\":1,\"tid\":" << tid << ",\"args\":{\"name\":\"" << name
        << "\"}}";
    first = false;
  }
  for (const SpanEvent& e : events) {
    if (only_traces != nullptr && only_traces->count(e.trace_id) == 0) {
      continue;
    }
    out << (first ? "" : ",\n") << "{\"name\":\"" << e.name
        << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
        << ",\"ts\":" << e.start_us << ",\"dur\":" << e.duration_us;
    if (e.trace_id != 0) {
      out << ",\"args\":{\"trace\":" << e.trace_id << "}";
    }
    out << "}";
    first = false;
  }
  out << "\n]}\n";
  return out.str();
}

std::string Tracer::ToChromeTraceJson() const {
  return RenderChromeTrace(nullptr);
}

std::string Tracer::ToChromeTraceJsonFiltered(
    const std::unordered_set<std::uint64_t>& trace_ids) const {
  return RenderChromeTrace(&trace_ids);
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open trace destination '%s'\n",
                 path.c_str());
    return false;
  }
  const std::string text = ToChromeTraceJson();
  std::fputs(text.c_str(), f);
  std::fclose(f);
  return true;
}

ScopedSpan::ScopedSpan(const char* name) : name_(name) {
  if (!Tracer::Global().enabled()) return;
  active_ = true;
  ++t_depth;
  start_us_ = Tracer::NowMicros();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  SpanEvent e;
  e.name = name_;
  e.start_us = start_us_;
  e.duration_us = Tracer::NowMicros() - start_us_;
  e.trace_id = t_trace_id;
  e.depth = --t_depth;
  Tracer::Global().Record(e);
}

}  // namespace obs
}  // namespace smiler
