#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace smiler {
namespace obs {

namespace {

// Per-thread span nesting level. Maintained even while tracing is
// disabled so depths stay correct across Start()/Stop() transitions...
// except that an inactive span records nothing, so only active spans
// increment it (an active child under an inactive parent would otherwise
// report a depth with no recorded parent).
thread_local std::int32_t t_depth = 0;

void ExportTraceAtExit() {
  const char* path = std::getenv("SMILER_TRACE");
  if (path != nullptr && path[0] != '\0') {
    Tracer::Global().WriteChromeTrace(path);
  }
}

}  // namespace

Tracer::Tracer() {
  if (std::getenv("SMILER_TRACE") != nullptr) {
    enabled_.store(true, std::memory_order_relaxed);
    std::atexit(ExportTraceAtExit);
  }
}

Tracer& Tracer::Global() {
  // Leaked: spans may close during static destruction (pool teardown).
  static Tracer* global = new Tracer();
  return *global;
}

std::int64_t Tracer::NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Tracer::ThreadBuffer& Tracer::LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> local = [this] {
    auto buf = std::make_shared<ThreadBuffer>();
    buf->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(register_mu_);
    buffers_.push_back(buf);
    return buf;
  }();
  return *local;
}

void Tracer::Record(const SpanEvent& event) {
  ThreadBuffer& buf = LocalBuffer();
  SpanEvent e = event;
  e.tid = buf.tid;
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(e);
}

std::vector<SpanEvent> Tracer::Collect() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(register_mu_);
    buffers = buffers_;
  }
  std::vector<SpanEvent> all;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    all.insert(all.end(), buf->events.begin(), buf->events.end());
  }
  std::sort(all.begin(), all.end(), [](const SpanEvent& a, const SpanEvent& b) {
    return a.tid != b.tid ? a.tid < b.tid : a.start_us < b.start_us;
  });
  return all;
}

void Tracer::Clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(register_mu_);
    buffers = buffers_;
  }
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    buf->events.clear();
  }
}

std::string Tracer::ToChromeTraceJson() const {
  const std::vector<SpanEvent> events = Collect();
  std::ostringstream out;
  out << "{\"traceEvents\":[\n";
  bool first = true;
  for (const SpanEvent& e : events) {
    out << (first ? "" : ",\n") << "{\"name\":\"" << e.name
        << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
        << ",\"ts\":" << e.start_us << ",\"dur\":" << e.duration_us << "}";
    first = false;
  }
  out << "\n]}\n";
  return out.str();
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open trace destination '%s'\n",
                 path.c_str());
    return false;
  }
  const std::string text = ToChromeTraceJson();
  std::fputs(text.c_str(), f);
  std::fclose(f);
  return true;
}

ScopedSpan::ScopedSpan(const char* name) : name_(name) {
  if (!Tracer::Global().enabled()) return;
  active_ = true;
  ++t_depth;
  start_us_ = Tracer::NowMicros();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  SpanEvent e;
  e.name = name_;
  e.start_us = start_us_;
  e.duration_us = Tracer::NowMicros() - start_us_;
  e.depth = --t_depth;
  Tracer::Global().Record(e);
}

}  // namespace obs
}  // namespace smiler
