#ifndef SMILER_OBS_STATS_SERVER_H_
#define SMILER_OBS_STATS_SERVER_H_

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

namespace smiler {
namespace obs {

/// \brief Process-wide component health, served at `/healthz`.
///
/// Components default to healthy-by-absence; subsystems flip themselves
/// (e.g. the chaos ScenarioRunner marks `serve.sensor<i>` unhealthy when
/// it quarantines the sensor). `/healthz` returns 200 while every
/// registered component is healthy and 503 otherwise.
class HealthRegistry {
 public:
  static HealthRegistry& Global();

  /// Sets \p component to \p healthy with a human-readable \p detail.
  void Set(const std::string& component, bool healthy, std::string detail);
  /// Removes \p component (back to healthy-by-absence).
  void Clear(const std::string& component);
  /// Removes every component (tests / scenario teardown).
  void Reset();

  /// True when no registered component is unhealthy.
  bool healthy() const;
  /// One line per component: "<name>: ok|UNHEALTHY <detail>".
  std::string Render() const;

 private:
  HealthRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::pair<bool, std::string>> components_;
};

/// \brief Minimal blocking text server for live snapshots of the obs
/// layer, bound to 127.0.0.1 only. Routes:
///
///   /metrics      Prometheus exposition of the metric registry
///   /healthz      200 "ok" | 503 + component lines (HealthRegistry)
///   /attribution  per-stage latency attribution table
///
/// One accept thread handles one connection at a time (a diagnostics
/// endpoint, not a data plane). Enabled either programmatically
/// (`Start(port)`; port 0 picks an ephemeral port) or via the
/// SMILER_STATS_PORT environment variable (`StartFromEnvOnce()`, called
/// by PredictionServer::Create and the bench mains).
class StatsServer {
 public:
  static StatsServer& Global();

  /// Binds 127.0.0.1:\p port (0 = ephemeral) and starts the accept
  /// thread. Returns the bound port, or -1 on failure / if already
  /// running (the running instance's port is then available via port()).
  int Start(int port);

  /// Stops the accept thread and closes the socket. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Bound port while running, else -1.
  int port() const { return port_.load(std::memory_order_acquire); }

  /// Starts the global server from SMILER_STATS_PORT if set. Safe to call
  /// from multiple entry points; only the first call can start it.
  static void StartFromEnvOnce();

  /// Loopback test client: one-shot GET of \p path against
  /// 127.0.0.1:\p port. Returns the raw HTTP response (status line +
  /// headers + body), or "" when the connection failed.
  static std::string Get(int port, const std::string& path);

  ~StatsServer();

 private:
  StatsServer() = default;
  void Serve();
  std::string HandleRequest(const std::string& path) const;

  mutable std::mutex mu_;  ///< serializes Start/Stop
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<int> port_{-1};
  int listen_fd_ = -1;
  std::thread thread_;
};

}  // namespace obs
}  // namespace smiler

#endif  // SMILER_OBS_STATS_SERVER_H_
