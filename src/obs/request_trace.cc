#include "obs/request_trace.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <unordered_set>
#include <utility>

namespace smiler {
namespace obs {

namespace {

constexpr const char* kStageNames[kNumStages] = {
    "queue_wait", "batch_form", "rehydrate", "lb_filter", "dtw_verify",
    "gram",       "cholesky",   "forecast",  "publish",
};

constexpr const char* kStageSpanNames[kNumStages] = {
    "stage.queue_wait", "stage.batch_form", "stage.rehydrate",
    "stage.lb_filter",  "stage.dtw_verify", "stage.gram",
    "stage.cholesky",   "stage.forecast",   "stage.publish",
};

std::atomic<std::uint64_t> g_next_trace_id{1};

// Thread-local request binding. The shared_ptr keeps the context alive on
// pool helpers even if the owning serve Request is destroyed first.
thread_local std::shared_ptr<RequestContext> t_ctx;
thread_local bool t_owner = false;

double Micros2Seconds(std::int64_t us) {
  return static_cast<double>(us) * 1e-6;
}

}  // namespace

const char* StageName(Stage stage) {
  return kStageNames[static_cast<int>(stage)];
}

const char* StageSpanName(Stage stage) {
  return kStageSpanNames[static_cast<int>(stage)];
}

RequestContext::RequestContext(std::uint64_t trace_id, int shard)
    : trace_id_(trace_id), shard_(shard), mint_us_(Tracer::NowMicros()) {}

std::shared_ptr<RequestContext> RequestContext::Mint(int shard) {
  const std::uint64_t id =
      g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
  return std::shared_ptr<RequestContext>(new RequestContext(id, shard));
}

void RequestContext::Credit(Stage stage, std::int64_t micros) {
  if (micros > 0) stage_us_[static_cast<int>(stage)] += micros;
}

void RequestContext::PushStage(Stage stage, std::int64_t now_us) {
  if (depth_ > 0) {
    // Pause the enclosing stage: accrue its time up to now so nested
    // stages tile exclusively instead of double counting.
    Credit(stack_[depth_ - 1], now_us - last_transition_us_);
  }
  if (depth_ < kMaxStageDepth) stack_[depth_] = stage;
  ++depth_;
  last_transition_us_ = now_us;
}

void RequestContext::PopStage(std::int64_t now_us) {
  if (depth_ <= 0) return;
  --depth_;
  if (depth_ < kMaxStageDepth) {
    Credit(stack_[depth_], now_us - last_transition_us_);
  }
  last_transition_us_ = now_us;
}

void RequestContext::AddParallel(Stage stage, std::int64_t micros) {
  if (micros > 0) {
    parallel_us_[static_cast<int>(stage)].fetch_add(
        micros, std::memory_order_relaxed);
  }
}

std::int64_t RequestContext::TotalOwnerMicros() const {
  std::int64_t total = 0;
  for (int s = 0; s < kNumStages; ++s) total += stage_us_[s];
  return total;
}

RequestContext* CurrentRequestContext() { return t_ctx.get(); }

std::shared_ptr<RequestContext> CurrentRequestContextShared() { return t_ctx; }

bool IsRequestOwnerThread() { return t_owner && t_ctx != nullptr; }

RequestScope::RequestScope(std::shared_ptr<RequestContext> ctx, bool owner) {
  if (ctx == nullptr) return;
  bound_ = true;
  prev_ctx_ = std::move(t_ctx);
  prev_owner_ = t_owner;
  prev_trace_id_ = Tracer::ExchangeCurrentTraceId(ctx->trace_id());
  t_ctx = std::move(ctx);
  t_owner = owner;
}

RequestScope::~RequestScope() {
  if (!bound_) return;
  t_ctx = std::move(prev_ctx_);
  t_owner = prev_owner_;
  Tracer::ExchangeCurrentTraceId(prev_trace_id_);
}

StageScope::StageScope(Stage stage)
    : span_(StageSpanName(stage)), stage_(stage) {
  ctx_ = t_ctx.get();
  if (ctx_ == nullptr) return;
  start_us_ = Tracer::NowMicros();
  if (t_owner) {
    owner_ = true;
    ctx_->PushStage(stage_, start_us_);
  }
}

StageScope::~StageScope() {
  if (ctx_ == nullptr) return;
  const std::int64_t now_us = Tracer::NowMicros();
  if (owner_) {
    ctx_->PopStage(now_us);
  } else {
    ctx_->AddParallel(stage_, now_us - start_us_);
  }
}

ExemplarReservoir& ExemplarReservoir::Global() {
  static ExemplarReservoir* global = new ExemplarReservoir();
  return *global;
}

namespace {
bool SlowerThan(const ExemplarReservoir::Exemplar& a,
                const ExemplarReservoir::Exemplar& b) {
  return a.e2e_seconds > b.e2e_seconds;
}
}  // namespace

void ExemplarReservoir::Offer(const RequestContext& ctx, double e2e_seconds) {
  // Fast path: reservoir full and this request does not beat the floor.
  const double floor = floor_.load(std::memory_order_relaxed);
  if (floor >= 0.0 && e2e_seconds <= floor) return;

  Exemplar ex;
  ex.trace_id = ctx.trace_id();
  ex.shard = ctx.shard();
  ex.e2e_seconds = e2e_seconds;
  for (int s = 0; s < kNumStages; ++s) {
    ex.stage_micros[static_cast<std::size_t>(s)] =
        ctx.owner_micros(static_cast<Stage>(s));
    ex.parallel_micros[static_cast<std::size_t>(s)] =
        ctx.parallel_micros(static_cast<Stage>(s));
  }

  std::lock_guard<std::mutex> lock(mu_);
  // heap_ is a min-heap on e2e (SlowerThan = greater-than comparator), so
  // the front is the fastest retained exemplar — the eviction candidate.
  if (heap_.size() < capacity_) {
    heap_.push_back(ex);
    std::push_heap(heap_.begin(), heap_.end(), SlowerThan);
  } else if (!heap_.empty() && e2e_seconds > heap_.front().e2e_seconds) {
    std::pop_heap(heap_.begin(), heap_.end(), SlowerThan);
    heap_.back() = ex;
    std::push_heap(heap_.begin(), heap_.end(), SlowerThan);
  }
  if (heap_.size() >= capacity_ && !heap_.empty()) {
    floor_.store(heap_.front().e2e_seconds, std::memory_order_relaxed);
  }
}

std::vector<ExemplarReservoir::Exemplar> ExemplarReservoir::Snapshot() const {
  std::vector<Exemplar> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = heap_;
  }
  std::sort(out.begin(), out.end(), SlowerThan);
  return out;
}

void ExemplarReservoir::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  heap_.clear();
  floor_.store(-1.0, std::memory_order_relaxed);
}

void ExemplarReservoir::SetCapacity(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = n < 1 ? 1 : n;
  while (heap_.size() > capacity_) {
    std::pop_heap(heap_.begin(), heap_.end(), SlowerThan);
    heap_.pop_back();
  }
  floor_.store(heap_.size() >= capacity_ && !heap_.empty()
                   ? heap_.front().e2e_seconds
                   : -1.0,
               std::memory_order_relaxed);
}

std::size_t ExemplarReservoir::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return heap_.size();
}

bool ExemplarReservoir::WriteChromeTrace(const std::string& path) const {
  std::unordered_set<std::uint64_t> ids;
  for (const Exemplar& ex : Snapshot()) ids.insert(ex.trace_id);
  const std::string text = Tracer::Global().ToChromeTraceJsonFiltered(ids);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open exemplar trace destination '%s'\n",
                 path.c_str());
    return false;
  }
  std::fputs(text.c_str(), f);
  std::fclose(f);
  return true;
}

void FinishRequest(const RequestContext& ctx, double e2e_seconds,
                   Gauge* const* shard_stage_gauges) {
  static Counter& completed =
      Registry::Global().GetCounter("obs.request.completed");
  static Histogram& unattributed =
      Registry::Global().GetHistogram("obs.request.unattributed_seconds");
  static Histogram* stage_hist[kNumStages] = {};
  static Gauge* parallel_gauge[kNumStages] = {};
  static const bool init = [] {
    for (int s = 0; s < kNumStages; ++s) {
      const std::string name = kStageNames[s];
      stage_hist[s] = &Registry::Global().GetHistogram(
          "obs.request.stage." + name + "_seconds");
      parallel_gauge[s] = &Registry::Global().GetGauge(
          "obs.request.parallel." + name + "_seconds_total");
    }
    return true;
  }();
  (void)init;

  for (int s = 0; s < kNumStages; ++s) {
    const std::int64_t owner_us = ctx.owner_micros(static_cast<Stage>(s));
    if (owner_us > 0) {
      const double seconds = Micros2Seconds(owner_us);
      stage_hist[s]->Observe(seconds);
      if (shard_stage_gauges != nullptr && shard_stage_gauges[s] != nullptr) {
        shard_stage_gauges[s]->Add(seconds);
      }
    }
    const std::int64_t par_us = ctx.parallel_micros(static_cast<Stage>(s));
    if (par_us > 0) parallel_gauge[s]->Add(Micros2Seconds(par_us));
  }
  const double attributed = Micros2Seconds(ctx.TotalOwnerMicros());
  unattributed.Observe(e2e_seconds > attributed ? e2e_seconds - attributed
                                                : 0.0);
  completed.Increment();
  ExemplarReservoir::Global().Offer(ctx, e2e_seconds);
}

std::string AttributionTableText() {
  Registry& reg = Registry::Global();
  std::ostringstream out;
  out << std::fixed;

  // --- Global per-stage table (owner-clock attribution).
  double total_seconds = 0.0;
  Histogram::Snapshot snaps[kNumStages];
  for (int s = 0; s < kNumStages; ++s) {
    snaps[s] = reg.GetHistogram(std::string("obs.request.stage.") +
                                kStageNames[s] + "_seconds")
                   .Snap();
    total_seconds += snaps[s].sum;
  }
  const Histogram::Snapshot unattr =
      reg.GetHistogram("obs.request.unattributed_seconds").Snap();
  total_seconds += unattr.sum;

  out << "# per-stage latency attribution (owner clock; share of "
      << std::setprecision(3) << total_seconds << "s attributed+slack)\n";
  out << "stage         requests     total_s    p50_us    p99_us   share\n";
  const auto row = [&](const char* name, const Histogram::Snapshot& s) {
    const double share = total_seconds > 0.0 ? s.sum / total_seconds : 0.0;
    out << std::left << std::setw(14) << name << std::right << std::setw(8)
        << s.count << std::setw(12) << std::setprecision(4) << s.sum
        << std::setw(10) << std::setprecision(0) << s.p50 * 1e6
        << std::setw(10) << s.p99 * 1e6 << std::setw(7)
        << std::setprecision(1) << share * 100.0 << "%\n";
  };
  for (int s = 0; s < kNumStages; ++s) row(kStageNames[s], snaps[s]);
  row("unattributed", unattr);

  // --- Per-shard stage-seconds breakdown (from the serve-layer gauges).
  std::vector<std::string> shard_lines;
  for (const std::string& name : reg.GaugeNames()) {
    if (name.rfind("serve.shard", 0) == 0 &&
        name.find(".stage.") != std::string::npos) {
      std::ostringstream line;
      line << name << " " << std::fixed << std::setprecision(6)
           << reg.GetGauge(name).value();
      shard_lines.push_back(line.str());
    }
  }
  if (!shard_lines.empty()) {
    out << "# per-shard stage seconds\n";
    for (const std::string& line : shard_lines) out << line << "\n";
  }
  return out.str();
}

}  // namespace obs
}  // namespace smiler
