#ifndef SMILER_OBS_OBS_H_
#define SMILER_OBS_OBS_H_

/// \file obs.h
/// \brief Umbrella header of the observability layer: the metrics registry
/// (counters / gauges / log-bucketed histograms with JSON + Prometheus
/// exposition) and scoped tracing spans with a Chrome trace_event
/// exporter. See docs/observability.md for the metric catalog, the span
/// naming convention, and the environment switches (SMILER_METRICS,
/// SMILER_TRACE).

#include "obs/metrics.h"
#include "obs/trace.h"

#endif  // SMILER_OBS_OBS_H_
