#ifndef SMILER_OBS_OBS_H_
#define SMILER_OBS_OBS_H_

/// \file obs.h
/// \brief Umbrella header of the observability layer: the metrics registry
/// (counters / gauges / log-bucketed histograms with JSON + Prometheus
/// exposition), scoped tracing spans with a Chrome trace_event exporter,
/// request-scoped trace contexts with per-stage latency attribution and
/// tail exemplars, and the live stats endpoint (/metrics, /healthz,
/// /attribution). See docs/observability.md for the metric catalog, the
/// span naming convention, and the environment switches (SMILER_METRICS,
/// SMILER_TRACE, SMILER_TRACE_BUFFER_SPANS, SMILER_STATS_PORT).

#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/stats_server.h"
#include "obs/trace.h"

#endif  // SMILER_OBS_OBS_H_
