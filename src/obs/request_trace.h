#ifndef SMILER_OBS_REQUEST_TRACE_H_
#define SMILER_OBS_REQUEST_TRACE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace smiler {
namespace obs {

/// \brief Fixed stage taxonomy that tiles a serve request end to end.
///
/// Every microsecond between Enqueue and the response promise being
/// fulfilled is attributed to exactly one stage (on the request's owner
/// thread; see RequestContext), so per-stage totals sum to end-to-end
/// latency up to scope-boundary slack. The order below is pipeline order.
enum class Stage : int {
  kQueueWait = 0,  ///< minted → claimed by a shard worker's batch drain
  kBatchForm,      ///< batch claimed → this request's turn in the batch
  kRehydrate,      ///< tiered-store pin IO: cold engine state → resident
  kLbFilter,       ///< LB_kim / group lower bounds, seeding, pruning
  kDtwVerify,      ///< exact DTW verification (device launches + select)
  kGram,           ///< covariance / Gram matrix construction
  kCholesky,       ///< Cholesky factorization + triangular solves
  kForecast,       ///< remaining engine time (GP predict, AR update, ...)
  kPublish,        ///< response bookkeeping + promise fulfilment
};

inline constexpr int kNumStages = 9;

/// Stage names in enum order ("queue_wait", ..., "publish"); used in
/// metric names (`obs.request.stage.<name>_seconds`), per-shard gauges
/// (`serve.shard<i>.stage.<name>_seconds_total`), and the attribution
/// table.
const char* StageName(Stage stage);
/// Static span name for a stage ("stage.queue_wait", ...).
const char* StageSpanName(Stage stage);

/// \brief Per-request attribution state, minted at admission and carried
/// through the shard queue and every thread the request touches.
///
/// Threading model: one thread at a time is the request's *owner* (bound
/// with `RequestScope(ctx, /*owner=*/true)` — the shard worker that
/// processes the request). Only the owner drives the exclusive stage
/// clock: nested StageScopes pause the enclosing stage, so owner stage
/// times tile without double counting and sum to end-to-end latency.
/// Non-owner threads (thread-pool helpers executing the request's
/// fan-out; bound automatically by ThreadPool with owner=false) never
/// touch the stage clock — they tag their spans with the trace id and
/// accumulate into the separate `parallel_micros` counters, which measure
/// CPU-time amplification and may legitimately exceed wall time.
class RequestContext {
 public:
  static constexpr int kMaxStageDepth = 8;

  /// Mints a context with a fresh process-unique trace id (never 0).
  /// \p shard is the owning shard index (-1 if unsharded).
  static std::shared_ptr<RequestContext> Mint(int shard = -1);

  std::uint64_t trace_id() const { return trace_id_; }
  int shard() const { return shard_; }
  /// Tracer::NowMicros() at mint time (queue_wait starts here).
  std::int64_t mint_us() const { return mint_us_; }

  /// Directly credits \p micros to \p stage on the owner clock. Used for
  /// intervals that cannot be a scope because they span threads
  /// (queue_wait: mint on the caller, claim on the shard worker — the
  /// queue mutex orders the hand-off). Negative credits clamp to 0.
  void Credit(Stage stage, std::int64_t micros);

  /// Owner stage stack (called by StageScope on the owner thread only).
  void PushStage(Stage stage, std::int64_t now_us);
  void PopStage(std::int64_t now_us);

  /// Non-owner accumulation (atomic; any thread).
  void AddParallel(Stage stage, std::int64_t micros);

  std::int64_t owner_micros(Stage stage) const {
    return stage_us_[static_cast<int>(stage)];
  }
  std::int64_t parallel_micros(Stage stage) const {
    return parallel_us_[static_cast<int>(stage)].load(
        std::memory_order_relaxed);
  }
  /// Sum of the owner clock across all stages.
  std::int64_t TotalOwnerMicros() const;

  RequestContext(const RequestContext&) = delete;
  RequestContext& operator=(const RequestContext&) = delete;

 private:
  RequestContext(std::uint64_t trace_id, int shard);

  const std::uint64_t trace_id_;
  const int shard_;
  const std::int64_t mint_us_;
  // Owner clock: only the owner thread reads/writes (hand-offs between
  // the minting thread and the shard worker are ordered by the queue
  // mutex), so no atomics needed.
  std::int64_t stage_us_[kNumStages] = {};
  Stage stack_[kMaxStageDepth] = {};
  int depth_ = 0;
  std::int64_t last_transition_us_ = 0;
  std::atomic<std::int64_t> parallel_us_[kNumStages] = {};
};

/// The context bound to the calling thread (nullptr when none).
RequestContext* CurrentRequestContext();
/// Shared handle to the bound context — what ThreadPool captures at task
/// submission to propagate the request across the fan-out.
std::shared_ptr<RequestContext> CurrentRequestContextShared();
/// True when the calling thread is the bound context's owner.
bool IsRequestOwnerThread();

/// \brief RAII binding of a RequestContext (and its trace id) to the
/// calling thread. Nests: the previous binding is restored on
/// destruction. A null \p ctx is a no-op scope.
class RequestScope {
 public:
  RequestScope(std::shared_ptr<RequestContext> ctx, bool owner);
  ~RequestScope();

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  std::shared_ptr<RequestContext> prev_ctx_;
  std::uint64_t prev_trace_id_ = 0;
  bool prev_owner_ = false;
  bool bound_ = false;
};

/// \brief RAII stage attribution + tracing span.
///
/// On the request's owner thread, enters \p stage on the exclusive stage
/// clock (pausing the enclosing stage). On non-owner threads carrying a
/// context, accumulates the elapsed time into the context's parallel
/// counters. Always emits a `stage.<name>` span when tracing is enabled.
/// With no bound context and tracing disabled the cost is two
/// thread-local reads.
class StageScope {
 public:
  explicit StageScope(Stage stage);
  ~StageScope();

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  ScopedSpan span_;  // declared first: closes after the stage clock stops
  RequestContext* ctx_ = nullptr;
  Stage stage_;
  std::int64_t start_us_ = 0;
  bool owner_ = false;
};

/// \brief Bounded reservoir of the slowest requests seen since the last
/// Clear(). Retains per-stage attribution plus the trace id, so the full
/// span trees of the retained requests can be exported as a browsable
/// Chrome/Perfetto trace (`--trace-exemplars <path>` in the bench mains).
class ExemplarReservoir {
 public:
  static constexpr std::size_t kDefaultCapacity = 32;

  struct Exemplar {
    std::uint64_t trace_id = 0;
    int shard = -1;
    double e2e_seconds = 0.0;
    std::array<std::int64_t, kNumStages> stage_micros = {};
    std::array<std::int64_t, kNumStages> parallel_micros = {};
  };

  static ExemplarReservoir& Global();

  /// Offers a finished request. Kept only if the reservoir has room or
  /// \p e2e_seconds beats the current slowest-set floor; the common fast
  /// path (reservoir full, request faster than the floor) is one relaxed
  /// atomic load, no lock.
  void Offer(const RequestContext& ctx, double e2e_seconds);

  /// Retained exemplars, slowest first.
  std::vector<Exemplar> Snapshot() const;

  void Clear();
  void SetCapacity(std::size_t n);
  std::size_t size() const;

  /// Writes the span trees of the retained trace ids as Chrome trace JSON
  /// (requires tracing to have been enabled during the run). Returns
  /// false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

 private:
  ExemplarReservoir() = default;

  mutable std::mutex mu_;
  std::vector<Exemplar> heap_;  ///< min-heap on e2e_seconds
  std::size_t capacity_ = kDefaultCapacity;
  /// Slowest-set floor when full; -1 while the reservoir has room.
  std::atomic<double> floor_{-1.0};
};

/// \brief Publishes a finished request's attribution: per-stage global
/// histograms (`obs.request.stage.<name>_seconds`, observed only for
/// stages the request touched), optional per-shard stage gauges
/// (\p shard_stage_gauges — kNumStages pointers or nullptr), the
/// `obs.request.unattributed_seconds` histogram (end-to-end minus the
/// owner-clock sum: scope-boundary slack + untiled gaps, the attribution
/// quality signal), `obs.request.completed`, parallel-time gauges, and an
/// ExemplarReservoir offer.
void FinishRequest(const RequestContext& ctx, double e2e_seconds,
                   Gauge* const* shard_stage_gauges);

/// \brief Human-readable attribution table rendered from the live
/// registry: per-stage count/total/p50/p99/share plus the per-shard
/// stage-seconds breakdown. Served at `/attribution` by StatsServer and
/// printed by bench_serve.
std::string AttributionTableText();

}  // namespace obs
}  // namespace smiler

#endif  // SMILER_OBS_REQUEST_TRACE_H_
