#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#if defined(__linux__)
#include <unistd.h>
#endif

namespace smiler {
namespace obs {

void Histogram::Observe(double v) {
  const int idx = BucketIndex(v);
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  // Min/max low- and high-water marks via CAS (min_ is seeded +inf so the
  // first observation always wins).
  double cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

int Histogram::BucketIndex(double v) {
  if (!(v > 0.0)) return 0;
  const double pos = (std::log2(v) - kMinExponent) * kSubBucketsPerOctave;
  const int idx = static_cast<int>(std::floor(pos));
  return std::clamp(idx, 0, kNumBuckets - 1);
}

double Histogram::BucketLowerBound(int i) {
  return std::exp2(kMinExponent +
                   static_cast<double>(i) / kSubBucketsPerOctave);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot s;
  std::uint64_t counts[kNumBuckets];
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += counts[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  s.min = min_.load(std::memory_order_relaxed);

  // Quantile q = geometric midpoint of the bucket holding the q-th
  // observation, clamped into [min, max] so singleton distributions
  // report exact quantiles.
  auto quantile = [&](double q) {
    const std::uint64_t rank = static_cast<std::uint64_t>(
        std::min<double>(static_cast<double>(s.count) - 1.0,
                         q * static_cast<double>(s.count)));
    std::uint64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      seen += counts[i];
      if (seen > rank) {
        const double lo = BucketLowerBound(i);
        const double hi = BucketLowerBound(i + 1);
        return std::clamp(std::sqrt(lo * hi), s.min, s.max);
      }
    }
    return s.max;
  };
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(kMinSeed, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

namespace {

void DumpGlobalAtExit() {
  const char* dest = std::getenv("SMILER_METRICS");
  if (dest != nullptr && dest[0] != '\0') {
    Registry::Global().Dump(dest);
  }
}

// Formats a double with enough precision to round-trip typical metric
// values while staying readable ("0.25", not "2.500000e-01").
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string PrometheusName(const std::string& name) {
  std::string out = "smiler_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

Registry& Registry::Global() {
  // Leaked singleton: instrumented code may run inside static destructors
  // (thread pool teardown), so the registry must never be destroyed. The
  // atexit dump hook is installed exactly once, here.
  static Registry* global = [] {
    auto* r = new Registry();
    if (std::getenv("SMILER_METRICS") != nullptr) {
      std::atexit(DumpGlobalAtExit);
    }
    return r;
  }();
  return *global;
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::string Registry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": " << FormatDouble(g->value());
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->Snap();
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": {"
        << "\"count\": " << s.count << ", \"sum\": " << FormatDouble(s.sum)
        << ", \"min\": " << FormatDouble(s.min)
        << ", \"max\": " << FormatDouble(s.max)
        << ", \"p50\": " << FormatDouble(s.p50)
        << ", \"p95\": " << FormatDouble(s.p95)
        << ", \"p99\": " << FormatDouble(s.p99) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

std::string Registry::ToPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    const std::string pn = PrometheusName(name);
    out << "# TYPE " << pn << " counter\n" << pn << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string pn = PrometheusName(name);
    out << "# TYPE " << pn << " gauge\n"
        << pn << " " << FormatDouble(g->value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->Snap();
    const std::string pn = PrometheusName(name);
    out << "# TYPE " << pn << " summary\n";
    out << pn << "{quantile=\"0.5\"} " << FormatDouble(s.p50) << "\n";
    out << pn << "{quantile=\"0.95\"} " << FormatDouble(s.p95) << "\n";
    out << pn << "{quantile=\"0.99\"} " << FormatDouble(s.p99) << "\n";
    out << pn << "_sum " << FormatDouble(s.sum) << "\n";
    out << pn << "_count " << s.count << "\n";
  }
  return out.str();
}

bool Registry::Dump(const std::string& destination) const {
  const std::string text = ToJson();
  if (destination == "stderr") {
    std::fputs(text.c_str(), stderr);
    return true;
  }
  if (destination == "stdout") {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(destination.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open metrics destination '%s'\n",
                 destination.c_str());
    return false;
  }
  std::fputs(text.c_str(), f);
  std::fclose(f);
  return true;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::vector<std::string> Registry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, c] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> Registry::GaugeNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) names.push_back(name);
  return names;
}

std::vector<std::string> Registry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) names.push_back(name);
  return names;
}

std::size_t ReadProcessRssBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  // statm fields are in pages: size resident shared text lib data dt.
  unsigned long long size_pages = 0, resident_pages = 0;
  const int matched = std::fscanf(f, "%llu %llu", &size_pages,
                                  &resident_pages);
  std::fclose(f);
  if (matched != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  return static_cast<std::size_t>(resident_pages) *
         static_cast<std::size_t>(page);
#else
  return 0;
#endif
}

std::size_t UpdateProcessRssGauge() {
  const std::size_t rss = ReadProcessRssBytes();
  if (rss > 0) {
    static Gauge& gauge = Registry::Global().GetGauge("process.rss_bytes");
    static Gauge& high_water =
        Registry::Global().GetGauge("process.rss_bytes_high_water");
    gauge.Set(static_cast<double>(rss));
    high_water.SetMax(static_cast<double>(rss));
  }
  return rss;
}

}  // namespace obs
}  // namespace smiler
