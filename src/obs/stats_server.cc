#include "obs/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <sstream>

#include "obs/metrics.h"
#include "obs/request_trace.h"

namespace smiler {
namespace obs {

namespace {

std::string HttpResponse(int code, const char* reason,
                         const std::string& body) {
  std::ostringstream out;
  out << "HTTP/1.0 " << code << " " << reason << "\r\n"
      << "Content-Type: text/plain; charset=utf-8\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

void SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

HealthRegistry& HealthRegistry::Global() {
  static HealthRegistry* global = new HealthRegistry();
  return *global;
}

void HealthRegistry::Set(const std::string& component, bool healthy,
                         std::string detail) {
  std::lock_guard<std::mutex> lock(mu_);
  components_[component] = {healthy, std::move(detail)};
}

void HealthRegistry::Clear(const std::string& component) {
  std::lock_guard<std::mutex> lock(mu_);
  components_.erase(component);
}

void HealthRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  components_.clear();
}

bool HealthRegistry::healthy() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, state] : components_) {
    if (!state.first) return false;
  }
  return true;
}

std::string HealthRegistry::Render() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, state] : components_) {
    out << name << ": " << (state.first ? "ok" : "UNHEALTHY");
    if (!state.second.empty()) out << " " << state.second;
    out << "\n";
  }
  return out.str();
}

StatsServer& StatsServer::Global() {
  static StatsServer* global = new StatsServer();
  return *global;
}

StatsServer::~StatsServer() { Stop(); }

int StatsServer::Start(int port) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_.load(std::memory_order_acquire)) return -1;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 8) != 0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return -1;
  }
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  port_.store(static_cast<int>(ntohs(addr.sin_port)),
              std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&StatsServer::Serve, this);
  return port_.load(std::memory_order_acquire);
}

void StatsServer::Stop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_.store(-1, std::memory_order_release);
  running_.store(false, std::memory_order_release);
}

void StatsServer::StartFromEnvOnce() {
  static const int ignored = [] {
    const char* port_env = std::getenv("SMILER_STATS_PORT");
    if (port_env == nullptr || port_env[0] == '\0') return 0;
    const long port = std::strtol(port_env, nullptr, 10);
    if (port < 0 || port > 65535) return 0;
    return Global().Start(static_cast<int>(port));
  }();
  (void)ignored;
}

std::string StatsServer::HandleRequest(const std::string& path) const {
  if (path == "/metrics") {
    return HttpResponse(200, "OK", Registry::Global().ToPrometheus());
  }
  if (path == "/healthz") {
    const bool ok = HealthRegistry::Global().healthy();
    std::string body = HealthRegistry::Global().Render();
    if (ok) body = "ok\n" + body;
    return ok ? HttpResponse(200, "OK", body)
              : HttpResponse(503, "Service Unavailable", body);
  }
  if (path == "/attribution") {
    return HttpResponse(200, "OK", AttributionTableText());
  }
  if (path == "/") {
    return HttpResponse(200, "OK", "/metrics\n/healthz\n/attribution\n");
  }
  return HttpResponse(404, "Not Found", "not found\n");
}

void StatsServer::Serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stop flag

    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;

    // A stalled client must not wedge the (single) accept thread.
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

    // Read the request head (we only need the request line).
    std::string head;
    char buf[1024];
    while (head.find("\r\n") == std::string::npos && head.size() < 8192) {
      const ssize_t n = ::recv(client, buf, sizeof(buf), 0);
      if (n <= 0) break;
      head.append(buf, static_cast<std::size_t>(n));
    }
    std::string path = "/";
    std::istringstream line(head.substr(0, head.find("\r\n")));
    std::string method;
    line >> method >> path;
    if (path.empty()) path = "/";
    // Strip any query string: routes take no parameters.
    if (const auto q = path.find('?'); q != std::string::npos) {
      path.resize(q);
    }
    SendAll(client, HandleRequest(path));
    ::close(client);
  }
}

std::string StatsServer::Get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  SendAll(fd, request);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

}  // namespace obs
}  // namespace smiler
