#ifndef SMILER_OBS_METRICS_H_
#define SMILER_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace smiler {
namespace obs {

/// \brief Monotonically increasing event count (e.g. kernel launches,
/// candidates verified). All operations are thread-safe and wait-free.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// \brief Last-value (or high-water) instrument for quantities that go up
/// and down: pruning ratio, queue depth, shared-memory peaks.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }

  /// Adds \p delta (may be negative) atomically. Used for level-style
  /// gauges maintained from concurrent producers, e.g. the serve-layer
  /// queue depths (+1 on admit, -1 on completion).
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  /// Raises the gauge to \p v if it is larger (high-water-mark semantics).
  void SetMax(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Log-bucketed latency/size histogram.
///
/// Buckets are geometric with 4 sub-buckets per octave (bucket width
/// ~ +19%), spanning [2^-30, 2^18) ~ [1 ns, 73 h] for values in seconds.
/// Observations are a handful of relaxed atomics, so instrumenting a hot
/// path costs nanoseconds; quantiles are estimated at snapshot time from
/// the bucket counts (error bounded by the bucket width).
class Histogram {
 public:
  static constexpr int kSubBucketsPerOctave = 4;
  static constexpr int kMinExponent = -30;
  static constexpr int kMaxExponent = 18;
  static constexpr int kNumBuckets =
      (kMaxExponent - kMinExponent) * kSubBucketsPerOctave;

  void Observe(double v);

  /// Point-in-time view of the distribution.
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  Snapshot Snap() const;

  void Reset();

  /// Lower edge of bucket \p i (exposed for tests).
  static double BucketLowerBound(int i);
  /// Bucket index that \p v falls into (exposed for tests).
  static int BucketIndex(double v);

 private:
  static constexpr double kMinSeed = 1.0e308;  // beats any real observation

  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{kMinSeed};
  std::atomic<double> max_{0.0};
};

/// \brief Process-wide, thread-safe registry of named instruments.
///
/// Instruments are created on first use and live forever; the references
/// returned are stable, so call sites cache them in a function-local
/// static and pay only the atomic update per event:
///
///   static obs::Counter& c =
///       obs::Registry::Global().GetCounter("index.candidates_total");
///   c.Increment(n);
///
/// Naming convention: lower-case, dot-separated `<subsystem>.<what>[_unit]`
/// (see docs/observability.md for the full catalog).
class Registry {
 public:
  /// The process-wide registry. On first use, if the SMILER_METRICS
  /// environment variable is set ("stderr", "stdout", or a file path), an
  /// atexit hook is installed that dumps the JSON exposition there when
  /// the process exits.
  static Registry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// JSON exposition: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;
  /// Prometheus text exposition (names sanitized: '.'/'-' -> '_', prefixed
  /// "smiler_"; histograms exported as summaries with p50/p95/p99).
  std::string ToPrometheus() const;

  /// Writes ToJson() to \p destination: "stderr", "stdout", or a path.
  /// Returns false when the file could not be opened.
  bool Dump(const std::string& destination) const;

  /// Zeroes every registered instrument (references stay valid). Tests and
  /// benchmark sections use this to isolate measurement windows.
  void ResetAll();

  /// Sorted names per instrument kind (exposition order; also for tests).
  std::vector<std::string> CounterNames() const;
  std::vector<std::string> GaugeNames() const;
  std::vector<std::string> HistogramNames() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Samples the process resident set size from /proc/self/statm, in bytes
/// (resident pages * page size). Returns 0 when the proc file is
/// unavailable (non-Linux) — callers treat 0 as "no sample", never as an
/// empty process.
std::size_t ReadProcessRssBytes();

/// Samples ReadProcessRssBytes() into the "process.rss_bytes" gauge (and
/// its high-water twin "process.rss_bytes_high_water") and returns the
/// sample. Bench mains call this around measurement sections so memory
/// capacity claims (docs/performance.md) rest on the OS's own accounting,
/// not on internal byte ledgers.
std::size_t UpdateProcessRssGauge();

}  // namespace obs
}  // namespace smiler

#endif  // SMILER_OBS_METRICS_H_
