#ifndef SMILER_OBS_TRACE_H_
#define SMILER_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

namespace smiler {
namespace obs {

/// \brief One completed span: a named interval on one thread. Durations
/// are microseconds on the steady clock; \p depth is the span-nesting
/// level on its thread (0 = top level), which lets tests reconstruct the
/// call tree without parent pointers. \p trace_id links the span to the
/// request that was active on the thread when the span closed (0 = no
/// request context), so one request's spans form one causally-linked
/// tree no matter how many threads executed them.
struct SpanEvent {
  const char* name = nullptr;  ///< static string (from SMILER_TRACE_SPAN)
  std::int64_t start_us = 0;
  std::int64_t duration_us = 0;
  std::uint64_t trace_id = 0;  ///< request-scoped trace id (0 = none)
  std::uint32_t tid = 0;       ///< small dense per-thread id
  std::int32_t depth = 0;
};

/// \brief Process-wide span collector.
///
/// Disabled by default: an inactive `ScopedSpan` costs one relaxed atomic
/// load. When enabled (explicitly or via the SMILER_TRACE=<path> env var,
/// which also installs an atexit exporter), completed spans are appended
/// to a per-thread ring buffer — threads never contend with each other on
/// the hot path; the per-buffer mutex is only taken against `Collect()`.
///
/// Span storage is bounded: each thread's buffer is a ring of
/// `buffer_capacity()` spans (SMILER_TRACE_BUFFER_SPANS env override).
/// When a ring is full the oldest span is overwritten — the newest spans
/// are what tail exemplars need — and `obs.trace.dropped_spans` counts
/// the evictions, so long soak runs cannot grow span storage without
/// limit.
class Tracer {
 public:
  /// Default per-thread ring capacity (spans).
  static constexpr std::size_t kDefaultBufferCapacity = 8192;

  static Tracer& Global();

  void Start() { enabled_.store(true, std::memory_order_relaxed); }
  void Stop() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Eagerly registers the calling thread with the collector under \p
  /// name (exported as Chrome `thread_name` metadata). Worker threads
  /// spawned after tracing startup — serve shard workers, pool workers —
  /// call this at thread start so they are present in the exported trace
  /// even before (or without ever) recording a span. Idempotent per
  /// thread; the last name wins.
  void RegisterCurrentThread(const std::string& name);

  /// Records a completed span (called by ScopedSpan; callers normally use
  /// the macro instead).
  void Record(const SpanEvent& event);

  /// Snapshots every thread's spans, sorted by (tid, start). Does not stop
  /// tracing or clear the buffers. Within one thread's buffer the spans
  /// are oldest-to-newest (ring order is unwound).
  std::vector<SpanEvent> Collect() const;

  /// Drops all recorded spans (thread registrations and names survive)
  /// and re-applies the current buffer capacity to every live buffer.
  void Clear();

  /// Per-thread ring capacity for buffers created (or Clear()ed) from now
  /// on. Minimum 16.
  void SetBufferCapacity(std::size_t spans);
  std::size_t buffer_capacity() const {
    return buffer_capacity_.load(std::memory_order_relaxed);
  }

  /// Renders the collected spans in the Chrome trace_event JSON array
  /// format (with `thread_name` metadata for registered threads and an
  /// `args.trace` field on request-scoped spans); load the file in
  /// about:tracing or https://ui.perfetto.dev.
  std::string ToChromeTraceJson() const;

  /// Like ToChromeTraceJson() but keeps only spans whose trace id is in
  /// \p trace_ids (thread metadata is kept for threads that contributed).
  /// Used by the tail-exemplar exporter.
  std::string ToChromeTraceJsonFiltered(
      const std::unordered_set<std::uint64_t>& trace_ids) const;

  /// Writes ToChromeTraceJson() to \p path. Returns false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

  /// Microseconds since the tracer's epoch (span timestamps use this).
  static std::int64_t NowMicros();

  /// The request trace id bound to the calling thread (0 = none). Set and
  /// restored by obs::RequestScope; every span closed on the thread while
  /// a binding is live carries it.
  static std::uint64_t CurrentTraceId();
  /// Rebinds the calling thread's trace id; returns the previous value so
  /// scopes can nest and restore.
  static std::uint64_t ExchangeCurrentTraceId(std::uint64_t trace_id);

 private:
  struct ThreadBuffer {
    mutable std::mutex mu;
    std::vector<SpanEvent> ring;  ///< grows lazily up to `capacity`
    std::size_t capacity = kDefaultBufferCapacity;
    std::size_t head = 0;  ///< next overwrite slot once the ring is full
    std::string name;      ///< Chrome thread_name metadata ("" = unnamed)
    std::uint32_t tid = 0;
  };

  Tracer();
  ThreadBuffer& LocalBuffer();
  std::string RenderChromeTrace(
      const std::unordered_set<std::uint64_t>* only_traces) const;

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> buffer_capacity_{kDefaultBufferCapacity};
  mutable std::mutex register_mu_;
  // shared_ptr keeps buffers alive after their owning thread exits.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::atomic<std::uint32_t> next_tid_{0};
};

/// \brief RAII span: records [construction, destruction) on the calling
/// thread when tracing is enabled. \p name must outlive the tracer
/// (string literals only).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::int64_t start_us_ = 0;
  bool active_ = false;
};

#define SMILER_TRACE_CONCAT_IMPL_(a, b) a##b
#define SMILER_TRACE_CONCAT_(a, b) SMILER_TRACE_CONCAT_IMPL_(a, b)

/// Opens a scoped tracing span covering the rest of the enclosing block:
///   SMILER_TRACE_SPAN("search.lower_bound");
#define SMILER_TRACE_SPAN(name)                                      \
  ::smiler::obs::ScopedSpan SMILER_TRACE_CONCAT_(smiler_trace_span_, \
                                                 __LINE__)(name)

}  // namespace obs
}  // namespace smiler

#endif  // SMILER_OBS_TRACE_H_
