#ifndef SMILER_OBS_TRACE_H_
#define SMILER_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace smiler {
namespace obs {

/// \brief One completed span: a named interval on one thread. Durations
/// are microseconds on the steady clock; \p depth is the span-nesting
/// level on its thread (0 = top level), which lets tests reconstruct the
/// call tree without parent pointers.
struct SpanEvent {
  const char* name = nullptr;  ///< static string (from SMILER_TRACE_SPAN)
  std::int64_t start_us = 0;
  std::int64_t duration_us = 0;
  std::uint32_t tid = 0;  ///< small dense per-thread id
  std::int32_t depth = 0;
};

/// \brief Process-wide span collector.
///
/// Disabled by default: an inactive `ScopedSpan` costs one relaxed atomic
/// load. When enabled (explicitly or via the SMILER_TRACE=<path> env var,
/// which also installs an atexit exporter), completed spans are appended
/// to a per-thread buffer — threads never contend with each other on the
/// hot path; the per-buffer mutex is only taken against `Collect()`.
class Tracer {
 public:
  static Tracer& Global();

  void Start() { enabled_.store(true, std::memory_order_relaxed); }
  void Stop() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records a completed span (called by ScopedSpan; callers normally use
  /// the macro instead).
  void Record(const SpanEvent& event);

  /// Snapshots every thread's spans, sorted by (tid, start). Does not stop
  /// tracing or clear the buffers.
  std::vector<SpanEvent> Collect() const;

  /// Drops all recorded spans.
  void Clear();

  /// Renders the collected spans in the Chrome trace_event JSON array
  /// format; load the file in about:tracing or https://ui.perfetto.dev.
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to \p path. Returns false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

  /// Microseconds since the tracer's epoch (span timestamps use this).
  static std::int64_t NowMicros();

 private:
  struct ThreadBuffer {
    mutable std::mutex mu;
    std::vector<SpanEvent> events;
    std::uint32_t tid = 0;
  };

  Tracer();
  ThreadBuffer& LocalBuffer();

  std::atomic<bool> enabled_{false};
  mutable std::mutex register_mu_;
  // shared_ptr keeps buffers alive after their owning thread exits.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::atomic<std::uint32_t> next_tid_{0};
};

/// \brief RAII span: records [construction, destruction) on the calling
/// thread when tracing is enabled. \p name must outlive the tracer
/// (string literals only).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::int64_t start_us_ = 0;
  bool active_ = false;
};

#define SMILER_TRACE_CONCAT_IMPL_(a, b) a##b
#define SMILER_TRACE_CONCAT_(a, b) SMILER_TRACE_CONCAT_IMPL_(a, b)

/// Opens a scoped tracing span covering the rest of the enclosing block:
///   SMILER_TRACE_SPAN("search.lower_bound");
#define SMILER_TRACE_SPAN(name)                                      \
  ::smiler::obs::ScopedSpan SMILER_TRACE_CONCAT_(smiler_trace_span_, \
                                                 __LINE__)(name)

}  // namespace obs
}  // namespace smiler

#endif  // SMILER_OBS_TRACE_H_
