// Parameterized robustness sweeps over the baseline models: every
// competitor must stay finite and sane across datasets (including the
// heavily quantized MALL-like feeds that once destabilized the recursive
// sparse-GP updates) and across its own capacity knob.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "baselines/lazy_knn.h"
#include "baselines/nys_svr.h"
#include "baselines/psgp.h"
#include "baselines/registry.h"
#include "baselines/vlgp.h"
#include "core/metrics.h"
#include "ts/datasets.h"

namespace smiler {
namespace baselines {
namespace {

// Runs Train / Predict / Observe for `steps` and checks every prediction
// is finite with positive variance; returns the MAE.
double RunAndCheckFinite(BaselineModel* model, const std::vector<double>& all,
                         int warmup, int steps, int d, int h) {
  EXPECT_TRUE(
      model
          ->Train(std::vector<double>(all.begin(), all.begin() + warmup), d,
                  h)
          .ok())
      << model->name();
  core::MetricAccumulator acc;
  for (int step = 0; step < steps; ++step) {
    auto pred = model->Predict();
    EXPECT_TRUE(pred.ok()) << model->name();
    if (!pred.ok()) return acc.Mae();
    EXPECT_TRUE(std::isfinite(pred->mean)) << model->name() << " @" << step;
    EXPECT_TRUE(std::isfinite(pred->variance)) << model->name();
    EXPECT_GT(pred->variance, 0.0) << model->name();
    acc.Add(all[warmup + step + h - 1], *pred);
    EXPECT_TRUE(model->Observe(all[warmup + step]).ok());
  }
  return acc.Mae();
}

class AllBaselinesOnAllDatasets
    : public ::testing::TestWithParam<
          std::tuple<std::string, ts::DatasetKind>> {};

TEST_P(AllBaselinesOnAllDatasets, FiniteAndBeatsMarginal) {
  const auto& [name, kind] = GetParam();
  auto data = ts::MakeDataset({kind, 1, 4000, 64, 51, true});
  ASSERT_TRUE(data.ok());
  const std::vector<double>& all = (*data)[0].values();
  simgpu::Device device;
  auto model = MakeBaseline(name, &device, 64);
  ASSERT_NE(model, nullptr);
  const double mae =
      RunAndCheckFinite(model.get(), all, 4000 - 40, 40, 32, 1);
  // Every competitor must at least beat the 0-predictor's MAE (~0.8) on
  // z-normalized data.
  EXPECT_LT(mae, 0.85) << name;
}

std::vector<std::tuple<std::string, ts::DatasetKind>> AllCombos() {
  std::vector<std::tuple<std::string, ts::DatasetKind>> combos;
  for (auto group : {BaselineGroup::kOffline, BaselineGroup::kOnline}) {
    for (const auto& name : BaselineNames(group)) {
      for (auto kind : {ts::DatasetKind::kRoad, ts::DatasetKind::kMall,
                        ts::DatasetKind::kNet}) {
        combos.emplace_back(name, kind);
      }
    }
  }
  return combos;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllBaselinesOnAllDatasets, ::testing::ValuesIn(AllCombos()),
    [](const ::testing::TestParamInfo<
        std::tuple<std::string, ts::DatasetKind>>& info) {
      return std::get<0>(info.param) + "_" +
             ts::DatasetKindName(std::get<1>(info.param));
    });

// Regression: exact-duplicate (quantized, saturated) windows previously
// drove the PSGP recursion to NaN via the degenerate LOO hyperparameters.
TEST(PsgpRobustnessTest, QuantizedSaturatedSeriesStaysFinite) {
  std::vector<double> all(6000);
  for (std::size_t i = 0; i < all.size(); ++i) {
    const int tod = static_cast<int>(i % 96);
    all[i] = (tod < 48) ? 100.0 : std::round(100.0 - tod * 0.8);
  }
  ts::ZNormalize(&all);
  PsgpModel psgp;
  const double mae = RunAndCheckFinite(&psgp, all, 5900, 60, 64, 1);
  EXPECT_LT(mae, 0.5);
}

class PsgpBudgetSweep : public ::testing::TestWithParam<int> {};

TEST_P(PsgpBudgetSweep, RespectsBudgetOnEveryDataset) {
  const int budget = GetParam();
  for (auto kind : {ts::DatasetKind::kRoad, ts::DatasetKind::kMall}) {
    auto data = ts::MakeDataset({kind, 1, 3000, 64, 53, true});
    ASSERT_TRUE(data.ok());
    PsgpModel::Options options;
    options.active_points = budget;
    options.max_pairs = 600;
    PsgpModel psgp(options);
    ASSERT_TRUE(psgp.Train((*data)[0].values(), 32, 1).ok());
    EXPECT_LE(psgp.num_basis(), budget);
    auto pred = psgp.Predict();
    ASSERT_TRUE(pred.ok());
    EXPECT_TRUE(std::isfinite(pred->mean));
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, PsgpBudgetSweep,
                         ::testing::Values(2, 4, 16, 64, 256));

class VlgpInducingSweep : public ::testing::TestWithParam<int> {};

TEST_P(VlgpInducingSweep, TrainsAcrossInducingCounts) {
  auto data =
      ts::MakeDataset({ts::DatasetKind::kNet, 1, 3000, 64, 55, true});
  ASSERT_TRUE(data.ok());
  VlgpModel::Options options;
  options.inducing_points = GetParam();
  options.max_pairs = 500;
  VlgpModel model(options);
  ASSERT_TRUE(model.Train((*data)[0].values(), 32, 1).ok());
  EXPECT_TRUE(std::isfinite(model.elbo()));
  auto pred = model.Predict();
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(std::isfinite(pred->mean));
  EXPECT_GT(pred->variance, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Counts, VlgpInducingSweep,
                         ::testing::Values(2, 8, 32, 128));

class NysRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(NysRankSweep, TrainsAcrossRanks) {
  auto data =
      ts::MakeDataset({ts::DatasetKind::kMall, 1, 3000, 64, 57, true});
  ASSERT_TRUE(data.ok());
  NysSvrModel::Options options;
  options.rank = GetParam();
  options.max_pairs = 500;
  NysSvrModel model(options);
  ASSERT_TRUE(model.Train((*data)[0].values(), 32, 1).ok());
  auto pred = model.Predict();
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(std::isfinite(pred->mean));
}

INSTANTIATE_TEST_SUITE_P(Ranks, NysRankSweep,
                         ::testing::Values(4, 16, 64, 256));

class LazyKnnSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LazyKnnSweep, WorksAcrossKAndD) {
  const auto [k, d] = GetParam();
  auto data =
      ts::MakeDataset({ts::DatasetKind::kMall, 1, 3000, 64, 59, true});
  ASSERT_TRUE(data.ok());
  simgpu::Device device;
  LazyKnnModel model(&device, k, d, /*rho=*/4, /*omega=*/8);
  const double mae =
      RunAndCheckFinite(&model, (*data)[0].values(), 2950, 30, d, 1);
  EXPECT_LT(mae, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Grid, LazyKnnSweep,
                         ::testing::Combine(::testing::Values(2, 8, 32),
                                            ::testing::Values(16, 64)));

}  // namespace
}  // namespace baselines
}  // namespace smiler
