#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "baselines/holt_winters.h"
#include "baselines/lazy_knn.h"
#include "baselines/linear_sgd.h"
#include "baselines/nys_svr.h"
#include "baselines/psgp.h"
#include "baselines/registry.h"
#include "baselines/vlgp.h"
#include "common/rng.h"
#include "core/metrics.h"
#include "gp/gp_regressor.h"
#include "ts/datasets.h"

namespace smiler {
namespace baselines {
namespace {

// A clean sinusoid: every competent model should predict it well.
std::vector<double> Sinusoid(int n, int period, double noise, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (int i = 0; i < n; ++i) {
    v[i] = std::sin(2 * M_PI * i / period) + noise * rng.Normal();
  }
  return v;
}

// Runs the Train / Predict / Observe protocol over a held-out tail and
// returns the MAE.
double EvaluateModel(BaselineModel* model, const std::vector<double>& all,
                     int warmup, int steps, int d, int h) {
  std::vector<double> history(all.begin(), all.begin() + warmup);
  EXPECT_TRUE(model->Train(history, d, h).ok()) << model->name();
  core::MetricAccumulator acc;
  for (int step = 0; step < steps; ++step) {
    auto pred = model->Predict();
    EXPECT_TRUE(pred.ok()) << model->name();
    if (pred.ok()) acc.Add(all[warmup + step + h - 1], *pred);
    EXPECT_TRUE(model->Observe(all[warmup + step]).ok());
  }
  return acc.Mae();
}

// ------------------------------------------------------------ WindowDataset

TEST(WindowDatasetTest, ExtractsPairs) {
  std::vector<double> series;
  for (int i = 0; i < 10; ++i) series.push_back(i);
  WindowDataset data = MakeWindowDataset(series, /*d=*/3, /*h=*/2, 100);
  // Valid starts: 0..5 (t + d - 1 + h <= 9).
  ASSERT_EQ(data.y.size(), 6u);
  EXPECT_DOUBLE_EQ(data.x(0, 0), 0);
  EXPECT_DOUBLE_EQ(data.y[0], 4);  // series[0+3-1+2]
  EXPECT_DOUBLE_EQ(data.y[5], 9);
}

TEST(WindowDatasetTest, SubsamplesWithStride) {
  std::vector<double> series(1000, 0.0);
  WindowDataset data = MakeWindowDataset(series, 4, 1, 10);
  EXPECT_EQ(data.y.size(), 10u);
}

TEST(WindowDatasetTest, EmptyWhenTooShort) {
  std::vector<double> series(3, 0.0);
  EXPECT_TRUE(MakeWindowDataset(series, 4, 1, 10).y.empty());
  EXPECT_TRUE(MakeWindowDataset(series, 2, 1, 0).y.empty());
}

// ------------------------------------------------------------- linear SGD

TEST(LinearSgdTest, LearnsLinearFunction) {
  // y = 2 * x_last: trivially learnable by a linear model.
  Rng rng(200);
  std::vector<double> series(3000);
  for (int i = 0; i < 3000; ++i) series[i] = std::sin(0.05 * i);
  auto model = MakeSgdSvr();
  ASSERT_TRUE(model->Train(series, /*d=*/8, /*h=*/1).ok());
  auto pred = model->Predict();
  ASSERT_TRUE(pred.ok());
  // Next value of the slow sinusoid is close to the last one.
  EXPECT_NEAR(pred->mean, std::sin(0.05 * 3000), 0.2);
}

TEST(LinearSgdTest, AllFourVariantsTrainAndPredict) {
  std::vector<double> all = Sinusoid(2500, 50, 0.05, 4);
  for (auto make : {MakeSgdSvr, MakeSgdRr, MakeOnlineSvr, MakeOnlineRr}) {
    auto model = make();
    const double mae = EvaluateModel(model.get(), all, 2000, 100, 16, 1);
    EXPECT_LT(mae, 0.4) << model->name();
  }
}

TEST(LinearSgdTest, OnlineVariantAdapts) {
  // Regime change after training: the online model must track it better
  // than the frozen offline one.
  std::vector<double> all = Sinusoid(4000, 50, 0.02, 5);
  for (int i = 2000; i < 4000; ++i) all[i] += 1.5;  // level shift
  auto offline = MakeSgdSvr();
  auto online = MakeOnlineSvr();
  const double mae_off = EvaluateModel(offline.get(), all, 2000, 600, 16, 1);
  const double mae_on = EvaluateModel(online.get(), all, 2000, 600, 16, 1);
  EXPECT_LT(mae_on, mae_off);
}

TEST(LinearSgdTest, RejectsBadTrainArgs) {
  auto model = MakeSgdSvr();
  EXPECT_FALSE(model->Train({1, 2, 3}, 8, 1).ok());  // too short
  EXPECT_FALSE(model->Train(std::vector<double>(100, 0.0), 0, 1).ok());
  EXPECT_FALSE(model->Train(std::vector<double>(100, 0.0), 8, 0).ok());
  EXPECT_FALSE(model->Predict().ok());  // untrained
}

// ------------------------------------------------------------ Holt-Winters

TEST(HoltWintersTest, FitsPureSeasonalSeries) {
  const int period = 24;
  std::vector<double> data = Sinusoid(period * 20, period, 0.0, 6);
  auto fit = FitHoltWinters(data, period);
  ASSERT_TRUE(fit.ok());
  // One-step forecasts of a clean seasonal series are near-perfect.
  for (int h = 1; h <= period; ++h) {
    const double truth =
        std::sin(2 * M_PI * (data.size() + h - 1) / period);
    EXPECT_NEAR(fit->Forecast(h), truth, 0.15) << "h=" << h;
  }
}

TEST(HoltWintersTest, VarianceGrowsWithHorizon) {
  const int period = 24;
  std::vector<double> data = Sinusoid(period * 15, period, 0.1, 7);
  auto fit = FitHoltWinters(data, period);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit->ForecastVariance(1), fit->ForecastVariance(10));
}

TEST(HoltWintersTest, CapturesTrend) {
  const int period = 12;
  std::vector<double> data(period * 20);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 0.01 * i + std::sin(2 * M_PI * i / period);
  }
  auto fit = FitHoltWinters(data, period);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit->trend, 0.003);
}

TEST(HoltWintersTest, RejectsShortData) {
  EXPECT_FALSE(FitHoltWinters(std::vector<double>(20, 0.0), 16).ok());
  EXPECT_FALSE(FitHoltWinters(std::vector<double>(100, 0.0), 1).ok());
}

TEST(HoltWintersTest, FullAndSegModelsPredictSeasonalData) {
  const int period = 32;
  std::vector<double> all = Sinusoid(period * 40, period, 0.05, 8);
  auto full = MakeFullHw(period);
  auto seg = MakeSegHw(period);
  EXPECT_LT(EvaluateModel(full.get(), all, period * 30, 50, 16, 1), 0.3);
  EXPECT_LT(EvaluateModel(seg.get(), all, period * 30, 50, 16, 1), 0.3);
}

// ----------------------------------------------------------------- LazyKNN

TEST(LazyKnnTest, PredictsSeasonalSeries) {
  simgpu::Device device;
  std::vector<double> all = Sinusoid(3000, 64, 0.05, 9);
  LazyKnnModel model(&device, /*k=*/8, /*d=*/32, /*rho=*/4, /*omega=*/8);
  const double mae = EvaluateModel(&model, all, 2500, 60, 32, 1);
  EXPECT_LT(mae, 0.2);
}

TEST(LazyKnnTest, RequiresTraining) {
  simgpu::Device device;
  LazyKnnModel model(&device);
  EXPECT_FALSE(model.Predict().ok());
  EXPECT_FALSE(model.Observe(1.0).ok());
}

// -------------------------------------------------------------------- PSGP

TEST(PsgpTest, MatchesExactGpWithUnlimitedBudget) {
  // With budget >= n and full updates, the online posterior equals the
  // exact GP posterior (Csató-Opper is exact until projection/deletion).
  Rng rng(201);
  const int n = 20;
  const int d = 3;
  la::Matrix x(n, d);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    for (int p = 0; p < d; ++p) x(i, p) = rng.Normal();
    y[i] = std::sin(x(i, 0)) + 0.1 * rng.Normal();
  }
  // Build a series whose window dataset reproduces (x, y) is awkward;
  // instead drive ProcessPoint indirectly: construct a PSGP on a synthetic
  // series and compare PredictAt against an exact GP with the same kernel.
  // Here we test on a series-based pipeline for end-to-end behaviour.
  std::vector<double> all = Sinusoid(1200, 40, 0.05, 10);
  PsgpModel::Options options;
  options.active_points = 1000;  // effectively unlimited
  options.max_pairs = 60;
  PsgpModel psgp(options);
  std::vector<double> history(all.begin(), all.begin() + 1000);
  ASSERT_TRUE(psgp.Train(history, 8, 1).ok());
  // Exact GP on the same pairs with the same-ish kernel family.
  WindowDataset data = MakeWindowDataset(history, 8, 1, 60);
  auto exact = gp::GpRegressor::Fit(
      data.x, data.y, gp::SeKernel::Heuristic(data.x, data.y));
  ASSERT_TRUE(exact.ok());
  // Prediction quality: both track the sinusoid closely.
  auto pred = psgp.Predict();
  ASSERT_TRUE(pred.ok());
  const double truth = all[1000];
  EXPECT_NEAR(pred->mean, truth, 0.3);
  EXPECT_GT(pred->variance, 0.0);
}

TEST(PsgpTest, RespectsActivePointBudget) {
  std::vector<double> all = Sinusoid(2000, 48, 0.05, 11);
  PsgpModel::Options options;
  options.active_points = 16;
  options.max_pairs = 500;
  PsgpModel psgp(options);
  ASSERT_TRUE(
      psgp.Train(std::vector<double>(all.begin(), all.begin() + 1500), 12, 1)
          .ok());
  EXPECT_LE(psgp.num_basis(), 16);
  EXPECT_GE(psgp.num_basis(), 4);
  const double mae = [&] {
    core::MetricAccumulator acc;
    for (int step = 0; step < 50; ++step) {
      auto p = psgp.Predict();
      EXPECT_TRUE(p.ok());
      acc.Add(all[1500 + step], *p);
      EXPECT_TRUE(psgp.Observe(all[1500 + step]).ok());
    }
    return acc.Mae();
  }();
  EXPECT_LT(mae, 0.5);
}

TEST(PsgpTest, MoreActivePointsHelp) {
  // The Fig 13 trade-off: accuracy improves (or holds) with the budget.
  std::vector<double> all = Sinusoid(2500, 48, 0.1, 12);
  double mae_small = 0.0;
  double mae_large = 0.0;
  for (int budget : {4, 64}) {
    PsgpModel::Options options;
    options.active_points = budget;
    options.max_pairs = 800;
    PsgpModel psgp(options);
    const double mae = EvaluateModel(&psgp, all, 2000, 80, 12, 1);
    if (budget == 4) {
      mae_small = mae;
    } else {
      mae_large = mae;
    }
  }
  EXPECT_LT(mae_large, mae_small + 0.05);
}

// -------------------------------------------------------------------- VLGP

TEST(VlgpTest, TrainsAndPredictsSeasonalData) {
  std::vector<double> all = Sinusoid(2500, 48, 0.05, 13);
  VlgpModel model;
  const double mae = EvaluateModel(&model, all, 2000, 80, 16, 1);
  EXPECT_LT(mae, 0.3);
  EXPECT_TRUE(std::isfinite(model.elbo()));
}

TEST(VlgpTest, ElboSelectsReasonableNoise) {
  // On nearly noise-free data the ELBO must not pick the largest noise.
  std::vector<double> all = Sinusoid(2200, 40, 0.01, 14);
  VlgpModel model;
  ASSERT_TRUE(
      model.Train(std::vector<double>(all.begin(), all.begin() + 2000), 12, 1)
          .ok());
  auto pred = model.Predict();
  ASSERT_TRUE(pred.ok());
  EXPECT_NEAR(pred->mean, all[2000], 0.25);
}

// ------------------------------------------------------------------ NysSVR

TEST(NysSvrTest, TrainsAndPredicts) {
  std::vector<double> all = Sinusoid(2500, 48, 0.05, 15);
  NysSvrModel::Options options;
  options.rank = 64;
  NysSvrModel model(options);
  const double mae = EvaluateModel(&model, all, 2000, 80, 16, 1);
  EXPECT_LT(mae, 0.3);
}

TEST(NysSvrTest, FeatureMapReproducesNystromKernel) {
  // phi(a) . phi(b) must equal k_a^T K_mm^{-1} k_b; spot-check via two
  // landmark-coincident inputs where the Nystrom kernel is exact.
  std::vector<double> all = Sinusoid(1500, 32, 0.0, 16);
  NysSvrModel::Options options;
  options.rank = 32;
  NysSvrModel model(options);
  ASSERT_TRUE(
      model.Train(std::vector<double>(all.begin(), all.begin() + 1400), 8, 1)
          .ok());
  auto pred = model.PredictAt(all.data() + 1392);
  EXPECT_TRUE(std::isfinite(pred.mean));
  EXPECT_GT(pred.variance, 0.0);
}

// ---------------------------------------------------------------- registry

TEST(RegistryTest, CreatesEveryCompetitor) {
  simgpu::Device device;
  for (auto group : {BaselineGroup::kOffline, BaselineGroup::kOnline}) {
    for (const std::string& name : BaselineNames(group)) {
      auto model = MakeBaseline(name, &device, 64);
      ASSERT_NE(model, nullptr) << name;
      EXPECT_EQ(model->name(), name);
    }
  }
  EXPECT_EQ(MakeBaseline("NoSuchModel", &device, 64), nullptr);
}

TEST(RegistryTest, GroupsHoldFiveEach) {
  EXPECT_EQ(BaselineNames(BaselineGroup::kOffline).size(), 5u);
  EXPECT_EQ(BaselineNames(BaselineGroup::kOnline).size(), 5u);
}

}  // namespace
}  // namespace baselines
}  // namespace smiler
