// Bitwise-equivalence suite for the task-graph predict pipeline (tier 1).
//
// The load-bearing claim: restructuring the serve predict path as a
// fleet-wide dataflow graph (rehydrate -> lb_filter -> dtw_verify ->
// [shared gram join] -> cholesky -> forecast) changes WHEN stages run —
// chains of different sensors interleave, store IO overlaps compute —
// but never WHAT they compute. Every prediction out of the graph
// executor must be bitwise-identical (EXPECT_EQ on the raw doubles) to a
// plain sequential `SensorEngine::Predict()` loop:
//
//  * on both execution backends (simulated grid and native CPU),
//  * cold (first predict) and warm (streamed steps with online updates),
//  * for both predictor kinds (GP with the shared gram join, AR with
//    linear chains),
//  * with the phase-barrier path (`use_task_graph = false`) as a third
//    pinned-equal competitor, and
//  * with a 1-byte-budget TieredStateStore attached, so every batch
//    spills and the graph's rehydrate leaf node fronts every chain.
//
// The executor's serve.graph.* conservation gauges must also settle back
// to their pre-traffic levels once the server drains.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/engine.h"
#include "core/manager.h"
#include "obs/metrics.h"
#include "predictors/ensemble.h"
#include "serve/server.h"
#include "simgpu/device.h"
#include "store/tiered_store.h"
#include "ts/datasets.h"

namespace smiler {
namespace {

using simgpu::BackendKind;

/// Small AR deployment geometry (fast; exercises chain topology).
SmilerConfig ArConfig() {
  SmilerConfig cfg;
  cfg.rho = 4;
  cfg.omega = 8;
  cfg.elv = {16, 24};
  cfg.ekv = {4, 8};
  cfg.horizon = 1;
  return cfg;
}

/// Small GP deployment geometry (exercises the shared gram join node).
SmilerConfig GpConfig() {
  SmilerConfig cfg;
  cfg.rho = 4;
  cfg.omega = 8;
  cfg.elv = {16, 24};
  cfg.ekv = {4, 8};
  cfg.initial_cg_steps = 10;
  cfg.online_cg_steps = 2;
  return cfg;
}

struct Fleet {
  std::vector<ts::TimeSeries> histories;
  std::vector<std::vector<double>> streams;
};

Fleet MakeFleet(int sensors, int history_points, int stream_points,
                std::uint64_t seed) {
  ts::DatasetSpec spec;
  spec.kind = ts::DatasetKind::kRoad;
  spec.num_sensors = sensors;
  spec.points_per_sensor = history_points + stream_points;
  spec.samples_per_day = 64;
  spec.seed = seed;
  auto data = ts::MakeDataset(spec);
  EXPECT_TRUE(data.ok()) << data.status().ToString();
  Fleet fleet;
  for (int s = 0; s < sensors; ++s) {
    const std::vector<double>& full = (*data)[s].values();
    fleet.histories.emplace_back(
        (*data)[s].sensor_id(),
        std::vector<double>(full.begin(), full.begin() + history_points));
    fleet.streams.emplace_back(full.begin() + history_points, full.end());
  }
  return fleet;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  // Segments from a previous run of the same test must not leak in.
  (void)std::system(("rm -rf '" + dir + "'").c_str());
  return dir;
}

/// Predictions indexed [sensor][step].
using PredictionTable = std::vector<std::vector<predictors::Prediction>>;

/// Serial ground truth: plain engines, no server, no store, no graph —
/// one monolithic Predict() then Observe() per sensor per step.
void SequentialReference(BackendKind backend, const Fleet& fleet,
                         const SmilerConfig& cfg, core::PredictorKind kind,
                         int steps, PredictionTable* out) {
  simgpu::Device device(6ULL << 30, 64ULL << 10, nullptr, backend);
  auto control =
      core::MultiSensorManager::Create(&device, fleet.histories, cfg, kind);
  ASSERT_TRUE(control.ok()) << control.status().ToString();
  const int sensors = static_cast<int>(fleet.histories.size());
  out->assign(sensors, {});
  for (int s = 0; s < sensors; ++s) {
    for (int step = 0; step < steps; ++step) {
      auto pred = control->engine(s).Predict();
      ASSERT_TRUE(pred.ok()) << pred.status().ToString();
      (*out)[s].push_back(*pred);
      ASSERT_TRUE(control->engine(s).Observe(fleet.streams[s][step]).ok());
    }
  }
}

/// Drives a PredictionServer through the same schedule with per-step
/// bursts (all sensors' AsyncPredicts in flight at once, one shard), so
/// multi-sensor micro-batches — and with them the fleet-wide graph with
/// its shared gram join — actually form. Lone-claimed requests take the
/// solo graph chain instead; either way the values must match.
void ServeThroughServer(BackendKind backend, const Fleet& fleet,
                        const SmilerConfig& cfg, core::PredictorKind kind,
                        int steps, bool use_task_graph,
                        const std::string& store_dir, PredictionTable* out) {
  simgpu::Device device(6ULL << 30, 64ULL << 10, nullptr, backend);
  auto manager =
      core::MultiSensorManager::Create(&device, fleet.histories, cfg, kind);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();

  // Outlives the server (which holds a raw pointer to it).
  std::unique_ptr<store::TieredStateStore> store;

  serve::ServerOptions options;
  options.num_shards = 1;  // all sensors on one shard -> one batch former
  options.queue_capacity = 64;
  options.use_task_graph = use_task_graph;
  auto server_or =
      serve::PredictionServer::Create(std::move(*manager), options);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  serve::PredictionServer& server = **server_or;

  if (!store_dir.empty()) {
    store::StoreOptions store_options;
    store_options.dir = store_dir;
    // 1 byte: every batch end spills all sensors, so every subsequent
    // chain starts from the graph's rehydrate leaf node.
    store_options.budget_bytes = 1;
    auto store_or = store::TieredStateStore::Create(store_options);
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    store = std::move(*store_or);
    ASSERT_TRUE(server.AttachStore(store.get()).ok());
  }

  const int sensors = static_cast<int>(fleet.histories.size());
  out->assign(sensors, {});
  for (int step = 0; step < steps; ++step) {
    std::vector<std::future<serve::Response>> burst;
    for (int s = 0; s < sensors; ++s) {
      burst.push_back(server.AsyncPredict(s, serve::kNoDeadline));
    }
    for (int s = 0; s < sensors; ++s) {
      serve::Response response = burst[s].get();
      ASSERT_TRUE(response.status.ok())
          << "step " << step << " sensor " << s << ": "
          << response.status.ToString();
      (*out)[s].push_back(response.prediction);
    }
    for (int s = 0; s < sensors; ++s) {
      serve::Response obs =
          server.AsyncObserve(s, fleet.streams[s][step], serve::kNoDeadline)
              .get();
      ASSERT_TRUE(obs.status.ok())
          << "step " << step << " sensor " << s << ": "
          << obs.status.ToString();
    }
  }
  server.Shutdown();
  if (store != nullptr) {
    // The rehydrate path was actually on: nothing survives batch end.
    EXPECT_EQ(store->resident_bytes(), 0u);
  }
}

void ExpectBitwiseEqual(const PredictionTable& got, const PredictionTable& want,
                        const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t s = 0; s < got.size(); ++s) {
    ASSERT_EQ(got[s].size(), want[s].size()) << context << " sensor " << s;
    for (std::size_t step = 0; step < got[s].size(); ++step) {
      // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the contract is bitwise.
      EXPECT_EQ(got[s][step].mean, want[s][step].mean)
          << context << " sensor " << s << " step " << step;
      EXPECT_EQ(got[s][step].variance, want[s][step].variance)
          << context << " sensor " << s << " step " << step;
    }
  }
}

class TaskGraphEquivalenceTest : public ::testing::TestWithParam<BackendKind> {
};

TEST_P(TaskGraphEquivalenceTest, GpFleetGraphMatchesSequentialPredict) {
  const BackendKind backend = GetParam();
  constexpr int kSensors = 3;
  constexpr int kSteps = 6;
  Fleet fleet = MakeFleet(kSensors, 694, kSteps, 2015);

  PredictionTable want;
  SequentialReference(backend, fleet, GpConfig(), core::PredictorKind::kGp,
                      kSteps, &want);
  if (HasFatalFailure()) return;

  obs::Registry& reg = obs::Registry::Global();
  const double ready0 = reg.GetGauge("serve.graph.ready_nodes").value();
  const double running0 = reg.GetGauge("serve.graph.running_nodes").value();
  const double done0 = reg.GetGauge("serve.graph.done_nodes").value();

  PredictionTable graph;
  ServeThroughServer(backend, fleet, GpConfig(), core::PredictorKind::kGp,
                     kSteps, /*use_task_graph=*/true, /*store_dir=*/"",
                     &graph);
  if (HasFatalFailure()) return;
  ExpectBitwiseEqual(graph, want, "graph vs sequential (gp)");

  // Conservation: ready/running/done all settled back after the drain.
  EXPECT_EQ(reg.GetGauge("serve.graph.ready_nodes").value(), ready0);
  EXPECT_EQ(reg.GetGauge("serve.graph.running_nodes").value(), running0);
  EXPECT_EQ(reg.GetGauge("serve.graph.done_nodes").value(), done0);

  // The phase-barrier baseline is the same function too (graph == barrier
  // == sequential, a strict three-way tie).
  PredictionTable barrier;
  ServeThroughServer(backend, fleet, GpConfig(), core::PredictorKind::kGp,
                     kSteps, /*use_task_graph=*/false, /*store_dir=*/"",
                     &barrier);
  if (HasFatalFailure()) return;
  ExpectBitwiseEqual(barrier, want, "barrier vs sequential (gp)");
}

TEST_P(TaskGraphEquivalenceTest,
       GpFleetGraphWithTinyBudgetStoreMatchesSequential) {
  const BackendKind backend = GetParam();
  constexpr int kSensors = 3;
  constexpr int kSteps = 6;
  Fleet fleet = MakeFleet(kSensors, 694, kSteps, 2015);

  PredictionTable want;
  SequentialReference(backend, fleet, GpConfig(), core::PredictorKind::kGp,
                      kSteps, &want);
  if (HasFatalFailure()) return;

  PredictionTable graph;
  ServeThroughServer(
      backend, fleet, GpConfig(), core::PredictorKind::kGp, kSteps,
      /*use_task_graph=*/true,
      FreshDir(std::string("task_graph_equiv_gp_") +
               simgpu::BackendKindName(backend)),
      &graph);
  if (HasFatalFailure()) return;
  ExpectBitwiseEqual(graph, want, "graph+tiered-store vs sequential (gp)");
}

TEST_P(TaskGraphEquivalenceTest,
       ArFleetGraphWithTinyBudgetStoreMatchesSequential) {
  const BackendKind backend = GetParam();
  constexpr int kSensors = 4;
  constexpr int kSteps = 10;
  Fleet fleet = MakeFleet(kSensors, 96, kSteps, 77);

  PredictionTable want;
  SequentialReference(backend, fleet, ArConfig(), core::PredictorKind::kAr,
                      kSteps, &want);
  if (HasFatalFailure()) return;

  PredictionTable graph;
  ServeThroughServer(
      backend, fleet, ArConfig(), core::PredictorKind::kAr, kSteps,
      /*use_task_graph=*/true,
      FreshDir(std::string("task_graph_equiv_ar_") +
               simgpu::BackendKindName(backend)),
      &graph);
  if (HasFatalFailure()) return;
  ExpectBitwiseEqual(graph, want, "graph+tiered-store vs sequential (ar)");

  PredictionTable barrier;
  ServeThroughServer(
      backend, fleet, ArConfig(), core::PredictorKind::kAr, kSteps,
      /*use_task_graph=*/false,
      FreshDir(std::string("task_graph_equiv_ar_barrier_") +
               simgpu::BackendKindName(backend)),
      &barrier);
  if (HasFatalFailure()) return;
  ExpectBitwiseEqual(barrier, want, "barrier+tiered-store vs sequential (ar)");
}

INSTANTIATE_TEST_SUITE_P(Backends, TaskGraphEquivalenceTest,
                         ::testing::Values(BackendKind::kSimGrid,
                                           BackendKind::kNative),
                         [](const auto& info) {
                           return std::string(
                               simgpu::BackendKindName(info.param));
                         });

}  // namespace
}  // namespace smiler
