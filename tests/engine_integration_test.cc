// End-to-end integration tests of the full SMiLer pipeline: datasets ->
// index -> ensemble -> continuous prediction, including the ablation
// configurations and the auto-tuning dynamics over longer runs.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/engine.h"
#include "core/manager.h"
#include "core/metrics.h"
#include "ts/datasets.h"

namespace smiler {
namespace core {
namespace {

struct RunResult {
  MetricAccumulator metrics;
  double final_variance_scale = 1.0;
};

RunResult RunContinuous(SensorEngine* engine, const std::vector<double>& all,
                        std::size_t warmup, int steps) {
  RunResult out;
  const int h = engine->config().horizon;
  for (int step = 0; step < steps; ++step) {
    auto pred = engine->Predict();
    EXPECT_TRUE(pred.ok());
    if (pred.ok()) out.metrics.Add(all[warmup + step + h - 1], *pred);
    EXPECT_TRUE(engine->Observe(all[warmup + step]).ok());
  }
  out.final_variance_scale = engine->ensemble().variance_scale();
  return out;
}

SmilerConfig FastConfig() {
  SmilerConfig cfg;
  cfg.rho = 4;
  cfg.omega = 8;
  cfg.elv = {16, 32};
  cfg.ekv = {4, 8};
  cfg.initial_cg_steps = 10;
  cfg.online_cg_steps = 2;
  return cfg;
}

class DatasetSweepTest : public ::testing::TestWithParam<ts::DatasetKind> {};

TEST_P(DatasetSweepTest, GpAndArBeatTheMarginalPredictor) {
  // On z-normalized data the "always predict 0 with variance 1" strawman
  // scores MAE ~ 0.8 and MNLPD ~ 1.42; the semi-lazy predictors must beat
  // it on every dataset.
  const ts::DatasetKind kind = GetParam();
  auto data = ts::MakeDataset({kind, 1, 3000, 64, 23, true});
  ASSERT_TRUE(data.ok());
  const std::vector<double>& all = (*data)[0].values();
  const std::size_t warmup = all.size() - 60;
  ts::TimeSeries history("s", std::vector<double>(all.begin(),
                                                  all.begin() + warmup));
  simgpu::Device device;
  // ROAD at this tiny scale (3000 points) has genuinely surprising
  // events, so only the point accuracy is held to the strict bound there;
  // the seasonal datasets must beat the marginal on both measures.
  const double mnlpd_bound = kind == ts::DatasetKind::kRoad ? 4.0 : 1.42;
  for (PredictorKind pk : {PredictorKind::kGp, PredictorKind::kAr}) {
    auto engine = SensorEngine::Create(&device, history, FastConfig(), pk);
    ASSERT_TRUE(engine.ok());
    RunResult r = RunContinuous(&*engine, all, warmup, 60);
    EXPECT_LT(r.metrics.Mae(), 0.8) << PredictorKindName(pk);
    EXPECT_LT(r.metrics.Mnlpd(), mnlpd_bound) << PredictorKindName(pk);
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, DatasetSweepTest,
                         ::testing::Values(ts::DatasetKind::kRoad,
                                           ts::DatasetKind::kMall,
                                           ts::DatasetKind::kNet));

TEST(EngineIntegrationTest, SleepAndRecoveryEngagesOnLongRuns) {
  // Over a long run with diverse cells, at least one weak cell should
  // sleep at some point (the paper's cost-saving mechanism).
  auto data = ts::MakeDataset({ts::DatasetKind::kRoad, 1, 3500, 64, 29, true});
  ASSERT_TRUE(data.ok());
  const std::vector<double>& all = (*data)[0].values();
  const std::size_t warmup = all.size() - 150;
  ts::TimeSeries history("s", std::vector<double>(all.begin(),
                                                  all.begin() + warmup));
  simgpu::Device device;
  SmilerConfig cfg = FastConfig();
  auto engine =
      SensorEngine::Create(&device, history, cfg, PredictorKind::kAr);
  ASSERT_TRUE(engine.ok());
  bool observed_sleep = false;
  for (int step = 0; step < 150; ++step) {
    ASSERT_TRUE(engine->Predict().ok());
    ASSERT_TRUE(engine->Observe(all[warmup + step]).ok());
    const auto& e = engine->ensemble();
    if (e.NumAwake() < e.rows() * e.cols()) observed_sleep = true;
  }
  EXPECT_TRUE(observed_sleep);
  // And the ensemble must never be fully asleep.
  EXPECT_GE(engine->ensemble().NumAwake(), 1);
}

TEST(EngineIntegrationTest, VarianceCalibrationReactsToSurprises) {
  // Feed the engine a constant history, then a sudden level shift: the
  // calibration factor must rise above 1.
  std::vector<double> all(600, 0.0);
  for (std::size_t i = 560; i < all.size(); ++i) all[i] = 4.0;
  ts::TimeSeries history("s",
                         std::vector<double>(all.begin(), all.begin() + 540));
  simgpu::Device device;
  auto engine = SensorEngine::Create(&device, history, FastConfig(),
                                     PredictorKind::kAr);
  ASSERT_TRUE(engine.ok());
  RunResult r = RunContinuous(&*engine, all, 540, 60);
  EXPECT_GT(r.final_variance_scale, 1.5);
}

TEST(EngineIntegrationTest, NsAblationKeepsUniformWeightsAndUnitScale) {
  auto data = ts::MakeDataset({ts::DatasetKind::kMall, 1, 2500, 64, 31, true});
  ASSERT_TRUE(data.ok());
  const std::vector<double>& all = (*data)[0].values();
  const std::size_t warmup = all.size() - 40;
  ts::TimeSeries history("s", std::vector<double>(all.begin(),
                                                  all.begin() + warmup));
  simgpu::Device device;
  SmilerConfig cfg = FastConfig();
  cfg.self_adaptive_weights = false;  // SMiLerNS
  auto engine =
      SensorEngine::Create(&device, history, cfg, PredictorKind::kAr);
  ASSERT_TRUE(engine.ok());
  RunResult r = RunContinuous(&*engine, all, warmup, 40);
  EXPECT_DOUBLE_EQ(r.final_variance_scale, 1.0);
  const auto& e = engine->ensemble();
  for (int i = 0; i < e.rows(); ++i) {
    for (int j = 0; j < e.cols(); ++j) {
      EXPECT_DOUBLE_EQ(e.Weight(i, j), 0.25);
    }
  }
}

TEST(EngineIntegrationTest, DeterministicAcrossIdenticalRuns) {
  // The whole pipeline is deterministic: two engines fed the same stream
  // produce bit-identical forecasts.
  auto data = ts::MakeDataset({ts::DatasetKind::kNet, 1, 2500, 64, 37, true});
  ASSERT_TRUE(data.ok());
  const std::vector<double>& all = (*data)[0].values();
  const std::size_t warmup = all.size() - 30;
  ts::TimeSeries history("s", std::vector<double>(all.begin(),
                                                  all.begin() + warmup));
  simgpu::Device device;
  auto a = SensorEngine::Create(&device, history, FastConfig(),
                                PredictorKind::kGp);
  auto b = SensorEngine::Create(&device, history, FastConfig(),
                                PredictorKind::kGp);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int step = 0; step < 30; ++step) {
    auto pa = a->Predict();
    auto pb = b->Predict();
    ASSERT_TRUE(pa.ok() && pb.ok());
    ASSERT_DOUBLE_EQ(pa->mean, pb->mean);
    ASSERT_DOUBLE_EQ(pa->variance, pb->variance);
    ASSERT_TRUE(a->Observe(all[warmup + step]).ok());
    ASSERT_TRUE(b->Observe(all[warmup + step]).ok());
  }
}

TEST(EngineIntegrationTest, ManagerMatchesStandaloneEngines) {
  // The multi-sensor manager is a pure fan-out: results equal running the
  // engines individually.
  auto data = ts::MakeDataset({ts::DatasetKind::kMall, 3, 2000, 64, 41, true});
  ASSERT_TRUE(data.ok());
  const std::size_t warmup = (*data)[0].size() - 10;
  std::vector<ts::TimeSeries> histories;
  for (const auto& s : *data) {
    histories.emplace_back(s.sensor_id(),
                           std::vector<double>(s.values().begin(),
                                               s.values().begin() + warmup));
  }
  simgpu::Device device;
  auto manager = MultiSensorManager::Create(&device, histories, FastConfig(),
                                            PredictorKind::kAr);
  ASSERT_TRUE(manager.ok());
  std::vector<SensorEngine> solo;
  for (const auto& h : histories) {
    auto e = SensorEngine::Create(&device, h, FastConfig(),
                                  PredictorKind::kAr);
    ASSERT_TRUE(e.ok());
    solo.push_back(std::move(*e));
  }
  for (int step = 0; step < 10; ++step) {
    std::vector<predictors::Prediction> preds;
    ASSERT_TRUE(manager->PredictAll(&preds).ok());
    std::vector<double> actuals;
    for (std::size_t s = 0; s < solo.size(); ++s) {
      auto p = solo[s].Predict();
      ASSERT_TRUE(p.ok());
      ASSERT_DOUBLE_EQ(preds[s].mean, p->mean);
      ASSERT_DOUBLE_EQ(preds[s].variance, p->variance);
      const double actual = (*data)[s].values()[warmup + step];
      actuals.push_back(actual);
      ASSERT_TRUE(solo[s].Observe(actual).ok());
    }
    ASSERT_TRUE(manager->ObserveAll(actuals).ok());
  }
}

TEST(EngineIntegrationTest, HorizonSweepDegradesGracefully) {
  // MAE must grow (weakly) with the horizon on seasonal data — a basic
  // sanity property of any forecaster.
  auto data = ts::MakeDataset({ts::DatasetKind::kMall, 1, 3000, 64, 43, true});
  ASSERT_TRUE(data.ok());
  const std::vector<double>& all = (*data)[0].values();
  simgpu::Device device;
  double mae_h1 = 0.0;
  double mae_h16 = 0.0;
  for (int h : {1, 16}) {
    SmilerConfig cfg = FastConfig();
    cfg.horizon = h;
    const std::size_t warmup = all.size() - 60 - h;
    ts::TimeSeries history("s", std::vector<double>(all.begin(),
                                                    all.begin() + warmup));
    auto engine =
        SensorEngine::Create(&device, history, cfg, PredictorKind::kAr);
    ASSERT_TRUE(engine.ok());
    RunResult r = RunContinuous(&*engine, all, warmup, 60);
    (h == 1 ? mae_h1 : mae_h16) = r.metrics.Mae();
  }
  EXPECT_LE(mae_h1, mae_h16 + 0.05);
}

}  // namespace
}  // namespace core
}  // namespace smiler
