// Backend-selection and cross-backend equivalence suite. Two halves:
//
//  1. Selection semantics: SMILER_BACKEND parsing, the simgpu default,
//     and the no-silent-fallback contract — an unknown value must fail
//     every Launch with kInvalidArgument instead of quietly running the
//     grid emulation.
//
//  2. Bitwise equivalence: every kernel migrated to the native backend
//     (window build, envelope append maintenance, group/direct lower
//     bounds, early-abandoned DTW verify, SE-kernel Gram) must produce
//     results bit-for-bit identical to the simulated grid — the same
//     standard index_equivalence_test holds the filter-and-verify cascade
//     to. Any lane reordering, fused contraction, or stale-threshold
//     arithmetic drift fails here.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "dtw/dtw.h"
#include "gp/kernel.h"
#include "index/kselect.h"
#include "index/smiler_index.h"
#include "la/matrix.h"
#include "obs/metrics.h"
#include "simgpu/backend.h"
#include "simgpu/device.h"
#include "ts/series.h"

namespace smiler {
namespace {

using simgpu::BackendKind;

/// Sets (or clears, when value is null) an environment variable for the
/// lifetime of a scope, restoring the previous state on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(BackendSelectionTest, ParseAcceptsCanonicalNames) {
  auto sim = simgpu::ParseBackendKind("simgpu");
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(*sim, BackendKind::kSimGrid);
  auto native = simgpu::ParseBackendKind("native");
  ASSERT_TRUE(native.ok());
  EXPECT_EQ(*native, BackendKind::kNative);
  EXPECT_STREQ(simgpu::BackendKindName(BackendKind::kSimGrid), "simgpu");
  EXPECT_STREQ(simgpu::BackendKindName(BackendKind::kNative), "native");
}

TEST(BackendSelectionTest, ParseRejectsUnknownValues) {
  for (const char* bad : {"cuda", "SIMGPU", "Native", "gpu", " native"}) {
    auto r = simgpu::ParseBackendKind(bad);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
    // The message must name the knob so the failure is actionable from a
    // service log alone.
    EXPECT_NE(r.status().message().find("SMILER_BACKEND"), std::string::npos);
  }
}

TEST(BackendSelectionTest, EnvUnsetAndEmptyDefaultToSimGrid) {
  {
    ScopedEnv env("SMILER_BACKEND", nullptr);
    auto kind = simgpu::BackendKindFromEnv();
    ASSERT_TRUE(kind.ok());
    EXPECT_EQ(*kind, BackendKind::kSimGrid);
  }
  {
    ScopedEnv env("SMILER_BACKEND", "");
    auto kind = simgpu::BackendKindFromEnv();
    ASSERT_TRUE(kind.ok());
    EXPECT_EQ(*kind, BackendKind::kSimGrid);
  }
}

TEST(BackendSelectionTest, EnvSelectsNative) {
  ScopedEnv env("SMILER_BACKEND", "native");
  auto kind = simgpu::BackendKindFromEnv();
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, BackendKind::kNative);
  simgpu::Device device;
  auto bound = device.backend();
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(*bound, BackendKind::kNative);
}

TEST(BackendSelectionTest, InvalidEnvFailsEveryLaunchWithoutFallback) {
  ScopedEnv env("SMILER_BACKEND", "tpu");
  simgpu::Device device;
  auto bound = device.backend();
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kInvalidArgument);
  // The kernel must never run: a silent fallback would execute it.
  bool ran = false;
  Status st = device.Launch("test.noop", 1, 1,
                            [&](simgpu::BlockContext&) { ran = true; });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(ran);
  EXPECT_EQ(device.stats().kernels_launched.load(), 0u);
}

TEST(BackendSelectionTest, ExplicitKindIgnoresEnvAndRebindWorks) {
  ScopedEnv env("SMILER_BACKEND", "garbage");
  simgpu::Device device(6ULL << 30, 64ULL << 10, nullptr,
                        BackendKind::kNative);
  auto bound = device.backend();
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(*bound, BackendKind::kNative);
  bool ran = false;
  ASSERT_TRUE(device
                  .Launch("test.noop", 1, 1,
                          [&](simgpu::BlockContext&) { ran = true; })
                  .ok());
  EXPECT_TRUE(ran);
  device.set_backend(BackendKind::kSimGrid);
  auto rebound = device.backend();
  ASSERT_TRUE(rebound.ok());
  EXPECT_EQ(*rebound, BackendKind::kSimGrid);
}

TEST(BackendSelectionTest, ProfilingMetricNamesSurviveBackendSwitch) {
  // Per-kernel profiling must degrade gracefully under the native
  // backend: the same `simgpu.kernel.<name>.*` instruments keep updating
  // (one whole-launch observation instead of one per emulated block), so
  // dashboards keyed on those names work whichever backend runs.
  obs::Registry& reg = obs::Registry::Global();
  obs::Counter& launches =
      reg.GetCounter("simgpu.kernel.test.profiled.launches");
  obs::Histogram& block_seconds =
      reg.GetHistogram("simgpu.kernel.test.profiled.block_seconds");
  for (BackendKind kind : {BackendKind::kSimGrid, BackendKind::kNative}) {
    const std::uint64_t launches_before = launches.value();
    const std::uint64_t observations_before = block_seconds.Snap().count;
    simgpu::Device device(6ULL << 30, 64ULL << 10, nullptr, kind);
    ASSERT_TRUE(device
                    .Launch(
                        "test.profiled", 3, 2,
                        [](simgpu::BlockContext&) {},
                        [](simgpu::NativeContext&) {})
                    .ok());
    EXPECT_EQ(launches.value(), launches_before + 1)
        << simgpu::BackendKindName(kind);
    EXPECT_GT(block_seconds.Snap().count, observations_before)
        << simgpu::BackendKindName(kind);
  }
}

std::vector<double> RandomWalk(Rng* rng, int n) {
  std::vector<double> v(n);
  double x = 0.0;
  for (int i = 0; i < n; ++i) {
    x += rng->Normal();
    v[i] = x;
  }
  return v;
}

SmilerConfig SmallConfig() {
  SmilerConfig cfg;
  cfg.rho = 4;
  cfg.omega = 8;
  cfg.elv = {16, 24, 40};
  cfg.ekv = {2, 4, 8};
  return cfg;
}

simgpu::Device MakeDevice(BackendKind kind) {
  return simgpu::Device(6ULL << 30, 64ULL << 10, nullptr, kind);
}

void ExpectSnapshotsBitwiseEqual(const index::IndexSnapshot& a,
                                 const index::IndexSnapshot& b) {
  EXPECT_EQ(a.series, b.series);
  EXPECT_EQ(a.env_c_upper, b.env_c_upper);
  EXPECT_EQ(a.env_c_lower, b.env_c_lower);
  EXPECT_EQ(a.env_mq_upper, b.env_mq_upper);
  EXPECT_EQ(a.env_mq_lower, b.env_mq_lower);
  EXPECT_EQ(a.head, b.head);
  EXPECT_EQ(a.cols, b.cols);
  EXPECT_EQ(a.arena_stride, b.arena_stride);
  // The posting-list arena is the full window level: build and append
  // maintenance must agree to the bit.
  ASSERT_EQ(a.arena.size(), b.arena.size());
  EXPECT_EQ(a.arena, b.arena);
}

void ExpectTablesBitwiseEqual(const index::LowerBoundTable& a,
                              const index::LowerBoundTable& b) {
  ASSERT_EQ(a.lb_eq.size(), b.lb_eq.size());
  ASSERT_EQ(a.lb_ec.size(), b.lb_ec.size());
  for (std::size_t i = 0; i < a.lb_eq.size(); ++i) {
    EXPECT_EQ(a.lb_eq[i], b.lb_eq[i]) << "lb_eq item " << i;
    EXPECT_EQ(a.lb_ec[i], b.lb_ec[i]) << "lb_ec item " << i;
  }
}

TEST(BackendEquivalenceTest, BuildAndAppendMaintainIdenticalWindowLevel) {
  // index.window_build + index.append_columns + index.append_rows: the
  // posting lists (and both envelopes) after Build and after a stream of
  // appends must be bitwise-identical across backends.
  simgpu::Device sim = MakeDevice(BackendKind::kSimGrid);
  simgpu::Device native = MakeDevice(BackendKind::kNative);
  SmilerConfig cfg = SmallConfig();
  Rng rng(710);
  std::vector<double> data = RandomWalk(&rng, 400);
  auto a = index::SmilerIndex::Build(&sim, ts::TimeSeries("t", data), cfg);
  auto b = index::SmilerIndex::Build(&native, ts::TimeSeries("t", data), cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectSnapshotsBitwiseEqual(a->Snapshot(), b->Snapshot());
  for (int step = 0; step < 40; ++step) {
    const double v = rng.Normal();
    ASSERT_TRUE(a->Append(v).ok());
    ASSERT_TRUE(b->Append(v).ok());
  }
  ExpectSnapshotsBitwiseEqual(a->Snapshot(), b->Snapshot());
}

TEST(BackendEquivalenceTest, LowerBoundKernelsMatchBitwise) {
  // index.group_lower_bound and index.direct_lower_bound.
  simgpu::Device sim = MakeDevice(BackendKind::kSimGrid);
  simgpu::Device native = MakeDevice(BackendKind::kNative);
  SmilerConfig cfg = SmallConfig();
  Rng rng(711);
  std::vector<double> data = RandomWalk(&rng, 380);
  auto a = index::SmilerIndex::Build(&sim, ts::TimeSeries("t", data), cfg);
  auto b = index::SmilerIndex::Build(&native, ts::TimeSeries("t", data), cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int h : {1, 16}) {
    auto ga = a->GroupLowerBounds(h);
    auto gb = b->GroupLowerBounds(h);
    ASSERT_TRUE(ga.ok());
    ASSERT_TRUE(gb.ok());
    ExpectTablesBitwiseEqual(*ga, *gb);
    auto da = a->DirectLowerBounds(h);
    auto db = b->DirectLowerBounds(h);
    ASSERT_TRUE(da.ok());
    ASSERT_TRUE(db.ok());
    ExpectTablesBitwiseEqual(*da, *db);
  }
}

TEST(BackendEquivalenceTest, StreamedSearchMatchesAcrossBackends) {
  // index.verify_dtw end-to-end: neighbors (timestamps and distances)
  // from the batched native verify must equal the grid backend's bit for
  // bit at every step of a continuous search-append stream — including
  // the threshold-reuse seeding that feeds each step from the last.
  simgpu::Device sim = MakeDevice(BackendKind::kSimGrid);
  simgpu::Device native = MakeDevice(BackendKind::kNative);
  SmilerConfig cfg = SmallConfig();
  Rng rng(712);
  std::vector<double> data = RandomWalk(&rng, 420);
  auto a = index::SmilerIndex::Build(&sim, ts::TimeSeries("t", data), cfg);
  auto b = index::SmilerIndex::Build(&native, ts::TimeSeries("t", data), cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  index::SuffixSearchOptions opts;
  opts.k = 8;
  for (int step = 0; step < 30; ++step) {
    auto ra = a->Search(opts);
    auto rb = b->Search(opts);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    ASSERT_EQ(ra->items.size(), rb->items.size());
    for (std::size_t i = 0; i < ra->items.size(); ++i) {
      const auto& na = ra->items[i].neighbors;
      const auto& nb = rb->items[i].neighbors;
      ASSERT_EQ(na.size(), nb.size()) << "item " << i << " step " << step;
      for (std::size_t j = 0; j < na.size(); ++j) {
        EXPECT_EQ(na[j].t, nb[j].t) << "item " << i << " rank " << j;
        EXPECT_EQ(na[j].dist, nb[j].dist) << "item " << i << " rank " << j;
      }
    }
    const double v = rng.Normal();
    ASSERT_TRUE(a->Append(v).ok());
    ASSERT_TRUE(b->Append(v).ok());
  }
}

TEST(BackendEquivalenceTest, DeviceGramMatchesHostUnderBothBackends) {
  // gp.gram: the device-routed pairwise squared distances must be
  // bitwise-identical to the host function — the Gram-cache contract says
  // a cached Gram is exactly what each consumer would have computed.
  Rng rng(713);
  for (std::size_t k : {1u, 2u, 7u, 33u}) {
    for (std::size_t dim : {1u, 3u, 24u}) {
      la::Matrix x(k, dim);
      for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t d = 0; d < dim; ++d) x(i, d) = rng.Normal();
      }
      const la::Matrix host = gp::PairwiseSquaredDistances(x);
      for (BackendKind kind : {BackendKind::kSimGrid, BackendKind::kNative}) {
        simgpu::Device device = MakeDevice(kind);
        auto got = gp::PairwiseSquaredDistancesOnDevice(&device, x);
        ASSERT_TRUE(got.ok());
        ASSERT_EQ(got->rows(), host.rows());
        ASSERT_EQ(got->cols(), host.cols());
        EXPECT_EQ(got->data(), host.data())
            << "backend=" << simgpu::BackendKindName(kind) << " k=" << k
            << " dim=" << dim;
      }
    }
  }
}

TEST(BackendEquivalenceTest, BatchedDtwMatchesScalarLanewise) {
  // The 4-lane batched verify kernel: every lane must return exactly the
  // scalar CompressedDtwEarlyAbandon result for its candidate, for
  // cutoffs on both sides of each lane's exact distance.
  Rng rng(714);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 8 + static_cast<int>(rng.UniformInt(90));
    const int rho = static_cast<int>(rng.UniformInt(12));
    std::vector<double> q(n);
    std::vector<std::vector<double>> cands(dtw::kDtwBatchLanes,
                                           std::vector<double>(n));
    for (int i = 0; i < n; ++i) q[i] = rng.Normal();
    for (auto& c : cands) {
      for (int i = 0; i < n; ++i) c[i] = rng.Normal();
    }
    const double* lane_ptrs[dtw::kDtwBatchLanes];
    for (int l = 0; l < dtw::kDtwBatchLanes; ++l) {
      lane_ptrs[l] = cands[l].data();
    }
    std::vector<double> scalar_scratch(dtw::CompressedDtwScratchSize(rho));
    std::vector<double> batch_scratch(dtw::CompressedDtwBatchScratchSize(rho));
    double exact[dtw::kDtwBatchLanes];
    for (int l = 0; l < dtw::kDtwBatchLanes; ++l) {
      exact[l] = dtw::CompressedDtw(q.data(), lane_ptrs[l], n, rho,
                                    scalar_scratch.data());
    }
    for (double f : {0.0, 0.5, 0.999, 1.0, 1.001, 2.0}) {
      // Cutoff relative to lane 0 so lanes abandon at different columns
      // (or not at all) within one batch.
      const double cutoff = exact[0] * f;
      double out[dtw::kDtwBatchLanes];
      dtw::CompressedDtwEarlyAbandonBatch(q.data(), lane_ptrs, n, rho,
                                          cutoff, out, batch_scratch.data());
      for (int l = 0; l < dtw::kDtwBatchLanes; ++l) {
        const double want = dtw::CompressedDtwEarlyAbandon(
            q.data(), lane_ptrs[l], n, rho, cutoff, scalar_scratch.data());
        EXPECT_EQ(out[l], want)
            << "trial=" << trial << " lane=" << l << " f=" << f;
      }
    }
  }
}

// --- Forced-backend exactness-contract fixture -----------------------------

/// Runs the dtw_property_test CompressedEarlyAbandonExactnessContract sweep
/// with the kernel the verify stage actually executes under each backend:
/// the scalar early-abandon kernel on the simulated grid, the 4-lane
/// batched kernel under native (lane 0 carries the candidate; the other
/// lanes hold independent decoys so cross-lane interference would show).
class BackendExactnessContractTest
    : public ::testing::TestWithParam<BackendKind> {
 protected:
  double EvalUnderBackend(const double* q, const double* c, int n, int rho,
                          double cutoff, Rng* rng) {
    if (GetParam() == BackendKind::kSimGrid) {
      std::vector<double> scratch(dtw::CompressedDtwScratchSize(rho));
      return dtw::CompressedDtwEarlyAbandon(q, c, n, rho, cutoff,
                                            scratch.data());
    }
    std::vector<std::vector<double>> decoys(dtw::kDtwBatchLanes - 1,
                                            std::vector<double>(n));
    for (auto& d : decoys) {
      for (int i = 0; i < n; ++i) d[i] = rng->Normal();
    }
    const double* lanes[dtw::kDtwBatchLanes];
    lanes[0] = c;
    for (int l = 1; l < dtw::kDtwBatchLanes; ++l) {
      lanes[l] = decoys[l - 1].data();
    }
    std::vector<double> scratch(dtw::CompressedDtwBatchScratchSize(rho));
    double out[dtw::kDtwBatchLanes];
    dtw::CompressedDtwEarlyAbandonBatch(q, lanes, n, rho, cutoff, out,
                                        scratch.data());
    return out[0];
  }
};

TEST_P(BackendExactnessContractTest, CompressedEarlyAbandonExactnessContract) {
  Rng rng(306);  // the dtw_property_test seed: identical input sweep
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 8 + static_cast<int>(rng.UniformInt(90));
    const int rho = static_cast<int>(rng.UniformInt(12));
    std::vector<double> q(n);
    std::vector<double> c(n);
    for (int i = 0; i < n; ++i) {
      q[i] = rng.Normal();
      c[i] = std::sin(2 * M_PI * i / 16.0) + 0.5 * rng.Normal();
    }
    const double exact = dtw::CompressedDtw(q.data(), c.data(), n, rho);
    for (double f : {0.0, 0.3, 0.7, 0.999, 1.0, 1.001, 1.5, 3.0}) {
      const double cutoff = exact * f;
      const double got =
          EvalUnderBackend(q.data(), c.data(), n, rho, cutoff, &rng);
      if (exact <= cutoff) {
        ASSERT_EQ(got, exact) << "n=" << n << " rho=" << rho << " f=" << f;
      } else {
        ASSERT_TRUE(got == exact || got == kInf)
            << "n=" << n << " rho=" << rho << " f=" << f << " got=" << got;
        ASSERT_GT(got, cutoff);
      }
    }
  }
}

/// End-to-end form of the same contract: a forced-backend index's search
/// results must match a reference scan that pays full DTW everywhere —
/// early abandoning and (under native) lane batching must never alter a
/// surviving neighbor's bits.
TEST_P(BackendExactnessContractTest, SearchMatchesFullDtwReferenceScan) {
  simgpu::Device device = MakeDevice(GetParam());
  SmilerConfig cfg = SmallConfig();
  Rng rng(715);
  ts::TimeSeries s("t", RandomWalk(&rng, 400));
  auto idx = index::SmilerIndex::Build(&device, s, cfg);
  ASSERT_TRUE(idx.ok());
  index::SuffixSearchOptions opts;
  opts.k = 8;
  for (int step = 0; step < 15; ++step) {
    auto result = idx->Search(opts);
    ASSERT_TRUE(result.ok());
    for (std::size_t i = 0; i < cfg.elv.size(); ++i) {
      const int d = cfg.elv[i];
      const long n = static_cast<long>(idx->series().size());
      const long t_count = n - d - opts.reserve_horizon + 1;
      const double* q = idx->series().data() + n - d;
      std::vector<double> scratch(dtw::CompressedDtwScratchSize(cfg.rho));
      std::vector<index::Neighbor> all;
      for (long t = 0; t < t_count; ++t) {
        all.push_back(index::Neighbor{
            t, dtw::CompressedDtw(q, idx->series().data() + t, d, cfg.rho,
                                  scratch.data())});
      }
      const std::vector<index::Neighbor> want =
          index::KSelectSmallest(std::move(all), opts.k);
      const auto& got = result->items[i].neighbors;
      ASSERT_EQ(got.size(), want.size()) << "item " << i;
      for (std::size_t j = 0; j < want.size(); ++j) {
        EXPECT_EQ(got[j].t, want[j].t) << "item " << i << " rank " << j;
        EXPECT_EQ(got[j].dist, want[j].dist) << "item " << i << " rank " << j;
      }
    }
    ASSERT_TRUE(idx->Append(rng.Normal()).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, BackendExactnessContractTest,
    ::testing::Values(BackendKind::kSimGrid, BackendKind::kNative),
    [](const ::testing::TestParamInfo<BackendKind>& info) {
      return std::string(simgpu::BackendKindName(info.param));
    });

}  // namespace
}  // namespace smiler
