// Functional coverage of the observability layer: instrument semantics,
// quantile estimation, JSON / Prometheus exposition, span collection and
// nesting, and the simgpu kernel-profiling hooks. The multi-threaded
// hammering lives in obs_concurrency_test.cc (run under TSan by
// scripts/check.sh).

#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/obs.h"
#include "simgpu/device.h"

namespace smiler {
namespace obs {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAndSetMax) {
  Gauge g;
  g.Set(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 0.25);
  g.SetMax(0.125);  // lower: no effect
  EXPECT_DOUBLE_EQ(g.value(), 0.25);
  g.SetMax(0.75);
  EXPECT_DOUBLE_EQ(g.value(), 0.75);
  g.Set(0.125);  // Set always overwrites
  EXPECT_DOUBLE_EQ(g.value(), 0.125);
}

TEST(HistogramTest, EmptySnapshot) {
  Histogram h;
  const Histogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(HistogramTest, SingletonQuantilesAreExact) {
  Histogram h;
  h.Observe(0.125);
  const Histogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 0.125);
  EXPECT_DOUBLE_EQ(s.max, 0.125);
  // Quantiles are clamped into [min, max], so a singleton is exact.
  EXPECT_DOUBLE_EQ(s.p50, 0.125);
  EXPECT_DOUBLE_EQ(s.p99, 0.125);
}

TEST(HistogramTest, BucketIndexMonotoneAndBounded) {
  int prev = -1;
  for (double v = 1e-10; v < 1e6; v *= 1.7) {
    const int idx = Histogram::BucketIndex(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, Histogram::kNumBuckets);
    ASSERT_GE(idx, prev);
    prev = idx;
    // The bucket's range must contain v (unless clamped at the edges).
    if (idx > 0 && idx < Histogram::kNumBuckets - 1) {
      EXPECT_LE(Histogram::BucketLowerBound(idx), v);
      EXPECT_GT(Histogram::BucketLowerBound(idx + 1), v);
    }
  }
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-3.0), 0);
}

TEST(HistogramTest, QuantilesWithinBucketResolution) {
  Histogram h;
  // 1..1000 "milliseconds".
  for (int i = 1; i <= 1000; ++i) h.Observe(i * 1e-3);
  const Histogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, 1000u);
  // Log-bucketed with 4 sub-buckets per octave => bucket width ~19%, so
  // the estimate is within ~20% of the true quantile.
  EXPECT_NEAR(s.p50, 0.500, 0.500 * 0.25);
  EXPECT_NEAR(s.p95, 0.950, 0.950 * 0.25);
  EXPECT_NEAR(s.p99, 0.990, 0.990 * 0.25);
  EXPECT_DOUBLE_EQ(s.min, 1e-3);
  EXPECT_DOUBLE_EQ(s.max, 1.0);
}

TEST(RegistryTest, InstrumentsAreStableAndNamed) {
  Registry reg;
  Counter& a = reg.GetCounter("test.counter");
  Counter& b = reg.GetCounter("test.counter");
  EXPECT_EQ(&a, &b);  // same name -> same instrument
  a.Increment(7);
  EXPECT_EQ(reg.GetCounter("test.counter").value(), 7u);
  reg.GetGauge("test.gauge").Set(1.5);
  reg.GetHistogram("test.hist").Observe(2.0);
  EXPECT_EQ(reg.CounterNames(), std::vector<std::string>{"test.counter"});
  EXPECT_EQ(reg.GaugeNames(), std::vector<std::string>{"test.gauge"});
  EXPECT_EQ(reg.HistogramNames(), std::vector<std::string>{"test.hist"});
}

TEST(RegistryTest, JsonExpositionRoundTripsValues) {
  Registry reg;
  reg.GetCounter("index.candidates_total").Increment(12345);
  reg.GetGauge("index.pruning_ratio").Set(0.25);
  Histogram& h = reg.GetHistogram("engine.search_seconds");
  h.Observe(0.5);
  h.Observe(0.5);

  const std::string json = reg.ToJson();
  // Counters and gauges round-trip exactly.
  EXPECT_NE(json.find("\"index.candidates_total\": 12345"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"index.pruning_ratio\": 0.25"), std::string::npos)
      << json;
  // Histogram summary: exact count/sum/min/max.
  EXPECT_NE(json.find("\"engine.search_seconds\": {\"count\": 2, "
                      "\"sum\": 1, \"min\": 0.5, \"max\": 0.5"),
            std::string::npos)
      << json;
  // Structural sanity: one object with the three sections.
  EXPECT_EQ(json.find('{'), 0u);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(RegistryTest, PrometheusExpositionRoundTripsValues) {
  Registry reg;
  reg.GetCounter("gp.cg_iterations").Increment(99);
  reg.GetGauge("threadpool.queue_depth").Set(3);
  Histogram& h = reg.GetHistogram("index.search.verify_seconds");
  h.Observe(0.25);

  const std::string prom = reg.ToPrometheus();
  EXPECT_NE(prom.find("# TYPE smiler_gp_cg_iterations counter\n"
                      "smiler_gp_cg_iterations 99\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# TYPE smiler_threadpool_queue_depth gauge\n"
                      "smiler_threadpool_queue_depth 3\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# TYPE smiler_index_search_verify_seconds summary"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("smiler_index_search_verify_seconds_sum 0.25"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("smiler_index_search_verify_seconds_count 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("smiler_index_search_verify_seconds{quantile=\"0.5\"} "
                      "0.25"),
            std::string::npos)
      << prom;
}

TEST(RegistryTest, ResetAllZeroesButKeepsReferences) {
  Registry reg;
  Counter& c = reg.GetCounter("x");
  Histogram& h = reg.GetHistogram("y");
  c.Increment(5);
  h.Observe(1.0);
  reg.ResetAll();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.Snap().count, 0u);
  c.Increment();  // reference still live
  EXPECT_EQ(reg.GetCounter("x").value(), 1u);
}

TEST(TracerTest, SpanNestingReconstructsWellFormedTree) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.Start();
  {
    SMILER_TRACE_SPAN("outer");
    {
      SMILER_TRACE_SPAN("middle");
      { SMILER_TRACE_SPAN("inner"); }
      { SMILER_TRACE_SPAN("inner"); }
    }
    { SMILER_TRACE_SPAN("middle"); }
  }
  tracer.Stop();
  const std::vector<SpanEvent> events = tracer.Collect();
  ASSERT_EQ(events.size(), 5u);

  int outer = 0, middle = 0, inner = 0;
  for (const SpanEvent& e : events) {
    const std::string name = e.name;
    if (name == "outer") {
      ++outer;
      EXPECT_EQ(e.depth, 0);
    } else if (name == "middle") {
      ++middle;
      EXPECT_EQ(e.depth, 1);
    } else if (name == "inner") {
      ++inner;
      EXPECT_EQ(e.depth, 2);
    } else {
      FAIL() << "unexpected span " << name;
    }
  }
  EXPECT_EQ(outer, 1);
  EXPECT_EQ(middle, 2);
  EXPECT_EQ(inner, 2);

  // Well-formed tree: same-thread spans are either disjoint or nested,
  // and a deeper span starting inside a shallower one ends inside it too.
  for (const SpanEvent& a : events) {
    for (const SpanEvent& b : events) {
      if (&a == &b || a.tid != b.tid) continue;
      const std::int64_t a_end = a.start_us + a.duration_us;
      const std::int64_t b_end = b.start_us + b.duration_us;
      const bool disjoint = a_end <= b.start_us || b_end <= a.start_us;
      const bool a_in_b = a.start_us >= b.start_us && a_end <= b_end;
      const bool b_in_a = b.start_us >= a.start_us && b_end <= a_end;
      EXPECT_TRUE(disjoint || a_in_b || b_in_a)
          << a.name << " vs " << b.name;
    }
  }
  tracer.Clear();
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.Stop();
  { SMILER_TRACE_SPAN("ignored"); }
  EXPECT_TRUE(tracer.Collect().empty());
}

TEST(TracerTest, ChromeTraceJsonShape) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.Start();
  { SMILER_TRACE_SPAN("engine.predict"); }
  tracer.Stop();
  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"name\":\"engine.predict\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  tracer.Clear();
}

TEST(SimgpuProfilingTest, KernelLaunchRecordsProfile) {
  Registry& reg = Registry::Global();
  reg.GetCounter("simgpu.kernel.test_kernel.launches").Reset();
  reg.GetGauge("simgpu.kernel.test_kernel.shared_high_water_bytes").Reset();
  reg.GetHistogram("simgpu.kernel.test_kernel.block_seconds").Reset();

  simgpu::Device device;
  const std::size_t capacity = device.shared_memory_bytes();
  Status st = device.Launch("test_kernel", /*grid_dim=*/4, /*block_dim=*/8,
                            [&](simgpu::BlockContext& ctx) {
                              double* a = ctx.shared->Alloc<double>(100);
                              ASSERT_NE(a, nullptr);
                              ctx.shared->Reset();
                              double* b = ctx.shared->Alloc<double>(50);
                              ASSERT_NE(b, nullptr);
                            });
  ASSERT_TRUE(st.ok()) << st.ToString();

  EXPECT_EQ(reg.GetCounter("simgpu.kernel.test_kernel.launches").value(), 1u);
  // Block wall time: one observation per block.
  EXPECT_EQ(
      reg.GetHistogram("simgpu.kernel.test_kernel.block_seconds").Snap().count,
      4u);
  // Shared-memory high-water: peak across Resets (100 doubles), and never
  // above the arena capacity.
  const double hw =
      reg.GetGauge("simgpu.kernel.test_kernel.shared_high_water_bytes")
          .value();
  EXPECT_GE(hw, 100 * sizeof(double));
  EXPECT_LE(hw, static_cast<double>(capacity));
  EXPECT_LE(reg.GetGauge("simgpu.shared_memory.high_water_bytes").value(),
            static_cast<double>(capacity));
}

TEST(SimgpuProfilingTest, OverCapacityAllocDoesNotInflateHighWater) {
  simgpu::SharedMemory shared(1024);
  EXPECT_NE(shared.Alloc<double>(16), nullptr);
  EXPECT_EQ(shared.Alloc<double>(4096), nullptr);  // exceeds capacity
  EXPECT_EQ(shared.high_water(), 16 * sizeof(double));
  EXPECT_LE(shared.high_water(), shared.capacity());
}

}  // namespace
}  // namespace obs
}  // namespace smiler
