#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/manager.h"
#include "obs/obs.h"
#include "serve/server.h"
#include "simgpu/device.h"
#include "store/tiered_store.h"
#include "ts/datasets.h"

namespace smiler {
namespace obs {
namespace {

/// Tracing, the exemplar reservoir, and the dropped-span counter are
/// process globals; every test starts from a clean slate and leaves the
/// tracer configured back at its defaults.
class RequestTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().SetBufferCapacity(Tracer::kDefaultBufferCapacity);
    Tracer::Global().Clear();
    Tracer::Global().Stop();
    ExemplarReservoir::Global().Clear();
    Registry::Global().GetCounter("obs.trace.dropped_spans").Reset();
  }
  void TearDown() override {
    Tracer::Global().Stop();
    Tracer::Global().SetBufferCapacity(Tracer::kDefaultBufferCapacity);
    Tracer::Global().Clear();
    ExemplarReservoir::Global().Clear();
  }
};

TEST_F(RequestTraceTest, StageTaxonomyIsStable) {
  ASSERT_EQ(kNumStages, 9);
  const char* expected[] = {"queue_wait", "batch_form", "rehydrate",
                            "lb_filter",  "dtw_verify", "gram",
                            "cholesky",   "forecast",   "publish"};
  std::set<std::string> names;
  for (int s = 0; s < kNumStages; ++s) {
    EXPECT_STREQ(StageName(static_cast<Stage>(s)), expected[s]);
    EXPECT_EQ(std::string(StageSpanName(static_cast<Stage>(s))),
              std::string("stage.") + expected[s]);
    names.insert(StageName(static_cast<Stage>(s)));
  }
  EXPECT_EQ(names.size(), 9u);  // no duplicates
}

TEST_F(RequestTraceTest, OwnerClockTilesNestedStagesExclusively) {
  auto ctx = RequestContext::Mint(/*shard=*/3);
  EXPECT_EQ(ctx->shard(), 3);
  EXPECT_NE(ctx->trace_id(), 0u);

  // forecast [0, 100) with gram [10, 30) and cholesky [30, 70) nested:
  // the enclosing stage is paused while a nested stage runs, so the
  // owner totals tile the wall interval without double counting.
  ctx->PushStage(Stage::kForecast, 0);
  ctx->PushStage(Stage::kGram, 10);
  ctx->PopStage(30);
  ctx->PushStage(Stage::kCholesky, 30);
  ctx->PopStage(70);
  ctx->PopStage(100);

  EXPECT_EQ(ctx->owner_micros(Stage::kGram), 20);
  EXPECT_EQ(ctx->owner_micros(Stage::kCholesky), 40);
  EXPECT_EQ(ctx->owner_micros(Stage::kForecast), 40);  // 10 + 30, not 100
  EXPECT_EQ(ctx->TotalOwnerMicros(), 100);

  // Cross-thread credits land directly; negative credits clamp.
  ctx->Credit(Stage::kQueueWait, 55);
  ctx->Credit(Stage::kBatchForm, -17);
  EXPECT_EQ(ctx->owner_micros(Stage::kQueueWait), 55);
  EXPECT_EQ(ctx->owner_micros(Stage::kBatchForm), 0);
  EXPECT_EQ(ctx->TotalOwnerMicros(), 155);

  // Parallel accumulation is separate from the owner clock.
  ctx->AddParallel(Stage::kDtwVerify, 1000);
  EXPECT_EQ(ctx->parallel_micros(Stage::kDtwVerify), 1000);
  EXPECT_EQ(ctx->owner_micros(Stage::kDtwVerify), 0);
  EXPECT_EQ(ctx->TotalOwnerMicros(), 155);
}

TEST_F(RequestTraceTest, RequestScopeBindsContextTraceIdAndOwnership) {
  EXPECT_EQ(CurrentRequestContext(), nullptr);
  EXPECT_FALSE(IsRequestOwnerThread());
  EXPECT_EQ(Tracer::CurrentTraceId(), 0u);

  auto outer = RequestContext::Mint();
  {
    RequestScope scope(outer, /*owner=*/true);
    EXPECT_EQ(CurrentRequestContext(), outer.get());
    EXPECT_TRUE(IsRequestOwnerThread());
    EXPECT_EQ(Tracer::CurrentTraceId(), outer->trace_id());

    auto inner = RequestContext::Mint();
    EXPECT_NE(inner->trace_id(), outer->trace_id());
    {
      RequestScope nested(inner, /*owner=*/false);
      EXPECT_EQ(CurrentRequestContext(), inner.get());
      EXPECT_FALSE(IsRequestOwnerThread());
      EXPECT_EQ(Tracer::CurrentTraceId(), inner->trace_id());
    }
    // Nesting restores the enclosing binding, not a blank one.
    EXPECT_EQ(CurrentRequestContext(), outer.get());
    EXPECT_TRUE(IsRequestOwnerThread());
    EXPECT_EQ(Tracer::CurrentTraceId(), outer->trace_id());
  }
  EXPECT_EQ(CurrentRequestContext(), nullptr);
  EXPECT_EQ(Tracer::CurrentTraceId(), 0u);

  // A null context is an explicit no-op scope (snapshot barriers).
  {
    RequestScope noop(nullptr, /*owner=*/true);
    EXPECT_EQ(CurrentRequestContext(), nullptr);
    EXPECT_FALSE(IsRequestOwnerThread());
  }
}

TEST_F(RequestTraceTest, StageScopeIsSafeWithoutContextOrTracing) {
  // No bound context, tracing off: must not crash or record anything.
  { StageScope s(Stage::kGram); }
  // Non-owner binding: elapsed time lands in the parallel counters only.
  auto ctx = RequestContext::Mint();
  {
    RequestScope scope(ctx, /*owner=*/false);
    StageScope s(Stage::kDtwVerify);
  }
  EXPECT_EQ(ctx->owner_micros(Stage::kDtwVerify), 0);
  EXPECT_GE(ctx->parallel_micros(Stage::kDtwVerify), 0);
}

TEST_F(RequestTraceTest, ThreadPoolPropagatesContextAcrossSubmit) {
  auto ctx = RequestContext::Mint();
  Tracer::Global().Start();
  std::uint64_t seen_trace = 0;
  bool seen_owner = true;
  std::promise<void> done;
  {
    RequestScope scope(ctx, /*owner=*/true);
    ThreadPool::Default().Submit([&] {
      seen_trace = Tracer::CurrentTraceId();
      seen_owner = IsRequestOwnerThread();
      done.set_value();
    });
    done.get_future().wait();
  }
  EXPECT_EQ(seen_trace, ctx->trace_id());
  EXPECT_FALSE(seen_owner);  // helpers never own the stage clock
}

TEST_F(RequestTraceTest, RingBufferBoundsSpansAndCountsDrops) {
  Counter& dropped =
      Registry::Global().GetCounter("obs.trace.dropped_spans");
  Tracer::Global().SetBufferCapacity(16);
  Tracer::Global().Clear();  // re-applies the capacity to live buffers
  Tracer::Global().Start();

  // A fresh thread gets a fresh ring; overflow it 4x.
  std::thread recorder([] {
    Tracer::Global().RegisterCurrentThread("ring-test-thread");
    for (int i = 0; i < 64; ++i) {
      SMILER_TRACE_SPAN("ring.test");
    }
  });
  recorder.join();

  int ring_spans = 0;
  std::int64_t newest_start = -1;
  for (const SpanEvent& e : Tracer::Global().Collect()) {
    if (std::string(e.name) == "ring.test") {
      ++ring_spans;
      // Oldest-first within the thread: unwound ring order.
      EXPECT_GE(e.start_us, newest_start);
      newest_start = e.start_us;
    }
  }
  EXPECT_EQ(ring_spans, 16);        // bounded at the configured capacity
  EXPECT_EQ(dropped.value(), 48u);  // evictions are observable
  EXPECT_NE(Tracer::Global().ToChromeTraceJson().find("ring-test-thread"),
            std::string::npos);
}

TEST_F(RequestTraceTest, RegisteredThreadAppearsInExportWithoutSpans) {
  Tracer::Global().Start();
  std::thread idle(
      [] { Tracer::Global().RegisterCurrentThread("idle-but-visible"); });
  idle.join();
  // Satellite guarantee: a worker spawned after tracing startup is
  // present in the export even if it never records a single span.
  EXPECT_NE(Tracer::Global().ToChromeTraceJson().find("idle-but-visible"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// The whole stack: serve -> engine -> thread pool under one trace id.

SmilerConfig SmallConfig() {
  SmilerConfig cfg;
  cfg.rho = 4;
  cfg.omega = 8;
  cfg.elv = {16, 24};
  cfg.ekv = {4, 8};
  return cfg;
}

TEST_F(RequestTraceTest, ServeRequestFormsOneCrossThreadSpanTree) {
  Tracer::Global().Start();

  const int kSensors = 3;
  const int kWarmup = 96;
  const int kSteps = 8;
  auto data = ts::MakeDataset(
      {ts::DatasetKind::kMall, kSensors, kWarmup + kSteps, 64, 5, true});
  ASSERT_TRUE(data.ok());
  std::vector<ts::TimeSeries> histories;
  for (const auto& s : *data) {
    histories.emplace_back(
        s.sensor_id(),
        std::vector<double>(s.values().begin(),
                            s.values().begin() + kWarmup));
  }
  simgpu::Device device;
  auto manager = core::MultiSensorManager::Create(
      &device, histories, SmallConfig(), core::PredictorKind::kAr);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();

  serve::ServerOptions options;
  options.num_shards = 2;
  auto server =
      serve::PredictionServer::Create(std::move(*manager), options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  Counter& completed =
      Registry::Global().GetCounter("obs.request.completed");
  const std::uint64_t completed_before = completed.value();

  std::uint64_t requests = 0;
  for (int step = 0; step < kSteps; ++step) {
    for (int s = 0; s < kSensors; ++s) {
      ASSERT_TRUE((*server)->Predict(s).ok());
      ASSERT_TRUE(
          (*server)->Observe(s, (*data)[s].values()[kWarmup + step]).ok());
      requests += 2;
    }
  }
  (*server)->Shutdown();

  // Every finished request published its attribution exactly once.
  EXPECT_EQ(completed.value() - completed_before, requests);

  // Group spans by trace id: every request must form one causally-linked
  // tree, and at least the enqueue (caller thread) + processing (shard
  // worker) spans put two distinct tids under the same trace id.
  std::map<std::uint64_t, std::set<std::uint32_t>> tids_by_trace;
  std::map<std::uint64_t, std::set<std::string>> names_by_trace;
  for (const SpanEvent& e : Tracer::Global().Collect()) {
    if (e.trace_id == 0) continue;
    tids_by_trace[e.trace_id].insert(e.tid);
    names_by_trace[e.trace_id].insert(e.name);
  }
  ASSERT_FALSE(tids_by_trace.empty());
  int cross_thread_traces = 0;
  for (const auto& [trace_id, tids] : tids_by_trace) {
    if (tids.size() >= 2) ++cross_thread_traces;
  }
  EXPECT_GT(cross_thread_traces, 0);
  // The slowest retained request crosses caller -> shard worker and its
  // tree carries both the admission span and a stage span.
  const auto exemplars = ExemplarReservoir::Global().Snapshot();
  ASSERT_FALSE(exemplars.empty());
  const auto& slowest = exemplars.front();
  ASSERT_TRUE(tids_by_trace.count(slowest.trace_id));
  EXPECT_GE(tids_by_trace[slowest.trace_id].size(), 2u);
  EXPECT_TRUE(names_by_trace[slowest.trace_id].count("serve.enqueue"));

  // Trace ids are unique per request and per-stage owner time sums to
  // end-to-end latency up to scope-boundary slack (one steady clock on
  // both sides, so the tolerance is slack, not skew: 35% relative or
  // 500us absolute, whichever is larger, and never over e2e by more
  // than 2% + 2ms).
  std::set<std::uint64_t> exemplar_ids;
  for (const auto& ex : exemplars) {
    EXPECT_TRUE(exemplar_ids.insert(ex.trace_id).second);
    std::int64_t owner_sum_us = 0;
    for (int s = 0; s < kNumStages; ++s) owner_sum_us += ex.stage_micros[s];
    const double owner_sum = static_cast<double>(owner_sum_us) * 1e-6;
    EXPECT_LE(owner_sum, ex.e2e_seconds * 1.02 + 0.002)
        << "owner clock exceeded e2e for trace " << ex.trace_id;
    const double gap = ex.e2e_seconds - owner_sum;
    EXPECT_LE(gap, std::max(0.35 * ex.e2e_seconds, 500e-6))
        << "attribution gap too large for trace " << ex.trace_id;
  }

  // The attribution surfaces list every stage of the taxonomy.
  const std::string table = AttributionTableText();
  for (int s = 0; s < kNumStages; ++s) {
    EXPECT_NE(table.find(StageName(static_cast<Stage>(s))),
              std::string::npos)
        << StageName(static_cast<Stage>(s));
  }
  // Per-shard gauges exist for the shard that served the slowest request.
  ASSERT_GE(slowest.shard, 0);
  const std::string gauge_name = "serve.shard" +
                                 std::to_string(slowest.shard) +
                                 ".stage.forecast_seconds_total";
  EXPECT_GT(Registry::Global().GetGauge(gauge_name).value(), 0.0);

  // The filtered exemplar export keeps only the retained trees. The
  // needle includes the closing brace (the tracer always emits
  // "trace":<id>} ) so that e.g. trace 1 never false-matches the prefix
  // of a retained trace 15.
  std::unordered_set<std::uint64_t> keep = {slowest.trace_id};
  const std::string filtered =
      Tracer::Global().ToChromeTraceJsonFiltered(keep);
  EXPECT_NE(
      filtered.find("\"trace\":" + std::to_string(slowest.trace_id) + "}"),
      std::string::npos);
  for (const auto& ex : exemplars) {
    if (ex.trace_id == slowest.trace_id) continue;
    EXPECT_EQ(
        filtered.find("\"trace\":" + std::to_string(ex.trace_id) + "}"),
        std::string::npos);
  }
}

// Store rehydration is an overlapped IO stage of its own (`rehydrate`),
// NOT a slice of batch_form: with a 1-byte-budget tiered store attached
// (every request re-pins through the cold tier) the rehydrate stage must
// actually accrue owner time, and the per-stage owner sums must still
// tile end-to-end latency with the same slack bound as the storeless
// path — attributing the pin outside the stage clock would reopen the
// unattributed-gap hole this taxonomy exists to close.
TEST_F(RequestTraceTest, TieredStoreRehydrateIsAttributedAndStillTiles) {
  Tracer::Global().Start();

  const int kSensors = 3;
  const int kWarmup = 96;
  const int kSteps = 8;
  auto data = ts::MakeDataset(
      {ts::DatasetKind::kMall, kSensors, kWarmup + kSteps, 64, 5, true});
  ASSERT_TRUE(data.ok());
  std::vector<ts::TimeSeries> histories;
  for (const auto& s : *data) {
    histories.emplace_back(
        s.sensor_id(),
        std::vector<double>(s.values().begin(),
                            s.values().begin() + kWarmup));
  }
  simgpu::Device device;
  auto manager = core::MultiSensorManager::Create(
      &device, histories, SmallConfig(), core::PredictorKind::kAr);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();

  std::unique_ptr<store::TieredStateStore> store;  // outlives the server
  serve::ServerOptions options;
  options.num_shards = 1;
  auto server =
      serve::PredictionServer::Create(std::move(*manager), options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  store::StoreOptions store_options;
  store_options.dir = testing::TempDir() + "/request_trace_rehydrate";
  (void)std::system(("rm -rf '" + store_options.dir + "'").c_str());
  store_options.budget_bytes = 1;  // everything spills at every batch end
  auto store_or = store::TieredStateStore::Create(store_options);
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  store = std::move(*store_or);
  ASSERT_TRUE((*server)->AttachStore(store.get()).ok());

  Gauge& rehydrate_total = Registry::Global().GetGauge(
      "serve.shard0.stage.rehydrate_seconds_total");
  const double rehydrate_before = rehydrate_total.value();

  for (int step = 0; step < kSteps; ++step) {
    for (int s = 0; s < kSensors; ++s) {
      ASSERT_TRUE((*server)->Predict(s).ok());
      ASSERT_TRUE(
          (*server)->Observe(s, (*data)[s].values()[kWarmup + step]).ok());
    }
  }
  (*server)->Shutdown();

  // The rehydrate stage accrued real owner time on the serving shard.
  EXPECT_GT(rehydrate_total.value(), rehydrate_before);

  // Stage sums still tile e2e with the store in the path: same slack
  // tolerances as the storeless span-tree test.
  const auto exemplars = ExemplarReservoir::Global().Snapshot();
  ASSERT_FALSE(exemplars.empty());
  std::int64_t rehydrate_exemplar_us = 0;
  for (const auto& ex : exemplars) {
    std::int64_t owner_sum_us = 0;
    for (int s = 0; s < kNumStages; ++s) owner_sum_us += ex.stage_micros[s];
    rehydrate_exemplar_us +=
        ex.stage_micros[static_cast<int>(Stage::kRehydrate)];
    const double owner_sum = static_cast<double>(owner_sum_us) * 1e-6;
    EXPECT_LE(owner_sum, ex.e2e_seconds * 1.02 + 0.002)
        << "owner clock exceeded e2e for trace " << ex.trace_id;
    const double gap = ex.e2e_seconds - owner_sum;
    EXPECT_LE(gap, std::max(0.35 * ex.e2e_seconds, 500e-6))
        << "attribution gap too large for trace " << ex.trace_id;
  }
  // At least one retained request spent visible time rehydrating (with a
  // 1-byte budget every single request re-pins through the cold tier).
  EXPECT_GT(rehydrate_exemplar_us, 0);

  // And the human-facing table reports the stage alongside the others.
  EXPECT_NE(AttributionTableText().find("rehydrate"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Live snapshot endpoint.

TEST_F(RequestTraceTest, StatsServerServesMetricsHealthAndAttribution) {
  HealthRegistry::Global().Reset();
  StatsServer& server = StatsServer::Global();
  const bool started_here = !server.running();
  int port = server.port();
  if (started_here) {
    port = server.Start(0);  // ephemeral
    ASSERT_GT(port, 0);
  }

  Registry::Global().GetCounter("serve.completed").Increment(0);
  const std::string metrics = StatsServer::Get(port, "/metrics");
  EXPECT_NE(metrics.find("200"), std::string::npos);
  EXPECT_NE(metrics.find("smiler_serve_completed"), std::string::npos);

  EXPECT_NE(StatsServer::Get(port, "/healthz").find("200 "),
            std::string::npos);
  HealthRegistry::Global().Set("serve.sensor0", false, "quarantined");
  const std::string degraded = StatsServer::Get(port, "/healthz");
  EXPECT_NE(degraded.find("503"), std::string::npos);
  EXPECT_NE(degraded.find("serve.sensor0"), std::string::npos);
  HealthRegistry::Global().Clear("serve.sensor0");
  EXPECT_NE(StatsServer::Get(port, "/healthz").find("200 "),
            std::string::npos);

  const std::string attribution = StatsServer::Get(port, "/attribution");
  EXPECT_NE(attribution.find("queue_wait"), std::string::npos);
  EXPECT_NE(attribution.find("cholesky"), std::string::npos);

  EXPECT_NE(StatsServer::Get(port, "/nope").find("404"),
            std::string::npos);

  if (started_here) server.Stop();
  HealthRegistry::Global().Reset();
}

}  // namespace
}  // namespace obs
}  // namespace smiler
