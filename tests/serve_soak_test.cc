#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/manager.h"
#include "obs/metrics.h"
#include "serve/checkpoint.h"
#include "serve/server.h"
#include "ts/datasets.h"

namespace smiler {
namespace serve {
namespace {

SmilerConfig TestConfig() {
  SmilerConfig cfg;
  cfg.rho = 4;
  cfg.omega = 8;
  cfg.elv = {16, 24};
  cfg.ekv = {4, 8};
  cfg.initial_cg_steps = 10;
  cfg.online_cg_steps = 2;
  return cfg;
}

// AR keeps the per-request cost small enough that the whole soak stays
// fast under ThreadSanitizer; the GP path is covered by the checkpoint
// round-trip test.
std::unique_ptr<PredictionServer> MakeServer(int sensors,
                                             const ServerOptions& options) {
  // One process-lifetime device: the engines hold buffers charged to it,
  // so it must outlive every server the test file creates.
  static simgpu::Device device;
  auto data = ts::MakeDataset(
      {ts::DatasetKind::kMall, sensors, 640, 64, 17, true});
  EXPECT_TRUE(data.ok());
  auto manager =
      core::MultiSensorManager::Create(&device, *data, TestConfig(),
                                       core::PredictorKind::kAr);
  EXPECT_TRUE(manager.ok()) << manager.status().ToString();
  auto server = PredictionServer::Create(std::move(*manager), options);
  EXPECT_TRUE(server.ok());
  return std::move(*server);
}

// The acceptance soak: >= 4 concurrent client threads hammer sensors 0..6
// with mixed Predict/Observe traffic while the main thread drives sensor 7
// in a deterministic alternation, takes a snapshot mid-run with traffic
// still flowing, restores it into a standalone engine, and checks that the
// server's subsequent sensor-7 predictions are bitwise-identical to the
// restored engine's. Every issued request must be answered (closed-loop
// clients would hang forever on a lost response).
TEST(ServeSoakTest, ConcurrentTrafficWithMidRunSnapshot) {
  ServerOptions options;
  options.num_shards = 4;
  options.queue_capacity = 512;  // closed-loop clients never fill this
  auto server = MakeServer(/*sensors=*/8, options);
  ASSERT_EQ(server->num_shards(), 4);

  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 60;
  std::atomic<std::uint64_t> ok_count{0}, answered{0};
  std::atomic<bool> fail{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int op = 0; op < kOpsPerClient; ++op) {
        const std::size_t sensor = (c * 31 + op) % 7;  // never sensor 7
        Response r;
        if (op % 3 == 2) {
          r = server->AsyncObserve(sensor, std::sin(0.1 * op + c)).get();
        } else {
          r = server->AsyncPredict(sensor).get();
        }
        answered.fetch_add(1);
        if (r.status.ok()) {
          ok_count.fetch_add(1);
        } else {
          fail.store(true);  // generous queue + live server: all must be OK
        }
      }
    });
  }

  // Deterministic foreground stream on sensor 7 (strict alternation, ends
  // on Observe so the snapshot is taken between steps).
  auto drive = [&](int step) {
    auto pred = server->Predict(7);
    EXPECT_TRUE(pred.ok());
    EXPECT_TRUE(server->Observe(7, std::sin(0.05 * step)).ok());
    return *pred;
  };
  for (int step = 0; step < 15; ++step) drive(step);

  // Mid-run snapshot: the shard quiesces at a batch boundary; the other
  // shards keep serving the client threads throughout.
  auto snaps = server->Snapshot();
  ASSERT_TRUE(snaps.ok()) << snaps.status().ToString();
  ASSERT_EQ(snaps->size(), 8u);
  simgpu::Device restore_device;
  auto restored = core::SensorEngine::Restore(&restore_device, (*snaps)[7]);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  for (int step = 15; step < 45; ++step) {
    auto server_pred = server->Predict(7);
    auto local_pred = restored->Predict();
    ASSERT_TRUE(server_pred.ok());
    ASSERT_TRUE(local_pred.ok());
    EXPECT_EQ(server_pred->mean, local_pred->mean) << "step " << step;
    EXPECT_EQ(server_pred->variance, local_pred->variance) << "step " << step;
    const double v = std::sin(0.05 * step);
    ASSERT_TRUE(server->Observe(7, v).ok());
    ASSERT_TRUE(restored->Observe(v).ok());
  }

  for (auto& t : clients) t.join();
  EXPECT_EQ(answered.load(), kClients * kOpsPerClient);  // zero lost responses
  EXPECT_FALSE(fail.load());
  EXPECT_EQ(ok_count.load(), kClients * kOpsPerClient);
  server->Shutdown();
}

// Full queues must reject immediately with ResourceExhausted — clients
// never block on admission and every future (accepted or rejected) is
// answered.
TEST(ServeSoakTest, FullQueueRejectsWithoutBlocking) {
  ServerOptions options;
  options.num_shards = 1;
  options.queue_capacity = 2;
  auto server = MakeServer(/*sensors=*/2, options);

  constexpr int kClients = 4;
  constexpr int kPerClient = 50;
  std::atomic<std::uint64_t> ok_count{0}, rejected{0}, other{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      std::vector<std::future<Response>> inflight;
      inflight.reserve(kPerClient);
      for (int op = 0; op < kPerClient; ++op) {
        inflight.push_back(server->AsyncPredict(op % 2));  // open loop
      }
      for (auto& f : inflight) {
        const Status st = f.get().status;
        if (st.ok()) {
          ok_count.fetch_add(1);
        } else if (st.code() == StatusCode::kResourceExhausted) {
          rejected.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok_count.load() + rejected.load() + other.load(),
            static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_GT(ok_count.load(), 0u);
  EXPECT_GT(rejected.load(), 0u);  // capacity 2 vs a 200-request flood
  EXPECT_EQ(other.load(), 0u);
  server->Shutdown();
  // Depth gauges must return to zero once everything is answered.
  for (int s = 0; s < server->num_shards(); ++s) {
    EXPECT_EQ(obs::Registry::Global()
                  .GetGauge("serve.shard" + std::to_string(s) + ".queue_depth")
                  .value(),
              0.0);
  }
}

TEST(ServeSoakTest, ExpiredDeadlineIsShedBeforeExecution) {
  ServerOptions options;
  options.num_shards = 1;
  auto server = MakeServer(/*sensors=*/1, options);
  static obs::Counter& shed =
      obs::Registry::Global().GetCounter("serve.deadline_expired");
  const std::uint64_t before = shed.value();
  Response r =
      server->AsyncPredict(0, Clock::now() - std::chrono::seconds(1)).get();
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GT(shed.value(), before);
  // A sane deadline still succeeds.
  EXPECT_TRUE(
      server->Predict(0, Clock::now() + std::chrono::minutes(5)).ok());
}

// Back-to-back Predicts with no intervening Observe must agree: either
// coalesced into one engine pass or recomputed on unchanged state, the
// answer is the same.
TEST(ServeSoakTest, PredictBurstIsConsistent) {
  ServerOptions options;
  options.num_shards = 1;
  auto server = MakeServer(/*sensors=*/1, options);
  std::vector<std::future<Response>> burst;
  for (int i = 0; i < 16; ++i) burst.push_back(server->AsyncPredict(0));
  Response first = burst[0].get();
  ASSERT_TRUE(first.status.ok());
  for (std::size_t i = 1; i < burst.size(); ++i) {
    Response r = burst[i].get();
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.prediction.mean, first.prediction.mean);
    EXPECT_EQ(r.prediction.variance, first.prediction.variance);
  }
}

TEST(ServeSoakTest, ShutdownDrainsThenRejects) {
  ServerOptions options;
  options.num_shards = 2;
  auto server = MakeServer(/*sensors=*/4, options);
  std::vector<std::future<Response>> inflight;
  for (int i = 0; i < 32; ++i) inflight.push_back(server->AsyncPredict(i % 4));
  server->Shutdown();
  for (auto& f : inflight) {
    const Status st = f.get().status;  // drained: answered, not dropped
    EXPECT_TRUE(st.ok() || st.code() == StatusCode::kResourceExhausted)
        << st.ToString();
  }
  EXPECT_EQ(server->Predict(0).status().code(),
            StatusCode::kFailedPrecondition);
  server->Shutdown();  // idempotent
}

TEST(ServeSoakTest, UnknownSensorIsInvalidArgument) {
  auto server = MakeServer(/*sensors=*/2, {});
  EXPECT_EQ(server->Predict(99).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeSoakTest, SaveCheckpointUnderTraffic) {
  ServerOptions options;
  options.num_shards = 2;
  auto server = MakeServer(/*sensors=*/4, options);
  std::atomic<bool> stop{false};
  std::thread client([&] {
    int op = 0;
    while (!stop.load()) {
      server->AsyncPredict(op % 4).get();
      server->AsyncObserve(op % 4, std::sin(0.2 * op)).get();
      ++op;
    }
  });
  const std::string path = testing::TempDir() + "/smiler_serve_soak_ckpt.bin";
  EXPECT_TRUE(server->SaveCheckpoint(path).ok());
  stop.store(true);
  client.join();
  auto loaded = Checkpoint::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 4u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace serve
}  // namespace smiler
