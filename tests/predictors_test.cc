#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "index/knn_result.h"
#include "predictors/ar_predictor.h"
#include "predictors/ensemble.h"
#include "predictors/gp_predictor.h"
#include "predictors/predictor.h"

namespace smiler {
namespace predictors {
namespace {

// ---------------------------------------------------------- training set

TEST(MakeTrainingSetTest, ExtractsSegmentsAndTargets) {
  std::vector<double> series;
  for (int i = 0; i < 20; ++i) series.push_back(i);
  index::ItemQueryResult item;
  item.d = 3;
  item.neighbors = {{/*t=*/2, 0.1}, {/*t=*/7, 0.2}};
  auto set = MakeTrainingSet(series, item, /*k=*/2, /*h=*/2);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->x.rows(), 2u);
  EXPECT_EQ(set->x.cols(), 3u);
  // Segment [2,5): 2,3,4; y = series[2+3-1+2] = series[6] = 6.
  EXPECT_DOUBLE_EQ(set->x(0, 0), 2);
  EXPECT_DOUBLE_EQ(set->x(0, 2), 4);
  EXPECT_DOUBLE_EQ(set->y[0], 6);
  EXPECT_DOUBLE_EQ(set->y[1], 11);
}

TEST(MakeTrainingSetTest, TruncatesToAvailableNeighbors) {
  std::vector<double> series(30, 1.0);
  index::ItemQueryResult item;
  item.d = 4;
  item.neighbors = {{0, 0.1}, {5, 0.2}, {10, 0.3}};
  auto set = MakeTrainingSet(series, item, /*k=*/10, /*h=*/1);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->x.rows(), 3u);
}

TEST(MakeTrainingSetTest, RejectsInvalid) {
  std::vector<double> series(10, 0.0);
  index::ItemQueryResult empty;
  empty.d = 3;
  EXPECT_FALSE(MakeTrainingSet(series, empty, 2, 1).ok());
  index::ItemQueryResult item;
  item.d = 3;
  item.neighbors = {{0, 0.0}};
  EXPECT_FALSE(MakeTrainingSet(series, item, 0, 1).ok());
  EXPECT_FALSE(MakeTrainingSet(series, item, 2, 0).ok());
  // y index out of range: t=8, d=3 -> y at 8+2+1 = 11 >= 10.
  index::ItemQueryResult late;
  late.d = 3;
  late.neighbors = {{7, 0.0}};
  EXPECT_FALSE(MakeTrainingSet(series, late, 1, 1).ok());
}

// -------------------------------------------------------------------- AR

TEST(ArPredictorTest, MatchesMeanAndVariance) {
  KnnTrainingSet set;
  set.x = la::Matrix(4, 2);
  set.y = {1.0, 2.0, 3.0, 4.0};
  const Prediction p = AggregationPredict(set);
  EXPECT_DOUBLE_EQ(p.mean, 2.5);
  EXPECT_DOUBLE_EQ(p.variance, 1.25);
}

TEST(ArPredictorTest, ClampsDegenerateVariance) {
  KnnTrainingSet set;
  set.x = la::Matrix(3, 2);
  set.y = {2.0, 2.0, 2.0};
  const Prediction p = AggregationPredict(set);
  EXPECT_DOUBLE_EQ(p.mean, 2.0);
  EXPECT_GT(p.variance, 0.0);
}

// ------------------------------------------------------------------- GP

KnnTrainingSet SineTrainingSet(Rng* rng, int k, int d) {
  KnnTrainingSet set;
  set.x = la::Matrix(k, d);
  set.y.resize(k);
  for (int j = 0; j < k; ++j) {
    const double phase = rng->Uniform(0, 2 * M_PI);
    for (int p = 0; p < d; ++p) {
      set.x(j, p) = std::sin(phase + 0.3 * p);
    }
    set.y[j] = std::sin(phase + 0.3 * d);  // next value of the wave
  }
  return set;
}

TEST(GpCellPredictorTest, LearnsSmoothFunction) {
  Rng rng(90);
  KnnTrainingSet set = SineTrainingSet(&rng, 24, 8);
  GpCellPredictor cell;
  // Query: another phase of the same wave.
  std::vector<double> x0(8);
  const double phase = 1.234;
  for (int p = 0; p < 8; ++p) x0[p] = std::sin(phase + 0.3 * p);
  const double truth = std::sin(phase + 0.3 * 8);
  const Prediction p = cell.Predict(set, x0.data(), 30, 5);
  // The noise floor regularizes toward the neighbor mean, so allow some
  // shrinkage — but the GP must still clearly beat plain aggregation.
  EXPECT_NEAR(p.mean, truth, 0.3);
  EXPECT_LT(std::fabs(p.mean - truth),
            std::fabs(AggregationPredict(set).mean - truth));
  EXPECT_GT(p.variance, 0.0);
  ASSERT_TRUE(cell.kernel().has_value());
}

TEST(GpCellPredictorTest, WarmStartPersists) {
  Rng rng(91);
  KnnTrainingSet set = SineTrainingSet(&rng, 16, 6);
  GpCellPredictor cell;
  std::vector<double> x0(6, 0.1);
  cell.Predict(set, x0.data(), 20, 5);
  ASSERT_TRUE(cell.kernel().has_value());
  const auto params = cell.kernel()->log_params();
  cell.Predict(set, x0.data(), 20, 0);  // zero online steps: unchanged
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(cell.kernel()->log_params()[i], params[i]);
  }
  cell.Reset();
  EXPECT_FALSE(cell.kernel().has_value());
}

TEST(GpCellPredictorTest, DegenerateDataFallsBackToAr) {
  KnnTrainingSet set;
  set.x = la::Matrix(5, 3);  // identical all-zero inputs
  set.y = {1.0, 1.0, 1.0, 1.0, 1.0};
  GpCellPredictor cell;
  std::vector<double> x0(3, 0.0);
  const Prediction p = cell.Predict(set, x0.data(), 10, 5);
  EXPECT_TRUE(std::isfinite(p.mean));
  EXPECT_GT(p.variance, 0.0);
  EXPECT_NEAR(p.mean, 1.0, 0.2);
}

TEST(GpCellPredictorTest, SharedGramMatchesOwnedDistancesBitwise) {
  // The engine's cross-cell Gram reuse invariant: a cell fed the cached
  // pairwise squared distances (or a leading block of a larger cache)
  // must produce the exact prediction it would have computed on its own.
  Rng rng(93);
  KnnTrainingSet big = SineTrainingSet(&rng, 24, 8);
  const la::Matrix gram_full = gp::PairwiseSquaredDistances(big.x);
  std::vector<double> x0(8, 0.2);
  for (int k : {24, 12}) {
    KnnTrainingSet set;
    set.x = la::Matrix(k, 8);
    set.y.assign(big.y.begin(), big.y.begin() + k);
    for (int j = 0; j < k; ++j) {
      for (int p = 0; p < 8; ++p) set.x(j, p) = big.x(j, p);
    }
    GpCellPredictor with_gram;
    GpCellPredictor without;
    const la::ConstMatrixView view =
        la::ConstMatrixView(gram_full).Leading(static_cast<std::size_t>(k));
    // Cold step plus a warm-started online step must both agree.
    Prediction a = with_gram.Predict(set, x0.data(), 20, 5, &view);
    Prediction b = without.Predict(set, x0.data(), 20, 5);
    EXPECT_DOUBLE_EQ(a.mean, b.mean) << "k=" << k;
    EXPECT_DOUBLE_EQ(a.variance, b.variance) << "k=" << k;
    a = with_gram.Predict(set, x0.data(), 20, 5, &view);
    b = without.Predict(set, x0.data(), 20, 5);
    EXPECT_DOUBLE_EQ(a.mean, b.mean) << "warm k=" << k;
    EXPECT_DOUBLE_EQ(a.variance, b.variance) << "warm k=" << k;
    ASSERT_TRUE(with_gram.kernel().has_value());
    ASSERT_TRUE(without.kernel().has_value());
    for (int m = 0; m < gp::SeKernel::kNumParams; ++m) {
      EXPECT_DOUBLE_EQ(with_gram.kernel()->log_params()[m],
                       without.kernel()->log_params()[m]);
    }
  }
}

// ---------------------------------------------------------------- grid

TEST(PredictionGridTest, SetAndQuery) {
  PredictionGrid grid(2, 3);
  EXPECT_FALSE(grid.Has(1, 2));
  grid.Set(1, 2, Prediction{3.0, 0.5});
  EXPECT_TRUE(grid.Has(1, 2));
  EXPECT_DOUBLE_EQ(grid.At(1, 2).mean, 3.0);
  EXPECT_FALSE(grid.Has(0, 0));
}

// ------------------------------------------------------------- ensemble

Ensemble::Options DefaultOptions() {
  Ensemble::Options o;
  o.rows = 2;
  o.cols = 2;
  return o;
}

TEST(EnsembleTest, StartsUniformAndAwake) {
  Ensemble e(DefaultOptions());
  EXPECT_EQ(e.NumAwake(), 4);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      EXPECT_TRUE(e.IsAwake(i, j));
      EXPECT_DOUBLE_EQ(e.Weight(i, j), 0.25);
    }
  }
  EXPECT_DOUBLE_EQ(e.sleep_threshold(), 1.0 / 8.0);
}

TEST(EnsembleTest, CombineIsWeightedMomentMatch) {
  Ensemble e(DefaultOptions());
  PredictionGrid grid(2, 2);
  grid.Set(0, 0, Prediction{1.0, 1.0});
  grid.Set(0, 1, Prediction{3.0, 1.0});
  // Only two cells predict; weights renormalize to 0.5 each.
  const Prediction p = e.Combine(grid);
  EXPECT_DOUBLE_EQ(p.mean, 2.0);
  // var = E[sigma^2] + E[u^2] - (E[u])^2 = 1 + 5 - 4 = 2.
  EXPECT_DOUBLE_EQ(p.variance, 2.0);
}

TEST(EnsembleTest, EmptyGridGivesFallback) {
  Ensemble e(DefaultOptions());
  PredictionGrid grid(2, 2);
  const Prediction p = e.Combine(grid);
  EXPECT_DOUBLE_EQ(p.mean, 0.0);
  EXPECT_DOUBLE_EQ(p.variance, 1.0);
}

TEST(EnsembleTest, GoodPredictorGainsWeight) {
  Ensemble e(DefaultOptions());
  PredictionGrid grid(2, 2);
  for (int step = 0; step < 10; ++step) {
    grid = PredictionGrid(2, 2);
    grid.Set(0, 0, Prediction{0.0, 0.1});   // spot-on
    grid.Set(0, 1, Prediction{5.0, 0.1});   // badly off
    grid.Set(1, 0, Prediction{2.0, 10.0});  // vague
    grid.Set(1, 1, Prediction{-2.0, 10.0});
    e.Observe(0.0, grid);
  }
  EXPECT_GT(e.Weight(0, 0), 0.5);
  EXPECT_GT(e.Weight(0, 0), e.Weight(1, 0));
}

TEST(EnsembleTest, WeightsStayNormalized) {
  Ensemble e(DefaultOptions());
  Rng rng(92);
  for (int step = 0; step < 50; ++step) {
    PredictionGrid grid(2, 2);
    for (int i = 0; i < 2; ++i) {
      for (int j = 0; j < 2; ++j) {
        if (e.IsAwake(i, j)) {
          grid.Set(i, j, Prediction{rng.Normal(), 0.5 + rng.Uniform()});
        }
      }
    }
    e.Observe(rng.Normal(), grid);
    double sum = 0.0;
    for (int i = 0; i < 2; ++i) {
      for (int j = 0; j < 2; ++j) {
        if (e.IsAwake(i, j)) sum += e.Weight(i, j);
      }
    }
    ASSERT_NEAR(sum, 1.0, 1e-9) << "step " << step;
    ASSERT_GE(e.NumAwake(), 1);
  }
}

TEST(EnsembleTest, PersistentlyBadPredictorSleeps) {
  Ensemble e(DefaultOptions());
  for (int step = 0; step < 20; ++step) {
    PredictionGrid grid(2, 2);
    for (int i = 0; i < 2; ++i) {
      for (int j = 0; j < 2; ++j) {
        if (!e.IsAwake(i, j)) continue;
        const bool bad = (i == 1 && j == 1);
        grid.Set(i, j, Prediction{bad ? 100.0 : 0.0, 0.1});
      }
    }
    e.Observe(0.0, grid);
    if (!e.IsAwake(1, 1)) break;
  }
  EXPECT_FALSE(e.IsAwake(1, 1));
  EXPECT_EQ(e.NumAwake(), 3);
}

TEST(EnsembleTest, SleeperRecoversAndCounterDoubles) {
  Ensemble::Options o;
  o.rows = 1;
  o.cols = 2;
  Ensemble e(o);
  auto observe_bad_cell1 = [&] {
    PredictionGrid grid(1, 2);
    if (e.IsAwake(0, 0)) grid.Set(0, 0, Prediction{0.0, 0.1});
    if (e.IsAwake(0, 1)) grid.Set(0, 1, Prediction{50.0, 0.1});
    e.Observe(0.0, grid);
  };
  // Drive cell (0,1) to sleep (counter 1 => sleeps one step).
  int steps_to_sleep = 0;
  while (e.IsAwake(0, 1) && steps_to_sleep < 50) {
    observe_bad_cell1();
    ++steps_to_sleep;
  }
  ASSERT_FALSE(e.IsAwake(0, 1));
  const int counter_at_sleep = e.SleepCounter(0, 1);
  // One more observation: the sleeper recovers.
  observe_bad_cell1();
  EXPECT_TRUE(e.IsAwake(0, 1));
  // It predicts badly again, re-sleeps immediately, counter doubles.
  observe_bad_cell1();
  EXPECT_FALSE(e.IsAwake(0, 1));
  EXPECT_EQ(e.SleepCounter(0, 1), counter_at_sleep * 2);
}

TEST(EnsembleTest, SelfAdaptiveOffKeepsUniformWeights) {
  Ensemble::Options o = DefaultOptions();
  o.self_adaptive = false;
  Ensemble e(o);
  PredictionGrid grid(2, 2);
  grid.Set(0, 0, Prediction{0.0, 0.1});
  grid.Set(1, 1, Prediction{99.0, 0.1});
  e.Observe(0.0, grid);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      EXPECT_DOUBLE_EQ(e.Weight(i, j), 0.25);
      EXPECT_TRUE(e.IsAwake(i, j));
    }
  }
}

TEST(EnsembleTest, SleepDisabledKeepsEveryoneAwake) {
  Ensemble::Options o = DefaultOptions();
  o.sleep_and_recovery = false;
  Ensemble e(o);
  for (int step = 0; step < 30; ++step) {
    PredictionGrid grid(2, 2);
    grid.Set(0, 0, Prediction{0.0, 0.1});
    grid.Set(0, 1, Prediction{80.0, 0.1});
    grid.Set(1, 0, Prediction{80.0, 0.1});
    grid.Set(1, 1, Prediction{80.0, 0.1});
    e.Observe(0.0, grid);
  }
  EXPECT_EQ(e.NumAwake(), 4);
  EXPECT_GT(e.Weight(0, 0), 0.9);  // weights still adapt
}

TEST(EnsembleTest, MixtureLogDensityBracketsComponents) {
  Ensemble e(DefaultOptions());
  PredictionGrid grid(2, 2);
  grid.Set(0, 0, Prediction{0.0, 1.0});
  grid.Set(0, 1, Prediction{4.0, 1.0});
  const double at_zero = e.MixtureLogDensity(0.0, grid);
  const double at_two = e.MixtureLogDensity(2.0, grid);
  EXPECT_GT(at_zero, at_two);  // mass concentrated at the components
  EXPECT_TRUE(std::isfinite(at_zero));
}


TEST(EnsembleTest, MixtureLogDensityStableAtExtremes) {
  Ensemble e(DefaultOptions());
  PredictionGrid grid(2, 2);
  // Extremely sharp and extremely vague components together: the
  // log-sum-exp path must not overflow or lose the answer.
  grid.Set(0, 0, Prediction{0.0, 1e-12});
  grid.Set(0, 1, Prediction{0.0, 1e6});
  const double at_mode = e.MixtureLogDensity(0.0, grid);
  EXPECT_TRUE(std::isfinite(at_mode));
  EXPECT_GT(at_mode, 0.0);  // the sharp component dominates at its mode
  const double far = e.MixtureLogDensity(100.0, grid);
  EXPECT_TRUE(std::isfinite(far));
  EXPECT_LT(far, at_mode);
}

TEST(EnsembleTest, ObserveSurvivesZeroLikelihoodEverywhere) {
  Ensemble e(DefaultOptions());
  PredictionGrid grid(2, 2);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      grid.Set(i, j, Prediction{1000.0, 1e-12});  // density underflows
    }
  }
  e.Observe(0.0, grid);  // must not produce NaN weights
  double sum = 0.0;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      if (e.IsAwake(i, j)) {
        EXPECT_TRUE(std::isfinite(e.Weight(i, j)));
        sum += e.Weight(i, j);
      }
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(EnsembleTest, CalibrationScaleClampedAndMonotone) {
  Ensemble e(DefaultOptions());
  EXPECT_DOUBLE_EQ(e.variance_scale(), 1.0);
  // Persistent huge surprises drive the scale up to its clamp.
  for (int i = 0; i < 2000; ++i) {
    e.ObserveCalibration(10.0, Prediction{0.0, 0.01});
  }
  EXPECT_GE(e.variance_scale(), 49.0);
  EXPECT_LE(e.variance_scale(), 50.0);
  // Well-calibrated residuals bring it back down to the floor of 1.
  for (int i = 0; i < 5000; ++i) {
    e.ObserveCalibration(0.0, Prediction{0.0, 1.0});
  }
  EXPECT_NEAR(e.variance_scale(), 1.0, 0.2);
}

TEST(EnsembleTest, CalibrationDisabledWithoutSelfAdaptation) {
  Ensemble::Options o = DefaultOptions();
  o.self_adaptive = false;
  Ensemble e(o);
  for (int i = 0; i < 100; ++i) {
    e.ObserveCalibration(10.0, Prediction{0.0, 0.01});
  }
  EXPECT_DOUBLE_EQ(e.variance_scale(), 1.0);
}

TEST(EnsembleTest, CombineAppliesCalibrationScale) {
  Ensemble e(DefaultOptions());
  PredictionGrid grid(2, 2);
  grid.Set(0, 0, Prediction{1.0, 2.0});
  const Prediction before = e.Combine(grid);
  for (int i = 0; i < 500; ++i) {
    e.ObserveCalibration(5.0, Prediction{0.0, 0.1});
  }
  const Prediction after = e.Combine(grid);
  EXPECT_DOUBLE_EQ(before.mean, after.mean);
  EXPECT_GT(after.variance, before.variance * 10.0);
  EXPECT_DOUBLE_EQ(e.CombineRaw(grid).variance, before.variance);
}

}  // namespace
}  // namespace predictors
}  // namespace smiler
