#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <unordered_set>
#include <vector>

#include "chaos/fault.h"
#include "chaos/invariants.h"
#include "chaos/scenario.h"
#include "core/engine.h"
#include "core/manager.h"
#include "core/snapshot_codec.h"
#include "obs/metrics.h"
#include "simgpu/device.h"
#include "store/tiered_store.h"
#include "ts/datasets.h"

namespace smiler {
namespace chaos {
namespace {

FaultSchedule OnePoint(const std::string& point, double probability,
                       std::uint64_t seed = 7) {
  FaultSchedule schedule;
  schedule.seed = seed;
  FaultSpec spec;
  spec.probability = probability;
  schedule.points[point] = spec;
  return schedule;
}

/// Registry state never leaks across tests.
class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultRegistry::Global().Disarm(); }
};

TEST_F(ChaosTest, DecideIsPureAndSeeded) {
  // Same inputs, same verdict — the decision is a pure function.
  for (std::uint64_t hit = 0; hit < 64; ++hit) {
    EXPECT_EQ(FaultRegistry::Decide(42, "ckpt.write", hit, 0.3),
              FaultRegistry::Decide(42, "ckpt.write", hit, 0.3));
  }
  // Degenerate probabilities are exact, not approximate.
  for (std::uint64_t hit = 0; hit < 64; ++hit) {
    EXPECT_FALSE(FaultRegistry::Decide(42, "ckpt.write", hit, 0.0));
    EXPECT_TRUE(FaultRegistry::Decide(42, "ckpt.write", hit, 1.0));
  }
  // Seed and point both matter: verdict vectors must not be constant.
  int diff_seed = 0, diff_point = 0;
  for (std::uint64_t hit = 0; hit < 256; ++hit) {
    diff_seed += FaultRegistry::Decide(1, "a", hit, 0.5) !=
                 FaultRegistry::Decide(2, "a", hit, 0.5);
    diff_point += FaultRegistry::Decide(1, "a", hit, 0.5) !=
                  FaultRegistry::Decide(1, "b", hit, 0.5);
  }
  EXPECT_GT(diff_seed, 0);
  EXPECT_GT(diff_point, 0);
  // The firing rate tracks the probability (loose CLT bound).
  int fired = 0;
  for (std::uint64_t hit = 0; hit < 10000; ++hit) {
    fired += FaultRegistry::Decide(9, "simgpu.launch", hit, 0.1);
  }
  EXPECT_NEAR(fired / 10000.0, 0.1, 0.02);
}

TEST_F(ChaosTest, ShouldFireReplaysExactlyAcrossReconfigure) {
  FaultRegistry& reg = FaultRegistry::Global();
  const FaultSchedule schedule = OnePoint("ckpt.write", 0.25, 99);
  std::vector<bool> first;
  reg.Configure(schedule);
  for (int i = 0; i < 200; ++i) first.push_back(reg.ShouldFire("ckpt.write"));
  const std::vector<TriggerRecord> first_log = reg.TriggerLog();
  const std::uint64_t first_fp = reg.Fingerprint();
  ASSERT_FALSE(first_log.empty());

  reg.Configure(schedule);  // replay: counters and log reset
  std::vector<bool> second;
  for (int i = 0; i < 200; ++i) second.push_back(reg.ShouldFire("ckpt.write"));
  EXPECT_EQ(first, second);
  ASSERT_EQ(first_log.size(), reg.TriggerLog().size());
  for (std::size_t i = 0; i < first_log.size(); ++i) {
    EXPECT_EQ(first_log[i].point, reg.TriggerLog()[i].point);
    EXPECT_EQ(first_log[i].hit, reg.TriggerLog()[i].hit);
  }
  EXPECT_EQ(first_fp, reg.Fingerprint());
}

TEST_F(ChaosTest, DisarmedUnconfiguredAndPausedConsumeNoHits) {
  FaultRegistry& reg = FaultRegistry::Global();
  // Disarmed: no consumption at all.
  reg.Disarm();
  EXPECT_FALSE(reg.ShouldFire("ckpt.write"));
  reg.Configure(OnePoint("ckpt.write", 1.0));
  EXPECT_EQ(reg.HitCount("ckpt.write"), 0u);
  // Unconfigured point: armed registry still must not track it.
  EXPECT_FALSE(reg.ShouldFire("ckpt.rename"));
  EXPECT_EQ(reg.HitCount("ckpt.rename"), 0u);
  // Paused: harness-internal traffic leaves the hit sequence untouched,
  // so the post-pause firing pattern equals the uninterrupted one.
  reg.Configure(OnePoint("ckpt.write", 0.5, 123));
  std::vector<bool> uninterrupted;
  for (int i = 0; i < 100; ++i) {
    uninterrupted.push_back(reg.ShouldFire("ckpt.write"));
  }
  reg.Configure(OnePoint("ckpt.write", 0.5, 123));
  std::vector<bool> with_pause;
  for (int i = 0; i < 100; ++i) {
    if (i == 50) {
      ScopedPause pause;
      for (int j = 0; j < 37; ++j) {
        EXPECT_FALSE(reg.ShouldFire("ckpt.write"));
      }
    }
    with_pause.push_back(reg.ShouldFire("ckpt.write"));
  }
  EXPECT_EQ(uninterrupted, with_pause);
}

TEST_F(ChaosTest, SkipFirstAndMaxTriggersShapeTheSchedule) {
  FaultRegistry& reg = FaultRegistry::Global();
  FaultSchedule schedule;
  schedule.seed = 5;
  FaultSpec spec;
  spec.probability = 1.0;
  spec.skip_first = 3;
  spec.max_triggers = 2;
  schedule.points["serve.enqueue"] = spec;
  reg.Configure(schedule);
  std::vector<bool> fired;
  for (int i = 0; i < 10; ++i) fired.push_back(reg.ShouldFire("serve.enqueue"));
  const std::vector<bool> expect = {false, false, false, true, true,
                                    false, false, false, false, false};
  EXPECT_EQ(fired, expect);
  EXPECT_EQ(reg.TriggerCount("serve.enqueue"), 2u);
  EXPECT_EQ(reg.HitCount("serve.enqueue"), 10u);
}

TEST_F(ChaosTest, CatalogNamesAreUniqueAndDocumented) {
  const std::vector<FaultPointInfo>& catalog = KnownFaultPoints();
  EXPECT_GE(catalog.size(), 11u);
  std::unordered_set<std::string> names;
  for (const FaultPointInfo& info : catalog) {
    EXPECT_TRUE(names.insert(info.name).second)
        << "duplicate fault point " << info.name;
    EXPECT_GT(std::string(info.layer).size(), 0u) << info.name;
    EXPECT_GT(std::string(info.effect).size(), 0u) << info.name;
  }
}

TEST_F(ChaosTest, MacroCompilesToConfiguredBehavior) {
  FaultRegistry::Global().Configure(OnePoint("simgpu.launch", 1.0));
#if defined(SMILER_ENABLE_CHAOS)
  EXPECT_TRUE(SMILER_FAULT_TRIGGERED("simgpu.launch"));
#else
  // Zero-overhead build: the macro is the literal `false`, whatever the
  // registry says.
  EXPECT_FALSE(SMILER_FAULT_TRIGGERED("simgpu.launch"));
#endif
}

// ---------------------------------------------------------------------------
// InvariantChecker against a real engine.

SmilerConfig SmallConfig() {
  SmilerConfig cfg;
  cfg.rho = 4;
  cfg.omega = 8;
  cfg.elv = {16, 24};
  cfg.ekv = {4, 8};
  return cfg;
}

core::SensorEngine StreamedEngine(simgpu::Device* device, int history_points,
                                  int steps) {
  auto data = ts::MakeDataset(
      {ts::DatasetKind::kRoad, 1, history_points + steps, 64, 77, true});
  const std::vector<double>& full = (*data)[0].values();
  ts::TimeSeries history(
      "s0", std::vector<double>(full.begin(), full.begin() + history_points));
  auto engine =
      core::SensorEngine::Create(device, history, SmallConfig(),
                                 core::PredictorKind::kAr);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  for (int i = 0; i < steps; ++i) {
    EXPECT_TRUE(engine->Predict(nullptr).ok());
    EXPECT_TRUE(engine->Observe(full[history_points + i]).ok());
  }
  return std::move(*engine);
}

TEST_F(ChaosTest, HealthyStreamedEngineHasNoViolations) {
  simgpu::Device device;
  // Enough steps that the posting ring wraps and the head-region rows
  // (stale-but-valid LBEQ underestimates) are exercised: the deep
  // recompute check must accept them, not flag them.
  core::SensorEngine engine = StreamedEngine(&device, 64, 30);
  std::vector<std::string> violations;
  InvariantChecker::CheckEngineSnapshot("healthy", engine.Snapshot(),
                                        &violations);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST_F(ChaosTest, CheckerDetectsCraftedCorruption) {
  simgpu::Device device;
  core::SensorEngine engine = StreamedEngine(&device, 64, 12);
  const core::EngineSnapshot clean = engine.Snapshot();

  {  // A silently corrupted posting entry (bound raised = candidates
     // wrongly pruned) is exactly what the deep check exists to catch.
    core::EngineSnapshot snap = clean;
    snap.index.arena[snap.index.arena.size() / 2] += 1.0;
    std::vector<std::string> v;
    EXPECT_GT(InvariantChecker::CheckEngineSnapshot("arena", snap, &v), 0);
  }
  {  // Envelope drift away from the recompute.
    core::EngineSnapshot snap = clean;
    snap.index.env_c_upper[3] += 0.5;
    std::vector<std::string> v;
    EXPECT_GT(InvariantChecker::CheckEngineSnapshot("env", snap, &v), 0);
  }
  {  // Threshold seed pointing outside the series.
    core::EngineSnapshot snap = clean;
    ASSERT_FALSE(snap.index.prev_knn.empty());
    ASSERT_FALSE(snap.index.prev_knn[0].empty());
    snap.index.prev_knn[0][0].t =
        static_cast<long>(snap.index.series.size());
    std::vector<std::string> v;
    EXPECT_GT(InvariantChecker::CheckEngineSnapshot("knn", snap, &v), 0);
  }
  {  // Pending forecast whose target is already in the past.
    core::EngineSnapshot snap = clean;
    snap.pending.resize(1);
    snap.pending[0].target_time = 0;
    snap.pending[0].grid = predictors::PredictionGrid(
        static_cast<int>(snap.config.ekv.size()),
        static_cast<int>(snap.config.elv.size()));
    std::vector<std::string> v;
    EXPECT_GT(InvariantChecker::CheckEngineSnapshot("pending", snap, &v), 0);
  }
  // And the clean snapshot still passes (the corruptions above were on
  // copies).
  std::vector<std::string> v;
  EXPECT_EQ(InvariantChecker::CheckEngineSnapshot("clean", clean, &v), 0)
      << v.front();
}

TEST_F(ChaosTest, CheckpointRoundTripIsByteStable) {
  simgpu::Device device;
  core::SensorEngine engine = StreamedEngine(&device, 64, 8);
  std::vector<std::string> v;
  EXPECT_EQ(InvariantChecker::CheckCheckpointRoundTrip(
                {engine.Snapshot()}, testing::TempDir(), &v),
            0)
      << v.front();
}

// ---------------------------------------------------------------------------
// Tiered-storage invariants (ChaosStoreTest surface).

TEST_F(ChaosTest, QuantizedRoundTripPassesLowerBoundModeOnly) {
  simgpu::Device device;
  core::SensorEngine engine = StreamedEngine(&device, 64, 12);
  const core::EngineSnapshot exact = engine.Snapshot();
  const std::string blob = core::SerializeSnapshotBlob(
      {exact}, core::ArenaEncoding::kQuantized16);
  auto parsed = core::ParseSnapshotBlob(blob.data(), blob.size(), "mem");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 1u);

  // The decoded arena holds round-DOWN 16-bit reconstructions: every
  // entry is still a valid lower bound, so the tolerant mode accepts it.
  std::vector<std::string> tolerant;
  EXPECT_EQ(InvariantChecker::CheckEngineSnapshot(
                "quantized", (*parsed)[0], &tolerant,
                ArenaCheckMode::kQuantizedLowerBound),
            0)
      << tolerant.front();

  // The strict mode must flag exactly the quantization drift (whenever
  // any entry actually moved — with 16-bit levels over a real spread,
  // some always does).
  if ((*parsed)[0].index.arena != exact.index.arena) {
    std::vector<std::string> strict;
    EXPECT_GT(InvariantChecker::CheckEngineSnapshot(
                  "strict", (*parsed)[0], &strict, ArenaCheckMode::kExact),
              0);
  }
}

TEST_F(ChaosTest, StoreResidencyCheckTracksEvictAndRehydrate) {
  simgpu::Device device;
  auto data = ts::MakeDataset({ts::DatasetKind::kRoad, 2, 96, 64, 5, true});
  ASSERT_TRUE(data.ok());
  auto manager = core::MultiSensorManager::Create(&device, *data, SmallConfig(),
                                                  core::PredictorKind::kAr);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();

  store::StoreOptions options;
  options.dir = testing::TempDir() + "/chaos_store_residency";
  options.budget_bytes = std::numeric_limits<std::size_t>::max();
  auto store_or = store::TieredStateStore::Create(options);
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  store::TieredStateStore& store = **store_or;
  ASSERT_TRUE(store.Bind(&*manager, &device).ok());

  std::vector<std::string> v;
  EXPECT_EQ(InvariantChecker::CheckStoreResidency("fresh", store, &v), 0)
      << v.front();

  // COLD: the manager slot empties, a segment appears, bookkeeping agrees.
  ASSERT_TRUE(store.Evict(1).ok());
  EXPECT_FALSE(manager->resident(1));
  EXPECT_FALSE(store.resident(1));
  EXPECT_EQ(InvariantChecker::CheckStoreResidency("cold", store, &v), 0)
      << v.back();

  // RESIDENT again via a rehydrating Pin; pinned slots stay consistent.
  ASSERT_TRUE(store.Pin(1).ok());
  EXPECT_TRUE(manager->resident(1));
  EXPECT_EQ(InvariantChecker::CheckStoreResidency("pinned", store, &v), 0)
      << v.back();
  store.Unpin(1);
  EXPECT_EQ(InvariantChecker::CheckStoreResidency("unpinned", store, &v), 0)
      << v.back();
}

// ---------------------------------------------------------------------------
// ScenarioRunner determinism.

TEST_F(ChaosTest, ScenarioReplaysBitIdentically) {
  ScenarioOptions options;
  options.seed = 11;
  options.num_sensors = 3;
  options.history_points = 64;
  options.steps = 10;
  options.check_every = 5;
  options.scratch_dir = testing::TempDir();
  // In the default (chaos-off) build only the driver-side ts.anomaly
  // point is live; give it a high rate so the anomaly path is exercised.
  options.schedule = OnePoint("ts.anomaly", 0.3);
  ScenarioResult a = ScenarioRunner(options).Run();
  ScenarioResult b = ScenarioRunner(options).Run();

  ASSERT_TRUE(a.status.ok()) << a.status.ToString();
  EXPECT_TRUE(a.violations.empty()) << a.violations.front();
  EXPECT_GT(a.faults_fired, 0u);  // anomalies actually flowed
  EXPECT_GT(a.status_counts["InvalidArgument"], 0u);  // NaN/inf rejected

  // Bit-for-bit replay: fingerprint, trigger log, outcome histogram.
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.status_counts, b.status_counts);
  ASSERT_EQ(a.trigger_log.size(), b.trigger_log.size());
  for (std::size_t i = 0; i < a.trigger_log.size(); ++i) {
    EXPECT_EQ(a.trigger_log[i].point, b.trigger_log[i].point);
    EXPECT_EQ(a.trigger_log[i].hit, b.trigger_log[i].hit);
  }
  EXPECT_EQ(a.quarantined, b.quarantined);
  EXPECT_EQ(a.ops, b.ops);
}

TEST_F(ChaosTest, ScenarioPollsLiveStatsWithoutPerturbingReplay) {
  ScenarioOptions options;
  options.seed = 11;
  options.num_sensors = 3;
  options.history_points = 64;
  options.steps = 10;
  options.check_every = 5;
  options.schedule = OnePoint("ts.anomaly", 0.3);
  options.stats_port = 0;  // ephemeral endpoint, polled mid-storm
  ScenarioResult with_stats = ScenarioRunner(options).Run();
  ASSERT_TRUE(with_stats.status.ok()) << with_stats.status.ToString();
  EXPECT_TRUE(with_stats.violations.empty());
  // Every endpoint answered at least once while the storm was running.
  EXPECT_TRUE(with_stats.stats_probe_ok);
  // /healthz flips to 503 exactly when a sensor was quarantined: in the
  // chaos build engine-level faults quarantine sensors and the endpoint
  // must surface it; in the default build ts.anomaly only yields
  // InvalidArgument rejections, so the fleet stays healthy and so does
  // the endpoint.
  EXPECT_EQ(with_stats.healthz_degraded_observed,
            with_stats.quarantined > 0);

  // Probing is observation-only: the fingerprint of an identical run
  // with the endpoint disabled is bit-identical.
  options.stats_port = -1;
  ScenarioResult without = ScenarioRunner(options).Run();
  ASSERT_TRUE(without.status.ok());
  EXPECT_EQ(with_stats.fingerprint, without.fingerprint);
  EXPECT_EQ(with_stats.status_counts, without.status_counts);
  EXPECT_FALSE(without.stats_probe_ok);  // never polled
}

TEST_F(ChaosTest, ScenarioWithStoreSpillReplaysBitIdentically) {
  ScenarioOptions options;
  options.seed = 31;
  options.num_sensors = 3;
  options.history_points = 64;
  options.steps = 10;
  options.check_every = 5;
  options.scratch_dir = testing::TempDir();
  // Demote a sensor every other step: the following batch rehydrates it
  // through the quantized cold tier, and the sweeps run in
  // kQuantizedLowerBound mode plus the store-residency agreement check.
  options.store_spill_every = 2;
  // Arm both store fault points hard (live only in chaos builds; the
  // default build still exercises the healthy spill/rehydrate cycle).
  FaultSchedule schedule;
  FaultSpec spec;
  spec.probability = 0.25;
  schedule.points["store.spill_write"] = spec;
  schedule.points["store.rehydrate_read_short"] = spec;
  options.schedule = schedule;

  const std::uint64_t evictions_before =
      obs::Registry::Global().GetCounter("store.evictions").value();
  ScenarioResult a = ScenarioRunner(options).Run();
  ScenarioResult b = ScenarioRunner(options).Run();

  ASSERT_TRUE(a.status.ok()) << a.status.ToString();
  EXPECT_TRUE(a.violations.empty()) << a.violations.front();
  // The cadence actually demoted sensors (not every attempt must succeed
  // under a torn-write storm, but across two runs some must).
  EXPECT_GT(obs::Registry::Global().GetCounter("store.evictions").value(),
            evictions_before);

  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.status_counts, b.status_counts);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.quarantined, b.quarantined);
  ASSERT_EQ(a.trigger_log.size(), b.trigger_log.size());
  for (std::size_t i = 0; i < a.trigger_log.size(); ++i) {
    EXPECT_EQ(a.trigger_log[i].point, b.trigger_log[i].point);
    EXPECT_EQ(a.trigger_log[i].hit, b.trigger_log[i].hit);
  }
}

TEST_F(ChaosTest, ScenarioNodeDeferIsBenignAndReplaysBitIdentically) {
  // graph.node_defer adversarially reschedules the predict task graph's
  // ready nodes. Two contracts under test: (a) the armed scenario replays
  // bit-identically (the defer decisions are pure functions of seed and
  // per-point hit index, and every graph claim is deterministic in the
  // serial driver), and (b) the fault is benign — the client-observable
  // outcome digest matches an unperturbed run exactly.
  ScenarioOptions options;
  options.seed = 47;
  options.num_sensors = 3;
  options.history_points = 64;
  options.steps = 10;
  options.check_every = 5;
  options.scratch_dir = testing::TempDir();
  // Demotions add rehydrate leaf nodes to the chains, so the defer also
  // claims the store-IO node shape.
  options.store_spill_every = 2;
  options.schedule = OnePoint("graph.node_defer", 0.5);
  ScenarioResult a = ScenarioRunner(options).Run();
  ScenarioResult b = ScenarioRunner(options).Run();
  ASSERT_TRUE(a.status.ok()) << a.status.ToString();
  EXPECT_TRUE(a.violations.empty()) << a.violations.front();
#if defined(SMILER_ENABLE_CHAOS)
  EXPECT_GT(a.faults_fired, 0u);  // the executor actually consumed defers
#endif

  // (a) Bit-for-bit replay, defer trigger log included.
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.value_fingerprint, b.value_fingerprint);
  EXPECT_EQ(a.status_counts, b.status_counts);
  ASSERT_EQ(a.trigger_log.size(), b.trigger_log.size());
  for (std::size_t i = 0; i < a.trigger_log.size(); ++i) {
    EXPECT_EQ(a.trigger_log[i].point, b.trigger_log[i].point);
    EXPECT_EQ(a.trigger_log[i].hit, b.trigger_log[i].hit);
  }

  // (b) Benign across adversarial schedules: ops, outcomes, and
  // prediction bits are identical with the executor unperturbed.
  options.schedule = FaultSchedule{};
  ScenarioResult clean = ScenarioRunner(options).Run();
  ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();
  EXPECT_TRUE(clean.violations.empty());
  EXPECT_EQ(a.value_fingerprint, clean.value_fingerprint);
  EXPECT_EQ(a.status_counts, clean.status_counts);
  EXPECT_EQ(a.ops, clean.ops);
  EXPECT_EQ(a.quarantined, clean.quarantined);
}

TEST_F(ChaosTest, ScenarioDifferentSeedsDiverge) {
  ScenarioOptions options;
  options.num_sensors = 2;
  options.history_points = 64;
  options.steps = 6;
  options.check_every = 3;
  options.schedule = OnePoint("ts.anomaly", 0.3);
  options.seed = 21;
  ScenarioResult a = ScenarioRunner(options).Run();
  options.seed = 22;
  ScenarioResult b = ScenarioRunner(options).Run();
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

}  // namespace
}  // namespace chaos
}  // namespace smiler
