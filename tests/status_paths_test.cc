// Exercises every error-constructor site in src/serve and src/index: each
// distinct Status a client can receive is produced at least once, with
// the exact code asserted. Checkpoint corruptions are crafted bytewise
// against the SMLRCKPT layout (header magic[8] + version u32 + count u32,
// then per engine: payload_size u64, FNV-1a checksum u64, payload).

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/manager.h"
#include "index/smiler_index.h"
#include "serve/checkpoint.h"
#include "serve/server.h"
#include "simgpu/device.h"
#include "ts/datasets.h"

namespace smiler {
namespace {

SmilerConfig SmallConfig() {
  SmilerConfig cfg;
  cfg.rho = 4;
  cfg.omega = 8;
  cfg.elv = {16, 24};
  cfg.ekv = {4, 8};
  return cfg;
}

ts::TimeSeries MakeSensor(int points, int seed = 3) {
  auto data = ts::MakeDataset(
      {ts::DatasetKind::kRoad, 1, points, 64, static_cast<uint64_t>(seed),
       true});
  return (*data)[0];
}

std::string TempPath(const char* tag) {
  return testing::TempDir() + "/smiler_status_" + tag + ".ckpt";
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::uint64_t Fnv1a(const char* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

// Byte offsets of the single-engine layout.
constexpr std::size_t kCountOffset = 12;
constexpr std::size_t kPayloadSizeOffset = 16;
constexpr std::size_t kChecksumOffset = 24;
constexpr std::size_t kPayloadOffset = 32;

void PatchU64(std::string* blob, std::size_t offset, std::uint64_t v) {
  std::memcpy(blob->data() + offset, &v, sizeof(v));
}

/// Re-stamps payload_size and checksum after editing the payload in place
/// so only the *intended* corruption is visible to Load.
void RestampSingleEngine(std::string* blob) {
  const std::size_t payload_size = blob->size() - kPayloadOffset;
  PatchU64(blob, kPayloadSizeOffset, payload_size);
  PatchU64(blob, kChecksumOffset,
           Fnv1a(blob->data() + kPayloadOffset, payload_size));
}

class StatusPathsTest : public ::testing::Test {
 protected:
  /// A small server fleet (2 sensors, 1 shard) for the serve paths.
  Result<std::unique_ptr<serve::PredictionServer>> MakeServer(
      std::size_t queue_capacity = 16) {
    auto manager = core::MultiSensorManager::Create(
        &device_, {MakeSensor(64, 1), MakeSensor(64, 2)}, SmallConfig(),
        core::PredictorKind::kAr);
    if (!manager.ok()) return manager.status();
    serve::ServerOptions options;
    options.num_shards = 1;
    options.queue_capacity = queue_capacity;
    return serve::PredictionServer::Create(std::move(*manager), options);
  }

  simgpu::Device device_;
};

// ---------------------------------------------------------------------------
// serve::PredictionServer

TEST_F(StatusPathsTest, ServerCreateRejectsBadOptions) {
  auto make = [&](serve::ServerOptions options) {
    auto manager = core::MultiSensorManager::Create(
        &device_, {MakeSensor(64)}, SmallConfig(), core::PredictorKind::kAr);
    EXPECT_TRUE(manager.ok());
    return serve::PredictionServer::Create(std::move(*manager), options)
        .status();
  };
  serve::ServerOptions no_shards;
  no_shards.num_shards = 0;
  EXPECT_EQ(make(no_shards).code(), StatusCode::kInvalidArgument);
  serve::ServerOptions no_queue;
  no_queue.queue_capacity = 0;
  EXPECT_EQ(make(no_queue).code(), StatusCode::kInvalidArgument);
}

TEST_F(StatusPathsTest, UnknownSensorIsInvalidArgument) {
  auto server = MakeServer();
  ASSERT_TRUE(server.ok());
  EXPECT_EQ((*server)->Predict(99).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*server)->Observe(99, 0.5).code(), StatusCode::kInvalidArgument);
}

TEST_F(StatusPathsTest, ShutdownRejectsWithFailedPrecondition) {
  auto server = MakeServer();
  ASSERT_TRUE(server.ok());
  (*server)->Shutdown();
  EXPECT_EQ((*server)->Predict(0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*server)->SaveCheckpoint(TempPath("after_shutdown")).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(StatusPathsTest, FullQueueShedsWithResourceExhausted) {
  auto server = MakeServer(/*queue_capacity=*/1);
  ASSERT_TRUE(server.ok());
  // Flood a capacity-1 queue from this thread; the worker can't drain as
  // fast as we enqueue forever, so at least one admission must fail.
  std::vector<std::future<serve::Response>> futures;
  int rejected = 0;
  for (int i = 0; i < 200; ++i) {
    futures.push_back((*server)->AsyncPredict(0));
  }
  for (auto& f : futures) {
    const Status s = f.get().status;
    if (!s.ok()) {
      EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
      EXPECT_NE(s.message().find("queue is full"), std::string::npos);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
}

TEST_F(StatusPathsTest, ExpiredDeadlineIsShed) {
  auto server = MakeServer();
  ASSERT_TRUE(server.ok());
  const serve::Deadline expired =
      serve::Clock::now() - std::chrono::seconds(5);
  EXPECT_EQ((*server)->Predict(0, expired).status().code(),
            StatusCode::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// serve::Checkpoint — Save failures

TEST_F(StatusPathsTest, SaveIntoMissingDirectoryFails) {
  auto engine = core::SensorEngine::Create(&device_, MakeSensor(64),
                                           SmallConfig(),
                                           core::PredictorKind::kAr);
  ASSERT_TRUE(engine.ok());
  const Status s = serve::Checkpoint::Save(
      testing::TempDir() + "/no_such_dir_xyz/ckpt.bin", {engine->Snapshot()});
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("cannot open"), std::string::npos);
}

TEST_F(StatusPathsTest, RenameOntoDirectoryFails) {
  auto engine = core::SensorEngine::Create(&device_, MakeSensor(64),
                                           SmallConfig(),
                                           core::PredictorKind::kAr);
  ASSERT_TRUE(engine.ok());
  // The final rename target is an existing non-empty directory, so the
  // tmp write succeeds but the atomic publish step fails.
  const std::string dir = testing::TempDir() + "/smiler_rename_target";
  std::remove(dir.c_str());
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  WriteAll(dir + "/occupant", "x");
  const Status s = serve::Checkpoint::Save(dir, {engine->Snapshot()});
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("rename"), std::string::npos);
  std::remove((dir + "/occupant").c_str());
  std::remove((dir + ".tmp").c_str());
  ::rmdir(dir.c_str());
}

// ---------------------------------------------------------------------------
// serve::Checkpoint — Load failures (crafted corruptions)

class CheckpointCorruptionTest : public StatusPathsTest {
 protected:
  void SetUp() override {
    auto engine = core::SensorEngine::Create(&device_, MakeSensor(64),
                                             SmallConfig(),
                                             core::PredictorKind::kAr);
    ASSERT_TRUE(engine.ok());
    // One Predict leaves a pending forecast in the snapshot, so the
    // pending-grid parse guard is reachable.
    ASSERT_TRUE(engine->Predict(nullptr).ok());
    path_ = TempPath("corrupt");
    ASSERT_TRUE(serve::Checkpoint::Save(path_, {engine->Snapshot()}).ok());
    blob_ = ReadAll(path_);
    ASSERT_GT(blob_.size(), kPayloadOffset);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  StatusCode LoadCode(const std::string& bytes) {
    WriteAll(path_, bytes);
    return serve::Checkpoint::Load(path_).status().code();
  }

  std::string path_;
  std::string blob_;
};

TEST_F(CheckpointCorruptionTest, MissingFileIsNotFound) {
  EXPECT_EQ(serve::Checkpoint::Load(TempPath("never_written"))
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(CheckpointCorruptionTest, BadMagicIsInvalidArgument) {
  std::string bytes = blob_;
  bytes[0] = 'X';
  EXPECT_EQ(LoadCode(bytes), StatusCode::kInvalidArgument);
  EXPECT_EQ(LoadCode("short"), StatusCode::kInvalidArgument);
}

TEST_F(CheckpointCorruptionTest, FutureVersionIsFailedPrecondition) {
  std::string bytes = blob_;
  const std::uint32_t future = 0x7fffffff;
  std::memcpy(bytes.data() + 8, &future, sizeof(future));
  EXPECT_EQ(LoadCode(bytes), StatusCode::kFailedPrecondition);
}

TEST_F(CheckpointCorruptionTest, TruncationIsInvalidArgument) {
  // Cut mid-payload: the declared payload_size outruns the file.
  EXPECT_EQ(LoadCode(blob_.substr(0, blob_.size() / 2)),
            StatusCode::kInvalidArgument);
  // Cut mid-per-engine-header.
  EXPECT_EQ(LoadCode(blob_.substr(0, kPayloadSizeOffset + 3)),
            StatusCode::kInvalidArgument);
}

TEST_F(CheckpointCorruptionTest, BitrotFailsTheChecksum) {
  std::string bytes = blob_;
  bytes[bytes.size() - 1] ^= 0x40;  // flip one payload bit, keep checksum
  const auto loaded = [&] {
    WriteAll(path_, bytes);
    return serve::Checkpoint::Load(path_);
  }();
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
}

TEST_F(CheckpointCorruptionTest, TrailingBytesAreRejected) {
  EXPECT_EQ(LoadCode(blob_ + std::string(4, '\0')),
            StatusCode::kInvalidArgument);
}

TEST_F(CheckpointCorruptionTest, UnknownPredictorKindIsRejected) {
  // The kind byte follows 5 i32s, 5 flag bytes, and the ELV/EKV i32
  // vectors (u64 count + 4 bytes each entry) — compute, don't hardcode.
  const SmilerConfig cfg = SmallConfig();
  const std::size_t kind_offset = kPayloadOffset + 5 * 4 + 5 +
                                  (8 + 4 * cfg.elv.size()) +
                                  (8 + 4 * cfg.ekv.size());
  std::string bytes = blob_;
  ASSERT_LT(kind_offset, bytes.size());
  bytes[kind_offset] = 7;  // no such PredictorKind
  RestampSingleEngine(&bytes);
  const auto loaded = [&] {
    WriteAll(path_, bytes);
    return serve::Checkpoint::Load(path_);
  }();
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("predictor kind"),
            std::string::npos);
}

TEST_F(CheckpointCorruptionTest, PayloadTrailingBytesAreRejected) {
  // Grow the payload by one byte and restamp size + checksum: the outer
  // frame is consistent, so the *engine parser's* trailing-bytes guard
  // must fire.
  std::string bytes = blob_ + std::string(1, '\0');
  RestampSingleEngine(&bytes);
  const auto loaded = [&] {
    WriteAll(path_, bytes);
    return serve::Checkpoint::Load(path_);
  }();
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("trailing"), std::string::npos);
}

TEST_F(CheckpointCorruptionTest, PendingGridBombIsRejected) {
  // The engine was saved with one pending forecast; its grid rows field
  // sits 41 bytes before the payload end for a rows x cols grid:
  // ... rows i32, cols i32, rows*cols*(2 f64 + u8), raw 2 f64. Claim an
  // absurd row count — the parser's allocation guard must reject it
  // instead of allocating.
  const SmilerConfig cfg = SmallConfig();
  const std::size_t cells = cfg.ekv.size() * cfg.elv.size();
  const std::size_t tail = 2 * 4 + cells * (2 * 8 + 1) + 2 * 8;
  const std::size_t rows_offset = blob_.size() - tail;
  std::string bytes = blob_;
  const std::int32_t bomb = 0x7fffffff;
  std::memcpy(bytes.data() + rows_offset, &bomb, sizeof(bomb));
  RestampSingleEngine(&bytes);
  const auto loaded = [&] {
    WriteAll(path_, bytes);
    return serve::Checkpoint::Load(path_);
  }();
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos);
}

TEST_F(CheckpointCorruptionTest, EngineCountBeyondFileIsRejected) {
  std::string bytes = blob_;
  const std::uint32_t many = 5;
  std::memcpy(bytes.data() + kCountOffset, &many, sizeof(many));
  EXPECT_EQ(LoadCode(bytes), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// index::SmilerIndex

TEST_F(StatusPathsTest, BuildRejectsBadInputs) {
  EXPECT_EQ(index::SmilerIndex::Build(nullptr, MakeSensor(64), SmallConfig())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  SmilerConfig bad = SmallConfig();
  bad.omega = 0;
  EXPECT_EQ(index::SmilerIndex::Build(&device_, MakeSensor(64), bad)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(index::SmilerIndex::Build(&device_, MakeSensor(16), SmallConfig())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(StatusPathsTest, RestoreRejectsEveryInconsistency) {
  const SmilerConfig cfg = SmallConfig();
  auto index = index::SmilerIndex::Build(&device_, MakeSensor(64), cfg);
  ASSERT_TRUE(index.ok());
  const index::IndexSnapshot clean = index->Snapshot();
  auto restore_code = [&](index::IndexSnapshot snap) {
    return index::SmilerIndex::Restore(&device_, cfg, std::move(snap))
        .status()
        .code();
  };
  EXPECT_EQ(index::SmilerIndex::Restore(nullptr, cfg, clean).status().code(),
            StatusCode::kInvalidArgument);
  {
    index::IndexSnapshot snap = clean;
    snap.series.resize(8);
    EXPECT_EQ(restore_code(std::move(snap)), StatusCode::kInvalidArgument);
  }
  {
    index::IndexSnapshot snap = clean;
    snap.env_c_upper.pop_back();
    EXPECT_EQ(restore_code(std::move(snap)), StatusCode::kInvalidArgument);
  }
  {
    index::IndexSnapshot snap = clean;
    snap.env_mq_lower.push_back(0.0);
    EXPECT_EQ(restore_code(std::move(snap)), StatusCode::kInvalidArgument);
  }
  {
    index::IndexSnapshot snap = clean;
    snap.head = 10000;
    EXPECT_EQ(restore_code(std::move(snap)), StatusCode::kInvalidArgument);
  }
  {
    index::IndexSnapshot snap = clean;
    snap.cols += 1;
    EXPECT_EQ(restore_code(std::move(snap)), StatusCode::kInvalidArgument);
  }
  {
    index::IndexSnapshot snap = clean;
    snap.prev_knn.pop_back();
    EXPECT_EQ(restore_code(std::move(snap)), StatusCode::kInvalidArgument);
  }
  {
    index::IndexSnapshot snap = clean;
    snap.prev_knn[0].push_back(
        index::Neighbor{static_cast<long>(snap.series.size()), 0.0});
    EXPECT_EQ(restore_code(std::move(snap)), StatusCode::kInvalidArgument);
  }
  {
    index::IndexSnapshot snap = clean;
    snap.arena.pop_back();  // rows * 2 * stride no longer holds
    EXPECT_EQ(restore_code(std::move(snap)), StatusCode::kInvalidArgument);
  }
  // The unmutated snapshot still restores (the guards above fired for
  // the right reason, not because the fixture was broken).
  EXPECT_TRUE(index::SmilerIndex::Restore(&device_, cfg, clean).ok());
}

TEST_F(StatusPathsTest, SearchRejectsBadArguments) {
  auto index = index::SmilerIndex::Build(&device_, MakeSensor(64),
                                         SmallConfig());
  ASSERT_TRUE(index.ok());
  index::SuffixSearchOptions opts;
  opts.k = 0;
  EXPECT_EQ(index->Search(opts, nullptr).status().code(),
            StatusCode::kInvalidArgument);
  opts.k = 2;
  opts.reserve_horizon = -1;
  EXPECT_EQ(index->Search(opts, nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(StatusPathsTest, TinyDeviceBudgetExhausts) {
  simgpu::Device tiny(/*memory_budget_bytes=*/1024);
  const auto status =
      index::SmilerIndex::Build(&tiny, MakeSensor(64), SmallConfig())
          .status();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST_F(StatusPathsTest, LaunchRejectsBadGeometry) {
  EXPECT_EQ(device_.Launch("bad", -1, 8, [](simgpu::BlockContext&) {}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(device_.Launch("bad", 1, 0, [](simgpu::BlockContext&) {}).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace smiler
