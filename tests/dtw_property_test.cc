// Property tests of the DTW stack on structured (seasonal / quantized)
// inputs and through the simulated-GPU execution path — complements the
// random-walk sweeps in dtw_test.cc.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/math_utils.h"
#include "common/rng.h"
#include "dtw/dtw.h"
#include "dtw/envelope.h"
#include "dtw/lower_bounds.h"
#include "simgpu/device.h"

namespace smiler {
namespace dtw {
namespace {

std::vector<double> Seasonal(Rng* rng, int n, int period, double noise) {
  std::vector<double> v(n);
  for (int i = 0; i < n; ++i) {
    v[i] = std::sin(2 * M_PI * i / period) + noise * rng->Normal();
  }
  return v;
}

TEST(DtwPropertyTest, DtwNeverExceedsSquaredEuclidean) {
  // The diagonal path is always admissible, so banded DTW is bounded by
  // the squared Euclidean distance for any rho.
  Rng rng(300);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 8 + static_cast<int>(rng.UniformInt(80));
    std::vector<double> q = Seasonal(&rng, n, 24, 0.3);
    std::vector<double> c = Seasonal(&rng, n, 24, 0.3);
    double euclid = 0.0;
    for (int i = 0; i < n; ++i) euclid += SquaredDist(q[i], c[i]);
    for (int rho : {0, 3, 8}) {
      ASSERT_LE(BandedDtw(q.data(), c.data(), n, rho), euclid + 1e-9);
    }
  }
}

TEST(DtwPropertyTest, DtwIsNonNegativeAndZeroOnlyOnWarpableMatch) {
  Rng rng(301);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 4 + static_cast<int>(rng.UniformInt(60));
    std::vector<double> q = Seasonal(&rng, n, 16, 0.2);
    std::vector<double> c = Seasonal(&rng, n, 16, 0.2);
    const double d = BandedDtw(q.data(), c.data(), n, 5);
    ASSERT_GE(d, 0.0);
  }
  // Exact self-match is zero even through warping.
  std::vector<double> q = Seasonal(&rng, 50, 16, 0.0);
  EXPECT_DOUBLE_EQ(BandedDtw(q.data(), q.data(), 50, 5), 0.0);
}

TEST(DtwPropertyTest, PhaseShiftWithinBandIsForgiven) {
  // A clean sinusoid shifted by s samples: DTW with rho >= s is ~0 in the
  // interior; Euclidean (rho = 0) pays the full phase penalty.
  const int n = 96;
  const int shift = 4;
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (int i = 0; i < n; ++i) {
    a[i] = std::sin(2 * M_PI * i / 32.0);
    b[i] = std::sin(2 * M_PI * (i + shift) / 32.0);
  }
  const double banded = BandedDtw(a.data(), b.data(), n, 8);
  const double euclid = BandedDtw(a.data(), b.data(), n, 0);
  EXPECT_LT(banded, 0.1 * euclid);
}

TEST(DtwPropertyTest, QuantizedSeriesTiesHandled) {
  // Integer-valued (car-park-like) series produce exact distance ties;
  // everything must stay exact and finite.
  Rng rng(302);
  std::vector<double> q(64);
  std::vector<double> c(64);
  for (int i = 0; i < 64; ++i) {
    q[i] = static_cast<double>(rng.UniformInt(4));
    c[i] = static_cast<double>(rng.UniformInt(4));
  }
  const double ref = BandedDtw(q.data(), c.data(), 64, 8);
  EXPECT_DOUBLE_EQ(CompressedDtw(q.data(), c.data(), 64, 8), ref);
  const Envelope env_q = ComputeEnvelope(q, 8);
  EXPECT_LE(Lbeq(env_q, c.data(), 64), ref + 1e-12);
}

TEST(DtwPropertyTest, CompressedDtwRunsInSharedMemoryArena) {
  // The Appendix E claim: query + compressed matrix fit in the 64 KiB
  // shared-memory arena for the paper's parameters (d = 96, rho = 8).
  simgpu::Device device;
  Rng rng(303);
  std::vector<double> q = Seasonal(&rng, 96, 32, 0.1);
  std::vector<double> c = Seasonal(&rng, 96, 32, 0.1);
  const double expected = BandedDtw(q.data(), c.data(), 96, 8);
  double got = -1.0;
  auto st = device.Launch(1, 16, [&](simgpu::BlockContext& ctx) {
    double* shq = ctx.shared->Alloc<double>(96);
    ASSERT_NE(shq, nullptr);
    for (int i = 0; i < 96; ++i) shq[i] = q[i];
    double* scratch =
        ctx.shared->Alloc<double>(CompressedDtwScratchSize(8));
    ASSERT_NE(scratch, nullptr);
    got = CompressedDtw(shq, c.data(), 96, 8, scratch);
  });
  ASSERT_TRUE(st.ok());
  EXPECT_DOUBLE_EQ(got, expected);
}

class SeasonalLowerBoundTest : public ::testing::TestWithParam<int> {};

TEST_P(SeasonalLowerBoundTest, BoundsHoldOnStructuredData) {
  const int period = GetParam();
  Rng rng(304 + period);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> q = Seasonal(&rng, 96, period, 0.1);
    std::vector<double> c = Seasonal(&rng, 96, period, 0.1);
    const Envelope env_q = ComputeEnvelope(q, 8);
    const Envelope env_c = ComputeEnvelope(c, 8);
    const double dtw = BandedDtw(q.data(), c.data(), 96, 8);
    ASSERT_LE(Lben(env_q, env_c, q.data(), c.data(), 96), dtw + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Periods, SeasonalLowerBoundTest,
                         ::testing::Values(8, 16, 32, 96));

TEST(DtwPropertyTest, EarlyAbandonMonotoneInCutoff) {
  // Raising the cutoff can only move the result from inf to the exact
  // distance, never change the finite value.
  Rng rng(305);
  std::vector<double> q = Seasonal(&rng, 64, 16, 0.3);
  std::vector<double> c = Seasonal(&rng, 64, 16, 0.3);
  const double exact = BandedDtw(q.data(), c.data(), 64, 8);
  double prev = kInf;
  for (double f : {0.2, 0.5, 0.9, 1.1, 2.0}) {
    const double got = EarlyAbandonDtw(q.data(), c.data(), 64, 8, exact * f);
    if (std::isfinite(got)) EXPECT_DOUBLE_EQ(got, exact);
    if (std::isfinite(prev)) EXPECT_TRUE(std::isfinite(got));
    prev = got;
  }
}

TEST(DtwPropertyTest, CompressedEarlyAbandonExactnessContract) {
  // The cutoff-taking CompressedDtw variant used by the verify kernel
  // promises: whenever the true distance is <= cutoff it returns a value
  // bitwise-identical to the non-abandoning kernel, and whenever it
  // abandons it returns +inf and the true distance provably exceeds the
  // cutoff. Sweep random series, band widths and cutoffs on both sides of
  // the exact distance.
  Rng rng(306);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 8 + static_cast<int>(rng.UniformInt(90));
    const int rho = static_cast<int>(rng.UniformInt(12));
    std::vector<double> q(n);
    std::vector<double> c(n);
    for (int i = 0; i < n; ++i) {
      q[i] = rng.Normal();
      c[i] = std::sin(2 * M_PI * i / 16.0) + 0.5 * rng.Normal();
    }
    std::vector<double> scratch(CompressedDtwScratchSize(rho));
    const double exact = CompressedDtw(q.data(), c.data(), n, rho);
    for (double f : {0.0, 0.3, 0.7, 0.999, 1.0, 1.001, 1.5, 3.0}) {
      const double cutoff = exact * f;
      const double got = CompressedDtwEarlyAbandon(q.data(), c.data(), n,
                                                   rho, cutoff,
                                                   scratch.data());
      if (exact <= cutoff) {
        // Must complete and agree bit-for-bit with the full kernel.
        ASSERT_EQ(got, exact) << "n=" << n << " rho=" << rho << " f=" << f;
      } else {
        // Either it completed (same value) or abandoned (+inf); in both
        // cases the returned value is >= the true distance > cutoff.
        ASSERT_TRUE(got == exact || got == kInf)
            << "n=" << n << " rho=" << rho << " f=" << f << " got=" << got;
        ASSERT_GT(got, cutoff);
      }
    }
  }
}

TEST(DtwPropertyTest, BatchedEarlyAbandonKeepsExactnessContractPerLane) {
  // The native backend's 4-lane batched verify kernel inherits the scalar
  // exactness contract lane by lane: each lane's result is bitwise the
  // scalar CompressedDtwEarlyAbandon value for its own candidate and
  // cutoff, even when neighboring lanes abandon at different columns.
  Rng rng(307);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 8 + static_cast<int>(rng.UniformInt(90));
    const int rho = static_cast<int>(rng.UniformInt(12));
    std::vector<double> q(n);
    for (int i = 0; i < n; ++i) q[i] = rng.Normal();
    std::vector<std::vector<double>> cands(kDtwBatchLanes,
                                           std::vector<double>(n));
    const double* lanes[kDtwBatchLanes];
    for (int l = 0; l < kDtwBatchLanes; ++l) {
      for (int i = 0; i < n; ++i) {
        cands[l][i] = std::sin(2 * M_PI * i / 16.0) + 0.5 * rng.Normal();
      }
      lanes[l] = cands[l].data();
    }
    std::vector<double> scratch(CompressedDtwScratchSize(rho));
    std::vector<double> batch_scratch(CompressedDtwBatchScratchSize(rho));
    double exact[kDtwBatchLanes];
    for (int l = 0; l < kDtwBatchLanes; ++l) {
      exact[l] = CompressedDtw(q.data(), lanes[l], n, rho, scratch.data());
    }
    // Sweep cutoffs spanning all lanes' exact distances so every mix of
    // {completed, abandoned} lanes occurs across trials.
    for (int pivot = 0; pivot < kDtwBatchLanes; ++pivot) {
      for (double f : {0.0, 0.7, 1.0, 1.5}) {
        const double cutoff = exact[pivot] * f;
        double out[kDtwBatchLanes];
        CompressedDtwEarlyAbandonBatch(q.data(), lanes, n, rho, cutoff, out,
                                       batch_scratch.data());
        for (int l = 0; l < kDtwBatchLanes; ++l) {
          if (exact[l] <= cutoff) {
            ASSERT_EQ(out[l], exact[l])
                << "lane=" << l << " pivot=" << pivot << " f=" << f;
          } else {
            ASSERT_TRUE(out[l] == exact[l] || out[l] == kInf)
                << "lane=" << l << " got=" << out[l];
            ASSERT_GT(out[l], cutoff);
          }
        }
      }
    }
  }
}

TEST(DtwPropertyTest, ConstantSeriesDistanceIsScaledOffset) {
  // Two constant series: every alignment costs the same; DTW = d * diff^2.
  std::vector<double> a(40, 1.0);
  std::vector<double> b(40, 3.5);
  const double expected = 40 * SquaredDist(1.0, 3.5);
  EXPECT_DOUBLE_EQ(BandedDtw(a.data(), b.data(), 40, 8), expected);
  EXPECT_DOUBLE_EQ(CompressedDtw(a.data(), b.data(), 40, 8), expected);
}

}  // namespace
}  // namespace dtw
}  // namespace smiler
