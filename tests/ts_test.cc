#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/math_utils.h"
#include "ts/datasets.h"
#include "ts/series.h"

namespace smiler {
namespace ts {
namespace {

TEST(SeriesTest, BasicAccessors) {
  TimeSeries s("sensor-1", {1.0, 2.0, 3.0});
  EXPECT_EQ(s.sensor_id(), "sensor-1");
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  s.Append(4.0);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s[3], 4.0);
}

TEST(SeriesTest, SegmentViewCoversRequestedRange) {
  TimeSeries s("x", {0, 10, 20, 30, 40, 50});
  auto seg = s.Segment(2, 3);
  ASSERT_TRUE(seg.ok());
  EXPECT_EQ(seg->length, 3);
  EXPECT_EQ(seg->start, 2);
  EXPECT_EQ(seg->end_time(), 4);
  EXPECT_DOUBLE_EQ((*seg)[0], 20);
  EXPECT_DOUBLE_EQ((*seg)[2], 40);
}

TEST(SeriesTest, SegmentOutOfRangeFails) {
  TimeSeries s("x", {1, 2, 3});
  EXPECT_FALSE(s.Segment(-1, 2).ok());
  EXPECT_FALSE(s.Segment(2, 2).ok());
  EXPECT_FALSE(s.Segment(0, 0).ok());
  EXPECT_TRUE(s.Segment(0, 3).ok());
}

TEST(SeriesTest, SuffixSegmentEndsAtRequestedTime) {
  TimeSeries s("x", {0, 1, 2, 3, 4, 5, 6, 7});
  auto seg = s.SuffixSegment(7, 3);  // the paper's x_{0,d} at t0 = 7
  ASSERT_TRUE(seg.ok());
  EXPECT_EQ(seg->start, 5);
  EXPECT_DOUBLE_EQ((*seg)[0], 5);
  EXPECT_DOUBLE_EQ((*seg)[2], 7);
}

TEST(ZNormalizeTest, ProducesZeroMeanUnitVariance) {
  std::vector<double> v{3, 7, 1, 9, 4, 4, 2, 8};
  auto [mean, stddev] = ZNormalize(&v);
  EXPECT_GT(stddev, 0.0);
  EXPECT_NEAR(Mean(v), 0.0, 1e-12);
  EXPECT_NEAR(Variance(v), 1.0, 1e-9);
  EXPECT_NEAR(mean, 4.75, 1e-12);
}

TEST(ZNormalizeTest, ConstantSeriesBecomesZeros) {
  std::vector<double> v{5, 5, 5, 5};
  ZNormalize(&v);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(ZNormalizeTest, RoundTripsViaReturnedMoments) {
  std::vector<double> original{3, 7, 1, 9};
  std::vector<double> v = original;
  auto [mean, stddev] = ZNormalize(&v);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i] * stddev + mean, original[i], 1e-12);
  }
}

TEST(ZNormalizedTest, KeepsSensorId) {
  TimeSeries s("abc", {1, 2, 3, 4});
  TimeSeries z = ZNormalized(s);
  EXPECT_EQ(z.sensor_id(), "abc");
  EXPECT_EQ(z.size(), 4u);
}

// --------------------------------------------------------------- datasets

TEST(DatasetTest, KindNames) {
  EXPECT_STREQ(DatasetKindName(DatasetKind::kRoad), "ROAD");
  EXPECT_STREQ(DatasetKindName(DatasetKind::kMall), "MALL");
  EXPECT_STREQ(DatasetKindName(DatasetKind::kNet), "NET");
}

TEST(DatasetTest, MakeDatasetShapes) {
  DatasetSpec spec;
  spec.kind = DatasetKind::kMall;
  spec.num_sensors = 5;
  spec.points_per_sensor = 1000;
  auto data = MakeDataset(spec);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 5u);
  for (const auto& s : *data) EXPECT_EQ(s.size(), 1000u);
  EXPECT_EQ((*data)[0].sensor_id(), "MALL-0");
}

TEST(DatasetTest, ZNormalizedByDefault) {
  DatasetSpec spec;
  spec.kind = DatasetKind::kNet;
  spec.num_sensors = 2;
  spec.points_per_sensor = 2000;
  auto data = MakeDataset(spec);
  ASSERT_TRUE(data.ok());
  for (const auto& s : *data) {
    EXPECT_NEAR(Mean(s.values()), 0.0, 1e-9);
    EXPECT_NEAR(Variance(s.values()), 1.0, 1e-6);
  }
}

TEST(DatasetTest, DeterministicForSameSeed) {
  DatasetSpec spec;
  spec.num_sensors = 2;
  spec.points_per_sensor = 512;
  auto a = MakeDataset(spec);
  auto b = MakeDataset(spec);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)[1].values(), (*b)[1].values());
}

TEST(DatasetTest, DifferentSensorsDiffer) {
  DatasetSpec spec;
  spec.num_sensors = 2;
  spec.points_per_sensor = 512;
  auto data = MakeDataset(spec);
  ASSERT_TRUE(data.ok());
  EXPECT_NE((*data)[0].values(), (*data)[1].values());
}

TEST(DatasetTest, RejectsBadSpecs) {
  DatasetSpec spec;
  spec.num_sensors = 0;
  EXPECT_FALSE(MakeDataset(spec).ok());
  spec = DatasetSpec{};
  spec.points_per_sensor = 1;
  EXPECT_FALSE(MakeDataset(spec).ok());
  spec = DatasetSpec{};
  spec.samples_per_day = 2;
  EXPECT_FALSE(MakeDataset(spec).ok());
}

// Daily seasonality check: the MALL generator must correlate strongly at a
// one-day lag (the paper's "seasonal patterns"), ROAD less so.
double LagCorrelation(const std::vector<double>& v, int lag) {
  const int n = static_cast<int>(v.size()) - lag;
  double m1 = 0, m2 = 0;
  for (int i = 0; i < n; ++i) {
    m1 += v[i];
    m2 += v[i + lag];
  }
  m1 /= n;
  m2 /= n;
  double num = 0, d1 = 0, d2 = 0;
  for (int i = 0; i < n; ++i) {
    num += (v[i] - m1) * (v[i + lag] - m2);
    d1 += (v[i] - m1) * (v[i] - m1);
    d2 += (v[i + lag] - m2) * (v[i + lag] - m2);
  }
  return num / std::sqrt(d1 * d2);
}

TEST(DatasetTest, MallIsMoreSeasonalThanRoad) {
  const int day = 96;
  const int n = day * 40;
  auto mall = GenerateSensor(DatasetKind::kMall, 0, n, day, 1);
  auto road = GenerateSensor(DatasetKind::kRoad, 0, n, day, 1);
  const double mall_corr = LagCorrelation(mall, day);
  const double road_corr = LagCorrelation(road, day);
  EXPECT_GT(mall_corr, 0.7);
  EXPECT_GT(mall_corr, road_corr);
}

TEST(DatasetTest, NetIsSeasonal) {
  const int day = 96;
  auto net = GenerateSensor(DatasetKind::kNet, 3, day * 40, day, 1);
  EXPECT_GT(LagCorrelation(net, day), 0.5);
}

TEST(DatasetTest, RoadValuesAreOccupancyRates) {
  auto road = GenerateSensor(DatasetKind::kRoad, 1, 5000, 96, 2);
  for (double v : road) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

}  // namespace
}  // namespace ts
}  // namespace smiler
