// Property tests for the blocked/batched la kernels against the scalar
// reference implementations (la/reference.h): random SPD systems across a
// size sweep that straddles the Cholesky block size (including 1x1 and
// non-multiple-of-block dimensions), agreement to 1e-12, and the
// diag-only inverse against the full inverse's diagonal. These are the
// tests scripts/check.sh replays under ASan+UBSan.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "la/cholesky.h"
#include "la/matrix.h"
#include "la/reference.h"

namespace smiler {
namespace la {
namespace {

// Straddles Cholesky::kBlockSize (128): scalar path below, one partial
// block boundary at 129/200, a full panel plus remainder at 257.
const std::size_t kSizes[] = {1, 2, 3, 5, 8, 16, 31, 33,
                              63, 64, 65, 100, 129, 200, 257};

Matrix RandomMatrix(Rng* rng, std::size_t rows, std::size_t cols) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng->Normal();
  }
  return m;
}

Matrix RandomSpd(Rng* rng, std::size_t n) {
  // A = B B^T / n + I is SPD and well conditioned at every test size.
  Matrix b = RandomMatrix(rng, n, n);
  Matrix a = b.MatMul(b.Transposed());
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) *= inv_n;
  }
  a.AddToDiagonal(1.0);
  return a;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      m = std::max(m, std::fabs(a(i, j) - b(i, j)));
    }
  }
  return m;
}

TEST(LaPropertyTest, BlockedCholeskyMatchesReference) {
  Rng rng(101);
  for (std::size_t n : kSizes) {
    Matrix a = RandomSpd(&rng, n);
    Matrix ref = a;
    ASSERT_TRUE(reference::CholeskyFactorUnblocked(&ref)) << "n=" << n;
    auto chol = Cholesky::Factor(a);
    ASSERT_TRUE(chol.ok()) << "n=" << n;
    EXPECT_DOUBLE_EQ(chol->jitter(), 0.0) << "n=" << n;
    EXPECT_LE(MaxAbsDiff(chol->L(), ref), 1e-12) << "n=" << n;
  }
}

TEST(LaPropertyTest, BlockedCholeskyIsBitwiseIdenticalBelowBlockSize) {
  // At or below the block size the factorization must not merely agree —
  // it runs the strict-order scalar kernel, so it is bitwise the seed
  // algorithm. This is what keeps the ensemble GP path (k <= 32)
  // reproducible across the blocking rewrite.
  Rng rng(102);
  for (std::size_t n : {1u, 7u, 32u, 64u, 128u}) {
    Matrix a = RandomSpd(&rng, n);
    Matrix ref = a;
    ASSERT_TRUE(reference::CholeskyFactorUnblocked(&ref));
    auto chol = Cholesky::Factor(a);
    ASSERT_TRUE(chol.ok());
    EXPECT_EQ(MaxAbsDiff(chol->L(), ref), 0.0) << "n=" << n;
  }
}

TEST(LaPropertyTest, TiledMatMulMatchesReference) {
  Rng rng(103);
  const std::size_t dims[] = {1, 2, 3, 5, 17, 64, 65, 130};
  for (std::size_t m : dims) {
    for (std::size_t k : {1ul, 7ul, 96ul}) {
      for (std::size_t n : {1ul, 5ul, 33ul}) {
        Matrix a = RandomMatrix(&rng, m, k);
        Matrix b = RandomMatrix(&rng, k, n);
        // Exercise the removed zero-skip branch's semantics: sprinkle
        // exact zeros into A.
        for (std::size_t i = 0; i < m; ++i) {
          for (std::size_t j = 0; j < k; j += 3) a(i, j) = 0.0;
        }
        EXPECT_LE(MaxAbsDiff(a.MatMul(b), reference::MatMul(a, b)), 1e-12)
            << m << "x" << k << "x" << n;
      }
    }
  }
}

TEST(LaPropertyTest, MultiRhsSolveMatchesColumnwiseReference) {
  Rng rng(104);
  for (std::size_t n : kSizes) {
    Matrix a = RandomSpd(&rng, n);
    auto chol = Cholesky::Factor(a);
    ASSERT_TRUE(chol.ok());
    // Multiple horizons' worth of right-hand sides through one pass.
    Matrix b = RandomMatrix(&rng, n, 7);
    const Matrix batched = chol->SolveMatrix(b);
    const Matrix columnwise = reference::SolveMatrixColumnwise(*chol, b);
    // Identical per-element arithmetic order: exact agreement.
    EXPECT_EQ(MaxAbsDiff(batched, columnwise), 0.0) << "n=" << n;
  }
}

TEST(LaPropertyTest, SolveMatrixInPlaceMatchesSolveMatrix) {
  Rng rng(105);
  Matrix a = RandomSpd(&rng, 40);
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  Matrix b = RandomMatrix(&rng, 40, 3);
  Matrix in_place = b;
  chol->SolveMatrixInPlace(&in_place);
  EXPECT_EQ(MaxAbsDiff(in_place, chol->SolveMatrix(b)), 0.0);
}

TEST(LaPropertyTest, InverseDiagonalMatchesFullInverse) {
  Rng rng(106);
  for (std::size_t n : kSizes) {
    Matrix a = RandomSpd(&rng, n);
    auto chol = Cholesky::Factor(a);
    ASSERT_TRUE(chol.ok());
    const Matrix inv = chol->Inverse();
    const std::vector<double> diag = chol->InverseDiagonal();
    ASSERT_EQ(diag.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(diag[i], inv(i, i), 1e-12 * (1.0 + std::fabs(inv(i, i))))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(LaPropertyTest, InverseSatisfiesDefinition) {
  Rng rng(107);
  for (std::size_t n : {1ul, 65ul, 129ul}) {
    Matrix a = RandomSpd(&rng, n);
    auto chol = Cholesky::Factor(a);
    ASSERT_TRUE(chol.ok());
    EXPECT_TRUE(a.MatMul(chol->Inverse())
                    .ApproxEquals(Matrix::Identity(n), 1e-9))
        << "n=" << n;
  }
}

TEST(LaPropertyTest, MatVecMatchesReference) {
  Rng rng(108);
  for (std::size_t n : {1ul, 33ul, 130ul}) {
    Matrix a = RandomMatrix(&rng, n, n + 3);
    std::vector<double> x(n + 3);
    for (double& v : x) v = rng.Normal();
    const std::vector<double> got = a.MatVec(x);
    const std::vector<double> want = reference::MatVec(a, x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(got[i], want[i]);
  }
}

TEST(LaPropertyTest, TransposedRoundTripsAcrossTiles) {
  Rng rng(109);
  Matrix a = RandomMatrix(&rng, 65, 130);
  const Matrix t = a.Transposed();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      ASSERT_DOUBLE_EQ(t(j, i), a(i, j));
    }
  }
  EXPECT_TRUE(t.Transposed().ApproxEquals(a, 0.0));
}

TEST(LaPropertyTest, ConstMatrixViewLeadingBlocksShareStorage) {
  Rng rng(110);
  Matrix a = RandomMatrix(&rng, 8, 8);
  ConstMatrixView full(a);
  for (std::size_t k : {1ul, 3ul, 8ul}) {
    ConstMatrixView lead = full.Leading(k);
    EXPECT_EQ(lead.rows(), k);
    EXPECT_EQ(lead.cols(), k);
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(lead.Row(i), a.Row(i));  // same pointers, no copy
      for (std::size_t j = 0; j < k; ++j) {
        EXPECT_DOUBLE_EQ(lead(i, j), a(i, j));
      }
    }
  }
}

}  // namespace
}  // namespace la
}  // namespace smiler
