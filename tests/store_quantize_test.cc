// Property suite for the 16-bit quantized arena encoding that backs the
// cold tier (core::ArenaEncoding::kQuantized16). Two properties carry the
// whole tiered-storage correctness argument:
//
//  1. Monotone round-down: for ANY finite arena contents, every decoded
//     entry satisfies decoded <= exact — a quantized lower bound is still
//     a lower bound, so filter-and-verify only ever verifies MORE
//     candidates, never prunes a true neighbor.
//  2. kNN stream equivalence: an engine rebuilt from a quantized snapshot
//     mid-stream returns kNN sets and predictions bitwise-identical to a
//     twin that never round-tripped, across continued appends (the
//     streamed mirror of index_equivalence_test).
//
// Plus the guardrails: non-finite arenas fall back to the raw encoding
// bitwise, and raw-mode blobs stay byte-stable across re-serialization.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/snapshot_codec.h"
#include "simgpu/device.h"
#include "ts/series.h"

namespace smiler {
namespace {

SmilerConfig SmallConfig() {
  SmilerConfig cfg;
  cfg.rho = 4;
  cfg.omega = 8;
  cfg.elv = {16, 24};
  cfg.ekv = {4, 8};
  cfg.horizon = 1;
  return cfg;
}

std::vector<double> RandomWalk(Rng* rng, int n) {
  std::vector<double> v(n);
  double x = 0.0;
  for (int i = 0; i < n; ++i) {
    x += rng->Normal();
    v[i] = x;
  }
  return v;
}

core::SensorEngine MakeEngine(simgpu::Device* device, Rng* rng, int history,
                              int streamed) {
  ts::TimeSeries series("q", RandomWalk(rng, history));
  auto engine = core::SensorEngine::Create(device, series, SmallConfig(),
                                           core::PredictorKind::kAr);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  for (int i = 0; i < streamed; ++i) {
    EXPECT_TRUE(engine->Predict().ok());
    EXPECT_TRUE(engine->Observe(rng->Normal()).ok());
  }
  return std::move(*engine);
}

core::EngineSnapshot QuantizedRoundTrip(const core::EngineSnapshot& snap) {
  const std::string blob =
      core::SerializeSnapshotBlob({snap}, core::ArenaEncoding::kQuantized16);
  auto parsed = core::ParseSnapshotBlob(blob.data(), blob.size(), "mem");
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->size(), 1u);
  return std::move((*parsed)[0]);
}

/// Walks the valid (non-padding) arena entries: rows x {LBEQ, LBEC} x
/// cols, in the head-rotated physical layout the index stores.
template <typename Fn>
void ForEachArenaEntry(const core::EngineSnapshot& snap, Fn&& fn) {
  const long stride = snap.index.arena_stride;
  const long cols = snap.index.cols;
  const std::size_t rows = snap.index.arena.size() /
                           (2 * static_cast<std::size_t>(stride));
  for (std::size_t row = 0; row < rows; ++row) {
    for (int half = 0; half < 2; ++half) {
      const std::size_t base =
          row * 2 * static_cast<std::size_t>(stride) +
          static_cast<std::size_t>(half) * static_cast<std::size_t>(stride);
      for (long r = 0; r < cols; ++r) {
        fn(base + static_cast<std::size_t>(r));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Property 1: decoded <= exact, always.

TEST(StoreQuantizeTest, DecodedEntriesNeverExceedExactOnRealEngines) {
  simgpu::Device device;
  for (std::uint64_t seed : {1u, 7u, 42u, 1234u}) {
    Rng rng(seed);
    core::SensorEngine engine =
        MakeEngine(&device, &rng, 120, 8 + static_cast<int>(seed % 13));
    const core::EngineSnapshot exact = engine.Snapshot();
    const core::EngineSnapshot decoded = QuantizedRoundTrip(exact);
    ASSERT_EQ(decoded.index.arena.size(), exact.index.arena.size());

    std::size_t moved = 0;
    ForEachArenaEntry(exact, [&](std::size_t i) {
      EXPECT_LE(decoded.index.arena[i], exact.index.arena[i])
          << "seed " << seed << " arena[" << i << "]";
      moved += decoded.index.arena[i] != exact.index.arena[i];
    });
    // The encoding is lossy on real spreads — if nothing ever moves the
    // test is vacuous, not passing.
    EXPECT_GT(moved, 0u) << "seed " << seed;

    // Everything outside the arena round-trips exactly: series,
    // envelopes, prev_knn threshold seeds (tau seeding must stay exact
    // for the kNN-equivalence argument).
    EXPECT_EQ(decoded.index.series, exact.index.series);
    EXPECT_EQ(decoded.index.env_c_upper, exact.index.env_c_upper);
    EXPECT_EQ(decoded.index.env_c_lower, exact.index.env_c_lower);
    EXPECT_EQ(decoded.index.env_mq_upper, exact.index.env_mq_upper);
    EXPECT_EQ(decoded.index.env_mq_lower, exact.index.env_mq_lower);
    ASSERT_EQ(decoded.index.prev_knn.size(), exact.index.prev_knn.size());
    for (std::size_t i = 0; i < exact.index.prev_knn.size(); ++i) {
      EXPECT_EQ(decoded.index.prev_knn[i], exact.index.prev_knn[i]);
    }
  }
}

TEST(StoreQuantizeTest, DecodedEntriesNeverExceedExactOnAdversarialArenas) {
  simgpu::Device device;
  Rng rng(99);
  core::SensorEngine engine = MakeEngine(&device, &rng, 96, 4);
  const core::EngineSnapshot base = engine.Snapshot();

  // Synthetic fills chosen to stress the fixed-point math: flat rows
  // (step == 0), huge spreads, tiny spreads around a large offset
  // (catastrophic cancellation in (hi - lo) / 65535), and mixtures.
  for (int variant = 0; variant < 5; ++variant) {
    core::EngineSnapshot snap = base;
    Rng fill(1000 + variant);
    ForEachArenaEntry(snap, [&](std::size_t i) {
      double v = 0.0;
      switch (variant) {
        case 0: v = 3.25; break;                          // constant row
        case 1: v = fill.Uniform() * 1e12; break;         // huge spread
        case 2: v = 1e9 + fill.Uniform() * 1e-6; break;   // tiny spread
        case 3: v = fill.Uniform() < 0.5 ? 0.0 : fill.Uniform(); break;
        default: v = std::exp(20.0 * (fill.Uniform() - 0.5)); break;
      }
      snap.index.arena[i] = v;
    });
    const core::EngineSnapshot decoded = QuantizedRoundTrip(snap);
    ASSERT_EQ(decoded.index.arena.size(), snap.index.arena.size());
    ForEachArenaEntry(snap, [&](std::size_t i) {
      ASSERT_LE(decoded.index.arena[i], snap.index.arena[i])
          << "variant " << variant << " arena[" << i << "]";
      ASSERT_TRUE(std::isfinite(decoded.index.arena[i]));
    });
  }
}

TEST(StoreQuantizeTest, NonFiniteArenaFallsBackToRawBitwise) {
  simgpu::Device device;
  Rng rng(5);
  core::SensorEngine engine = MakeEngine(&device, &rng, 96, 4);
  core::EngineSnapshot snap = engine.Snapshot();
  snap.index.arena[snap.index.arena.size() / 3] =
      std::numeric_limits<double>::quiet_NaN();

  const std::string blob =
      core::SerializeSnapshotBlob({snap}, core::ArenaEncoding::kQuantized16);
  auto parsed = core::ParseSnapshotBlob(blob.data(), blob.size(), "mem");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // The whole arena came back raw: bitwise equal, NaN preserved.
  const std::vector<double>& got = (*parsed)[0].index.arena;
  ASSERT_EQ(got.size(), snap.index.arena.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const std::uint64_t a = *reinterpret_cast<const std::uint64_t*>(
        &snap.index.arena[i]);
    const std::uint64_t b = *reinterpret_cast<const std::uint64_t*>(&got[i]);
    ASSERT_EQ(a, b) << "arena[" << i << "]";
  }
}

TEST(StoreQuantizeTest, RawModeStaysByteStableAcrossReserialization) {
  simgpu::Device device;
  Rng rng(8);
  core::SensorEngine engine = MakeEngine(&device, &rng, 96, 6);
  const core::EngineSnapshot snap = engine.Snapshot();
  const std::string a =
      core::SerializeSnapshotBlob({snap}, core::ArenaEncoding::kRaw);
  auto parsed = core::ParseSnapshotBlob(a.data(), a.size(), "mem");
  ASSERT_TRUE(parsed.ok());
  const std::string b =
      core::SerializeSnapshotBlob(*parsed, core::ArenaEncoding::kRaw);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Property 2: kNN sets and predictions stay bitwise across the round trip.

TEST(StoreQuantizeTest, KnnAndPredictionsBitwiseAcrossStreamedRoundTrips) {
  simgpu::Device device;
  Rng rng(2015);
  const int kHistory = 120;
  const int kSteps = 24;
  const std::vector<double> series = RandomWalk(&rng, kHistory + kSteps);

  ts::TimeSeries history(
      "q", std::vector<double>(series.begin(), series.begin() + kHistory));
  auto control = core::SensorEngine::Create(&device, history, SmallConfig(),
                                            core::PredictorKind::kAr);
  ASSERT_TRUE(control.ok());
  auto tiered = core::SensorEngine::Create(&device, history, SmallConfig(),
                                           core::PredictorKind::kAr);
  ASSERT_TRUE(tiered.ok());

  for (int step = 0; step < kSteps; ++step) {
    // Round-trip the tiered twin through the quantized codec every fourth
    // step — the same path a spill + rehydration takes.
    if (step % 4 == 0) {
      auto restored = core::SensorEngine::Restore(
          &device, QuantizedRoundTrip(tiered->Snapshot()));
      ASSERT_TRUE(restored.ok()) << restored.status().ToString();
      *tiered = std::move(*restored);
    }

    // Compare the full kNN result (every ELV item, every neighbor, t and
    // dist bitwise) via the split-predict hook, which runs the Search
    // Step without mutating engine state.
    auto control_pending = control->BeginPredict();
    ASSERT_TRUE(control_pending.ok());
    auto tiered_pending = tiered->BeginPredict();
    ASSERT_TRUE(tiered_pending.ok());
    ASSERT_EQ(tiered_pending->knn.items.size(),
              control_pending->knn.items.size());
    for (std::size_t i = 0; i < control_pending->knn.items.size(); ++i) {
      EXPECT_EQ(tiered_pending->knn.items[i].neighbors,
                control_pending->knn.items[i].neighbors)
          << "step " << step << " item " << i;
    }

    // And the predictions they finish into.
    auto want = control->FinishPredict(std::move(*control_pending), nullptr);
    ASSERT_TRUE(want.ok());
    auto got = tiered->FinishPredict(std::move(*tiered_pending), nullptr);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->mean, want->mean) << "step " << step;
    EXPECT_EQ(got->variance, want->variance) << "step " << step;

    const double next = series[kHistory + step];
    ASSERT_TRUE(control->Observe(next).ok());
    ASSERT_TRUE(tiered->Observe(next).ok());
  }
}

}  // namespace
}  // namespace smiler
