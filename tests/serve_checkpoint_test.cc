#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "serve/checkpoint.h"
#include "ts/datasets.h"

namespace smiler {
namespace serve {
namespace {

SmilerConfig TestConfig() {
  SmilerConfig cfg;
  cfg.rho = 4;
  cfg.omega = 8;
  cfg.elv = {16, 24};
  cfg.ekv = {4, 8};
  cfg.initial_cg_steps = 10;
  cfg.online_cg_steps = 2;
  return cfg;
}

ts::TimeSeries MakeSensor(int points, int seed = 11) {
  auto data = ts::MakeDataset({ts::DatasetKind::kMall, 1, points, 64, seed, true});
  return (*data)[0];
}

std::string TempPath(const char* tag) {
  return testing::TempDir() + "/smiler_ckpt_" + tag + ".bin";
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// The headline warm-restart guarantee: snapshot a live GP engine mid-stream,
// round-trip the snapshot through the on-disk format, restore, and the
// restored engine must track the original bitwise across >= 50 further
// predict/observe steps (GP covers the warm-start kernel state too).
TEST(CheckpointTest, RestoredEngineIsBitwiseIdentical) {
  simgpu::Device device;
  auto sensor = MakeSensor(800);
  std::vector<double> all = sensor.values();
  const int warmup = 600;
  ts::TimeSeries history("s",
                         std::vector<double>(all.begin(), all.begin() + warmup));
  auto engine = core::SensorEngine::Create(&device, history, TestConfig(),
                                           core::PredictorKind::kGp);
  ASSERT_TRUE(engine.ok());

  // Warm the engine so the snapshot carries non-trivial state: adapted
  // ensemble weights, trained kernels, and a pending (unresolved) forecast
  // from the final Predict with no matching Observe.
  for (int step = 0; step < 12; ++step) {
    ASSERT_TRUE(engine->Predict().ok());
    ASSERT_TRUE(engine->Observe(all[warmup + step]).ok());
  }
  ASSERT_TRUE(engine->Predict().ok());

  const std::string path = TempPath("roundtrip");
  ASSERT_TRUE(Checkpoint::Save(path, {engine->Snapshot()}).ok());
  auto loaded = Checkpoint::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 1u);

  simgpu::Device device2;
  auto restored = core::SensorEngine::Restore(&device2, (*loaded)[0]);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->now(), engine->now());

  for (int step = 12; step < 70; ++step) {
    const double truth = all[warmup + step];
    ASSERT_TRUE(engine->Observe(truth).ok());
    ASSERT_TRUE(restored->Observe(truth).ok());
    auto a = engine->Predict();
    auto b = restored->Predict();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // Bitwise, not approximate: the snapshot carries the incremental index
    // state verbatim, so both engines execute identical arithmetic.
    EXPECT_EQ(a->mean, b->mean) << "diverged at step " << step;
    EXPECT_EQ(a->variance, b->variance) << "diverged at step " << step;
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, MultiEngineFilesPreserveOrder) {
  simgpu::Device device;
  std::vector<core::EngineSnapshot> snaps;
  for (int i = 0; i < 3; ++i) {
    auto engine = core::SensorEngine::Create(&device, MakeSensor(600, 11 + i),
                                             TestConfig(),
                                             core::PredictorKind::kAr);
    ASSERT_TRUE(engine.ok());
    snaps.push_back(engine->Snapshot());
  }
  const std::string path = TempPath("multi");
  ASSERT_TRUE(Checkpoint::Save(path, snaps).ok());
  auto loaded = Checkpoint::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ((*loaded)[i].index.series, snaps[i].index.series) << i;
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileFails) {
  EXPECT_FALSE(Checkpoint::Load(TempPath("does_not_exist")).ok());
}

TEST(CheckpointTest, BadMagicIsInvalidArgument) {
  const std::string path = TempPath("magic");
  WriteAll(path, "NOTACKPT garbage after the fake magic, long enough");
  auto loaded = Checkpoint::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, VersionMismatchIsFailedPrecondition) {
  simgpu::Device device;
  auto engine = core::SensorEngine::Create(&device, MakeSensor(600),
                                           TestConfig(),
                                           core::PredictorKind::kAr);
  ASSERT_TRUE(engine.ok());
  const std::string path = TempPath("version");
  ASSERT_TRUE(Checkpoint::Save(path, {engine->Snapshot()}).ok());
  std::string bytes = ReadAll(path);
  bytes[8] = static_cast<char>(Checkpoint::kFormatVersion + 1);  // u32 LE
  WriteAll(path, bytes);
  auto loaded = Checkpoint::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointTest, PayloadCorruptionFailsChecksum) {
  simgpu::Device device;
  auto engine = core::SensorEngine::Create(&device, MakeSensor(600),
                                           TestConfig(),
                                           core::PredictorKind::kAr);
  ASSERT_TRUE(engine.ok());
  const std::string path = TempPath("corrupt");
  ASSERT_TRUE(Checkpoint::Save(path, {engine->Snapshot()}).ok());
  std::string bytes = ReadAll(path);
  bytes[bytes.size() / 2] ^= 0x5a;  // flip bits deep inside the payload
  WriteAll(path, bytes);
  auto loaded = Checkpoint::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TruncationIsInvalidArgument) {
  simgpu::Device device;
  auto engine = core::SensorEngine::Create(&device, MakeSensor(600),
                                           TestConfig(),
                                           core::PredictorKind::kAr);
  ASSERT_TRUE(engine.ok());
  const std::string path = TempPath("truncated");
  ASSERT_TRUE(Checkpoint::Save(path, {engine->Snapshot()}).ok());
  std::string bytes = ReadAll(path);
  WriteAll(path, bytes.substr(0, bytes.size() / 3));
  auto loaded = Checkpoint::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, SaveIsAtomicNoTmpLeftBehind) {
  simgpu::Device device;
  auto engine = core::SensorEngine::Create(&device, MakeSensor(600),
                                           TestConfig(),
                                           core::PredictorKind::kAr);
  ASSERT_TRUE(engine.ok());
  const std::string path = TempPath("atomic");
  ASSERT_TRUE(Checkpoint::Save(path, {engine->Snapshot()}).ok());
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace serve
}  // namespace smiler
