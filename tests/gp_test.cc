#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "gp/cg_optimizer.h"
#include "gp/gp_regressor.h"
#include "gp/kernel.h"
#include "gp/trainer.h"

namespace smiler {
namespace gp {
namespace {

la::Matrix RandomInputs(Rng* rng, std::size_t k, std::size_t d) {
  la::Matrix x(k, d);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < d; ++j) x(i, j) = rng->Normal();
  }
  return x;
}

// ---------------------------------------------------------------- kernel

TEST(SeKernelTest, ThetaRoundTrip) {
  SeKernel kernel(std::log(2.0), std::log(0.5), std::log(0.1));
  EXPECT_NEAR(kernel.theta0(), 2.0, 1e-12);
  EXPECT_NEAR(kernel.theta1(), 0.5, 1e-12);
  EXPECT_NEAR(kernel.theta2(), 0.1, 1e-12);
}

TEST(SeKernelTest, CovarianceAtZeroDistance) {
  SeKernel kernel(std::log(2.0), std::log(1.0), std::log(0.3));
  // Off-diagonal at distance 0: theta0^2 (no noise term).
  EXPECT_NEAR(kernel.CovFromSqDist(0.0), 4.0, 1e-12);
  // Self covariance includes the noise: theta0^2 + theta2^2.
  EXPECT_NEAR(kernel.SelfCovariance(), 4.09, 1e-12);
}

TEST(SeKernelTest, CovarianceDecaysWithDistance) {
  SeKernel kernel(0.0, 0.0, -2.0);
  double prev = kernel.CovFromSqDist(0.0);
  for (double r : {0.5, 1.0, 2.0, 5.0}) {
    const double c = kernel.CovFromSqDist(r);
    EXPECT_LT(c, prev);
    prev = c;
  }
}

TEST(SeKernelTest, CovarianceMatrixSymmetricWithNoiseDiagonal) {
  Rng rng(70);
  la::Matrix x = RandomInputs(&rng, 6, 4);
  SeKernel kernel(std::log(1.5), std::log(2.0), std::log(0.2));
  la::Matrix sq;
  la::Matrix cov = kernel.Covariance(x, &sq);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(cov(i, i), kernel.SelfCovariance(), 1e-12);
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(cov(i, j), cov(j, i));
      EXPECT_DOUBLE_EQ(sq(i, j),
                       SquaredDistance(x.Row(i), x.Row(j), 4));
    }
  }
}

TEST(SeKernelTest, GradientsMatchFiniteDifferences) {
  Rng rng(71);
  la::Matrix x = RandomInputs(&rng, 5, 3);
  const double eps = 1e-6;
  SeKernel kernel(std::log(1.3), std::log(0.8), std::log(0.4));
  la::Matrix sq;
  kernel.Covariance(x, &sq);
  for (int p = 0; p < SeKernel::kNumParams; ++p) {
    la::Matrix analytic = kernel.CovarianceGrad(sq, p);
    auto params = kernel.log_params();
    params[p] += eps;
    SeKernel plus(params[0], params[1], params[2]);
    params[p] -= 2 * eps;
    SeKernel minus(params[0], params[1], params[2]);
    la::Matrix cp = plus.Covariance(x);
    la::Matrix cm = minus.Covariance(x);
    for (std::size_t i = 0; i < 5; ++i) {
      for (std::size_t j = 0; j < 5; ++j) {
        const double fd = (cp(i, j) - cm(i, j)) / (2 * eps);
        EXPECT_NEAR(analytic(i, j), fd, 1e-5) << "p=" << p;
      }
    }
  }
}

TEST(SeKernelTest, HeuristicScalesWithData) {
  Rng rng(72);
  la::Matrix x = RandomInputs(&rng, 10, 4);
  std::vector<double> y(10);
  for (double& v : y) v = 5.0 * rng.Normal();
  SeKernel kernel = SeKernel::Heuristic(x, y);
  // theta0^2 should be near var(y) ~ 25, theta1 near typical distances.
  EXPECT_GT(kernel.theta0(), 1.0);
  EXPECT_LT(kernel.theta0(), 25.0);
  EXPECT_GT(kernel.theta1(), 0.1);
  EXPECT_GT(kernel.theta2(), 0.0);
}

// ------------------------------------------------------------- regressor

TEST(GpRegressorTest, RejectsBadInputs) {
  SeKernel kernel;
  EXPECT_FALSE(GpRegressor::Fit(la::Matrix(), {}, kernel).ok());
  EXPECT_FALSE(
      GpRegressor::Fit(la::Matrix(2, 2), {1.0, 2.0, 3.0}, kernel).ok());
}

TEST(GpRegressorTest, InterpolatesWithLowNoise) {
  // With tiny noise the posterior mean passes (nearly) through the data.
  Rng rng(73);
  la::Matrix x = RandomInputs(&rng, 8, 2);
  std::vector<double> y(8);
  for (std::size_t i = 0; i < 8; ++i) y[i] = std::sin(x(i, 0)) + x(i, 1);
  SeKernel kernel(std::log(1.0), std::log(1.5), std::log(1e-3));
  auto gp = GpRegressor::Fit(x, y, kernel);
  ASSERT_TRUE(gp.ok());
  for (std::size_t i = 0; i < 8; ++i) {
    const Prediction p = gp->Predict(x.Row(i));
    EXPECT_NEAR(p.mean, y[i], 1e-2);
    EXPECT_LT(p.variance, 0.1);
  }
}

TEST(GpRegressorTest, VarianceGrowsAwayFromData) {
  la::Matrix x(3, 1);
  x(0, 0) = 0.0;
  x(1, 0) = 1.0;
  x(2, 0) = 2.0;
  std::vector<double> y{0.0, 1.0, 0.0};
  SeKernel kernel(std::log(1.0), std::log(0.7), std::log(0.05));
  auto gp = GpRegressor::Fit(x, y, kernel);
  ASSERT_TRUE(gp.ok());
  const double near = 1.0;
  const double far = 10.0;
  const Prediction p_near = gp->Predict(&near);
  const Prediction p_far = gp->Predict(&far);
  EXPECT_LT(p_near.variance, p_far.variance);
  // Far from data the posterior reverts to the prior.
  EXPECT_NEAR(p_far.mean, 0.0, 1e-6);
  EXPECT_NEAR(p_far.variance, kernel.SelfCovariance(), 1e-6);
}

TEST(GpRegressorTest, PredictionIsGaussianConditional) {
  // One training point: closed-form posterior.
  la::Matrix x(1, 1);
  x(0, 0) = 0.0;
  std::vector<double> y{2.0};
  const double t0 = 1.0, t1 = 1.0, t2 = 0.5;
  SeKernel kernel(std::log(t0), std::log(t1), std::log(t2));
  auto gp = GpRegressor::Fit(x, y, kernel);
  ASSERT_TRUE(gp.ok());
  const double xs = 0.8;
  const double c0 = t0 * t0 * std::exp(-0.5 * xs * xs / (t1 * t1));
  const double c11 = t0 * t0 + t2 * t2;
  const Prediction p = gp->Predict(&xs);
  EXPECT_NEAR(p.mean, c0 * y[0] / c11, 1e-10);
  EXPECT_NEAR(p.variance, c11 - c0 * c0 / c11, 1e-10);
}

TEST(GpRegressorTest, LooLikelihoodMatchesExplicitRefit) {
  // LOO via partitioned inverse must equal actually leaving points out.
  Rng rng(74);
  const std::size_t k = 7;
  la::Matrix x = RandomInputs(&rng, k, 2);
  std::vector<double> y(k);
  for (std::size_t i = 0; i < k; ++i) y[i] = std::cos(x(i, 0)) * x(i, 1);
  SeKernel kernel(std::log(1.2), std::log(1.0), std::log(0.3));
  auto gp = GpRegressor::Fit(x, y, kernel);
  ASSERT_TRUE(gp.ok());
  for (std::size_t held = 0; held < k; ++held) {
    la::Matrix x_rest(k - 1, 2);
    std::vector<double> y_rest;
    std::size_t row = 0;
    for (std::size_t i = 0; i < k; ++i) {
      if (i == held) continue;
      x_rest(row, 0) = x(i, 0);
      x_rest(row, 1) = x(i, 1);
      y_rest.push_back(y[i]);
      ++row;
    }
    auto gp_rest = GpRegressor::Fit(x_rest, y_rest, kernel);
    ASSERT_TRUE(gp_rest.ok());
    const Prediction direct = gp_rest->Predict(x.Row(held));
    const Prediction via_loo = gp->LooPrediction(held);
    EXPECT_NEAR(via_loo.mean, direct.mean, 1e-8);
    EXPECT_NEAR(via_loo.variance, direct.variance, 1e-8);
  }
}

TEST(GpRegressorTest, LooGradientMatchesFiniteDifferences) {
  Rng rng(75);
  const std::size_t k = 6;
  la::Matrix x = RandomInputs(&rng, k, 3);
  std::vector<double> y(k);
  for (std::size_t i = 0; i < k; ++i) y[i] = x(i, 0) + 0.5 * rng.Normal();
  SeKernel kernel(std::log(1.1), std::log(1.4), std::log(0.5));
  auto gp = GpRegressor::Fit(x, y, kernel);
  ASSERT_TRUE(gp.ok());
  const auto analytic = gp->LooGradient();
  const double eps = 1e-6;
  for (int p = 0; p < SeKernel::kNumParams; ++p) {
    auto params = kernel.log_params();
    params[p] += eps;
    auto gp_plus =
        GpRegressor::Fit(x, y, SeKernel(params[0], params[1], params[2]));
    params[p] -= 2 * eps;
    auto gp_minus =
        GpRegressor::Fit(x, y, SeKernel(params[0], params[1], params[2]));
    ASSERT_TRUE(gp_plus.ok() && gp_minus.ok());
    const double fd =
        (gp_plus->LooLogLikelihood() - gp_minus->LooLogLikelihood()) /
        (2 * eps);
    EXPECT_NEAR(analytic[p], fd, 1e-4 * (1.0 + std::fabs(fd))) << "p=" << p;
  }
}

TEST(GpRegressorTest, ExternalGramMatchesOwnedDistances) {
  // Fitting against a cached Gram must reproduce the owned-distance fit
  // exactly: predictions, LOO quantities, and gradients.
  Rng rng(80);
  const std::size_t k = 9;
  la::Matrix x = RandomInputs(&rng, k, 3);
  std::vector<double> y(k);
  for (std::size_t i = 0; i < k; ++i) y[i] = std::sin(x(i, 0) + x(i, 1));
  const la::Matrix gram = PairwiseSquaredDistances(x);
  const la::ConstMatrixView view(gram);
  SeKernel kernel(std::log(1.2), std::log(0.9), std::log(0.3));
  auto with_gram = GpRegressor::Fit(x, y, kernel, &view);
  auto without = GpRegressor::Fit(x, y, kernel);
  ASSERT_TRUE(with_gram.ok() && without.ok());
  const double xs[3] = {0.3, -0.1, 0.9};
  const Prediction pa = with_gram->Predict(xs);
  const Prediction pb = without->Predict(xs);
  EXPECT_DOUBLE_EQ(pa.mean, pb.mean);
  EXPECT_DOUBLE_EQ(pa.variance, pb.variance);
  EXPECT_DOUBLE_EQ(with_gram->LooLogLikelihood(), without->LooLogLikelihood());
  const auto ga = with_gram->LooGradient();
  const auto gb = without->LooGradient();
  for (int m = 0; m < SeKernel::kNumParams; ++m) {
    EXPECT_DOUBLE_EQ(ga[m], gb[m]) << "m=" << m;
  }
}

TEST(GpRegressorTest, FitRejectsMismatchedGram) {
  Rng rng(81);
  la::Matrix x = RandomInputs(&rng, 5, 2);
  std::vector<double> y(5, 1.0);
  la::Matrix wrong = PairwiseSquaredDistances(RandomInputs(&rng, 3, 2));
  const la::ConstMatrixView view(wrong);
  EXPECT_FALSE(GpRegressor::Fit(x, y, SeKernel(), &view).ok());
}

TEST(GpRegressorTest, LooPredictionWorksWithoutGradientCall) {
  // The diag-only inverse path: LOO predictions straight after Fit (no
  // LooGradient call materializing the full inverse) must match the
  // explicit refit, same as the full-inverse path always did.
  Rng rng(82);
  const std::size_t k = 6;
  la::Matrix x = RandomInputs(&rng, k, 2);
  std::vector<double> y(k);
  for (std::size_t i = 0; i < k; ++i) y[i] = x(i, 0) - 0.5 * x(i, 1);
  SeKernel kernel(std::log(1.0), std::log(1.1), std::log(0.4));
  auto gp = GpRegressor::Fit(x, y, kernel);
  ASSERT_TRUE(gp.ok());
  for (std::size_t held = 0; held < k; ++held) {
    la::Matrix x_rest(k - 1, 2);
    std::vector<double> y_rest;
    std::size_t row = 0;
    for (std::size_t i = 0; i < k; ++i) {
      if (i == held) continue;
      x_rest(row, 0) = x(i, 0);
      x_rest(row, 1) = x(i, 1);
      y_rest.push_back(y[i]);
      ++row;
    }
    auto gp_rest = GpRegressor::Fit(x_rest, y_rest, kernel);
    ASSERT_TRUE(gp_rest.ok());
    const Prediction direct = gp_rest->Predict(x.Row(held));
    const Prediction via_loo = gp->LooPrediction(held);
    EXPECT_NEAR(via_loo.mean, direct.mean, 1e-8);
    EXPECT_NEAR(via_loo.variance, direct.variance, 1e-8);
  }
}

TEST(PairwiseSquaredDistancesTest, MatchesScalarAndPrefixesNest) {
  Rng rng(83);
  la::Matrix x = RandomInputs(&rng, 12, 5);
  const la::Matrix gram = PairwiseSquaredDistances(x);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      EXPECT_DOUBLE_EQ(gram(i, j), SquaredDistance(x.Row(i), x.Row(j), 5));
    }
  }
  // The Gram of a row prefix is the leading block — the property the
  // engine's per-column cache relies on across EKV rows.
  la::Matrix head(7, 5);
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 5; ++j) head(i, j) = x(i, j);
  }
  const la::Matrix gram_head = PairwiseSquaredDistances(head);
  const la::ConstMatrixView lead = la::ConstMatrixView(gram).Leading(7);
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 7; ++j) {
      EXPECT_DOUBLE_EQ(gram_head(i, j), lead(i, j));
    }
  }
}

// -------------------------------------------------------------- optimizer

TEST(CgOptimizerTest, MaximizesConcaveQuadratic) {
  // f(x) = -(x0-3)^2 - 2*(x1+1)^2, max at (3, -1).
  Objective obj = [](const std::vector<double>& p,
                     std::vector<double>* g) -> double {
    (*g)[0] = -2.0 * (p[0] - 3.0);
    (*g)[1] = -4.0 * (p[1] + 1.0);
    return -(p[0] - 3.0) * (p[0] - 3.0) - 2.0 * (p[1] + 1.0) * (p[1] + 1.0);
  };
  std::vector<double> params{0.0, 0.0};
  CgOptions options;
  options.max_iters = 100;
  CgResult result = MaximizeCg(obj, &params, options);
  EXPECT_NEAR(params[0], 3.0, 1e-4);
  EXPECT_NEAR(params[1], -1.0, 1e-4);
  EXPECT_NEAR(result.value, 0.0, 1e-7);
}

TEST(CgOptimizerTest, RespectsIterationBudget) {
  int evals = 0;
  Objective obj = [&evals](const std::vector<double>& p,
                           std::vector<double>* g) -> double {
    ++evals;
    (*g)[0] = -2.0 * p[0];
    return -p[0] * p[0];
  };
  std::vector<double> params{10.0};
  CgOptions options;
  options.max_iters = 3;
  CgResult result = MaximizeCg(obj, &params, options);
  EXPECT_LE(result.iterations, 3);
  EXPECT_LT(std::fabs(params[0]), 10.0);  // moved toward the optimum
}

TEST(CgOptimizerTest, MonotoneNonDecreasing) {
  // Rosenbrock-flavoured concave-ish test: value never decreases.
  Objective obj = [](const std::vector<double>& p,
                     std::vector<double>* g) -> double {
    const double a = p[0], b = p[1];
    (*g)[0] = -4.0 * a * (a * a - b) - 2.0 * (a - 1.0);
    (*g)[1] = 2.0 * (a * a - b);
    return -((a * a - b) * (a * a - b) + (a - 1.0) * (a - 1.0));
  };
  std::vector<double> params{-1.0, 2.0};
  std::vector<double> g(2);
  double prev = obj(params, &g);
  for (int i = 0; i < 10; ++i) {
    CgOptions options;
    options.max_iters = 1;
    CgResult r = MaximizeCg(obj, &params, options);
    EXPECT_GE(r.value, prev - 1e-12);
    prev = r.value;
  }
}

TEST(CgOptimizerTest, InfiniteStartReturnsImmediately) {
  Objective obj = [](const std::vector<double>&,
                     std::vector<double>*) -> double {
    return -std::numeric_limits<double>::infinity();
  };
  std::vector<double> params{1.0};
  CgResult result = MaximizeCg(obj, &params, CgOptions{});
  EXPECT_EQ(result.iterations, 0);
}

// ---------------------------------------------------------------- trainer

TEST(TrainerTest, ImprovesLooLikelihood) {
  Rng rng(76);
  const std::size_t k = 16;
  la::Matrix x = RandomInputs(&rng, k, 4);
  std::vector<double> y(k);
  for (std::size_t i = 0; i < k; ++i) {
    y[i] = 2.0 * std::sin(x(i, 0)) + 0.1 * rng.Normal();
  }
  SeKernel seed = SeKernel::Heuristic(x, y);
  auto fit0 = GpRegressor::Fit(x, y, seed);
  ASSERT_TRUE(fit0.ok());
  const double before = fit0->LooLogLikelihood();
  auto trained = TrainLoo(x, y, nullptr, /*cg_steps=*/30);
  ASSERT_TRUE(trained.ok());
  EXPECT_GE(trained->loo_log_lik, before - 1e-9);
  auto fit1 = GpRegressor::Fit(x, y, trained->kernel);
  ASSERT_TRUE(fit1.ok());
  EXPECT_NEAR(fit1->LooLogLikelihood(), trained->loo_log_lik, 1e-9);
}

TEST(TrainerTest, WarmStartIsUsed) {
  Rng rng(77);
  la::Matrix x = RandomInputs(&rng, 10, 3);
  std::vector<double> y(10);
  for (std::size_t i = 0; i < 10; ++i) y[i] = x(i, 1);
  SeKernel warm(std::log(3.0), std::log(2.0), std::log(0.7));
  auto trained = TrainLoo(x, y, &warm, /*cg_steps=*/0);
  ASSERT_TRUE(trained.ok());
  // Zero steps: returns the warm start untouched.
  for (int p = 0; p < SeKernel::kNumParams; ++p) {
    EXPECT_DOUBLE_EQ(trained->kernel.log_params()[p], warm.log_params()[p]);
  }
}

TEST(TrainerTest, RejectsEmptyData) {
  EXPECT_FALSE(TrainLoo(la::Matrix(), {}, nullptr, 5).ok());
}


TEST(TrainerTest, StrongPriorPinsParamsToAnchor) {
  Rng rng(78);
  la::Matrix x = RandomInputs(&rng, 12, 3);
  std::vector<double> y(12);
  for (std::size_t i = 0; i < 12; ++i) y[i] = std::sin(x(i, 0));
  const SeKernel anchor = SeKernel::Heuristic(x, y);
  auto trained = TrainLoo(x, y, nullptr, /*cg_steps=*/30,
                          /*prior_precision=*/1e6);
  ASSERT_TRUE(trained.ok());
  for (int p = 0; p < SeKernel::kNumParams; ++p) {
    EXPECT_NEAR(trained->kernel.log_params()[p], anchor.log_params()[p],
                1e-2);
  }
}

TEST(TrainerTest, TrustRadiusClampsDrift) {
  // Warm start far from the anchor: with a small trust radius the result
  // must land within the radius of the anchor, regardless of the seed.
  Rng rng(79);
  la::Matrix x = RandomInputs(&rng, 10, 2);
  std::vector<double> y(10);
  for (std::size_t i = 0; i < 10; ++i) y[i] = x(i, 0) * 2.0;
  const SeKernel anchor = SeKernel::Heuristic(x, y);
  SeKernel far_seed(anchor.log_params()[0] + 5.0,
                    anchor.log_params()[1] + 5.0,
                    anchor.log_params()[2] + 5.0);
  auto trained = TrainLoo(x, y, &far_seed, /*cg_steps=*/3,
                          /*prior_precision=*/0.0, /*trust_radius=*/0.5);
  ASSERT_TRUE(trained.ok());
  for (int p = 0; p < SeKernel::kNumParams; ++p) {
    EXPECT_LE(std::fabs(trained->kernel.log_params()[p] -
                        anchor.log_params()[p]),
              0.5 + 1e-12);
  }
}

TEST(TrainerTest, DuplicateHeavyDataDoesNotCollapseNoise) {
  // Exact duplicates make the unregularized LOO unbounded; with the prior
  // the trained noise must stay above a sane floor.
  la::Matrix x(8, 2);
  std::vector<double> y(8);
  for (int i = 0; i < 8; ++i) {
    x(i, 0) = (i < 4) ? 0.0 : 1.0;  // two clusters of exact duplicates
    x(i, 1) = 0.0;
    y[i] = (i < 4) ? 1.0 : -1.0;
  }
  const SeKernel anchor = SeKernel::Heuristic(x, y);
  auto trained = TrainLoo(x, y, nullptr, /*cg_steps=*/40,
                          /*prior_precision=*/8.0);
  ASSERT_TRUE(trained.ok());
  // Bounded drift: within a few log-units of the anchor noise.
  EXPECT_GT(trained->kernel.log_params()[2],
            anchor.log_params()[2] - 3.0);
}

}  // namespace
}  // namespace gp
}  // namespace smiler
