#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "common/config.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace smiler {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, EveryFactoryProducesItsCode) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NumericalError("x").code(), StatusCode::kNumericalError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> HelperReturningError() { return Status::Internal("boom"); }

Status UseAssignOrReturn(int* out) {
  SMILER_ASSIGN_OR_RETURN(*out, HelperReturningError());
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  Status s = UseAssignOrReturn(&out);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, NormalMomentsApproximate) {
  Rng rng(99);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, UniformIntWithinRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](std::size_t i) { hits[i] += 1; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSingleIteration) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    calls += 1;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, NestedCallDegradesToSequential) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](std::size_t) {
    // Re-entrant use must not deadlock.
    ThreadPool::Default().ParallelFor(10, [&](std::size_t) { total += 1; });
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPoolTest, ManyIterationsBalance) {
  ThreadPool pool(8);
  std::atomic<long> sum{0};
  pool.ParallelFor(100000, [&](std::size_t i) {
    sum += static_cast<long>(i);
  });
  EXPECT_EQ(sum.load(), 100000L * 99999L / 2);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ran += 1; });
    }
    // Destructor drains the queue before joining the workers.
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, SubmitFromInsideWorkerIsAllowed) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&] { pool.Submit([&ran] { ran += 1; }); });
    }
  }
  EXPECT_EQ(ran.load(), 8);
}

// Regression: the serve layer mixes fire-and-forget Submit (checkpoint IO)
// with engine ParallelFor fan-out on the same pool. Both must interleave
// without deadlock and without losing work.
TEST(ThreadPoolTest, SubmitAndParallelForInterleave) {
  constexpr int kSubmissions = 500;
  // Declared before the pool: queued Submit tasks may still be running
  // while the pool destructor drains, so the counters must outlive it.
  std::atomic<int> submitted_ran{0};
  std::atomic<long> sum{0};
  {
    ThreadPool pool(4);
    std::thread submitter([&] {
      for (int i = 0; i < kSubmissions; ++i) {
        pool.Submit([&submitted_ran] { submitted_ran += 1; });
      }
    });
    for (int round = 0; round < 50; ++round) {
      sum.store(0);
      pool.ParallelFor(1000, [&](std::size_t i) {
        sum += static_cast<long>(i);
      });
      ASSERT_EQ(sum.load(), 1000L * 999L / 2) << "round " << round;
    }
    submitter.join();
    // Pool destruction drains whatever Submit work is still queued.
  }
  EXPECT_EQ(submitted_ran.load(), kSubmissions);
}

// ---------------------------------------------------------------- Config

TEST(ConfigTest, DefaultsMatchPaperTable2) {
  SmilerConfig cfg;
  EXPECT_EQ(cfg.rho, 8);
  EXPECT_EQ(cfg.omega, 16);
  EXPECT_EQ(cfg.elv, (std::vector<int>{32, 64, 96}));
  EXPECT_EQ(cfg.ekv, (std::vector<int>{8, 16, 32}));
  EXPECT_TRUE(cfg.Validate().ok());
  EXPECT_EQ(cfg.MasterQueryLength(), 96);
  EXPECT_EQ(cfg.MaxK(), 32);
}

TEST(ConfigTest, RejectsBadOmega) {
  SmilerConfig cfg;
  cfg.omega = 0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigTest, RejectsNegativeRho) {
  SmilerConfig cfg;
  cfg.rho = -1;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigTest, RejectsNonAscendingElv) {
  SmilerConfig cfg;
  cfg.elv = {64, 32};
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigTest, RejectsSegmentShorterThanOmega) {
  SmilerConfig cfg;
  cfg.elv = {8, 64};
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigTest, RejectsEmptyVectors) {
  SmilerConfig cfg;
  cfg.elv.clear();
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = SmilerConfig{};
  cfg.ekv.clear();
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigTest, RejectsNonPositiveK) {
  SmilerConfig cfg;
  cfg.ekv = {0, 8};
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigTest, RejectsBadHorizon) {
  SmilerConfig cfg;
  cfg.horizon = 0;
  EXPECT_FALSE(cfg.Validate().ok());
}

// ------------------------------------------------------------ math utils

TEST(MathUtilsTest, GaussianDensityMatchesClosedForm) {
  // N(0,1) at 0: 1/sqrt(2 pi)
  EXPECT_NEAR(GaussianDensity(0.0, 0.0, 1.0), 0.3989422804014327, 1e-12);
  // log density consistency
  EXPECT_NEAR(std::exp(GaussianLogDensity(1.3, 0.4, 2.7)),
              GaussianDensity(1.3, 0.4, 2.7), 1e-12);
}

TEST(MathUtilsTest, MeanAndVariance) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Variance(v), 1.25);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0.0);
}

TEST(MathUtilsTest, IsClose) {
  EXPECT_TRUE(IsClose(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(IsClose(1.0, 1.001));
}

}  // namespace
}  // namespace smiler
