#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "ts/io.h"

namespace smiler {
namespace ts {
namespace {

TEST(CsvTest, ParsesColumnLayoutWithHeader) {
  const std::string text =
      "road-a,road-b\n"
      "1.0,4.0\n"
      "2.0,5.0\n"
      "3.0,6.0\n";
  auto result = ParseCsv(text);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].sensor_id(), "road-a");
  EXPECT_EQ((*result)[1].sensor_id(), "road-b");
  EXPECT_EQ((*result)[0].values(), (std::vector<double>{1, 2, 3}));
  EXPECT_EQ((*result)[1].values(), (std::vector<double>{4, 5, 6}));
}

TEST(CsvTest, ParsesRowLayoutWithoutHeader) {
  CsvOptions options;
  options.has_header = false;
  options.sensors_in_columns = false;
  auto result = ParseCsv("1,2,3\n4,5,6\n", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].sensor_id(), "sensor-0");
  EXPECT_EQ((*result)[0].values(), (std::vector<double>{1, 2, 3}));
  EXPECT_EQ((*result)[1].values(), (std::vector<double>{4, 5, 6}));
}

TEST(CsvTest, CustomDelimiterAndCrlf) {
  CsvOptions options;
  options.delimiter = ';';
  auto result = ParseCsv("a;b\r\n1;2\r\n3;4\r\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[1].values(), (std::vector<double>{2, 4}));
}

TEST(CsvTest, ScientificNotationAndNegatives) {
  auto result = ParseCsv("s\n-1.5e-3\n2E2\n");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ((*result)[0][0], -0.0015);
  EXPECT_DOUBLE_EQ((*result)[0][1], 200.0);
}

TEST(CsvTest, RejectsNonNumeric) {
  auto result = ParseCsv("s\n1.0\nNA\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsRaggedRows) {
  auto result = ParseCsv("a,b\n1,2\n3\n");
  ASSERT_FALSE(result.ok());
}

TEST(CsvTest, RejectsEmpty) {
  EXPECT_FALSE(ParseCsv("").ok());
  EXPECT_FALSE(ParseCsv("header-only\n").ok());
}

TEST(CsvTest, MissingValueIsRejectedNotSilentlyZero) {
  auto result = ParseCsv("a,b\n1,\n2,3\n");
  ASSERT_FALSE(result.ok());
}

TEST(CsvTest, ReadMissingFileIsNotFound) {
  auto result = ReadCsv("/no/such/file.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, WriteReadRoundTrip) {
  std::vector<TimeSeries> series;
  series.emplace_back("alpha", std::vector<double>{1.25, -2.5, 3.75});
  series.emplace_back("beta", std::vector<double>{0.1, 0.2, 0.3});
  const std::string path = ::testing::TempDir() + "/smiler_io_test.csv";
  ASSERT_TRUE(WriteCsv(path, series).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].sensor_id(), "alpha");
  EXPECT_EQ((*back)[0].values(), series[0].values());
  EXPECT_EQ((*back)[1].values(), series[1].values());
  std::remove(path.c_str());
}

TEST(CsvTest, WriteRejectsRaggedOrEmpty) {
  EXPECT_FALSE(WriteCsv("/tmp/x.csv", {}).ok());
  std::vector<TimeSeries> ragged;
  ragged.emplace_back("a", std::vector<double>{1, 2});
  ragged.emplace_back("b", std::vector<double>{1});
  EXPECT_FALSE(WriteCsv("/tmp/x.csv", ragged).ok());
}

TEST(CsvTest, ToleratesBomPaddingAndBlankLines) {
  // Formatting noise real feeds carry: a UTF-8 BOM, whitespace-padded
  // cells, blank / whitespace-only separator lines, and a CRLF mix.
  const std::string text =
      "\xEF\xBB\xBF"
      "a, b\r\n"
      "\r\n"
      " 1.0 ,\t2.0\n"
      "   \t  \n"
      "3.0, 4.0 \r\n"
      "\n";
  auto result = ParseCsv(text);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].sensor_id(), "a");
  EXPECT_EQ((*result)[0].values(), (std::vector<double>{1, 3}));
  EXPECT_EQ((*result)[1].values(), (std::vector<double>{2, 4}));
}

TEST(CsvTest, ErrorsNameLineAndColumn) {
  auto bad_cell = ParseCsv("a,b\n1.0,2.0\n3.0,oops\n");
  ASSERT_FALSE(bad_cell.ok());
  EXPECT_EQ(bad_cell.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_cell.status().message().find("line 3"), std::string::npos)
      << bad_cell.status().ToString();
  EXPECT_NE(bad_cell.status().message().find("column 2"), std::string::npos)
      << bad_cell.status().ToString();

  auto empty_cell = ParseCsv("a,b\n,2.0\n");
  ASSERT_FALSE(empty_cell.ok());
  EXPECT_NE(empty_cell.status().message().find("empty cell"),
            std::string::npos)
      << empty_cell.status().ToString();
}

TEST(CsvTest, WhitespaceOnlyCellIsStillEmpty) {
  // Padding tolerance must not soften the content checks: a cell of pure
  // whitespace is an empty cell, not a zero.
  EXPECT_FALSE(ParseCsv("a,b\n1.0,   \n").ok());
}

// Property: write -> read is the identity on awkward but valid doubles
// (denormals, huge magnitudes, many digits), across both layouts and a
// deterministic LCG-driven grid of shapes.
TEST(CsvTest, RoundTripPropertyOverAwkwardValues) {
  std::uint64_t lcg = 0x2545F4914F6CDD1Dull;
  auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 11;
  };
  const double specials[] = {0.0,     -0.0,   1e-308,       -1e-308, 1e308,
                             -1e308,  0.1,    1.0 / 3.0,    -2.5e-7, 12345.678901234567,
                             -1e-15,  42.0};
  for (int sensors = 1; sensors <= 3; ++sensors) {
    for (int points : {1, 7, 33}) {
      std::vector<TimeSeries> series;
      for (int s = 0; s < sensors; ++s) {
        std::vector<double> values(points);
        for (int t = 0; t < points; ++t) {
          values[t] = specials[next() % (sizeof(specials) / sizeof(double))];
        }
        series.emplace_back("sensor-" + std::to_string(s), std::move(values));
      }
      const std::string path =
          ::testing::TempDir() + "/smiler_io_prop_" +
          std::to_string(sensors) + "_" + std::to_string(points) + ".csv";
      ASSERT_TRUE(WriteCsv(path, series).ok());
      auto back = ReadCsv(path);
      ASSERT_TRUE(back.ok()) << back.status().ToString();
      ASSERT_EQ(back->size(), series.size());
      for (int s = 0; s < sensors; ++s) {
        // Bitwise round-trip: WriteCsv emits 17 significant digits, which
        // is lossless for IEEE-754 doubles.
        EXPECT_EQ((*back)[s].values(), series[s].values())
            << "sensors=" << sensors << " points=" << points << " s=" << s;
      }
      std::remove(path.c_str());
    }
  }
}

}  // namespace
}  // namespace ts
}  // namespace smiler
