#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "ts/io.h"

namespace smiler {
namespace ts {
namespace {

TEST(CsvTest, ParsesColumnLayoutWithHeader) {
  const std::string text =
      "road-a,road-b\n"
      "1.0,4.0\n"
      "2.0,5.0\n"
      "3.0,6.0\n";
  auto result = ParseCsv(text);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].sensor_id(), "road-a");
  EXPECT_EQ((*result)[1].sensor_id(), "road-b");
  EXPECT_EQ((*result)[0].values(), (std::vector<double>{1, 2, 3}));
  EXPECT_EQ((*result)[1].values(), (std::vector<double>{4, 5, 6}));
}

TEST(CsvTest, ParsesRowLayoutWithoutHeader) {
  CsvOptions options;
  options.has_header = false;
  options.sensors_in_columns = false;
  auto result = ParseCsv("1,2,3\n4,5,6\n", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].sensor_id(), "sensor-0");
  EXPECT_EQ((*result)[0].values(), (std::vector<double>{1, 2, 3}));
  EXPECT_EQ((*result)[1].values(), (std::vector<double>{4, 5, 6}));
}

TEST(CsvTest, CustomDelimiterAndCrlf) {
  CsvOptions options;
  options.delimiter = ';';
  auto result = ParseCsv("a;b\r\n1;2\r\n3;4\r\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[1].values(), (std::vector<double>{2, 4}));
}

TEST(CsvTest, ScientificNotationAndNegatives) {
  auto result = ParseCsv("s\n-1.5e-3\n2E2\n");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ((*result)[0][0], -0.0015);
  EXPECT_DOUBLE_EQ((*result)[0][1], 200.0);
}

TEST(CsvTest, RejectsNonNumeric) {
  auto result = ParseCsv("s\n1.0\nNA\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsRaggedRows) {
  auto result = ParseCsv("a,b\n1,2\n3\n");
  ASSERT_FALSE(result.ok());
}

TEST(CsvTest, RejectsEmpty) {
  EXPECT_FALSE(ParseCsv("").ok());
  EXPECT_FALSE(ParseCsv("header-only\n").ok());
}

TEST(CsvTest, MissingValueIsRejectedNotSilentlyZero) {
  auto result = ParseCsv("a,b\n1,\n2,3\n");
  ASSERT_FALSE(result.ok());
}

TEST(CsvTest, ReadMissingFileIsNotFound) {
  auto result = ReadCsv("/no/such/file.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, WriteReadRoundTrip) {
  std::vector<TimeSeries> series;
  series.emplace_back("alpha", std::vector<double>{1.25, -2.5, 3.75});
  series.emplace_back("beta", std::vector<double>{0.1, 0.2, 0.3});
  const std::string path = ::testing::TempDir() + "/smiler_io_test.csv";
  ASSERT_TRUE(WriteCsv(path, series).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].sensor_id(), "alpha");
  EXPECT_EQ((*back)[0].values(), series[0].values());
  EXPECT_EQ((*back)[1].values(), series[1].values());
  std::remove(path.c_str());
}

TEST(CsvTest, WriteRejectsRaggedOrEmpty) {
  EXPECT_FALSE(WriteCsv("/tmp/x.csv", {}).ok());
  std::vector<TimeSeries> ragged;
  ragged.emplace_back("a", std::vector<double>{1, 2});
  ragged.emplace_back("b", std::vector<double>{1});
  EXPECT_FALSE(WriteCsv("/tmp/x.csv", ragged).ok());
}

}  // namespace
}  // namespace ts
}  // namespace smiler
