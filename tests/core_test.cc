#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/engine.h"
#include "core/manager.h"
#include "core/metrics.h"
#include "ts/datasets.h"

namespace smiler {
namespace core {
namespace {

SmilerConfig TestConfig() {
  SmilerConfig cfg;
  cfg.rho = 4;
  cfg.omega = 8;
  cfg.elv = {16, 32};
  cfg.ekv = {4, 8};
  cfg.initial_cg_steps = 10;
  cfg.online_cg_steps = 2;
  return cfg;
}

ts::TimeSeries MakeSensor(int points, ts::DatasetKind kind = ts::DatasetKind::kMall) {
  auto data = ts::MakeDataset({kind, 1, points, 64, 11, true});
  return (*data)[0];
}

// ---------------------------------------------------------------- metrics

TEST(MetricsTest, PerfectPredictionGivesZeroMae) {
  MetricAccumulator acc;
  acc.Add(1.0, {1.0, 0.5});
  acc.Add(-2.0, {-2.0, 0.5});
  EXPECT_DOUBLE_EQ(acc.Mae(), 0.0);
  EXPECT_DOUBLE_EQ(acc.Rmse(), 0.0);
  EXPECT_EQ(acc.count(), 2u);
}

TEST(MetricsTest, MaeAndRmseMatchHandComputation) {
  MetricAccumulator acc;
  acc.Add(0.0, {1.0, 1.0});   // |err| = 1
  acc.Add(0.0, {-3.0, 1.0});  // |err| = 3
  EXPECT_DOUBLE_EQ(acc.Mae(), 2.0);
  EXPECT_DOUBLE_EQ(acc.Rmse(), std::sqrt(5.0));
}

TEST(MetricsTest, MnlpdPrefersCalibratedUncertainty) {
  // Same error; the model admitting the right variance scores better.
  MetricAccumulator overconfident;
  overconfident.Add(1.0, {0.0, 0.01});
  MetricAccumulator calibrated;
  calibrated.Add(1.0, {0.0, 1.0});
  EXPECT_LT(calibrated.Mnlpd(), overconfident.Mnlpd());
}

TEST(MetricsTest, MergeCombinesCounts) {
  MetricAccumulator a;
  a.Add(0.0, {1.0, 1.0});
  MetricAccumulator b;
  b.Add(0.0, {3.0, 1.0});
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mae(), 2.0);
}

// ----------------------------------------------------------------- engine

TEST(SensorEngineTest, CreateValidatesConfig) {
  simgpu::Device device;
  SmilerConfig cfg = TestConfig();
  cfg.use_ensemble = false;  // but EKV/ELV are not singleton
  auto engine = SensorEngine::Create(&device, MakeSensor(600), cfg,
                                     PredictorKind::kAr);
  EXPECT_FALSE(engine.ok());
}

TEST(SensorEngineTest, ArContinuousPredictionRuns) {
  simgpu::Device device;
  auto sensor = MakeSensor(800);
  // Hold out the tail as truth.
  std::vector<double> all = sensor.values();
  const int warmup = 600;
  ts::TimeSeries history("s",
                         std::vector<double>(all.begin(), all.begin() + warmup));
  auto engine = SensorEngine::Create(&device, history, TestConfig(),
                                     PredictorKind::kAr);
  ASSERT_TRUE(engine.ok());
  MetricAccumulator acc;
  for (int step = 0; step < 50; ++step) {
    auto pred = engine->Predict();
    ASSERT_TRUE(pred.ok());
    EXPECT_TRUE(std::isfinite(pred->mean));
    EXPECT_GT(pred->variance, 0.0);
    const double truth = all[warmup + step];  // horizon = 1
    acc.Add(truth, *pred);
    ASSERT_TRUE(engine->Observe(truth).ok());
  }
  EXPECT_EQ(engine->now(), warmup + 50 - 1);
  // On strongly seasonal MALL data the semi-lazy AR beats a unit-variance
  // zero predictor by a wide margin.
  EXPECT_LT(acc.Mae(), 0.5);
}

TEST(SensorEngineTest, GpContinuousPredictionRuns) {
  simgpu::Device device;
  auto sensor = MakeSensor(700);
  std::vector<double> all = sensor.values();
  const int warmup = 600;
  ts::TimeSeries history("s",
                         std::vector<double>(all.begin(), all.begin() + warmup));
  auto engine = SensorEngine::Create(&device, history, TestConfig(),
                                     PredictorKind::kGp);
  ASSERT_TRUE(engine.ok());
  MetricAccumulator acc;
  for (int step = 0; step < 20; ++step) {
    EngineStats stats;
    auto pred = engine->Predict(&stats);
    ASSERT_TRUE(pred.ok());
    EXPECT_GT(stats.search_seconds + stats.predict_seconds, 0.0);
    const double truth = all[warmup + step];
    acc.Add(truth, *pred);
    ASSERT_TRUE(engine->Observe(truth).ok());
  }
  EXPECT_LT(acc.Mae(), 0.6);
  EXPECT_TRUE(std::isfinite(acc.Mnlpd()));
}

TEST(SensorEngineTest, MultiStepHorizonTargetsRightTime) {
  simgpu::Device device;
  SmilerConfig cfg = TestConfig();
  cfg.horizon = 5;
  auto sensor = MakeSensor(800);
  std::vector<double> all = sensor.values();
  const int warmup = 650;
  ts::TimeSeries history("s",
                         std::vector<double>(all.begin(), all.begin() + warmup));
  auto engine =
      SensorEngine::Create(&device, history, cfg, PredictorKind::kAr);
  ASSERT_TRUE(engine.ok());
  MetricAccumulator acc;
  for (int step = 0; step < 40; ++step) {
    auto pred = engine->Predict();
    ASSERT_TRUE(pred.ok());
    acc.Add(all[warmup + step + cfg.horizon - 1], *pred);
    ASSERT_TRUE(engine->Observe(all[warmup + step]).ok());
  }
  EXPECT_LT(acc.Mae(), 0.8);
}

TEST(SensorEngineTest, EnsembleWeightsAdaptDuringRun) {
  simgpu::Device device;
  auto sensor = MakeSensor(800, ts::DatasetKind::kRoad);
  std::vector<double> all = sensor.values();
  const int warmup = 650;
  ts::TimeSeries history("s",
                         std::vector<double>(all.begin(), all.begin() + warmup));
  auto engine = SensorEngine::Create(&device, history, TestConfig(),
                                     PredictorKind::kAr);
  ASSERT_TRUE(engine.ok());
  for (int step = 0; step < 30; ++step) {
    ASSERT_TRUE(engine->Predict().ok());
    ASSERT_TRUE(engine->Observe(all[warmup + step]).ok());
  }
  // Weights must have moved off the uniform initialisation.
  const auto& e = engine->ensemble();
  bool moved = false;
  for (int i = 0; i < 2 && !moved; ++i) {
    for (int j = 0; j < 2 && !moved; ++j) {
      if (std::fabs(e.Weight(i, j) - 0.25) > 1e-6) moved = true;
    }
  }
  EXPECT_TRUE(moved);
}

TEST(SensorEngineTest, SingletonConfigMatchesSmilerNeAblation) {
  simgpu::Device device;
  SmilerConfig cfg = TestConfig();
  cfg.use_ensemble = false;
  cfg.elv = {32};
  cfg.ekv = {8};
  auto engine = SensorEngine::Create(&device, MakeSensor(700), cfg,
                                     PredictorKind::kAr);
  ASSERT_TRUE(engine.ok());
  auto pred = engine->Predict();
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(std::isfinite(pred->mean));
}

// ---------------------------------------------------------------- manager

TEST(MultiSensorManagerTest, RunsAllSensors) {
  simgpu::Device device;
  auto data = ts::MakeDataset({ts::DatasetKind::kMall, 4, 700, 64, 17, true});
  ASSERT_TRUE(data.ok());
  auto manager = MultiSensorManager::Create(&device, *data, TestConfig(),
                                            PredictorKind::kAr);
  ASSERT_TRUE(manager.ok());
  EXPECT_EQ(manager->num_sensors(), 4u);
  std::vector<predictors::Prediction> preds;
  EngineStats stats;
  ASSERT_TRUE(manager->PredictAll(&preds, &stats).ok());
  EXPECT_EQ(preds.size(), 4u);
  for (const auto& p : preds) EXPECT_TRUE(std::isfinite(p.mean));
  ASSERT_TRUE(manager->ObserveAll({0.0, 0.1, -0.1, 0.2}).ok());
  EXPECT_FALSE(manager->ObserveAll({0.0}).ok());  // size mismatch
}

TEST(MultiSensorManagerTest, RejectsEmpty) {
  simgpu::Device device;
  auto manager = MultiSensorManager::Create(&device, {}, TestConfig(),
                                            PredictorKind::kAr);
  EXPECT_FALSE(manager.ok());
}


TEST(MultiSensorManagerTest, ShardsAcrossMultipleDevices) {
  simgpu::Device dev_a;
  simgpu::Device dev_b;
  auto data = ts::MakeDataset({ts::DatasetKind::kNet, 4, 700, 64, 19, true});
  ASSERT_TRUE(data.ok());
  auto manager = MultiSensorManager::Create({&dev_a, &dev_b}, *data,
                                            TestConfig(), PredictorKind::kAr);
  ASSERT_TRUE(manager.ok());
  // Round-robin: both devices carry half the fleet's memory.
  EXPECT_GT(dev_a.memory_used(), 0u);
  EXPECT_GT(dev_b.memory_used(), 0u);
  EXPECT_EQ(dev_a.memory_used(), dev_b.memory_used());
  std::vector<predictors::Prediction> preds;
  ASSERT_TRUE(manager->PredictAll(&preds).ok());
  EXPECT_EQ(preds.size(), 4u);
}

TEST(MultiSensorManagerTest, MultiDeviceRejectsBadInputs) {
  auto data = ts::MakeDataset({ts::DatasetKind::kNet, 1, 700, 64, 19, true});
  ASSERT_TRUE(data.ok());
  auto none = MultiSensorManager::Create(std::vector<simgpu::Device*>{},
                                         *data, TestConfig(),
                                         PredictorKind::kAr);
  EXPECT_FALSE(none.ok());
  auto null_dev = MultiSensorManager::Create(
      std::vector<simgpu::Device*>{nullptr}, *data, TestConfig(),
      PredictorKind::kAr);
  EXPECT_FALSE(null_dev.ok());
}

TEST(MultiSensorManagerTest, CapacityOverflowSurfacesResourceExhausted) {
  // One device too small for its share of the fleet.
  simgpu::Device tiny(/*memory_budget_bytes=*/1024);
  auto data = ts::MakeDataset({ts::DatasetKind::kNet, 2, 700, 64, 19, true});
  ASSERT_TRUE(data.ok());
  auto manager = MultiSensorManager::Create({&tiny}, *data, TestConfig(),
                                            PredictorKind::kAr);
  ASSERT_FALSE(manager.ok());
  EXPECT_EQ(manager.status().code(), StatusCode::kResourceExhausted);
}

TEST(MultiSensorManagerTest, PerSensorFailureIsIsolated) {
  auto data = ts::MakeDataset({ts::DatasetKind::kNet, 2, 700, 64, 23, true});
  ASSERT_TRUE(data.ok());

  // Probe one sensor's footprint so we can size a device that fits the
  // engine at build time but runs out as its index grows online.
  std::size_t footprint = 0;
  {
    simgpu::Device probe;
    auto engine = SensorEngine::Create(&probe, (*data)[1], TestConfig(),
                                       PredictorKind::kAr);
    ASSERT_TRUE(engine.ok());
    footprint = probe.memory_used();
  }

  simgpu::Device roomy;
  simgpu::Device cramped(footprint + 256);
  auto manager = MultiSensorManager::Create({&roomy, &cramped}, *data,
                                            TestConfig(), PredictorKind::kAr);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();

  // Stream observations until sensor 1 blows its device budget. The fleet
  // call must keep serving sensor 0 (isolation), surface the per-sensor
  // codes, and summarize with the first error in sensor order.
  std::vector<Status> statuses;
  bool saw_failure = false;
  for (int step = 0; step < 2000 && !saw_failure; ++step) {
    Status summary = manager->ObserveAll({0.1, 0.2}, &statuses);
    ASSERT_EQ(statuses.size(), 2u);
    ASSERT_TRUE(statuses[0].ok()) << statuses[0].ToString();
    if (!statuses[1].ok()) {
      saw_failure = true;
      EXPECT_EQ(statuses[1].code(), StatusCode::kResourceExhausted);
      EXPECT_EQ(summary, statuses[1]);
    } else {
      EXPECT_TRUE(summary.ok());
    }
  }
  ASSERT_TRUE(saw_failure) << "cramped device never ran out of budget";

  // The healthy sensor still predicts after its neighbor failed.
  std::vector<predictors::Prediction> preds;
  Status summary = manager->PredictAll(&preds, nullptr, &statuses);
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_TRUE(statuses[0].ok()) << statuses[0].ToString();
  EXPECT_TRUE(std::isfinite(preds[0].mean));
  if (!statuses[1].ok()) {
    EXPECT_EQ(summary, statuses[1]);
  } else {
    EXPECT_TRUE(summary.ok());
  }
}

TEST(MultiSensorManagerTest, AdoptRestoredEngines) {
  simgpu::Device device;
  auto data = ts::MakeDataset({ts::DatasetKind::kMall, 2, 700, 64, 29, true});
  ASSERT_TRUE(data.ok());
  std::vector<SensorEngine> engines;
  for (const auto& sensor : *data) {
    auto engine = SensorEngine::Create(&device, sensor, TestConfig(),
                                       PredictorKind::kAr);
    ASSERT_TRUE(engine.ok());
    engines.push_back(std::move(*engine));
  }
  auto manager = MultiSensorManager::Adopt(std::move(engines));
  ASSERT_TRUE(manager.ok());
  EXPECT_EQ(manager->num_sensors(), 2u);
  std::vector<predictors::Prediction> preds;
  EXPECT_TRUE(manager->PredictAll(&preds).ok());
  EXPECT_EQ(preds.size(), 2u);

  EXPECT_FALSE(MultiSensorManager::Adopt({}).ok());
}

}  // namespace
}  // namespace core
}  // namespace smiler
