#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "la/cholesky.h"
#include "la/matrix.h"

namespace smiler {
namespace la {
namespace {

Matrix RandomSpd(Rng* rng, std::size_t n, double diag_boost = 0.5) {
  // A = B B^T + boost*I is SPD for any B.
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng->Normal();
  }
  Matrix a = b.MatMul(b.Transposed());
  a.AddToDiagonal(diag_boost);
  return a;
}

// ---------------------------------------------------------------- Matrix

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(1, 2) = -4.0;
  EXPECT_DOUBLE_EQ(m(1, 2), -4.0);
}

TEST(MatrixTest, IdentityActsAsNeutralElement) {
  Rng rng(3);
  Matrix a = RandomSpd(&rng, 5);
  Matrix i = Matrix::Identity(5);
  EXPECT_TRUE(a.MatMul(i).ApproxEquals(a, 1e-12));
  EXPECT_TRUE(i.MatMul(a).ApproxEquals(a, 1e-12));
}

TEST(MatrixTest, TransposeIsInvolution) {
  Rng rng(4);
  Matrix a(3, 5);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 5; ++j) a(i, j) = rng.Normal();
  EXPECT_TRUE(a.Transposed().Transposed().ApproxEquals(a, 0.0));
}

TEST(MatrixTest, MatVecMatchesManual) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  std::vector<double> x{1.0, 0.5, -1.0};
  std::vector<double> y = a.MatVec(x);
  EXPECT_DOUBLE_EQ(y[0], 1 + 1 - 3);
  EXPECT_DOUBLE_EQ(y[1], 4 + 2.5 - 6);
}

TEST(MatrixTest, TransMatVecMatchesTransposedMatVec) {
  Rng rng(5);
  Matrix a(4, 6);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 6; ++j) a(i, j) = rng.Normal();
  std::vector<double> x(4);
  for (double& v : x) v = rng.Normal();
  std::vector<double> y1 = a.TransMatVec(x);
  std::vector<double> y2 = a.Transposed().MatVec(x);
  for (std::size_t j = 0; j < 6; ++j) EXPECT_NEAR(y1[j], y2[j], 1e-12);
}

TEST(MatrixTest, MatMulAssociatesWithVector) {
  Rng rng(6);
  Matrix a(3, 4);
  Matrix b(4, 2);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = rng.Normal();
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 2; ++j) b(i, j) = rng.Normal();
  std::vector<double> x{rng.Normal(), rng.Normal()};
  std::vector<double> lhs = a.MatMul(b).MatVec(x);
  std::vector<double> rhs = a.MatVec(b.MatVec(x));
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(lhs[i], rhs[i], 1e-10);
}

TEST(MatrixTest, VectorHelpers) {
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{4, -5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4 - 10 + 18);
  std::vector<double> y = b;
  Axpy(2.0, a, &y);
  EXPECT_DOUBLE_EQ(y[0], 6);
  EXPECT_DOUBLE_EQ(y[1], -1);
  EXPECT_DOUBLE_EQ(y[2], 12);
  EXPECT_DOUBLE_EQ(Norm2({3.0, 4.0}), 5.0);
  std::vector<double> s{1.0, -2.0};
  Scale(-3.0, &s);
  EXPECT_DOUBLE_EQ(s[0], -3.0);
  EXPECT_DOUBLE_EQ(s[1], 6.0);
}

// -------------------------------------------------------------- Cholesky

TEST(CholeskyTest, ReconstructsMatrix) {
  Rng rng(11);
  Matrix a = RandomSpd(&rng, 8);
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  Matrix recon = chol->L().MatMul(chol->L().Transposed());
  EXPECT_TRUE(recon.ApproxEquals(a, 1e-8));
  EXPECT_DOUBLE_EQ(chol->jitter(), 0.0);
}

TEST(CholeskyTest, SolveInvertsMatVec) {
  Rng rng(12);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 2 + rng.UniformInt(12);
    Matrix a = RandomSpd(&rng, n);
    std::vector<double> x_true(n);
    for (double& v : x_true) v = rng.Normal();
    std::vector<double> b = a.MatVec(x_true);
    auto chol = Cholesky::Factor(a);
    ASSERT_TRUE(chol.ok());
    std::vector<double> x = chol->Solve(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-6);
  }
}

TEST(CholeskyTest, InverseTimesMatrixIsIdentity) {
  Rng rng(13);
  Matrix a = RandomSpd(&rng, 6);
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  Matrix prod = a.MatMul(chol->Inverse());
  EXPECT_TRUE(prod.ApproxEquals(Matrix::Identity(6), 1e-8));
}

TEST(CholeskyTest, LogDetMatchesDiagonalProduct) {
  // Diagonal matrix: logdet = sum of logs.
  Matrix a(4, 4);
  a(0, 0) = 2.0;
  a(1, 1) = 3.0;
  a(2, 2) = 0.5;
  a(3, 3) = 7.0;
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_NEAR(chol->LogDet(), std::log(2.0 * 3.0 * 0.5 * 7.0), 1e-12);
}

TEST(CholeskyTest, JitterRescuesNearSingular) {
  // Rank-1 matrix: needs jitter.
  Matrix a(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = 1.0;
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_GT(chol->jitter(), 0.0);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = a(1, 0) = 0.0;
  a(1, 1) = -5.0;  // beyond max jitter repair
  auto chol = Cholesky::Factor(a);
  EXPECT_FALSE(chol.ok());
  EXPECT_EQ(chol.status().code(), StatusCode::kNumericalError);
}

TEST(CholeskyTest, RejectsNonSquareAndEmpty) {
  EXPECT_FALSE(Cholesky::Factor(Matrix(2, 3)).ok());
  EXPECT_FALSE(Cholesky::Factor(Matrix()).ok());
}

TEST(CholeskyTest, SolveMatrixColumnwise) {
  Rng rng(14);
  Matrix a = RandomSpd(&rng, 5);
  Matrix b(5, 3);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 3; ++j) b(i, j) = rng.Normal();
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  Matrix x = chol->SolveMatrix(b);
  EXPECT_TRUE(a.MatMul(x).ApproxEquals(b, 1e-7));
}

TEST(CholeskyTest, TriangularSolvesCompose) {
  Rng rng(15);
  Matrix a = RandomSpd(&rng, 7);
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  std::vector<double> b(7);
  for (double& v : b) v = rng.Normal();
  std::vector<double> via_parts = chol->SolveUpper(chol->SolveLower(b));
  std::vector<double> direct = chol->Solve(b);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_DOUBLE_EQ(via_parts[i], direct[i]);
  }
}

}  // namespace
}  // namespace la
}  // namespace smiler
