#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "ts/resample.h"

namespace smiler {
namespace ts {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(ResampleTest, IdentityWhenIntervalsMatch) {
  std::vector<double> v{1, 2, 3, 4};
  auto out = Resample(v, 10.0, 10.0);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, v);
}

TEST(ResampleTest, Upsample2xLinearlyInterpolates) {
  std::vector<double> v{0.0, 2.0, 4.0};
  auto out = Resample(v, 10.0, 5.0);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 5u);
  EXPECT_DOUBLE_EQ((*out)[0], 0.0);
  EXPECT_DOUBLE_EQ((*out)[1], 1.0);
  EXPECT_DOUBLE_EQ((*out)[2], 2.0);
  EXPECT_DOUBLE_EQ((*out)[3], 3.0);
  EXPECT_DOUBLE_EQ((*out)[4], 4.0);
}

TEST(ResampleTest, DownsampleKeepsEndpointsInSpan) {
  std::vector<double> v{0, 1, 2, 3, 4, 5, 6};
  auto out = Resample(v, 1.0, 2.0);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 4u);
  EXPECT_DOUBLE_EQ((*out)[0], 0.0);
  EXPECT_DOUBLE_EQ((*out)[3], 6.0);
}

TEST(ResampleTest, NonIntegerRatio) {
  // Span 30; target interval 7 -> samples at 0, 7, 14, 21, 28.
  std::vector<double> v{0, 10, 20, 30};
  auto out = Resample(v, 10.0, 7.0);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 5u);
  EXPECT_DOUBLE_EQ((*out)[1], 7.0);   // linear through (0,0) .. (10,10)
  EXPECT_DOUBLE_EQ((*out)[4], 28.0);
}

TEST(ResampleTest, SinglePointSeries) {
  auto out = Resample({5.0}, 1.0, 0.5);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_DOUBLE_EQ((*out)[0], 5.0);
}

TEST(ResampleTest, RejectsBadArguments) {
  EXPECT_FALSE(Resample({}, 1.0, 1.0).ok());
  EXPECT_FALSE(Resample({1.0}, 0.0, 1.0).ok());
  EXPECT_FALSE(Resample({1.0}, 1.0, -2.0).ok());
}

TEST(ResampleTest, PreservesSmoothSignalShape) {
  std::vector<double> fine(101);
  for (int i = 0; i <= 100; ++i) fine[i] = std::sin(0.1 * i);
  auto coarse = Resample(fine, 1.0, 4.0);
  ASSERT_TRUE(coarse.ok());
  auto back = Resample(*coarse, 4.0, 1.0);
  ASSERT_TRUE(back.ok());
  for (std::size_t i = 0; i < back->size(); ++i) {
    EXPECT_NEAR((*back)[i], fine[i], 0.05);
  }
}

TEST(FillGapsTest, InteriorGapLinear) {
  std::vector<double> v{1.0, kNan, kNan, 4.0};
  ASSERT_TRUE(FillGaps(&v).ok());
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(FillGapsTest, LeadingAndTrailingGaps) {
  std::vector<double> v{kNan, kNan, 5.0, kNan};
  ASSERT_TRUE(FillGaps(&v).ok());
  EXPECT_DOUBLE_EQ(v[0], 5.0);
  EXPECT_DOUBLE_EQ(v[1], 5.0);
  EXPECT_DOUBLE_EQ(v[3], 5.0);
}

TEST(FillGapsTest, NoGapsIsNoop) {
  std::vector<double> v{1, 2, 3};
  ASSERT_TRUE(FillGaps(&v).ok());
  EXPECT_EQ(v, (std::vector<double>{1, 2, 3}));
}

TEST(FillGapsTest, AllNanFails) {
  std::vector<double> v{kNan, kNan};
  EXPECT_FALSE(FillGaps(&v).ok());
}

TEST(FillGapsTest, MultipleGaps) {
  std::vector<double> v{0.0, kNan, 2.0, kNan, kNan, 8.0};
  ASSERT_TRUE(FillGaps(&v).ok());
  EXPECT_DOUBLE_EQ(v[1], 1.0);
  EXPECT_DOUBLE_EQ(v[3], 4.0);
  EXPECT_DOUBLE_EQ(v[4], 6.0);
}

}  // namespace
}  // namespace ts
}  // namespace smiler
